package costdist

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"
)

// CanonicalInstanceJSON must map every spelling of the same instance —
// key order, whitespace, explicit defaults — to one byte string, and
// distinguish instances that differ semantically. The service layer's
// cache addresses depend on exactly this property.
func TestCanonicalInstanceJSON(t *testing.T) {
	base := `{"nx":8,"ny":8,"layers":3,"root":[1,1,0],"sinks":[{"x":5,"y":5,"l":0,"w":0.01}],"dbif":20,"seed":3}`
	variants := []string{
		"  {\n  \"seed\": 3, \"dbif\": 20.0,\n  \"layers\": 3, \"ny\": 8, \"nx\": 8,\n  \"sinks\": [ {\"w\": 1e-2, \"l\": 0, \"y\": 5, \"x\": 5} ], \"root\": [1, 1, 0] }",
		`{"nx":8,"ny":8,"layers":3,"root":[1,1,0],"sinks":[{"x":5,"y":5,"l":0,"w":0.01}],"dbif":20,"eta":0.25,"seed":3,"margin":8}`,
	}
	want, err := CanonicalInstanceJSON([]byte(base))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		got, err := CanonicalInstanceJSON([]byte(v))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("variant %d canonicalizes differently:\n%s\n%s", i, want, got)
		}
	}
	// Any negative dbif spells "derive from technology".
	a, _ := CanonicalInstanceJSON([]byte(`{"nx":8,"ny":8,"layers":3,"root":[1,1,0],"sinks":[],"dbif":-1}`))
	b, _ := CanonicalInstanceJSON([]byte(`{"nx":8,"ny":8,"layers":3,"root":[1,1,0],"sinks":[],"dbif":-7}`))
	if !bytes.Equal(a, b) {
		t.Fatal("negative dbif spellings canonicalize differently")
	}
	// A semantic change must change the bytes.
	diff, err := CanonicalInstanceJSON([]byte(`{"nx":8,"ny":8,"layers":3,"root":[1,1,0],"sinks":[{"x":5,"y":5,"l":0,"w":0.01}],"dbif":20,"seed":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(want, diff) {
		t.Fatal("different seeds canonicalize identically")
	}
	if _, err := CanonicalInstanceJSON([]byte("{")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	// Canonical output must itself parse to a valid instance.
	if _, err := ParseInstance(want); err != nil {
		t.Fatalf("canonical form does not parse: %v", err)
	}
}

// The corpus documents must canonicalize stably (idempotence: canonical
// of canonical is canonical).
func TestCanonicalInstanceJSONIdempotentOnCorpus(t *testing.T) {
	for _, name := range []string{"small.json", "twopin.json", "congested.json"} {
		doc, err := os.ReadFile("examples/instances/" + name)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := CanonicalInstanceJSON(doc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := CanonicalInstanceJSON(c1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("%s: canonicalization not idempotent", name)
		}
	}
}

// MarshalRouteResult → UnmarshalRouteResult must round-trip the metrics
// and every net's embedded tree (wire types included), and re-marshal
// to the identical bytes — mirroring the TreeJSON wire-type round-trip
// guarantee from the single-net path.
func TestRouteResultRoundTrip(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Incremental = true // exercise the per-wave counters too
	res, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalRouteResult(chip, res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRouteResult(chip, data)
	if err != nil {
		t.Fatal(err)
	}

	wm := res.Metrics
	wm.Walltime = 0 // deliberately not serialized (nondeterministic)
	if !reflect.DeepEqual(wm, back.Metrics) {
		t.Fatalf("metrics did not round-trip:\nwant %+v\ngot  %+v", wm, back.Metrics)
	}
	if !reflect.DeepEqual(res.Trees, back.Trees) {
		t.Fatal("trees did not round-trip")
	}
	again, err := MarshalRouteResult(chip, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-marshal is not byte-identical")
	}

	// Determinism across runs: an identical fresh run marshals to the
	// identical bytes — the property the service result cache relies on.
	res2, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := MarshalRouteResult(chip, res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("two identical runs marshal differently")
	}
}

// The marshaled route result — metrics and every net's tree — must be
// byte-identical across thread counts. The service layer's route cache
// keys deliberately exclude the thread count; this test is what makes
// that exclusion sound.
func TestMarshalRouteResultThreadCountIndependent(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, threads := range []int{1, 3, 8} {
		opt := DefaultRouterOptions()
		opt.Waves = 2
		opt.Threads = threads
		res, err := RouteChip(chip, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		data, err := MarshalRouteResult(chip, res)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("threads=%d marshals differently from threads=1", threads)
		}
	}
}

func TestUnmarshalRouteResultRejectsCorruptTrees(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Non-adjacent edge inside a tree must be rejected by the same
	// validation the single-tree path uses.
	bad := []byte(`{"metrics":{},"trees":[{"edges":[[[0,0,0],[3,0,0]]],"wire_types":[0]}]}`)
	if _, err := UnmarshalRouteResult(chip, bad); err == nil {
		t.Fatal("accepted a non-adjacent edge")
	}
	if _, err := UnmarshalRouteResult(chip, []byte("{")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
}

// The checkpoint codec must reject documents it cannot faithfully
// decode: wrong version, mangled layer directions, mismatched vector
// lengths, corrupt trees.
func TestUnmarshalCheckpointRejectsCorruptDocuments(t *testing.T) {
	chip, err := GenerateChip(ChipSuite(0.002)[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 1
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalCheckpoint(blob); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}

	corrupt := func(name string, edit func(cp *CheckpointJSON)) {
		t.Helper()
		var cp CheckpointJSON
		if err := json.Unmarshal(blob, &cp); err != nil {
			t.Fatal(err)
		}
		edit(&cp)
		bad, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalCheckpoint(bad); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
	corrupt("version", func(cp *CheckpointJSON) { cp.Version = 99 })
	corrupt("layer dirs", func(cp *CheckpointJSON) { cp.LayerDirs = "XXXX" })
	corrupt("short mult", func(cp *CheckpointJSON) { cp.Mult = cp.Mult[:3] })
	corrupt("tiny grid", func(cp *CheckpointJSON) { cp.NX = 0 })
	corrupt("truncated weights", func(cp *CheckpointJSON) { cp.Nets[0].Weights = nil })
	corrupt("truncated delays", func(cp *CheckpointJSON) {
		cp.Nets[0].Delays = append(cp.Nets[0].Delays, 1)
	})
	corrupt("corrupt tree", func(cp *CheckpointJSON) {
		for i := range cp.Nets {
			if tr := cp.Nets[i].Tree; tr != nil && len(tr.Edges) > 0 {
				tr.Edges[0][1] = [3]int32{tr.Edges[0][0][0] + 5, tr.Edges[0][0][1], tr.Edges[0][0][2]}
				return
			}
		}
		t.Fatal("no tree to corrupt")
	})
	if _, err := UnmarshalCheckpoint([]byte("{")); err == nil {
		t.Error("truncated document accepted")
	}
}

// Unconstrained sinks carry +Inf budgets; the codec encodes them as
// null and must bring them back as +Inf.
func TestCheckpointBudgetInfRoundTrip(t *testing.T) {
	chip, err := GenerateChip(ChipSuite(0.002)[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 1
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	st.Nets[0].Budgets[0] = math.Inf(1)
	blob, err := MarshalCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(st2.Nets[0].Budgets[0], 1) {
		t.Fatalf("budget came back %v, want +Inf", st2.Nets[0].Budgets[0])
	}
	blob2, err := MarshalCheckpoint(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("Inf budgets break byte stability")
	}
}
