package costdist

import (
	"reflect"
	"testing"
)

// RouteChip with a fixed seed must produce identical metrics and trees
// regardless of worker count — for the fixed CD oracle, the exact tier,
// the Auto per-net selector and the Portfolio racer, with and without
// the incremental engine. Selection, portfolio pricing and the exact
// tier's budget gates are pure functions of each instance (label
// budgets, never wall-clock), so the worker count must never leak into
// the result (including the per-oracle solve counters).
func TestRouteChipDeterministicAcrossThreads(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{CD, Auto, Portfolio, Exact} {
		for _, incremental := range []bool{false, true} {
			opt := DefaultRouterOptions()
			opt.Waves = 3
			opt.Incremental = incremental
			var ref RouteMetrics
			var refTrees []*Tree
			for i, threads := range []int{1, 2, 8} {
				opt.Threads = threads
				res, err := RouteChip(chip, m, opt)
				if err != nil {
					t.Fatal(err)
				}
				mt := res.Metrics
				mt.Walltime = 0 // wall-clock, legitimately varies
				if i == 0 {
					ref = mt
					refTrees = res.Trees
					continue
				}
				if !reflect.DeepEqual(ref, mt) {
					t.Fatalf("%v incremental=%v threads=%d changed results:\nref %+v\ngot %+v",
						m, incremental, threads, ref, mt)
				}
				if !reflect.DeepEqual(refTrees, res.Trees) {
					t.Fatalf("%v incremental=%v threads=%d changed routed trees", m, incremental, threads)
				}
			}
			if m == Auto && len(ref.SolvesByOracle) < 2 {
				t.Fatalf("auto selection degenerated to one oracle: %v", ref.SolvesByOracle)
			}
			if m == Auto && ref.SolvesByOracle["exact"] == 0 {
				t.Fatalf("auto never escalated to the exact tier: %v", ref.SolvesByOracle)
			}
			if m == Exact && ref.SolvesByOracle["exact"] != ref.NetsSolved {
				t.Fatalf("fixed exact run charged %v, solved %d nets", ref.SolvesByOracle, ref.NetsSolved)
			}
			if m == Portfolio {
				want := ref.NetsSolved * int64(len(ref.SolvesByOracle))
				var got int64
				for _, c := range ref.SolvesByOracle {
					got += c
				}
				if got != want {
					t.Fatalf("portfolio solve counts inconsistent: %v vs %d nets", ref.SolvesByOracle, ref.NetsSolved)
				}
			}
		}
	}
}

// The default portfolio pool excludes the exact tier for cost reasons;
// opting it in by name must stay deterministic across thread counts too
// — the exact tier's budgets count labels, never wall-clock, so a race
// that includes it still picks the same winner everywhere.
func TestPortfolioWithExactDeterministic(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Selection.Portfolio = []string{"cd", "exact", "rsmt"}
	var ref RouteMetrics
	var refTrees []*Tree
	for i, threads := range []int{1, 4} {
		opt.Threads = threads
		res, err := RouteChip(chip, Portfolio, opt)
		if err != nil {
			t.Fatal(err)
		}
		mt := res.Metrics
		mt.Walltime = 0
		if i == 0 {
			ref = mt
			refTrees = res.Trees
			continue
		}
		if !reflect.DeepEqual(ref, mt) {
			t.Fatalf("threads=%d changed results:\nref %+v\ngot %+v", threads, ref, mt)
		}
		if !reflect.DeepEqual(refTrees, res.Trees) {
			t.Fatalf("threads=%d changed routed trees", threads)
		}
	}
	if ref.SolvesByOracle["exact"] != ref.NetsSolved {
		t.Fatalf("exact missing from portfolio race: %v over %d nets", ref.SolvesByOracle, ref.NetsSolved)
	}
}

// The no-skip incremental mode (negative tolerance forces every net
// dirty) must agree exactly with the non-incremental engine through the
// public API.
func TestRouteChipIncrementalNoSkipExact(t *testing.T) {
	spec := ChipSuite(0.002)[1]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2
	full, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Incremental = true
	opt.IncrementalTol = -1
	forced, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Metrics.NetsSkipped != 0 {
		t.Fatalf("forced mode skipped %d nets", forced.Metrics.NetsSkipped)
	}
	f, g := full.Metrics, forced.Metrics
	if f.WS != g.WS || f.TNS != g.TNS || f.ACE4 != g.ACE4 || f.WLm != g.WLm ||
		f.Vias != g.Vias || f.Overflow != g.Overflow || f.Objective != g.Objective {
		t.Fatalf("no-skip incremental diverged:\nfull   %+v\nforced %+v", f, g)
	}
}
