package costdist

import (
	"reflect"
	"testing"
)

// RouteChip with a fixed seed must produce identical metrics regardless
// of worker count — for the fixed CD oracle, the Auto per-net selector
// and the Portfolio racer, with and without the incremental engine.
// Selection and portfolio pricing are pure functions of each instance,
// so the worker count must never leak into the result (including the
// per-oracle solve counters).
func TestRouteChipDeterministicAcrossThreads(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{CD, Auto, Portfolio} {
		for _, incremental := range []bool{false, true} {
			opt := DefaultRouterOptions()
			opt.Waves = 3
			opt.Incremental = incremental
			var ref RouteMetrics
			for i, threads := range []int{1, 2, 8} {
				opt.Threads = threads
				res, err := RouteChip(chip, m, opt)
				if err != nil {
					t.Fatal(err)
				}
				mt := res.Metrics
				mt.Walltime = 0 // wall-clock, legitimately varies
				if i == 0 {
					ref = mt
					continue
				}
				if !reflect.DeepEqual(ref, mt) {
					t.Fatalf("%v incremental=%v threads=%d changed results:\nref %+v\ngot %+v",
						m, incremental, threads, ref, mt)
				}
			}
			if m == Auto && len(ref.SolvesByOracle) < 2 {
				t.Fatalf("auto selection degenerated to one oracle: %v", ref.SolvesByOracle)
			}
			if m == Portfolio {
				want := ref.NetsSolved * int64(len(ref.SolvesByOracle))
				var got int64
				for _, c := range ref.SolvesByOracle {
					got += c
				}
				if got != want {
					t.Fatalf("portfolio solve counts inconsistent: %v vs %d nets", ref.SolvesByOracle, ref.NetsSolved)
				}
			}
		}
	}
}

// The no-skip incremental mode (negative tolerance forces every net
// dirty) must agree exactly with the non-incremental engine through the
// public API.
func TestRouteChipIncrementalNoSkipExact(t *testing.T) {
	spec := ChipSuite(0.002)[1]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2
	full, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Incremental = true
	opt.IncrementalTol = -1
	forced, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Metrics.NetsSkipped != 0 {
		t.Fatalf("forced mode skipped %d nets", forced.Metrics.NetsSkipped)
	}
	f, g := full.Metrics, forced.Metrics
	if f.WS != g.WS || f.TNS != g.TNS || f.ACE4 != g.ACE4 || f.WLm != g.WLm ||
		f.Vias != g.Vias || f.Overflow != g.Overflow || f.Objective != g.Objective {
		t.Fatalf("no-skip incremental diverged:\nfull   %+v\nforced %+v", f, g)
	}
}
