package costdist

import (
	"reflect"
	"testing"
)

// RouteChip with a fixed seed must produce identical metrics regardless
// of worker count, with and without the incremental engine; the two
// engines must agree on the final objective within the documented band.
func TestRouteChipDeterministicAcrossThreads(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, incremental := range []bool{false, true} {
		opt := DefaultRouterOptions()
		opt.Waves = 3
		opt.Incremental = incremental
		var ref RouteMetrics
		for i, threads := range []int{1, 2, 8} {
			opt.Threads = threads
			res, err := RouteChip(chip, CD, opt)
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			m.Walltime = 0 // wall-clock, legitimately varies
			if i == 0 {
				ref = m
				continue
			}
			if !reflect.DeepEqual(ref, m) {
				t.Fatalf("incremental=%v threads=%d changed results:\nref %+v\ngot %+v",
					incremental, threads, ref, m)
			}
		}
	}
}

// The no-skip incremental mode (negative tolerance forces every net
// dirty) must agree exactly with the non-incremental engine through the
// public API.
func TestRouteChipIncrementalNoSkipExact(t *testing.T) {
	spec := ChipSuite(0.002)[1]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2
	full, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Incremental = true
	opt.IncrementalTol = -1
	forced, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Metrics.NetsSkipped != 0 {
		t.Fatalf("forced mode skipped %d nets", forced.Metrics.NetsSkipped)
	}
	f, g := full.Metrics, forced.Metrics
	if f.WS != g.WS || f.TNS != g.TNS || f.ACE4 != g.ACE4 || f.WLm != g.WLm ||
		f.Vias != g.Vias || f.Overflow != g.Overflow || f.Objective != g.Objective {
		t.Fatalf("no-skip incremental diverged:\nfull   %+v\nforced %+v", f, g)
	}
}
