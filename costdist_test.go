package costdist

import (
	"math"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	tech := DefaultTech(6)
	g := NewGrid(24, 24, BuildLayers(tech), tech.GCellUM)
	in := &Instance{
		G: g, C: NewCosts(g),
		Root: g.At(2, 2, 0),
		Sinks: []Sink{
			{V: g.At(20, 4, 0), W: 0.02},
			{V: g.At(18, 19, 0), W: 0.002},
			{V: g.At(5, 17, 0), W: 0},
		},
		DBif: Dbif(tech), Eta: 0.25, Seed: 1,
	}
	in.Win = in.DefaultWindow(6)

	tr, err := SolveCD(in, DefaultCDOptions())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(in, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total <= 0 || len(ev.SinkDelay) != 3 {
		t.Fatalf("evaluation %+v", ev)
	}
	for _, m := range []Method{L1, SL, PD} {
		tr2, err := Solve(in, m, DefaultRouterOptions())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if _, err := Evaluate(in, tr2); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
	svg := RenderTree(in, tr, 12)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("render failed")
	}
}

func TestExactThroughFacade(t *testing.T) {
	tech := DefaultTech(3)
	g := NewGrid(8, 8, BuildLayers(tech), tech.GCellUM)
	in := &Instance{
		G: g, C: NewCosts(g),
		Root:  g.At(0, 0, 0),
		Sinks: []Sink{{V: g.At(5, 5, 0), W: 0.01}, {V: g.At(2, 6, 0), W: 0.02}},
		Win:   g.FullWindow(),
	}
	ex, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SolveCD(in, DefaultCDOptions())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(in, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total < ex.LowerBound-1e-9 {
		t.Fatalf("CD %v below exact bound %v", ev.Total, ex.LowerBound)
	}
}

func TestParseInstanceAndMarshalTree(t *testing.T) {
	data := []byte(`{
		"nx": 16, "ny": 16, "layers": 4,
		"root": [1, 1, 0],
		"sinks": [
			{"x": 12, "y": 3, "l": 0, "w": 0.05},
			{"x": 9, "y": 13, "l": 0, "w": 0.001}
		],
		"dbif": -1,
		"congestion": [{"x0": 5, "y0": 0, "x1": 6, "y1": 15, "l": 0, "mult": 10}]
	}`)
	in, err := ParseInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if in.DBif <= 0 {
		t.Fatal("dbif not derived")
	}
	if in.Eta != 0.25 {
		t.Fatalf("eta default %v", in.Eta)
	}
	// The congestion wall must be visible in the costs.
	seg := in.G.SegH(0, 7, 5)
	if in.C.Mult[seg] != 10 {
		t.Fatalf("congestion rect not applied: %v", in.C.Mult[seg])
	}
	tr, err := SolveCD(in, DefaultCDOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalTree(in, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"total", "sink_delay_ps", "edges"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("marshal missing %q", want)
		}
	}
}

func TestParseInstanceErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"nx": 1, "ny": 8, "layers": 4, "root": [0,0,0]}`,                                              // tiny grid
		`{"nx": 8, "ny": 8, "layers": 4, "root": [9,0,0]}`,                                              // root outside
		`{"nx": 8, "ny": 8, "layers": 4, "root": [0,0,0], "sinks": [{"x": 8, "y": 0, "l": 0, "w": 1}]}`, // sink outside
	}
	for i, c := range cases {
		if _, err := ParseInstance([]byte(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestChipFlowThroughFacade(t *testing.T) {
	specs := ChipSuite(0.0012)
	if len(specs) != 8 {
		t.Fatal("suite size")
	}
	chip, err := GenerateChip(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2
	res, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.WLm <= 0 || math.IsNaN(res.Metrics.ACE4) {
		t.Fatalf("metrics %+v", res.Metrics)
	}
}

func TestTracedSolveThroughFacade(t *testing.T) {
	tech := DefaultTech(4)
	g := NewGrid(20, 20, BuildLayers(tech), tech.GCellUM)
	in := &Instance{
		G: g, C: NewCosts(g),
		Root:  g.At(1, 1, 0),
		Sinks: []Sink{{V: g.At(15, 15, 0), W: 0.01}, {V: g.At(4, 16, 0), W: 0.02}},
		Win:   g.FullWindow(),
	}
	var events []TraceEvent
	if _, err := SolveCDTraced(in, DefaultCDOptions(), func(e TraceEvent) { events = append(events, e) }); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events %d", len(events))
	}
	frames := RenderTraceFrames(in, events, 14)
	if len(frames) != 2 || !strings.HasPrefix(frames[0], "<svg") {
		t.Fatal("trace frames broken")
	}
}
