package costdist

import (
	"bytes"
	"reflect"
	"testing"
)

// mkChip generates a small suite chip for the warm-start tests.
func mkChip(t *testing.T, idx int, scale float64) *Chip {
	t.Helper()
	spec := ChipSuite(scale)[idx]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// sameRow compares the deterministic part of two metric rows (Walltime
// and the solve counters, which legitimately differ between a cold and
// a warm run, are excluded).
func sameRow(a, b RouteMetrics) bool {
	return a.WS == b.WS && a.TNS == b.TNS && a.ACE4 == b.ACE4 &&
		a.WLm == b.WLm && a.Vias == b.Vias && a.Overflow == b.Overflow &&
		a.Objective == b.Objective
}

// The zero-perturbation property: warm-starting from a checkpoint onto
// the identical chip must solve zero nets and reproduce the cold run's
// trees and full metric row exactly, for both the full and the
// incremental base engine. This is the contract that makes resubmitted
// identical jobs nearly free.
func TestWarmStartZeroPerturbation(t *testing.T) {
	chip := mkChip(t, 0, 0.002)
	for _, incremental := range []bool{false, true} {
		opt := DefaultRouterOptions()
		opt.Waves = 3
		opt.Threads = 2
		opt.Incremental = incremental
		cold, st, err := RouteChipCheckpoint(chip, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		warm, st2, err := RouteChipFrom(st, chip, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Metrics.NetsSolved != 0 {
			t.Fatalf("incremental=%v: unperturbed warm start solved %d nets (skipped %d)",
				incremental, warm.Metrics.NetsSolved, warm.Metrics.NetsSkipped)
		}
		wantSkipped := int64(len(chip.NL.Nets) * opt.Waves)
		if warm.Metrics.NetsSkipped != wantSkipped {
			t.Fatalf("incremental=%v: skipped %d nets, want %d", incremental, warm.Metrics.NetsSkipped, wantSkipped)
		}
		if !sameRow(cold.Metrics, warm.Metrics) {
			t.Fatalf("incremental=%v: warm metrics diverged:\ncold %+v\nwarm %+v",
				incremental, cold.Metrics, warm.Metrics)
		}
		if !reflect.DeepEqual(cold.Trees, warm.Trees) {
			t.Fatalf("incremental=%v: warm trees differ from cold trees", incremental)
		}
		// The no-op warm run's own checkpoint must round back to the
		// same externalized state — trees, prices and baselines are all
		// untouched. Metrics are the producing run's counters (the cold
		// run solved everything, the warm run nothing), so they are
		// normalized out of the comparison.
		stn, st2n := *st, *st2
		stn.Metrics, st2n.Metrics = RouteMetrics{}, RouteMetrics{}
		b1, err := MarshalCheckpoint(&stn)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := MarshalCheckpoint(&st2n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("incremental=%v: no-op warm start changed the checkpoint", incremental)
		}
	}
}

// MarshalCheckpoint must be byte-stable (marshal → unmarshal → marshal
// reproduces the bytes), and warm-starting from the unmarshaled state
// must be equivalent to warm-starting from the in-memory state.
func TestWarmStartCheckpointRoundTrip(t *testing.T) {
	chip := mkChip(t, 1, 0.002)
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := MarshalCheckpoint(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("checkpoint codec is not byte-stable: %d vs %d bytes", len(blob), len(blob2))
	}

	pert, changed, err := PerturbChip(chip, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if changed < 1 {
		t.Fatalf("perturbation touched %d nets", changed)
	}
	fromMem, _, err := RouteChipFrom(st, pert, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	fromWire, _, err := RouteChipFrom(st2, pert, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	memBytes, err := MarshalRouteResult(pert, fromMem)
	if err != nil {
		t.Fatal(err)
	}
	wireBytes, err := MarshalRouteResult(pert, fromWire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memBytes, wireBytes) {
		t.Fatal("warm start from unmarshaled checkpoint diverged from in-memory restore")
	}
}

// An ECO perturbation must re-solve only a subset of the chip: fewer
// oracle solves than the cold re-route, at least the changed nets, and
// every net still ends with a tree. The warm result must also be
// independent of the worker count.
func TestWarmStartPerturbed(t *testing.T) {
	chip := mkChip(t, 0, 0.005)
	opt := DefaultRouterOptions()
	opt.Waves = 3
	opt.Threads = 2
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	pert, changed, err := PerturbChip(chip, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if changed < 1 {
		t.Fatal("no nets perturbed")
	}
	cold, err := RouteChip(pert, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := RouteChipFrom(st, pert, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.NetsSolved >= cold.Metrics.NetsSolved {
		t.Fatalf("warm start saved nothing: %d solves vs cold %d",
			warm.Metrics.NetsSolved, cold.Metrics.NetsSolved)
	}
	if w0 := warm.Metrics.SolvedPerWave[0]; w0 < changed {
		t.Fatalf("first warm wave solved %d nets, %d changed", w0, changed)
	}
	if warm.Metrics.NetsSkipped == 0 {
		t.Fatal("warm start skipped nothing")
	}
	for ni, tr := range warm.Trees {
		if tr == nil {
			t.Fatalf("net %d has no tree after warm start", ni)
		}
	}

	opt.Threads = 4
	warm4, _, err := RouteChipFrom(st, pert, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, b := warm.Metrics, warm4.Metrics
	a.Walltime, b.Walltime = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("warm start depends on worker count:\n2 threads %+v\n4 threads %+v", a, b)
	}
}

// Changing the oracle driver between the base run and the warm start
// must distrust every cached tree: the first warm wave re-solves the
// whole chip (the restored prices are still used).
func TestWarmStartMethodChange(t *testing.T) {
	chip := mkChip(t, 0, 0.002)
	opt := DefaultRouterOptions()
	opt.Waves = 2
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := RouteChipFrom(st, chip, SL, opt)
	if err != nil {
		t.Fatal(err)
	}
	if w0 := warm.Metrics.SolvedPerWave[0]; w0 != len(chip.NL.Nets) {
		t.Fatalf("method change: first wave solved %d of %d nets", w0, len(chip.NL.Nets))
	}
}

// A capacity edit (ECO placement blockage) dirties the nets whose
// candidate region overlaps the edit — and only reuses the rest.
func TestWarmStartCapacityEdit(t *testing.T) {
	chip := mkChip(t, 0, 0.005)
	opt := DefaultRouterOptions()
	opt.Waves = 2
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Regenerate the same chip (same spec, same seed → identical) and
	// carve a capacity blockage into its private grid.
	edited := mkChip(t, 0, 0.005)
	g := edited.G
	if g.Layers[0].Dir.String() == "H" {
		for y := int32(0); y < g.NY/4; y++ {
			for x := int32(0); x < g.NX-1; x++ {
				g.Cap[g.SegH(0, y, x)] *= 0.25
			}
		}
	} else {
		for x := int32(0); x < g.NX/4; x++ {
			for y := int32(0); y < g.NY-1; y++ {
				g.Cap[g.SegV(0, x, y)] *= 0.25
			}
		}
	}
	warm, _, err := RouteChipFrom(st, edited, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	w0 := warm.Metrics.SolvedPerWave[0]
	if w0 == 0 {
		t.Fatal("capacity edit dirtied no nets")
	}
	if w0 >= len(edited.NL.Nets) {
		t.Fatalf("capacity edit dirtied every net (%d)", w0)
	}
}

// Warm-starting onto an incompatible grid must fail loudly, not
// silently produce garbage.
func TestWarmStartGridMismatch(t *testing.T) {
	chip := mkChip(t, 0, 0.002)
	opt := DefaultRouterOptions()
	opt.Waves = 1
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	other := mkChip(t, 0, 0.004) // bigger netlist → bigger die
	if other.G.NX == chip.G.NX {
		t.Skip("scales produced equal grids")
	}
	if _, _, err := RouteChipFrom(st, other, CD, opt); err == nil {
		t.Fatal("grid mismatch not detected")
	}
}
