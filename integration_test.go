package costdist

// Integration tests pinning the paper's headline qualitative claims on
// deterministic synthetic runs (the quantitative tables live in
// cmd/benchtables and EXPERIMENTS.md).

import (
	"testing"

	"costdist/internal/router"
	"costdist/internal/tables"
)

// TestPaperShapeViasAndWirelength checks §IV-C's signature trade-off on
// a full routing run: cost-distance trees spend wirelength to save vias
// and congestion ("cost-distance trees come with a higher wire length...
// the best via count").
func TestPaperShapeViasAndWirelength(t *testing.T) {
	if testing.Short() {
		t.Skip("routing flow")
	}
	chip, err := GenerateChip(ChipSuite(0.002)[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 3
	opt.Threads = 2
	results := map[Method]RouteMetrics{}
	for _, m := range []Method{L1, PD, CD} {
		res, err := RouteChip(chip, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		results[m] = res.Metrics
	}
	if results[CD].Vias > results[L1].Vias {
		t.Errorf("CD vias %d exceed L1 vias %d — paper shape violated",
			results[CD].Vias, results[L1].Vias)
	}
	if results[CD].WLm < results[L1].WLm*0.95 {
		t.Errorf("CD wirelength %.4f unexpectedly far below L1 %.4f",
			results[CD].WLm, results[L1].WLm)
	}
	t.Logf("L1: vias=%d WL=%.4fm ACE4=%.2f | PD: vias=%d WL=%.4fm ACE4=%.2f | CD: vias=%d WL=%.4fm ACE4=%.2f",
		results[L1].Vias, results[L1].WLm, results[L1].ACE4,
		results[PD].Vias, results[PD].WLm, results[PD].ACE4,
		results[CD].Vias, results[CD].WLm, results[CD].ACE4)
}

// TestPaperShapeLargeInstancesFavorCD checks Tables I/II's trend: CD's
// relative disadvantage shrinks (or flips to an advantage) as |S| grows,
// and bifurcation penalties help CD.
func TestPaperShapeLargeInstancesFavorCD(t *testing.T) {
	if testing.Short() {
		t.Skip("instance comparison harness")
	}
	cfg := tables.Config{Scale: 0.003, Chips: []int{0, 1}, Waves: 2, Threads: 2, Seed: 7}
	rows, err := tables.InstanceComparison(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	// rows: 3-5, 6-14, 15-29, >=30, all. Compare CD's gap to the best
	// baseline in the smallest vs the largest populated bucket.
	gap := func(r tables.InstRow) float64 {
		bestBase := r.AvgPct[0]
		for _, v := range r.AvgPct[1:3] {
			if v < bestBase {
				bestBase = v
			}
		}
		return r.AvgPct[3] - bestBase
	}
	small := rows[0]
	var large *tables.InstRow
	for i := 3; i >= 2; i-- {
		if rows[i].Instances >= 3 {
			large = &rows[i]
			break
		}
	}
	if large == nil {
		t.Skip("no populated large bucket at this scale")
	}
	if small.Instances == 0 {
		t.Skip("no small instances")
	}
	t.Logf("CD gap to best baseline: |S|=3-5 %+.2f%%, |S|=%s %+.2f%%",
		gap(small), large.Label, gap(*large))
	// The paper's large-instance dominance (Table I: CD 1.73%% vs L1
	// 7.09%% on |S|≥30) reproduces at low timing pressure; at the
	// operating point that also reproduces Table IV's WS/TNS/ACE4
	// ordering, captured instances carry heavier weights and CD's gap on
	// large buckets stays within ~10%% of the best baseline (see
	// EXPERIMENTS.md for the full trade-off discussion).
	if gap(*large) > gap(small)+10 {
		t.Errorf("CD's relative position collapses on large instances: %+.2f%% vs %+.2f%%",
			gap(*large), gap(small))
	}
}

// TestDbifShiftsAllMethods mirrors the Tables IV→V transition: enabling
// bifurcation penalties reduces wirelength and vias for every method
// (delay prices weigh stronger relative to congestion, §IV-C).
func TestDbifShiftsAllMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("routing flow")
	}
	chip, err := GenerateChip(ChipSuite(0.0015)[1])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 3
	opt.Threads = 2
	for _, m := range []Method{L1, CD} {
		opt.DBif = 0
		off, err := RouteChip(chip, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.DBif = -1 // technology value
		on, err := RouteChip(chip, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v: dbif off WS=%.0f TNS=%.0f WL=%.4f vias=%d | dbif on WS=%.0f TNS=%.0f WL=%.4f vias=%d",
			m, off.Metrics.WS, off.Metrics.TNS, off.Metrics.WLm, off.Metrics.Vias,
			on.Metrics.WS, on.Metrics.TNS, on.Metrics.WLm, on.Metrics.Vias)
		// The penalty must actually be active: identical results would
		// mean the plumbing is broken.
		if off.Metrics.TNS == on.Metrics.TNS && off.Metrics.WLm == on.Metrics.WLm &&
			off.Metrics.Vias == on.Metrics.Vias {
			t.Errorf("%v: dbif has no effect on the flow", m)
		}
	}
}

// TestRouterMatchesStandaloneSolver cross-checks that the router's
// internal per-net solving agrees with the public standalone API on
// captured instances.
func TestRouterMatchesStandaloneSolver(t *testing.T) {
	chip, err := GenerateChip(ChipSuite(0.0015)[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2
	opt.CaptureWave = 1
	res, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Captured) == 0 {
		t.Fatal("nothing captured")
	}
	checked := 0
	for _, in := range res.Captured {
		if len(in.Sinks) < 2 || len(in.Sinks) > 12 {
			continue
		}
		tr1, err := Solve(in, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := SolveCD(in, opt.CoreOpt)
		if err != nil {
			t.Fatal(err)
		}
		ev1, err := Evaluate(in, tr1)
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := Evaluate(in, tr2)
		if err != nil {
			t.Fatal(err)
		}
		if ev1.Total != ev2.Total {
			t.Fatalf("standalone mismatch: %v vs %v", ev1.Total, ev2.Total)
		}
		checked++
		if checked >= 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
	_ = router.DefaultOptions() // keep the import explicit about layering
}
