// Package costdist is a production-oriented implementation of
// cost-distance Steiner trees for timing-constrained global routing,
// reproducing Held & Perner, "Cost-Distance Steiner Trees for
// Timing-Constrained Global Routing" (DAC 2025, arXiv:2503.04419).
//
// The library provides:
//
//   - a 3D global routing graph with layers, wire types and vias and a
//     linear (buffered-wire) delay model, including the technology-derived
//     bifurcation penalty dbif;
//   - the paper's fast randomized O(log t)-approximation algorithm for
//     cost-distance Steiner trees with bifurcation penalties, including
//     all practical enhancements of §III (SolveCD);
//   - the three baselines it is compared against — L1-shortest,
//     shallow-light and Prim-Dijkstra topologies, each embedded optimally
//     into the routing graph (Solve with methods L1/SL/PD);
//   - an exact reference solver for small instances (SolveExact);
//   - a timing-constrained global router with Lagrangean congestion and
//     timing pricing (RouteChip), synthetic chip generation matching the
//     paper's Table III (ChipSuite/GenerateChip), and the shared objective
//     evaluator (Evaluate) used for all comparisons;
//   - a batch-solving subsystem for throughput workloads: Solver reuses
//     a scratch arena so repeated solves stop allocating, and SolveBatch
//     fans instances across parallel workers with bit-identical results
//     to a sequential loop (see batch.go);
//   - an incremental routing engine (RouterOptions.Incremental): after
//     the first rip-up-and-reroute wave only nets invalidated by
//     congestion or timing price changes are re-solved, with cache and
//     delta counters reported in RouteMetrics. The disabled path is
//     bit-identical to full re-solving. RouterOptions.RepairTol ≥ 0
//     adds a topology-repair rung between replay and full re-solve: a
//     net dirtied only by price drift is first re-embedded optimally on
//     its cached topology (internal/reembed) and escalates to the
//     oracle only when the repair degrades past tolerance
//     (RouteMetrics.NetsRepaired / RepairEscalated);
//   - a pluggable oracle registry (internal/oracle) behind the Method
//     type: every fixed method is a registry lookup, the Auto driver
//     picks an oracle per net from its timing criticality
//     (RouterOptions.Selection), and the Portfolio driver races several
//     oracles per net and keeps the best-priced tree. Per-oracle solve
//     counts are reported in RouteMetrics.SolvesByOracle;
//   - externalized router state and warm-started rerouting:
//     RouteChipCheckpoint returns the run's RouterState (cached trees
//     with solve snapshots, congestion multipliers, timing state),
//     MarshalCheckpoint/UnmarshalCheckpoint give it a versioned
//     byte-stable wire form, and RouteChipFrom diffs a new chip
//     against a checkpoint (moved pins, added/removed nets, capacity
//     edits — see PerturbChip for ECO-style perturbations) and
//     re-solves only the invalidated nets. An unperturbed warm start
//     solves nothing and reproduces the cold result exactly.
//
// Everything is deterministic given explicit seeds and uses only the
// standard library.
package costdist

import (
	"context"
	"io"

	"costdist/internal/buffering"
	"costdist/internal/chipgen"
	"costdist/internal/core"
	"costdist/internal/dly"
	"costdist/internal/exact"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
	"costdist/internal/obs"
	"costdist/internal/router"
	"costdist/internal/viz"
)

// Re-exported core types. The aliases make the internal implementation
// packages usable through the public API without exposing their import
// paths.
type (
	// Pt is a point in the gcell plane; Rect an inclusive rectangle.
	Pt   = geom.Pt
	Rect = geom.Rect

	// Graph is the 3D global routing graph; Costs the congestion-priced
	// view of its edge costs c(e) and delays d(e).
	Graph    = grid.Graph
	Costs    = grid.Costs
	Layer    = grid.Layer
	WireType = grid.WireType
	Vertex   = grid.V
	Arc      = grid.Arc

	// Instance is one cost-distance Steiner tree problem; Tree an
	// embedded Steiner tree; Evaluation the objective decomposition.
	Instance   = nets.Instance
	Sink       = nets.Sink
	Tree       = nets.RTree
	Step       = nets.Step
	Evaluation = nets.Eval
	PlaneTree  = nets.PlaneTree

	// CDOptions selects the §III enhancements of the core algorithm;
	// TraceEvent reports merges to trace callbacks.
	CDOptions  = core.Options
	TraceEvent = core.TraceEvent

	// Method selects a Steiner oracle driver — a thin alias over the
	// oracle registry lookup for the fixed four, plus the Auto and
	// Portfolio drivers; SelectionOptions configures their per-net
	// criticality bands and pool. RouterOptions and RouteMetrics
	// configure and report full routing runs.
	Method           = router.Method
	SelectionOptions = router.SelectionOptions
	RouterOptions    = router.Options
	RouteMetrics     = router.Metrics
	RouteResult      = router.Result

	// RouterState is the externalized state of a routing run — cached
	// trees with their solve snapshots, congestion multipliers, timing
	// state — produced by RouteChipCheckpoint and consumed by
	// RouteChipFrom for ECO-style warm-started rerouting.
	// RouterNetState is its per-net entry; PinSig the terminal
	// signature nets are diffed by.
	RouterState    = router.State
	RouterNetState = router.NetState
	PinSig         = nets.PinSig

	// Recorder is the structured-telemetry recorder attached via
	// RouterOptions.Recorder (nil = zero overhead, bit-identical
	// results). TelemetrySpan is one recorded span; WaveSnapshot the
	// per-wave convergence record its OnWave callback streams;
	// StageNanos one wave's walltime breakdown by pipeline stage
	// (RouteMetrics.StageNanosPerWave).
	Recorder      = obs.Recorder
	TelemetrySpan = obs.Span
	WaveSnapshot  = obs.WaveSnapshot
	StageNanos    = router.StageNanos

	// Chip is a generated design; ChipSpec its parameters; Tech the
	// electrical technology behind the delay model.
	Chip     = chipgen.Chip
	ChipSpec = chipgen.Spec
	Tech     = dly.Tech
	Buffer   = dly.Buffer

	// ExactResult carries the exact solvers' certified bounds;
	// ExactGoalLimits bounds the goal-oriented exact search.
	ExactResult     = exact.Result
	ExactGoalLimits = exact.GoalLimits

	// BufferResult reports explicit repeater insertion on a tree.
	BufferResult = buffering.Result
)

// The four Steiner tree algorithms of the paper's comparison (§IV-A),
// plus the two drivers layered over the oracle registry: Auto picks an
// oracle per net from its timing criticality, Portfolio races several
// oracles on every net and keeps the best-priced tree. Exact routes
// every net with the goal-oriented exact tier (CD-seeded, deterministic
// budget, heuristic fallback beyond it).
const (
	L1        = router.L1
	SL        = router.SL
	PD        = router.PD
	CD        = router.CD
	Auto      = router.Auto
	Portfolio = router.Portfolio
	Exact     = router.Exact
)

// MethodByName resolves an oracle or driver name — a registry name
// ("cd", "rsmt", "sl", "pd", "exact"), an alias ("l1"), or a driver
// mode ("auto", "portfolio"), case-insensitive — to its Method.
func MethodByName(name string) (Method, bool) { return router.MethodByName(name) }

// MethodNames returns every name MethodByName accepts in canonical
// form: the registry's oracle names followed by the driver modes.
func MethodNames() []string { return router.MethodNames() }

// OracleNames returns the oracle registry's canonical names, sorted —
// the valid values for SelectionOptions bands and Portfolio pools.
func OracleNames() []string { return router.OracleNames() }

// NewGrid builds a routing graph of nx×ny gcells with the given layer
// stack and physical gcell pitch in µm.
func NewGrid(nx, ny int32, layers []Layer, gcellUM float64) *Graph {
	return grid.New(nx, ny, layers, gcellUM)
}

// NewCosts returns a congestion-free cost view (all multipliers 1).
func NewCosts(g *Graph) *Costs { return grid.NewCosts(g) }

// DefaultTech returns the synthetic 5nm-flavoured technology with the
// given number of routing layers; Dbif derives the bifurcation penalty
// from its repeater chain model (paper §I).
func DefaultTech(layers int) Tech { return dly.DefaultTech(layers) }

// BuildLayers converts a technology into a grid layer stack.
func BuildLayers(t Tech) []Layer { return t.BuildLayers() }

// Dbif returns the technology's bifurcation delay penalty in ps.
func Dbif(t Tech) float64 { return t.Dbif() }

// DefaultCDOptions enables the enhancements used for the paper's "CD"
// experiments.
func DefaultCDOptions() CDOptions { return core.DefaultOptions() }

// SolveCD runs the paper's cost-distance algorithm (Algorithm 1 plus
// §III) on the instance.
func SolveCD(in *Instance, opt CDOptions) (*Tree, error) {
	return core.Solve(in, opt)
}

// SolveCDTraced is SolveCD with a per-merge callback (Figure 3 style).
func SolveCDTraced(in *Instance, opt CDOptions, trace func(TraceEvent)) (*Tree, error) {
	return core.SolveTraced(in, opt, trace)
}

// Solve runs any oracle driver standalone on an instance: one of the
// four fixed algorithms, Auto (per-net adaptive selection via
// opt.Selection) or Portfolio (race the pool, keep the best-priced
// tree).
func Solve(in *Instance, m Method, opt RouterOptions) (*Tree, error) {
	return router.SolveNet(in, m, opt)
}

// SolveExact solves a small instance optimally (Dreyfus-Wagner-style
// DP); see ExactResult for the bound semantics.
func SolveExact(in *Instance) (*ExactResult, error) { return exact.Solve(in) }

// SolveExactGoal solves an instance optimally with the goal-oriented
// label-setting solver ("Dijkstra meets Steiner"): the same certified
// bounds as SolveExact, but best-first search with admissible
// mask-aware future costs, bounding-box pruning and an incumbent
// seeded by the CD heuristic push it to instances (8–12 sinks,
// realistic windows) far beyond the DP's reach. The context is checked
// periodically; cancellation returns promptly mid-search.
func SolveExactGoal(ctx context.Context, in *Instance) (*ExactResult, error) {
	return exact.SolveGoal(ctx, in)
}

// SolveExactGoalLimits is SolveExactGoal with explicit deterministic
// budgets (sinks, window vertices, settled labels, incumbent seed).
func SolveExactGoalLimits(ctx context.Context, in *Instance, lim ExactGoalLimits) (*ExactResult, error) {
	return exact.SolveGoalLimits(ctx, in, lim)
}

// DefaultExactGoalLimits returns the standalone goal-solver budget;
// ExactOracleLimits the conservative in-router budget of the "exact"
// oracle tier.
func DefaultExactGoalLimits() ExactGoalLimits { return exact.DefaultGoalLimits() }

// ExactOracleLimits returns the deterministic budget the "exact"
// oracle tier applies per net before falling back to the CD heuristic.
func ExactOracleLimits() ExactGoalLimits { return exact.OracleLimits() }

// Evaluate scores an embedded tree under objective (1) with the
// bifurcation delay model (3); all algorithms are compared through this
// single function.
func Evaluate(in *Instance, tr *Tree) (*Evaluation, error) {
	return nets.Evaluate(in, tr)
}

// DefaultRouterOptions mirrors the paper's routing setup.
func DefaultRouterOptions() RouterOptions { return router.DefaultOptions() }

// NewRecorder returns a telemetry recorder for RouterOptions.Recorder.
// Attaching one populates RouteMetrics.ObjectivePerWave /
// OverflowPerWave / StageNanosPerWave, captures per-stage spans for
// WriteTrace, and streams per-wave snapshots through OnWave — all
// without perturbing the routed result.
func NewRecorder() *Recorder { return obs.New() }

// WriteTrace renders a recorder's spans as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto (grroute -trace and incbench
// -trace write these files).
func WriteTrace(w io.Writer, rec *Recorder) error {
	return obs.WriteTrace(w, rec.Spans())
}

// ValidateTrace checks that data is a well-formed Chrome trace_event
// document as produced by WriteTrace (CI round-trips every written
// trace through this).
func ValidateTrace(data []byte) error { return obs.ValidateTrace(data) }

// RouteChip runs the full timing-constrained global routing flow on a
// chip with the selected Steiner oracle.
func RouteChip(chip *Chip, m Method, opt RouterOptions) (*RouteResult, error) {
	return router.Route(chip, m, opt)
}

// RouteChipCtx is RouteChip with cancellation: the context is checked
// between rip-up-and-reroute waves and between per-net oracle solves, so
// a cancelled run returns ctx.Err() within roughly one net-solve
// latency. The non-cancelled path is bit-identical to RouteChip.
func RouteChipCtx(ctx context.Context, chip *Chip, m Method, opt RouterOptions) (*RouteResult, error) {
	return router.RouteCtx(ctx, chip, m, opt)
}

// RouteChipCheckpoint is RouteChip returning, alongside the result, the
// run's externalized state: a RouterState that RouteChipFrom can
// warm-start from, and that MarshalCheckpoint serializes. The routing
// result is bit-identical to RouteChip.
func RouteChipCheckpoint(chip *Chip, m Method, opt RouterOptions) (*RouteResult, *RouterState, error) {
	return router.RouteCheckpoint(context.Background(), chip, m, opt)
}

// RouteChipCtxCheckpoint is RouteChipCheckpoint with cancellation.
func RouteChipCtxCheckpoint(ctx context.Context, chip *Chip, m Method, opt RouterOptions) (*RouteResult, *RouterState, error) {
	return router.RouteCheckpoint(ctx, chip, m, opt)
}

// RouteChipFrom warm-starts routing on chip from a previous run's
// checkpoint: the chip is diffed against the state (moved, added or
// re-pinned nets; capacity edits), only the invalidated nets are
// re-solved in the first wave, and later waves run the ordinary
// incremental dirty-net scheduler under the restored congestion and
// timing prices. An unperturbed warm start re-solves nothing and
// reproduces the checkpointed result exactly. The returned state is
// the new run's checkpoint, so ECO chains compose.
func RouteChipFrom(st *RouterState, chip *Chip, m Method, opt RouterOptions) (*RouteResult, *RouterState, error) {
	return router.RouteFrom(context.Background(), st, chip, m, opt)
}

// RouteChipCtxFrom is RouteChipFrom with cancellation.
func RouteChipCtxFrom(ctx context.Context, st *RouterState, chip *Chip, m Method, opt RouterOptions) (*RouteResult, *RouterState, error) {
	return router.RouteFrom(ctx, st, chip, m, opt)
}

// PerturbChip returns an ECO-style variant of a chip with roughly frac
// of its nets perturbed (one sink cell each nudged a few gcells; at
// least one net for any frac > 0), plus the number of nets whose pin
// signature changed. The original chip is never modified, and the
// perturbed chip shares its grid — warm-start compatible with
// checkpoints of the original.
func PerturbChip(chip *Chip, frac float64, seed uint64) (*Chip, int, error) {
	return chipgen.Perturb(chip, frac, seed)
}

// ChipSuite returns the c1..c8 specs of Table III with net counts
// scaled by scale (1.0 = paper size; layer counts always exact).
func ChipSuite(scale float64) []ChipSpec { return chipgen.Suite(scale) }

// ChipSpecByName returns the suite spec with the given name at the
// given scale — the lookup shared by the CLIs and the service layer.
func ChipSpecByName(name string, scale float64) (ChipSpec, bool) {
	for _, s := range chipgen.Suite(scale) {
		if s.Name == name {
			return s, true
		}
	}
	return ChipSpec{}, false
}

// GenerateChip builds a synthetic design from a spec.
func GenerateChip(spec ChipSpec) (*Chip, error) { return chipgen.Generate(spec) }

// BufferTree inserts repeaters along an embedded tree at the optimal
// spacing of each wire and returns stage-accurate Elmore delays next to
// the linear-model prediction — the "after buffering" view that the
// linear delay model and dbif approximate (paper §I, Figure 2).
func BufferTree(in *Instance, tr *Tree, tech Tech) (*BufferResult, error) {
	return buffering.Buffer(in, tr, tech)
}

// RenderTree renders an embedded tree as an SVG (plane projection,
// layer-colored).
func RenderTree(in *Instance, tr *Tree, cellPx float64) string {
	return viz.RenderTree(in, tr, cellPx)
}

// RenderTraceFrames renders one SVG frame per merge of a traced CD run.
func RenderTraceFrames(in *Instance, events []TraceEvent, cellPx float64) []string {
	return viz.RenderTraceFrames(in, events, cellPx)
}
