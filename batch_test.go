package costdist

import (
	"reflect"
	"testing"
)

// TestSolveBatchMatchesSequential is the tentpole acceptance test: for
// every method, SolveBatch across many workers must return bit-identical
// trees and evaluations to the plain sequential Solve loop over the same
// instances.
func TestSolveBatchMatchesSequential(t *testing.T) {
	ins := benchInstances(24, 5, 12, 24, 4)
	ropt := DefaultRouterOptions()
	for _, m := range []Method{L1, SL, PD, CD} {
		want := make([]BatchResult, len(ins))
		for i, in := range ins {
			tr, err := Solve(in, m, ropt)
			if err != nil {
				t.Fatalf("%v seq %d: %v", m, i, err)
			}
			ev, err := Evaluate(in, tr)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = BatchResult{Tree: tr, Eval: ev}
		}
		for _, workers := range []int{1, 3, 8} {
			got := SolveBatch(ins, m, BatchOptions{Workers: workers, Router: ropt})
			if len(got) != len(want) {
				t.Fatalf("%v workers=%d: %d results", m, workers, len(got))
			}
			for i := range got {
				if got[i].Err != nil {
					t.Fatalf("%v workers=%d instance %d: %v", m, workers, i, got[i].Err)
				}
				if !reflect.DeepEqual(want[i].Tree, got[i].Tree) {
					t.Fatalf("%v workers=%d instance %d: tree differs from sequential", m, workers, i)
				}
				if !reflect.DeepEqual(want[i].Eval, got[i].Eval) {
					t.Fatalf("%v workers=%d instance %d: evaluation differs from sequential", m, workers, i)
				}
			}
		}
	}
}

// TestSolverReuseMatchesFresh drives one public Solver across a stream
// of instances and compares against one-shot solves.
func TestSolverReuseMatchesFresh(t *testing.T) {
	ins := benchInstances(24, 5, 16, 12, 4)
	s := NewSolver()
	opt := DefaultCDOptions()
	for i, in := range ins {
		want, err := SolveCD(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.SolveCD(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("instance %d: reused solver diverged", i)
		}
	}
	if s.Solves() != len(ins) {
		t.Fatalf("Solves = %d, want %d", s.Solves(), len(ins))
	}
}

// TestSolveBatchErrorIsolation checks a failing instance reports its
// error without poisoning the rest of the batch.
func TestSolveBatchErrorIsolation(t *testing.T) {
	ins := benchInstances(24, 5, 8, 8, 4)
	bad := *ins[3]
	bad.Win.X1 = bad.Win.X0 - 1 // empty window: nothing can route
	ins[3] = &bad
	got := SolveBatch(ins, CD, BatchOptions{Workers: 4, Router: DefaultRouterOptions()})
	for i, r := range got {
		if i == 3 {
			if r.Err == nil {
				t.Fatal("instance 3 should fail")
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("instance %d poisoned: %v", i, r.Err)
		}
		if r.Tree == nil || r.Eval == nil {
			t.Fatalf("instance %d missing result", i)
		}
	}
}

func TestSolveBatchEmpty(t *testing.T) {
	if got := SolveBatch(nil, CD, DefaultBatchOptions()); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}
