package costdist

// Differential test harness: randomized small instances are solved by
// every heuristic (CD, L1, SL, PD) and cross-checked against the exact
// Dreyfus–Wagner-style DP (SolveExact):
//
//   - every heuristic tree's evaluated objective must be ≥ the DP's
//     certified lower bound — nothing beats the optimum;
//   - the CD tree must stay inside the paper's O(log t) approximation
//     guarantee, checked with the conservative band 3 + 2·log₂(t+1);
//   - every tree must pass structural property checks that do not rely
//     on Evaluate's own validation: connectivity from the root to every
//     sink, tree shape (|E| = |V|−1, no duplicate undirected edges), and
//     an independent recomputation of the congestion cost and — for
//     dbif = 0, where no split penalties apply — of every sink delay.

import (
	"math"
	"math/rand/v2"
	"testing"
)

// diffInstance builds a seeded random instance small enough for the
// exact DP: full-grid window over nx×nx×3 vertices with ≤ 4 sinks.
func diffInstance(seed uint64, nx int32, sinks int, dbif float64) *Instance {
	rng := rand.New(rand.NewPCG(seed, 0xD1FF))
	tech := DefaultTech(3)
	g := NewGrid(nx, nx, BuildLayers(tech), tech.GCellUM)
	c := NewCosts(g)
	for i := range c.Mult {
		if rng.IntN(4) == 0 {
			c.Mult[i] = 1 + 3*rng.Float32()
		}
	}
	in := &Instance{
		G: g, C: c,
		Root: g.At(rng.Int32N(nx), rng.Int32N(nx), 0),
		DBif: dbif, Eta: 0.25, Seed: seed,
		Win: g.FullWindow(),
	}
	used := map[Vertex]bool{in.Root: true}
	for len(in.Sinks) < sinks {
		v := g.At(rng.Int32N(nx), rng.Int32N(nx), 0)
		if used[v] {
			continue
		}
		used[v] = true
		w := 0.001 + 0.009*rng.Float64()
		if rng.IntN(4) == 0 {
			w = 0.02 + 0.03*rng.Float64()
		}
		in.Sinks = append(in.Sinks, Sink{V: v, W: w})
	}
	return in
}

// checkTreeProperties validates tree structure without trusting
// Evaluate: connectivity, tree shape and independent cost recomputation.
func checkTreeProperties(t *testing.T, in *Instance, tr *Tree, ev *Evaluation) {
	t.Helper()
	type und struct{ a, b Vertex }
	seen := map[und]bool{}
	adj := map[Vertex][]Step{}
	for _, st := range tr.Steps {
		a, b := st.From, st.Arc.To
		if a > b {
			a, b = b, a
		}
		if seen[und{a, b}] {
			t.Fatalf("duplicate undirected edge %d-%d", a, b)
		}
		seen[und{a, b}] = true
		adj[st.From] = append(adj[st.From], st)
		rev := st.Arc
		rev.To = st.From
		adj[st.Arc.To] = append(adj[st.Arc.To], Step{From: st.Arc.To, Arc: rev})
	}
	// BFS from the root; record arc-delay distance along the way for the
	// dbif = 0 delay recomputation.
	dist := map[Vertex]float64{in.Root: 0}
	queue := []Vertex{in.Root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, st := range adj[v] {
			if _, ok := dist[st.Arc.To]; ok {
				continue
			}
			dist[st.Arc.To] = dist[v] + in.C.ArcDelay(st.Arc)
			queue = append(queue, st.Arc.To)
		}
	}
	if len(tr.Steps) > 0 && len(dist) != len(tr.Steps)+1 {
		t.Fatalf("steps do not form a connected tree: %d vertices reached over %d edges", len(dist), len(tr.Steps))
	}
	for k, s := range in.Sinks {
		if _, ok := dist[s.V]; !ok {
			t.Fatalf("sink %d unreachable from root", k)
		}
	}
	// Independent congestion cost: plain sum over steps.
	cong := 0.0
	for _, st := range tr.Steps {
		cong += in.C.ArcCost(st.Arc)
	}
	if math.Abs(cong-ev.CongCost) > 1e-9*(1+math.Abs(cong)) {
		t.Fatalf("congestion cost mismatch: recomputed %v, Evaluate %v", cong, ev.CongCost)
	}
	wd := 0.0
	for k, s := range in.Sinks {
		wd += s.W * ev.SinkDelay[k]
	}
	if math.Abs(wd-ev.DelayCost) > 1e-9*(1+math.Abs(wd)) {
		t.Fatalf("delay cost mismatch: Σw·delay %v, Evaluate %v", wd, ev.DelayCost)
	}
	if math.Abs(ev.CongCost+ev.DelayCost-ev.Total) > 1e-9*(1+math.Abs(ev.Total)) {
		t.Fatalf("total %v != cong %v + delay %v", ev.Total, ev.CongCost, ev.DelayCost)
	}
	if in.DBif == 0 {
		// No bifurcation penalties: a sink's delay is exactly the summed
		// arc delay of its unique tree path.
		for k, s := range in.Sinks {
			if math.Abs(dist[s.V]-ev.SinkDelay[k]) > 1e-9*(1+dist[s.V]) {
				t.Fatalf("sink %d delay %v, path recomputation %v", k, ev.SinkDelay[k], dist[s.V])
			}
		}
	} else {
		// With penalties the sink delay can only exceed the raw path sum.
		for k, s := range in.Sinks {
			if ev.SinkDelay[k] < dist[s.V]-1e-9 {
				t.Fatalf("sink %d delay %v below raw path delay %v", k, ev.SinkDelay[k], dist[s.V])
			}
		}
	}
}

func TestDifferentialHeuristicsVsExact(t *testing.T) {
	type tc struct {
		seed  uint64
		nx    int32
		sinks int
		dbif  float64
	}
	var cases []tc
	for seed := uint64(1); seed <= 10; seed++ {
		dbif := 0.0
		if seed%2 == 0 {
			dbif = 20 // ps; exercises the bifurcation penalty model
		}
		cases = append(cases, tc{seed: seed, nx: 7 + int32(seed%4), sinks: 2 + int(seed%3), dbif: dbif})
	}
	ropt := DefaultRouterOptions()
	for _, c := range cases {
		in := diffInstance(c.seed, c.nx, c.sinks, c.dbif)
		ex, err := SolveExact(in)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", c.seed, err)
		}
		if ex.Total < ex.LowerBound-1e-9 {
			t.Fatalf("seed %d: exact upper bound %v below its lower bound %v", c.seed, ex.Total, ex.LowerBound)
		}
		exEv, err := Evaluate(in, ex.Tree)
		if err != nil {
			t.Fatalf("seed %d: exact tree invalid: %v", c.seed, err)
		}
		checkTreeProperties(t, in, ex.Tree, exEv)

		t1 := float64(in.T())
		band := 3 + 2*math.Log2(t1+1)
		for _, m := range []Method{CD, L1, SL, PD} {
			var tr *Tree
			if m == CD {
				tr, err = SolveCD(in, DefaultCDOptions())
			} else {
				tr, err = Solve(in, m, ropt)
			}
			if err != nil {
				t.Fatalf("seed %d %v: %v", c.seed, m, err)
			}
			ev, err := Evaluate(in, tr)
			if err != nil {
				t.Fatalf("seed %d %v: evaluate: %v", c.seed, m, err)
			}
			checkTreeProperties(t, in, tr, ev)
			if ev.Total < ex.LowerBound-1e-6 {
				t.Fatalf("seed %d %v: heuristic total %v beats certified lower bound %v",
					c.seed, m, ev.Total, ex.LowerBound)
			}
			if ev.Total > band*ex.LowerBound+1e-9 {
				t.Fatalf("seed %d %v: total %v outside approximation band %.2f×%v",
					c.seed, m, ev.Total, band, ex.LowerBound)
			}
			t.Logf("seed %d %v: total %.4f, exact LB %.4f (ratio %.3f)",
				c.seed, m, ev.Total, ex.LowerBound, ev.Total/ex.LowerBound)
		}
	}
}
