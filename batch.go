package costdist

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"costdist/internal/core"
	"costdist/internal/router"
)

// Solver is a reusable Steiner tree solver. It owns a private scratch
// arena (component records, heaps, label maps, ownership stamps) that
// is recycled across calls, removing the per-call allocations that
// dominate repeated solves. Results are bit-identical to the package
// level SolveCD/Solve functions.
//
// A Solver is not safe for concurrent use; create one per goroutine.
// SolveBatch does this automatically.
type Solver struct {
	scr *core.Scratch
}

// NewSolver returns a solver with an empty arena. The arena warms up
// over the first few calls as its containers grow to the working-set
// size of the instance stream.
func NewSolver() *Solver {
	return &Solver{scr: core.NewScratch()}
}

// SolveCD is SolveCD through the reusable arena. Any opt.Scratch set by
// the caller is replaced by the solver's own arena.
func (s *Solver) SolveCD(in *Instance, opt CDOptions) (*Tree, error) {
	opt.Scratch = s.scr
	return core.Solve(in, opt)
}

// SolveCDTraced is SolveCDTraced through the reusable arena.
func (s *Solver) SolveCDTraced(in *Instance, opt CDOptions, trace func(TraceEvent)) (*Tree, error) {
	opt.Scratch = s.scr
	return core.SolveTraced(in, opt, trace)
}

// Solve runs any oracle driver — the fixed four, Auto or Portfolio —
// through the reusable arena (the arena accelerates the CD oracle,
// including its solves inside Auto and Portfolio; baselines pass
// through unchanged).
func (s *Solver) Solve(in *Instance, m Method, opt RouterOptions) (*Tree, error) {
	opt.CoreOpt.Scratch = s.scr
	return router.SolveNet(in, m, opt)
}

// Solves reports how many solves completed through this solver's arena.
func (s *Solver) Solves() int { return s.scr.Solves }

// BatchOptions configures SolveBatch.
type BatchOptions struct {
	// Workers caps the number of parallel solver goroutines; 0 or
	// negative means runtime.NumCPU(). The worker count never affects
	// results, only throughput.
	Workers int
	// Router configures the oracle exactly as in Solve; its
	// CoreOpt.Scratch is ignored (each worker gets a private arena).
	Router RouterOptions
}

// DefaultBatchOptions pairs the paper's router setup with one worker
// per CPU.
func DefaultBatchOptions() BatchOptions {
	return BatchOptions{Router: DefaultRouterOptions()}
}

// BatchResult is the outcome for one instance of a batch: the embedded
// tree and its objective evaluation, or the error that instance
// produced. Exactly one of Tree/Err is non-nil.
type BatchResult struct {
	Tree *Tree
	Eval *Evaluation
	Err  error
}

// SolveBatch solves every instance with the selected method, fanning
// the work across parallel workers with one scratch arena each.
// Results[i] always belongs to ins[i], every instance is solved under
// its own Instance.Seed, and no state flows between instances — so the
// output is bit-identical to the sequential loop
//
//	for i, in := range ins { tree[i], _ = Solve(in, m, opt.Router) }
//
// regardless of worker count or scheduling.
//
// Instances may share their Graph and Costs (both are read-only during
// solves). A per-instance error does not abort the batch; check each
// BatchResult.Err.
func SolveBatch(ins []*Instance, m Method, opt BatchOptions) []BatchResult {
	out, _ := SolveBatchCtx(context.Background(), ins, m, opt)
	return out
}

// SolveBatchCtx is SolveBatch with cancellation. The context is checked
// before every instance claim, so a cancelled batch stops within one
// solve latency and returns ctx.Err(); results computed before the
// cancellation are kept (the rest stay zero-valued). On the
// non-cancelled path the error is nil and the results are bit-identical
// to SolveBatch.
func SolveBatchCtx(ctx context.Context, ins []*Instance, m Method, opt BatchOptions) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(ins))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(ins) {
		workers = len(ins)
	}
	if workers <= 1 {
		s := NewSolver()
		for i, in := range ins {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = solveOne(s, in, m, opt.Router)
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewSolver()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(ins) {
					return
				}
				out[i] = solveOne(s, ins[i], m, opt.Router)
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

func solveOne(s *Solver, in *Instance, m Method, ropt RouterOptions) BatchResult {
	tr, err := s.Solve(in, m, ropt)
	if err != nil {
		return BatchResult{Err: err}
	}
	ev, err := Evaluate(in, tr)
	if err != nil {
		return BatchResult{Err: err}
	}
	return BatchResult{Tree: tr, Eval: ev}
}
