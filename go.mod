module costdist

go 1.22
