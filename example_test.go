package costdist_test

import (
	"context"
	"fmt"
	"log"

	"costdist"
)

// ExampleSolveCD builds a small routing graph, defines one net with a
// timing-critical sink, and solves it with the paper's cost-distance
// algorithm.
func ExampleSolveCD() {
	tech := costdist.DefaultTech(6)
	g := costdist.NewGrid(32, 32, costdist.BuildLayers(tech), tech.GCellUM)

	in := &costdist.Instance{
		G: g, C: costdist.NewCosts(g),
		Root: g.At(3, 3, 0),
		Sinks: []costdist.Sink{
			{V: g.At(28, 6, 0), W: 0.05}, // timing-critical
			{V: g.At(24, 26, 0), W: 0.002},
			{V: g.At(6, 24, 0), W: 0}, // don't care
		},
		DBif: costdist.Dbif(tech),
		Eta:  0.25,
		Seed: 1,
	}
	in.Win = in.DefaultWindow(6)

	tr, err := costdist.SolveCD(in, costdist.DefaultCDOptions())
	if err != nil {
		log.Fatal(err)
	}
	ev, err := costdist.Evaluate(in, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire steps: %d\n", ev.WireSteps)
	fmt.Printf("vias: %d\n", ev.Vias)
	fmt.Printf("objective: %.3f\n", ev.Total)
	// Output:
	// wire steps: 70
	// vias: 13
	// objective: 150.187
}

// ExampleSolveExactGoal certifies a small net to optimality with the
// goal-oriented exact solver: a heuristic tree seeds the incumbent
// upper bound, the label-setting search then either proves it optimal
// or returns a strictly better tree together with the certified lower
// bound.
func ExampleSolveExactGoal() {
	tech := costdist.DefaultTech(3)
	g := costdist.NewGrid(16, 16, costdist.BuildLayers(tech), tech.GCellUM)

	in := &costdist.Instance{
		G: g, C: costdist.NewCosts(g),
		Root: g.At(2, 2, 0),
		Sinks: []costdist.Sink{
			{V: g.At(13, 4, 0), W: 0.04}, // timing-critical
			{V: g.At(11, 13, 0), W: 0.003},
			{V: g.At(4, 12, 0), W: 0.001},
		},
		DBif: costdist.Dbif(tech),
		Eta:  0.25,
		Seed: 1,
	}
	in.Win = g.FullWindow()

	// Seed the incumbent with the CD heuristic (the oracle adapter and
	// the differential harness do the same).
	cd, err := costdist.SolveCD(in, costdist.DefaultCDOptions())
	if err != nil {
		log.Fatal(err)
	}
	cdEv, err := costdist.Evaluate(in, cd)
	if err != nil {
		log.Fatal(err)
	}

	lim := costdist.DefaultExactGoalLimits()
	lim.UpperBound = cdEv.Total
	res, err := costdist.SolveExactGoalLimits(context.Background(), in, lim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified lower bound: %.3f\n", res.LowerBound)
	fmt.Printf("cd tree within certified gap: %t\n", cdEv.Total >= res.LowerBound)
	fmt.Printf("exact tree matches its certificate: %t\n",
		res.Total <= res.LowerBound*(1+1e-6))
	// Output:
	// certified lower bound: 62.211
	// cd tree within certified gap: true
	// exact tree matches its certificate: true
}

// ExampleParseInstance decodes the JSON schema consumed by
// cmd/cdsteiner into a solvable instance.
func ExampleParseInstance() {
	doc := []byte(`{
		"nx": 16, "ny": 16, "layers": 4,
		"root": [2, 2, 0],
		"sinks": [
			{"x": 12, "y": 4,  "l": 0, "w": 0.02},
			{"x": 5,  "y": 13, "l": 0, "w": 0.001}
		],
		"dbif": -1,
		"congestion": [
			{"x0": 6, "y0": 0, "x1": 9, "y1": 15, "l": 1, "mult": 4}
		]
	}`)
	in, err := costdist.ParseInstance(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sinks: %d\n", len(in.Sinks))
	fmt.Printf("dbif derived: %t\n", in.DBif > 0)

	tr, err := costdist.SolveCD(in, costdist.DefaultCDOptions())
	if err != nil {
		log.Fatal(err)
	}
	out, err := costdist.MarshalTree(in, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded: %t\n", len(out) > 0)
	// Output:
	// sinks: 2
	// dbif derived: true
	// encoded: true
}

// ExampleSolveBatch solves a batch of independent instances across all
// CPU cores with one reusable solver arena per worker. Results are
// bit-identical to a sequential Solve loop, in input order.
func ExampleSolveBatch() {
	tech := costdist.DefaultTech(5)
	g := costdist.NewGrid(24, 24, costdist.BuildLayers(tech), tech.GCellUM)
	costs := costdist.NewCosts(g)

	ins := make([]*costdist.Instance, 4)
	for i := range ins {
		in := &costdist.Instance{
			G: g, C: costs,
			Root: g.At(2, int32(2+5*i), 0),
			Sinks: []costdist.Sink{
				{V: g.At(20, int32(3+4*i), 0), W: 0.01},
				{V: g.At(12, 20, 0), W: 0.001},
			},
			DBif: costdist.Dbif(tech),
			Eta:  0.25,
			Seed: uint64(i),
		}
		in.Win = in.DefaultWindow(6)
		ins[i] = in
	}

	results := costdist.SolveBatch(ins, costdist.CD, costdist.DefaultBatchOptions())
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("net %d: objective %.3f\n", i, r.Eval.Total)
	}
	// Output:
	// net 0: objective 66.503
	// net 1: objective 60.322
	// net 2: objective 56.747
	// net 3: objective 53.173
}

// ExampleRouteChip_incremental routes a small synthetic chip with the
// incremental engine: wave 0 solves every net, later waves re-solve only
// nets invalidated by congestion or timing price changes (the same flow
// as `grroute -incremental`).
func ExampleRouteChip_incremental() {
	spec := costdist.ChipSuite(0.002)[0] // c1, scaled down for the example
	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		log.Fatal(err)
	}

	opt := costdist.DefaultRouterOptions()
	opt.Threads = 2
	opt.Incremental = true

	res, err := costdist.RouteChip(chip, costdist.CD, opt)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("waves: %d\n", len(m.SolvedPerWave))
	fmt.Printf("wave 0 solves every net: %t\n", m.SolvedPerWave[0] == len(chip.NL.Nets))
	fmt.Printf("later waves skip clean nets: %t\n", m.NetsSkipped > 0)
	fmt.Printf("counters add up: %t\n",
		m.NetsSolved+m.NetsSkipped == int64(opt.Waves*len(chip.NL.Nets)))
	// Output:
	// waves: 4
	// wave 0 solves every net: true
	// later waves skip clean nets: true
	// counters add up: true
}

// ExampleRouteChip_autoSelection routes a chip with the Auto oracle
// driver: each net is classified by its timing criticality and routed
// with the matching registry oracle — the expensive cost-distance
// algorithm only where the timing price demands it (the same flow as
// `grroute -oracle auto`).
func ExampleRouteChip_autoSelection() {
	spec := costdist.ChipSuite(0.002)[0] // c1, scaled down for the example
	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		log.Fatal(err)
	}

	opt := costdist.DefaultRouterOptions()
	opt.Threads = 2
	// opt.Selection tunes the bands; the defaults route critical nets
	// with "exact" (the certified tier, CD fallback beyond its budget),
	// budget-tight nets with "sl" and the rest with "rsmt".

	res, err := costdist.RouteChip(chip, costdist.Auto, opt)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	var total int64
	for _, c := range m.SolvesByOracle {
		total += c
	}
	fmt.Printf("every net solved by exactly one oracle: %t\n", total == m.NetsSolved)
	fmt.Printf("several oracles in play: %t\n", len(m.SolvesByOracle) >= 2)
	fmt.Printf("exact tier reserved for a critical minority: %t\n",
		m.SolvesByOracle["exact"] > 0 && m.SolvesByOracle["exact"] < total/2)
	// Output:
	// every net solved by exactly one oracle: true
	// several oracles in play: true
	// exact tier reserved for a critical minority: true
}

// ExampleRouteChipFrom shows ECO-style warm-started rerouting: route a
// chip and checkpoint the run, perturb a few nets, then reroute from
// the checkpoint — only the nets the perturbation invalidated are
// re-solved, and an unperturbed warm start solves nothing at all.
func ExampleRouteChipFrom() {
	spec := costdist.ChipSuite(0.002)[0] // c1, scaled down for the example
	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		log.Fatal(err)
	}
	opt := costdist.DefaultRouterOptions()
	opt.Waves = 2

	// Cold route, keeping the externalized state. The result is
	// bit-identical to plain RouteChip.
	cold, state, err := costdist.RouteChipCheckpoint(chip, costdist.CD, opt)
	if err != nil {
		log.Fatal(err)
	}

	// The state survives serialization: a versioned, byte-stable wire
	// form (this is what the service retains per route job).
	blob, err := costdist.MarshalCheckpoint(state)
	if err != nil {
		log.Fatal(err)
	}
	state, err = costdist.UnmarshalCheckpoint(blob)
	if err != nil {
		log.Fatal(err)
	}

	// An ECO: 5% of the nets get one sink cell nudged.
	pert, changed, err := costdist.PerturbChip(chip, 0.05, 9)
	if err != nil {
		log.Fatal(err)
	}

	warm, _, err := costdist.RouteChipFrom(state, pert, costdist.CD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perturbation touched ≥ 1 net: %t\n", changed >= 1)
	fmt.Printf("warm start reused work: %t\n", warm.Metrics.NetsSkipped > 0)
	fmt.Printf("fewer solves than cold: %t\n", warm.Metrics.NetsSolved < cold.Metrics.NetsSolved)

	// Zero perturbation: the warm start is a no-op reproducing the
	// cold objective exactly.
	noop, _, err := costdist.RouteChipFrom(state, chip, costdist.CD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unperturbed warm start solves nothing: %t\n", noop.Metrics.NetsSolved == 0)
	fmt.Printf("and reproduces the objective: %t\n", noop.Metrics.Objective == cold.Metrics.Objective)
	// Output:
	// perturbation touched ≥ 1 net: true
	// warm start reused work: true
	// fewer solves than cold: true
	// unperturbed warm start solves nothing: true
	// and reproduces the objective: true
}
