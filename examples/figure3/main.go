// Figure 3 replay: runs the cost-distance algorithm on a five-sink net
// with varied delay weights, printing the merge trace (which components
// merge, where the Steiner vertex lands, whether the root was reached)
// and writing one SVG frame per iteration in the style of the paper's
// Figure 3.
package main

import (
	"fmt"
	"log"
	"os"

	"costdist"
)

func main() {
	tech := costdist.DefaultTech(4)
	g := costdist.NewGrid(24, 24, costdist.BuildLayers(tech), tech.GCellUM)
	in := &costdist.Instance{
		G: g, C: costdist.NewCosts(g),
		Root: g.At(3, 20, 0),
		Sinks: []costdist.Sink{
			{V: g.At(6, 6, 0), W: 0.02},
			{V: g.At(9, 4, 0), W: 0.05},
			{V: g.At(12, 12, 0), W: 0.30}, // the heavy sink: slow-growing disk
			{V: g.At(19, 7, 0), W: 0.08},
			{V: g.At(20, 16, 0), W: 0.02},
		},
		DBif: costdist.Dbif(tech), Eta: 0.25,
		Seed: 5,
	}
	in.Win = g.FullWindow()

	var events []costdist.TraceEvent
	tr, err := costdist.SolveCDTraced(in, costdist.DefaultCDOptions(), func(ev costdist.TraceEvent) {
		events = append(events, ev)
		kind := "sink-sink merge"
		if ev.ToRoot {
			kind = "root connection"
		}
		fmt.Printf("iteration %d: %s  u=(%d,%d) w=%.2f  v=(%d,%d) w=%.2f  path %d vertices, %d labels, new rep (%d,%d)\n",
			ev.Iter, kind, ev.PosU.X, ev.PosU.Y, ev.WU, ev.PosV.X, ev.PosV.Y, ev.WV,
			len(ev.Path), ev.Labeled, ev.NewRep.X, ev.NewRep.Y)
	})
	if err != nil {
		log.Fatal(err)
	}
	ev2, err := costdist.Evaluate(in, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal objective %.3f (congestion %.3f + weighted delay %.3f)\n",
		ev2.Total, ev2.CongCost, ev2.DelayCost)

	for i, frame := range costdist.RenderTraceFrames(in, events, 20) {
		name := fmt.Sprintf("figure3-iter%d.svg", i)
		if err := os.WriteFile(name, []byte(frame), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
