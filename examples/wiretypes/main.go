// Layer and wire type assignment under the linear delay model: the same
// two-pin net is routed with increasing delay weight. As criticality
// grows, the cost-distance objective pushes the route from the slow,
// cheap lower layers onto fast upper layers and wide wire types, paying
// vias and congestion cost for delay — the trade-off that motivates
// cost-distance Steiner trees (paper §I).
package main

import (
	"fmt"
	"log"

	"costdist"
)

func main() {
	tech := costdist.DefaultTech(9)
	g := costdist.NewGrid(48, 8, costdist.BuildLayers(tech), tech.GCellUM)

	fmt.Println("routing a 45-gcell two-pin net at increasing criticality:")
	fmt.Printf("%-10s %10s %12s %10s %6s %10s\n", "weight", "delay[ps]", "congestion", "maxlayer", "vias", "wide-steps")
	for _, w := range []float64{0, 0.001, 0.005, 0.02, 0.1, 1} {
		in := &costdist.Instance{
			G: g, C: costdist.NewCosts(g),
			Root:  g.At(1, 4, 0),
			Sinks: []costdist.Sink{{V: g.At(46, 4, 0), W: w}},
			Seed:  1,
		}
		in.Win = in.DefaultWindow(3)
		tr, err := costdist.SolveCD(in, costdist.DefaultCDOptions())
		if err != nil {
			log.Fatal(err)
		}
		ev, err := costdist.Evaluate(in, tr)
		if err != nil {
			log.Fatal(err)
		}
		maxLayer, vias, wide := 0, 0, 0
		for _, st := range tr.Steps {
			_, _, l := g.XYL(st.Arc.To)
			if int(l) > maxLayer {
				maxLayer = int(l)
			}
			if st.Arc.Via {
				vias++
			} else if st.Arc.WT > 0 {
				wide++
			}
		}
		fmt.Printf("%-10.4g %10.1f %12.2f %10s %6d %10d\n",
			w, ev.SinkDelay[0], ev.CongCost, g.Layers[maxLayer].Name, vias, wide)
	}
	fmt.Println("\nhigher weight → faster layers/wires, more vias, higher congestion cost")
}
