// Quickstart: build a small routing graph, define one net with a
// critical and two non-critical sinks, solve it with the cost-distance
// algorithm and print the objective decomposition next to the three
// baselines from the paper.
package main

import (
	"fmt"
	"log"
	"os"

	"costdist"
)

func main() {
	// A 32×32 gcell die with 6 routing layers on the default synthetic
	// 5nm-flavoured technology. dbif is derived from the repeater chain
	// model, exactly as the paper computes it.
	tech := costdist.DefaultTech(6)
	g := costdist.NewGrid(32, 32, costdist.BuildLayers(tech), tech.GCellUM)
	costs := costdist.NewCosts(g)

	in := &costdist.Instance{
		G: g, C: costs,
		Root: g.At(3, 3, 0),
		Sinks: []costdist.Sink{
			{V: g.At(28, 6, 0), W: 0.05}, // timing-critical
			{V: g.At(24, 26, 0), W: 0.002},
			{V: g.At(6, 24, 0), W: 0}, // don't care
		},
		DBif: costdist.Dbif(tech),
		Eta:  0.25,
		Seed: 1,
	}
	in.Win = in.DefaultWindow(6)

	fmt.Printf("net with %d sinks, dbif = %.3f ps\n\n", len(in.Sinks), in.DBif)
	fmt.Printf("%-4s %12s %12s %12s %6s %5s\n", "alg", "objective", "congestion", "delaycost", "wires", "vias")
	for _, m := range []costdist.Method{costdist.L1, costdist.SL, costdist.PD, costdist.CD} {
		tr, err := costdist.Solve(in, m, costdist.DefaultRouterOptions())
		if err != nil {
			log.Fatal(err)
		}
		ev, err := costdist.Evaluate(in, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4v %12.3f %12.3f %12.3f %6d %5d\n", m, ev.Total, ev.CongCost, ev.DelayCost, ev.WireSteps, ev.Vias)
	}

	// Render the CD tree.
	tr, err := costdist.SolveCD(in, costdist.DefaultCDOptions())
	if err != nil {
		log.Fatal(err)
	}
	ev, _ := costdist.Evaluate(in, tr)
	fmt.Printf("\nCD per-sink delays (ps):")
	for i, d := range ev.SinkDelay {
		fmt.Printf(" sink%d=%.1f", i, d)
	}
	fmt.Println()
	if err := os.WriteFile("quickstart-tree.svg", []byte(costdist.RenderTree(in, tr, 14)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart-tree.svg")
}
