// Timing-constrained global routing end to end: generate a scaled-down
// version of the paper's chip c2 (Table III), route it with each of the
// four Steiner tree oracles, and print the Tables IV/V-style metric rows
// (worst slack, total negative slack, ACE4 congestion, wirelength,
// vias, walltime).
package main

import (
	"fmt"
	"log"

	"costdist"
)

func main() {
	spec := costdist.ChipSuite(0.01)[1] // c2 at 1% of the paper's net count
	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip %s: %d nets on %d layers, clock %.0f ps, dbif %.3f ps\n\n",
		spec.Name, spec.NNets, spec.Layers, chip.ClkPeriod, chip.DBif)

	opt := costdist.DefaultRouterOptions()
	opt.Waves = 4

	fmt.Printf("%-4s %9s %12s %8s %10s %8s %10s\n", "alg", "WS[ps]", "TNS[ps]", "ACE4[%]", "WL[m]", "vias", "walltime")
	for _, m := range []costdist.Method{costdist.L1, costdist.SL, costdist.PD, costdist.CD} {
		res, err := costdist.RouteChip(chip, m, opt)
		if err != nil {
			log.Fatal(err)
		}
		mt := res.Metrics
		fmt.Printf("%-4v %9.0f %12.0f %8.2f %10.4f %8d %10s\n",
			m, mt.WS, mt.TNS, mt.ACE4, mt.WLm, mt.Vias, mt.Walltime.Round(1e6))
	}
	fmt.Println("\n(the paper's Tables IV/V report these columns per chip; see cmd/benchtables)")
}
