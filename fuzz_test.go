package costdist

// Native Go fuzz targets for the serialization boundary. The seed
// corpus comes from examples/instances/ — the same documents
// cmd/cdsteiner consumes. Run with
//
//	go test -fuzz FuzzParseInstance -fuzztime 30s .
//	go test -fuzz FuzzMarshalTreeRoundTrip -fuzztime 30s .

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func addInstanceCorpus(f *testing.F) {
	f.Helper()
	files, err := filepath.Glob(filepath.Join("examples", "instances", "*.json"))
	if err != nil || len(files) == 0 {
		f.Fatalf("seed corpus missing: %v (%d files)", err, len(files))
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// FuzzParseInstance asserts ParseInstance never panics and that every
// accepted document yields a structurally sound instance.
func FuzzParseInstance(f *testing.F) {
	addInstanceCorpus(f)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nx":2,"ny":2,"layers":2,"root":[1,1,1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ParseInstance(data)
		if err != nil {
			return
		}
		g := in.G
		if g == nil || in.C == nil {
			t.Fatal("accepted instance without graph or costs")
		}
		if in.Root < 0 || in.Root >= Vertex(g.NumV()) {
			t.Fatalf("root %d outside graph", in.Root)
		}
		for i, s := range in.Sinks {
			if s.V < 0 || s.V >= Vertex(g.NumV()) {
				t.Fatalf("sink %d vertex %d outside graph", i, s.V)
			}
		}
		for _, p := range in.TermPts() {
			if !in.Win.Contains(p) {
				t.Fatalf("window %+v misses terminal %+v", in.Win, p)
			}
		}
		for _, m := range in.C.Mult {
			if m < 1 || math.IsNaN(float64(m)) || math.IsInf(float64(m), 0) {
				t.Fatalf("congestion multiplier %v out of range", m)
			}
		}
		if in.Eta < 0 || in.Eta > 0.5 {
			t.Fatalf("eta %v outside [0, 1/2]", in.Eta)
		}
	})
}

// FuzzMarshalTreeRoundTrip parses a fuzzed instance, solves it with the
// cheap L1 oracle and requires MarshalTree → UnmarshalTree to reproduce
// the tree exactly: identical re-marshaled bytes and an identical
// objective decomposition. This caught the wire type being dropped from
// TreeJSON (all reloaded edges fell on type 0, skewing the cost of any
// tree using a wider wire), fixed by the wire_types field.
func FuzzMarshalTreeRoundTrip(f *testing.F) {
	addInstanceCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ParseInstance(data)
		if err != nil {
			return
		}
		// Bound the solve so fuzzing stays fast.
		if in.G.NumV() > 4096 || len(in.Sinks) > 8 {
			return
		}
		tr, err := Solve(in, L1, DefaultRouterOptions())
		if err != nil {
			return // unroutable fuzz geometry is not a serialization bug
		}
		blob, err := MarshalTree(in, tr)
		if err != nil {
			t.Fatalf("marshal of a solved tree failed: %v", err)
		}
		back, err := UnmarshalTree(in, blob)
		if err != nil {
			t.Fatalf("unmarshal of own output failed: %v\n%s", err, blob)
		}
		blob2, err := MarshalTree(in, back)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("round-trip not stable:\nfirst  %s\nsecond %s", blob, blob2)
		}
		ev1, err := Evaluate(in, tr)
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := Evaluate(in, back)
		if err != nil {
			t.Fatalf("reloaded tree invalid: %v", err)
		}
		if ev1.Total != ev2.Total || ev1.CongCost != ev2.CongCost || ev1.DelayCost != ev2.DelayCost {
			t.Fatalf("objective changed across round-trip: %+v vs %+v", ev1, ev2)
		}
	})
}

// FuzzExactGoalVsDP cross-checks the two exact solvers on fuzzed
// instances: the goal-oriented label-setting search and the
// Dreyfus–Wagner DP must certify the same lower bound, and both trees
// must pass the structural differential checks. Any divergence means
// one of the two lost optimality — the strongest oracle-correctness
// signal the suite has, since the solvers share no search code.
//
//	go test -fuzz FuzzExactGoalVsDP -fuzztime 30s .
func FuzzExactGoalVsDP(f *testing.F) {
	addInstanceCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ParseInstance(data)
		if err != nil {
			return
		}
		// Bound both solvers: the DP is the scaling wall here.
		if in.G.NumV() > 2048 || len(in.Sinks) > 6 {
			return
		}
		dp, err := SolveExact(in)
		if err != nil {
			return // over the DP's documented size limits
		}
		goal, err := SolveExactGoal(context.Background(), in)
		if err != nil {
			t.Fatalf("goal solver failed where DP succeeded: %v", err)
		}
		if math.Abs(goal.LowerBound-dp.LowerBound) > 1e-7*(1+math.Abs(dp.LowerBound)) {
			t.Fatalf("certified lower bounds diverge: goal %v, DP %v", goal.LowerBound, dp.LowerBound)
		}
		if goal.Total > dp.Total+1e-7*(1+math.Abs(dp.Total)) {
			t.Fatalf("goal tree %v worse than DP tree %v", goal.Total, dp.Total)
		}
		for name, res := range map[string]*ExactResult{"dp": dp, "goal": goal} {
			ev, err := Evaluate(in, res.Tree)
			if err != nil {
				t.Fatalf("%s tree invalid: %v", name, err)
			}
			checkTreeProperties(t, in, res.Tree, ev)
		}
	})
}

// Regression for a hole the fuzz harness' generator could not reach on
// its own: a hand-written document with a wire edge running against its
// layer's preferred direction. Such an edge does not exist in the graph
// and used to be silently mapped onto an unrelated segment id.
func TestUnmarshalTreeRejectsWrongDirection(t *testing.T) {
	in, err := ParseInstance([]byte(`{
		"nx": 8, "ny": 8, "layers": 2,
		"root": [0, 0, 0],
		"sinks": [{"x": 3, "y": 0, "l": 0, "w": 0.01}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0 is horizontal in the default technology: a vertical wire
	// step on it must be rejected.
	_, err = UnmarshalTree(in, []byte(`{"edges": [[[0,0,0],[0,1,0]]], "wire_types": [0]}`))
	if err == nil {
		t.Fatal("vertical edge on a horizontal layer was accepted")
	}
	// The same geometry as a legal via edge still parses.
	if _, err := UnmarshalTree(in, []byte(`{"edges": [[[0,0,0],[0,0,1]]], "wire_types": [-1]}`)); err != nil {
		t.Fatalf("legal via edge rejected: %v", err)
	}
}
