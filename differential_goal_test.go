package costdist

// Band 2 of the differential harness: instances with 8–12 sinks over
// windows the Dreyfus–Wagner DP cannot afford, certified by the
// goal-oriented exact solver (SolveExactGoal). Beyond the band-1
// assertions (heuristics ≥ certified lower bound, CD inside the
// 3 + 2·log₂(t+1) approximation band, structural tree checks), every
// instance's certified optimality gap of the CD heuristic is locked in
// testdata/certified_gaps.json: the whole pipeline is deterministic, so
// any drift — a regression that widens a gap, or an improvement that
// the corpus does not yet reflect — fails the test until the corpus is
// regenerated with:
//
//	CERTIFIED_UPDATE=1 go test -run TestDifferentialCertifiedGaps .

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
)

const certifiedGapsFile = "testdata/certified_gaps.json"

// gapEntry is one instance's certified record: the exact lower bound
// and the CD heuristic's evaluated objective and relative gap above it.
type gapEntry struct {
	Name       string  `json:"name"`
	Sinks      int     `json:"sinks"`
	LowerBound float64 `json:"lower_bound"`
	CDTotal    float64 `json:"cd_total"`
	Gap        float64 `json:"gap"`
}

// band2Case is one band-2 configuration; all fields feed diffInstance.
type band2Case struct {
	seed  uint64
	nx    int32
	sinks int
	dbif  float64
}

func band2Cases() []band2Case {
	// 8–12 sinks, beyond the DP's practical reach on these windows; the
	// window shrinks as the subset dimension grows to keep the whole
	// band's label work inside a CI-friendly minute.
	return []band2Case{
		{seed: 1, nx: 14, sinks: 8, dbif: 0},
		{seed: 2, nx: 15, sinks: 9, dbif: 20},
		{seed: 3, nx: 13, sinks: 10, dbif: 0},
		{seed: 4, nx: 12, sinks: 11, dbif: 20},
		{seed: 5, nx: 10, sinks: 12, dbif: 0},
		{seed: 6, nx: 13, sinks: 9, dbif: 20},
	}
}

func (c band2Case) name() string {
	return fmt.Sprintf("seed%d_nx%d_s%d_dbif%g", c.seed, c.nx, c.sinks, c.dbif)
}

// computeCertifiedGaps runs band 2: certify each instance with the goal
// solver (incumbent seeded by the CD tree), assert the differential
// properties for every heuristic, and return the gap records.
func computeCertifiedGaps(t *testing.T) []gapEntry {
	t.Helper()
	ropt := DefaultRouterOptions()
	var out []gapEntry
	for _, c := range band2Cases() {
		in := diffInstance(c.seed, c.nx, c.sinks, c.dbif)

		cdTree, err := SolveCD(in, DefaultCDOptions())
		if err != nil {
			t.Fatalf("%s: cd: %v", c.name(), err)
		}
		cdEv, err := Evaluate(in, cdTree)
		if err != nil {
			t.Fatalf("%s: cd evaluate: %v", c.name(), err)
		}

		lim := DefaultExactGoalLimits()
		lim.UpperBound = cdEv.Total
		ex, err := SolveExactGoalLimits(context.Background(), in, lim)
		if err != nil {
			t.Fatalf("%s: goal solver: %v", c.name(), err)
		}
		if ex.Total < ex.LowerBound-1e-9 {
			t.Fatalf("%s: exact upper bound %v below its lower bound %v", c.name(), ex.Total, ex.LowerBound)
		}
		exEv, err := Evaluate(in, ex.Tree)
		if err != nil {
			t.Fatalf("%s: exact tree invalid: %v", c.name(), err)
		}
		checkTreeProperties(t, in, ex.Tree, exEv)

		t1 := float64(in.T())
		band := 3 + 2*math.Log2(t1+1)
		for _, m := range []Method{CD, L1, SL, PD} {
			var tr *Tree
			if m == CD {
				tr = cdTree
			} else {
				tr, err = Solve(in, m, ropt)
				if err != nil {
					t.Fatalf("%s %v: %v", c.name(), m, err)
				}
			}
			ev := cdEv
			if m != CD {
				ev, err = Evaluate(in, tr)
				if err != nil {
					t.Fatalf("%s %v: evaluate: %v", c.name(), m, err)
				}
			}
			checkTreeProperties(t, in, tr, ev)
			if ev.Total < ex.LowerBound-1e-6 {
				t.Fatalf("%s %v: heuristic total %v beats certified lower bound %v",
					c.name(), m, ev.Total, ex.LowerBound)
			}
			if ev.Total > band*ex.LowerBound+1e-9 {
				t.Fatalf("%s %v: total %v outside approximation band %.2f×%v",
					c.name(), m, ev.Total, band, ex.LowerBound)
			}
		}

		gap := (cdEv.Total - ex.LowerBound) / ex.LowerBound
		t.Logf("%s: LB %.6f, CD %.6f, gap %.4f%% (settled %d labels over %d window verts)",
			c.name(), ex.LowerBound, cdEv.Total, 100*gap, ex.Goal.Settled, ex.Goal.WindowVerts)
		out = append(out, gapEntry{
			Name: c.name(), Sinks: c.sinks,
			LowerBound: ex.LowerBound, CDTotal: cdEv.Total, Gap: gap,
		})
	}
	return out
}

func TestDifferentialCertifiedGaps(t *testing.T) {
	got := computeCertifiedGaps(t)
	if os.Getenv("CERTIFIED_UPDATE") != "" {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(certifiedGapsFile, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", certifiedGapsFile)
		return
	}
	blob, err := os.ReadFile(certifiedGapsFile)
	if err != nil {
		t.Fatalf("reading gap corpus (run with CERTIFIED_UPDATE=1 to create): %v", err)
	}
	var want []gapEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("gap corpus has %d entries, band 2 produced %d — corpus stale, regen with CERTIFIED_UPDATE=1", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.Name || g.Sinks != w.Sinks {
			t.Fatalf("entry %d is %s/%d sinks, corpus has %s/%d — corpus stale, regen with CERTIFIED_UPDATE=1",
				i, g.Name, g.Sinks, w.Name, w.Sinks)
		}
		if math.Abs(g.LowerBound-w.LowerBound) > 1e-9*(1+w.LowerBound) {
			t.Errorf("%s: certified lower bound moved from %v to %v — corpus stale, regen with CERTIFIED_UPDATE=1",
				w.Name, w.LowerBound, g.LowerBound)
			continue
		}
		switch {
		case g.Gap > w.Gap+1e-9:
			t.Errorf("%s: certified gap regressed from %.6f%% to %.6f%% (CD total %v → %v)",
				w.Name, 100*w.Gap, 100*g.Gap, w.CDTotal, g.CDTotal)
		case g.Gap < w.Gap-1e-9:
			t.Errorf("%s: certified gap improved from %.6f%% to %.6f%% — lock it in with CERTIFIED_UPDATE=1",
				w.Name, 100*w.Gap, 100*g.Gap)
		}
	}
}
