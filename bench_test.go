package costdist

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (at reduced scale — raise -scale in cmd/benchtables
// for bigger runs) and measures the building blocks:
//
//	BenchmarkTableI / II       — instance comparison harness (Tables I/II)
//	BenchmarkTableIII          — chip inventory (Table III)
//	BenchmarkTableIV / V       — global routing flow (Tables IV/V)
//	BenchmarkFigure1/2/3       — figure regeneration
//	BenchmarkCDSolve*          — the core algorithm per instance size
//	BenchmarkCDSolveScratch*   — same, through a reusable solver arena
//	BenchmarkSolveBatch*       — batch API, sequential vs all cores
//	BenchmarkBaseline*         — topology+embedding baselines
//	BenchmarkCDScaling*        — Theorem 1 runtime scaling in n and t
//	BenchmarkAblation*         — §III enhancement on/off (DESIGN.md §4)

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"costdist/internal/core"
	"costdist/internal/router"
	"costdist/internal/tables"
)

// benchInstances builds deterministic instances with the Lagrangean-like
// weight profile on a congested graph.
func benchInstances(nx int32, layers, sinks, n int, dbif float64) []*Instance {
	tech := DefaultTech(layers)
	g := NewGrid(nx, nx, BuildLayers(tech), tech.GCellUM)
	c := NewCosts(g)
	rng := rand.New(rand.NewPCG(11, 23))
	for i := range c.Mult {
		if rng.IntN(3) == 0 {
			c.Mult[i] = 1 + 6*rng.Float32()
		}
	}
	out := make([]*Instance, n)
	for i := range out {
		in := &Instance{
			G: g, C: c,
			Root: g.At(rng.Int32N(nx), rng.Int32N(nx), 0),
			DBif: dbif, Eta: 0.25, Seed: uint64(i),
		}
		for s := 0; s < sinks; s++ {
			w := 0.0005 * rng.Float64()
			if rng.IntN(5) == 0 {
				w = 0.01 + 0.05*rng.Float64()
			}
			in.Sinks = append(in.Sinks, Sink{V: g.At(rng.Int32N(nx), rng.Int32N(nx), 0), W: w})
		}
		in.Win = in.DefaultWindow(6)
		out[i] = in
	}
	return out
}

func benchSolve(b *testing.B, ins []*Instance, opt CDOptions) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCD(ins[i%len(ins)], opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSolveScratch is benchSolve through one reusable arena — the
// before/after pair for the scratch subsystem (compare
// BenchmarkCDSolveT16 vs BenchmarkCDSolveScratchT16 under -benchmem).
func benchSolveScratch(b *testing.B, ins []*Instance, opt CDOptions) {
	b.Helper()
	s := NewSolver()
	for _, in := range ins { // warm the arena to steady state
		if _, err := s.SolveCD(in, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveCD(ins[i%len(ins)], opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCDSolveT4(b *testing.B) {
	benchSolve(b, benchInstances(32, 5, 4, 32, 4), DefaultCDOptions())
}

func BenchmarkCDSolveT16(b *testing.B) {
	benchSolve(b, benchInstances(32, 5, 16, 16, 4), DefaultCDOptions())
}

func BenchmarkCDSolveT64(b *testing.B) {
	benchSolve(b, benchInstances(48, 5, 64, 8, 4), DefaultCDOptions())
}

func BenchmarkCDSolveScratchT4(b *testing.B) {
	benchSolveScratch(b, benchInstances(32, 5, 4, 32, 4), DefaultCDOptions())
}

func BenchmarkCDSolveScratchT16(b *testing.B) {
	benchSolveScratch(b, benchInstances(32, 5, 16, 16, 4), DefaultCDOptions())
}

func BenchmarkCDSolveScratchT64(b *testing.B) {
	benchSolveScratch(b, benchInstances(48, 5, 64, 8, 4), DefaultCDOptions())
}

// Batch throughput: one wave-sized batch of nets per iteration,
// sequentially and fanned across all cores.
func benchBatch(b *testing.B, workers int) {
	b.Helper()
	ins := benchInstances(32, 5, 16, 64, 4)
	opt := BatchOptions{Workers: workers, Router: DefaultRouterOptions()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SolveBatch(ins, CD, opt)
		for j := range res {
			if res[j].Err != nil {
				b.Fatal(res[j].Err)
			}
		}
	}
}

func BenchmarkSolveBatchSeq(b *testing.B) { benchBatch(b, 1) }
func BenchmarkSolveBatchPar(b *testing.B) { benchBatch(b, 0) }

func benchBaseline(b *testing.B, m Method, sinks int) {
	b.Helper()
	ins := benchInstances(32, 5, sinks, 16, 4)
	opt := DefaultRouterOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ins[i%len(ins)], m, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineL1T16(b *testing.B) { benchBaseline(b, L1, 16) }
func BenchmarkBaselineSLT16(b *testing.B) { benchBaseline(b, SL, 16) }
func BenchmarkBaselinePDT16(b *testing.B) { benchBaseline(b, PD, 16) }

// Theorem 1 scaling: runtime vs graph size at fixed t.
func BenchmarkCDScalingGrid(b *testing.B) {
	for _, nx := range []int32{16, 32, 64} {
		b.Run(fmt.Sprintf("nx%d", nx), func(b *testing.B) {
			benchSolve(b, benchInstances(nx, 5, 8, 8, 4), DefaultCDOptions())
		})
	}
}

// Theorem 1 scaling: runtime vs terminal count at fixed graph.
func BenchmarkCDScalingSinks(b *testing.B) {
	for _, t := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("t%d", t), func(b *testing.B) {
			benchSolve(b, benchInstances(40, 5, t, 8, 4), DefaultCDOptions())
		})
	}
}

// Ablations of the §III enhancements (quality deltas are reported by
// the tables harness; these measure runtime).
func BenchmarkAblation(b *testing.B) {
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"default", core.DefaultOptions()},
		{"noDiscount", func() core.Options { o := core.DefaultOptions(); o.Discount = false; return o }()},
		{"flatHeap", func() core.Options { o := core.DefaultOptions(); o.FlatHeap = true; return o }()},
		{"aStar", func() core.Options { o := core.DefaultOptions(); o.AStar = true; o.AStarMaxTargets = 24; return o }()},
		{"noImprove", func() core.Options { o := core.DefaultOptions(); o.ImproveSteiner = false; return o }()},
		{"noRootBonus", func() core.Options { o := core.DefaultOptions(); o.RootBonus = false; return o }()},
		{"plainSectionII", core.Options{}},
	}
	ins := benchInstances(32, 5, 24, 12, 4)
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) { benchSolve(b, ins, v.opt) })
	}
}

func BenchmarkEvaluate(b *testing.B) {
	ins := benchInstances(32, 5, 16, 8, 4)
	trs := make([]*Tree, len(ins))
	for i, in := range ins {
		tr, err := SolveCD(in, DefaultCDOptions())
		if err != nil {
			b.Fatal(err)
		}
		trs[i] = tr
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(ins[i%len(ins)], trs[i%len(ins)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCfg() tables.Config {
	return tables.Config{Scale: 0.0008, Chips: []int{0}, Waves: 2, Threads: 0, Seed: 7}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.InstanceComparison(benchCfg(), false)
		if err != nil {
			b.Fatal(err)
		}
		if rows[len(rows)-1].Instances == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.InstanceComparison(benchCfg(), true)
		if err != nil {
			b.Fatal(err)
		}
		if rows[len(rows)-1].Instances == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := tables.TableIII(tables.Config{Scale: 1}); len(rows) != 8 {
			b.Fatal("bad table III")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.GlobalRouting(benchCfg(), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.GlobalRouting(benchCfg(), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := tables.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if svg := tables.Figure2(0.25); len(svg) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := tables.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteChipCD(b *testing.B) {
	spec := ChipSuite(0.0012)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		b.Fatal(err)
	}
	opt := router.DefaultOptions()
	opt.Waves = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RouteChip(chip, CD, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteChipCDIncremental is BenchmarkRouteChipCD with the
// dirty-net scheduler enabled: after wave 0 only invalidated nets are
// re-solved. Compare against BenchmarkRouteChipCD for the wave-level
// work avoidance; BENCH_incremental.json records the solve counters at
// acceptance scale (cmd/incbench regenerates it).
func BenchmarkRouteChipCDIncremental(b *testing.B) {
	spec := ChipSuite(0.0012)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		b.Fatal(err)
	}
	opt := router.DefaultOptions()
	opt.Waves = 2
	opt.Incremental = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RouteChip(chip, CD, opt); err != nil {
			b.Fatal(err)
		}
	}
}
