package costdist

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"costdist/internal/grid"
)

// InstanceJSON is the on-disk schema consumed by cmd/cdsteiner: a
// self-contained cost-distance Steiner tree instance on the default
// technology. Congestion can be injected through priced rectangles.
type InstanceJSON struct {
	NX     int32 `json:"nx"`
	NY     int32 `json:"ny"`
	Layers int   `json:"layers"`

	Root  [3]int32 `json:"root"` // x, y, layer
	Sinks []struct {
		X int32   `json:"x"`
		Y int32   `json:"y"`
		L int32   `json:"l"`
		W float64 `json:"w"`
	} `json:"sinks"`

	// DBif < 0 derives the penalty from the technology; Eta defaults to
	// 0.25 when omitted.
	DBif float64 `json:"dbif"`
	Eta  float64 `json:"eta,omitempty"`
	Seed uint64  `json:"seed,omitempty"`
	// Margin expands the routing window around the terminals (gcells).
	Margin int32 `json:"margin,omitempty"`

	// Congestion rectangles: all routing segments on the given layer
	// whose low endpoint lies in [x0,x1]×[y0,y1] get the multiplier.
	Congestion []struct {
		X0   int32   `json:"x0"`
		Y0   int32   `json:"y0"`
		X1   int32   `json:"x1"`
		Y1   int32   `json:"y1"`
		L    int32   `json:"l"`
		Mult float32 `json:"mult"`
	} `json:"congestion,omitempty"`
}

// normalize applies the documented defaults in place: omitted eta means
// 0.25, an omitted or non-positive margin means 8, and every negative
// dbif spells "derive from the technology". ParseInstance and
// CanonicalInstanceJSON share this single helper so the canonical
// content address can never drift from the parse semantics.
func (f *InstanceJSON) normalize() {
	if f.Eta == 0 {
		f.Eta = 0.25
	}
	if f.Margin <= 0 {
		f.Margin = 8
	}
	if f.DBif < 0 {
		f.DBif = -1
	}
}

// ParseInstance decodes an InstanceJSON document into a solvable
// Instance backed by the default technology.
func ParseInstance(data []byte) (*Instance, error) {
	var f InstanceJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("costdist: parsing instance: %w", err)
	}
	f.normalize()
	if f.NX < 2 || f.NY < 2 || f.Layers < 2 {
		return nil, fmt.Errorf("costdist: instance needs nx,ny ≥ 2 and layers ≥ 2")
	}
	tech := DefaultTech(f.Layers)
	g := NewGrid(f.NX, f.NY, tech.BuildLayers(), tech.GCellUM)
	c := NewCosts(g)
	inBounds := func(x, y, l int32) error {
		if x < 0 || x >= f.NX || y < 0 || y >= f.NY || l < 0 || l >= int32(f.Layers) {
			return fmt.Errorf("costdist: pin (%d,%d,%d) outside grid", x, y, l)
		}
		return nil
	}
	if err := inBounds(f.Root[0], f.Root[1], f.Root[2]); err != nil {
		return nil, err
	}
	dbif := f.DBif
	if dbif < 0 {
		dbif = tech.Dbif()
	}
	in := &Instance{
		G: g, C: c,
		Root: g.At(f.Root[0], f.Root[1], f.Root[2]),
		DBif: dbif, Eta: f.Eta, Seed: f.Seed,
	}
	for i, s := range f.Sinks {
		if err := inBounds(s.X, s.Y, s.L); err != nil {
			return nil, fmt.Errorf("sink %d: %w", i, err)
		}
		in.Sinks = append(in.Sinks, Sink{V: g.At(s.X, s.Y, s.L), W: s.W})
	}
	for _, r := range f.Congestion {
		applyCongestion(g, c, r.L, r.X0, r.Y0, r.X1, r.Y1, r.Mult)
	}
	in.Win = in.DefaultWindow(f.Margin)
	return in, nil
}

func applyCongestion(g *grid.Graph, c *grid.Costs, l, x0, y0, x1, y1 int32, mult float32) {
	if l < 0 || l >= int32(len(g.Layers)) || mult < 1 {
		return
	}
	for y := y0; y <= y1 && y < g.NY; y++ {
		for x := x0; x <= x1 && x < g.NX; x++ {
			if y < 0 || x < 0 {
				continue
			}
			if g.Layers[l].Dir == grid.DirH {
				if x < g.NX-1 {
					c.Mult[g.SegH(l, y, x)] = mult
				}
			} else if y < g.NY-1 {
				c.Mult[g.SegV(l, x, y)] = mult
			}
		}
	}
}

// CanonicalInstanceJSON re-emits an InstanceJSON document in canonical
// compact form: fixed key order (the struct's), no insignificant
// whitespace, and the defaulted fields normalized by the same
// InstanceJSON.normalize helper ParseInstance uses — so every
// "derive/default" spelling ParseInstance treats identically
// canonicalizes identically. Two documents that ParseInstance maps to
// the same instance and seed canonicalize to the same bytes, which
// makes the canonical form a content address: the service layer keys
// its result cache on a digest of these bytes so formatting and key
// order never defeat caching.
func CanonicalInstanceJSON(data []byte) ([]byte, error) {
	var f InstanceJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("costdist: parsing instance: %w", err)
	}
	f.normalize()
	return json.Marshal(&f)
}

// TreeJSON is the serialized form of a solved tree, emitted by
// cmd/cdsteiner.
type TreeJSON struct {
	Total     float64       `json:"total"`
	CongCost  float64       `json:"congestion_cost"`
	DelayCost float64       `json:"delay_cost"`
	SinkDelay []float64     `json:"sink_delay_ps"`
	WireSteps int           `json:"wire_steps"`
	Vias      int           `json:"vias"`
	Edges     [][2][3]int32 `json:"edges"` // pairs of (x,y,l)
	// WireTypes holds the wire type index of each edge (−1 for vias).
	// Without it layers with multiple wire types would not round-trip:
	// an edge's endpoints do not determine which parallel edge was used,
	// and re-evaluating a reloaded tree on the default (widest-counted)
	// type skews its cost. Absent in documents written before this field
	// existed, in which case type 0 is assumed.
	WireTypes []int8 `json:"wire_types,omitempty"`
}

// MarshalTree serializes a tree with its evaluation.
func MarshalTree(in *Instance, tr *Tree) ([]byte, error) {
	ev, err := Evaluate(in, tr)
	if err != nil {
		return nil, err
	}
	out := TreeJSON{
		Total: ev.Total, CongCost: ev.CongCost, DelayCost: ev.DelayCost,
		SinkDelay: ev.SinkDelay, WireSteps: ev.WireSteps, Vias: ev.Vias,
	}
	out.Edges, out.WireTypes = encodeTreeSteps(in.G, tr)
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalTree decodes a TreeJSON document back into an embedded tree
// on the instance's graph — the inverse of MarshalTree. Edges must
// connect adjacent vertices inside the grid; the reloaded tree evaluates
// to the same objective decomposition it was saved with.
func UnmarshalTree(in *Instance, data []byte) (*Tree, error) {
	var f TreeJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("costdist: parsing tree: %w", err)
	}
	return decodeTreeSteps(in.G, f.Edges, f.WireTypes)
}

// encodeTreeSteps flattens a tree into the wire format shared by
// TreeJSON and RouteResultJSON: endpoint coordinates plus the wire type
// of each edge (-1 for vias).
func encodeTreeSteps(g *grid.Graph, tr *Tree) (edges [][2][3]int32, wts []int8) {
	for _, st := range tr.Steps {
		fx, fy, fl := g.XYL(st.From)
		tx, ty, tl := g.XYL(st.Arc.To)
		edges = append(edges, [2][3]int32{{fx, fy, fl}, {tx, ty, tl}})
		wts = append(wts, st.Arc.WT)
	}
	return edges, wts
}

// decodeTreeSteps rebuilds embedded tree steps from the wire format,
// validating adjacency, direction legality and wire-type ranges against
// the graph. wts == nil assumes type 0 everywhere (pre-wire-type
// documents).
func decodeTreeSteps(g *grid.Graph, edges [][2][3]int32, wts []int8) (*Tree, error) {
	if wts != nil && len(wts) != len(edges) {
		return nil, fmt.Errorf("costdist: %d wire types for %d edges", len(wts), len(edges))
	}
	tr := &Tree{}
	for i, e := range edges {
		u, err := vertexAt(g, e[0])
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
		v, err := vertexAt(g, e[1])
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
		dx, dy, dl := e[1][0]-e[0][0], e[1][1]-e[0][1], e[1][2]-e[0][2]
		if absInt32(dx)+absInt32(dy)+absInt32(dl) != 1 {
			return nil, fmt.Errorf("costdist: edge %d connects non-adjacent vertices %v and %v", i, e[0], e[1])
		}
		if dl == 0 {
			// A wire edge must follow its layer's preferred direction —
			// the cross-direction edge does not exist in the graph, and
			// SegBetween would map it onto an unrelated segment id.
			dir := g.Layers[e[0][2]].Dir
			if (dir == grid.DirH && dx == 0) || (dir == grid.DirV && dy == 0) {
				return nil, fmt.Errorf("costdist: edge %d runs %s on a %v layer", i,
					map[bool]string{true: "vertically", false: "horizontally"}[dx == 0], dir)
			}
		}
		seg, via := g.SegBetween(u, v)
		arc := grid.Arc{To: v, Seg: seg, Via: via}
		if via {
			arc.L = int8(min32(e[0][2], e[1][2]))
			arc.WT = -1
			if wts != nil && wts[i] != -1 {
				return nil, fmt.Errorf("costdist: edge %d is a via but has wire type %d", i, wts[i])
			}
		} else {
			arc.L = int8(e[0][2])
			if wts != nil {
				arc.WT = wts[i]
			}
			if arc.WT < 0 || int(arc.WT) >= len(g.Layers[arc.L].Wires) {
				return nil, fmt.Errorf("costdist: edge %d wire type %d out of range on layer %d", i, arc.WT, arc.L)
			}
		}
		tr.Steps = append(tr.Steps, Step{From: u, Arc: arc})
	}
	return tr, nil
}

// RouteTreeJSON is one net's embedded tree inside a RouteResultJSON
// document, using the same edge/wire-type encoding as TreeJSON.
type RouteTreeJSON struct {
	Edges     [][2][3]int32 `json:"edges"`
	WireTypes []int8        `json:"wire_types,omitempty"`
}

// RouteMetricsJSON is the serialized RouteMetrics. Walltime is
// deliberately absent: it is the one nondeterministic field (see the
// RouteMetrics doc), and dropping it keeps every wire form a pure
// function of the routing outcome — required for the service layer's
// content-addressed result cache and the byte-stable checkpoint codec.
// All conversions go through routeMetricsJSON/routeMetricsFromJSON so
// the exclusion lives in exactly one place.
type RouteMetricsJSON struct {
	WS               float64          `json:"ws_ps"`
	TNS              float64          `json:"tns_ps"`
	ACE4             float64          `json:"ace4_pct"`
	WLm              float64          `json:"wirelength_m"`
	Vias             int64            `json:"vias"`
	Overflow         float64          `json:"overflow"`
	Objective        float64          `json:"objective"`
	NetsSolved       int64            `json:"nets_solved"`
	NetsSkipped      int64            `json:"nets_skipped"`
	SolvedPerWave    []int            `json:"solved_per_wave,omitempty"`
	SkippedPerWave   []int            `json:"skipped_per_wave,omitempty"`
	DeltaSegsPerWave []int            `json:"delta_segs_per_wave,omitempty"`
	SolvesByOracle   map[string]int64 `json:"solves_by_oracle,omitempty"`
	// Repair-tier counters; every field is omitempty and stays zero
	// unless the topology-repair rung was enabled (RepairTol ≥ 0), so
	// legacy runs keep their exact legacy wire bytes.
	NetsRepaired     int64 `json:"nets_repaired,omitempty"`
	RepairEscalated  int64 `json:"repair_escalated,omitempty"`
	RepairedPerWave  []int `json:"repaired_per_wave,omitempty"`
	EscalatedPerWave []int `json:"escalated_per_wave,omitempty"`
	// Per-wave convergence telemetry, populated only when the run had
	// a RouterOptions.Recorder (omitempty keeps recorder-less runs —
	// the default — on their exact legacy wire bytes). These series
	// are deterministic: pure functions of (chip, method, options),
	// independent of thread count. StageNanosPerWave is deliberately
	// NOT serialized — it is wall-clock, nondeterministic like
	// Walltime, and the wire form must stay a pure function of the
	// routing outcome (the content-addressed caches depend on it).
	ObjectivePerWave []float64 `json:"objective_per_wave,omitempty"`
	OverflowPerWave  []float64 `json:"overflow_per_wave,omitempty"`
}

// RouteResultJSON is the on-wire form of a full routing run: the
// metric row plus every net's final embedded tree (null for nets the
// run never routed), indexed like the chip's netlist.
type RouteResultJSON struct {
	Metrics RouteMetricsJSON `json:"metrics"`
	Trees   []*RouteTreeJSON `json:"trees"`
}

// routeMetricsJSON converts a metric row to its wire form. Walltime is
// excluded here — the single place the one nondeterministic field is
// dropped — so MarshalRouteResult and MarshalCheckpoint can never
// disagree about what makes a serialized row deterministic.
func routeMetricsJSON(mt RouteMetrics) RouteMetricsJSON {
	return RouteMetricsJSON{
		WS: mt.WS, TNS: mt.TNS, ACE4: mt.ACE4, WLm: mt.WLm,
		Vias: mt.Vias, Overflow: mt.Overflow, Objective: mt.Objective,
		NetsSolved: mt.NetsSolved, NetsSkipped: mt.NetsSkipped,
		SolvedPerWave:    mt.SolvedPerWave,
		SkippedPerWave:   mt.SkippedPerWave,
		DeltaSegsPerWave: mt.DeltaSegsPerWave,
		SolvesByOracle:   mt.SolvesByOracle,
		NetsRepaired:     mt.NetsRepaired,
		RepairEscalated:  mt.RepairEscalated,
		RepairedPerWave:  mt.RepairedPerWave,
		EscalatedPerWave: mt.EscalatedPerWave,
		ObjectivePerWave: mt.ObjectivePerWave,
		OverflowPerWave:  mt.OverflowPerWave,
	}
}

// routeMetricsFromJSON is the inverse of routeMetricsJSON (Walltime,
// which is not serialized, comes back zero).
func routeMetricsFromJSON(f RouteMetricsJSON) RouteMetrics {
	return RouteMetrics{
		WS: f.WS, TNS: f.TNS, ACE4: f.ACE4,
		WLm: f.WLm, Vias: f.Vias,
		Overflow: f.Overflow, Objective: f.Objective,
		NetsSolved: f.NetsSolved, NetsSkipped: f.NetsSkipped,
		SolvedPerWave:    f.SolvedPerWave,
		SkippedPerWave:   f.SkippedPerWave,
		DeltaSegsPerWave: f.DeltaSegsPerWave,
		SolvesByOracle:   f.SolvesByOracle,
		NetsRepaired:     f.NetsRepaired,
		RepairEscalated:  f.RepairEscalated,
		RepairedPerWave:  f.RepairedPerWave,
		EscalatedPerWave: f.EscalatedPerWave,
		ObjectivePerWave: f.ObjectivePerWave,
		OverflowPerWave:  f.OverflowPerWave,
	}
}

// MarshalRouteResult serializes a routing result against the chip it
// was produced on. The output is deterministic for a deterministic run
// (map keys sort, Walltime is excluded), so identical route requests
// marshal to identical bytes.
func MarshalRouteResult(chip *Chip, res *RouteResult) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("costdist: nil route result")
	}
	out := RouteResultJSON{
		Metrics: routeMetricsJSON(res.Metrics),
		Trees:   make([]*RouteTreeJSON, len(res.Trees)),
	}
	for i, tr := range res.Trees {
		if tr == nil {
			continue
		}
		tj := &RouteTreeJSON{}
		tj.Edges, tj.WireTypes = encodeTreeSteps(chip.G, tr)
		out.Trees[i] = tj
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalRouteResult decodes a RouteResultJSON document back into a
// RouteResult on the chip's graph — the inverse of MarshalRouteResult
// (Walltime, which is not serialized, comes back zero). Every tree is
// validated against the graph exactly like UnmarshalTree.
func UnmarshalRouteResult(chip *Chip, data []byte) (*RouteResult, error) {
	var f RouteResultJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("costdist: parsing route result: %w", err)
	}
	res := &RouteResult{}
	res.Metrics = routeMetricsFromJSON(f.Metrics)
	if len(f.Trees) > 0 {
		res.Trees = make([]*Tree, len(f.Trees))
		for i, tj := range f.Trees {
			if tj == nil {
				continue
			}
			tr, err := decodeTreeSteps(chip.G, tj.Edges, tj.WireTypes)
			if err != nil {
				return nil, fmt.Errorf("net %d: %w", i, err)
			}
			res.Trees[i] = tr
		}
	}
	return res, nil
}

// CheckpointVersion is the wire-format version MarshalCheckpoint
// writes; UnmarshalCheckpoint rejects documents from a different
// version instead of guessing at their layout.
const CheckpointVersion = 1

// budgetsJSON carries a per-sink delay budget vector on the wire. A
// sink with no timing endpoint downstream has budget +Inf
// ("unconstrained"), which JSON numbers cannot express — it is encoded
// as null. Both directions are implemented here, so the encoding is
// lossless and byte-stable.
type budgetsJSON []float64

func (b budgetsJSON) MarshalJSON() ([]byte, error) {
	out := make([]byte, 0, 16*len(b)+2)
	out = append(out, '[')
	for i, v := range b {
		if i > 0 {
			out = append(out, ',')
		}
		if math.IsInf(v, 1) {
			out = append(out, "null"...)
			continue
		}
		if math.IsInf(v, -1) || math.IsNaN(v) {
			return nil, fmt.Errorf("costdist: budget %d is %v, not serializable", i, v)
		}
		out = strconv.AppendFloat(out, v, 'g', -1, 64)
	}
	return append(out, ']'), nil
}

func (b *budgetsJSON) UnmarshalJSON(data []byte) error {
	var raw []*float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*b = make([]float64, len(raw))
	for i, p := range raw {
		if p == nil {
			(*b)[i] = math.Inf(1)
		} else {
			(*b)[i] = *p
		}
	}
	return nil
}

// CheckpointNetJSON is one net's externalized state inside a
// CheckpointJSON document: the terminal signature the warm-start diff
// keys on, the Lagrangean timing state, the cached tree (absent if the
// net was never routed) with its rebaselined solve snapshot.
type CheckpointNetJSON struct {
	Driver   [2]int32       `json:"driver"`
	Sinks    [][2]int32     `json:"sinks"`
	Weights  []float64      `json:"weights"`
	Budgets  budgetsJSON    `json:"budgets"`
	Delays   []float64      `json:"delays"`
	LastCost float64        `json:"last_cost"`
	Oracle   string         `json:"oracle,omitempty"`
	Tree     *RouteTreeJSON `json:"tree,omitempty"`
}

// CheckpointJSON is the versioned wire form of a RouterState: the grid
// signature, the chip-wide price vectors, the producing run's metric
// row (Walltime excluded, via the same routeMetricsJSON helper as
// MarshalRouteResult) and every net's state. Marshaling is compact and
// byte-stable: marshal → unmarshal → marshal reproduces the input
// bytes exactly, which is what lets the service layer content-address
// retained checkpoints.
type CheckpointJSON struct {
	Version   int                 `json:"version"`
	Method    string              `json:"method"`
	NX        int32               `json:"nx"`
	NY        int32               `json:"ny"`
	Layers    int                 `json:"layers"`
	LayerDirs string              `json:"layer_dirs"`
	Cap       []float32           `json:"cap"`
	Mult      []float32           `json:"mult"`
	Ref       []float32           `json:"ref"`
	Metrics   RouteMetricsJSON    `json:"metrics"`
	Nets      []CheckpointNetJSON `json:"nets"`
}

// MarshalCheckpoint serializes a router checkpoint into its versioned,
// byte-stable wire form. Identical states marshal to identical bytes.
func MarshalCheckpoint(st *RouterState) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("costdist: nil checkpoint state")
	}
	g, err := checkpointGraph(st.NX, st.NY, st.Layers, st.LayerDirs)
	if err != nil {
		return nil, err
	}
	out := CheckpointJSON{
		Version:   CheckpointVersion,
		Method:    st.Method,
		NX:        st.NX,
		NY:        st.NY,
		Layers:    st.Layers,
		LayerDirs: st.LayerDirs,
		Cap:       st.Cap,
		Mult:      st.Mult,
		Ref:       st.Ref,
		Metrics:   routeMetricsJSON(st.Metrics),
		Nets:      make([]CheckpointNetJSON, len(st.Nets)),
	}
	for ni := range st.Nets {
		ns := &st.Nets[ni]
		nj := CheckpointNetJSON{
			Driver:   [2]int32{ns.Sig.Driver.X, ns.Sig.Driver.Y},
			Sinks:    make([][2]int32, len(ns.Sig.Sinks)),
			Weights:  ns.Weights,
			Budgets:  budgetsJSON(ns.Budgets),
			Delays:   ns.Delays,
			LastCost: ns.LastCost,
			Oracle:   ns.Oracle,
		}
		for k, p := range ns.Sig.Sinks {
			nj.Sinks[k] = [2]int32{p.X, p.Y}
		}
		if ns.Tree != nil {
			tj := &RouteTreeJSON{}
			tj.Edges, tj.WireTypes = encodeTreeSteps(g, ns.Tree)
			nj.Tree = tj
		}
		out.Nets[ni] = nj
	}
	return json.Marshal(&out)
}

// UnmarshalCheckpoint decodes a checkpoint document back into a
// RouterState — the inverse of MarshalCheckpoint. Trees are validated
// against a reconstruction of the checkpointed grid (the default
// technology at the stored layer count), exactly like UnmarshalTree
// validates standalone trees.
func UnmarshalCheckpoint(data []byte) (*RouterState, error) {
	var f CheckpointJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("costdist: parsing checkpoint: %w", err)
	}
	if f.Version != CheckpointVersion {
		return nil, fmt.Errorf("costdist: checkpoint version %d unsupported (want %d)", f.Version, CheckpointVersion)
	}
	g, err := checkpointGraph(f.NX, f.NY, f.Layers, f.LayerDirs)
	if err != nil {
		return nil, err
	}
	nSegs := int(g.NumSegs())
	if len(f.Cap) != nSegs || len(f.Mult) != nSegs || len(f.Ref) != nSegs {
		return nil, fmt.Errorf("costdist: checkpoint has %d/%d/%d cap/mult/ref segments, grid has %d",
			len(f.Cap), len(f.Mult), len(f.Ref), nSegs)
	}
	st := &RouterState{
		Method:    f.Method,
		NX:        f.NX,
		NY:        f.NY,
		Layers:    f.Layers,
		LayerDirs: f.LayerDirs,
		Cap:       f.Cap,
		Mult:      f.Mult,
		Ref:       f.Ref,
		Metrics:   routeMetricsFromJSON(f.Metrics),
		Nets:      make([]RouterNetState, len(f.Nets)),
	}
	for ni := range f.Nets {
		nj := &f.Nets[ni]
		// Per-sink vectors must match the sink count — the restored
		// scheduler indexes them by pin position, so a truncated vector
		// that slipped through here would panic deep inside a wave.
		if k := len(nj.Sinks); len(nj.Weights) != k || len(nj.Budgets) != k || len(nj.Delays) != k {
			return nil, fmt.Errorf("costdist: checkpoint net %d has %d sinks but %d/%d/%d weights/budgets/delays",
				ni, k, len(nj.Weights), len(nj.Budgets), len(nj.Delays))
		}
		sig := PinSig{Driver: Pt{X: nj.Driver[0], Y: nj.Driver[1]}}
		sig.Sinks = make([]Pt, len(nj.Sinks))
		for k, s := range nj.Sinks {
			sig.Sinks[k] = Pt{X: s[0], Y: s[1]}
		}
		ns := RouterNetState{
			Sig:      sig,
			Weights:  nj.Weights,
			Budgets:  []float64(nj.Budgets),
			Delays:   nj.Delays,
			LastCost: nj.LastCost,
			Oracle:   nj.Oracle,
		}
		if nj.Tree != nil {
			tr, err := decodeTreeSteps(g, nj.Tree.Edges, nj.Tree.WireTypes)
			if err != nil {
				return nil, fmt.Errorf("checkpoint net %d: %w", ni, err)
			}
			ns.Tree = tr
		}
		st.Nets[ni] = ns
	}
	return st, nil
}

// checkpointGraph reconstructs the routing grid a checkpoint is bound
// to: the default technology at the stored layer count. The stored
// layer directions must match the reconstruction — checkpoints of
// custom layer stacks have no wire form.
func checkpointGraph(nx, ny int32, layers int, dirs string) (*grid.Graph, error) {
	if nx < 1 || ny < 1 || layers < 2 || layers > 1024 {
		return nil, fmt.Errorf("costdist: checkpoint grid %dx%dx%d invalid", nx, ny, layers)
	}
	tech := DefaultTech(layers)
	g := NewGrid(nx, ny, tech.BuildLayers(), tech.GCellUM)
	got := make([]byte, len(g.Layers))
	for i := range g.Layers {
		got[i] = 'H'
		if g.Layers[i].Dir == grid.DirV {
			got[i] = 'V'
		}
	}
	if string(got) != dirs {
		return nil, fmt.Errorf("costdist: checkpoint layer directions %q do not match the default %d-layer stack %q",
			dirs, layers, got)
	}
	return g, nil
}

func vertexAt(g *grid.Graph, p [3]int32) (grid.V, error) {
	if p[0] < 0 || p[0] >= g.NX || p[1] < 0 || p[1] >= g.NY || p[2] < 0 || p[2] >= int32(len(g.Layers)) {
		return 0, fmt.Errorf("costdist: vertex (%d,%d,%d) outside grid", p[0], p[1], p[2])
	}
	return g.At(p[0], p[1], p[2]), nil
}

func absInt32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
