package costdist

import (
	"encoding/json"
	"fmt"

	"costdist/internal/grid"
)

// InstanceJSON is the on-disk schema consumed by cmd/cdsteiner: a
// self-contained cost-distance Steiner tree instance on the default
// technology. Congestion can be injected through priced rectangles.
type InstanceJSON struct {
	NX     int32 `json:"nx"`
	NY     int32 `json:"ny"`
	Layers int   `json:"layers"`

	Root  [3]int32 `json:"root"` // x, y, layer
	Sinks []struct {
		X int32   `json:"x"`
		Y int32   `json:"y"`
		L int32   `json:"l"`
		W float64 `json:"w"`
	} `json:"sinks"`

	// DBif < 0 derives the penalty from the technology; Eta defaults to
	// 0.25 when omitted.
	DBif float64 `json:"dbif"`
	Eta  float64 `json:"eta,omitempty"`
	Seed uint64  `json:"seed,omitempty"`
	// Margin expands the routing window around the terminals (gcells).
	Margin int32 `json:"margin,omitempty"`

	// Congestion rectangles: all routing segments on the given layer
	// whose low endpoint lies in [x0,x1]×[y0,y1] get the multiplier.
	Congestion []struct {
		X0   int32   `json:"x0"`
		Y0   int32   `json:"y0"`
		X1   int32   `json:"x1"`
		Y1   int32   `json:"y1"`
		L    int32   `json:"l"`
		Mult float32 `json:"mult"`
	} `json:"congestion,omitempty"`
}

// ParseInstance decodes an InstanceJSON document into a solvable
// Instance backed by the default technology.
func ParseInstance(data []byte) (*Instance, error) {
	var f InstanceJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("costdist: parsing instance: %w", err)
	}
	if f.NX < 2 || f.NY < 2 || f.Layers < 2 {
		return nil, fmt.Errorf("costdist: instance needs nx,ny ≥ 2 and layers ≥ 2")
	}
	tech := DefaultTech(f.Layers)
	g := NewGrid(f.NX, f.NY, tech.BuildLayers(), tech.GCellUM)
	c := NewCosts(g)
	inBounds := func(x, y, l int32) error {
		if x < 0 || x >= f.NX || y < 0 || y >= f.NY || l < 0 || l >= int32(f.Layers) {
			return fmt.Errorf("costdist: pin (%d,%d,%d) outside grid", x, y, l)
		}
		return nil
	}
	if err := inBounds(f.Root[0], f.Root[1], f.Root[2]); err != nil {
		return nil, err
	}
	dbif := f.DBif
	if dbif < 0 {
		dbif = tech.Dbif()
	}
	eta := f.Eta
	if eta == 0 {
		eta = 0.25
	}
	in := &Instance{
		G: g, C: c,
		Root: g.At(f.Root[0], f.Root[1], f.Root[2]),
		DBif: dbif, Eta: eta, Seed: f.Seed,
	}
	for i, s := range f.Sinks {
		if err := inBounds(s.X, s.Y, s.L); err != nil {
			return nil, fmt.Errorf("sink %d: %w", i, err)
		}
		in.Sinks = append(in.Sinks, Sink{V: g.At(s.X, s.Y, s.L), W: s.W})
	}
	for _, r := range f.Congestion {
		applyCongestion(g, c, r.L, r.X0, r.Y0, r.X1, r.Y1, r.Mult)
	}
	margin := f.Margin
	if margin <= 0 {
		margin = 8
	}
	in.Win = in.DefaultWindow(margin)
	return in, nil
}

func applyCongestion(g *grid.Graph, c *grid.Costs, l, x0, y0, x1, y1 int32, mult float32) {
	if l < 0 || l >= int32(len(g.Layers)) || mult < 1 {
		return
	}
	for y := y0; y <= y1 && y < g.NY; y++ {
		for x := x0; x <= x1 && x < g.NX; x++ {
			if y < 0 || x < 0 {
				continue
			}
			if g.Layers[l].Dir == grid.DirH {
				if x < g.NX-1 {
					c.Mult[g.SegH(l, y, x)] = mult
				}
			} else if y < g.NY-1 {
				c.Mult[g.SegV(l, x, y)] = mult
			}
		}
	}
}

// TreeJSON is the serialized form of a solved tree, emitted by
// cmd/cdsteiner.
type TreeJSON struct {
	Total     float64       `json:"total"`
	CongCost  float64       `json:"congestion_cost"`
	DelayCost float64       `json:"delay_cost"`
	SinkDelay []float64     `json:"sink_delay_ps"`
	WireSteps int           `json:"wire_steps"`
	Vias      int           `json:"vias"`
	Edges     [][2][3]int32 `json:"edges"` // pairs of (x,y,l)
}

// MarshalTree serializes a tree with its evaluation.
func MarshalTree(in *Instance, tr *Tree) ([]byte, error) {
	ev, err := Evaluate(in, tr)
	if err != nil {
		return nil, err
	}
	out := TreeJSON{
		Total: ev.Total, CongCost: ev.CongCost, DelayCost: ev.DelayCost,
		SinkDelay: ev.SinkDelay, WireSteps: ev.WireSteps, Vias: ev.Vias,
	}
	for _, st := range tr.Steps {
		fx, fy, fl := in.G.XYL(st.From)
		tx, ty, tl := in.G.XYL(st.Arc.To)
		out.Edges = append(out.Edges, [2][3]int32{{fx, fy, fl}, {tx, ty, tl}})
	}
	return json.MarshalIndent(out, "", "  ")
}
