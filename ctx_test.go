package costdist

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// SolveBatchCtx with a background context must be bit-identical to
// SolveBatch (the non-cancelled path adds only a ctx check per claim).
func TestSolveBatchCtxUncancelledIdentical(t *testing.T) {
	ins := benchInstances(24, 5, 8, 16, 4)
	opt := BatchOptions{Workers: 4, Router: DefaultRouterOptions()}
	want := SolveBatch(ins, CD, opt)
	got, err := SolveBatchCtx(context.Background(), ins, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("SolveBatchCtx diverged from SolveBatch")
	}
	// A nil context means background, not a panic.
	got, err = SolveBatchCtx(nil, ins, CD, opt) //lint:ignore SA1012 explicitly supported
	if err != nil || !reflect.DeepEqual(want, got) {
		t.Fatalf("nil-context batch diverged (err %v)", err)
	}
}

// A cancelled batch must return ctx.Err() and stop solving promptly,
// for both the sequential (workers=1) and parallel paths.
func TestSolveBatchCtxCancelled(t *testing.T) {
	ins := benchInstances(24, 5, 8, 64, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		start := time.Now()
		out, err := SolveBatchCtx(ctx, ins, CD, BatchOptions{Workers: workers, Router: DefaultRouterOptions()})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(out) != len(ins) {
			t.Fatalf("workers=%d: %d results for %d instances", workers, len(out), len(ins))
		}
		for i, r := range out {
			if r.Tree != nil || r.Err != nil {
				t.Fatalf("workers=%d: pre-cancelled batch solved instance %d", workers, i)
			}
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("workers=%d: cancelled batch took %v", workers, d)
		}
	}
}

// RouteChipCtx with a background context must match RouteChip exactly;
// a cancelled context must surface ctx.Err() within roughly one
// net-solve latency.
func TestRouteChipCtxCancellation(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2

	want, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RouteChipCtx(context.Background(), chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	wm, gm := want.Metrics, got.Metrics
	wm.Walltime, gm.Walltime = 0, 0
	if !reflect.DeepEqual(wm, gm) {
		t.Fatalf("RouteChipCtx diverged from RouteChip:\n%+v\n%+v", wm, gm)
	}
	if !reflect.DeepEqual(want.Trees, got.Trees) {
		t.Fatal("RouteChipCtx trees diverged from RouteChip")
	}

	// Pre-cancelled: no work at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RouteChipCtx(ctx, chip, CD, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled route: err = %v", err)
	}

	// Mid-run cancel: returns Canceled, promptly.
	ctx, cancel = context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RouteChipCtx(ctx, chip, CD, opt)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		// The run may legitimately finish before the cancel lands on a
		// tiny chip; both outcomes are fine, an unrelated error is not.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel: err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled route did not return")
	}
}

// The exact tier must honor the router's context mid-solve: its label
// loop polls Env.Ctx, so a cancelled RouteChipCtx run with the Exact
// method returns promptly instead of finishing the in-flight searches.
func TestRouteChipCtxCancellationExactTier(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2

	// Pre-cancelled: no work at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RouteChipCtx(ctx, chip, Exact, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled exact route: err = %v", err)
	}

	// Mid-run cancel: returns Canceled, promptly — the in-flight exact
	// searches abort through Env.Ctx rather than running to budget.
	ctx, cancel = context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RouteChipCtx(ctx, chip, Exact, opt)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel: err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled exact route did not return")
	}
}

// SolveExactGoal on an instance big enough to run for a while must
// abandon the search shortly after its context is cancelled — the goal
// solver checks the context inside the label loop, not just on entry.
func TestSolveExactGoalMidSearchCancel(t *testing.T) {
	in := diffInstance(3, 13, 10, 0) // band-2 scale: seconds of label work
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := SolveExactGoal(ctx, in)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-search cancel: err = %v", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("goal solver took %v to notice the cancel", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled goal search did not return")
	}
}

// RouteChip must publish the final tree of every net — the service
// layer serializes them, so absence would be an API regression.
func TestRouteChipExposesTrees(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 1
	res, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != len(chip.NL.Nets) {
		t.Fatalf("%d trees for %d nets", len(res.Trees), len(chip.NL.Nets))
	}
	routed := 0
	for _, tr := range res.Trees {
		if tr != nil && len(tr.Steps) > 0 {
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("no net has a routed tree")
	}
}
