// Command grroute runs timing-constrained global routing on one chip of
// the synthetic c1..c8 suite (paper Table III) with a selectable Steiner
// tree oracle and prints the Tables IV/V metric row.
//
// Usage:
//
//	grroute -chip c3 -oracle cd|rsmt|sl|pd|auto|portfolio -scale 0.01 -waves 4 [-dbif=0] [-workers 16] [-incremental] [-repairtol 0.25]
//	grroute -chip c1 -scale 0.05 -cpuprofile cpu.pprof -memprofile mem.pprof
//	grroute -chip c1 -trace route.json   # Chrome trace_event timeline of the run
package main

import (
	"flag"
	"fmt"
	"os"

	"costdist"
	"costdist/internal/cliutil"
)

func main() {
	chipName := flag.String("chip", "c1", "chip name c1..c8")
	oracleName := flag.String("oracle", "", "oracle or driver: cd, rsmt (alias l1), sl, pd, auto, portfolio")
	method := flag.String("method", "CD", "deprecated alias for -oracle")
	scale := flag.Float64("scale", 0.01, "net count scale vs the paper (1.0 = full)")
	waves := flag.Int("waves", 4, "rip-up-and-reroute waves")
	workers := flag.Int("workers", 0, "parallel routing workers, one solver arena each (0 = all cores)")
	threads := flag.Int("threads", 0, "deprecated alias for -workers")
	dbif := flag.Float64("dbif", -1, "bifurcation penalty ps (-1: derive from technology, 0: off)")
	seed := flag.Uint64("seed", 1, "random seed")
	incremental := flag.Bool("incremental", false, "dirty-net scheduling: re-solve only nets invalidated by price changes after wave 0")
	incTol := flag.Float64("inctol", 0, "incremental invalidation tolerance (relative; <0 forces every net dirty; unset: router default)")
	repairTol := flag.Float64("repairtol", -1, "topology-repair escalation tolerance: ≥ 0 re-embeds price-dirtied nets on their cached topology before a full re-solve, < 0 disables the rung (default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the routing run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the routing run to this file")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the routing run to this file (open in chrome://tracing or Perfetto)")
	flag.Parse()
	incTolSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "inctol" {
			incTolSet = true
		}
	})

	spec, ok := costdist.ChipSpecByName(*chipName, *scale)
	if !ok {
		cliutil.FatalUsage("grroute", fmt.Errorf("unknown chip %q (want c1..c8)", *chipName))
	}
	name := *oracleName
	if name == "" {
		name = *method
	}
	m := cliutil.MustMethod("grroute", name)

	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		cliutil.Fatal("grroute", err)
	}
	opt := costdist.DefaultRouterOptions()
	opt.Waves = *waves
	opt.Threads = *workers
	if opt.Threads == 0 {
		opt.Threads = *threads
	}
	opt.DBif = *dbif
	opt.Seed = *seed
	opt.Incremental = *incremental
	if incTolSet {
		opt.IncrementalTol = *incTol
	}
	// The flag default (-1) equals the router default, so unconditional
	// assignment preserves unset semantics without a flag.Visit check.
	opt.RepairTol = *repairTol
	var rec *costdist.Recorder
	if *traceFile != "" {
		rec = costdist.NewRecorder()
		opt.Recorder = rec
	}

	fmt.Printf("chip %s: %d nets, %d layers, clk %.0f ps, dbif %.3f ps\n",
		spec.Name, spec.NNets, spec.Layers, chip.ClkPeriod, chip.DBif)
	prof := cliutil.StartProfiles("grroute", *cpuprofile, *memprofile)
	res, err := costdist.RouteChip(chip, m, opt)
	prof.Stop()
	if err != nil {
		cliutil.Fatal("grroute", err)
	}
	mt := res.Metrics
	fmt.Printf("%-5s %-9s WS %8.0f ps  TNS %11.0f ps  ACE4 %6.2f%%  WL %9.4f m  Vias %9d  obj %.0f  %s\n",
		spec.Name, m, mt.WS, mt.TNS, mt.ACE4, mt.WLm, mt.Vias, mt.Objective, mt.Walltime.Round(1e6))
	if m == costdist.Auto || m == costdist.Portfolio {
		fmt.Printf("oracle solves: %v\n", mt.SolvesByOracle)
	}
	if *incremental {
		fmt.Printf("incremental: %d solved, %d skipped (%.1f%% cache hits); per wave solved %v skipped %v delta %v\n",
			mt.NetsSolved, mt.NetsSkipped,
			100*float64(mt.NetsSkipped)/float64(mt.NetsSolved+mt.NetsSkipped+mt.NetsRepaired),
			mt.SolvedPerWave, mt.SkippedPerWave, mt.DeltaSegsPerWave)
	}
	if *repairTol >= 0 {
		fmt.Printf("repair tier: %d repaired, %d escalated; per wave repaired %v escalated %v\n",
			mt.NetsRepaired, mt.RepairEscalated, mt.RepairedPerWave, mt.EscalatedPerWave)
	}
	if rec != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			cliutil.Fatal("grroute", err)
		}
		if err := costdist.WriteTrace(f, rec); err != nil {
			cliutil.Fatal("grroute", err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fatal("grroute", err)
		}
		fmt.Printf("trace: %d spans to %s; per-wave convergence objective %v overflow %v\n",
			len(rec.Spans()), *traceFile, mt.ObjectivePerWave, mt.OverflowPerWave)
	}
}
