// Command benchtables regenerates the paper's tables on the synthetic
// chip suite:
//
//	benchtables -table 1 -scale 0.005    # Table I  (instance comparison, dbif = 0)
//	benchtables -table 2                 # Table II (instance comparison, dbif > 0)
//	benchtables -table 3                 # Table III (chip inventory)
//	benchtables -table 4                 # Table IV (global routing, dbif = 0)
//	benchtables -table 5                 # Table V  (global routing, dbif > 0)
//	benchtables -table all               # everything
//
// Larger -scale values approach the paper's instance counts at the price
// of runtime; -chips restricts the suite (e.g. -chips 1,2,3).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"costdist/internal/tables"
)

func main() {
	table := flag.String("table", "all", "which table: 1..5, ablation, or all")
	scale := flag.Float64("scale", 0.005, "net count scale vs the paper")
	waves := flag.Int("waves", 3, "routing waves")
	threads := flag.Int("threads", 0, "routing workers (0 = all cores)")
	seed := flag.Uint64("seed", 7, "random seed")
	chips := flag.String("chips", "", "comma-separated chip indices 1..8 (default all)")
	flag.Parse()

	cfg := tables.Config{Scale: *scale, Waves: *waves, Threads: *threads, Seed: *seed}
	if *chips != "" {
		for _, part := range strings.Split(*chips, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || idx < 1 || idx > 8 {
				fatal(fmt.Errorf("bad chip index %q", part))
			}
			cfg.Chips = append(cfg.Chips, idx-1)
		}
	}

	want := func(t string) bool { return *table == "all" || *table == t }

	if want("3") {
		fmt.Println(tables.FormatTableIII(tables.TableIII(cfg), cfg.Scale))
	}
	if want("1") {
		rows, err := tables.InstanceComparison(cfg, false)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tables.FormatInstanceTable("TABLE I — AVERAGE COST INCREASE COMPARED TO MINIMUM, dbif = 0", rows))
	}
	if want("2") {
		rows, err := tables.InstanceComparison(cfg, true)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tables.FormatInstanceTable("TABLE II — AVERAGE COST INCREASE COMPARED TO MINIMUM, dbif > 0", rows))
	}
	if want("4") {
		rows, err := tables.GlobalRouting(cfg, false)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tables.FormatGRTable("TABLE IV — TIMING-CONSTRAINED GLOBAL ROUTING RESULTS, dbif = 0 (* = best)", rows))
	}
	if want("5") {
		rows, err := tables.GlobalRouting(cfg, true)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tables.FormatGRTable("TABLE V — TIMING-CONSTRAINED GLOBAL ROUTING RESULTS, dbif > 0 (* = best)", rows))
	}
	if want("ablation") {
		rows, err := tables.Ablation(cfg, true)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tables.FormatAblation(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
