// Command cdsteiner solves a single cost-distance Steiner tree instance
// read from a JSON file (see costdist.InstanceJSON for the schema) with
// any of the four algorithms, prints the objective decomposition and
// optionally writes the tree as JSON and/or SVG.
//
// Usage:
//
//	cdsteiner -in instance.json [-method cd|rsmt|sl|pd|auto|portfolio] [-out tree.json] [-svg tree.svg]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"costdist"
	"costdist/internal/cliutil"
)

func main() {
	inPath := flag.String("in", "", "instance JSON file (required)")
	method := flag.String("method", "CD", "oracle or driver: cd, rsmt (alias l1), sl, pd, auto, portfolio")
	outPath := flag.String("out", "", "write solved tree JSON here")
	svgPath := flag.String("svg", "", "write tree SVG here")
	compare := flag.Bool("compare", false, "run all four algorithms and print a comparison")
	flag.Parse()

	if *inPath == "" {
		flag.Usage()
		os.Exit(cliutil.ExitUsage)
	}
	data, err := os.ReadFile(*inPath)
	if err != nil {
		fatal(err)
	}
	in, err := costdist.ParseInstance(data)
	if err != nil {
		fatal(err)
	}

	if *compare {
		fmt.Printf("%-4s %12s %12s %12s %6s %6s\n", "alg", "total", "congestion", "delay", "wires", "vias")
		for _, name := range []string{"L1", "SL", "PD", "CD"} {
			cm, _ := costdist.MethodByName(name)
			tr, err := costdist.Solve(in, cm, costdist.DefaultRouterOptions())
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			ev, err := costdist.Evaluate(in, tr)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-4s %12.3f %12.3f %12.3f %6d %6d\n",
				name, ev.Total, ev.CongCost, ev.DelayCost, ev.WireSteps, ev.Vias)
		}
		return
	}

	m := cliutil.MustMethod("cdsteiner", *method)
	tr, err := costdist.Solve(in, m, costdist.DefaultRouterOptions())
	if err != nil {
		fatal(err)
	}
	ev, err := costdist.Evaluate(in, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method      %s\n", strings.ToUpper(*method))
	fmt.Printf("objective   %.4f\n", ev.Total)
	fmt.Printf("congestion  %.4f\n", ev.CongCost)
	fmt.Printf("delay cost  %.4f\n", ev.DelayCost)
	fmt.Printf("wires/vias  %d/%d\n", ev.WireSteps, ev.Vias)
	for i, d := range ev.SinkDelay {
		fmt.Printf("sink %-3d    %.2f ps (w=%.4g)\n", i, d, in.Sinks[i].W)
	}
	if *outPath != "" {
		out, err := costdist.MarshalTree(in, tr)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fatal(err)
		}
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(costdist.RenderTree(in, tr, 16)), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	cliutil.Fatal("cdsteiner", err)
}
