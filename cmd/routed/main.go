// Command routed serves the costdist solver as a long-running routing
// service: an HTTP JSON API over a sharded worker pool with per-worker
// scratch arenas and a content-addressed result cache. See
// internal/service for the endpoint semantics.
//
// Usage:
//
//	routed [-addr :8423] [-oracle cd] [-shards 0] [-workers 1] [-queue 128] [-cache-mb 64]
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight jobs are
// cancelled between per-net solves and the listener drains.
//
// The server also exposes the net/http/pprof endpoints under
// /debug/pprof/, so a live instance can be CPU- or heap-profiled in
// place: go tool pprof http://localhost:8423/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"costdist/internal/cliutil"
	"costdist/internal/service"
)

func main() {
	addr := flag.String("addr", ":8423", "listen address")
	oracleName := flag.String("oracle", "cd", "default oracle or driver for requests that omit one: cd, rsmt (alias l1), sl, pd, auto, portfolio")
	shards := flag.Int("shards", 0, "worker pool shards (0 = one per CPU, capped at 16)")
	workers := flag.Int("workers", 1, "solver workers per shard, one scratch arena each")
	queue := flag.Int("queue", 128, "bounded task queue depth per shard (full queues answer 503)")
	cacheMB := flag.Int("cache-mb", 64, "result cache byte budget in MiB (0 disables caching)")
	checkpointMB := flag.Int("checkpoint-mb", 128, "warm-start checkpoint store byte budget in MiB (0 disables base_job warm starts)")
	repairTol := flag.Float64("repairtol", -1, "default repair tolerance for requests without repair_tol: > 0 enables the incremental engine's topology-repair rung, ≤ 0 keeps it off")
	flightSpans := flag.Int("flight-spans", 0, "flight-recorder ring capacity in telemetry spans, dumped at /debug/obs (0 = default)")
	flag.Parse()
	if flag.NArg() > 0 {
		cliutil.FatalUsage("routed", fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	cliutil.MustMethod("routed", *oracleName) // exits 2 listing the valid set

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	checkpointBytes := int64(*checkpointMB) << 20
	if *checkpointMB <= 0 {
		checkpointBytes = -1
	}
	srv, err := service.New(service.Config{
		Shards:           *shards,
		WorkersPerShard:  *workers,
		QueueDepth:       *queue,
		CacheBytes:       cacheBytes,
		CheckpointBytes:  checkpointBytes,
		DefaultMethod:    *oracleName,
		DefaultRepairTol: *repairTol,
		FlightSpans:      *flightSpans,
	})
	if err != nil {
		cliutil.Fatal("routed", err)
	}

	// The service handler plus the standard pprof endpoints: a live
	// server can be profiled in place (go tool pprof
	// http://host/debug/pprof/profile) without a restart or rebuild.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	hs := &http.Server{Addr: *addr, Handler: mux}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "routed: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // cancels jobs between per-net solves
		_ = hs.Shutdown(ctx)  // stops the listener, drains connections
	}()

	fmt.Printf("routed: listening on %s (default oracle %s)\n", *addr, *oracleName)
	err = hs.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatal("routed", err)
	}
	// ErrServerClosed arrives as soon as the listener closes; wait for
	// the shutdown goroutine so in-flight responses finish draining
	// before the process exits.
	<-drained
}
