// Command loadgen measures routing-service throughput and writes the
// snapshot consumed by BENCH_service.json. It drives POST /v1/solve in
// two phases — "unique" (every request a fresh seed, defeating the
// cache to measure raw solve throughput) and "repeat" (the corpus
// resubmitted verbatim, measuring cached throughput and the hit rate) —
// plus one cancellation probe on a route job.
//
// With -addr empty it starts an in-process server on a loopback port,
// so the benchmark is self-contained:
//
//	loadgen -corpus examples/instances -out BENCH_service.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"costdist/internal/cliutil"
	"costdist/internal/service"
)

func main() {
	addr := flag.String("addr", "", "routed server address (empty: start an in-process server)")
	corpusDir := flag.String("corpus", "examples/instances", "directory of InstanceJSON documents")
	concurrency := flag.Int("concurrency", 16, "concurrent client connections")
	unique := flag.Int("unique", 300, "unique-phase requests (fresh seed each, cache-defeating)")
	repeat := flag.Int("repeat", 3000, "repeat-phase requests (corpus verbatim, cache-serving)")
	oracleName := flag.String("oracle", "cd", "oracle for every solve request")
	out := flag.String("out", "BENCH_service.json", "benchmark snapshot path")
	flag.Parse()
	cliutil.MustMethod("loadgen", *oracleName)

	corpus, err := loadCorpus(*corpusDir)
	if err != nil {
		cliutil.Fatal("loadgen", err)
	}

	base := *addr
	if base == "" {
		srv, err := service.New(service.Config{DefaultMethod: *oracleName})
		if err != nil {
			cliutil.Fatal("loadgen", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cliutil.Fatal("loadgen", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("loadgen: in-process server on %s\n", base)
	} else if base[0] == ':' {
		base = "http://127.0.0.1" + base
	} else {
		base = "http://" + base
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}

	// Unique phase: every request mutates the corpus seed, so nothing
	// is ever served from cache — raw solve throughput.
	uniqueStats := runPhase(client, base, *oracleName, *concurrency, *unique, func(i int) []byte {
		return withSeed(corpus[i%len(corpus)], uint64(1_000_000+i))
	})
	// Repeat phase: the corpus verbatim; after one cold pass everything
	// is a cache hit.
	repeatStats := runPhase(client, base, *oracleName, *concurrency, *repeat, func(i int) []byte {
		return corpus[i%len(corpus)]
	})
	cancelMS, err := cancelProbe(client, base)
	if err != nil {
		cliutil.Fatal("loadgen", err)
	}

	snap := map[string]any{
		"generated_by": "cmd/loadgen",
		"corpus_docs":  len(corpus),
		"concurrency":  *concurrency,
		"oracle":       *oracleName,
		"unique":       uniqueStats,
		"repeat":       repeatStats,
		"cancel_ms":    cancelMS,
	}
	data, _ := json.MarshalIndent(snap, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		cliutil.Fatal("loadgen", err)
	}
	fmt.Printf("unique: %.0f req/s (p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, %d errors)\n",
		uniqueStats["reqps"], uniqueStats["p50_ms"], uniqueStats["p90_ms"], uniqueStats["p99_ms"], uniqueStats["errors"])
	fmt.Printf("repeat: %.0f req/s, %.1f%% cache hits (p50 %.2f ms, p90 %.2f ms, p99 %.2f ms)\n",
		repeatStats["reqps"], 100*repeatStats["hit_rate"].(float64), repeatStats["p50_ms"], repeatStats["p90_ms"], repeatStats["p99_ms"])
	if cancelMS < 0 {
		fmt.Println("cancel: probe inconclusive (job finished first)")
	} else {
		fmt.Printf("cancel: job cancelled in %.1f ms\n", cancelMS)
	}
	fmt.Printf("wrote %s\n", *out)
}

func loadCorpus(dir string) ([][]byte, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out [][]byte
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no *.json documents in %s", dir)
	}
	return out, nil
}

// withSeed re-emits an instance document with the seed replaced, which
// changes its content address without changing its difficulty.
func withSeed(doc []byte, seed uint64) []byte {
	var v map[string]any
	if err := json.Unmarshal(doc, &v); err != nil {
		return doc
	}
	v["seed"] = seed
	out, err := json.Marshal(v)
	if err != nil {
		return doc
	}
	return out
}

// runPhase fans n solve requests over the worker count and aggregates
// throughput, latency percentiles and the client-observed hit rate.
func runPhase(client *http.Client, base, oracle string, workers, n int, body func(int) []byte) map[string]any {
	var next, hits, errs atomic.Int64
	durs := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				req := body(i)
				wrapped, _ := json.Marshal(map[string]any{
					"method":   oracle,
					"instance": json.RawMessage(req),
				})
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(wrapped))
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				durs[w] = append(durs[w], time.Since(t0))
				if resp.Header.Get("X-Cache") == "hit" {
					hits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	ok := len(all)
	hitRate := 0.0
	if ok > 0 {
		hitRate = float64(hits.Load()) / float64(ok)
	}
	return map[string]any{
		"requests":   n,
		"errors":     errs.Load(),
		"elapsed_s":  elapsed.Seconds(),
		"reqps":      float64(ok) / elapsed.Seconds(),
		"hit_rate":   hitRate,
		"p50_ms":     pct(0.50),
		"p90_ms":     pct(0.90),
		"p95_ms":     pct(0.95),
		"p99_ms":     pct(0.99),
		"mean_ms":    mean(all),
		"throughput": fmt.Sprintf("%.0f req/s", float64(ok)/elapsed.Seconds()),
	}
}

func mean(durs []time.Duration) float64 {
	if len(durs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	return float64(sum) / float64(len(durs)) / float64(time.Millisecond)
}

// cancelProbe submits a deliberately long route job, cancels it, and
// reports how long the DELETE + status confirmation took — the
// service-level view of the per-net cancellation plumbing. The seed is
// time-derived so a re-run against a persistent server never turns the
// probe into a cache hit. Returns -1 (inconclusive, not an error) if
// the job finished before the cancel landed.
func cancelProbe(client *http.Client, base string) (float64, error) {
	body := fmt.Sprintf(`{"chip":"c1","scale":0.02,"waves":12,"seed":%d}`,
		uint64(time.Now().UnixNano()))
	resp, err := client.Post(base+"/v1/route", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	var jv service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		return 0, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("route submit: status %d", resp.StatusCode)
	}
	time.Sleep(100 * time.Millisecond) // let the job start routing
	t0 := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+jv.ID, nil)
	dresp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	var after service.JobView
	if err := json.NewDecoder(dresp.Body).Decode(&after); err != nil {
		return 0, err
	}
	dresp.Body.Close()
	switch after.Status {
	case service.JobCancelled:
		return float64(time.Since(t0)) / float64(time.Millisecond), nil
	case service.JobDone:
		return -1, nil // finished before the cancel landed; nothing to measure
	default:
		return 0, fmt.Errorf("job status after cancel: %s", after.Status)
	}
}
