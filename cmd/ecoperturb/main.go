// Command ecoperturb is the end-to-end smoke probe for warm-started
// rerouting through the service: it routes a chip, resubmits the same
// chip with a small ECO perturbation warm-started from the first job
// (base_job), and asserts the warm run actually reused cached work
// (NetsSkipped > 0) at fewer oracle solves than the cold run, and —
// with the repair rung enabled (-repairtol ≥ 0, the default) — that
// the topology-repair tier absorbed at least one dirty net
// (NetsRepaired > 0).
//
// By default it spins an in-process server (no network setup needed —
// this is what the CI smoke step runs); -url points it at an external
// routed instance instead.
//
// Usage:
//
//	ecoperturb [-chip c1] [-scale 0.02] [-waves 2] [-frac 0.05] [-seed 9] [-repairtol 0.25] [-url http://host:8423]
//
// Exit status: 0 on success, 1 when the warm-start assertion fails or
// a request errors, 2 on bad flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"costdist"
	"costdist/internal/cliutil"
	"costdist/internal/service"
)

type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func main() {
	url := flag.String("url", "", "routed base URL (empty = run an in-process server)")
	chip := flag.String("chip", "c1", "chip name c1..c8")
	scale := flag.Float64("scale", 0.02, "net count scale vs the paper")
	waves := flag.Int("waves", 2, "rip-up-and-reroute waves")
	frac := flag.Float64("frac", 0.05, "fraction of nets to perturb (at least one net)")
	seed := flag.Uint64("seed", 9, "perturbation seed")
	repairTol := flag.Float64("repairtol", 0.25, "repair_tol of the warm request (< 0 disables the repair rung and its assertion)")
	timeout := flag.Duration("timeout", 3*time.Minute, "per-job poll deadline")
	flag.Parse()
	if flag.NArg() > 0 {
		cliutil.FatalUsage("ecoperturb", fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	if *frac <= 0 || *frac > 1 {
		cliutil.FatalUsage("ecoperturb", fmt.Errorf("-frac %g outside (0,1]", *frac))
	}

	base := *url
	if base == "" {
		srv, err := service.New(service.Config{})
		if err != nil {
			cliutil.Fatal("ecoperturb", err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		base = ts.URL
		fmt.Printf("ecoperturb: in-process server at %s\n", base)
	}

	coldReq := fmt.Sprintf(`{"chip":%q,"scale":%g,"waves":%d}`, *chip, *scale, *waves)
	coldID, err := submit(base, coldReq)
	if err != nil {
		cliutil.Fatal("ecoperturb", fmt.Errorf("cold submit: %w", err))
	}
	coldMetrics, err := await(base, coldID, *timeout)
	if err != nil {
		cliutil.Fatal("ecoperturb", fmt.Errorf("cold job %s: %w", coldID, err))
	}
	fmt.Printf("ecoperturb: cold %s done — %d solves, objective %.4g\n",
		coldID, coldMetrics.NetsSolved, coldMetrics.Objective)

	warmReq := fmt.Sprintf(`{"chip":%q,"scale":%g,"waves":%d,"base_job":%q,"perturb_frac":%g,"perturb_seed":%d}`,
		*chip, *scale, *waves, coldID, *frac, *seed)
	if *repairTol >= 0 {
		warmReq = strings.TrimSuffix(warmReq, "}") + fmt.Sprintf(`,"repair_tol":%g}`, *repairTol)
	}
	warmID, err := submit(base, warmReq)
	if err != nil {
		cliutil.Fatal("ecoperturb", fmt.Errorf("warm submit: %w", err))
	}
	warmMetrics, err := await(base, warmID, *timeout)
	if err != nil {
		cliutil.Fatal("ecoperturb", fmt.Errorf("warm job %s: %w", warmID, err))
	}
	fmt.Printf("ecoperturb: warm %s done — %d solves, %d skipped, %d repaired (%d escalated), objective %.4g\n",
		warmID, warmMetrics.NetsSolved, warmMetrics.NetsSkipped,
		warmMetrics.NetsRepaired, warmMetrics.RepairEscalated, warmMetrics.Objective)

	if warmMetrics.NetsSkipped == 0 {
		cliutil.Fatal("ecoperturb", fmt.Errorf("warm start skipped no nets — checkpoint was not reused"))
	}
	if warmMetrics.NetsSolved >= coldMetrics.NetsSolved {
		cliutil.Fatal("ecoperturb", fmt.Errorf("warm start solved %d nets, cold solved %d — no work saved",
			warmMetrics.NetsSolved, coldMetrics.NetsSolved))
	}
	if *repairTol >= 0 && warmMetrics.NetsRepaired == 0 {
		cliutil.Fatal("ecoperturb", fmt.Errorf("warm start repaired no nets — the repair rung never engaged"))
	}
	fmt.Printf("ecoperturb: OK — warm start reused %d net-waves (%.1f%% of cold solves avoided)\n",
		warmMetrics.NetsSkipped,
		100*(1-float64(warmMetrics.NetsSolved)/float64(coldMetrics.NetsSolved)))
}

// submit posts a route request and returns the job id.
func submit(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/route", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var jv jobView
	if err := json.Unmarshal(b, &jv); err != nil {
		return "", err
	}
	if jv.ID == "" {
		return "", fmt.Errorf("no job id in %s", b)
	}
	return jv.ID, nil
}

// await polls the job to completion and returns its result metrics.
func await(base, id string, timeout time.Duration) (*costdist.RouteMetricsJSON, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var jv jobView
		if err := json.Unmarshal(b, &jv); err != nil {
			return nil, err
		}
		switch jv.Status {
		case "done":
			return fetchMetrics(base, id)
		case "failed", "cancelled":
			return nil, fmt.Errorf("job ended %s: %s", jv.Status, jv.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("timed out in status %s", jv.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchMetrics(base, id string) (*costdist.RouteMetricsJSON, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Metrics costdist.RouteMetricsJSON `json:"metrics"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return &out.Metrics, nil
}
