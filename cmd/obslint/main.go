// Command obslint validates the repository's observability surfaces so
// CI can smoke-check them without external tooling:
//
//	curl -s localhost:8080/metrics | obslint            # Prometheus text lint
//	obslint -trace route.json                           # Chrome trace_event check
//
// The default mode reads a Prometheus text-format exposition from stdin
// and verifies the invariants scrapers rely on: every sample has a
// preceding # TYPE, histogram families carry _sum/_count and a +Inf
// bucket per label set, no duplicate series, numeric values. -trace
// instead validates a trace file written by grroute -trace or incbench
// -trace. Exit status 0 means clean; violations print to stderr and
// exit 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"costdist"
	"costdist/internal/obs"
)

func main() {
	traceFile := flag.String("trace", "", "validate this Chrome trace_event JSON file instead of linting stdin as Prometheus text")
	flag.Parse()

	if *traceFile != "" {
		data, err := os.ReadFile(*traceFile)
		if err != nil {
			fail(err)
		}
		if err := costdist.ValidateTrace(data); err != nil {
			fail(fmt.Errorf("%s: %v", *traceFile, err))
		}
		fmt.Printf("obslint: %s is a valid trace_event document\n", *traceFile)
		return
	}

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fail(err)
	}
	if len(data) == 0 {
		fail(fmt.Errorf("empty input on stdin (pipe a /metrics body, or use -trace)"))
	}
	if err := obs.LintPromText(data); err != nil {
		fail(err)
	}
	fmt.Println("obslint: metrics exposition is well-formed")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "obslint: %v\n", err)
	os.Exit(1)
}
