// Command incbench measures the incremental routing engine against the
// full re-solve engine on one chip of the Table III suite and writes the
// comparison as JSON — the generator of BENCH_incremental.json. The
// headline numbers are the oracle-solve reduction after wave 0 and the
// final-objective delta between the two engines.
//
// With -selection it instead benchmarks the oracle drivers: pure CD
// against the Auto per-net selector and the Portfolio racer, writing
// BENCH_selection.json. The headline numbers there are the CD-oracle
// solve reduction of Auto and the objective deltas of both drivers.
//
// With -eco it benchmarks checkpointed warm-start rerouting: route the
// chip cold and checkpoint it, perturb a fraction of its nets
// (ECO-style), then route the perturbed chip cold, warm-started from
// the checkpoint without the repair rung, and (with -repairtol ≥ 0)
// warm-started with the topology-repair rung enabled, writing
// BENCH_warmstart.json. The headline numbers are the repair-enabled
// warm run's solve fraction and walltime speedup against the cold
// reroute, the warm-vs-cold objective delta on the same perturbed chip,
// and the share of dirty nets the repair rung absorbed instead of
// sending to a full oracle solve.
//
// The default and -eco modes attach a telemetry recorder to every leg:
// the reports persist the per-wave convergence series and stage-time
// breakdown, a per-stage walltime table prints after the headline
// numbers, and -trace writes the headline leg's Chrome trace_event
// timeline.
//
// Usage:
//
//	incbench -chip c1 -scale 0.25 [-waves 4] [-workers 0] [-repairtol 0.25] [-out BENCH_incremental.json] [-trace inc.json]
//	incbench -selection -chip c1 -scale 0.25 [-waves 4] [-out BENCH_selection.json]
//	incbench -eco -chip c1 -scale 0.25 [-waves 4] [-perturb 0.05] [-min-repair-frac 0.25] [-out BENCH_warmstart.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"costdist"
	"costdist/internal/cliutil"
)

type runJSON struct {
	Incremental      bool    `json:"incremental"`
	WS               float64 `json:"ws_ps"`
	TNS              float64 `json:"tns_ps"`
	ACE4             float64 `json:"ace4_pct"`
	WLm              float64 `json:"wirelength_m"`
	Vias             int64   `json:"vias"`
	Overflow         float64 `json:"overflow"`
	Objective        float64 `json:"objective"`
	NetsSolved       int64   `json:"nets_solved"`
	NetsSkipped      int64   `json:"nets_skipped"`
	SolvedPerWave    []int   `json:"solved_per_wave"`
	SkippedPerWave   []int   `json:"skipped_per_wave"`
	DeltaSegsPerWave []int   `json:"delta_segs_per_wave"`
	NetsRepaired     int64   `json:"nets_repaired,omitempty"`
	RepairEscalated  int64   `json:"repair_escalated,omitempty"`
	RepairedPerWave  []int   `json:"repaired_per_wave,omitempty"`
	EscalatedPerWave []int   `json:"escalated_per_wave,omitempty"`
	WalltimeMS       int64   `json:"walltime_ms"`
	// Per-wave telemetry from the run's recorder: the deterministic
	// convergence series and the wall-clock stage breakdown (fine to
	// persist here — bench reports are measurements, not cached results).
	ObjectivePerWave []float64             `json:"objective_per_wave,omitempty"`
	OverflowPerWave  []float64             `json:"overflow_per_wave,omitempty"`
	StageNsPerWave   []costdist.StageNanos `json:"stage_ns_per_wave,omitempty"`
}

type reportJSON struct {
	Date            string  `json:"date"`
	Go              string  `json:"go"`
	CPUs            int     `json:"cpus"`
	Workers         int     `json:"workers"`
	Chip            string  `json:"chip"`
	Scale           float64 `json:"scale"`
	Nets            int     `json:"nets"`
	Waves           int     `json:"waves"`
	IncrementalTol  float64 `json:"incremental_tol"`
	Full            runJSON `json:"full"`
	Incremental     runJSON `json:"incremental"`
	SolveReduction  float64 `json:"solve_reduction_after_wave0_pct"`
	ObjectiveDelta  float64 `json:"objective_delta_pct"`
	WalltimeSpeedup float64 `json:"walltime_speedup"`

	// The repair leg (incremental engine plus the topology-repair rung)
	// and its deltas against the plain incremental leg; all absent when
	// the rung is disabled (-repairtol < 0).
	RepairTol             float64  `json:"repair_tol,omitempty"`
	Repair                *runJSON `json:"repair,omitempty"`
	RepairFraction        float64  `json:"repair_fraction_pct,omitempty"`
	RepairEscalationRate  float64  `json:"repair_escalation_rate_pct,omitempty"`
	RepairObjectiveDelta  float64  `json:"repair_objective_delta_pct,omitempty"`
	RepairWalltimeSpeedup float64  `json:"repair_walltime_speedup,omitempty"`
}

func toRun(m costdist.RouteMetrics, incremental bool) runJSON {
	return runJSON{
		Incremental: incremental,
		WS:          m.WS, TNS: m.TNS, ACE4: m.ACE4, WLm: m.WLm,
		Vias: m.Vias, Overflow: m.Overflow, Objective: m.Objective,
		NetsSolved: m.NetsSolved, NetsSkipped: m.NetsSkipped,
		SolvedPerWave: m.SolvedPerWave, SkippedPerWave: m.SkippedPerWave,
		DeltaSegsPerWave: m.DeltaSegsPerWave,
		NetsRepaired:     m.NetsRepaired,
		RepairEscalated:  m.RepairEscalated,
		RepairedPerWave:  m.RepairedPerWave,
		EscalatedPerWave: m.EscalatedPerWave,
		WalltimeMS:       m.Walltime.Milliseconds(),
		ObjectivePerWave: m.ObjectivePerWave,
		OverflowPerWave:  m.OverflowPerWave,
		StageNsPerWave:   m.StageNanosPerWave,
	}
}

// printStageTable prints one run's per-wave stage walltime breakdown.
// Solve and repair sum the concurrent workers' time, so those columns
// can exceed the wave's wall clock on multi-worker runs.
func printStageTable(label string, m costdist.RouteMetrics) {
	if len(m.StageNanosPerWave) == 0 {
		return
	}
	ms := func(ns int64) string { return fmt.Sprintf("%9.1f", float64(ns)/1e6) }
	fmt.Printf("%s per-stage walltime (ms; solve/repair sum worker time):\n", label)
	fmt.Printf("  wave     dirty   reprice    repair     solve    replay\n")
	var tot costdist.StageNanos
	for w, sn := range m.StageNanosPerWave {
		fmt.Printf("  %4d %s %s %s %s %s\n", w,
			ms(sn.Dirty), ms(sn.Price), ms(sn.Repair), ms(sn.Solve), ms(sn.Replay))
		tot.Dirty += sn.Dirty
		tot.Price += sn.Price
		tot.Repair += sn.Repair
		tot.Solve += sn.Solve
		tot.Replay += sn.Replay
	}
	fmt.Printf("  all  %s %s %s %s %s\n",
		ms(tot.Dirty), ms(tot.Price), ms(tot.Repair), ms(tot.Solve), ms(tot.Replay))
}

// writeTrace dumps a leg's recorder as a Chrome trace_event file.
func writeTrace(path string, rec *costdist.Recorder) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := costdist.WriteTrace(f, rec); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: trace (%d spans) written to %s\n", len(rec.Spans()), path)
}

// repairFraction is the share of dirty nets the repair rung absorbed:
// repaired / (repaired + fully solved).
func repairFraction(m costdist.RouteMetrics) float64 {
	dirty := m.NetsRepaired + m.NetsSolved
	if dirty == 0 {
		return 0
	}
	return float64(m.NetsRepaired) / float64(dirty)
}

// escalationRate is the share of repair attempts that fell through to a
// full solve.
func escalationRate(m costdist.RouteMetrics) float64 {
	attempts := m.NetsRepaired + m.RepairEscalated
	if attempts == 0 {
		return 0
	}
	return float64(m.RepairEscalated) / float64(attempts)
}

func main() {
	chipName := flag.String("chip", "c1", "chip name c1..c8")
	scale := flag.Float64("scale", 0.25, "net count scale vs the paper")
	waves := flag.Int("waves", 0, "rip-up-and-reroute waves (0 = router default)")
	workers := flag.Int("workers", 0, "routing workers (0 = all cores)")
	selection := flag.Bool("selection", false, "benchmark oracle drivers (pure CD vs auto vs portfolio) instead of the incremental engine")
	portfolioPool := flag.String("portfolio-pool", "", "comma-separated oracle pool for the portfolio leg (empty = every registered oracle)")
	eco := flag.Bool("eco", false, "benchmark checkpointed warm-start rerouting on a perturbed chip instead of the incremental engine")
	perturb := flag.Float64("perturb", 0.05, "fraction of nets to perturb in the ECO scenario")
	perturbSeed := flag.Uint64("perturb-seed", 9, "perturbation seed of the ECO scenario")
	out := flag.String("out", "", "output file (default BENCH_incremental.json, BENCH_selection.json with -selection, BENCH_warmstart.json with -eco)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the headline leg (incremental; warm with -eco) to this file")
	maxIncRatio := flag.Float64("max-inc-ratio", 0, "fail (exit 1) if incremental/full walltime exceeds this ratio (0 = no check); the CI smoke gate")
	repairTol := flag.Float64("repairtol", 0.25, "topology-repair escalation tolerance of the repair legs (< 0 skips them)")
	minRepairFrac := flag.Float64("min-repair-frac", 0, "fail (exit 1) if the repair rung absorbs less than this fraction of the repair leg's dirty nets (0 = no check); the ECO CI smoke gate")
	flag.Parse()
	prof := cliutil.StartProfiles("incbench", *cpuprofile, *memprofile)
	defer prof.Stop()
	if *out == "" {
		switch {
		case *selection:
			*out = "BENCH_selection.json"
		case *eco:
			*out = "BENCH_warmstart.json"
		default:
			*out = "BENCH_incremental.json"
		}
	}

	specs := costdist.ChipSuite(*scale)
	var spec *costdist.ChipSpec
	for i := range specs {
		if specs[i].Name == *chipName {
			spec = &specs[i]
		}
	}
	if spec == nil {
		fatal(fmt.Errorf("unknown chip %q", *chipName))
	}
	chip, err := costdist.GenerateChip(*spec)
	if err != nil {
		fatal(err)
	}
	opt := costdist.DefaultRouterOptions()
	opt.Threads = *workers
	if *waves > 0 {
		opt.Waves = *waves
	}

	if *selection {
		if *portfolioPool != "" {
			opt.Selection.Portfolio = strings.Split(*portfolioPool, ",")
		}
		runSelection(chip, spec, *scale, opt, *out)
		return
	}
	if *eco {
		runECO(chip, spec, *scale, *perturb, *perturbSeed, *repairTol, *minRepairFrac, opt, *out, *traceFile, prof)
		return
	}

	fmt.Fprintf(os.Stderr, "incbench: %s scale %g — %d nets, %d waves\n",
		spec.Name, *scale, spec.NNets, opt.Waves)
	// One fresh recorder per leg — a reused recorder would accumulate
	// the previous leg's waves into the next leg's series.
	opt.Recorder = costdist.NewRecorder()
	full, err := costdist.RouteChip(chip, costdist.CD, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: full done in %s\n", full.Metrics.Walltime.Round(time.Millisecond))
	opt.Incremental = true
	incRec := costdist.NewRecorder()
	opt.Recorder = incRec
	inc, err := costdist.RouteChip(chip, costdist.CD, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: incremental done in %s\n", inc.Metrics.Walltime.Round(time.Millisecond))
	if *traceFile != "" {
		writeTrace(*traceFile, incRec)
	}
	var rpr *costdist.RouteResult
	if *repairTol >= 0 {
		optR := opt
		optR.RepairTol = *repairTol
		optR.Recorder = costdist.NewRecorder()
		rpr, err = costdist.RouteChip(chip, costdist.CD, optR)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "incbench: repair done in %s — %d repaired, %d escalated\n",
			rpr.Metrics.Walltime.Round(time.Millisecond),
			rpr.Metrics.NetsRepaired, rpr.Metrics.RepairEscalated)
	}

	fullAfter0, incAfter0 := 0, 0
	for w := 1; w < opt.Waves; w++ {
		fullAfter0 += full.Metrics.SolvedPerWave[w]
		incAfter0 += inc.Metrics.SolvedPerWave[w]
	}
	solveReduction := 0.0 // a single wave has no post-wave-0 work to save
	if fullAfter0 > 0 {
		solveReduction = 100 * (1 - float64(incAfter0)/float64(fullAfter0))
	}
	rep := reportJSON{
		Date:           time.Now().Format("2006-01-02"),
		Go:             runtime.Version(),
		CPUs:           runtime.GOMAXPROCS(0),
		Workers:        resolvedWorkers(opt),
		Chip:           spec.Name,
		Scale:          *scale,
		Nets:           len(chip.NL.Nets),
		Waves:          opt.Waves,
		IncrementalTol: opt.IncrementalTol,
		Full:           toRun(full.Metrics, false),
		Incremental:    toRun(inc.Metrics, true),
		SolveReduction: solveReduction,
		ObjectiveDelta: 100 * (inc.Metrics.Objective - full.Metrics.Objective) /
			full.Metrics.Objective,
		WalltimeSpeedup: float64(full.Metrics.Walltime) / float64(inc.Metrics.Walltime),
	}
	if rpr != nil {
		rj := toRun(rpr.Metrics, true)
		rep.RepairTol = *repairTol
		rep.Repair = &rj
		rep.RepairFraction = 100 * repairFraction(rpr.Metrics)
		rep.RepairEscalationRate = 100 * escalationRate(rpr.Metrics)
		rep.RepairObjectiveDelta = 100 * (rpr.Metrics.Objective - full.Metrics.Objective) /
			full.Metrics.Objective
		rep.RepairWalltimeSpeedup = float64(full.Metrics.Walltime) / float64(rpr.Metrics.Walltime)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("solve reduction after wave 0: %.1f%%  objective delta: %+.2f%%  speedup: %.2fx\n",
		rep.SolveReduction, rep.ObjectiveDelta, rep.WalltimeSpeedup)
	printStageTable("full", full.Metrics)
	printStageTable("incremental", inc.Metrics)
	if rpr != nil {
		printStageTable("repair", rpr.Metrics)
	}
	if rpr != nil {
		fmt.Printf("repair rung: %.1f%% of dirty nets repaired (%.1f%% escalated)  objective delta: %+.2f%%  speedup: %.2fx\n",
			rep.RepairFraction, rep.RepairEscalationRate,
			rep.RepairObjectiveDelta, rep.RepairWalltimeSpeedup)
		checkRepairFrac(rpr.Metrics, *minRepairFrac, prof)
	}
	if *maxIncRatio > 0 {
		ratio := float64(inc.Metrics.Walltime) / float64(full.Metrics.Walltime)
		if ratio > *maxIncRatio {
			prof.Stop()
			fmt.Fprintf(os.Stderr, "incbench: FAIL incremental/full walltime ratio %.3f exceeds -max-inc-ratio %.3f\n",
				ratio, *maxIncRatio)
			os.Exit(1)
		}
		fmt.Printf("incremental/full walltime ratio %.3f within bound %.3f\n", ratio, *maxIncRatio)
	}
}

// checkRepairFrac enforces the -min-repair-frac CI gate on a
// repair-enabled run: fail (exit 1) when the repair rung absorbed less
// than the required fraction of the run's dirty nets.
func checkRepairFrac(m costdist.RouteMetrics, min float64, prof *cliutil.Profiles) {
	if min <= 0 {
		return
	}
	frac := repairFraction(m)
	if frac < min {
		prof.Stop()
		fmt.Fprintf(os.Stderr, "incbench: FAIL repair fraction %.3f below -min-repair-frac %.3f (%d repaired vs %d full solves)\n",
			frac, min, m.NetsRepaired, m.NetsSolved)
		os.Exit(1)
	}
	fmt.Printf("repair fraction %.3f meets bound %.3f\n", frac, min)
}

// resolvedWorkers mirrors the router's thread resolution (0 = all
// cores), so the reports record the worker count the runs actually used.
func resolvedWorkers(opt costdist.RouterOptions) int {
	if opt.Threads > 0 {
		return opt.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// selRunJSON is one oracle-driver run of the selection benchmark.
type selRunJSON struct {
	Method         string           `json:"method"`
	WS             float64          `json:"ws_ps"`
	TNS            float64          `json:"tns_ps"`
	ACE4           float64          `json:"ace4_pct"`
	WLm            float64          `json:"wirelength_m"`
	Vias           int64            `json:"vias"`
	Overflow       float64          `json:"overflow"`
	Objective      float64          `json:"objective"`
	NetsSolved     int64            `json:"nets_solved"`
	SolvesByOracle map[string]int64 `json:"solves_by_oracle"`
	WalltimeMS     int64            `json:"walltime_ms"`
}

type selReportJSON struct {
	Date             string   `json:"date"`
	Go               string   `json:"go"`
	CPUs             int      `json:"cpus"`
	Workers          int      `json:"workers"`
	Chip             string   `json:"chip"`
	Scale            float64  `json:"scale"`
	Nets             int      `json:"nets"`
	Waves            int      `json:"waves"`
	CriticalWeight   float64  `json:"critical_weight"`
	TightBudgetRatio float64  `json:"tight_budget_ratio"`
	PortfolioPool    []string `json:"portfolio_pool"`

	PureCD    selRunJSON `json:"pure_cd"`
	Auto      selRunJSON `json:"auto"`
	Portfolio selRunJSON `json:"portfolio"`

	// CDSolveReduction is the share of CD-oracle solves the Auto
	// selector avoids vs the pure-CD run; the objective deltas are
	// signed (negative = the driver is better than pure CD).
	CDSolveReduction      float64 `json:"auto_cd_solve_reduction_pct"`
	AutoObjectiveDelta    float64 `json:"auto_objective_delta_pct"`
	PortfolioObjDelta     float64 `json:"portfolio_objective_delta_pct"`
	AutoWalltimeSpeedup   float64 `json:"auto_walltime_speedup"`
	PortfolioWalltimeSlow float64 `json:"portfolio_walltime_slowdown"`
}

func toSelRun(m costdist.RouteMetrics, method string) selRunJSON {
	return selRunJSON{
		Method: method,
		WS:     m.WS, TNS: m.TNS, ACE4: m.ACE4, WLm: m.WLm,
		Vias: m.Vias, Overflow: m.Overflow, Objective: m.Objective,
		NetsSolved:     m.NetsSolved,
		SolvesByOracle: m.SolvesByOracle,
		WalltimeMS:     m.Walltime.Milliseconds(),
	}
}

// runSelection benchmarks the oracle drivers: the same chip routed with
// pure CD, the Auto per-net selector and the Portfolio racer.
func runSelection(chip *costdist.Chip, spec *costdist.ChipSpec, scale float64, opt costdist.RouterOptions, out string) {
	// Report the canonical pool the driver actually races: registry
	// names, deduped, in the driver's fixed (sorted) order.
	pool := opt.Selection.Portfolio
	if len(pool) == 0 {
		pool = costdist.OracleNames()
	}
	seen := map[string]bool{}
	canon := []string{}
	for _, name := range pool {
		m, ok := costdist.MethodByName(name)
		if !ok || m == costdist.Auto || m == costdist.Portfolio {
			fatal(fmt.Errorf("bad -portfolio-pool oracle %q (available: %s)",
				name, strings.Join(costdist.OracleNames(), ", ")))
		}
		if !seen[m.Name()] {
			seen[m.Name()] = true
			canon = append(canon, m.Name())
		}
	}
	sort.Strings(canon)
	pool = canon
	opt.Selection.Portfolio = pool
	fmt.Fprintf(os.Stderr, "incbench: selection on %s scale %g — %d nets, %d waves, portfolio pool %v\n",
		spec.Name, scale, spec.NNets, opt.Waves, pool)
	run := func(m costdist.Method) costdist.RouteMetrics {
		res, err := costdist.RouteChip(chip, m, opt)
		if err != nil {
			fatal(fmt.Errorf("%v: %w", m, err))
		}
		fmt.Fprintf(os.Stderr, "incbench: %v done in %s — solves %v\n",
			m, res.Metrics.Walltime.Round(time.Millisecond), res.Metrics.SolvesByOracle)
		return res.Metrics
	}
	pure := run(costdist.CD)
	auto := run(costdist.Auto)
	port := run(costdist.Portfolio)

	critW := opt.Selection.CriticalWeight
	if critW == 0 {
		// Mirrors router.newDriver's zero-value derivation so the report
		// records the threshold the runs actually used.
		critW = 2 * opt.WeightBase
	}
	rep := selReportJSON{
		Date:             time.Now().Format("2006-01-02"),
		Go:               runtime.Version(),
		CPUs:             runtime.GOMAXPROCS(0),
		Workers:          resolvedWorkers(opt),
		Chip:             spec.Name,
		Scale:            scale,
		Nets:             len(chip.NL.Nets),
		Waves:            opt.Waves,
		CriticalWeight:   critW,
		TightBudgetRatio: opt.Selection.TightBudgetRatio,
		PortfolioPool:    pool,
		PureCD:           toSelRun(pure, "CD"),
		Auto:             toSelRun(auto, "auto"),
		Portfolio:        toSelRun(port, "portfolio"),
		CDSolveReduction: 100 * (1 - float64(auto.SolvesByOracle["cd"])/
			float64(pure.SolvesByOracle["cd"])),
		AutoObjectiveDelta:    100 * (auto.Objective - pure.Objective) / pure.Objective,
		PortfolioObjDelta:     100 * (port.Objective - pure.Objective) / pure.Objective,
		AutoWalltimeSpeedup:   float64(pure.Walltime) / float64(auto.Walltime),
		PortfolioWalltimeSlow: float64(port.Walltime) / float64(pure.Walltime),
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("auto: CD solves -%.1f%%  objective %+.2f%%  speedup %.2fx\nportfolio: objective %+.2f%%  slowdown %.2fx\n",
		rep.CDSolveReduction, rep.AutoObjectiveDelta, rep.AutoWalltimeSpeedup,
		rep.PortfolioObjDelta, rep.PortfolioWalltimeSlow)
}

// ecoReportJSON is the BENCH_warmstart.json schema: the base (cold,
// unperturbed) run that produced the checkpoint, then the cold, the
// repair-less warm-started and (with -repairtol ≥ 0) the repair-enabled
// warm-started run on the identical perturbed chip. WarmPerturbed is
// the headline warm run — repair-enabled when the rung is on, otherwise
// the plain warm run (and WarmNoRepair is absent).
type ecoReportJSON struct {
	Date          string   `json:"date"`
	Go            string   `json:"go"`
	CPUs          int      `json:"cpus"`
	Workers       int      `json:"workers"`
	Chip          string   `json:"chip"`
	Scale         float64  `json:"scale"`
	Nets          int      `json:"nets"`
	Waves         int      `json:"waves"`
	PerturbFrac   float64  `json:"perturb_frac"`
	PerturbedNets int      `json:"perturbed_nets"`
	CheckpointKB  int64    `json:"checkpoint_kb"`
	Base          runJSON  `json:"base"`
	ColdPerturbed runJSON  `json:"cold_perturbed"`
	WarmNoRepair  *runJSON `json:"warm_norepair,omitempty"`
	WarmPerturbed runJSON  `json:"warm_perturbed"`
	// WarmSolveFraction is warm full solves / cold solves on the
	// perturbed chip; WarmNetFraction is warm full solves /
	// (nets × waves).
	WarmSolveFraction float64 `json:"warm_solve_fraction_pct"`
	WarmNetFraction   float64 `json:"warm_net_fraction_pct"`
	// ObjectiveDelta is (warm − cold)/cold on the perturbed chip, in
	// percent; negative means the warm start ends better.
	ObjectiveDelta  float64 `json:"objective_delta_pct"`
	WalltimeSpeedup float64 `json:"walltime_speedup"`
	// The repair rung's contribution to the headline warm run:
	// RepairFraction is the share of its dirty nets the rung absorbed,
	// EscalationRate the share of repair attempts that fell through, and
	// FullSolveReduction the drop in full oracle solves vs the
	// repair-less warm run. All absent when the rung is disabled.
	RepairTol          float64 `json:"repair_tol,omitempty"`
	RepairFraction     float64 `json:"repair_fraction_pct,omitempty"`
	EscalationRate     float64 `json:"repair_escalation_rate_pct,omitempty"`
	FullSolveReduction float64 `json:"repair_full_solve_reduction_pct,omitempty"`
}

// runECO benchmarks warm-start rerouting: checkpoint a cold route, then
// reroute an ECO-perturbed copy of the chip cold, warm without the
// repair rung, and (with repairTol ≥ 0) warm with it enabled.
func runECO(chip *costdist.Chip, spec *costdist.ChipSpec, scale, frac float64, seed uint64, repairTol, minRepairFrac float64, opt costdist.RouterOptions, out, traceFile string, prof *cliutil.Profiles) {
	fmt.Fprintf(os.Stderr, "incbench: eco on %s scale %g — %d nets, %d waves, perturb %g\n",
		spec.Name, scale, len(chip.NL.Nets), opt.Waves, frac)
	// Fresh recorder per leg, as in the default mode.
	opt.Recorder = costdist.NewRecorder()
	base, st, err := costdist.RouteChipCheckpoint(chip, costdist.CD, opt)
	if err != nil {
		fatal(err)
	}
	blob, err := costdist.MarshalCheckpoint(st)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: base done in %s — checkpoint %d KB\n",
		base.Metrics.Walltime.Round(time.Millisecond), len(blob)>>10)

	pert, changed, err := costdist.PerturbChip(chip, frac, seed)
	if err != nil {
		fatal(err)
	}
	opt.Recorder = costdist.NewRecorder()
	cold, err := costdist.RouteChip(pert, costdist.CD, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: cold reroute done in %s\n", cold.Metrics.Walltime.Round(time.Millisecond))
	// Warm-start from the wire form — the path the service takes — so
	// the benchmark covers the codec too. Each warm leg gets a fresh
	// unmarshal: RouteChipFrom consumes its state.
	st2, err := costdist.UnmarshalCheckpoint(blob)
	if err != nil {
		fatal(err)
	}
	warmRec := costdist.NewRecorder()
	opt.Recorder = warmRec
	warm, _, err := costdist.RouteChipFrom(st2, pert, costdist.CD, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: warm reroute done in %s\n", warm.Metrics.Walltime.Round(time.Millisecond))
	var warmNR *costdist.RouteResult
	if repairTol >= 0 {
		warmNR = warm
		optR := opt
		optR.RepairTol = repairTol
		st3, err := costdist.UnmarshalCheckpoint(blob)
		if err != nil {
			fatal(err)
		}
		warmRec = costdist.NewRecorder()
		optR.Recorder = warmRec
		warm, _, err = costdist.RouteChipFrom(st3, pert, costdist.CD, optR)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "incbench: warm+repair reroute done in %s — %d repaired, %d escalated\n",
			warm.Metrics.Walltime.Round(time.Millisecond),
			warm.Metrics.NetsRepaired, warm.Metrics.RepairEscalated)
	}

	rep := ecoReportJSON{
		Date:          time.Now().Format("2006-01-02"),
		Go:            runtime.Version(),
		CPUs:          runtime.GOMAXPROCS(0),
		Workers:       resolvedWorkers(opt),
		Chip:          spec.Name,
		Scale:         scale,
		Nets:          len(chip.NL.Nets),
		Waves:         opt.Waves,
		PerturbFrac:   frac,
		PerturbedNets: changed,
		CheckpointKB:  int64(len(blob)) >> 10,
		Base:          toRun(base.Metrics, false),
		ColdPerturbed: toRun(cold.Metrics, false),
		WarmPerturbed: toRun(warm.Metrics, true),
		WarmSolveFraction: 100 * float64(warm.Metrics.NetsSolved) /
			float64(cold.Metrics.NetsSolved),
		WarmNetFraction: 100 * float64(warm.Metrics.NetsSolved) /
			float64(int64(len(chip.NL.Nets))*int64(opt.Waves)),
		ObjectiveDelta: 100 * (warm.Metrics.Objective - cold.Metrics.Objective) /
			cold.Metrics.Objective,
		WalltimeSpeedup: float64(cold.Metrics.Walltime) / float64(warm.Metrics.Walltime),
	}
	if warmNR != nil {
		nr := toRun(warmNR.Metrics, true)
		rep.WarmNoRepair = &nr
		rep.RepairTol = repairTol
		rep.RepairFraction = 100 * repairFraction(warm.Metrics)
		rep.EscalationRate = 100 * escalationRate(warm.Metrics)
		if warmNR.Metrics.NetsSolved > 0 {
			rep.FullSolveReduction = 100 * (1 - float64(warm.Metrics.NetsSolved)/
				float64(warmNR.Metrics.NetsSolved))
		}
	}
	blobOut, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blobOut = append(blobOut, '\n')
	if err := os.WriteFile(out, blobOut, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("eco: %d/%d nets perturbed  warm solves %.1f%% of cold (%.1f%% of net-waves)  objective %+.2f%%  speedup %.2fx\n",
		changed, len(chip.NL.Nets), rep.WarmSolveFraction, rep.WarmNetFraction,
		rep.ObjectiveDelta, rep.WalltimeSpeedup)
	printStageTable("cold", cold.Metrics)
	printStageTable("warm", warm.Metrics)
	if traceFile != "" {
		writeTrace(traceFile, warmRec)
	}
	if warmNR != nil {
		fmt.Printf("eco repair: %.1f%% of dirty nets repaired (%.1f%% escalated)  full solves -%.1f%% vs repair-less warm\n",
			rep.RepairFraction, rep.EscalationRate, rep.FullSolveReduction)
		checkRepairFrac(warm.Metrics, minRepairFrac, prof)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "incbench:", err)
	os.Exit(1)
}
