// Command incbench measures the incremental routing engine against the
// full re-solve engine on one chip of the Table III suite and writes the
// comparison as JSON — the generator of BENCH_incremental.json. The
// headline numbers are the oracle-solve reduction after wave 0 and the
// final-objective delta between the two engines.
//
// Usage:
//
//	incbench -chip c1 -scale 0.25 [-waves 4] [-workers 0] [-out BENCH_incremental.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"costdist"
)

type runJSON struct {
	Incremental      bool    `json:"incremental"`
	WS               float64 `json:"ws_ps"`
	TNS              float64 `json:"tns_ps"`
	ACE4             float64 `json:"ace4_pct"`
	WLm              float64 `json:"wirelength_m"`
	Vias             int64   `json:"vias"`
	Overflow         float64 `json:"overflow"`
	Objective        float64 `json:"objective"`
	NetsSolved       int64   `json:"nets_solved"`
	NetsSkipped      int64   `json:"nets_skipped"`
	SolvedPerWave    []int   `json:"solved_per_wave"`
	SkippedPerWave   []int   `json:"skipped_per_wave"`
	DeltaSegsPerWave []int   `json:"delta_segs_per_wave"`
	WalltimeMS       int64   `json:"walltime_ms"`
}

type reportJSON struct {
	Date            string  `json:"date"`
	Go              string  `json:"go"`
	CPUs            int     `json:"cpus"`
	Chip            string  `json:"chip"`
	Scale           float64 `json:"scale"`
	Nets            int     `json:"nets"`
	Waves           int     `json:"waves"`
	IncrementalTol  float64 `json:"incremental_tol"`
	Full            runJSON `json:"full"`
	Incremental     runJSON `json:"incremental"`
	SolveReduction  float64 `json:"solve_reduction_after_wave0_pct"`
	ObjectiveDelta  float64 `json:"objective_delta_pct"`
	WalltimeSpeedup float64 `json:"walltime_speedup"`
}

func toRun(m costdist.RouteMetrics, incremental bool) runJSON {
	return runJSON{
		Incremental: incremental,
		WS:          m.WS, TNS: m.TNS, ACE4: m.ACE4, WLm: m.WLm,
		Vias: m.Vias, Overflow: m.Overflow, Objective: m.Objective,
		NetsSolved: m.NetsSolved, NetsSkipped: m.NetsSkipped,
		SolvedPerWave: m.SolvedPerWave, SkippedPerWave: m.SkippedPerWave,
		DeltaSegsPerWave: m.DeltaSegsPerWave,
		WalltimeMS:       m.Walltime.Milliseconds(),
	}
}

func main() {
	chipName := flag.String("chip", "c1", "chip name c1..c8")
	scale := flag.Float64("scale", 0.25, "net count scale vs the paper")
	waves := flag.Int("waves", 0, "rip-up-and-reroute waves (0 = router default)")
	workers := flag.Int("workers", 0, "routing workers (0 = all cores)")
	out := flag.String("out", "BENCH_incremental.json", "output file")
	flag.Parse()

	specs := costdist.ChipSuite(*scale)
	var spec *costdist.ChipSpec
	for i := range specs {
		if specs[i].Name == *chipName {
			spec = &specs[i]
		}
	}
	if spec == nil {
		fatal(fmt.Errorf("unknown chip %q", *chipName))
	}
	chip, err := costdist.GenerateChip(*spec)
	if err != nil {
		fatal(err)
	}
	opt := costdist.DefaultRouterOptions()
	opt.Threads = *workers
	if *waves > 0 {
		opt.Waves = *waves
	}

	fmt.Fprintf(os.Stderr, "incbench: %s scale %g — %d nets, %d waves\n",
		spec.Name, *scale, spec.NNets, opt.Waves)
	full, err := costdist.RouteChip(chip, costdist.CD, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: full done in %s\n", full.Metrics.Walltime.Round(time.Millisecond))
	opt.Incremental = true
	inc, err := costdist.RouteChip(chip, costdist.CD, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incbench: incremental done in %s\n", inc.Metrics.Walltime.Round(time.Millisecond))

	fullAfter0, incAfter0 := 0, 0
	for w := 1; w < opt.Waves; w++ {
		fullAfter0 += full.Metrics.SolvedPerWave[w]
		incAfter0 += inc.Metrics.SolvedPerWave[w]
	}
	solveReduction := 0.0 // a single wave has no post-wave-0 work to save
	if fullAfter0 > 0 {
		solveReduction = 100 * (1 - float64(incAfter0)/float64(fullAfter0))
	}
	rep := reportJSON{
		Date:           time.Now().Format("2006-01-02"),
		Go:             runtime.Version(),
		CPUs:           runtime.NumCPU(),
		Chip:           spec.Name,
		Scale:          *scale,
		Nets:           len(chip.NL.Nets),
		Waves:          opt.Waves,
		IncrementalTol: opt.IncrementalTol,
		Full:           toRun(full.Metrics, false),
		Incremental:    toRun(inc.Metrics, true),
		SolveReduction: solveReduction,
		ObjectiveDelta: 100 * (inc.Metrics.Objective - full.Metrics.Objective) /
			full.Metrics.Objective,
		WalltimeSpeedup: float64(full.Metrics.Walltime) / float64(inc.Metrics.Walltime),
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("solve reduction after wave 0: %.1f%%  objective delta: %+.2f%%  speedup: %.2fx\n",
		rep.SolveReduction, rep.ObjectiveDelta, rep.WalltimeSpeedup)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "incbench:", err)
	os.Exit(1)
}
