// Command figures regenerates the paper's figures as SVG files:
//
//	figures -dir out/
//
// writes fig1-pd.svg and fig1-cd.svg (bifurcations on a critical path,
// paper Figure 1), fig2.svg (repeater chain / λ split, Figure 2) and
// fig3-iter*.svg (the course of the algorithm on 5 sinks, Figure 3).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"costdist/internal/tables"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	eta := flag.Float64("eta", 0.25, "penalty share η for figure 2")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	pdSVG, cdSVG, pdBifs, cdBifs, err := tables.Figure1()
	if err != nil {
		fatal(err)
	}
	write("fig1-pd.svg", pdSVG)
	write("fig1-cd.svg", cdSVG)
	fmt.Printf("figure 1: bifurcations on the critical path: PD=%d, CD=%d\n", pdBifs, cdBifs)

	write("fig2.svg", tables.Figure2(*eta))

	frames, events, err := tables.Figure3()
	if err != nil {
		fatal(err)
	}
	for i, f := range frames {
		write(fmt.Sprintf("fig3-iter%d.svg", i), f)
	}
	fmt.Printf("figure 3: %d iterations, final merge to root: %v\n", len(events), events[len(events)-1].ToRoot)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
