// Command exactbench measures the goal-oriented exact solver
// (SolveExactGoal) against the Dreyfus–Wagner DP (SolveExact) — the
// generator of BENCH_exact.json. Two scenarios:
//
//   - Head-to-head: seeded instances both solvers can finish. Each run
//     cross-checks the certified lower bounds and records the speedup
//     of the goal solver (including its CD warm-up, which seeds the
//     incumbent upper bound — that is the production pipeline).
//
//   - Beyond-DP: a larger instance the DP cannot certify inside
//     -dp-timeout. The goal solver certifies it first; the DP then gets
//     its timeout on a watchdog goroutine (the DP has no cancellation
//     hook — the abandoned attempt is left to the process exit). A
//     window past the DP's state-space guard (64M states) is rejected
//     before the watchdog even starts; the report records the reason.
//
// Usage:
//
//	exactbench [-seeds 5] [-head-nx 128 -head-spread 10 -head-sinks 8] \
//	           [-beyond-nx 80 -beyond-spread 8 -beyond-sinks 12] \
//	           [-dp-timeout 60s] [-out BENCH_exact.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"costdist"
)

// genInstance mirrors the differential harness' generator — a seeded
// random instance with priced congestion patches over an nx×nx×3 grid —
// with one twist: terminals land inside a random spread×spread patch
// while the routing window stays the full grid. That is the shape of a
// real global-routing net (net bbox ≪ chip window), and the shape the
// two solvers diverge on: the DP pays for every window vertex, the goal
// search prunes to the terminal bbox plus its slack radius.
func genInstance(seed uint64, nx, spread int32, sinks int, dbif float64) *costdist.Instance {
	rng := rand.New(rand.NewPCG(seed, 0xD1FF))
	tech := costdist.DefaultTech(3)
	g := costdist.NewGrid(nx, nx, costdist.BuildLayers(tech), tech.GCellUM)
	c := costdist.NewCosts(g)
	for i := range c.Mult {
		if rng.IntN(4) == 0 {
			c.Mult[i] = 1 + 3*rng.Float32()
		}
	}
	if spread <= 0 || spread > nx {
		spread = nx
	}
	x0, y0 := rng.Int32N(nx-spread+1), rng.Int32N(nx-spread+1)
	at := func() costdist.Vertex {
		return g.At(x0+rng.Int32N(spread), y0+rng.Int32N(spread), 0)
	}
	in := &costdist.Instance{
		G: g, C: c,
		Root: at(),
		DBif: dbif, Eta: 0.25, Seed: seed,
		Win: g.FullWindow(),
	}
	used := map[costdist.Vertex]bool{in.Root: true}
	for len(in.Sinks) < sinks {
		v := at()
		if used[v] {
			continue
		}
		used[v] = true
		w := 0.001 + 0.009*rng.Float64()
		if rng.IntN(4) == 0 {
			w = 0.02 + 0.03*rng.Float64()
		}
		in.Sinks = append(in.Sinks, costdist.Sink{V: v, W: w})
	}
	return in
}

// solveGoalSeeded runs the production exact pipeline: CD heuristic for
// the incumbent upper bound, then the goal-oriented search.
func solveGoalSeeded(in *costdist.Instance) (*costdist.ExactResult, error) {
	cd, err := costdist.SolveCD(in, costdist.DefaultCDOptions())
	if err != nil {
		return nil, fmt.Errorf("cd warm-up: %w", err)
	}
	ev, err := costdist.Evaluate(in, cd)
	if err != nil {
		return nil, fmt.Errorf("cd evaluate: %w", err)
	}
	lim := costdist.DefaultExactGoalLimits()
	lim.UpperBound = ev.Total
	return costdist.SolveExactGoalLimits(context.Background(), in, lim)
}

type headRunJSON struct {
	Seed        uint64  `json:"seed"`
	LowerBound  float64 `json:"lower_bound"`
	DPMS        float64 `json:"dp_ms"`
	GoalMS      float64 `json:"goal_ms"`
	GoalSettled int64   `json:"goal_settled_labels"`
	Speedup     float64 `json:"speedup"`
}

type headJSON struct {
	NX             int32         `json:"nx"`
	Spread         int32         `json:"spread"`
	Sinks          int           `json:"sinks"`
	Runs           []headRunJSON `json:"runs"`
	GeomeanSpeedup float64       `json:"geomean_speedup"`
}

type beyondJSON struct {
	NX          int32   `json:"nx"`
	Spread      int32   `json:"spread"`
	Sinks       int     `json:"sinks"`
	Seed        uint64  `json:"seed"`
	DPTimeoutS  float64 `json:"dp_timeout_s"`
	DPFinished  bool    `json:"dp_finished"`
	DPError     string  `json:"dp_error,omitempty"`
	DPMS        float64 `json:"dp_ms,omitempty"`
	GoalMS      float64 `json:"goal_ms"`
	GoalSettled int64   `json:"goal_settled_labels"`
	LowerBound  float64 `json:"lower_bound"`
	CDGapPct    float64 `json:"cd_gap_pct"`
}

type reportJSON struct {
	Date       string     `json:"date"`
	Go         string     `json:"go"`
	CPUs       int        `json:"cpus"`
	HeadToHead headJSON   `json:"head_to_head"`
	BeyondDP   beyondJSON `json:"beyond_dp"`
}

func main() {
	seeds := flag.Int("seeds", 5, "head-to-head instances")
	headNX := flag.Int("head-nx", 128, "head-to-head grid side")
	headSpread := flag.Int("head-spread", 10, "head-to-head terminal patch side (0 = whole grid)")
	headSinks := flag.Int("head-sinks", 8, "head-to-head sink count")
	beyondNX := flag.Int("beyond-nx", 80, "beyond-DP grid side")
	beyondSpread := flag.Int("beyond-spread", 8, "beyond-DP terminal patch side (0 = whole grid)")
	beyondSinks := flag.Int("beyond-sinks", 12, "beyond-DP sink count")
	beyondSeed := flag.Uint64("beyond-seed", 1, "beyond-DP instance seed")
	dpTimeout := flag.Duration("dp-timeout", 60*time.Second, "DP watchdog on the beyond-DP instance")
	out := flag.String("out", "BENCH_exact.json", "output file")
	flag.Parse()

	rep := reportJSON{
		Date: time.Now().Format("2006-01-02"),
		Go:   runtime.Version(),
		CPUs: runtime.GOMAXPROCS(0),
	}

	// Head-to-head.
	rep.HeadToHead = headJSON{NX: int32(*headNX), Spread: int32(*headSpread), Sinks: *headSinks}
	logSpeedup := 0.0
	for seed := uint64(1); seed <= uint64(*seeds); seed++ {
		in := genInstance(seed, int32(*headNX), int32(*headSpread), *headSinks, 20*float64(seed%2))

		t0 := time.Now()
		dp, err := costdist.SolveExact(in)
		if err != nil {
			fatal(fmt.Errorf("seed %d: dp: %w", seed, err))
		}
		dpMS := float64(time.Since(t0).Microseconds()) / 1e3

		t0 = time.Now()
		goal, err := solveGoalSeeded(in)
		if err != nil {
			fatal(fmt.Errorf("seed %d: goal: %w", seed, err))
		}
		goalMS := float64(time.Since(t0).Microseconds()) / 1e3

		if math.Abs(goal.LowerBound-dp.LowerBound) > 1e-7*(1+math.Abs(dp.LowerBound)) {
			fatal(fmt.Errorf("seed %d: certified bounds diverge: goal %v, dp %v",
				seed, goal.LowerBound, dp.LowerBound))
		}
		speedup := dpMS / goalMS
		logSpeedup += math.Log(speedup)
		rep.HeadToHead.Runs = append(rep.HeadToHead.Runs, headRunJSON{
			Seed: seed, LowerBound: goal.LowerBound,
			DPMS: dpMS, GoalMS: goalMS,
			GoalSettled: goal.Goal.Settled, Speedup: speedup,
		})
		fmt.Printf("head seed %d: LB %.4f  dp %.1fms  goal %.1fms  speedup %.1fx\n",
			seed, goal.LowerBound, dpMS, goalMS, speedup)
	}
	rep.HeadToHead.GeomeanSpeedup = math.Exp(logSpeedup / float64(len(rep.HeadToHead.Runs)))
	fmt.Printf("head-to-head geomean speedup: %.1fx over %d instances\n",
		rep.HeadToHead.GeomeanSpeedup, len(rep.HeadToHead.Runs))

	// Beyond-DP: goal first (the DP watchdog leaves its goroutine
	// burning a core after the timeout).
	bin := genInstance(*beyondSeed, int32(*beyondNX), int32(*beyondSpread), *beyondSinks, 0)
	cd, err := costdist.SolveCD(bin, costdist.DefaultCDOptions())
	if err != nil {
		fatal(err)
	}
	cdEv, err := costdist.Evaluate(bin, cd)
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	goal, err := solveGoalSeeded(bin)
	if err != nil {
		fatal(fmt.Errorf("beyond-dp goal: %w", err))
	}
	goalMS := float64(time.Since(t0).Microseconds()) / 1e3
	rep.BeyondDP = beyondJSON{
		NX: int32(*beyondNX), Spread: int32(*beyondSpread), Sinks: *beyondSinks, Seed: *beyondSeed,
		DPTimeoutS: dpTimeout.Seconds(),
		GoalMS:     goalMS, GoalSettled: goal.Goal.Settled,
		LowerBound: goal.LowerBound,
		CDGapPct:   100 * (cdEv.Total - goal.LowerBound) / goal.LowerBound,
	}
	fmt.Printf("beyond-dp: goal certified %d sinks in %.1fms (LB %.4f, CD gap %.2f%%)\n",
		*beyondSinks, goalMS, goal.LowerBound, rep.BeyondDP.CDGapPct)

	type dpOutcome struct {
		ms  float64
		err error
	}
	done := make(chan dpOutcome, 1)
	go func() {
		t0 := time.Now()
		_, err := costdist.SolveExact(bin)
		done <- dpOutcome{float64(time.Since(t0).Microseconds()) / 1e3, err}
	}()
	select {
	case o := <-done:
		switch {
		case o.err != nil:
			rep.BeyondDP.DPError = o.err.Error()
			fmt.Printf("beyond-dp: DP rejected the instance: %v\n", o.err)
		default:
			rep.BeyondDP.DPFinished = true
			rep.BeyondDP.DPMS = o.ms
			fmt.Printf("beyond-dp: DP finished in %.1fms — raise -beyond-nx/-beyond-sinks\n", o.ms)
		}
	case <-time.After(*dpTimeout):
		fmt.Printf("beyond-dp: DP did not finish within %v\n", *dpTimeout)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exactbench:", err)
	os.Exit(1)
}
