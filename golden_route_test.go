package costdist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"
)

// goldenRoutes locks the cold routing path bit-for-bit: the sha256 of
// MarshalRouteResult for a matrix of (method, incremental) runs on a
// fixed small chip, captured before the RouterState refactor. Any
// change to these digests means the refactor altered routing results —
// the cold path must stay bit-identical to the pre-refactor engine.
//
// Regenerate (only when a deliberate behavior change is shipped) with:
//
//	GOLDEN_UPDATE=1 go test -run TestColdPathGolden .
const goldenRoutesFile = "testdata/golden_routes.json"

type goldenEntry struct {
	Method      string `json:"method"`
	Incremental bool   `json:"incremental"`
	SHA256      string `json:"sha256"`
}

func goldenConfigs() []struct {
	m   Method
	inc bool
} {
	return []struct {
		m   Method
		inc bool
	}{
		{CD, false},
		{CD, true},
		{Auto, false},
		{Portfolio, true},
	}
}

func computeGolden(t *testing.T) []goldenEntry {
	t.Helper()
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	var out []goldenEntry
	for _, cfg := range goldenConfigs() {
		opt := DefaultRouterOptions()
		opt.Waves = 3
		opt.Threads = 2
		opt.Incremental = cfg.inc
		res, err := RouteChip(chip, cfg.m, opt)
		if err != nil {
			t.Fatalf("%v incremental=%v: %v", cfg.m, cfg.inc, err)
		}
		blob, err := MarshalRouteResult(chip, res)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(blob)
		out = append(out, goldenEntry{
			Method:      cfg.m.Name(),
			Incremental: cfg.inc,
			SHA256:      hex.EncodeToString(sum[:]),
		})
	}
	return out
}

func TestColdPathGolden(t *testing.T) {
	got := computeGolden(t)
	if os.Getenv("GOLDEN_UPDATE") != "" {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRoutesFile, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenRoutesFile)
		return
	}
	blob, err := os.ReadFile(goldenRoutesFile)
	if err != nil {
		t.Fatalf("reading golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d entries, want %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g != w {
			t.Errorf("cold path changed for method=%s incremental=%v:\n  golden %s\n  got    %s",
				w.Method, w.Incremental, w.SHA256, g.SHA256)
		}
	}
}
