package heaps

import "math"

// dialRing is the number of direct-mapped buckets. Keys within
// dialRing×width of the queue's base land in a bucket; keys further out
// go to an overflow slice that is redistributed when the ring drains.
// Dijkstra frontiers under the routing metric span only a few arc costs,
// so with width ≈ one arc the ring absorbs essentially every push.
const dialRing = 512

type dialItem[T any] struct {
	key float64
	val T
}

// Dial is a monotone bucket ("dial") queue: a calendar of dialRing
// buckets of width `width`, plus an overflow area for keys beyond the
// calendar and an underflow area for keys below it (both rare). Pop
// returns an entry with the exact minimum key — the current bucket is
// scanned, not approximated — so Dial is a drop-in replacement for a
// binary heap in Dijkstra-style searches whose keys cluster within a
// bounded range of the minimum: pushes and pops become O(1) amortized
// instead of O(log n).
//
// Grid searches under uniform costs produce huge classes of bitwise-
// equal keys (every frontier vertex at the same Manhattan distance), so
// a naive scan-per-pop degenerates to O(class size) per pop. The scan
// therefore partitions every entry holding the bucket's minimum key to
// the bucket tail in one pass; while that min-run lasts, pops take the
// tail entry in O(1) — popping any member of an equal-key class is still
// an exact-minimum pop. The bucket is rescanned only when the run is
// exhausted, i.e. once per distinct key value, not once per entry.
//
// All scan and partition orders are deterministic functions of the
// push/pop history, which the bit-reproducible solver relies on. The
// tie order among equal keys is the Dial's own — it differs from a
// binary heap's, so a solver that swaps its heap for a Dial keeps
// determinism but may pick different (equally optimal) entries on ties.
//
// The zero value is not ready: call Reset(width) first.
type Dial[T any] struct {
	width   float64
	inv     float64
	base    int64 // bucket id of buckets[0]
	cur     int   // first possibly non-empty ring slot
	hi      int   // highest ring slot touched since Reset
	n       int
	started bool

	buckets [][]dialItem[T]
	under   []dialItem[T] // keys below base×width (after a late low push)
	over    []dialItem[T] // keys beyond the ring

	// Cached minimum location; minValid=false forces a rescan. With
	// minWhere==0 the min-run invariant holds: the last minRun entries
	// of buckets[minSlot] all carry minKey, and minIdx is the tail.
	minValid bool
	minWhere int8 // 0 = ring, 1 = under, 2 = over
	minSlot  int
	minIdx   int
	minRun   int
	minKey   float64
}

// Reset empties the queue, retaining capacity, and sets the bucket
// width. Keys must be non-negative; the width only affects speed (how
// keys spread over buckets), never which entry Pop returns.
func (d *Dial[T]) Reset(width float64) {
	if !(width > 0) || math.IsInf(width, 1) {
		width = 1
	}
	d.width = width
	d.inv = 1 / width
	if d.buckets != nil {
		for i := d.cur; i <= d.hi; i++ {
			d.buckets[i] = d.buckets[i][:0]
		}
	}
	d.under = d.under[:0]
	d.over = d.over[:0]
	d.n = 0
	d.cur, d.hi = 0, 0
	d.started = false
	d.minValid = false
}

// Clear empties the queue, retaining capacity and the current width.
func (d *Dial[T]) Clear() { d.Reset(d.width) }

// Len returns the number of stored entries.
func (d *Dial[T]) Len() int { return d.n }

// Push inserts value v with the given key.
func (d *Dial[T]) Push(key float64, v T) {
	if d.buckets == nil {
		d.buckets = make([][]dialItem[T], dialRing)
	}
	id := int64(key * d.inv)
	if !d.started {
		d.base = id
		d.cur, d.hi = 0, 0
		d.started = true
	}
	it := dialItem[T]{key: key, val: v}
	slot := int(id - d.base)
	switch {
	case slot < 0:
		if d.minValid && key < d.minKey {
			d.minWhere, d.minIdx, d.minKey = 1, len(d.under), key
		}
		d.under = append(d.under, it)
	case slot >= dialRing:
		if d.minValid && key < d.minKey {
			d.minWhere, d.minIdx, d.minKey = 2, len(d.over), key
		}
		d.over = append(d.over, it)
	default:
		b := append(d.buckets[slot], it)
		if d.minValid {
			switch {
			case key < d.minKey:
				// New strict minimum: a fresh run of one at the tail.
				d.minWhere, d.minSlot, d.minKey = 0, slot, key
				d.minIdx, d.minRun = len(b)-1, 1
			case d.minWhere == 0 && slot == d.minSlot:
				if key == d.minKey {
					// Equal keys share a bucket, so the append extends
					// the tail run.
					d.minIdx, d.minRun = len(b)-1, d.minRun+1
				} else {
					// A larger key landed behind the run: swap it with
					// the run's head so the run stays at the tail.
					j := len(b) - 1 - d.minRun
					b[j], b[len(b)-1] = b[len(b)-1], b[j]
					d.minIdx = len(b) - 1
				}
			}
		}
		d.buckets[slot] = b
		if slot < d.cur {
			d.cur = slot
		}
		if slot > d.hi {
			d.hi = slot
		}
	}
	d.n++
}

// MinKey returns the smallest key. It panics if the queue is empty;
// guard with Len.
func (d *Dial[T]) MinKey() float64 {
	d.ensureMin()
	return d.minKey
}

// Peek returns the entry Pop would remove, without removing it. It
// panics if the queue is empty; guard with Len.
func (d *Dial[T]) Peek() (float64, T) {
	d.ensureMin()
	switch d.minWhere {
	case 1:
		return d.minKey, d.under[d.minIdx].val
	case 2:
		return d.minKey, d.over[d.minIdx].val
	}
	return d.minKey, d.buckets[d.minSlot][d.minIdx].val
}

// Pop removes and returns an entry with the smallest key. Among equal
// keys the choice is deterministic. It panics if the queue is empty;
// guard with Len.
func (d *Dial[T]) Pop() (float64, T) {
	d.ensureMin()
	var it dialItem[T]
	switch d.minWhere {
	case 1:
		last := len(d.under) - 1
		it = d.under[d.minIdx]
		d.under[d.minIdx] = d.under[last]
		d.under = d.under[:last]
		d.minValid = false
	case 2:
		last := len(d.over) - 1
		it = d.over[d.minIdx]
		d.over[d.minIdx] = d.over[last]
		d.over = d.over[:last]
		d.minValid = false
	default:
		// The min-run sits at the bucket tail; take the tail and keep
		// the cache alive while the run lasts.
		b := d.buckets[d.minSlot]
		last := len(b) - 1
		it = b[last]
		d.buckets[d.minSlot] = b[:last]
		if d.minRun > 1 {
			d.minRun--
			d.minIdx = last - 1
		} else {
			d.minValid = false
		}
	}
	d.n--
	return it.key, it.val
}

// ensureMin locates the minimum entry. Underflow keys are strictly below
// every ring key and ring keys strictly below every overflow key (the
// bucket id is monotone in the key, so the regions partition the key
// axis), so the first non-empty region in under → ring → over order
// holds the minimum.
func (d *Dial[T]) ensureMin() {
	if d.minValid {
		return
	}
	if d.n == 0 {
		panic("heaps: Dial is empty")
	}
	if len(d.under) > 0 {
		best := 0
		for i := 1; i < len(d.under); i++ {
			if d.under[i].key < d.under[best].key {
				best = i
			}
		}
		d.minWhere, d.minIdx, d.minKey = 1, best, d.under[best].key
		d.minValid = true
		return
	}
	for {
		for d.cur < dialRing && len(d.buckets[d.cur]) == 0 {
			d.cur++
		}
		if d.cur < dialRing {
			b := d.buckets[d.cur]
			minKey := b[0].key
			for i := 1; i < len(b); i++ {
				if b[i].key < minKey {
					minKey = b[i].key
				}
			}
			// Partition every minimum-key entry to the tail: pops then
			// drain the run in O(1) each, and the bucket is rescanned
			// once per distinct key value instead of once per entry.
			i, j := 0, len(b)-1
			for i < j {
				if b[i].key != minKey {
					i++
					continue
				}
				if b[j].key == minKey {
					j--
					continue
				}
				b[i], b[j] = b[j], b[i]
				i++
				j--
			}
			run := 0
			for k := len(b) - 1; k >= 0 && b[k].key == minKey; k-- {
				run++
			}
			d.minWhere, d.minSlot, d.minKey = 0, d.cur, minKey
			d.minIdx, d.minRun = len(b)-1, run
			d.minValid = true
			return
		}
		// Ring drained: rebase the calendar onto the overflow area.
		d.rebase()
	}
}

// rebase advances the calendar to the smallest overflow bucket and moves
// every overflow item within ring reach into its bucket. Each item moves
// O(1) times per Reset epoch (the base only grows), keeping pushes and
// pops amortized O(1).
func (d *Dial[T]) rebase() {
	minID := int64(math.MaxInt64)
	for i := range d.over {
		if id := int64(d.over[i].key * d.inv); id < minID {
			minID = id
		}
	}
	d.base = minID
	d.cur, d.hi = 0, 0
	rest := d.over[:0]
	for _, it := range d.over {
		slot := int(int64(it.key*d.inv) - d.base)
		if slot < dialRing {
			d.buckets[slot] = append(d.buckets[slot], it)
			if slot > d.hi {
				d.hi = slot
			}
		} else {
			rest = append(rest, it)
		}
	}
	d.over = rest
}
