package heaps

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// TestDialSortedDrain pushes shuffled keys and checks a full drain comes
// out sorted with every key intact.
func TestDialSortedDrain(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, width := range []float64{0.1, 1, 3.7, 100} {
		var d Dial[int]
		d.Reset(width)
		want := make([]float64, 0, 500)
		for i := 0; i < 500; i++ {
			k := rng.Float64() * 200
			d.Push(k, i)
			want = append(want, k)
		}
		sort.Float64s(want)
		for i, w := range want {
			if d.Len() != len(want)-i {
				t.Fatalf("width %v: Len=%d want %d", width, d.Len(), len(want)-i)
			}
			if mk := d.MinKey(); mk != w {
				t.Fatalf("width %v pop %d: MinKey=%v want %v", width, i, mk, w)
			}
			k, _ := d.Pop()
			if k != w {
				t.Fatalf("width %v pop %d: key=%v want %v", width, i, k, w)
			}
		}
		if d.Len() != 0 {
			t.Fatalf("width %v: residue %d", width, d.Len())
		}
	}
}

// TestDialVsLazy drives a Dial and a Lazy with an identical random
// push/pop interleaving — the Dijkstra access pattern, monotone-ish keys
// with occasional low re-pushes — and checks every popped key matches.
// Values may differ on exact key ties (the structures order ties
// differently); keys may not.
func TestDialVsLazy(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 50; trial++ {
		var d Dial[int]
		var l Lazy[int]
		d.Reset(1 + rng.Float64()*5)
		floor := 0.0
		for op := 0; op < 2000; op++ {
			if d.Len() != l.Len() {
				t.Fatalf("trial %d op %d: Len %d vs %d", trial, op, d.Len(), l.Len())
			}
			if d.Len() == 0 || rng.Float64() < 0.6 {
				// Dijkstra-style: keys mostly a bit above the current
				// minimum, sometimes far above (via/congested arcs),
				// rarely slightly below (corrected re-push).
				k := floor + rng.Float64()*50
				if rng.Float64() < 0.05 {
					k = floor + rng.Float64()*5000 // deep overflow
				}
				if rng.Float64() < 0.05 && floor > 1 {
					k = floor - rng.Float64() // underflow after pops
				}
				if k < 0 {
					k = 0
				}
				d.Push(k, op)
				l.Push(k, op)
				continue
			}
			dk, _ := d.Pop()
			lk, _ := l.Pop()
			if dk != lk {
				t.Fatalf("trial %d op %d: popped %v vs lazy %v", trial, op, dk, lk)
			}
			if dk > floor {
				floor = dk
			}
		}
	}
}

// TestDialRebase forces the ring to drain into a far overflow region and
// checks the calendar rebases without losing order.
func TestDialRebase(t *testing.T) {
	var d Dial[int]
	d.Reset(1)
	// One item in the ring, many far beyond it.
	d.Push(3, 0)
	want := []float64{3}
	for i := 0; i < 100; i++ {
		k := float64(10*dialRing + i%7)
		d.Push(k, i)
		want = append(want, k)
	}
	sort.Float64s(want)
	for i, w := range want {
		k, _ := d.Pop()
		if k != w {
			t.Fatalf("pop %d: key=%v want %v", i, k, w)
		}
	}
}

// TestDialReuse checks Reset fully clears state for arena-style reuse,
// including after a rebase moved the calendar far from zero.
func TestDialReuse(t *testing.T) {
	var d Dial[int]
	d.Reset(2)
	for i := 0; i < 64; i++ {
		d.Push(float64(i*100), i)
	}
	for d.Len() > 0 {
		d.Pop()
	}
	d.Reset(0.5)
	d.Push(1.25, 1)
	d.Push(0.25, 2)
	if k, v := d.Pop(); k != 0.25 || v != 2 {
		t.Fatalf("after reuse: got (%v,%d)", k, v)
	}
	if k, v := d.Pop(); k != 1.25 || v != 1 {
		t.Fatalf("after reuse: got (%v,%d)", k, v)
	}
	if d.Len() != 0 {
		t.Fatalf("residue after reuse")
	}
}

// TestDialTieDeterminism re-runs an identical tie-heavy sequence and
// checks pops return identical values, not just identical keys.
func TestDialTieDeterminism(t *testing.T) {
	run := func() []int {
		var d Dial[int]
		d.Reset(1)
		out := []int{}
		for i := 0; i < 200; i++ {
			d.Push(float64(i%3), i)
			if i%4 == 3 {
				_, v := d.Pop()
				out = append(out, v)
			}
		}
		for d.Len() > 0 {
			_, v := d.Pop()
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tie order not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
