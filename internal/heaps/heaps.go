// Package heaps provides the priority queues used by the path searches:
//
//   - Lazy[T]: a plain binary min-heap with lazy deletion semantics. Each
//     per-sink Dijkstra search owns one (the paper uses binary heaps because
//     global routing graphs have m ∈ O(n), §III-B).
//   - Indexed: a binary min-heap over a fixed slot universe with
//     decrease/increase-key, used as the top level of the two-level heap
//     structure from §III-B: it stores the minimum key of every sink heap
//     so the globally minimal tentative label can be popped.
package heaps

// Lazy is a binary min-heap of (key, value) pairs. Duplicate values with
// stale keys are allowed; callers detect staleness when popping (lazy
// deletion), which is faster in practice than decrease-key for Dijkstra.
// The zero value is ready to use.
type Lazy[T any] struct {
	keys []float64
	vals []T
}

// Len returns the number of stored entries (including stale duplicates).
func (h *Lazy[T]) Len() int { return len(h.keys) }

// Reset empties the heap, retaining capacity.
func (h *Lazy[T]) Reset() {
	h.keys = h.keys[:0]
	h.vals = h.vals[:0]
}

// Push inserts value v with the given key.
func (h *Lazy[T]) Push(key float64, v T) {
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	h.up(len(h.keys) - 1)
}

// MinKey returns the smallest key. It panics if the heap is empty; guard
// with Len.
func (h *Lazy[T]) MinKey() float64 { return h.keys[0] }

// Peek returns the minimum entry without removing it. It panics if the
// heap is empty; guard with Len.
func (h *Lazy[T]) Peek() (key float64, v T) { return h.keys[0], h.vals[0] }

// Pop removes and returns the entry with the smallest key.
func (h *Lazy[T]) Pop() (key float64, v T) {
	key, v = h.keys[0], h.vals[0]
	n := len(h.keys) - 1
	h.keys[0], h.vals[0] = h.keys[n], h.vals[n]
	h.keys = h.keys[:n]
	h.vals = h.vals[:n]
	if n > 0 {
		h.down(0)
	}
	return key, v
}

func (h *Lazy[T]) up(i int) {
	k, v := h.keys[i], h.vals[i]
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] <= k {
			break
		}
		h.keys[i], h.vals[i] = h.keys[p], h.vals[p]
		i = p
	}
	h.keys[i], h.vals[i] = k, v
}

func (h *Lazy[T]) down(i int) {
	n := len(h.keys)
	k, v := h.keys[i], h.vals[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.keys[c+1] < h.keys[c] {
			c++
		}
		if h.keys[c] >= k {
			break
		}
		h.keys[i], h.vals[i] = h.keys[c], h.vals[c]
		i = c
	}
	h.keys[i], h.vals[i] = k, v
}

// LabelQueue is the priority queue of the goal-oriented exact solver
// (internal/exact): a binary min-heap of (key, label-id) pairs with a
// deterministic tie-break on the label id. Lazy[T] pops equal keys in
// an order that depends on the interleaving of pushes and pops; the
// exact tier promises bit-identical trees across runs, so ties must
// resolve by something stable — the label id, which is a creation
// sequence number. Lower ids (earlier labels) win ties.
// The zero value is ready to use.
type LabelQueue struct {
	keys []float64
	ids  []int32
}

// Len returns the number of stored entries.
func (h *LabelQueue) Len() int { return len(h.keys) }

// Reset empties the queue, retaining capacity.
func (h *LabelQueue) Reset() {
	h.keys = h.keys[:0]
	h.ids = h.ids[:0]
}

// Push inserts label id with the given key.
func (h *LabelQueue) Push(key float64, id int32) {
	h.keys = append(h.keys, key)
	h.ids = append(h.ids, id)
	h.lqUp(len(h.keys) - 1)
}

// Pop removes and returns the entry with the smallest (key, id) pair.
func (h *LabelQueue) Pop() (key float64, id int32) {
	key, id = h.keys[0], h.ids[0]
	n := len(h.keys) - 1
	h.keys[0], h.ids[0] = h.keys[n], h.ids[n]
	h.keys = h.keys[:n]
	h.ids = h.ids[:n]
	if n > 0 {
		h.lqDown(0)
	}
	return key, id
}

// lqLess orders entries by key, then by id (deterministic ties).
func (h *LabelQueue) lqLess(ka float64, ia int32, kb float64, ib int32) bool {
	if ka != kb {
		return ka < kb
	}
	return ia < ib
}

func (h *LabelQueue) lqUp(i int) {
	k, id := h.keys[i], h.ids[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.lqLess(k, id, h.keys[p], h.ids[p]) {
			break
		}
		h.keys[i], h.ids[i] = h.keys[p], h.ids[p]
		i = p
	}
	h.keys[i], h.ids[i] = k, id
}

func (h *LabelQueue) lqDown(i int) {
	n := len(h.keys)
	k, id := h.keys[i], h.ids[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.lqLess(h.keys[c+1], h.ids[c+1], h.keys[c], h.ids[c]) {
			c++
		}
		if !h.lqLess(h.keys[c], h.ids[c], k, id) {
			break
		}
		h.keys[i], h.ids[i] = h.keys[c], h.ids[c]
		i = c
	}
	h.keys[i], h.ids[i] = k, id
}

// Inf is the key used by Indexed for inactive slots.
const Inf = 1e300

// Indexed is a binary min-heap over a fixed universe of integer slots.
// Every slot always has a key (Inf when inactive); Set changes a slot's
// key in O(log n). It backs the top level of the two-level heap: slot =
// component id, key = minimum label of that component's search heap.
type Indexed struct {
	key  []float64
	heap []int32 // heap of slots
	pos  []int32 // slot -> index in heap, -1 if absent
}

// NewIndexed returns an Indexed heap with n slots, all at key Inf.
func NewIndexed(n int) *Indexed {
	h := &Indexed{
		key:  make([]float64, n),
		heap: make([]int32, n),
		pos:  make([]int32, n),
	}
	for i := 0; i < n; i++ {
		h.key[i] = Inf
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

// Reset reinitializes the heap to n slots, all at key Inf, retaining
// the backing storage of previous, larger universes. It lets one Indexed
// heap be recycled across solver calls (core.Scratch).
func (h *Indexed) Reset(n int) {
	// The three backing slices grow through independent appends, so
	// their capacities may differ; check each.
	if cap(h.key) < n {
		h.key = make([]float64, n)
	} else {
		h.key = h.key[:n]
	}
	if cap(h.heap) < n {
		h.heap = make([]int32, n)
	} else {
		h.heap = h.heap[:n]
	}
	if cap(h.pos) < n {
		h.pos = make([]int32, n)
	} else {
		h.pos = h.pos[:n]
	}
	for i := 0; i < n; i++ {
		h.key[i] = Inf
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
}

// Grow adds k new slots at key Inf.
func (h *Indexed) Grow(k int) {
	for i := 0; i < k; i++ {
		slot := int32(len(h.key))
		h.key = append(h.key, Inf)
		h.pos = append(h.pos, int32(len(h.heap)))
		h.heap = append(h.heap, slot)
		h.up(len(h.heap) - 1)
	}
}

// Len returns the number of slots.
func (h *Indexed) Len() int { return len(h.key) }

// Key returns the current key of slot s.
func (h *Indexed) Key(s int32) float64 { return h.key[s] }

// Set assigns key k to slot s, restoring heap order.
func (h *Indexed) Set(s int32, k float64) {
	old := h.key[s]
	h.key[s] = k
	i := int(h.pos[s])
	switch {
	case k < old:
		h.up(i)
	case k > old:
		h.down(i)
	}
}

// Min returns the slot with the smallest key and that key. When all slots
// are inactive the returned key is Inf.
func (h *Indexed) Min() (slot int32, key float64) {
	if len(h.heap) == 0 {
		return -1, Inf
	}
	s := h.heap[0]
	return s, h.key[s]
}

func (h *Indexed) up(i int) {
	s := h.heap[i]
	k := h.key[s]
	for i > 0 {
		p := (i - 1) / 2
		ps := h.heap[p]
		if h.key[ps] <= k {
			break
		}
		h.heap[i] = ps
		h.pos[ps] = int32(i)
		i = p
	}
	h.heap[i] = s
	h.pos[s] = int32(i)
}

func (h *Indexed) down(i int) {
	n := len(h.heap)
	s := h.heap[i]
	k := h.key[s]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.key[h.heap[c+1]] < h.key[h.heap[c]] {
			c++
		}
		cs := h.heap[c]
		if h.key[cs] >= k {
			break
		}
		h.heap[i] = cs
		h.pos[cs] = int32(i)
		i = c
	}
	h.heap[i] = s
	h.pos[s] = int32(i)
}
