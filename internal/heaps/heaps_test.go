package heaps

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestLazyPopSorted(t *testing.T) {
	f := func(keys []float64) bool {
		var h Lazy[int]
		for i, k := range keys {
			h.Push(k, i)
		}
		prev := math.Inf(-1)
		for h.Len() > 0 {
			k, _ := h.Pop()
			if k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLazyValuesPreserved(t *testing.T) {
	var h Lazy[string]
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	if h.MinKey() != 1 {
		t.Fatalf("MinKey = %v", h.MinKey())
	}
	var out []string
	for h.Len() > 0 {
		_, v := h.Pop()
		out = append(out, v)
	}
	if out[0] != "a" || out[1] != "b" || out[2] != "c" {
		t.Fatalf("pop order %v", out)
	}
}

func TestLazyReset(t *testing.T) {
	var h Lazy[int]
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(5, 5)
	if k, v := h.Pop(); k != 5 || v != 5 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestIndexedBasics(t *testing.T) {
	h := NewIndexed(4)
	if s, k := h.Min(); s < 0 || k != Inf {
		t.Fatalf("initial Min = %d,%v", s, k)
	}
	h.Set(2, 5.0)
	h.Set(0, 7.0)
	h.Set(3, 1.0)
	if s, k := h.Min(); s != 3 || k != 1.0 {
		t.Fatalf("Min = %d,%v want 3,1", s, k)
	}
	h.Set(3, 9.0) // increase-key
	if s, k := h.Min(); s != 2 || k != 5.0 {
		t.Fatalf("Min after increase = %d,%v want 2,5", s, k)
	}
	h.Set(0, 0.5) // decrease-key
	if s, _ := h.Min(); s != 0 {
		t.Fatalf("Min after decrease = %d want 0", s)
	}
	if h.Key(3) != 9.0 {
		t.Fatalf("Key(3) = %v", h.Key(3))
	}
}

func TestIndexedGrow(t *testing.T) {
	h := NewIndexed(2)
	h.Set(0, 3)
	h.Grow(2)
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	h.Set(3, 1)
	if s, k := h.Min(); s != 3 || k != 1 {
		t.Fatalf("Min = %d,%v", s, k)
	}
}

// TestIndexedAgainstReference drives random Set operations and verifies
// Min against a linear scan.
func TestIndexedAgainstReference(t *testing.T) {
	const n = 50
	rng := rand.New(rand.NewPCG(11, 13))
	h := NewIndexed(n)
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = Inf
	}
	for it := 0; it < 2000; it++ {
		s := int32(rng.IntN(n))
		k := rng.Float64() * 100
		if rng.IntN(10) == 0 {
			k = Inf // deactivate
		}
		h.Set(s, k)
		ref[s] = k
		// reference min
		bestSlot, bestKey := int32(-1), Inf
		for i, rk := range ref {
			if rk < bestKey {
				bestKey, bestSlot = rk, int32(i)
			}
		}
		gotSlot, gotKey := h.Min()
		if bestSlot == -1 {
			if gotKey != Inf {
				t.Fatalf("it %d: expected Inf min", it)
			}
			continue
		}
		if gotKey != bestKey {
			t.Fatalf("it %d: Min key %v want %v (slot %d vs %d)", it, gotKey, bestKey, gotSlot, bestSlot)
		}
	}
}

// TestTwoLevelPattern exercises the exact two-level usage pattern from the
// cost-distance algorithm: per-search Lazy heaps + Indexed top heap of
// their minima must pop labels in globally sorted order.
func TestTwoLevelPattern(t *testing.T) {
	const searches = 8
	rng := rand.New(rand.NewPCG(3, 5))
	subs := make([]*Lazy[int], searches)
	var all []float64
	top := NewIndexed(searches)
	for i := range subs {
		subs[i] = &Lazy[int]{}
		for j := 0; j < 100; j++ {
			k := rng.Float64() * 1000
			subs[i].Push(k, j)
			all = append(all, k)
		}
		top.Set(int32(i), subs[i].MinKey())
	}
	sort.Float64s(all)
	for idx := 0; idx < len(all); idx++ {
		s, k := top.Min()
		if k != all[idx] {
			t.Fatalf("global pop %d: got %v want %v", idx, k, all[idx])
		}
		subs[s].Pop()
		if subs[s].Len() == 0 {
			top.Set(s, Inf)
		} else {
			top.Set(s, subs[s].MinKey())
		}
	}
	if _, k := top.Min(); k != Inf {
		t.Fatal("heaps should be exhausted")
	}
}

func BenchmarkLazyPushPop(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	var h Lazy[int32]
	for i := 0; i < b.N; i++ {
		h.Push(rng.Float64(), int32(i))
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}

func BenchmarkIndexedSet(b *testing.B) {
	h := NewIndexed(256)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Set(int32(i&255), rng.Float64())
	}
}

func TestIndexedReset(t *testing.T) {
	h := NewIndexed(8)
	for i := int32(0); i < 8; i++ {
		h.Set(i, float64(10-i))
	}
	h.Grow(4)
	h.Set(10, 0.5)

	// Shrink to a smaller universe and check it behaves like a fresh heap.
	h.Reset(3)
	if h.Len() != 3 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	if _, k := h.Min(); k != Inf {
		t.Fatalf("Min after Reset = %v, want Inf", k)
	}
	h.Set(2, 7)
	h.Set(0, 9)
	if s, k := h.Min(); s != 2 || k != 7 {
		t.Fatalf("Min = %d,%v", s, k)
	}
	h.Grow(2)
	h.Set(4, 1)
	if s, k := h.Min(); s != 4 || k != 1 {
		t.Fatalf("Min after Grow = %d,%v", s, k)
	}

	// Reset to a larger universe than ever seen.
	h.Reset(20)
	if h.Len() != 20 {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := int32(0); i < 20; i++ {
		if h.Key(i) != Inf {
			t.Fatalf("slot %d kept key %v across Reset", i, h.Key(i))
		}
	}
	h.Set(19, 2)
	if s, _ := h.Min(); s != 19 {
		t.Fatalf("Min = %d", s)
	}
}

// TestIndexedResetMatchesFresh drives a recycled heap and a fresh heap
// through an identical random schedule and requires identical behavior.
func TestIndexedResetMatchesFresh(t *testing.T) {
	recycled := NewIndexed(1)
	for round := 0; round < 30; round++ {
		rng := rand.New(rand.NewPCG(uint64(round), 99))
		n := 1 + rng.IntN(40)
		recycled.Reset(n)
		fresh := NewIndexed(n)
		for op := 0; op < 200; op++ {
			s := int32(rng.IntN(recycled.Len()))
			k := rng.Float64() * 100
			recycled.Set(s, k)
			fresh.Set(s, k)
			if rng.IntN(20) == 0 {
				recycled.Grow(1)
				fresh.Grow(1)
			}
			rs, rk := recycled.Min()
			fs, fk := fresh.Min()
			if rs != fs || rk != fk {
				t.Fatalf("round %d op %d: recycled Min=%d,%v fresh Min=%d,%v", round, op, rs, rk, fs, fk)
			}
		}
	}
}
