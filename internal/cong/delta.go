package cong

import (
	"math"
	"sort"

	"costdist/internal/geom"
	"costdist/internal/grid"
)

// planeMarks accumulates marked plane gcells and merges them into
// row-run rectangles — the shared machinery behind DeltaTracker.Update
// (multiplier drift regions) and DiffRects (capacity diff regions).
type planeMarks struct {
	g       *grid.Graph
	mark    []bool  // plane gcell scratch bitmap, NX*NY
	touched []int32 // marked plane cell ids, for O(delta) reset
}

func newPlaneMarks(g *grid.Graph) *planeMarks {
	return &planeMarks{g: g, mark: make([]bool, int(g.NX)*int(g.NY))}
}

// markRect marks every gcell of r.
func (p *planeMarks) markRect(r geom.Rect) {
	for y := r.Y0; y <= r.Y1; y++ {
		for x := r.X0; x <= r.X1; x++ {
			c := y*p.g.NX + x
			if !p.mark[c] {
				p.mark[c] = true
				p.touched = append(p.touched, c)
			}
		}
	}
}

// rects merges the marked cells into per-row runs and resets the marks.
// Sorting cell ids orders them row-major, so runs are consecutive ids
// within one row.
func (p *planeMarks) rects() (rects []geom.Rect) {
	if len(p.touched) == 0 {
		return nil
	}
	sort.Slice(p.touched, func(a, b int) bool { return p.touched[a] < p.touched[b] })
	run := geom.Rect{}
	open := false
	flush := func() {
		if open {
			rects = append(rects, run)
			open = false
		}
	}
	for _, c := range p.touched {
		p.mark[c] = false
		x, y := c%p.g.NX, c/p.g.NX
		if open && y == run.Y0 && x == run.X1+1 {
			run.X1 = x
			continue
		}
		flush()
		run = geom.Rect{X0: x, Y0: y, X1: x, Y1: y}
		open = true
	}
	flush()
	p.touched = p.touched[:0]
	return rects
}

// DeltaTracker watches the per-segment congestion multipliers between
// routing waves and reports which plane regions changed, so the
// incremental router can invalidate only the nets whose routing windows
// overlap a price change. Cleanliness is judged against a reference
// snapshot, not against the previous wave: a segment whose multiplier
// drifts slowly still crosses the tolerance eventually, because the
// reference only advances when a change is reported.
type DeltaTracker struct {
	G *grid.Graph
	// Tol is the relative tolerance: segment s counts as changed when
	// |mult[s] − ref[s]| > Tol·ref[s]. Multipliers are clamped to ≥ 1,
	// so the relative test is always well-defined. Tol = 0 reports any
	// bitwise change; Tol < 0 reports every segment every wave (which
	// forces a full re-solve and is how tests pin the no-skip path).
	Tol float64

	ref   []float32 // multiplier snapshot changes are judged against
	marks *planeMarks
}

// NewDeltaTracker returns a tracker whose reference snapshot is the
// pricer's initial state (all multipliers 1).
func NewDeltaTracker(g *grid.Graph, tol float64) *DeltaTracker {
	t := &DeltaTracker{
		G:     g,
		Tol:   tol,
		ref:   make([]float32, g.NumSegs()),
		marks: newPlaneMarks(g),
	}
	for i := range t.ref {
		t.ref[i] = 1
	}
	return t
}

// Ref returns a copy of the reference snapshot — the piece of tracker
// state a router checkpoint serializes so a warm-started run resumes
// drift accounting where the producing run left off.
func (t *DeltaTracker) Ref() []float32 {
	return append([]float32(nil), t.ref...)
}

// SetRef replaces the reference snapshot (warm-start restore). The
// slice is copied; it must have one entry per segment.
func (t *DeltaTracker) SetRef(ref []float32) {
	copy(t.ref, ref)
}

// Update compares mult against the reference snapshot. Segments beyond
// tolerance advance the reference and mark their gcells (all layers
// collapse onto one plane bitmap). It returns the changed plane regions
// as row-merged rectangles plus the number of changed segments — the
// wave's delta volume.
func (t *DeltaTracker) Update(mult []float32) (rects []geom.Rect, changedSegs int) {
	g := t.G
	// Tol < 0 is the forced-dirty mode: every segment counts as changed,
	// equal values included, so the fast path must not skip them.
	fullDirty := t.Tol < 0
	for s := range t.ref {
		// Fast path: an unchanged multiplier has drift exactly 0, which a
		// non-negative tolerance never reports. Typical waves change a few
		// percent of the segments, so this skips almost the whole sweep.
		if !fullDirty && mult[s] == t.ref[s] {
			continue
		}
		d := math.Abs(float64(mult[s]) - float64(t.ref[s]))
		if d > t.Tol*float64(t.ref[s]) {
			t.ref[s] = mult[s]
			changedSegs++
			t.marks.markRect(g.SegRect(int32(s)))
		}
	}
	return t.marks.rects(), changedSegs
}

// DiffRects returns the row-merged plane regions of segments whose
// values differ between a and b — the warm-start engine uses it to
// translate capacity edits between a checkpointed chip and a new chip
// into dirty-net candidate regions. Both slices must have one entry per
// segment of g.
func DiffRects(g *grid.Graph, a, b []float32) []geom.Rect {
	marks := newPlaneMarks(g)
	for s := range a {
		if a[s] != b[s] {
			marks.markRect(g.SegRect(int32(s)))
		}
	}
	return marks.rects()
}
