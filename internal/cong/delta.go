package cong

import (
	"math"
	"sort"

	"costdist/internal/geom"
	"costdist/internal/grid"
)

// DeltaTracker watches the per-segment congestion multipliers between
// routing waves and reports which plane regions changed, so the
// incremental router can invalidate only the nets whose routing windows
// overlap a price change. Cleanliness is judged against a reference
// snapshot, not against the previous wave: a segment whose multiplier
// drifts slowly still crosses the tolerance eventually, because the
// reference only advances when a change is reported.
type DeltaTracker struct {
	G *grid.Graph
	// Tol is the relative tolerance: segment s counts as changed when
	// |mult[s] − ref[s]| > Tol·ref[s]. Multipliers are clamped to ≥ 1,
	// so the relative test is always well-defined. Tol = 0 reports any
	// bitwise change; Tol < 0 reports every segment every wave (which
	// forces a full re-solve and is how tests pin the no-skip path).
	Tol float64

	ref     []float32 // multiplier snapshot changes are judged against
	mark    []bool    // plane gcell scratch bitmap, NX*NY
	touched []int32   // marked plane cell ids, for O(delta) reset
}

// NewDeltaTracker returns a tracker whose reference snapshot is the
// pricer's initial state (all multipliers 1).
func NewDeltaTracker(g *grid.Graph, tol float64) *DeltaTracker {
	t := &DeltaTracker{
		G:    g,
		Tol:  tol,
		ref:  make([]float32, g.NumSegs()),
		mark: make([]bool, int(g.NX)*int(g.NY)),
	}
	for i := range t.ref {
		t.ref[i] = 1
	}
	return t
}

// Update compares mult against the reference snapshot. Segments beyond
// tolerance advance the reference and mark their gcells (all layers
// collapse onto one plane bitmap). It returns the changed plane regions
// as row-merged rectangles plus the number of changed segments — the
// wave's delta volume.
func (t *DeltaTracker) Update(mult []float32) (rects []geom.Rect, changedSegs int) {
	g := t.G
	for s := range t.ref {
		d := math.Abs(float64(mult[s]) - float64(t.ref[s]))
		if d > t.Tol*float64(t.ref[s]) {
			t.ref[s] = mult[s]
			changedSegs++
			r := g.SegRect(int32(s))
			for y := r.Y0; y <= r.Y1; y++ {
				for x := r.X0; x <= r.X1; x++ {
					c := y*g.NX + x
					if !t.mark[c] {
						t.mark[c] = true
						t.touched = append(t.touched, c)
					}
				}
			}
		}
	}
	if len(t.touched) == 0 {
		return nil, changedSegs
	}
	// Merge marked cells into per-row runs. Sorting cell ids orders them
	// row-major, so runs are consecutive ids within one row.
	sort.Slice(t.touched, func(a, b int) bool { return t.touched[a] < t.touched[b] })
	run := geom.Rect{}
	open := false
	flush := func() {
		if open {
			rects = append(rects, run)
			open = false
		}
	}
	for _, c := range t.touched {
		t.mark[c] = false
		x, y := c%g.NX, c/g.NX
		if open && y == run.Y0 && x == run.X1+1 {
			run.X1 = x
			continue
		}
		flush()
		run = geom.Rect{X0: x, Y0: y, X1: x, Y1: y}
		open = true
	}
	flush()
	t.touched = t.touched[:0]
	return rects, changedSegs
}
