// Package cong implements the congestion side of timing-constrained
// global routing: per-segment usage accounting, multiplicative-weight
// congestion pricing in the style of the resource sharing algorithm of
// ref [13], and the ACE routability metric of ref [19] used in the
// paper's Tables IV and V.
package cong

import (
	"math"
	"sort"

	"costdist/internal/geom"
	"costdist/internal/grid"
)

// Usage accumulates capacity consumption per segment.
type Usage struct {
	G *grid.Graph
	U []float32
}

// NewUsage returns zeroed usage for g.
func NewUsage(g *grid.Graph) *Usage {
	return &Usage{G: g, U: make([]float32, g.NumSegs())}
}

// Reset zeroes all usage.
func (u *Usage) Reset() {
	for i := range u.U {
		u.U[i] = 0
	}
}

// AddArc records one arc traversal.
func (u *Usage) AddArc(a grid.Arc) {
	u.U[a.Seg] += u.G.ArcCapUse(a)
}

// AddFrom accumulates other into u.
func (u *Usage) AddFrom(other *Usage) {
	for i, v := range other.U {
		u.U[i] += v
	}
}

// WirelengthM returns the total routed track length in meters (vias
// excluded): capacity units consumed per segment times the gcell pitch,
// so wide wires count their full track usage, as foundry wirelength
// reports do.
func (u *Usage) WirelengthM() float64 {
	total := 0.0
	for s := int32(0); s < u.G.NumRouteSegs(); s++ {
		if u.U[s] > 0 {
			total += float64(u.U[s])
		}
	}
	return total * u.G.LenUM * 1e-6
}

// Pricer maintains per-segment congestion price multipliers using
// multiplicative weights: after each routing wave,
//
//	mult[s] ← mult[s] · exp(alpha · (usage[s]/cap[s] − target))
//
// clamped to [1, maxMult]. Segments above the target utilization get
// exponentially more expensive, which is the Lagrangean congestion price
// of the resource sharing formulation.
type Pricer struct {
	G       *grid.Graph
	Alpha   float64
	Target  float64
	MaxMult float64
	Mult    []float32
}

// NewPricer returns a pricer with all multipliers at 1.
func NewPricer(g *grid.Graph, alpha, target float64) *Pricer {
	p := &Pricer{G: g, Alpha: alpha, Target: target, MaxMult: 64, Mult: make([]float32, g.NumSegs())}
	for i := range p.Mult {
		p.Mult[i] = 1
	}
	return p
}

// Update applies one multiplicative-weights step from the wave's usage.
func (p *Pricer) Update(u *Usage) {
	for s := range p.Mult {
		p.step(s, u.U[s])
	}
}

// step updates one segment's multiplier from its usage. The fast path
// skips the exponential for the dominant case — an unpriced segment
// (mult exactly 1) at or below the target utilization: there
// exp(α·(ratio−target)) ≤ 1, so the update clamps back to exactly 1 and
// the result is bitwise what the slow path computes.
func (p *Pricer) step(s int, use float32) {
	cap := p.G.Cap[s]
	var ratio float64
	if cap <= 0 {
		// Blocked segment: treat any usage as infinite overflow.
		if use > 0 {
			ratio = 4
		}
	} else {
		ratio = float64(use) / float64(cap)
	}
	if p.Mult[s] == 1 && ratio <= p.Target && p.Alpha >= 0 {
		return
	}
	m := float64(p.Mult[s]) * math.Exp(p.Alpha*(ratio-p.Target))
	if m < 1 {
		m = 1
	}
	if m > p.MaxMult {
		m = p.MaxMult
	}
	p.Mult[s] = float32(m)
}

// UpdateTracked applies one multiplicative-weights step and, in the same
// pass over the segments, diffs the new multipliers against the delta
// tracker's reference. The router calls this at the end of each wave so
// the two chip-wide sweeps the incremental engine used to pay per wave —
// Pricer.Update at wave end, then DeltaTracker.Update at the next wave's
// start — collapse into one. Results are bitwise identical to
// p.Update(u) followed by t.Update(p.Mult); t must track the same grid.
func (p *Pricer) UpdateTracked(t *DeltaTracker, u *Usage) (rects []geom.Rect, changedSegs int) {
	fullDirty := t.Tol < 0
	for s := range p.Mult {
		p.step(s, u.U[s])
		m := p.Mult[s]
		if !fullDirty && m == t.ref[s] {
			continue
		}
		d := math.Abs(float64(m) - float64(t.ref[s]))
		if d > t.Tol*float64(t.ref[s]) {
			t.ref[s] = m
			changedSegs++
			t.marks.markRect(p.G.SegRect(int32(s)))
		}
	}
	return t.marks.rects(), changedSegs
}

// Costs returns a grid.Costs view of the current prices.
func (p *Pricer) Costs() *grid.Costs {
	c := grid.NewCosts(p.G)
	c.Mult = p.Mult
	c.MinMult = 1
	return c
}

// ACE returns the Average Congestion of the Edges for each requested
// top-percentile x (in percent): the mean usage/capacity ratio, in
// percent, over the x% most congested routing segments with nonzero
// capacity (ref [19]). Via segments are excluded, matching common
// practice.
func ACE(u *Usage, percents []float64) []float64 {
	g := u.G
	ratios := make([]float64, 0, g.NumRouteSegs())
	for s := int32(0); s < g.NumRouteSegs(); s++ {
		if g.Cap[s] > 0 {
			ratios = append(ratios, float64(u.U[s])/float64(g.Cap[s]))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ratios)))
	out := make([]float64, len(percents))
	for i, pct := range percents {
		k := int(math.Ceil(pct / 100 * float64(len(ratios))))
		if k < 1 {
			k = 1
		}
		if k > len(ratios) {
			k = len(ratios)
		}
		sum := 0.0
		for _, r := range ratios[:k] {
			sum += r
		}
		out[i] = 100 * sum / float64(k)
	}
	return out
}

// ACE4 returns (ACE(0.5)+ACE(1)+ACE(2)+ACE(5))/4, the paper's headline
// congestion metric (§IV-C). Roughly: ≤93% is routable, >90% already
// forces detours in detailed routing.
func ACE4(u *Usage) float64 {
	a := ACE(u, []float64{0.5, 1, 2, 5})
	return (a[0] + a[1] + a[2] + a[3]) / 4
}

// Overflow returns the total capacity overflow Σ max(0, usage-cap) over
// all segments, a secondary congestion indicator used in tests.
func Overflow(u *Usage) float64 {
	total := 0.0
	for s := range u.U {
		if over := float64(u.U[s]) - float64(u.G.Cap[s]); over > 0 {
			total += over
		}
	}
	return total
}
