package cong

import (
	"math"
	"testing"

	"costdist/internal/grid"
)

func testGraph() *grid.Graph {
	layers := []grid.Layer{
		{Name: "M1", Dir: grid.DirH, Wires: []grid.WireType{{Name: "w", CostPerGCell: 1, DelayPerGCell: 10, CapUse: 1}}, SegCap: 4, ViaCap: 8, ViaCost: 0.5, ViaDelay: 1, ViaCapUse: 1},
		{Name: "M2", Dir: grid.DirV, Wires: []grid.WireType{{Name: "w", CostPerGCell: 1, DelayPerGCell: 8, CapUse: 1}}, SegCap: 4},
	}
	return grid.New(4, 4, layers, 50)
}

func arcBetween(g *grid.Graph, u, v grid.V) grid.Arc {
	var out grid.Arc
	found := false
	g.Arcs(u, g.FullWindow(), func(a grid.Arc) bool {
		if a.To == v {
			out = a
			found = true
			return false
		}
		return true
	})
	if !found {
		panic("no arc")
	}
	return out
}

func TestUsageAccounting(t *testing.T) {
	g := testGraph()
	u := NewUsage(g)
	a := arcBetween(g, g.At(0, 0, 0), g.At(1, 0, 0))
	u.AddArc(a)
	u.AddArc(a)
	if u.U[a.Seg] != 2 {
		t.Fatalf("usage = %v", u.U[a.Seg])
	}
	other := NewUsage(g)
	other.AddArc(a)
	u.AddFrom(other)
	if u.U[a.Seg] != 3 {
		t.Fatalf("after AddFrom = %v", u.U[a.Seg])
	}
	u.Reset()
	if u.U[a.Seg] != 0 {
		t.Fatal("Reset failed")
	}
}

func TestWirelengthM(t *testing.T) {
	g := testGraph()
	u := NewUsage(g)
	u.AddArc(arcBetween(g, g.At(0, 0, 0), g.At(1, 0, 0)))
	u.AddArc(arcBetween(g, g.At(1, 0, 0), g.At(2, 0, 0)))
	via := arcBetween(g, g.At(0, 0, 0), g.At(0, 0, 1))
	u.AddArc(via) // vias do not count toward wirelength
	want := 2 * 50.0 * 1e-6
	if got := u.WirelengthM(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("WL = %v want %v", got, want)
	}
}

func TestPricerRaisesCongested(t *testing.T) {
	g := testGraph()
	p := NewPricer(g, 1.0, 0.9)
	u := NewUsage(g)
	hot := arcBetween(g, g.At(0, 0, 0), g.At(1, 0, 0))
	for i := 0; i < 8; i++ { // usage 8 on cap 4 => ratio 2
		u.AddArc(hot)
	}
	p.Update(u)
	if p.Mult[hot.Seg] <= 1 {
		t.Fatalf("hot multiplier = %v", p.Mult[hot.Seg])
	}
	cold := arcBetween(g, g.At(0, 1, 0), g.At(1, 1, 0))
	if p.Mult[cold.Seg] != 1 {
		t.Fatalf("cold multiplier = %v", p.Mult[cold.Seg])
	}
	// Repeated updates saturate at MaxMult.
	for i := 0; i < 100; i++ {
		p.Update(u)
	}
	if float64(p.Mult[hot.Seg]) > p.MaxMult+1e-6 {
		t.Fatalf("multiplier exceeded MaxMult: %v", p.Mult[hot.Seg])
	}
}

func TestPricerCostsView(t *testing.T) {
	g := testGraph()
	p := NewPricer(g, 1.0, 0.5)
	c := p.Costs()
	a := arcBetween(g, g.At(0, 0, 0), g.At(1, 0, 0))
	if c.ArcCost(a) != 1 {
		t.Fatalf("initial cost %v", c.ArcCost(a))
	}
	u := NewUsage(g)
	for i := 0; i < 8; i++ {
		u.AddArc(a)
	}
	p.Update(u)
	c2 := p.Costs()
	if c2.ArcCost(a) <= 1 {
		t.Fatalf("cost after congestion %v", c2.ArcCost(a))
	}
}

func TestACEHandComputed(t *testing.T) {
	g := testGraph()
	u := NewUsage(g)
	// 24 routing segments total (12 per layer on a 4x4 grid). Load one
	// segment at ratio 2.0, three at 1.0, rest 0.
	segs := []grid.Arc{
		arcBetween(g, g.At(0, 0, 0), g.At(1, 0, 0)),
		arcBetween(g, g.At(0, 1, 0), g.At(1, 1, 0)),
		arcBetween(g, g.At(0, 2, 0), g.At(1, 2, 0)),
		arcBetween(g, g.At(0, 3, 0), g.At(1, 3, 0)),
	}
	for i := 0; i < 8; i++ {
		u.AddArc(segs[0])
	}
	for _, a := range segs[1:] {
		for i := 0; i < 4; i++ {
			u.AddArc(a)
		}
	}
	// Sorted ratios: 2.0, 1.0, 1.0, 1.0, 0...  (24 routing segs)
	a := ACE(u, []float64{0.5, 100})
	// top 0.5% of 24 = ceil(0.12) = 1 segment -> 200%
	if math.Abs(a[0]-200) > 1e-9 {
		t.Fatalf("ACE(0.5) = %v want 200", a[0])
	}
	wantAll := 100 * (2.0 + 3*1.0) / 24
	if math.Abs(a[1]-wantAll) > 1e-9 {
		t.Fatalf("ACE(100) = %v want %v", a[1], wantAll)
	}
	ace4 := ACE4(u)
	if ace4 <= 0 || ace4 > 200 {
		t.Fatalf("ACE4 = %v out of range", ace4)
	}
}

func TestACEMonotoneInPercent(t *testing.T) {
	g := testGraph()
	u := NewUsage(g)
	for x := int32(0); x < 3; x++ {
		a := arcBetween(g, g.At(x, 0, 0), g.At(x+1, 0, 0))
		for i := int32(0); i <= x; i++ {
			u.AddArc(a)
		}
	}
	vals := ACE(u, []float64{0.5, 1, 2, 5, 10, 50, 100})
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-9 {
			t.Fatalf("ACE not non-increasing: %v", vals)
		}
	}
}

func TestOverflow(t *testing.T) {
	g := testGraph()
	u := NewUsage(g)
	a := arcBetween(g, g.At(0, 0, 0), g.At(1, 0, 0))
	for i := 0; i < 6; i++ { // cap 4 -> overflow 2
		u.AddArc(a)
	}
	if got := Overflow(u); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Overflow = %v want 2", got)
	}
}
