package cong

import (
	"math"
	"math/rand/v2"
	"testing"
)

// naiveStep is the pre-fast-path pricer formula, kept verbatim as the
// reference the optimized Update must match bitwise.
func naiveStep(p *Pricer, mult []float32, s int, use float32) {
	cap := p.G.Cap[s]
	var ratio float64
	if cap <= 0 {
		if use > 0 {
			ratio = 4
		} else {
			ratio = 0
		}
	} else {
		ratio = float64(use) / float64(cap)
	}
	m := float64(mult[s]) * math.Exp(p.Alpha*(ratio-p.Target))
	if m < 1 {
		m = 1
	}
	if m > p.MaxMult {
		m = p.MaxMult
	}
	mult[s] = float32(m)
}

// randomUsage fills u with a mix of idle, lightly loaded and overloaded
// segments — the fast path must trigger often but not always.
func randomUsage(rng *rand.Rand, u *Usage) {
	for s := range u.U {
		switch rng.IntN(4) {
		case 0:
			u.U[s] = 0
		case 1:
			u.U[s] = float32(rng.Float64()) // well under capacity
		default:
			u.U[s] = float32(rng.Float64() * 8) // around and above capacity
		}
	}
}

// TestPricerFastPathExact pins the fast path's bit-exactness: skipping
// the exponential for unpriced under-target segments must leave every
// multiplier bitwise identical to the plain formula, across waves where
// prices rise, saturate and decay.
func TestPricerFastPathExact(t *testing.T) {
	g := deltaGraph()
	rng := rand.New(rand.NewPCG(7, 11))
	p := NewPricer(g, 0.8, 0.9)
	naive := make([]float32, g.NumSegs())
	for i := range naive {
		naive[i] = 1
	}
	u := NewUsage(g)
	for wave := 0; wave < 12; wave++ {
		randomUsage(rng, u)
		p.Update(u)
		for s := range naive {
			naiveStep(p, naive, s, u.U[s])
		}
		for s := range naive {
			if p.Mult[s] != naive[s] {
				t.Fatalf("wave %d seg %d: fast-path mult %v, naive %v", wave, s, p.Mult[s], naive[s])
			}
		}
	}
}

// TestUpdateTrackedMatchesSequential is the batching equivalence
// property: the fused end-of-wave update (one pass pricing + drift
// tracking) must produce the same multipliers, the same changed-region
// rectangles in the same order, the same changed-segment counts and the
// same advanced reference as the sequential pair Pricer.Update then
// DeltaTracker.Update — per wave, across many waves, for positive, zero
// and negative (forced-dirty) tolerances.
func TestUpdateTrackedMatchesSequential(t *testing.T) {
	for _, tol := range []float64{0.10, 0.0, -1.0} {
		g := deltaGraph()
		rng := rand.New(rand.NewPCG(42, uint64(math.Float64bits(tol))))
		seqP := NewPricer(g, 0.8, 0.9)
		seqT := NewDeltaTracker(g, tol)
		fusedP := NewPricer(g, 0.8, 0.9)
		fusedT := NewDeltaTracker(g, tol)
		u := NewUsage(g)
		for wave := 0; wave < 10; wave++ {
			randomUsage(rng, u)

			seqP.Update(u)
			seqRects, seqSegs := seqT.Update(seqP.Mult)
			fusedRects, fusedSegs := fusedP.UpdateTracked(fusedT, u)

			if fusedSegs != seqSegs {
				t.Fatalf("tol %v wave %d: fused changed %d segs, sequential %d", tol, wave, fusedSegs, seqSegs)
			}
			if len(fusedRects) != len(seqRects) {
				t.Fatalf("tol %v wave %d: fused %d rects, sequential %d", tol, wave, len(fusedRects), len(seqRects))
			}
			for i := range seqRects {
				if fusedRects[i] != seqRects[i] {
					t.Fatalf("tol %v wave %d rect %d: fused %+v, sequential %+v", tol, wave, i, fusedRects[i], seqRects[i])
				}
			}
			for s := range seqP.Mult {
				if fusedP.Mult[s] != seqP.Mult[s] {
					t.Fatalf("tol %v wave %d seg %d: fused mult %v, sequential %v", tol, wave, s, fusedP.Mult[s], seqP.Mult[s])
				}
			}
			seqRef, fusedRef := seqT.Ref(), fusedT.Ref()
			for s := range seqRef {
				if fusedRef[s] != seqRef[s] {
					t.Fatalf("tol %v wave %d seg %d: fused ref %v, sequential %v", tol, wave, s, fusedRef[s], seqRef[s])
				}
			}
		}
	}
}
