package cong

import (
	"testing"

	"costdist/internal/geom"
	"costdist/internal/grid"
)

func deltaGraph() *grid.Graph {
	layers := []grid.Layer{
		{Name: "M1", Dir: grid.DirH, Wires: []grid.WireType{{CostPerGCell: 1, DelayPerGCell: 1, CapUse: 1}}, SegCap: 4, ViaCap: 8, ViaCost: 1, ViaDelay: 1, ViaCapUse: 1},
		{Name: "M2", Dir: grid.DirV, Wires: []grid.WireType{{CostPerGCell: 1, DelayPerGCell: 1, CapUse: 1}}, SegCap: 4},
	}
	return grid.New(8, 8, layers, 50)
}

func TestDeltaTrackerQuiescent(t *testing.T) {
	g := deltaGraph()
	tr := NewDeltaTracker(g, 0.05)
	mult := make([]float32, g.NumSegs())
	for i := range mult {
		mult[i] = 1
	}
	rects, n := tr.Update(mult)
	if len(rects) != 0 || n != 0 {
		t.Fatalf("unchanged multipliers reported %d rects, %d segs", len(rects), n)
	}
}

func TestDeltaTrackerToleranceAndReference(t *testing.T) {
	g := deltaGraph()
	tr := NewDeltaTracker(g, 0.10)
	mult := make([]float32, g.NumSegs())
	for i := range mult {
		mult[i] = 1
	}
	s := g.SegH(0, 3, 2) // cells (2,3)-(3,3)

	// Below tolerance: not reported, reference stays.
	mult[s] = 1.05
	if rects, n := tr.Update(mult); len(rects) != 0 || n != 0 {
		t.Fatalf("sub-tolerance change reported: %v, %d", rects, n)
	}
	// Drift accumulates against the untouched reference: 1 → 1.05 → 1.12
	// is below tolerance per step but beyond it in total.
	mult[s] = 1.12
	rects, n := tr.Update(mult)
	if n != 1 {
		t.Fatalf("accumulated drift not reported: %d segs", n)
	}
	want := geom.Rect{X0: 2, Y0: 3, X1: 3, Y1: 3}
	if len(rects) != 1 || rects[0] != want {
		t.Fatalf("rects %v, want [%+v]", rects, want)
	}
	// Reference advanced to 1.12: the same value is now clean.
	if rects, n := tr.Update(mult); len(rects) != 0 || n != 0 {
		t.Fatalf("repeat of reported value changed again: %v, %d", rects, n)
	}
}

func TestDeltaTrackerRunMerging(t *testing.T) {
	g := deltaGraph()
	tr := NewDeltaTracker(g, 0)
	mult := make([]float32, g.NumSegs())
	for i := range mult {
		mult[i] = 1
	}
	// Three consecutive horizontal segments on row 2 touch cells 1..4 —
	// one run. A via at (6,6) adds an isolated cell.
	for x := int32(1); x <= 3; x++ {
		mult[g.SegH(0, 2, x)] = 2
	}
	mult[g.ViaSeg(0, 6, 6)] = 3
	rects, n := tr.Update(mult)
	if n != 4 {
		t.Fatalf("changed segs %d, want 4", n)
	}
	wantRun := geom.Rect{X0: 1, Y0: 2, X1: 4, Y1: 2}
	wantVia := geom.Rect{X0: 6, Y0: 6, X1: 6, Y1: 6}
	if len(rects) != 2 || rects[0] != wantRun || rects[1] != wantVia {
		t.Fatalf("rects %v, want [%+v %+v]", rects, wantRun, wantVia)
	}
}

func TestDiffRects(t *testing.T) {
	g := deltaGraph()
	a := make([]float32, g.NumSegs())
	b := make([]float32, g.NumSegs())
	for i := range a {
		a[i] = 4
		b[i] = 4
	}
	if rects := DiffRects(g, a, b); rects != nil {
		t.Fatalf("identical vectors diffed: %v", rects)
	}
	// A capacity edit over two adjacent horizontal segments and one
	// isolated via.
	b[g.SegH(0, 5, 2)] = 1
	b[g.SegH(0, 5, 3)] = 1
	b[g.ViaSeg(0, 0, 0)] = 0
	rects := DiffRects(g, a, b)
	wantVia := geom.Rect{X0: 0, Y0: 0, X1: 0, Y1: 0}
	wantRun := geom.Rect{X0: 2, Y0: 5, X1: 4, Y1: 5}
	if len(rects) != 2 || rects[0] != wantVia || rects[1] != wantRun {
		t.Fatalf("rects %v, want [%+v %+v]", rects, wantVia, wantRun)
	}
	// Symmetric: argument order only labels old/new.
	rects2 := DiffRects(g, b, a)
	if len(rects2) != 2 || rects2[0] != wantVia || rects2[1] != wantRun {
		t.Fatalf("reversed diff %v, want [%+v %+v]", rects2, wantVia, wantRun)
	}
}

func TestDeltaTrackerRefRoundTrip(t *testing.T) {
	g := deltaGraph()
	tr := NewDeltaTracker(g, 0.05)
	mult := make([]float32, g.NumSegs())
	for i := range mult {
		mult[i] = 1
	}
	mult[g.SegH(0, 1, 1)] = 2
	tr.Update(mult)
	ref := tr.Ref()
	if ref[g.SegH(0, 1, 1)] != 2 {
		t.Fatalf("reference did not advance: %v", ref[g.SegH(0, 1, 1)])
	}
	// A fresh tracker restored from the snapshot treats the same
	// multipliers as clean — the warm-start restore contract.
	tr2 := NewDeltaTracker(g, 0.05)
	tr2.SetRef(ref)
	if rects, n := tr2.Update(mult); len(rects) != 0 || n != 0 {
		t.Fatalf("restored reference reported changes: %v, %d", rects, n)
	}
}

func TestDeltaTrackerNegativeToleranceForcesAll(t *testing.T) {
	g := deltaGraph()
	tr := NewDeltaTracker(g, -1)
	mult := make([]float32, g.NumSegs())
	for i := range mult {
		mult[i] = 1 // identical to the reference
	}
	_, n := tr.Update(mult)
	if n != int(g.NumSegs()) {
		t.Fatalf("negative tolerance changed %d of %d segs", n, g.NumSegs())
	}
}
