package router

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"costdist/internal/chipgen"
	"costdist/internal/cong"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
	"costdist/internal/obs"
	"costdist/internal/oracle"
	"costdist/internal/reembed"
	"costdist/internal/sta"
)

// runState is the mutable state of one routing run — everything the
// rip-up-and-reroute wave loop reads and writes. It used to live as
// interleaved locals inside Route; hoisting it into a struct is what
// lets Checkpoint() externalize a run and RouteFrom resume one.
type runState struct {
	ctx  context.Context
	chip *chipgen.Chip
	m    Method
	opt  Options
	drv  *driver
	pool *scratchPool

	dbif    float64
	threads int
	lbif    float64

	pricer *cong.Pricer
	// weights, delays and budgets are the per-net, per-sink Lagrangean
	// timing state; trees the current embedded tree of every net.
	weights [][]float64
	delays  [][]float64
	budgets [][]float64
	trees   []*nets.RTree

	allNets []int32
	inc     *incState

	// workerCounts are per-worker oracle invocation counters, indexed
	// like drv.names and summed after the waves — addition commutes, so
	// the totals are independent of how nets land on workers.
	workerCounts [][]int64

	usage *cong.Usage
	res   *Result
	start time.Time

	// rec is the optional telemetry recorder (nil = zero overhead);
	// wkObs are its per-worker span buffers, indexed by worker. Both
	// come from Options.Recorder and never influence routing decisions.
	rec   *obs.Recorder
	wkObs []*obs.Worker

	// warm marks a warm-started run (RouteFrom): its first wave solves
	// only the seeded dirty set, and a wave that solved zero nets skips
	// the Lagrangean updates entirely (quiesce) — no new information
	// was produced, so repricing would only drift the restored state
	// away from the checkpoint it came from. The cold path never
	// quiesces: it stays bit-identical to the pre-State engine.
	warm bool
}

// newRun assembles the cold-start state: fresh multipliers, cached
// trees empty, and the pre-wave timing estimate seeding every sink's
// delay weight and budget.
func newRun(ctx context.Context, chip *chipgen.Chip, m Method, opt Options, pool *scratchPool) (*runState, error) {
	r := &runState{
		ctx: ctx, chip: chip, m: m, opt: opt, pool: pool,
		start: time.Now(),
	}
	g := chip.G
	nl := chip.NL
	r.dbif = opt.DBif
	if r.dbif < 0 {
		r.dbif = chip.DBif
	}
	r.threads = opt.Threads
	if r.threads <= 0 {
		r.threads = runtime.GOMAXPROCS(0)
	}
	pool.grow(r.threads)
	drv, err := newDriver(m, opt)
	if err != nil {
		return nil, err
	}
	r.drv = drv
	r.pricer = cong.NewPricer(g, opt.PriceAlpha, opt.PriceTarget)

	nNets := len(nl.Nets)
	r.weights = make([][]float64, nNets)
	r.delays = make([][]float64, nNets)
	r.budgets = make([][]float64, nNets)
	for ni, n := range nl.Nets {
		r.weights[ni] = make([]float64, len(n.Sinks))
		r.delays[ni] = make([]float64, len(n.Sinks))
		for k := range n.Sinks {
			r.weights[ni][k] = opt.WeightBase
		}
	}
	r.trees = make([]*nets.RTree, nNets)
	r.res = &Result{}

	// lbif converts the delay penalty to length units for the plane
	// topology baselines (fastest delay per gcell).
	costs0 := grid.NewCosts(g)
	if d := costs0.MinDelayPerGCell(); d > 0 {
		r.lbif = r.dbif / d
	}

	// Pre-wave timing: estimate net delays from L1 distances on a
	// mid-stack layer and derive initial delay weights and budgets, so
	// every sink carries its Lagrangean timing price from the first wave
	// (ref [13] prices all timing constraints from the start; a purely
	// reactive update would let delay-oblivious trees poison wave 0).
	{
		mid := g.Layers[len(g.Layers)/2]
		perGC := mid.Wires[0].DelayPerGCell
		est := func(n, k int) float64 {
			net := nl.Nets[n]
			d := geom.L1(nl.Cells[net.Driver].Pos, nl.Cells[net.Sinks[k]].Pos)
			return float64(d)*perGC + 2*mid.ViaDelay
		}
		timing := sta.Analyze(nl, est, chip.ClkPeriod)
		for ni := range nl.Nets {
			r.budgets[ni] = make([]float64, len(nl.Nets[ni].Sinks))
			for k := range nl.Nets[ni].Sinks {
				slack := timing.PinSlack(ni, k)
				w := opt.WeightBase * math.Exp(-slack/opt.WeightTau)
				if w < opt.WeightBase {
					w = opt.WeightBase
				}
				if w > opt.WeightMax {
					w = opt.WeightMax
				}
				r.weights[ni][k] = w
				b := est(ni, k) + slack
				if b < 0 {
					b = 0
				}
				r.budgets[ni][k] = b
			}
		}
	}

	// The full work list; incremental waves replace it with the dirty
	// subset.
	r.allNets = make([]int32, nNets)
	for i := range r.allNets {
		r.allNets[i] = int32(i)
	}
	if opt.Incremental {
		r.inc = newIncState(chip, drv, opt)
	}

	r.workerCounts = make([][]int64, r.threads)
	for i := range r.workerCounts {
		r.workerCounts[i] = make([]int64, len(drv.names))
	}
	if opt.Recorder != nil {
		r.rec = opt.Recorder
		r.wkObs = r.rec.Workers(r.threads)
	}
	return r, nil
}

// runWaves executes opt.Waves rip-up-and-reroute iterations on the
// state: dirty-net scheduling (incremental mode), the parallel per-net
// oracle solves, usage accounting and the Lagrangean price updates.
func (r *runState) runWaves() error {
	ctx, chip, opt, drv := r.ctx, r.chip, r.opt, r.drv
	g := chip.G
	nl := chip.NL
	nNets := len(nl.Nets)
	threads := r.threads
	rec := r.rec

	for wave := 0; wave < opt.Waves; wave++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		waveT0 := rec.Now()
		costs := r.pricer.Costs()
		capture := wave == opt.CaptureWave

		work := r.allNets
		deltaSegs := 0
		if r.inc != nil {
			// Dirty-net scheduling: invalidate nets whose cached tree got
			// repriced or whose timing inputs drifted. Wave 0 marks every
			// net dirty (nothing has been solved yet); a warm-started run
			// instead seeds wave 0 with the instance diff.
			dirtyT0 := rec.Now()
			work, deltaSegs = r.inc.computeDirty(costs, r.trees, r.weights, r.budgets)
			rec.Span(obs.StageDirty, int32(wave), -1, "", dirtyT0)
		}
		nWork := len(work)

		workerUsage := make([]*cong.Usage, threads)
		workerErr := make([]error, threads)
		captured := make([][]*nets.Instance, threads)
		// Per-worker repair tallies: workers write disjoint indices and
		// integer addition commutes, so the wave totals are independent
		// of how nets land on workers.
		workerRepaired := make([]int, threads)
		workerEscalated := make([]int, threads)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			if r.inc == nil {
				workerUsage[w] = cong.NewUsage(g)
			}
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				// The telemetry sink: nil unless a recorder is attached,
				// so the unrecorded hot path pays one pointer check per
				// guarded site. The reembed scratch's sink is re-pointed
				// every wave (and cleared on unrecorded runs — pools
				// persist across runs, so a stale sink must not leak).
				var wk *obs.Worker
				if rec != nil {
					wk = r.wkObs[worker]
					wk.Wave = int32(wave)
				}
				r.pool.re[worker].Obs = wk
				// Each worker solves through its own arena; results are
				// unchanged (solves are per-instance deterministic) while
				// per-net solver allocations disappear. Any caller-provided
				// scratch is overridden — sharing one across workers would
				// race.
				wopt := opt
				wopt.CoreOpt.Scratch = r.pool.scr[worker]
				// Ctx lets the exact tier abandon a label search mid-solve
				// on cancellation, tightening the kill latency below one
				// full exact solve.
				env := oracle.Env{Core: wopt.CoreOpt, PDAlpha: opt.PDAlpha, SLEps: opt.SLEps, LBif: r.lbif, Ctx: ctx, Rec: wk}
				for {
					// The cancellation point of the hot loop: one check per
					// net claim, so a kill takes effect within one solve.
					if ctx.Err() != nil {
						return
					}
					idx := int(next.Add(1)) - 1
					if idx >= nWork {
						return
					}
					ni := int(work[idx])
					in := buildInstance(chip, ni, r.weights[ni], costs, r.dbif, opt)
					in.Budgets = r.budgets[ni]
					if r.inc != nil && r.inc.repair[ni] {
						// The middle rung: re-embed the cached topology
						// under the current prices. Adopted repairs skip
						// the oracle (and the capture hook — they are not
						// fresh solves); failures fall through to one.
						var repT0 int64
						if wk != nil {
							repT0 = wk.Now()
						}
						if r.tryRepair(ni, worker, in) {
							if wk != nil {
								wk.Span(obs.StageRepair, int32(ni), "adopted", repT0)
							}
							workerRepaired[worker]++
							continue
						}
						if wk != nil {
							wk.Span(obs.StageRepair, int32(ni), "escalated", repT0)
						}
						workerEscalated[worker]++
					}
					var solveT0 int64
					if wk != nil {
						solveT0 = wk.Now()
					}
					tr, oi, ev, err := drv.solve(in, &env, r.workerCounts[worker])
					if wk != nil {
						name := ""
						if oi >= 0 && oi < len(drv.names) {
							name = drv.names[oi]
						}
						wk.Span(obs.StageSolve, int32(ni), name, solveT0)
					}
					if err != nil {
						if workerErr[worker] == nil {
							workerErr[worker] = fmt.Errorf("net %d: %w", ni, err)
						}
						continue
					}
					if ev == nil {
						ev, err = nets.Evaluate(in, tr)
						if err != nil {
							if workerErr[worker] == nil {
								workerErr[worker] = fmt.Errorf("net %d eval: %w", ni, err)
							}
							continue
						}
					}
					r.trees[ni] = tr
					copy(r.delays[ni], ev.SinkDelay)
					if r.inc == nil {
						for _, st := range tr.Steps {
							workerUsage[worker].AddArc(st.Arc)
						}
					} else {
						// Snapshot the inputs this solve consumed, the new
						// tree's cost and region, and which oracle produced
						// it; workers touch disjoint nets, so this is
						// race-free.
						r.inc.noteFullSolve(ni, r.weights[ni], r.budgets[ni], tr, ev.CongCost, oi)
					}
					if capture && len(in.Sinks) >= 1 {
						captured[worker] = append(captured[worker], snapshot(in))
					}
				}
			}(w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, err := range workerErr {
			if err != nil {
				return err
			}
		}
		replayT0 := rec.Now()
		if r.inc == nil {
			r.usage = cong.NewUsage(g)
			for _, wu := range workerUsage {
				r.usage.AddFrom(wu)
			}
		} else {
			// Skipped nets keep their cached tree but still occupy their
			// tracks: rebuild usage from every tree, cached or fresh, in
			// net order — deterministic regardless of worker count or of
			// which nets were skipped. The scheduler's flat step caches
			// replay each tree without re-deriving per-arc capacities.
			r.usage = cong.NewUsage(g)
			r.inc.replayUsage(r.usage, r.trees)
		}
		rec.Span(obs.StageReplay, int32(wave), -1, "", replayT0)
		nRepaired, nEscalated := 0, 0
		for w := 0; w < threads; w++ {
			nRepaired += workerRepaired[w]
			nEscalated += workerEscalated[w]
		}
		r.res.Metrics.NetsSolved += int64(nWork - nRepaired)
		r.res.Metrics.NetsSkipped += int64(nNets - nWork)
		r.res.Metrics.NetsRepaired += int64(nRepaired)
		r.res.Metrics.RepairEscalated += int64(nEscalated)
		r.res.Metrics.SolvedPerWave = append(r.res.Metrics.SolvedPerWave, nWork-nRepaired)
		r.res.Metrics.SkippedPerWave = append(r.res.Metrics.SkippedPerWave, nNets-nWork)
		r.res.Metrics.DeltaSegsPerWave = append(r.res.Metrics.DeltaSegsPerWave, deltaSegs)
		if r.inc != nil && r.inc.repairOn {
			r.res.Metrics.RepairedPerWave = append(r.res.Metrics.RepairedPerWave, nRepaired)
			r.res.Metrics.EscalatedPerWave = append(r.res.Metrics.EscalatedPerWave, nEscalated)
		}
		if capture {
			for _, cs := range captured {
				r.res.Captured = append(r.res.Captured, cs...)
			}
		}

		// A quiesced warm wave: nothing was re-solved, so the solution
		// and its prices are mutually converged at tolerance — skip the
		// Lagrangean updates rather than drift the restored equilibrium.
		// This is what makes a zero-perturbation warm start reproduce
		// the checkpointed objective exactly. Cold waves always update.
		if !(r.warm && nWork == 0) {
			// Lagrangean updates: congestion prices, delay weights and the
			// globally optimized per-sink delay budgets (routed delay plus
			// the slack the endpoint can still afford) consumed by the
			// shallow-light baseline, per ref [13]. When another incremental
			// wave follows, the price update and the delta tracker's drift
			// sweep fuse into one pass and the result is stashed for that
			// wave's computeDirty; the last wave prices plainly, leaving the
			// tracker exactly as the unfused engine would.
			priceT0 := rec.Now()
			if r.inc != nil && wave+1 < opt.Waves {
				rects, segs := r.pricer.UpdateTracked(r.inc.tracker, r.usage)
				r.inc.stashDelta(rects, segs)
			} else {
				r.pricer.Update(r.usage)
			}
			timing := sta.Analyze(nl, func(n, k int) float64 { return r.delays[n][k] }, chip.ClkPeriod)
			for ni := range nl.Nets {
				if r.budgets[ni] == nil {
					r.budgets[ni] = make([]float64, len(nl.Nets[ni].Sinks))
				}
				for k := range nl.Nets[ni].Sinks {
					slack := timing.PinSlack(ni, k)
					w := r.weights[ni][k] * math.Exp(-slack/opt.WeightTau)
					if w < opt.WeightBase {
						w = opt.WeightBase
					}
					if w > opt.WeightMax {
						w = opt.WeightMax
					}
					r.weights[ni][k] = w
					b := r.delays[ni][k] + slack
					if b < 0 {
						b = 0
					}
					r.budgets[ni][k] = b
				}
			}
			rec.Span(obs.StagePrice, int32(wave), -1, "", priceT0)
		}

		// The wave barrier's telemetry snapshot: merge the worker span
		// buffers (deterministic worker order), score the solution under
		// the wave's final prices and weights — on the last wave this is
		// exactly what finish() reports — and fire the streaming
		// callback. Quiesced warm waves snapshot too (≥ 1 event per
		// wave), they just score unchanged state.
		if rec != nil {
			rec.Span(obs.StageWave, int32(wave), -1, "", waveT0)
			rec.EndWave(obs.WaveSnapshot{
				Wave:      wave,
				Objective: r.objective(r.pricer.Costs()),
				Overflow:  cong.Overflow(r.usage),
				Solved:    nWork - nRepaired,
				Skipped:   nNets - nWork,
				Repaired:  nRepaired,
				Escalated: nEscalated,
			})
		}
	}
	return nil
}

// tryRepair runs the repair rung on one dirty net: re-embed its cached
// topology under the wave's prices (internal/reembed) and adopt the
// result unless the escalation rule fires. It returns whether the
// repair was adopted; false sends the net to a full oracle solve. The
// decision is a pure function of (instance, cached tree, snapshots), so
// results stay independent of worker count and scheduling.
func (r *runState) tryRepair(ni, worker int, in *nets.Instance) bool {
	out, err := reembed.Repair(in, r.trees[ni], r.pool.re[worker])
	if err != nil {
		// Unrepairable (table cap, malformed cache): escalate.
		return false
	}
	// Escalation rule 1: even the repaired embedding drifted beyond
	// RepairTol relative to the last FULL solve's priced cost. fullCost
	// is deliberately not rebaselined by adopted repairs, so a net that
	// keeps degrading in small steps cannot dodge the oracle forever.
	if out.Eval.CongCost > (1+r.opt.RepairTol)*r.inc.fullCost[ni] {
		return false
	}
	// Escalation rule 2: a delay budget is violated and the net's oracle
	// actually consumes budgets — the repair cannot re-plan the topology
	// the way a budget-aware solve would.
	if r.drv.usesBudgets(int(r.inc.lastOracle[ni])) {
		for k, d := range out.Eval.SinkDelay {
			if d > r.budgets[ni][k] {
				return false
			}
		}
	}
	r.trees[ni] = out.Tree
	copy(r.delays[ni], out.Eval.SinkDelay)
	// Plain noteSolved: lastCost rebaselines (drift churn stops) but
	// fullCost keeps pointing at the last real solve; the cached tree's
	// oracle provenance is preserved.
	r.inc.noteSolved(ni, r.weights[ni], r.budgets[ni], out.Tree, out.Eval.CongCost, int(r.inc.lastOracle[ni]))
	return true
}

// buildInstance assembles the cost-distance subproblem for one net under
// the current prices and weights.
func buildInstance(chip *chipgen.Chip, ni int, w []float64, costs *grid.Costs, dbif float64, opt Options) *nets.Instance {
	n := chip.NL.Nets[ni]
	in := &nets.Instance{
		G: chip.G, C: costs,
		Root: chip.PinVertex(n.Driver),
		DBif: dbif, Eta: opt.Eta,
		Seed: opt.Seed*0x9E3779B9 + uint64(ni),
	}
	for k, s := range n.Sinks {
		in.Sinks = append(in.Sinks, nets.Sink{V: chip.PinVertex(s), W: w[k]})
	}
	in.Win = in.DefaultWindow(opt.Margin)
	return in
}

// snapshot deep-copies an instance so it stays valid after the pricer
// mutates the shared multipliers (Tables I/II instance capture).
func snapshot(in *nets.Instance) *nets.Instance {
	c := *in.C
	c.Mult = append([]float32{}, in.C.Mult...)
	out := *in
	out.C = &c
	out.Sinks = append([]nets.Sink{}, in.Sinks...)
	return &out
}
