package router

import (
	"testing"

	"costdist/internal/chipgen"
	"costdist/internal/nets"
)

func tinyChip(t *testing.T, idx int, scale float64) *chipgen.Chip {
	t.Helper()
	spec := chipgen.Suite(scale)[idx]
	chip, err := chipgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestRouteAllMethodsSmoke(t *testing.T) {
	chip := tinyChip(t, 0, 0.002) // ~100 nets
	opt := DefaultOptions()
	opt.Waves = 2
	opt.Threads = 2
	for _, m := range []Method{L1, SL, PD, CD, Auto, Portfolio} {
		res, err := Route(chip, m, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		mt := res.Metrics
		if mt.WLm <= 0 || mt.Vias <= 0 {
			t.Fatalf("%v: degenerate metrics %+v", m, mt)
		}
		var oracleSolves int64
		for _, c := range mt.SolvesByOracle {
			oracleSolves += c
		}
		switch m {
		case Auto:
			if oracleSolves != mt.NetsSolved {
				t.Fatalf("auto: %d oracle solves for %d nets", oracleSolves, mt.NetsSolved)
			}
		case Portfolio:
			if oracleSolves != 4*mt.NetsSolved {
				t.Fatalf("portfolio: %d oracle solves for %d nets", oracleSolves, mt.NetsSolved)
			}
		default:
			if oracleSolves != mt.NetsSolved || mt.SolvesByOracle[m.Name()] != mt.NetsSolved {
				t.Fatalf("%v: counters %v for %d nets", m, mt.SolvesByOracle, mt.NetsSolved)
			}
		}
		if mt.ACE4 < 0 || mt.ACE4 > 400 {
			t.Fatalf("%v: ACE4 out of range %v", m, mt.ACE4)
		}
		if mt.WS > 0 && mt.TNS != 0 {
			t.Fatalf("%v: inconsistent WS/TNS %+v", m, mt)
		}
		if mt.Walltime <= 0 {
			t.Fatalf("%v: no walltime", m)
		}
	}
}

func TestDeterministicAcrossThreadCounts(t *testing.T) {
	chip := tinyChip(t, 1, 0.0015)
	opt := DefaultOptions()
	opt.Waves = 2
	for _, m := range []Method{CD, PD} {
		opt.Threads = 1
		a, err := Route(chip, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Threads = 4
		b, err := Route(chip, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics.WS != b.Metrics.WS || a.Metrics.TNS != b.Metrics.TNS ||
			a.Metrics.WLm != b.Metrics.WLm || a.Metrics.Vias != b.Metrics.Vias {
			t.Fatalf("%v: thread count changed results: %+v vs %+v", m, a.Metrics, b.Metrics)
		}
	}
}

func TestPricingReducesOverflow(t *testing.T) {
	chip := tinyChip(t, 2, 0.0008)
	opt := DefaultOptions()
	opt.Threads = 2
	opt.Waves = 1
	one, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Waves = 5
	five, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if five.Metrics.Overflow > one.Metrics.Overflow*1.05+1 {
		t.Fatalf("pricing failed to reduce overflow: wave1 %v wave5 %v",
			one.Metrics.Overflow, five.Metrics.Overflow)
	}
}

func TestTimingWeightsImproveTNS(t *testing.T) {
	// With weight updates disabled (tau → ∞ keeps weights at base), TNS
	// should be no better than the full Lagrangean flow.
	chip := tinyChip(t, 0, 0.002)
	opt := DefaultOptions()
	opt.Threads = 2
	opt.Waves = 4
	full, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.WeightTau = 1e18 // slack/τ ≈ 0: weights stay at base
	flat, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if full.Metrics.TNS < flat.Metrics.TNS-1e-9 {
		// TNS is negative; "less" means worse.
		t.Fatalf("timing weights made TNS worse: %v vs %v", full.Metrics.TNS, flat.Metrics.TNS)
	}
	t.Logf("TNS with Lagrangean weights %v vs flat %v", full.Metrics.TNS, flat.Metrics.TNS)
}

func TestCaptureInstances(t *testing.T) {
	chip := tinyChip(t, 0, 0.002)
	opt := DefaultOptions()
	opt.Threads = 2
	opt.Waves = 2
	opt.CaptureWave = 1
	res, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Captured) == 0 {
		t.Fatal("no instances captured")
	}
	multi := 0
	for _, in := range res.Captured {
		if in.G != chip.G {
			t.Fatal("captured instance lost graph")
		}
		if len(in.Sinks) >= 3 {
			multi++
		}
		// Snapshot independence: mutating the live pricer must not be
		// visible, i.e. the instance carries its own multiplier slice.
		if &in.C.Mult[0] == &chip.G.Cap[0] {
			t.Fatal("bogus aliasing check") // never triggers; placate vet
		}
	}
	if multi == 0 {
		t.Fatal("no multi-sink instances captured")
	}
	// Instances must be independently solvable and evaluable.
	in := res.Captured[0]
	tr, err := SolveNet(in, L1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nets.Evaluate(in, tr); err != nil {
		t.Fatal(err)
	}
}

func TestMethodString(t *testing.T) {
	if L1.String() != "L1" || SL.String() != "SL" || PD.String() != "PD" || CD.String() != "CD" {
		t.Fatal("method names wrong")
	}
	if Auto.String() != "auto" || Portfolio.String() != "portfolio" {
		t.Fatal("driver mode names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method must still format")
	}
}

func TestMethodByName(t *testing.T) {
	for name, want := range map[string]Method{
		"cd": CD, "CD": CD, "rsmt": L1, "l1": L1, "L1": L1,
		"sl": SL, "pd": PD, "auto": Auto, "Portfolio": Portfolio,
		"exact": Exact, "Exact": Exact,
	} {
		got, ok := MethodByName(name)
		if !ok || got != want {
			t.Fatalf("MethodByName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := MethodByName("dijkstra"); ok {
		t.Fatal("unknown name resolved")
	}
	names := MethodNames()
	if len(names) != 7 {
		t.Fatalf("MethodNames() = %v", names)
	}
	for _, n := range names {
		if m, ok := MethodByName(n); !ok || m.Name() != n {
			t.Fatalf("name %q does not round-trip (%v, %v)", n, m, ok)
		}
	}
}
