package router

import (
	"context"
	"math"
	"testing"

	"costdist/internal/chipgen"
	"costdist/internal/grid"
	"costdist/internal/oracle"
)

// chipCosts builds a Costs view of the chip's grid with the given
// multiplier vector.
func chipCosts(chip *chipgen.Chip, mult []float32) *grid.Costs {
	c := grid.NewCosts(chip.G)
	copy(c.Mult, mult)
	return c
}

// Checkpoint() must rebaseline: the drift reference equals the final
// multipliers, and every cached tree's LastCost is its congestion cost
// repriced under them — not the (possibly stale) cost recorded when the
// net was last solved mid-run.
func TestCheckpointRebaselines(t *testing.T) {
	chip := tinyChip(t, 0, 0.002)
	opt := DefaultOptions()
	opt.Waves = 2
	opt.Incremental = true
	_, st, err := RouteCheckpoint(context.Background(), chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	for s := range st.Ref {
		if st.Ref[s] != st.Mult[s] {
			t.Fatalf("seg %d: ref %v != mult %v", s, st.Ref[s], st.Mult[s])
		}
	}
	// Reprice independently under the stored multipliers.
	pricer := chipCosts(chip, st.Mult)
	for ni := range st.Nets {
		ns := &st.Nets[ni]
		if ns.Tree == nil {
			t.Fatalf("net %d has no cached tree after a full run", ni)
		}
		cur := 0.0
		for _, step := range ns.Tree.Steps {
			cur += pricer.ArcCost(step.Arc)
		}
		if math.Abs(cur-ns.LastCost) > 1e-9*math.Abs(cur) {
			t.Fatalf("net %d: LastCost %v, repriced %v", ni, ns.LastCost, cur)
		}
		if ns.Oracle != "cd" {
			t.Fatalf("net %d: oracle %q, want cd", ni, ns.Oracle)
		}
	}
	if st.Method != "cd" || st.NX != chip.G.NX || st.Layers != len(chip.G.Layers) {
		t.Fatalf("grid signature wrong: %+v", st)
	}
}

// The seeded computeDirty pass must return exactly seed ∪ never-solved,
// run no drift checks, and disarm itself for the following wave.
func TestComputeDirtySeedMode(t *testing.T) {
	chip := tinyChip(t, 0, 0.002)
	opt := DefaultOptions()
	opt.Incremental = true
	drv, err := newDriver(CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := newRun(context.Background(), chip, CD, opt, &scratchPool{})
	if err != nil {
		t.Fatal(err)
	}
	inc := r.inc
	n := len(chip.NL.Nets)
	if n < 4 {
		t.Fatalf("chip too small: %d nets", n)
	}
	// Pretend nets 0 and 1 were solved (restored); 2 is seeded dirty;
	// the rest stay never-solved.
	costs := r.pricer.Costs()
	env := oracle.Env{Core: opt.CoreOpt, PDAlpha: opt.PDAlpha, SLEps: opt.SLEps, LBif: r.lbif}
	fake := make(map[int]bool)
	for _, ni := range []int{0, 1} {
		in := buildInstance(chip, ni, r.weights[ni], costs, r.dbif, opt)
		tr, err := drv.oracles[drv.fixed].Solve(in, &env)
		if err != nil {
			t.Fatal(err)
		}
		r.trees[ni] = tr
		inc.restoreNet(ni, r.weights[ni], r.budgets[ni], 1, drv.fixed, tr)
		fake[ni] = true
	}
	seed := make([]bool, n)
	seed[2] = true
	inc.seedDirty(seed)
	work, deltaSegs := inc.computeDirty(costs, r.trees, r.weights, r.budgets)
	if deltaSegs != 0 {
		t.Fatalf("seeded wave reported %d delta segs", deltaSegs)
	}
	if len(work) != n-2 {
		t.Fatalf("seeded wave dirtied %d of %d nets, want %d", len(work), n, n-2)
	}
	for _, ni := range work {
		if fake[int(ni)] && ni != 2 {
			t.Fatalf("restored net %d dirtied by the seed pass", ni)
		}
	}
	// The seed is single-shot: the next pass runs the ordinary rule,
	// under which restored nets with unchanged inputs stay clean.
	work2, _ := inc.computeDirty(costs, r.trees, r.weights, r.budgets)
	for _, ni := range work2 {
		if ni == 0 || ni == 1 {
			// weights have not drifted (same slices), so 0/1 must stay
			// clean unless their cached cost moved — it has not.
			t.Fatalf("restored net %d dirty on the post-seed wave", ni)
		}
	}
}
