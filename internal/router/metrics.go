package router

import (
	"time"

	"costdist/internal/cong"
	"costdist/internal/grid"
	"costdist/internal/nets"
	"costdist/internal/obs"
	"costdist/internal/sta"
)

// Metrics are the per-run columns of Tables IV and V, plus the
// work-avoidance counters of the incremental engine.
type Metrics struct {
	WS       float64 // worst slack, ps
	TNS      float64 // total negative slack, ps
	ACE4     float64 // percent
	WLm      float64 // wirelength in meters
	Vias     int64
	Overflow float64
	// Walltime is the wall-clock duration of the run. It is the one
	// nondeterministic field of the row — every other field is a pure
	// function of (chip, method, options) — so every wire form
	// (MarshalRouteResult, MarshalCheckpoint) excludes it through the
	// shared routeMetricsJSON helper rather than ad hoc.
	Walltime time.Duration

	// Objective is the summed paper objective (1) of the final trees —
	// congestion cost under the final multipliers plus weighted sink
	// delay under the final weights. It is the scalar the incremental
	// and full engines are compared on.
	Objective float64

	// NetsSolved counts oracle solves summed over all waves; NetsSkipped
	// counts cache hits — nets that kept their cached tree because the
	// dirty-net scheduler found no relevant price change. With
	// Incremental off every net is solved every wave and NetsSkipped is
	// zero.
	NetsSolved  int64
	NetsSkipped int64
	// SolvedPerWave and SkippedPerWave split the counters by wave;
	// DeltaSegsPerWave is the wave's delta volume — congestion segments
	// whose multiplier moved beyond tolerance (always zero with
	// Incremental off, where deltas are not tracked).
	SolvedPerWave    []int
	SkippedPerWave   []int
	DeltaSegsPerWave []int

	// NetsRepaired counts dirty nets absorbed by the topology-repair
	// rung (fixed-topology re-embedding adopted, no oracle solve);
	// RepairEscalated counts repair attempts that fell through to a full
	// solve (those nets are also in NetsSolved). Both stay zero unless
	// Options.RepairTol ≥ 0. RepairedPerWave and EscalatedPerWave split
	// the counters by wave; they are only populated when the rung is
	// enabled, so disabled runs keep their legacy wire form.
	NetsRepaired     int64
	RepairEscalated  int64
	RepairedPerWave  []int
	EscalatedPerWave []int

	// SolvesByOracle counts oracle invocations by registry name. A
	// fixed method charges every solve to its one oracle; Auto charges
	// the selected oracle per net; Portfolio charges every pool member
	// it races (so the total exceeds NetsSolved by the pool factor).
	// Only oracles with at least one solve appear.
	SolvesByOracle map[string]int64

	// Telemetry series, populated only when Options.Recorder is set
	// (nil otherwise, so runs without a recorder keep their legacy
	// metrics row bit-for-bit). ObjectivePerWave and OverflowPerWave
	// score the solution at each wave barrier under that wave's final
	// prices and weights — the last entry equals Objective/Overflow —
	// and are deterministic (pure functions of chip, method, options),
	// so they participate in wire forms. StageNanosPerWave is the
	// wave's wall-clock breakdown by pipeline stage; like Walltime it
	// is nondeterministic and is excluded from every wire form.
	ObjectivePerWave  []float64
	OverflowPerWave   []float64
	StageNanosPerWave []StageNanos
}

// StageNanos is one wave's walltime breakdown in nanoseconds. Dirty,
// Price and Replay are serial stages measured once per wave; Repair and
// Solve sum across workers, so on multi-threaded runs they can exceed
// the wave's wall-clock duration (they measure work, not elapsed time).
type StageNanos struct {
	Dirty  int64 `json:"dirty_ns"`
	Price  int64 `json:"price_ns"`
	Repair int64 `json:"repair_ns"`
	Solve  int64 `json:"solve_ns"`
	Replay int64 `json:"replay_ns"`
}

// Result is the outcome of a routing run.
type Result struct {
	Metrics Metrics
	// Trees holds the final embedded tree of every net, indexed like
	// chip.NL.Nets (nil for nets the run never routed). They are what
	// Metrics.Objective scores, and what MarshalRouteResult serializes.
	Trees []*nets.RTree
	// Captured holds standalone instances snapshot at CaptureWave.
	Captured []*nets.Instance
}

// finish evaluates the final metric row from the state the waves left
// behind and returns the run's Result.
func (r *runState) finish() *Result {
	nl := r.chip.NL
	res := r.res
	timing := sta.Analyze(nl, func(n, k int) float64 { return r.delays[n][k] }, r.chip.ClkPeriod)
	var vias int64
	for _, tr := range r.trees {
		if tr == nil {
			continue
		}
		for _, st := range tr.Steps {
			if st.Arc.Via {
				vias++
			}
		}
	}
	// Score the final trees under the final prices and weights — the
	// common scalar objective both engines are judged on.
	res.Metrics.Objective = r.objective(r.pricer.Costs())
	res.Metrics.SolvesByOracle = map[string]int64{}
	for _, wc := range r.workerCounts {
		for oi, c := range wc {
			if c > 0 {
				res.Metrics.SolvesByOracle[r.drv.names[oi]] += c
			}
		}
	}
	res.Trees = r.trees
	res.Metrics.WS = timing.WS
	res.Metrics.TNS = timing.TNS
	res.Metrics.ACE4 = cong.ACE4(r.usage)
	res.Metrics.WLm = r.usage.WirelengthM()
	res.Metrics.Vias = vias
	res.Metrics.Overflow = cong.Overflow(r.usage)
	res.Metrics.Walltime = time.Since(r.start)
	if r.rec != nil {
		for _, ws := range r.rec.Waves() {
			res.Metrics.ObjectivePerWave = append(res.Metrics.ObjectivePerWave, ws.Objective)
			res.Metrics.OverflowPerWave = append(res.Metrics.OverflowPerWave, ws.Overflow)
			res.Metrics.StageNanosPerWave = append(res.Metrics.StageNanosPerWave, StageNanos{
				Dirty:  ws.StageNanos[obs.StageDirty],
				Price:  ws.StageNanos[obs.StagePrice],
				Repair: ws.StageNanos[obs.StageRepair],
				Solve:  ws.StageNanos[obs.StageSolve],
				Replay: ws.StageNanos[obs.StageReplay],
			})
		}
	}
	return res
}

// objective scores the current trees under the given congestion costs
// plus the weighted sink delays under the current weights — objective
// (1) of the paper. finish() and the per-wave telemetry snapshots share
// it, summing in identical order, so the last ObjectivePerWave entry
// equals the final Metrics.Objective bit-for-bit.
func (r *runState) objective(costs *grid.Costs) float64 {
	var obj float64
	for ni, tr := range r.trees {
		if tr == nil {
			continue
		}
		for _, st := range tr.Steps {
			obj += costs.ArcCost(st.Arc)
		}
		for k := range r.delays[ni] {
			obj += r.weights[ni][k] * r.delays[ni][k]
		}
	}
	return obj
}
