package router

import (
	"time"

	"costdist/internal/cong"
	"costdist/internal/nets"
	"costdist/internal/sta"
)

// Metrics are the per-run columns of Tables IV and V, plus the
// work-avoidance counters of the incremental engine.
type Metrics struct {
	WS       float64 // worst slack, ps
	TNS      float64 // total negative slack, ps
	ACE4     float64 // percent
	WLm      float64 // wirelength in meters
	Vias     int64
	Overflow float64
	// Walltime is the wall-clock duration of the run. It is the one
	// nondeterministic field of the row — every other field is a pure
	// function of (chip, method, options) — so every wire form
	// (MarshalRouteResult, MarshalCheckpoint) excludes it through the
	// shared routeMetricsJSON helper rather than ad hoc.
	Walltime time.Duration

	// Objective is the summed paper objective (1) of the final trees —
	// congestion cost under the final multipliers plus weighted sink
	// delay under the final weights. It is the scalar the incremental
	// and full engines are compared on.
	Objective float64

	// NetsSolved counts oracle solves summed over all waves; NetsSkipped
	// counts cache hits — nets that kept their cached tree because the
	// dirty-net scheduler found no relevant price change. With
	// Incremental off every net is solved every wave and NetsSkipped is
	// zero.
	NetsSolved  int64
	NetsSkipped int64
	// SolvedPerWave and SkippedPerWave split the counters by wave;
	// DeltaSegsPerWave is the wave's delta volume — congestion segments
	// whose multiplier moved beyond tolerance (always zero with
	// Incremental off, where deltas are not tracked).
	SolvedPerWave    []int
	SkippedPerWave   []int
	DeltaSegsPerWave []int

	// NetsRepaired counts dirty nets absorbed by the topology-repair
	// rung (fixed-topology re-embedding adopted, no oracle solve);
	// RepairEscalated counts repair attempts that fell through to a full
	// solve (those nets are also in NetsSolved). Both stay zero unless
	// Options.RepairTol ≥ 0. RepairedPerWave and EscalatedPerWave split
	// the counters by wave; they are only populated when the rung is
	// enabled, so disabled runs keep their legacy wire form.
	NetsRepaired     int64
	RepairEscalated  int64
	RepairedPerWave  []int
	EscalatedPerWave []int

	// SolvesByOracle counts oracle invocations by registry name. A
	// fixed method charges every solve to its one oracle; Auto charges
	// the selected oracle per net; Portfolio charges every pool member
	// it races (so the total exceeds NetsSolved by the pool factor).
	// Only oracles with at least one solve appear.
	SolvesByOracle map[string]int64
}

// Result is the outcome of a routing run.
type Result struct {
	Metrics Metrics
	// Trees holds the final embedded tree of every net, indexed like
	// chip.NL.Nets (nil for nets the run never routed). They are what
	// Metrics.Objective scores, and what MarshalRouteResult serializes.
	Trees []*nets.RTree
	// Captured holds standalone instances snapshot at CaptureWave.
	Captured []*nets.Instance
}

// finish evaluates the final metric row from the state the waves left
// behind and returns the run's Result.
func (r *runState) finish() *Result {
	nl := r.chip.NL
	res := r.res
	timing := sta.Analyze(nl, func(n, k int) float64 { return r.delays[n][k] }, r.chip.ClkPeriod)
	var vias int64
	for _, tr := range r.trees {
		if tr == nil {
			continue
		}
		for _, st := range tr.Steps {
			if st.Arc.Via {
				vias++
			}
		}
	}
	// Score the final trees under the final prices and weights — the
	// common scalar objective both engines are judged on.
	finalCosts := r.pricer.Costs()
	for ni, tr := range r.trees {
		if tr == nil {
			continue
		}
		for _, st := range tr.Steps {
			res.Metrics.Objective += finalCosts.ArcCost(st.Arc)
		}
		for k := range r.delays[ni] {
			res.Metrics.Objective += r.weights[ni][k] * r.delays[ni][k]
		}
	}
	res.Metrics.SolvesByOracle = map[string]int64{}
	for _, wc := range r.workerCounts {
		for oi, c := range wc {
			if c > 0 {
				res.Metrics.SolvesByOracle[r.drv.names[oi]] += c
			}
		}
	}
	res.Trees = r.trees
	res.Metrics.WS = timing.WS
	res.Metrics.TNS = timing.TNS
	res.Metrics.ACE4 = cong.ACE4(r.usage)
	res.Metrics.WLm = r.usage.WirelengthM()
	res.Metrics.Vias = vias
	res.Metrics.Overflow = cong.Overflow(r.usage)
	res.Metrics.Walltime = time.Since(r.start)
	return res
}
