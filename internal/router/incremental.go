package router

import (
	"math"
	"sync/atomic"

	"costdist/internal/chipgen"
	"costdist/internal/cong"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
)

// incHalo is the halo, in gcells, added around a cached tree's bounding
// box to form the net's candidate region. Price changes inside the
// region make the net a rip-up candidate; changes further away cannot
// move the cached tree's own cost and leave it in place.
const incHalo = 1

// incState is the dirty-net scheduler of the incremental routing engine.
// Across waves it keeps, per net, the inputs its cached tree was solved
// under — delay weights, budgets and the tree's priced congestion cost —
// plus the plane region the tree occupies, and chip-wide a reference
// snapshot of the congestion multipliers (cong.DeltaTracker).
//
// Invalidation runs in two stages each wave:
//
//  1. Pre-filter: the per-net regions are packed into an R-tree
//     (nets.WindowIndex) and queried with the changed congestion
//     rectangles from the delta tracker. Only nets whose region
//     overlaps a change become candidates.
//  2. Decision: a candidate is dirty when the priced congestion cost of
//     its cached tree under the current multipliers drifted beyond
//     IncrementalTol relative to the cost it was solved at. A price
//     spike next to — but not on — the tree leaves it clean.
//
// Independent of congestion, a net is dirty when one of its sink delay
// weights (or, for budget-consuming oracles, delay budgets) drifted
// beyond tolerance since its last solve, or when it has never been
// solved. The cache remembers which oracle produced each tree: budget
// drift only rips nets whose cached tree came from (or could be
// replaced through) a budget-sensitive oracle, and under the Auto
// driver a net whose criticality band — hence selected oracle — changed
// is dirty even when no individual input drifted beyond tolerance.
// Clean nets keep their cached tree and cached sink delays; only their
// usage is replayed into the wave's congestion accounting.
//
// The rule is deliberately one-sided: a price drop away from the tree
// could in principle open a cheaper route that stays undiscovered until
// some change touches the tree itself. That is the approximation the
// tolerance knob trades against re-solve volume; the pricer keeps
// raising genuinely overloaded segments until every net crossing them
// goes dirty, so congestion violations cannot hide behind the cache.
type incState struct {
	g       *grid.Graph
	tol     float64
	drv     *driver
	tracker *cong.DeltaTracker
	// regions[ni] is the candidate region of net ni: cached tree bbox
	// (initially the terminal bbox) plus halo.
	regions []geom.Rect
	// lastW/lastB are copies of the weights/budgets each net was last
	// solved under; nil marks "never solved". lastCost is the priced
	// congestion cost of the cached tree at solve time.
	lastW, lastB [][]float64
	lastCost     []float64
	// lastOracle[ni] is the driver's index of the oracle that produced
	// the cached tree (-1 before the first solve). Under Auto a band
	// change re-dirties the net; budget drift only matters when the
	// cached (or candidate) oracle consumes budgets.
	lastOracle  []int16
	cand, dirty []bool
	// repair marks the middle disposition of the three-rung scheduler
	// (clean → replay, repairable → re-embed, degraded → full solve):
	// dirty nets whose only invalidation is congestion-price drift — pins,
	// weights, budgets and oracle band unchanged — first attempt a
	// fixed-topology re-embedding (internal/reembed) before escalating to
	// the oracle. Populated only when repairOn.
	repair   []bool
	repairOn bool
	// fullCost[ni] is the priced congestion cost of net ni's last FULL
	// oracle solve. Unlike lastCost it is not rebaselined by adopted
	// repairs, so successive repairs accumulate drift against the last
	// real solve and the escalation rule (repaired cost >
	// (1+RepairTol)·fullCost) eventually fires instead of a congested net
	// dodging the oracle forever through small repair steps.
	fullCost []float64
	// fastest[ni][k] is the admissible fastest root→sink delay used by
	// the Auto band check — identical, by construction, to the value
	// Selection.PickInstance derives on the solve path (same pin
	// positions, same static MinDelayPerGCell).
	fastest [][]float64
	// seed, when non-nil, replaces the next computeDirty pass entirely:
	// the wave's dirty set is seed ∪ {never solved}, no drift checks
	// run and the delta tracker is left untouched. Warm starts use it
	// to make the resumed run's first wave solve exactly the instance
	// diff (RouteFrom); the checkpoint's prices are the clean baseline,
	// so pre-checkpoint residue must not re-dirty restored nets.
	seed []bool

	// pending holds the delta-tracker result of the fused end-of-wave
	// price update (Pricer.UpdateTracked): the next computeDirty consumes
	// it instead of sweeping every segment again. Nil when no update ran
	// since the last pass (wave 0, or after a quiesced warm wave), in
	// which case computeDirty falls back to the tracker sweep.
	pending   bool
	pendRects []geom.Rect
	pendSegs  int
	// ix is the region R-tree of the last computeDirty pass, reused
	// across waves until some net's candidate region actually moves
	// (ixDirty; set by solver workers, hence atomic). Late waves re-solve
	// few nets and most re-solves keep their bounding box, so the
	// O(n log n) rebuild disappears from the steady state.
	ix      *nets.WindowIndex
	ixDirty atomic.Bool

	// steps[ni] caches net ni's embedded tree decomposed into flat
	// per-step arrays — segment id, congestion base cost, capacity
	// consumed — in tree step order. Repricing a candidate tree and
	// replaying a clean net's usage become tight array loops instead of
	// walks that re-derive both quantities from each grid.Arc; the
	// accumulation order is the step order either way, so the floating-
	// point results are bitwise unchanged.
	steps []netSteps
}

// netSteps is one cached tree's flat step decomposition.
type netSteps struct {
	segs   []int32
	base   []float64 // ArcCost(step) = Mult[segs[i]] * base[i]
	capUse []float32 // Usage.AddArc adds capUse[i] to segs[i]
}

// newIncState builds the scheduler for one chip.
func newIncState(chip *chipgen.Chip, drv *driver, opt Options) *incState {
	nl := chip.NL
	regions := make([]geom.Rect, len(nl.Nets))
	for ni, n := range nl.Nets {
		r := geom.EmptyRect()
		r = r.Add(nl.Cells[n.Driver].Pos)
		for _, s := range n.Sinks {
			r = r.Add(nl.Cells[s].Pos)
		}
		regions[ni] = r.Expand(incHalo, chip.G.NX, chip.G.NY)
	}
	s := &incState{
		g:          chip.G,
		tol:        opt.IncrementalTol,
		drv:        drv,
		tracker:    cong.NewDeltaTracker(chip.G, opt.IncrementalTol),
		regions:    regions,
		lastW:      make([][]float64, len(nl.Nets)),
		lastB:      make([][]float64, len(nl.Nets)),
		lastCost:   make([]float64, len(nl.Nets)),
		lastOracle: make([]int16, len(nl.Nets)),
		cand:       make([]bool, len(nl.Nets)),
		dirty:      make([]bool, len(nl.Nets)),
		repair:     make([]bool, len(nl.Nets)),
		repairOn:   opt.RepairTol >= 0,
		fullCost:   make([]float64, len(nl.Nets)),
		steps:      make([]netSteps, len(nl.Nets)),
	}
	for i := range s.lastOracle {
		s.lastOracle[i] = -1
	}
	if drv.mode == Auto {
		minD := grid.NewCosts(chip.G).MinDelayPerGCell()
		s.fastest = make([][]float64, len(nl.Nets))
		for ni, n := range nl.Nets {
			root := nl.Cells[n.Driver].Pos
			fs := make([]float64, len(n.Sinks))
			for k, sk := range n.Sinks {
				fs[k] = float64(geom.L1(root, nl.Cells[sk].Pos)) * minD
			}
			s.fastest[ni] = fs
		}
	}
	return s
}

// drifted reports whether cur moved beyond the relative tolerance from
// the snapshot value. A negative tolerance reports every pair as
// drifted, including identical ones (the forced full re-solve mode).
func (s *incState) drifted(cur, snap float64) bool {
	return math.Abs(cur-snap) > s.tol*math.Abs(snap)
}

// computeDirty returns the ordered work list of dirty nets for the next
// wave and the number of congestion segments that changed beyond
// tolerance (the wave's delta volume). The delta normally arrives
// pre-computed from the previous wave's fused price update (stashDelta);
// the tracker sweep here is the fallback for wave 0 and for waves after
// a quiesce. The region index is rebuilt only when some net's candidate
// region actually moved since the last build — re-solves that keep
// their bounding box, and waves that skip everything, reuse it.
func (s *incState) computeDirty(costs *grid.Costs, trees []*nets.RTree, weights, budgets [][]float64) (work []int32, deltaSegs int) {
	for i := range s.dirty {
		s.cand[i] = false
		s.dirty[i] = false
		s.repair[i] = false
	}
	if s.seed != nil {
		// Seeded wave (warm start): the diff decided what is dirty; add
		// only the nets that have never been solved at all. A seeded net
		// with a restored tree was invalidated purely by the capacity/
		// price diff (its pin signature matched at restore time), which is
		// exactly the repair rung's territory.
		for ni := range s.dirty {
			if s.seed[ni] || s.lastW[ni] == nil || trees[ni] == nil {
				s.dirty[ni] = true
				s.repair[ni] = s.repairOn && s.seed[ni] && s.lastW[ni] != nil && trees[ni] != nil
				work = append(work, int32(ni))
			}
		}
		s.seed = nil
		return work, 0
	}
	var rects []geom.Rect
	if s.pending {
		rects, deltaSegs = s.pendRects, s.pendSegs
		s.pending = false
		s.pendRects = nil
	} else {
		rects, deltaSegs = s.tracker.Update(costs.Mult)
	}
	if len(rects) > 0 {
		if s.ixDirty.Swap(false) || s.ix == nil {
			s.ix = nets.BuildWindowIndex(s.regions)
		}
		for _, r := range rects {
			s.ix.Query(r, func(ni int32) { s.cand[ni] = true })
		}
	}
	for ni := range s.dirty {
		lw := s.lastW[ni]
		if lw == nil || trees[ni] == nil {
			s.dirty[ni] = true
			continue
		}
		if s.cand[ni] {
			// Reprice the cached tree under the current multipliers: the
			// flat step cache yields the same sum, in the same order, as
			// walking the tree through costs.ArcCost.
			sc := &s.steps[ni]
			cur := 0.0
			for i, seg := range sc.segs {
				cur += float64(costs.Mult[seg]) * sc.base[i]
			}
			if s.drifted(cur, s.lastCost[ni]) {
				s.dirty[ni] = true
			}
		}
		if !s.dirty[ni] {
			for k, w := range weights[ni] {
				if s.drifted(w, lw[k]) {
					s.dirty[ni] = true
					break
				}
			}
		}
		if !s.dirty[ni] && s.drv.mode == Auto {
			// A criticality band flip re-selects the oracle; the cached
			// tree, however close in price, came from the wrong one.
			var fs []float64
			if budgets[ni] != nil {
				fs = s.fastest[ni]
			}
			if s.drv.pickIdx(weights[ni], budgets[ni], fs) != int(s.lastOracle[ni]) {
				s.dirty[ni] = true
			}
		}
		if !s.dirty[ni] && s.drv.usesBudgets(int(s.lastOracle[ni])) {
			// Budgets only steer budget-consuming oracles (shallow-light);
			// others ignore them, so budget drift alone must not rip
			// their nets.
			lb := s.lastB[ni]
			if lb == nil || len(lb) != len(budgets[ni]) {
				s.dirty[ni] = true
			} else {
				for k, b := range budgets[ni] {
					if s.drifted(b, lb[k]) {
						s.dirty[ni] = true
						break
					}
				}
			}
		}
		if s.dirty[ni] {
			s.repair[ni] = s.repairOn && s.repairEligible(ni, weights, budgets)
		}
	}
	for ni, d := range s.dirty {
		if d {
			work = append(work, int32(ni))
		}
	}
	return work, deltaSegs
}

// repairEligible reports whether a dirty net may take the repair rung.
// Price, weight and budget drift are all repairable: the re-embedding
// DP prices the cached topology under the *current* multipliers,
// weights and budgets, and the escalation rule (cost vs the last full
// solve, plus the post-repair budget check) catches the cases where
// the drift really demands a new topology. The rung is refused only
// when the topology choice itself is suspect: an Auto criticality-band
// flip re-selects the oracle class, and a budget-consuming oracle
// whose budget vector changed shape no longer matches its snapshot.
func (s *incState) repairEligible(ni int, weights, budgets [][]float64) bool {
	if s.drv.mode == Auto {
		var fs []float64
		if budgets[ni] != nil {
			fs = s.fastest[ni]
		}
		if s.drv.pickIdx(weights[ni], budgets[ni], fs) != int(s.lastOracle[ni]) {
			return false
		}
	}
	if !s.drv.usesBudgets(int(s.lastOracle[ni])) {
		return true
	}
	lb := s.lastB[ni]
	return lb != nil && len(lb) == len(budgets[ni])
}

// noteSolved snapshots the inputs net ni was just solved under — timing
// values, the tree's priced congestion cost, its plane region and the
// oracle that produced the tree. Worker goroutines call it for disjoint
// nets, so no locking is needed.
func (s *incState) noteSolved(ni int, w, b []float64, tr *nets.RTree, congCost float64, oracleIdx int) {
	s.lastW[ni] = append(s.lastW[ni][:0], w...)
	if b != nil {
		s.lastB[ni] = append(s.lastB[ni][:0], b...)
	}
	s.lastCost[ni] = congCost
	s.lastOracle[ni] = int16(oracleIdx)
	s.setRegion(ni, tr)
	s.buildSteps(ni, tr)
}

// noteFullSolve is noteSolved for a full oracle solve: it additionally
// rebaselines the escalation reference cost. Adopted repairs go through
// plain noteSolved so fullCost keeps pointing at the last real solve.
func (s *incState) noteFullSolve(ni int, w, b []float64, tr *nets.RTree, congCost float64, oracleIdx int) {
	s.noteSolved(ni, w, b, tr, congCost, oracleIdx)
	s.fullCost[ni] = congCost
}

// setRegion updates net ni's candidate region from its new tree and
// flags the region index stale when the region actually moved. Workers
// call this for disjoint nets; the shared staleness flag is atomic.
func (s *incState) setRegion(ni int, tr *nets.RTree) {
	r := tr.BBox(s.g)
	if r.Empty() {
		return
	}
	nr := r.Expand(incHalo, s.g.NX, s.g.NY)
	if nr != s.regions[ni] {
		s.regions[ni] = nr
		s.ixDirty.Store(true)
	}
}

// buildSteps (re)derives net ni's flat step cache from its tree.
func (s *incState) buildSteps(ni int, tr *nets.RTree) {
	sc := &s.steps[ni]
	sc.segs = sc.segs[:0]
	sc.base = sc.base[:0]
	sc.capUse = sc.capUse[:0]
	for _, st := range tr.Steps {
		a := st.Arc
		var base float64
		if a.Via {
			base = s.g.Layers[a.L].ViaCost
		} else {
			base = s.g.Layers[a.L].Wires[a.WT].CostPerGCell
		}
		sc.segs = append(sc.segs, a.Seg)
		sc.base = append(sc.base, base)
		sc.capUse = append(sc.capUse, s.g.ArcCapUse(a))
	}
}

// replayUsage accumulates the capacity consumption of every cached tree
// into u, in net order then step order — the same float32 additions, in
// the same order, as walking each tree through Usage.AddArc.
func (s *incState) replayUsage(u *cong.Usage, trees []*nets.RTree) {
	for ni, tr := range trees {
		if tr == nil {
			continue
		}
		sc := &s.steps[ni]
		if len(sc.segs) != len(tr.Steps) {
			s.buildSteps(ni, tr)
		}
		for i, seg := range sc.segs {
			u.U[seg] += sc.capUse[i]
		}
	}
}

// stashDelta hands computeDirty the changed-region result of the fused
// end-of-wave price update, so the next wave skips its tracker sweep.
func (s *incState) stashDelta(rects []geom.Rect, segs int) {
	s.pending = true
	s.pendRects = rects
	s.pendSegs = segs
}

// restoreNet seeds net ni's scheduler state from a checkpoint: the
// last-solve snapshots become the checkpoint's (rebaselined) values and
// the candidate region follows the restored tree. Called once per net
// before the first wave of a warm-started run.
func (s *incState) restoreNet(ni int, w, b []float64, lastCost float64, oracleIdx int, tr *nets.RTree) {
	s.lastW[ni] = append(s.lastW[ni][:0], w...)
	s.lastB[ni] = append(s.lastB[ni][:0], b...)
	s.lastCost[ni] = lastCost
	s.fullCost[ni] = lastCost
	s.lastOracle[ni] = int16(oracleIdx)
	s.setRegion(ni, tr)
	s.buildSteps(ni, tr)
}

// seedDirty arms the seeded-wave mode: the next computeDirty call
// returns dirty ∪ {never solved} and performs no drift checks.
func (s *incState) seedDirty(dirty []bool) {
	s.seed = dirty
}
