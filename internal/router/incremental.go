package router

import (
	"math"

	"costdist/internal/chipgen"
	"costdist/internal/cong"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
)

// incHalo is the halo, in gcells, added around a cached tree's bounding
// box to form the net's candidate region. Price changes inside the
// region make the net a rip-up candidate; changes further away cannot
// move the cached tree's own cost and leave it in place.
const incHalo = 1

// incState is the dirty-net scheduler of the incremental routing engine.
// Across waves it keeps, per net, the inputs its cached tree was solved
// under — delay weights, budgets and the tree's priced congestion cost —
// plus the plane region the tree occupies, and chip-wide a reference
// snapshot of the congestion multipliers (cong.DeltaTracker).
//
// Invalidation runs in two stages each wave:
//
//  1. Pre-filter: the per-net regions are packed into an R-tree
//     (nets.WindowIndex) and queried with the changed congestion
//     rectangles from the delta tracker. Only nets whose region
//     overlaps a change become candidates.
//  2. Decision: a candidate is dirty when the priced congestion cost of
//     its cached tree under the current multipliers drifted beyond
//     IncrementalTol relative to the cost it was solved at. A price
//     spike next to — but not on — the tree leaves it clean.
//
// Independent of congestion, a net is dirty when one of its sink delay
// weights (or, for the shallow-light oracle, delay budgets) drifted
// beyond tolerance since its last solve, or when it has never been
// solved. Clean nets keep their cached tree and cached sink delays;
// only their usage is replayed into the wave's congestion accounting.
//
// The rule is deliberately one-sided: a price drop away from the tree
// could in principle open a cheaper route that stays undiscovered until
// some change touches the tree itself. That is the approximation the
// tolerance knob trades against re-solve volume; the pricer keeps
// raising genuinely overloaded segments until every net crossing them
// goes dirty, so congestion violations cannot hide behind the cache.
type incState struct {
	g       *grid.Graph
	tol     float64
	method  Method
	tracker *cong.DeltaTracker
	// regions[ni] is the candidate region of net ni: cached tree bbox
	// (initially the terminal bbox) plus halo.
	regions []geom.Rect
	// lastW/lastB are copies of the weights/budgets each net was last
	// solved under; nil marks "never solved". lastCost is the priced
	// congestion cost of the cached tree at solve time.
	lastW, lastB [][]float64
	lastCost     []float64
	cand, dirty  []bool
}

// newIncState builds the scheduler for one chip.
func newIncState(chip *chipgen.Chip, m Method, opt Options) *incState {
	nl := chip.NL
	regions := make([]geom.Rect, len(nl.Nets))
	for ni, n := range nl.Nets {
		r := geom.EmptyRect()
		r = r.Add(nl.Cells[n.Driver].Pos)
		for _, s := range n.Sinks {
			r = r.Add(nl.Cells[s].Pos)
		}
		regions[ni] = r.Expand(incHalo, chip.G.NX, chip.G.NY)
	}
	return &incState{
		g:        chip.G,
		tol:      opt.IncrementalTol,
		method:   m,
		tracker:  cong.NewDeltaTracker(chip.G, opt.IncrementalTol),
		regions:  regions,
		lastW:    make([][]float64, len(nl.Nets)),
		lastB:    make([][]float64, len(nl.Nets)),
		lastCost: make([]float64, len(nl.Nets)),
		cand:     make([]bool, len(nl.Nets)),
		dirty:    make([]bool, len(nl.Nets)),
	}
}

// drifted reports whether cur moved beyond the relative tolerance from
// the snapshot value. A negative tolerance reports every pair as
// drifted, including identical ones (the forced full re-solve mode).
func (s *incState) drifted(cur, snap float64) bool {
	return math.Abs(cur-snap) > s.tol*math.Abs(snap)
}

// computeDirty returns the ordered work list of dirty nets for the next
// wave and the number of congestion segments that changed beyond
// tolerance (the wave's delta volume). Rebuilding the region index every
// wave is O(n log n) — noise next to a single oracle solve.
func (s *incState) computeDirty(costs *grid.Costs, trees []*nets.RTree, weights, budgets [][]float64) (work []int32, deltaSegs int) {
	for i := range s.dirty {
		s.cand[i] = false
		s.dirty[i] = false
	}
	rects, deltaSegs := s.tracker.Update(costs.Mult)
	if len(rects) > 0 {
		ix := nets.BuildWindowIndex(s.regions)
		for _, r := range rects {
			ix.Query(r, func(ni int32) { s.cand[ni] = true })
		}
	}
	for ni := range s.dirty {
		lw := s.lastW[ni]
		if lw == nil || trees[ni] == nil {
			s.dirty[ni] = true
			continue
		}
		if s.cand[ni] {
			// Reprice the cached tree under the current multipliers.
			cur := 0.0
			for _, st := range trees[ni].Steps {
				cur += costs.ArcCost(st.Arc)
			}
			if s.drifted(cur, s.lastCost[ni]) {
				s.dirty[ni] = true
				continue
			}
		}
		for k, w := range weights[ni] {
			if s.drifted(w, lw[k]) {
				s.dirty[ni] = true
				break
			}
		}
		if s.dirty[ni] || s.method != SL {
			continue
		}
		// Budgets only steer the shallow-light topology; other oracles
		// ignore them, so budget drift alone must not rip their nets.
		lb := s.lastB[ni]
		if lb == nil || len(lb) != len(budgets[ni]) {
			s.dirty[ni] = true
			continue
		}
		for k, b := range budgets[ni] {
			if s.drifted(b, lb[k]) {
				s.dirty[ni] = true
				break
			}
		}
	}
	for ni, d := range s.dirty {
		if d {
			work = append(work, int32(ni))
		}
	}
	return work, deltaSegs
}

// noteSolved snapshots the inputs net ni was just solved under — timing
// values, the tree's priced congestion cost and its plane region.
// Worker goroutines call it for disjoint nets, so no locking is needed.
func (s *incState) noteSolved(ni int, w, b []float64, tr *nets.RTree, congCost float64) {
	s.lastW[ni] = append(s.lastW[ni][:0], w...)
	if b != nil {
		s.lastB[ni] = append(s.lastB[ni][:0], b...)
	}
	s.lastCost[ni] = congCost
	if r := tr.BBox(s.g); !r.Empty() {
		s.regions[ni] = r.Expand(incHalo, s.g.NX, s.g.NY)
	}
}
