package router

import (
	"math"
	"slices"
	"testing"
)

// metricsEqual compares every deterministic field of two Metrics
// (Walltime is wall-clock and excluded).
func metricsEqual(a, b Metrics) bool {
	return a.WS == b.WS && a.TNS == b.TNS && a.ACE4 == b.ACE4 &&
		a.WLm == b.WLm && a.Vias == b.Vias && a.Overflow == b.Overflow &&
		a.Objective == b.Objective &&
		a.NetsSolved == b.NetsSolved && a.NetsSkipped == b.NetsSkipped &&
		slices.Equal(a.SolvedPerWave, b.SolvedPerWave) &&
		slices.Equal(a.SkippedPerWave, b.SkippedPerWave) &&
		slices.Equal(a.DeltaSegsPerWave, b.DeltaSegsPerWave)
}

// With a negative tolerance every net is forced dirty every wave — no
// cache hit ever happens — and the incremental engine must reproduce
// the non-incremental run bit for bit.
func TestIncrementalNoSkipBitIdentical(t *testing.T) {
	chip := tinyChip(t, 0, 0.002)
	opt := DefaultOptions()
	opt.Waves = 3
	opt.Threads = 2
	full, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Incremental = true
	opt.IncrementalTol = -1
	forced, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Metrics.NetsSkipped != 0 {
		t.Fatalf("forced mode skipped %d nets", forced.Metrics.NetsSkipped)
	}
	f, g := full.Metrics, forced.Metrics
	if f.WS != g.WS || f.TNS != g.TNS || f.ACE4 != g.ACE4 || f.WLm != g.WLm ||
		f.Vias != g.Vias || f.Overflow != g.Overflow || f.Objective != g.Objective {
		t.Fatalf("no-skip incremental diverged:\nfull   %+v\nforced %+v", f, g)
	}
	if f.NetsSolved != g.NetsSolved {
		t.Fatalf("solve counts differ: %d vs %d", f.NetsSolved, g.NetsSolved)
	}
}

// At the default tolerance the scheduler must actually skip work after
// wave 0 and still land within the documented band of the full run.
func TestIncrementalSkipsAndStaysClose(t *testing.T) {
	chip := tinyChip(t, 0, 0.004)
	opt := DefaultOptions()
	opt.Threads = 2
	full, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Incremental = true
	inc, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := inc.Metrics
	if m.NetsSkipped == 0 {
		t.Fatalf("incremental run skipped nothing: %+v", m)
	}
	if m.SolvedPerWave[0] != len(chip.NL.Nets) || m.SkippedPerWave[0] != 0 {
		t.Fatalf("wave 0 must solve everything: solved %v skipped %v", m.SolvedPerWave, m.SkippedPerWave)
	}
	for w, s := range m.SolvedPerWave {
		if s+m.SkippedPerWave[w] != len(chip.NL.Nets) {
			t.Fatalf("wave %d: solved %d + skipped %d != %d nets", w, s, m.SkippedPerWave[w], len(chip.NL.Nets))
		}
	}
	if m.NetsSolved+m.NetsSkipped != int64(opt.Waves*len(chip.NL.Nets)) {
		t.Fatalf("counter totals inconsistent: %+v", m)
	}
	// The incremental run may be better (it converges more smoothly) but
	// must not be worse than the documented 1% band on the objective.
	if m.Objective > full.Metrics.Objective*1.01 {
		t.Fatalf("objective degraded beyond 1%%: inc %v full %v", m.Objective, full.Metrics.Objective)
	}
	if math.Abs(m.WLm-full.Metrics.WLm) > 0.02*full.Metrics.WLm {
		t.Fatalf("wirelength drifted: inc %v full %v", m.WLm, full.Metrics.WLm)
	}
}

// The dirty-net schedule, like the rest of the router, must not depend
// on the worker count.
func TestIncrementalDeterministicAcrossThreadCounts(t *testing.T) {
	chip := tinyChip(t, 1, 0.0015)
	opt := DefaultOptions()
	opt.Waves = 3
	opt.Incremental = true
	var ref *Result
	for _, threads := range []int{1, 2, 8} {
		opt.Threads = threads
		r, err := Route(chip, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
			continue
		}
		if !metricsEqual(ref.Metrics, r.Metrics) {
			t.Fatalf("threads=%d changed results:\nref %+v\ngot %+v", threads, ref.Metrics, r.Metrics)
		}
	}
}

// The work-avoidance counters are reported in non-incremental runs too:
// every net solved, nothing skipped, no deltas tracked.
func TestFullModeCounters(t *testing.T) {
	chip := tinyChip(t, 0, 0.002)
	opt := DefaultOptions()
	opt.Waves = 2
	opt.Threads = 2
	r, err := Route(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	n := len(chip.NL.Nets)
	m := r.Metrics
	if m.NetsSolved != int64(2*n) || m.NetsSkipped != 0 {
		t.Fatalf("full-mode counters: %+v", m)
	}
	if !slices.Equal(m.SolvedPerWave, []int{n, n}) || !slices.Equal(m.SkippedPerWave, []int{0, 0}) ||
		!slices.Equal(m.DeltaSegsPerWave, []int{0, 0}) {
		t.Fatalf("full-mode per-wave counters: %+v", m)
	}
}
