// Package router implements timing-constrained global routing with
// Lagrangean relaxation in the architecture of ref [13], the framework
// the paper evaluates inside (§IV): congestion constraints are priced by
// multiplicative-weight segment multipliers, timing constraints by
// per-sink delay weights derived from slacks, and in every
// rip-up-and-reroute wave a Steiner tree oracle solves the resulting
// cost-distance subproblem (eq. (1)) per net. The oracle is pluggable:
// the paper's four contenders — L1, shallow-light, Prim-Dijkstra (each
// topology-first, then embedded optimally) and the new cost-distance
// algorithm — are all provided.
package router

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"costdist/internal/chipgen"
	"costdist/internal/cong"
	"costdist/internal/core"
	"costdist/internal/embed"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
	"costdist/internal/pd"
	"costdist/internal/rsmt"
	"costdist/internal/sl"
	"costdist/internal/sta"
)

// Method selects the Steiner tree oracle (paper §IV-A).
type Method int

// The four compared algorithms.
const (
	L1 Method = iota // shortest L1 Steiner topology, embedded optimally
	SL               // shallow-light topology, embedded optimally
	PD               // Prim-Dijkstra topology, embedded optimally
	CD               // the paper's cost-distance algorithm
)

func (m Method) String() string {
	switch m {
	case L1:
		return "L1"
	case SL:
		return "SL"
	case PD:
		return "PD"
	case CD:
		return "CD"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures a routing run.
type Options struct {
	// Waves is the number of rip-up-and-reroute iterations.
	Waves int
	// Threads caps the routing worker count (0 = GOMAXPROCS).
	Threads int
	// Seed drives all randomized choices.
	Seed uint64

	// DBif and Eta parameterize the bifurcation penalty model; DBif < 0
	// means "use the technology-derived value" (chip.DBif), 0 disables.
	DBif float64
	Eta  float64

	// PriceAlpha and PriceTarget parameterize congestion pricing.
	PriceAlpha  float64
	PriceTarget float64

	// WeightBase, WeightTau and WeightMax parameterize the slack-driven
	// delay weight update w ← clamp(w·exp(−slack/τ), base, max).
	WeightBase float64
	WeightTau  float64
	WeightMax  float64

	// Margin is the routing window margin in gcells.
	Margin int32

	// CoreOpt configures the CD oracle; PDAlpha and SLEps the baselines.
	CoreOpt core.Options
	PDAlpha float64
	SLEps   float64

	// CaptureWave, when ≥ 0, snapshots every routed net of that wave as
	// a standalone cost-distance instance (for Tables I and II). In
	// incremental mode only the nets actually re-solved in that wave are
	// captured.
	CaptureWave int

	// Incremental enables the dirty-net scheduler: after wave 0 only
	// nets invalidated by congestion or timing price changes are ripped
	// up and re-solved; clean nets keep their cached tree. Off by
	// default; the disabled path is bit-identical to a full re-solve of
	// every net in every wave.
	Incremental bool
	// IncrementalTol is the relative tolerance of the invalidation rule:
	// a congestion multiplier or sink timing value counts as changed
	// when it moved by more than IncrementalTol relative to the snapshot
	// the net was last solved under. 0 invalidates on any change; a
	// negative value forces every net dirty every wave (no skips).
	IncrementalTol float64
}

// DefaultOptions returns a configuration mirroring the paper's setup.
func DefaultOptions() Options {
	return Options{
		Waves:       4,
		Seed:        1,
		DBif:        -1,
		Eta:         0.25,
		PriceAlpha:  1.2,
		PriceTarget: 0.85,
		WeightBase:  5e-4,
		WeightTau:   800,
		WeightMax:   0.05,
		Margin:      6,
		CoreOpt:     core.DefaultOptions(),
		PDAlpha:     0.3,
		SLEps:       0.25,
		CaptureWave: -1,

		IncrementalTol: 0.05,
	}
}

// Metrics are the per-run columns of Tables IV and V, plus the
// work-avoidance counters of the incremental engine.
type Metrics struct {
	WS       float64 // worst slack, ps
	TNS      float64 // total negative slack, ps
	ACE4     float64 // percent
	WLm      float64 // wirelength in meters
	Vias     int64
	Overflow float64
	Walltime time.Duration

	// Objective is the summed paper objective (1) of the final trees —
	// congestion cost under the final multipliers plus weighted sink
	// delay under the final weights. It is the scalar the incremental
	// and full engines are compared on.
	Objective float64

	// NetsSolved counts oracle solves summed over all waves; NetsSkipped
	// counts cache hits — nets that kept their cached tree because the
	// dirty-net scheduler found no relevant price change. With
	// Incremental off every net is solved every wave and NetsSkipped is
	// zero.
	NetsSolved  int64
	NetsSkipped int64
	// SolvedPerWave and SkippedPerWave split the counters by wave;
	// DeltaSegsPerWave is the wave's delta volume — congestion segments
	// whose multiplier moved beyond tolerance (always zero with
	// Incremental off, where deltas are not tracked).
	SolvedPerWave    []int
	SkippedPerWave   []int
	DeltaSegsPerWave []int
}

// Result is the outcome of a routing run.
type Result struct {
	Metrics Metrics
	// Captured holds standalone instances snapshot at CaptureWave.
	Captured []*nets.Instance
}

// scratchPool hands each routing worker a private core.Scratch arena so
// every rip-up-and-reroute wave re-solves its nets without re-allocating
// solver state. Pools persist across waves (and, via RouteAll, across
// chips of a suite).
type scratchPool struct {
	scr []*core.Scratch
}

// grow ensures the pool holds at least n arenas.
func (p *scratchPool) grow(n int) {
	for len(p.scr) < n {
		p.scr = append(p.scr, core.NewScratch())
	}
}

// Route runs the full flow on the chip with the given oracle.
func Route(chip *chipgen.Chip, m Method, opt Options) (*Result, error) {
	return routeWith(chip, m, opt, &scratchPool{})
}

func routeWith(chip *chipgen.Chip, m Method, opt Options, pool *scratchPool) (*Result, error) {
	start := time.Now()
	g := chip.G
	nl := chip.NL
	dbif := opt.DBif
	if dbif < 0 {
		dbif = chip.DBif
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	pool.grow(threads)
	pricer := cong.NewPricer(g, opt.PriceAlpha, opt.PriceTarget)

	nNets := len(nl.Nets)
	weights := make([][]float64, nNets)
	delays := make([][]float64, nNets)
	budgets := make([][]float64, nNets)
	for ni, n := range nl.Nets {
		weights[ni] = make([]float64, len(n.Sinks))
		delays[ni] = make([]float64, len(n.Sinks))
		for k := range n.Sinks {
			weights[ni][k] = opt.WeightBase
		}
	}
	trees := make([]*nets.RTree, nNets)
	res := &Result{}

	// lbif converts the delay penalty to length units for the plane
	// topology baselines (fastest delay per gcell).
	costs0 := grid.NewCosts(g)
	lbif := 0.0
	if d := costs0.MinDelayPerGCell(); d > 0 {
		lbif = dbif / d
	}

	// Pre-wave timing: estimate net delays from L1 distances on a
	// mid-stack layer and derive initial delay weights and budgets, so
	// every sink carries its Lagrangean timing price from the first wave
	// (ref [13] prices all timing constraints from the start; a purely
	// reactive update would let delay-oblivious trees poison wave 0).
	{
		mid := g.Layers[len(g.Layers)/2]
		perGC := mid.Wires[0].DelayPerGCell
		est := func(n, k int) float64 {
			net := nl.Nets[n]
			d := geom.L1(nl.Cells[net.Driver].Pos, nl.Cells[net.Sinks[k]].Pos)
			return float64(d)*perGC + 2*mid.ViaDelay
		}
		timing := sta.Analyze(nl, est, chip.ClkPeriod)
		for ni := range nl.Nets {
			budgets[ni] = make([]float64, len(nl.Nets[ni].Sinks))
			for k := range nl.Nets[ni].Sinks {
				slack := timing.PinSlack(ni, k)
				w := opt.WeightBase * math.Exp(-slack/opt.WeightTau)
				if w < opt.WeightBase {
					w = opt.WeightBase
				}
				if w > opt.WeightMax {
					w = opt.WeightMax
				}
				weights[ni][k] = w
				b := est(ni, k) + slack
				if b < 0 {
					b = 0
				}
				budgets[ni][k] = b
			}
		}
	}

	// The full work list; incremental waves replace it with the dirty
	// subset.
	allNets := make([]int32, nNets)
	for i := range allNets {
		allNets[i] = int32(i)
	}
	var inc *incState
	if opt.Incremental {
		inc = newIncState(chip, m, opt)
	}

	var usage *cong.Usage
	for wave := 0; wave < opt.Waves; wave++ {
		costs := pricer.Costs()
		capture := wave == opt.CaptureWave

		work := allNets
		deltaSegs := 0
		if inc != nil {
			// Dirty-net scheduling: invalidate nets whose cached tree got
			// repriced or whose timing inputs drifted. Wave 0 marks every
			// net dirty (nothing has been solved yet).
			work, deltaSegs = inc.computeDirty(costs, trees, weights, budgets)
		}
		nWork := len(work)

		workerUsage := make([]*cong.Usage, threads)
		workerErr := make([]error, threads)
		captured := make([][]*nets.Instance, threads)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			if inc == nil {
				workerUsage[w] = cong.NewUsage(g)
			}
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				// Each worker solves through its own arena; results are
				// unchanged (solves are per-instance deterministic) while
				// per-net solver allocations disappear. Any caller-provided
				// scratch is overridden — sharing one across workers would
				// race.
				wopt := opt
				wopt.CoreOpt.Scratch = pool.scr[worker]
				for {
					idx := int(next.Add(1)) - 1
					if idx >= nWork {
						return
					}
					ni := int(work[idx])
					in := buildInstance(chip, ni, weights[ni], costs, dbif, opt)
					in.Budgets = budgets[ni]
					tr, err := routeNet(in, m, wopt, lbif)
					if err != nil {
						if workerErr[worker] == nil {
							workerErr[worker] = fmt.Errorf("net %d: %w", ni, err)
						}
						continue
					}
					ev, err := nets.Evaluate(in, tr)
					if err != nil {
						if workerErr[worker] == nil {
							workerErr[worker] = fmt.Errorf("net %d eval: %w", ni, err)
						}
						continue
					}
					trees[ni] = tr
					copy(delays[ni], ev.SinkDelay)
					if inc == nil {
						for _, st := range tr.Steps {
							workerUsage[worker].AddArc(st.Arc)
						}
					} else {
						// Snapshot the inputs this solve consumed and the new
						// tree's cost and region; workers touch disjoint
						// nets, so this is race-free.
						inc.noteSolved(ni, weights[ni], budgets[ni], tr, ev.CongCost)
					}
					if capture && len(in.Sinks) >= 1 {
						captured[worker] = append(captured[worker], snapshot(in))
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range workerErr {
			if err != nil {
				return nil, err
			}
		}
		if inc == nil {
			usage = cong.NewUsage(g)
			for _, wu := range workerUsage {
				usage.AddFrom(wu)
			}
		} else {
			// Skipped nets keep their cached tree but still occupy their
			// tracks: rebuild usage from every tree, cached or fresh, in
			// net order — deterministic regardless of worker count or of
			// which nets were skipped.
			usage = cong.NewUsage(g)
			for _, tr := range trees {
				if tr == nil {
					continue
				}
				for _, st := range tr.Steps {
					usage.AddArc(st.Arc)
				}
			}
		}
		res.Metrics.NetsSolved += int64(nWork)
		res.Metrics.NetsSkipped += int64(nNets - nWork)
		res.Metrics.SolvedPerWave = append(res.Metrics.SolvedPerWave, nWork)
		res.Metrics.SkippedPerWave = append(res.Metrics.SkippedPerWave, nNets-nWork)
		res.Metrics.DeltaSegsPerWave = append(res.Metrics.DeltaSegsPerWave, deltaSegs)
		if capture {
			for _, cs := range captured {
				res.Captured = append(res.Captured, cs...)
			}
		}

		// Lagrangean updates: congestion prices, delay weights and the
		// globally optimized per-sink delay budgets (routed delay plus
		// the slack the endpoint can still afford) consumed by the
		// shallow-light baseline, per ref [13].
		pricer.Update(usage)
		timing := sta.Analyze(nl, func(n, k int) float64 { return delays[n][k] }, chip.ClkPeriod)
		for ni := range nl.Nets {
			if budgets[ni] == nil {
				budgets[ni] = make([]float64, len(nl.Nets[ni].Sinks))
			}
			for k := range nl.Nets[ni].Sinks {
				slack := timing.PinSlack(ni, k)
				w := weights[ni][k] * math.Exp(-slack/opt.WeightTau)
				if w < opt.WeightBase {
					w = opt.WeightBase
				}
				if w > opt.WeightMax {
					w = opt.WeightMax
				}
				weights[ni][k] = w
				b := delays[ni][k] + slack
				if b < 0 {
					b = 0
				}
				budgets[ni][k] = b
			}
		}
	}

	// Final metrics.
	timing := sta.Analyze(nl, func(n, k int) float64 { return delays[n][k] }, chip.ClkPeriod)
	var vias int64
	for _, tr := range trees {
		if tr == nil {
			continue
		}
		for _, st := range tr.Steps {
			if st.Arc.Via {
				vias++
			}
		}
	}
	// Score the final trees under the final prices and weights — the
	// common scalar objective both engines are judged on.
	finalCosts := pricer.Costs()
	for ni, tr := range trees {
		if tr == nil {
			continue
		}
		for _, st := range tr.Steps {
			res.Metrics.Objective += finalCosts.ArcCost(st.Arc)
		}
		for k := range delays[ni] {
			res.Metrics.Objective += weights[ni][k] * delays[ni][k]
		}
	}
	res.Metrics.WS = timing.WS
	res.Metrics.TNS = timing.TNS
	res.Metrics.ACE4 = cong.ACE4(usage)
	res.Metrics.WLm = usage.WirelengthM()
	res.Metrics.Vias = vias
	res.Metrics.Overflow = cong.Overflow(usage)
	res.Metrics.Walltime = time.Since(start)
	return res, nil
}

// buildInstance assembles the cost-distance subproblem for one net under
// the current prices and weights.
func buildInstance(chip *chipgen.Chip, ni int, w []float64, costs *grid.Costs, dbif float64, opt Options) *nets.Instance {
	n := chip.NL.Nets[ni]
	in := &nets.Instance{
		G: chip.G, C: costs,
		Root: chip.PinVertex(n.Driver),
		DBif: dbif, Eta: opt.Eta,
		Seed: opt.Seed*0x9E3779B9 + uint64(ni),
	}
	for k, s := range n.Sinks {
		in.Sinks = append(in.Sinks, nets.Sink{V: chip.PinVertex(s), W: w[k]})
	}
	in.Win = in.DefaultWindow(opt.Margin)
	return in
}

// routeNet runs the selected oracle on one instance.
func routeNet(in *nets.Instance, m Method, opt Options, lbif float64) (*nets.RTree, error) {
	if m == CD {
		return core.Solve(in, opt.CoreOpt)
	}
	pts := in.TermPts()
	ws := make([]float64, len(in.Sinks))
	for i, s := range in.Sinks {
		ws[i] = s.W
	}
	var topo *nets.PlaneTree
	switch m {
	case L1:
		topo = rsmt.Build(pts)
	case SL:
		// Convert ps budgets into (admissible) length bounds with the
		// fastest delay per gcell; keep at least the L1 radius so a
		// direct connection always satisfies its own bound.
		var bounds []float64
		if in.Budgets != nil {
			if d := in.C.MinDelayPerGCell(); d > 0 {
				bounds = make([]float64, len(in.Sinks))
				rootPt := in.G.Pt(in.Root)
				for k := range in.Sinks {
					l1 := float64(geom.L1(rootPt, in.G.Pt(in.Sinks[k].V)))
					b := in.Budgets[k] / d
					if b < l1 {
						b = l1
					}
					bounds[k] = b
				}
			}
		}
		topo = sl.Build(pts, ws, sl.Params{Eps: opt.SLEps, Bound: bounds, LBif: lbif, Eta: in.Eta})
	case PD:
		topo = pd.Build(pts, ws, pd.Params{Alpha: opt.PDAlpha, LBif: lbif, Eta: in.Eta})
	default:
		return nil, fmt.Errorf("router: unknown method %v", m)
	}
	r, err := embed.Embed(in, topo)
	if err != nil {
		return nil, err
	}
	return r.Tree, nil
}

// SolveNet runs one oracle standalone on a self-contained instance (the
// Tables I/II harness and the CLI use this for apples-to-apples
// comparisons on captured instances).
func SolveNet(in *nets.Instance, m Method, opt Options) (*nets.RTree, error) {
	lbif := 0.0
	if d := in.C.MinDelayPerGCell(); d > 0 {
		lbif = in.DBif / d
	}
	return routeNet(in, m, opt, lbif)
}

// snapshot deep-copies an instance so it stays valid after the pricer
// mutates the shared multipliers (Tables I/II instance capture).
func snapshot(in *nets.Instance) *nets.Instance {
	c := *in.C
	c.Mult = append([]float32{}, in.C.Mult...)
	out := *in
	out.C = &c
	out.Sinks = append([]nets.Sink{}, in.Sinks...)
	return &out
}

// RouteAll routes every chip of a suite with one method, returning rows
// in suite order. It exists for the Tables IV/V harness. One worker
// scratch pool is shared across all chips, so solver state is recycled
// suite-wide, not just within one chip's waves.
func RouteAll(chips []*chipgen.Chip, m Method, opt Options) ([]Metrics, error) {
	out := make([]Metrics, len(chips))
	pool := &scratchPool{}
	for i, chip := range chips {
		r, err := routeWith(chip, m, opt, pool)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", chip.Spec.Name, m, err)
		}
		out[i] = r.Metrics
	}
	return out, nil
}
