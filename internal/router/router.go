// Package router implements timing-constrained global routing with
// Lagrangean relaxation in the architecture of ref [13], the framework
// the paper evaluates inside (§IV): congestion constraints are priced by
// multiplicative-weight segment multipliers, timing constraints by
// per-sink delay weights derived from slacks, and in every
// rip-up-and-reroute wave a Steiner tree oracle solves the resulting
// cost-distance subproblem (eq. (1)) per net. The oracle is pluggable:
// the paper's four contenders — L1, shallow-light, Prim-Dijkstra (each
// topology-first, then embedded optimally) and the new cost-distance
// algorithm — are all provided.
//
// The package is split by concern: this file holds the method/driver
// dispatch and the public entry points; waves.go the rip-up-and-reroute
// wave loop over a runState; metrics.go the metric row and its final
// evaluation; state.go the externalized State with checkpoint/restore
// and the warm-start entry points; incremental.go the dirty-net
// scheduler.
package router

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"costdist/internal/chipgen"
	"costdist/internal/core"
	"costdist/internal/nets"
	"costdist/internal/obs"
	"costdist/internal/oracle"
	"costdist/internal/reembed"
)

// Method selects the oracle driver of a routing run. The four fixed
// methods are thin aliases over a registry lookup (paper §IV-A); Auto
// and Portfolio are drivers layered over the whole registry.
type Method int

const (
	L1 Method = iota // shortest L1 Steiner topology, embedded optimally
	SL               // shallow-light topology, embedded optimally
	PD               // Prim-Dijkstra topology, embedded optimally
	CD               // the paper's cost-distance algorithm
	// Auto picks an oracle per net from its timing criticality
	// (Options.Selection thresholds).
	Auto
	// Portfolio races several oracles on every net and keeps the
	// best-priced tree (name-ordered tie-break).
	Portfolio
	// Exact routes every net with the exact tier: the goal-oriented
	// label-setting solver seeded by the CD heuristic, falling back to
	// the CD tree for nets beyond its deterministic budget.
	Exact
)

// methodInfo maps each Method to its canonical registry/driver name and
// its display label (the paper's table spelling for the fixed four).
var methodInfo = []struct{ name, display string }{
	L1:        {"rsmt", "L1"},
	SL:        {"sl", "SL"},
	PD:        {"pd", "PD"},
	CD:        {"cd", "CD"},
	Auto:      {"auto", "auto"},
	Portfolio: {"portfolio", "portfolio"},
	Exact:     {"exact", "exact"},
}

// Name returns the canonical registry (or driver-mode) name, "" for an
// out-of-range value.
func (m Method) Name() string {
	if m < 0 || int(m) >= len(methodInfo) {
		return ""
	}
	return methodInfo[m].name
}

func (m Method) String() string {
	if m < 0 || int(m) >= len(methodInfo) {
		return fmt.Sprintf("Method(%d)", int(m))
	}
	return methodInfo[m].display
}

// MethodByName resolves a user-supplied oracle or driver name — any
// registry name, alias ("l1") or driver mode, case-insensitive — to its
// Method.
func MethodByName(name string) (Method, bool) {
	c := oracle.Canonical(name)
	for i := range methodInfo {
		if methodInfo[i].name == c {
			return Method(i), true
		}
	}
	return 0, false
}

// defaultRegistry is the immutable registry shared by the router's
// drivers and name lookups. Callers who want to extend a registry build
// their own via oracle.Default()/oracle.NewRegistry.
var defaultRegistry = oracle.Default()

// OracleNames returns the registry's canonical oracle names, sorted.
func OracleNames() []string { return defaultRegistry.Names() }

// MethodNames returns every accepted method name: the registry's
// canonical oracle names followed by the driver modes.
func MethodNames() []string {
	return append(OracleNames(), "auto", "portfolio")
}

// Options configures a routing run.
type Options struct {
	// Waves is the number of rip-up-and-reroute iterations.
	Waves int
	// Threads caps the routing worker count (0 = GOMAXPROCS).
	Threads int
	// Seed drives all randomized choices.
	Seed uint64

	// DBif and Eta parameterize the bifurcation penalty model; DBif < 0
	// means "use the technology-derived value" (chip.DBif), 0 disables.
	DBif float64
	Eta  float64

	// PriceAlpha and PriceTarget parameterize congestion pricing.
	PriceAlpha  float64
	PriceTarget float64

	// WeightBase, WeightTau and WeightMax parameterize the slack-driven
	// delay weight update w ← clamp(w·exp(−slack/τ), base, max).
	WeightBase float64
	WeightTau  float64
	WeightMax  float64

	// Margin is the routing window margin in gcells.
	Margin int32

	// CoreOpt configures the CD oracle; PDAlpha and SLEps the baselines.
	CoreOpt core.Options
	PDAlpha float64
	SLEps   float64

	// CaptureWave, when ≥ 0, snapshots every routed net of that wave as
	// a standalone cost-distance instance (for Tables I and II). In
	// incremental mode only the nets actually re-solved in that wave are
	// captured.
	CaptureWave int

	// Incremental enables the dirty-net scheduler: after wave 0 only
	// nets invalidated by congestion or timing price changes are ripped
	// up and re-solved; clean nets keep their cached tree. Off by
	// default; the disabled path is bit-identical to a full re-solve of
	// every net in every wave. Warm-started runs (RouteFrom) always use
	// the scheduler regardless of this flag.
	Incremental bool
	// IncrementalTol is the relative tolerance of the invalidation rule:
	// a congestion multiplier or sink timing value counts as changed
	// when it moved by more than IncrementalTol relative to the snapshot
	// the net was last solved under. 0 invalidates on any change; a
	// negative value forces every net dirty every wave (no skips).
	IncrementalTol float64
	// RepairTol enables the topology-repair rung of the incremental
	// scheduler: a net invalidated only by congestion-price drift (pins,
	// weights and budgets unchanged) is first re-embedded on its cached
	// topology (internal/reembed) and escalates to a full oracle solve
	// only when the repaired cost still exceeds (1+RepairTol) times the
	// net's last full-solve cost, or a delay budget is violated.
	// Negative (the default) disables the rung entirely: every dirty net
	// escalates, reproducing the two-rung scheduler bit-for-bit.
	RepairTol float64

	// Selection configures the Auto selector's criticality bands and
	// the Portfolio pool; fixed single-oracle runs never consult (or
	// validate) it. A zero CriticalWeight derives the threshold from
	// WeightBase (see oracle.Selection).
	Selection SelectionOptions

	// Recorder, when non-nil, captures structured telemetry: per-stage
	// spans (dirty scan, repair, solve, replay, reprice, checkpoint)
	// and per-wave convergence snapshots, and populates the
	// Metrics.*PerWave telemetry series. The nil default is
	// zero-overhead, and recording never perturbs the computation —
	// routed trees and all non-telemetry metrics are bit-identical with
	// and without a recorder (locked by TestRecorderDoesNotPerturbRoute).
	Recorder *obs.Recorder
}

// SelectionOptions configures per-net adaptive oracle selection and
// portfolio mode.
type SelectionOptions = oracle.Selection

// DefaultOptions returns a configuration mirroring the paper's setup.
func DefaultOptions() Options {
	return Options{
		Waves:       4,
		Seed:        1,
		DBif:        -1,
		Eta:         0.25,
		PriceAlpha:  1.2,
		PriceTarget: 0.85,
		WeightBase:  5e-4,
		WeightTau:   800,
		WeightMax:   0.05,
		Margin:      6,
		CoreOpt:     core.DefaultOptions(),
		PDAlpha:     0.3,
		SLEps:       0.25,
		CaptureWave: -1,

		IncrementalTol: 0.05,
		RepairTol:      -1,

		// CriticalWeight stays 0: the driver derives it from the actual
		// WeightBase (2 × floor), so retuning the floor keeps the Auto
		// critical band coupled to it.
		Selection: SelectionOptions{TrivialSinks: 1, TightBudgetRatio: 1.25},
	}
}

// scratchPool hands each routing worker a private core.Scratch arena so
// every rip-up-and-reroute wave re-solves its nets without re-allocating
// solver state. Pools persist across waves (and, via RouteAll, across
// chips of a suite).
type scratchPool struct {
	scr []*core.Scratch
	// re holds the matching per-worker repair workspaces; allocated
	// alongside scr so a pool serves repair-enabled and plain runs alike.
	re []*reembed.Scratch
}

// grow ensures the pool holds at least n arenas.
func (p *scratchPool) grow(n int) {
	for len(p.scr) < n {
		p.scr = append(p.scr, core.NewScratch())
		p.re = append(p.re, reembed.NewScratch())
	}
}

// driver resolves a Method against the oracle registry once per run
// and dispatches every net solve through it: a fixed single oracle, the
// adaptive per-net selector, or the portfolio racer. All selection
// logic is a pure function of the instance, so results never depend on
// worker count or scheduling.
type driver struct {
	reg  *oracle.Registry
	mode Method
	// names is the registry's sorted name list; it is the index space
	// of every per-oracle counter, and index() is its inverse.
	names   []string
	oracles []oracle.Oracle
	// fixed is the oracle index of a fixed single-oracle run (-1 for
	// Auto/Portfolio).
	fixed int
	// sel is the resolved selection (bands validated, thresholds
	// derived); port the name-ordered portfolio pool.
	sel  oracle.Selection
	port []int
}

// baseDriver assembles the registry-backed skeleton shared by every
// driver mode.
func baseDriver(m Method) *driver {
	d := &driver{reg: defaultRegistry, mode: m, names: defaultRegistry.Names(), fixed: -1}
	for _, name := range d.names {
		o, _ := defaultRegistry.Get(name)
		d.oracles = append(d.oracles, o)
	}
	return d
}

// fixedDrivers caches the five fixed single-oracle drivers. They hold
// no per-run state (Selection is only consulted by Auto/Portfolio), so
// one instance serves every run and goroutine — SolveNet on the batch
// hot path stays allocation-free at the dispatch layer.
var fixedDrivers struct {
	once sync.Once
	d    [Exact + 1]*driver
}

// isFixed reports whether m dispatches to one single oracle.
func isFixed(m Method) bool {
	return (m >= L1 && m <= CD) || m == Exact
}

// newDriver resolves the dispatch for one run.
func newDriver(m Method, opt Options) (*driver, error) {
	if isFixed(m) {
		fixedDrivers.once.Do(func() {
			for fm := L1; fm <= Exact; fm++ {
				if !isFixed(fm) {
					continue
				}
				d := baseDriver(fm)
				d.fixed = d.index(fm.Name())
				fixedDrivers.d[fm] = d
			}
		})
		return fixedDrivers.d[m], nil
	}
	if m != Auto && m != Portfolio {
		return nil, fmt.Errorf("router: unknown method %v (available: %v)", m, MethodNames())
	}
	d := baseDriver(m)
	sel := opt.Selection
	if sel.CriticalWeight == 0 {
		// A net is critical once pricing has at least doubled one of
		// its sink weights above the uncritical floor.
		sel.CriticalWeight = 2 * opt.WeightBase
	}
	sel, err := sel.Validate(d.reg)
	if err != nil {
		return nil, err
	}
	d.sel = sel
	if m == Portfolio {
		pool := sel.Portfolio
		if len(pool) == 0 {
			// The default pool is every registered oracle except the
			// exact tier: racing an exact search on every net would
			// dominate the run's cost (see oracle.Selection.Portfolio).
			for _, name := range d.names {
				if name != "exact" {
					pool = append(pool, name)
				}
			}
		}
		pool = append([]string(nil), pool...)
		sort.Strings(pool) // fixed name order: deterministic tie-break
		seen := make(map[int]bool, len(pool))
		for _, name := range pool {
			oi := d.index(name)
			if oi < 0 || seen[oi] {
				continue
			}
			seen[oi] = true
			d.port = append(d.port, oi)
		}
	}
	return d, nil
}

// index returns the counter index of a canonical oracle name, -1 if
// absent.
func (d *driver) index(name string) int {
	for i, n := range d.names {
		if n == name {
			return i
		}
	}
	return -1
}

// pickIdx is the Auto band selection on raw per-net timing inputs —
// shared with the incremental engine's invalidation check so both
// always agree on the selected oracle.
func (d *driver) pickIdx(ws, budgets, fastest []float64) int {
	return d.index(d.sel.Pick(ws, budgets, fastest))
}

// usesBudgets reports whether a re-solve of a net whose cached tree
// came from oracle index last could consume Instance.Budgets — the
// incremental engine's budget-drift invalidation gate.
func (d *driver) usesBudgets(last int) bool {
	if d.mode == Portfolio {
		for _, oi := range d.port {
			if d.oracles[oi].Hint().UsesBudgets {
				return true
			}
		}
		return false
	}
	return last >= 0 && d.oracles[last].Hint().UsesBudgets
}

// solve runs the driver on one instance and returns the tree, the
// index (into names) of the oracle that produced it, and — in
// Portfolio mode, which prices every candidate anyway — the winning
// tree's evaluation (nil otherwise; callers evaluate themselves).
// counts, indexed like names, is charged one per oracle invocation;
// nil skips the accounting.
func (d *driver) solve(in *nets.Instance, env *oracle.Env, counts []int64) (*nets.RTree, int, *nets.Eval, error) {
	charge := func(oi int) {
		if counts != nil {
			counts[oi]++
		}
	}
	switch d.mode {
	case Auto:
		oi := d.index(d.sel.PickInstance(in))
		charge(oi)
		tr, err := d.oracles[oi].Solve(in, env)
		return tr, oi, nil, err
	case Portfolio:
		var best *nets.RTree
		var bestEv *nets.Eval
		bestIdx, bestTotal := -1, math.Inf(1)
		for _, oi := range d.port {
			tr, err := d.oracles[oi].Solve(in, env)
			if err != nil {
				return nil, oi, nil, fmt.Errorf("portfolio %s: %w", d.names[oi], err)
			}
			charge(oi)
			ev, err := nets.Evaluate(in, tr)
			if err != nil {
				return nil, oi, nil, fmt.Errorf("portfolio %s eval: %w", d.names[oi], err)
			}
			// Strict < keeps the first (name-ordered) oracle on ties.
			if ev.Total < bestTotal {
				best, bestEv, bestIdx, bestTotal = tr, ev, oi, ev.Total
			}
		}
		if best == nil {
			return nil, -1, nil, fmt.Errorf("router: empty portfolio pool")
		}
		return best, bestIdx, bestEv, nil
	default:
		charge(d.fixed)
		tr, err := d.oracles[d.fixed].Solve(in, env)
		return tr, d.fixed, nil, err
	}
}

// Route runs the full flow on the chip with the given oracle driver.
func Route(chip *chipgen.Chip, m Method, opt Options) (*Result, error) {
	return routeWith(context.Background(), chip, m, opt, &scratchPool{})
}

// RouteCtx is Route with cancellation: the context is checked between
// waves and between per-net oracle solves, so a cancelled run returns
// ctx.Err() within roughly one net-solve latency. On the non-cancelled
// path results are bit-identical to Route.
func RouteCtx(ctx context.Context, chip *chipgen.Chip, m Method, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return routeWith(ctx, chip, m, opt, &scratchPool{})
}

// routeWith runs one cold route on a caller-provided scratch pool.
func routeWith(ctx context.Context, chip *chipgen.Chip, m Method, opt Options, pool *scratchPool) (*Result, error) {
	r, err := newRun(ctx, chip, m, opt, pool)
	if err != nil {
		return nil, err
	}
	if err := r.runWaves(); err != nil {
		return nil, err
	}
	return r.finish(), nil
}

// SolveNet runs one oracle driver standalone on a self-contained
// instance (the Tables I/II harness and the CLI use this for
// apples-to-apples comparisons on captured instances). The oracle-side
// code lives in the internal/oracle adapters; this only resolves the
// driver and derives the environment from the instance.
func SolveNet(in *nets.Instance, m Method, opt Options) (*nets.RTree, error) {
	drv, err := newDriver(m, opt)
	if err != nil {
		return nil, err
	}
	lbif := 0.0
	if d := in.C.MinDelayPerGCell(); d > 0 {
		lbif = in.DBif / d
	}
	env := oracle.Env{Core: opt.CoreOpt, PDAlpha: opt.PDAlpha, SLEps: opt.SLEps, LBif: lbif}
	tr, _, _, err := drv.solve(in, &env, nil)
	return tr, err
}

// RouteAll routes every chip of a suite with one method, returning rows
// in suite order. It exists for the Tables IV/V harness. One worker
// scratch pool is shared across all chips, so solver state is recycled
// suite-wide, not just within one chip's waves.
func RouteAll(chips []*chipgen.Chip, m Method, opt Options) ([]Metrics, error) {
	return RouteAllCtx(context.Background(), chips, m, opt)
}

// RouteAllCtx is RouteAll with cancellation; the context propagates into
// every chip's waves, so a cancelled suite run stops within one
// net-solve latency and returns ctx.Err() unwrapped.
func RouteAllCtx(ctx context.Context, chips []*chipgen.Chip, m Method, opt Options) ([]Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Metrics, len(chips))
	pool := &scratchPool{}
	for i, chip := range chips {
		r, err := routeWith(ctx, chip, m, opt, pool)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("%s/%s: %w", chip.Spec.Name, m, err)
		}
		out[i] = r.Metrics
	}
	return out, nil
}
