package router

import (
	"context"
	"fmt"

	"costdist/internal/chipgen"
	"costdist/internal/cong"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
	"costdist/internal/obs"
	"costdist/internal/sta"
)

// State is the externalized router state: everything the wave loop
// accumulates that outlives a call — per-net cached trees with their
// solve snapshots, the congestion multipliers with the delta tracker's
// reference, and the STA-derived timing state. A State is produced by
// Checkpoint() at the end of a run and consumed by RouteFrom, which
// diffs a (possibly edited) chip against it and re-solves only the
// nets the edit invalidated. io.go gives it a versioned, byte-stable
// wire form (MarshalCheckpoint/UnmarshalCheckpoint).
//
// Checkpoints are rebaselined: the per-net weight/budget baselines are
// the run's final weights and budgets, and LastCost is each tree's
// congestion cost repriced under the final multipliers. The checkpoint
// therefore asserts "this solution is converged and clean at these
// prices" — a warm start re-solves nothing until either the instance
// diff or post-resume price drift invalidates a net. That is what
// makes a zero-perturbation warm start a no-op that reproduces the
// cold result exactly.
type State struct {
	// Method is the canonical driver name of the producing run. A warm
	// start under a different method distrusts every cached tree (the
	// wrong oracle produced them) and re-solves the whole chip, while
	// still reusing the restored congestion prices.
	Method string

	// NX, NY, Layers and LayerDirs identify the routing grid the state
	// is bound to. Chips with equal dimensions and layer directions
	// share vertex and segment numbering, so trees and multiplier
	// vectors transfer between them directly.
	NX, NY    int32
	Layers    int
	LayerDirs string // "H"/"V" per layer, e.g. "HVHVHVHV"

	// Cap is the capacity vector of the routed chip's grid; RouteFrom
	// diffs it against the new chip's capacities and dirties nets whose
	// region overlaps an edit. Mult is the congestion multiplier vector
	// after the run; Ref the delta tracker's reference snapshot the
	// resumed run judges multiplier drift against. Checkpoint()
	// rebaselines Ref to Mult — like LastCost, the reference is reset
	// to the restored equilibrium so pre-checkpoint sub-tolerance
	// residue cannot re-dirty nets the checkpoint declares clean — but
	// the wire form keeps the field separate so future versions can
	// carry a true mid-run reference.
	Cap  []float32
	Mult []float32
	Ref  []float32

	// Metrics is the metric row of the producing run (Walltime is
	// dropped on the wire — the one nondeterministic field).
	Metrics Metrics

	// Nets holds one entry per net of the routed chip, in netlist
	// order.
	Nets []NetState
}

// NetState is one net's externalized state: its terminal signature
// (the diff key), the cached tree with the solve snapshot the dirty-net
// scheduler judges drift against, and the cached sink delays the STA
// replays for clean nets.
type NetState struct {
	Sig nets.PinSig
	// Weights and Budgets are the net's Lagrangean timing prices at
	// checkpoint time; they double as the last-solve baselines of the
	// restored dirty-net scheduler (checkpoints are rebaselined).
	Weights []float64
	Budgets []float64
	// Delays are the routed sink delays of the cached tree in ps.
	Delays []float64
	// LastCost is Tree's congestion cost under Mult.
	LastCost float64
	// Oracle is the registry name of the oracle that produced Tree
	// ("" when unknown — e.g. a full-engine run under a multi-oracle
	// driver); unknown provenance makes drift checks conservative.
	Oracle string
	// Tree is the cached embedded tree (nil if the net was never
	// routed).
	Tree *nets.RTree
}

// layerDirs renders a grid's per-layer preferred directions as the
// compact signature string stored in checkpoints.
func layerDirs(g *grid.Graph) string {
	b := make([]byte, len(g.Layers))
	for i := range g.Layers {
		b[i] = 'H'
		if g.Layers[i].Dir == grid.DirV {
			b[i] = 'V'
		}
	}
	return string(b)
}

// CompatibleWith reports whether the state can warm-start routing on
// the given grid: equal dimensions, layer count and directions (which
// together fix the vertex and segment numbering), and matching segment
// counts for the stored vectors.
func (st *State) CompatibleWith(g *grid.Graph) error {
	if g.NX != st.NX || g.NY != st.NY || len(g.Layers) != st.Layers {
		return fmt.Errorf("router: checkpoint grid %dx%dx%d incompatible with chip grid %dx%dx%d",
			st.NX, st.NY, st.Layers, g.NX, g.NY, len(g.Layers))
	}
	if d := layerDirs(g); d != st.LayerDirs {
		return fmt.Errorf("router: checkpoint layer directions %s incompatible with chip %s", st.LayerDirs, d)
	}
	if int(g.NumSegs()) != len(st.Cap) || len(st.Cap) != len(st.Mult) || len(st.Cap) != len(st.Ref) {
		return fmt.Errorf("router: checkpoint has %d/%d/%d cap/mult/ref segments, chip has %d",
			len(st.Cap), len(st.Mult), len(st.Ref), g.NumSegs())
	}
	return nil
}

// Checkpoint externalizes the run's state. Everything is deep-copied,
// so the State stays valid however the caller's chips and results are
// used afterwards.
func (r *runState) Checkpoint() *State {
	cpT0 := r.rec.Now()
	defer func() { r.rec.Span(obs.StageCheckpoint, -1, -1, "build", cpT0) }()
	g := r.chip.G
	nl := r.chip.NL
	st := &State{
		Method:    r.m.Name(),
		NX:        g.NX,
		NY:        g.NY,
		Layers:    len(g.Layers),
		LayerDirs: layerDirs(g),
		Cap:       append([]float32(nil), g.Cap...),
		Mult:      append([]float32(nil), r.pricer.Mult...),
		Metrics:   r.res.Metrics,
	}
	// Rebaseline the drift reference to the final multipliers (see the
	// State.Ref doc); cong.DeltaTracker.Ref stays available for callers
	// that want the raw mid-run reference.
	st.Ref = append([]float32(nil), st.Mult...)
	finalCosts := r.pricer.Costs()
	st.Nets = make([]NetState, len(nl.Nets))
	for ni, n := range nl.Nets {
		ns := NetState{
			Sig:     netSig(nl, n),
			Weights: append([]float64(nil), r.weights[ni]...),
			Budgets: append([]float64(nil), r.budgets[ni]...),
			Delays:  append([]float64(nil), r.delays[ni]...),
		}
		if tr := r.trees[ni]; tr != nil {
			ns.Tree = &nets.RTree{Steps: append([]nets.Step(nil), tr.Steps...)}
			// Rebaseline: the snapshot cost is the tree's price under the
			// final multipliers, so a resumed run starts drift accounting
			// from the restored equilibrium, not from mid-run residue.
			for _, step := range tr.Steps {
				ns.LastCost += finalCosts.ArcCost(step.Arc)
			}
			ns.Oracle = r.producingOracle(ni)
		}
		st.Nets[ni] = ns
	}
	return st
}

// producingOracle names the oracle behind net ni's cached tree: the
// scheduler's record when the run tracked one, the fixed oracle for
// single-oracle runs, "" otherwise (multi-oracle full-engine runs do
// not record per-net provenance).
func (r *runState) producingOracle(ni int) string {
	if r.inc != nil && r.inc.lastOracle[ni] >= 0 {
		return r.drv.names[r.inc.lastOracle[ni]]
	}
	if r.drv.fixed >= 0 {
		return r.drv.names[r.drv.fixed]
	}
	return ""
}

// netSig extracts the terminal signature of a netlist net.
func netSig(nl *sta.Netlist, n sta.Net) nets.PinSig {
	sig := nets.PinSig{Driver: nl.Cells[n.Driver].Pos}
	sig.Sinks = make([]geom.Pt, len(n.Sinks))
	for k, s := range n.Sinks {
		sig.Sinks[k] = nl.Cells[s].Pos
	}
	return sig
}

// RouteCheckpoint is RouteCtx returning, alongside the result, the
// run's externalized state for later warm starts.
func RouteCheckpoint(ctx context.Context, chip *chipgen.Chip, m Method, opt Options) (*Result, *State, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r, err := newRun(ctx, chip, m, opt, &scratchPool{})
	if err != nil {
		return nil, nil, err
	}
	if err := r.runWaves(); err != nil {
		return nil, nil, err
	}
	res := r.finish()
	return res, r.Checkpoint(), nil
}

// RouteFrom warm-starts routing on chip from a previous run's state:
// the checkpointed trees, multipliers and timing prices are restored,
// the chip is diffed against the checkpoint, and the first wave's work
// list is seeded with exactly the nets the diff invalidated — moved,
// added or re-pinned nets, nets without a cached tree, and nets whose
// region overlaps a capacity edit. Later waves run the ordinary
// dirty-net scheduler, so post-resume price and weight drift reprices
// reuse decisions just like mid-run waves do. A wave that re-solves
// nothing skips the Lagrangean updates (the restored equilibrium is
// already converged), which makes an unperturbed warm start a no-op
// reproducing the checkpointed result exactly.
//
// The warm run always uses the dirty-net scheduler regardless of
// opt.Incremental; a negative opt.IncrementalTol still forces every
// net dirty (a full re-solve that only reuses the restored prices).
// With opt.RepairTol ≥ 0, seeded nets whose pin signature matched at
// restore time — invalidated purely by the capacity/price diff — take
// the topology-repair rung first and only escalate to a full oracle
// solve when the repair degrades past tolerance; pin-changed and added
// nets have no usable cached tree and always solve in full.
// The returned State is the new run's checkpoint, so ECO chains can
// warm-start from warm starts.
func RouteFrom(ctx context.Context, st *State, chip *chipgen.Chip, m Method, opt Options) (*Result, *State, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if st == nil {
		return nil, nil, fmt.Errorf("router: RouteFrom needs a checkpoint state (use Route for cold starts)")
	}
	r, err := newRunFrom(ctx, st, chip, m, opt, &scratchPool{})
	if err != nil {
		return nil, nil, err
	}
	if err := r.runWaves(); err != nil {
		return nil, nil, err
	}
	res := r.finish()
	return res, r.Checkpoint(), nil
}

// newRunFrom builds a warm-started runState: a cold skeleton (which
// also computes the cold-init timing for nets the diff rejects) with
// the checkpoint's state restored on top and the first wave's dirty
// seed derived from the instance diff.
func newRunFrom(ctx context.Context, st *State, chip *chipgen.Chip, m Method, opt Options, pool *scratchPool) (*runState, error) {
	if err := st.CompatibleWith(chip.G); err != nil {
		return nil, err
	}
	// Warm starts always run the dirty-net scheduler — without it there
	// is no machinery to skip clean nets or replay their usage.
	opt.Incremental = true
	r, err := newRun(ctx, chip, m, opt, pool)
	if err != nil {
		return nil, err
	}
	r.warm = true

	// Restore chip-wide price state: the multipliers drive wave 0's
	// costs, the tracker reference resumes drift accounting.
	copy(r.pricer.Mult, st.Mult)
	r.inc.tracker.SetRef(st.Ref)

	// A method change invalidates every cached tree: the trees were
	// produced by the wrong oracle, and per-net provenance under a
	// different driver is not comparable. The restored prices are still
	// reused — they are driver-independent Lagrangean state.
	methodMatch := st.Method == m.Name()

	nl := chip.NL
	for ni, n := range nl.Nets {
		if !methodMatch || ni >= len(st.Nets) {
			continue
		}
		ns := &st.Nets[ni]
		if ns.Tree == nil || !ns.Sig.Equal(netSig(nl, n)) {
			continue // added or re-pinned net: keep the cold init, solve in wave 0
		}
		// A hand-built State with per-sink vectors shorter than the sink
		// count would panic the drift checks; treat such entries as
		// changed nets instead of restoring them (the codec rejects
		// them outright on the wire path).
		if k := len(n.Sinks); len(ns.Weights) != k || len(ns.Budgets) != k || len(ns.Delays) != k {
			continue
		}
		oi := -1
		if ns.Oracle != "" {
			oi = r.drv.index(ns.Oracle)
		}
		copy(r.weights[ni], ns.Weights)
		copy(r.budgets[ni], ns.Budgets)
		copy(r.delays[ni], ns.Delays)
		r.trees[ni] = ns.Tree
		r.inc.restoreNet(ni, ns.Weights, ns.Budgets, ns.LastCost, oi, ns.Tree)
	}

	// Capacity edits: translate changed segments into plane regions and
	// dirty every net whose candidate region overlaps one.
	seed := make([]bool, len(nl.Nets))
	if rects := cong.DiffRects(chip.G, chip.G.Cap, st.Cap); len(rects) > 0 {
		ix := nets.BuildWindowIndex(r.inc.regions)
		for _, rect := range rects {
			ix.Query(rect, func(ni int32) { seed[ni] = true })
		}
	}
	r.inc.seedDirty(seed)
	return r, nil
}
