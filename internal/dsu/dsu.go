// Package dsu implements a disjoint-set union (union-find) structure with
// path halving and union by size. The cost-distance algorithm uses it to
// redirect component ownership of graph vertices when components merge,
// so that stale ownership stamps resolve to the current active component.
package dsu

// DSU is a disjoint-set union over elements 0..n-1.
type DSU struct {
	parent []int32
	size   []int32
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{parent: make([]int32, n), size: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Reset reinitializes the structure to n singleton sets, retaining the
// backing storage of previous, larger universes. It lets one DSU be
// recycled across solver calls (core.Scratch).
func (d *DSU) Reset(n int) {
	// parent and size grow through independent appends, so their
	// capacities may differ; check each.
	if cap(d.parent) < n {
		d.parent = make([]int32, n)
	} else {
		d.parent = d.parent[:n]
	}
	if cap(d.size) < n {
		d.size = make([]int32, n)
	} else {
		d.size = d.size[:n]
	}
	for i := 0; i < n; i++ {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
}

// Len returns the number of elements (not sets).
func (d *DSU) Len() int { return len(d.parent) }

// Grow adds k new singleton elements and returns the index of the first.
func (d *DSU) Grow(k int) int32 {
	first := int32(len(d.parent))
	for i := 0; i < k; i++ {
		d.parent = append(d.parent, first+int32(i))
		d.size = append(d.size, 1)
	}
	return first
}

// Find returns the representative of x's set, applying path halving.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b and returns the surviving
// representative. If they are already joined it returns that root.
func (d *DSU) Union(a, b int32) int32 {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	return ra
}

// UnionInto merges b's set into a's set keeping a's representative as the
// root. This is used when the surviving id carries external meaning (the
// new merged component id).
func (d *DSU) UnionInto(root, other int32) {
	rr, ro := d.Find(root), d.Find(other)
	if rr == ro {
		return
	}
	d.parent[ro] = rr
	d.size[rr] += d.size[ro]
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }

// SetSize returns the size of x's set.
func (d *DSU) SetSize(x int32) int32 { return d.size[d.Find(x)] }
