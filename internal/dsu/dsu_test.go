package dsu

import (
	"math/rand/v2"
	"testing"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := int32(0); i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, d.Find(i))
		}
		if d.SetSize(i) != 1 {
			t.Fatalf("SetSize(%d) = %d", i, d.SetSize(i))
		}
	}
}

func TestUnionFind(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(2, 3)
	if d.Same(0, 2) {
		t.Fatal("0 and 2 should differ")
	}
	d.Union(1, 3)
	if !d.Same(0, 2) || !d.Same(0, 3) {
		t.Fatal("all of 0..3 should be joined")
	}
	if d.SetSize(0) != 4 {
		t.Fatalf("SetSize = %d want 4", d.SetSize(0))
	}
	if d.Same(4, 5) {
		t.Fatal("4 and 5 must stay apart")
	}
}

func TestUnionReturnsRoot(t *testing.T) {
	d := New(4)
	r := d.Union(0, 1)
	if d.Find(0) != r || d.Find(1) != r {
		t.Fatal("Union root mismatch")
	}
	if got := d.Union(0, 1); got != r {
		t.Fatal("repeated Union should return existing root")
	}
}

func TestUnionInto(t *testing.T) {
	d := New(8)
	// Build a big set rooted anywhere, then force-merge into 7.
	d.Union(0, 1)
	d.Union(1, 2)
	d.Union(2, 3)
	d.UnionInto(7, 0)
	if d.Find(0) != 7 || d.Find(3) != 7 {
		t.Fatalf("UnionInto: root = %d want 7", d.Find(0))
	}
	d.UnionInto(7, 7) // no-op on same set
	if d.SetSize(7) != 5 {
		t.Fatalf("SetSize = %d want 5", d.SetSize(7))
	}
}

func TestGrow(t *testing.T) {
	d := New(2)
	first := d.Grow(3)
	if first != 2 || d.Len() != 5 {
		t.Fatalf("Grow: first=%d len=%d", first, d.Len())
	}
	for i := int32(2); i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("grown element %d not singleton", i)
		}
	}
}

// TestAgainstNaive cross-checks random unions against a naive labeling.
func TestAgainstNaive(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewPCG(7, 9))
	d := New(n)
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for it := 0; it < 500; it++ {
		a, b := int32(rng.IntN(n)), int32(rng.IntN(n))
		d.Union(a, b)
		relabel(label[a], label[b])
		x, y := int32(rng.IntN(n)), int32(rng.IntN(n))
		if d.Same(x, y) != (label[x] == label[y]) {
			t.Fatalf("iteration %d: Same(%d,%d)=%v but labels %d,%d", it, x, y, d.Same(x, y), label[x], label[y])
		}
	}
}

func TestReset(t *testing.T) {
	d := New(4)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Grow(2)
	d.Union(4, 5)

	d.Reset(3)
	if d.Len() != 3 {
		t.Fatalf("Len after Reset = %d", d.Len())
	}
	for i := int32(0); i < 3; i++ {
		if d.Find(i) != i || d.SetSize(i) != 1 {
			t.Fatalf("element %d not singleton after Reset", i)
		}
	}
	d.UnionInto(2, 0)
	if d.Find(0) != 2 || d.SetSize(2) != 2 {
		t.Fatal("DSU unusable after Reset")
	}

	// Reset to a larger universe than ever seen.
	d.Reset(50)
	if d.Len() != 50 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := int32(0); i < 50; i++ {
		if d.Find(i) != i {
			t.Fatalf("element %d not singleton", i)
		}
	}
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 100; i++ {
		d.Union(int32(rng.IntN(50)), int32(rng.IntN(50)))
	}
	if d.SetSize(d.Find(0)) < 1 {
		t.Fatal("unexpected size")
	}
}
