package oracle_test

import (
	"reflect"
	"testing"

	"costdist/internal/chipgen"
	"costdist/internal/core"
	"costdist/internal/embed"
	"costdist/internal/geom"
	"costdist/internal/nets"
	"costdist/internal/oracle"
	"costdist/internal/pd"
	"costdist/internal/router"
	"costdist/internal/rsmt"
	"costdist/internal/sl"
)

func TestRegistryNamesAndAliases(t *testing.T) {
	reg := oracle.Default()
	want := []string{"cd", "exact", "pd", "rsmt", "sl"}
	if !reflect.DeepEqual(reg.Names(), want) {
		t.Fatalf("Names() = %v, want %v (sorted)", reg.Names(), want)
	}
	for _, name := range []string{"cd", "CD", " cd ", "rsmt", "l1", "L1", "sl", "pd", "exact"} {
		if _, ok := reg.Get(name); !ok {
			t.Fatalf("Get(%q) failed", name)
		}
	}
	if _, ok := reg.Get("dijkstra"); ok {
		t.Fatal("unknown oracle resolved")
	}
	if o, _ := reg.Get("l1"); o.Name() != "rsmt" {
		t.Fatalf("alias l1 resolved to %q", o.Name())
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := oracle.Default()
	o, _ := reg.Get("cd")
	if err := reg.Register(o); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestHints(t *testing.T) {
	reg := oracle.Default()
	slo, _ := reg.Get("sl")
	if !slo.Hint().UsesBudgets {
		t.Fatal("sl must be budget-sensitive")
	}
	for _, name := range []string{"cd", "rsmt", "pd"} {
		o, _ := reg.Get(name)
		if o.Hint().UsesBudgets {
			t.Fatalf("%s must not be budget-sensitive", name)
		}
	}
	cdo, _ := reg.Get("cd")
	rso, _ := reg.Get("rsmt")
	if cdo.Hint().Cost <= rso.Hint().Cost {
		t.Fatal("cost ranks inverted: cd must rank above rsmt")
	}
}

func TestSelectionBands(t *testing.T) {
	sel := oracle.Selection{CriticalWeight: 0.01, TightBudgetRatio: 1.5}
	if got := sel.Pick([]float64{0.001, 0.02}, nil, nil); got != "exact" {
		t.Fatalf("critical net picked %q", got)
	}
	if got := sel.Pick([]float64{0.001}, []float64{100}, []float64{90}); got != "sl" {
		t.Fatalf("budget-tight net picked %q", got)
	}
	if got := sel.Pick([]float64{0.001}, []float64{1000}, []float64{90}); got != "rsmt" {
		t.Fatalf("relaxed net picked %q", got)
	}
	// The trivial band outranks criticality: a single-sink net has a
	// unique topology, so the cheap oracle is kept however hot the
	// timing price is.
	triv := oracle.Selection{TrivialSinks: 1, CriticalWeight: 0.01}
	if got := triv.Pick([]float64{5.0}, nil, nil); got != "rsmt" {
		t.Fatalf("trivial single-sink net picked %q", got)
	}
	if got := triv.Pick([]float64{5.0, 5.0}, nil, nil); got != "exact" {
		t.Fatalf("critical two-sink net picked %q", got)
	}
	// Disabled bands fall through.
	off := oracle.Selection{}
	if got := off.Pick([]float64{1e9}, []float64{0}, []float64{1}); got != "rsmt" {
		t.Fatalf("disabled thresholds picked %q", got)
	}
	// Custom band oracles are honored.
	custom := oracle.Selection{CriticalWeight: 0.01, Critical: "pd"}
	if got := custom.Pick([]float64{0.02}, nil, nil); got != "pd" {
		t.Fatalf("custom critical oracle: got %q", got)
	}
}

func TestSelectionValidate(t *testing.T) {
	reg := oracle.Default()
	sel, err := oracle.Selection{Critical: "L1", Portfolio: []string{"CD", "l1"}}.Validate(reg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Critical != "rsmt" || sel.Tight != "sl" || sel.Relaxed != "rsmt" {
		t.Fatalf("canonicalization wrong: %+v", sel)
	}
	if !reflect.DeepEqual(sel.Portfolio, []string{"cd", "rsmt"}) {
		t.Fatalf("portfolio canonicalization wrong: %v", sel.Portfolio)
	}
	if _, err := (oracle.Selection{Tight: "nope"}).Validate(reg); err == nil {
		t.Fatal("unknown band oracle accepted")
	}
	if _, err := (oracle.Selection{Portfolio: []string{"nope"}}).Validate(reg); err == nil {
		t.Fatal("unknown portfolio oracle accepted")
	}
}

// captureInstances routes a tiny chip and returns realistic mid-flow
// instances (priced multipliers, Lagrangean weights, budgets).
func captureInstances(t *testing.T) []*nets.Instance {
	t.Helper()
	spec := chipgen.Suite(0.002)[0]
	chip, err := chipgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := router.DefaultOptions()
	opt.Waves = 2
	opt.Threads = 2
	opt.CaptureWave = 1
	res, err := router.Route(chip, router.CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Captured) < 8 {
		t.Fatalf("captured only %d instances", len(res.Captured))
	}
	return res.Captured[:8]
}

// legacySolve replicates, verbatim, the pre-refactor enum-dispatch
// routeNet/SolveNet path of internal/router, so the registry adapters
// are locked bit-for-bit against it.
func legacySolve(in *nets.Instance, m router.Method, opt router.Options) (*nets.RTree, error) {
	lbif := 0.0
	if d := in.C.MinDelayPerGCell(); d > 0 {
		lbif = in.DBif / d
	}
	if m == router.CD {
		return core.Solve(in, opt.CoreOpt)
	}
	pts := in.TermPts()
	ws := make([]float64, len(in.Sinks))
	for i, s := range in.Sinks {
		ws[i] = s.W
	}
	var topo *nets.PlaneTree
	switch m {
	case router.L1:
		topo = rsmt.Build(pts)
	case router.SL:
		var bounds []float64
		if in.Budgets != nil {
			if d := in.C.MinDelayPerGCell(); d > 0 {
				bounds = make([]float64, len(in.Sinks))
				rootPt := in.G.Pt(in.Root)
				for k := range in.Sinks {
					l1 := float64(geom.L1(rootPt, in.G.Pt(in.Sinks[k].V)))
					b := in.Budgets[k] / d
					if b < l1 {
						b = l1
					}
					bounds[k] = b
				}
			}
		}
		topo = sl.Build(pts, ws, sl.Params{Eps: opt.SLEps, Bound: bounds, LBif: lbif, Eta: in.Eta})
	case router.PD:
		topo = pd.Build(pts, ws, pd.Params{Alpha: opt.PDAlpha, LBif: lbif, Eta: in.Eta})
	}
	r, err := embed.Embed(in, topo)
	if err != nil {
		return nil, err
	}
	return r.Tree, nil
}

// A fixed single-oracle run through the registry must be bit-identical
// to the pre-refactor enum path on every oracle and instance.
func TestFixedOracleBitIdenticalToLegacyEnumPath(t *testing.T) {
	ins := captureInstances(t)
	opt := router.DefaultOptions()
	for _, m := range []router.Method{router.L1, router.SL, router.PD, router.CD} {
		for i, in := range ins {
			want, err := legacySolve(in, m, opt)
			if err != nil {
				t.Fatalf("%v/%d legacy: %v", m, i, err)
			}
			got, err := router.SolveNet(in, m, opt)
			if err != nil {
				t.Fatalf("%v/%d registry: %v", m, i, err)
			}
			if !reflect.DeepEqual(want.Steps, got.Steps) {
				t.Fatalf("%v instance %d: registry tree differs from legacy enum path", m, i)
			}
		}
	}
}

// Portfolio mode must return the best-priced tree among its pool, with
// the name-ordered tie-break making it independent of pool spelling
// order.
func TestPortfolioKeepsBestPriced(t *testing.T) {
	ins := captureInstances(t)
	opt := router.DefaultOptions()
	opt.Selection.Portfolio = []string{"sl", "cd", "l1", "pd"} // scrambled on purpose
	for i, in := range ins {
		got, err := router.SolveNet(in, router.Portfolio, opt)
		if err != nil {
			t.Fatalf("portfolio/%d: %v", i, err)
		}
		gotEv, err := nets.Evaluate(in, got)
		if err != nil {
			t.Fatal(err)
		}
		best := -1.0
		for _, m := range []router.Method{router.L1, router.SL, router.PD, router.CD} {
			tr, err := router.SolveNet(in, m, opt)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := nets.Evaluate(in, tr)
			if err != nil {
				t.Fatal(err)
			}
			if best < 0 || ev.Total < best {
				best = ev.Total
			}
		}
		if gotEv.Total > best+1e-9 {
			t.Fatalf("portfolio/%d: kept %v, best single oracle %v", i, gotEv.Total, best)
		}
	}
}

// Auto selection must route every instance through the oracle its band
// dictates.
func TestAutoMatchesExplicitBandOracle(t *testing.T) {
	ins := captureInstances(t)
	opt := router.DefaultOptions()
	reg := oracle.Default()
	sel := opt.Selection
	if sel.CriticalWeight == 0 {
		sel.CriticalWeight = 2 * opt.WeightBase
	}
	sel, err := sel.Validate(reg)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range ins {
		name := sel.PickInstance(in)
		m, ok := router.MethodByName(name)
		if !ok {
			t.Fatalf("selected unknown oracle %q", name)
		}
		want, err := router.SolveNet(in, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := router.SolveNet(in, router.Auto, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Steps, got.Steps) {
			t.Fatalf("auto/%d: tree differs from band oracle %q", i, name)
		}
	}
}

// The exact tier must never return a worse-priced tree than the CD
// heuristic it is seeded with: within budget it certifies or improves
// the CD tree, beyond budget it falls back to it verbatim.
func TestExactOracleNeverWorseThanCD(t *testing.T) {
	ins := captureInstances(t)
	opt := router.DefaultOptions()
	for i, in := range ins {
		cd, err := router.SolveNet(in, router.CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := router.SolveNet(in, router.Exact, opt)
		if err != nil {
			t.Fatalf("exact/%d: %v", i, err)
		}
		cdEv, err := nets.Evaluate(in, cd)
		if err != nil {
			t.Fatal(err)
		}
		exEv, err := nets.Evaluate(in, ex)
		if err != nil {
			t.Fatalf("exact/%d tree invalid: %v", i, err)
		}
		if exEv.Total > cdEv.Total+1e-9*cdEv.Total {
			t.Fatalf("exact/%d: %v worse than cd %v", i, exEv.Total, cdEv.Total)
		}
	}
}

// Beyond the deterministic budget (here: a net with more sinks than
// OracleLimits allows) the exact tier returns the CD tree bit-for-bit.
func TestExactOracleFallsBackToCD(t *testing.T) {
	ins := captureInstances(t)
	in := ins[0]
	// Oversize the net: replicate sinks until past the oracle budget.
	big := *in
	big.Sinks = append([]nets.Sink{}, in.Sinks...)
	g := in.G
	for i := int32(0); len(big.Sinks) <= 9; i++ {
		big.Sinks = append(big.Sinks, nets.Sink{V: g.At(i%g.NX, (i*3)%g.NY, 0), W: 0.001})
	}
	big.Win = big.DefaultWindow(6)
	opt := router.DefaultOptions()
	cd, err := router.SolveNet(&big, router.CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := router.SolveNet(&big, router.Exact, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cd.Steps, ex.Steps) {
		t.Fatal("over-budget exact solve did not fall back to the CD tree")
	}
}
