// Package oracle makes the Steiner tree oracle a first-class, pluggable
// component of the routing flow. The paper's experiments (§IV-A, Tables
// I–V) compare four oracles — the cost-distance algorithm against
// RSMT-, shallow-light- and Prim-Dijkstra-topology baselines — and the
// router previously hard-coded that choice as an enum with duplicated
// switch dispatch. Here each oracle is an adapter behind one interface,
// collected in a deterministic registry, so drivers can pick an oracle
// per net (adaptive selection) or race several on the same net
// (portfolio mode) without the router knowing any concrete algorithm.
package oracle

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"costdist/internal/core"
	"costdist/internal/embed"
	"costdist/internal/exact"
	"costdist/internal/geom"
	"costdist/internal/nets"
	"costdist/internal/obs"
	"costdist/internal/pd"
	"costdist/internal/rsmt"
	"costdist/internal/sl"
)

// Env carries the per-run oracle configuration that is not part of the
// instance itself: the CD solver options (including the per-worker
// scratch arena), the baselines' shape parameters, and the bifurcation
// penalty converted to length units for the plane-topology oracles.
// Workers build one Env each; an Env whose Core.Scratch is shared
// between concurrent solves races.
type Env struct {
	// Core configures the cost-distance oracle (§III enhancements,
	// scratch arena).
	Core core.Options
	// PDAlpha is the Prim-Dijkstra trade-off parameter; SLEps the
	// shallow-light stretch bound.
	PDAlpha float64
	SLEps   float64
	// LBif is the bifurcation penalty dbif expressed in gcell-length
	// units (dbif divided by the fastest delay per gcell), consumed by
	// the plane-topology oracles' merge penalties.
	LBif float64
	// Exact bounds the exact tier's goal-oriented search; the zero value
	// takes exact.OracleLimits(). The limits are deterministic (sinks,
	// window vertices, settled labels — never wall-clock), so the exact
	// oracle's fallback decision is identical on every run.
	Exact exact.GoalLimits
	// Ctx, when non-nil, is checked by long-running oracles (the exact
	// tier) for prompt mid-solve cancellation. Nil means "no deadline".
	Ctx context.Context
	// Rec, when non-nil, is the worker's telemetry span sink. Oracles
	// with internal phases worth attributing (the exact tier's search
	// vs its heuristic seed) record detail spans on it; recording never
	// influences the solve.
	Rec *obs.Worker
}

// Hint describes an oracle's cost and capabilities to drivers and to
// the incremental engine's invalidation rules.
type Hint struct {
	// Cost ranks the oracle's relative expense (1 = cheapest). Drivers
	// use it to prefer cheap oracles for uncritical nets; it is a rank,
	// not a runtime model.
	Cost int
	// UsesBudgets reports whether the oracle consumes Instance.Budgets.
	// The incremental engine only invalidates a cached tree on budget
	// drift when the oracle that produced it (or may replace it) is
	// budget-sensitive.
	UsesBudgets bool
	// TimingAware reports whether the oracle optimizes the weighted
	// delay term of objective (1) rather than only tree length.
	TimingAware bool
}

// Oracle is one Steiner tree algorithm: given a cost-distance instance
// it returns an embedded tree in the routing graph. Implementations
// must be stateless and safe for concurrent use; all mutable solver
// state lives in the Env (scratch arena) or on the stack.
type Oracle interface {
	// Name is the registry key, lowercase and stable ("cd", "rsmt",
	// "sl", "pd", "exact").
	Name() string
	// Hint describes cost and capabilities.
	Hint() Hint
	// Solve runs the oracle on the instance under the environment.
	Solve(in *nets.Instance, env *Env) (*nets.RTree, error)
}

// ---- Adapters ----------------------------------------------------------

// cdOracle wraps the paper's cost-distance algorithm (core + §III).
type cdOracle struct{}

func (cdOracle) Name() string { return "cd" }
func (cdOracle) Hint() Hint   { return Hint{Cost: 4, UsesBudgets: false, TimingAware: true} }
func (cdOracle) Solve(in *nets.Instance, env *Env) (*nets.RTree, error) {
	return core.Solve(in, env.Core)
}

// planeWeights extracts the per-sink delay weights for the
// topology-first baselines.
func planeWeights(in *nets.Instance) []float64 {
	ws := make([]float64, len(in.Sinks))
	for i, s := range in.Sinks {
		ws[i] = s.W
	}
	return ws
}

// embedTopo embeds a plane topology optimally into the routing graph —
// the second half of every topology-first baseline.
func embedTopo(in *nets.Instance, topo *nets.PlaneTree) (*nets.RTree, error) {
	r, err := embed.Embed(in, topo)
	if err != nil {
		return nil, err
	}
	return r.Tree, nil
}

// rsmtOracle wraps the shortest-L1 Steiner topology baseline ("L1" in
// the paper's tables), embedded optimally.
type rsmtOracle struct{}

func (rsmtOracle) Name() string { return "rsmt" }
func (rsmtOracle) Hint() Hint   { return Hint{Cost: 1, UsesBudgets: false, TimingAware: false} }
func (rsmtOracle) Solve(in *nets.Instance, env *Env) (*nets.RTree, error) {
	return embedTopo(in, rsmt.Build(in.TermPts()))
}

// slOracle wraps the shallow-light topology baseline, embedded
// optimally. It is the only oracle that consumes the per-sink delay
// budgets of the resource sharing flow (§IV-A).
type slOracle struct{}

func (slOracle) Name() string { return "sl" }
func (slOracle) Hint() Hint   { return Hint{Cost: 2, UsesBudgets: true, TimingAware: true} }
func (slOracle) Solve(in *nets.Instance, env *Env) (*nets.RTree, error) {
	// Convert ps budgets into (admissible) length bounds with the
	// fastest delay per gcell; keep at least the L1 radius so a direct
	// connection always satisfies its own bound.
	var bounds []float64
	if in.Budgets != nil {
		if d := in.C.MinDelayPerGCell(); d > 0 {
			bounds = make([]float64, len(in.Sinks))
			rootPt := in.G.Pt(in.Root)
			for k := range in.Sinks {
				l1 := float64(geom.L1(rootPt, in.G.Pt(in.Sinks[k].V)))
				b := in.Budgets[k] / d
				if b < l1 {
					b = l1
				}
				bounds[k] = b
			}
		}
	}
	topo := sl.Build(in.TermPts(), planeWeights(in),
		sl.Params{Eps: env.SLEps, Bound: bounds, LBif: env.LBif, Eta: in.Eta})
	return embedTopo(in, topo)
}

// pdOracle wraps the Prim-Dijkstra topology baseline, embedded
// optimally.
type pdOracle struct{}

func (pdOracle) Name() string { return "pd" }
func (pdOracle) Hint() Hint   { return Hint{Cost: 3, UsesBudgets: false, TimingAware: true} }
func (pdOracle) Solve(in *nets.Instance, env *Env) (*nets.RTree, error) {
	topo := pd.Build(in.TermPts(), planeWeights(in),
		pd.Params{Alpha: env.PDAlpha, LBif: env.LBif, Eta: in.Eta})
	return embedTopo(in, topo)
}

// exactOracle is the premium tier: the goal-oriented exact solver of
// internal/exact (Dijkstra-meets-Steiner label setting) seeded and
// guarded by the CD heuristic. It first runs CD, then — when the net
// fits the Env.Exact budget — tries to certify or beat that tree with
// an exact search whose incumbent is the CD objective. Any limit
// breach (too many sinks, window too large, label budget exhausted)
// falls back to the CD tree, so the oracle never fails where CD
// succeeds and never spends unbounded time. All gates are
// deterministic, keeping routed results independent of machine speed,
// run count and thread count.
type exactOracle struct{}

func (exactOracle) Name() string { return "exact" }
func (exactOracle) Hint() Hint   { return Hint{Cost: 5, UsesBudgets: false, TimingAware: true} }
func (exactOracle) Solve(in *nets.Instance, env *Env) (*nets.RTree, error) {
	cd, err := core.Solve(in, env.Core)
	if err != nil {
		return nil, err
	}
	lim := env.Exact
	if lim == (exact.GoalLimits{}) {
		lim = exact.OracleLimits()
	}
	ev, err := nets.Evaluate(in, cd)
	if err != nil {
		return nil, err
	}
	if lim.UpperBound == 0 {
		lim.UpperBound = ev.Total
	}
	// The detail span splits the exact tier's cost between the CD seed
	// (the enclosing solve span minus this) and the goal-oriented
	// search, with the outcome as the attribute.
	var searchT0 int64
	if env.Rec != nil {
		searchT0 = env.Rec.Now()
	}
	res, err := exact.SolveGoalLimits(env.Ctx, in, lim)
	if err != nil {
		if env.Ctx != nil && env.Ctx.Err() != nil {
			return nil, env.Ctx.Err() // cancellation is not a fallback case
		}
		if env.Rec != nil {
			env.Rec.DetailSpan(obs.StageSolve, -1, "exact-search:over-budget", searchT0)
		}
		return cd, nil // over budget: stay on the heuristic tier
	}
	if res.Total <= ev.Total {
		if env.Rec != nil {
			env.Rec.DetailSpan(obs.StageSolve, -1, "exact-search:adopted", searchT0)
		}
		return res.Tree, nil
	}
	// With dbif > 0 the exact reconstruction can carry a small
	// bifurcation gap above the DP value; keep whichever tree evaluates
	// better.
	if env.Rec != nil {
		env.Rec.DetailSpan(obs.StageSolve, -1, "exact-search:seed-kept", searchT0)
	}
	return cd, nil
}

// ---- Registry ----------------------------------------------------------

// aliases maps accepted alternative spellings to canonical registry
// names. "l1" is the paper's table label for the RSMT baseline.
var aliases = map[string]string{
	"l1": "rsmt",
}

// Canonical lowercases a user-supplied oracle name and resolves
// aliases; the result is the registry key.
func Canonical(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	if c, ok := aliases[n]; ok {
		return c
	}
	return n
}

// Registry is a deterministic name → Oracle map: Names() is sorted, so
// every iteration order derived from a registry is stable across runs
// and thread counts.
type Registry struct {
	byName map[string]Oracle
	names  []string
}

// NewRegistry builds a registry from the given oracles.
func NewRegistry(oracles ...Oracle) (*Registry, error) {
	r := &Registry{byName: make(map[string]Oracle, len(oracles))}
	for _, o := range oracles {
		if err := r.Register(o); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Register adds an oracle under its canonical name. Duplicate names are
// an error — silent replacement would make lookups order-dependent.
func (r *Registry) Register(o Oracle) error {
	name := Canonical(o.Name())
	if name == "" {
		return fmt.Errorf("oracle: empty name")
	}
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("oracle: duplicate name %q", name)
	}
	r.byName[name] = o
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return nil
}

// Get resolves a name (alias- and case-insensitive) to its oracle.
func (r *Registry) Get(name string) (Oracle, bool) {
	o, ok := r.byName[Canonical(name)]
	return o, ok
}

// Names returns the sorted canonical names.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Default returns a registry holding the paper's four oracles plus the
// exact tier. A fresh registry is returned each call so callers may
// extend it without aliasing each other.
func Default() *Registry {
	r, err := NewRegistry(cdOracle{}, rsmtOracle{}, slOracle{}, pdOracle{}, exactOracle{})
	if err != nil {
		panic(err) // static oracle set; unreachable
	}
	return r
}
