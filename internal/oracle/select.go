package oracle

import (
	"fmt"

	"costdist/internal/geom"
	"costdist/internal/nets"
)

// Selection configures the adaptive per-net oracle selector and the
// portfolio driver. The selector places every net into one of four
// bands from its topology freedom and its Lagrangean timing prices —
// the same inputs the oracles themselves consume — so the choice is a
// pure function of the instance and stays thread-count independent:
//
//   - trivial: at most TrivialSinks sinks — the Steiner topology is
//     (near-)unique, so every oracle degenerates to optimal path
//     embedding and the expensive one cannot add value. Routed with
//     Relaxed regardless of timing prices.
//   - critical: some sink's delay weight reached CriticalWeight — the
//     timing price is high enough that tree delay dominates the
//     objective. Routed with Critical (default "exact": the goal-
//     oriented exact tier, which certifies or beats the CD tree on
//     nets within its deterministic budget and falls back to plain CD
//     beyond it).
//   - tight: not critical, but some sink's delay budget is within
//     TightBudgetRatio of the fastest delay physically achievable for
//     that sink — there is little slack to waste on detours. Routed
//     with Tight (default "sl", the budget-aware baseline).
//   - relaxed: everything else; tree cost is all that matters. Routed
//     with Relaxed (default "rsmt", the cheapest oracle).
//
// Under heavy timing pressure the weight signal saturates (most nets
// end up with some maximally-weighted sink), which is exactly when the
// trivial band carries the selection: single-sink nets — typically the
// plurality of a netlist — have no bifurcations to optimize, so
// routing them with the cheap oracle sheds CD solves at (near-)zero
// objective cost.
type Selection struct {
	// TrivialSinks is the sink-count bound of the trivial band: a net
	// with at most this many sinks is routed with Relaxed regardless of
	// its timing prices. 0 disables the band (the router's default is
	// 1: only single-sink nets, whose topology is unique).
	TrivialSinks int
	// CriticalWeight is the delay-weight threshold of the critical
	// band. 0 means "derive from the router's weight floor" (the router
	// substitutes 2 × WeightBase, i.e. a net is critical once pricing
	// has at least doubled a sink's weight above the uncritical floor).
	CriticalWeight float64
	// TightBudgetRatio is the budget tightness threshold: a sink whose
	// delay budget is below TightBudgetRatio times its fastest
	// achievable delay makes the net budget-tight. 0 disables the band.
	TightBudgetRatio float64
	// Critical, Tight and Relaxed name the oracle of each band; empty
	// fields take the defaults cd / sl / rsmt.
	Critical, Tight, Relaxed string
	// Portfolio lists the oracle names the portfolio driver races on
	// every net; empty means "every registered oracle except the exact
	// tier" — racing an exact search on every net of a netlist would
	// dominate the run's cost, so the premium oracle must be opted into
	// the pool by listing it explicitly.
	Portfolio []string
}

// withDefaults fills empty band oracle names.
func (s Selection) withDefaults() Selection {
	if s.Critical == "" {
		s.Critical = "exact"
	}
	if s.Tight == "" {
		s.Tight = "sl"
	}
	if s.Relaxed == "" {
		s.Relaxed = "rsmt"
	}
	return s
}

// Validate resolves the band (and portfolio) oracle names against the
// registry, returning the canonical selection or an error naming the
// available set.
func (s Selection) Validate(reg *Registry) (Selection, error) {
	s = s.withDefaults()
	for _, name := range []*string{&s.Critical, &s.Tight, &s.Relaxed} {
		c := Canonical(*name)
		if _, ok := reg.Get(c); !ok {
			return s, fmt.Errorf("oracle: unknown selection oracle %q (available: %v)", *name, reg.Names())
		}
		*name = c
	}
	s.Portfolio = append([]string(nil), s.Portfolio...)
	for i, name := range s.Portfolio {
		c := Canonical(name)
		if _, ok := reg.Get(c); !ok {
			return s, fmt.Errorf("oracle: unknown portfolio oracle %q (available: %v)", name, reg.Names())
		}
		s.Portfolio[i] = c
	}
	return s, nil
}

// Pick returns the band oracle name for one net given its per-sink
// delay weights, delay budgets (ps, may be nil) and fastest achievable
// delays (ps, may be nil). It is the low-level form shared by the
// router's solve path and the incremental engine's invalidation check,
// so both always agree on the selected oracle.
func (s Selection) Pick(ws, budgets, fastest []float64) string {
	s = s.withDefaults()
	if s.TrivialSinks > 0 && len(ws) <= s.TrivialSinks {
		return s.Relaxed
	}
	if s.CriticalWeight > 0 {
		for _, w := range ws {
			if w >= s.CriticalWeight {
				return s.Critical
			}
		}
	}
	if s.TightBudgetRatio > 0 && budgets != nil && fastest != nil {
		for k, b := range budgets {
			if k < len(fastest) && b < s.TightBudgetRatio*fastest[k] {
				return s.Tight
			}
		}
	}
	return s.Relaxed
}

// PickInstance applies Pick to a standalone instance, deriving the
// fastest achievable per-sink delays from L1 distance at the fastest
// wire (the §III-C admissible bound).
func (s Selection) PickInstance(in *nets.Instance) string {
	ws := make([]float64, len(in.Sinks))
	for i, sk := range in.Sinks {
		ws[i] = sk.W
	}
	var fastest []float64
	if in.Budgets != nil {
		fastest = FastestSinkDelays(in)
	}
	return s.Pick(ws, in.Budgets, fastest)
}

// FastestSinkDelays returns, per sink, an admissible lower bound on its
// root-to-sink delay: L1 distance times the fastest delay per gcell.
func FastestSinkDelays(in *nets.Instance) []float64 {
	d := in.C.MinDelayPerGCell()
	rootPt := in.G.Pt(in.Root)
	out := make([]float64, len(in.Sinks))
	for k := range in.Sinks {
		out[k] = float64(geom.L1(rootPt, in.G.Pt(in.Sinks[k].V))) * d
	}
	return out
}
