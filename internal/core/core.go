// Package core implements the paper's primary contribution: the fast
// randomized O(log t)-approximation algorithm for cost-distance Steiner
// trees with bifurcation penalties (Algorithm 1), together with the
// practical enhancements of §III:
//
//   - §III-A discounting of existing tree components: searches traverse
//     their own component's edges at zero congestion cost and may finish
//     at any vertex of a target component;
//   - §III-B two-level heaps: one binary heap per active component plus
//     an indexed top-level heap over per-component minima, so the
//     globally minimal tentative label pops in O(log t + log n);
//   - §III-C goal-oriented (A*) searches with admissible future costs;
//   - §III-D improved embedding of new Steiner vertices along the
//     connection path;
//   - §III-E encouraging early root connections by discounting the
//     expected future penalty savings.
//
// The algorithm runs one Dijkstra per active component u under the
// sink-individual metric l_u(e) = c(e) + w(u)·d(e) (eq. 4), merges the
// first pair whose connection label (including the balanced bifurcation
// penalty b(u,v)) becomes globally minimal (eq. 5), and repeats with the
// merged component until every sink is connected to the root.
package core

import (
	"costdist/internal/geom"
	"costdist/internal/grid"
)

// Options selects the practical enhancements. The zero value is the
// plain §II algorithm; DefaultOptions enables what the paper's CD runs
// use.
type Options struct {
	// Discount enables §III-A: zero connection cost on own-component
	// edges and connections completing at any target-component vertex.
	Discount bool
	// AStar enables §III-C goal-oriented searches. Future costs are
	// recomputed against the target components alive at push time; after
	// a merge grows a target, older labels may carry slightly inflated
	// keys (documented trade-off, ablated in benchmarks).
	AStar bool
	// AStarMaxTargets disables A* for searches with more active targets
	// than this (the per-label min over targets gets too expensive).
	AStarMaxTargets int
	// ImproveSteiner enables §III-D: the new component's representative
	// is placed at the path position minimizing the estimated extension
	// cost instead of a random endpoint.
	ImproveSteiner bool
	// RootBonus enables §III-E: root connection labels are discounted by
	// the guaranteed future penalty saving η·dbif·w(u).
	RootBonus bool
	// FlatHeap replaces the two-level heap with a single global heap
	// (ablation of §III-B; results are identical, speed differs).
	FlatHeap bool
	// DialQueue backs each component's search with a monotone bucket
	// (dial) queue instead of a binary heap. The dial pops the exact
	// minimum key in O(1) amortized, but its tie order among
	// bitwise-equal keys is its own, so routes can differ from the
	// binary-heap default (both are valid solutions; the golden digests
	// pin the default). Off by default: uniform-cost waves produce huge
	// equal-key classes and the zero-cost own-component arcs of §III-A
	// defeat the classic bucket-width argument, so the dial measured no
	// faster than the heap on the chip suite. Ignored under FlatHeap.
	DialQueue bool
	// Scratch, when non-nil, supplies a reusable arena for the solver's
	// per-call state (components, heaps, label maps, ownership stamps).
	// Results are bit-identical with or without it. A Scratch must not
	// be shared between concurrent solves; Route/SolveBatch install one
	// per worker and ignore a caller-provided value.
	Scratch *Scratch
}

// DefaultOptions returns the configuration used for the paper's "CD"
// experiments: all quality-relevant enhancements on, A* off (it is a
// pure speed/quality trade toggled in the ablation benchmarks).
func DefaultOptions() Options {
	return Options{
		Discount:        true,
		AStar:           false,
		AStarMaxTargets: 12,
		ImproveSteiner:  true,
		RootBonus:       true,
	}
}

// TraceEvent describes one merge, for visualization (Figure 3) and
// debugging.
type TraceEvent struct {
	Iter   int
	ToRoot bool
	// PosU and PosV are the representative positions of the two merged
	// components; WU, WV their delay weights.
	PosU, PosV geom.Pt
	WU, WV     float64
	// Path is the vertex sequence of the new connection (may be empty
	// for coincident components).
	Path []grid.V
	// NewRep is the representative chosen for the merged component.
	NewRep geom.Pt
	// Labeled is the number of labeled vertices of the initiating search
	// at merge time (the "disk size" in Figure 3).
	Labeled int
}

// arcCode packs how a vertex was reached for path reconstruction.
const (
	codeVia  uint8 = 0xFF
	codeSeed uint8 = 0xFE
)

// comp is an active component: a subtree already built, its Dijkstra
// search state, and bookkeeping for connection candidates.
type comp struct {
	id     int32
	weight float64
	alive  bool
	isRoot bool

	rep  grid.V // representative terminal position
	bbox geom.Rect

	labels labelStore
	queue  compQueue

	// Best root-connection candidate found so far (kept out of the heap
	// because its penalty term changes when the active weight shrinks).
	rootG   float64
	rootAt  grid.V
	rootIdx int32 // window index of rootAt
	hasRoot bool

	// astar is true while this search uses future costs.
	astar bool
}

// entry is a queue element of one component's search.
type entry struct {
	g float64 // true distance label (without heuristic or penalty)
	// b is the penalty included in the key at push time (for staleness
	// checks on connect entries).
	b float64
	v grid.V
	// idx is v's dense index in the solve's routing window — the label
	// key, carried so queue pops never re-derive it by division.
	idx int32
	// target is the component id this entry would connect to, or -1 for
	// an ordinary expansion entry.
	target int32
}

// rebuildArc reconstructs the grid arc from prev to v given the stored
// code (wire type or via marker).
func rebuildArc(g *grid.Graph, prev, v grid.V, code uint8) grid.Arc {
	seg, via := g.SegBetween(prev, v)
	_, _, lp := g.XYL(prev)
	_, _, lv := g.XYL(v)
	if via {
		l := lp
		if lv < l {
			l = lv
		}
		return grid.Arc{To: v, Seg: seg, L: int8(l), WT: -1, Via: true}
	}
	return grid.Arc{To: v, Seg: seg, L: int8(lp), WT: int8(code)}
}
