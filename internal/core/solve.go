package core

import (
	"fmt"
	"math/rand/v2"

	"costdist/internal/dsu"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
	"costdist/internal/sparse"
)

// seedStream is the fixed PCG stream constant; every instance seed
// selects a state on this stream.
const seedStream = 0x9E3779B97F4A7C15

// Solve runs the cost-distance algorithm on the instance and returns the
// embedded Steiner tree.
func Solve(in *nets.Instance, opt Options) (*nets.RTree, error) {
	return SolveTraced(in, opt, nil)
}

// SolveTraced is Solve with a per-merge trace callback (used for the
// Figure 3 reproduction and debugging). The callback may be nil.
//
// When opt.Scratch is non-nil the solver runs out of that arena,
// recycling component, heap and label storage from earlier calls; the
// result is bit-identical to a scratch-free solve.
func SolveTraced(in *nets.Instance, opt Options, trace func(TraceEvent)) (*nets.RTree, error) {
	scr := opt.Scratch
	if scr == nil {
		scr = NewScratch()
	}
	return scr.solve(in, opt, trace)
}

// solve resets the arena's solver state for one instance and runs the
// merge loop.
func (scr *Scratch) solve(in *nets.Instance, opt Options, trace func(TraceEvent)) (*nets.RTree, error) {
	s := &scr.sol
	scr.release()
	// Drop instance references on return: a pooled arena must not pin
	// the last instance's graph and costs (the dominant memory of a
	// chip) across idle periods or into the next chip of a suite.
	defer func() {
		s.in, s.g, s.costs, s.trace = nil, nil, nil, nil
		s.opt = Options{}
	}()
	s.in, s.opt = in, opt
	s.g, s.costs = in.G, in.C
	s.trace = trace
	s.owner.Reset()
	s.flat.Reset()
	s.steps = s.steps[:0]
	s.activeW, s.alive, s.iter = 0, 0, 0
	s.rng = scr.reseed(in.Seed)
	s.minCost = in.C.MinCostPerGCell()
	s.minDelay = in.C.MinDelayPerGCell()

	// Root component (id 0).
	root := scr.newComp()
	root.alive, root.isRoot = true, true
	root.rep = in.Root
	root.bbox = ptRect(in.G.Pt(in.Root))
	s.comps = append(s.comps, root)
	s.owner.Put(int32(in.Root), 0)

	// Sink components, grouped by vertex; sinks at the root vertex are
	// already connected.
	if s.byVertex == nil {
		s.byVertex = make(map[grid.V]float64)
	} else {
		clear(s.byVertex)
	}
	s.order = s.order[:0]
	for _, sk := range in.Sinks {
		if sk.V == in.Root {
			continue
		}
		if _, ok := s.byVertex[sk.V]; !ok {
			s.order = append(s.order, sk.V)
		}
		s.byVertex[sk.V] += sk.W
	}
	for _, v := range s.order {
		c := scr.newComp()
		c.id = int32(len(s.comps))
		c.weight = s.byVertex[v]
		c.alive = true
		c.rep = v
		c.bbox = ptRect(in.G.Pt(v))
		s.comps = append(s.comps, c)
		s.owner.Put(int32(v), c.id)
		s.activeW += c.weight
		s.alive++
	}

	if s.sets == nil {
		s.sets = dsu.New(len(s.comps))
	} else {
		s.sets.Reset(len(s.comps))
	}
	if s.top == nil {
		s.top = heaps.NewIndexed(len(s.comps))
		s.rootTop = heaps.NewIndexed(len(s.comps))
	} else {
		s.top.Reset(len(s.comps))
		s.rootTop.Reset(len(s.comps))
	}
	for _, c := range s.comps[1:] {
		s.startSearch(c)
	}

	for s.alive > 0 {
		if err := s.step(); err != nil {
			return nil, err
		}
	}
	scr.Solves++
	// Stale label chains (settled before a vertex was claimed by a later
	// merge) can make reconstructed paths re-use existing tree edges;
	// pruning deduplicates and keeps a spanning tree, which only removes
	// congestion cost.
	return nets.PruneToTree(in, s.steps)
}

// ptRect is the degenerate bounding box of a single point.
func ptRect(p geom.Pt) geom.Rect {
	return geom.Rect{X0: p.X, Y0: p.Y, X1: p.X, Y1: p.Y}
}

type solver struct {
	scr *Scratch

	in    *nets.Instance
	opt   Options
	g     *grid.Graph
	costs *grid.Costs

	comps   []*comp
	owner   sparse.I32Map
	sets    *dsu.DSU
	top     *heaps.Indexed
	rootTop *heaps.Indexed
	flat    heaps.Lazy[flatEntry]

	activeW float64
	alive   int
	iter    int
	steps   []nets.Step
	pathBuf []grid.V

	// byVertex and order group coincident sinks during setup.
	byVertex map[grid.V]float64
	order    []grid.V

	minCost, minDelay float64
	rng               *rand.Rand
	trace             func(TraceEvent)
}

type flatEntry struct {
	comp int32
	e    entry
}

// resolveOwner returns the current alive component owning v, or -1.
func (s *solver) resolveOwner(v grid.V) int32 {
	id, ok := s.owner.Get(int32(v))
	if !ok {
		return -1
	}
	return s.sets.Find(id)
}

// bConnect is the balanced bifurcation penalty b(u,v) of eq. (5) for a
// sink-to-sink connection.
func (s *solver) bConnect(c, j *comp) float64 {
	return nets.Beta(s.in.DBif, s.in.Eta, c.weight, j.weight)
}

// bRoot is b(u, r_i) for a root connection, minus the §III-E bonus.
func (s *solver) bRoot(c *comp) float64 {
	rest := s.activeW - c.weight
	if rest < 0 {
		rest = 0
	}
	b := nets.Beta(s.in.DBif, s.in.Eta, c.weight, rest)
	if s.opt.RootBonus {
		b -= s.in.Eta * s.in.DBif * c.weight
		if b < 0 {
			b = 0
		}
	}
	return b
}

// h is the admissible future cost for component c at position p: the
// minimum over all other alive components of the geometric lower bound.
func (s *solver) h(c *comp, p geom.Pt) float64 {
	if !c.astar {
		return 0
	}
	unit := s.minCost + c.weight*s.minDelay
	best := -1.0
	for _, j := range s.comps {
		if !j.alive || j.id == c.id {
			continue
		}
		d := float64(rectDist(p, j.bbox)) * unit
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func rectDist(p geom.Pt, r geom.Rect) int64 {
	var dx, dy int64
	if p.X < r.X0 {
		dx = int64(r.X0 - p.X)
	} else if p.X > r.X1 {
		dx = int64(p.X - r.X1)
	}
	if p.Y < r.Y0 {
		dy = int64(r.Y0 - p.Y)
	} else if p.Y > r.Y1 {
		dy = int64(p.Y - r.Y1)
	}
	return dx + dy
}

// startSearch initializes component c's Dijkstra from its representative.
func (s *solver) startSearch(c *comp) {
	c.labels = s.scr.getMap()
	c.heap.Reset()
	c.hasRoot = false
	c.astar = s.opt.AStar && s.alive <= s.opt.AStarMaxTargets+1
	lab, _ := c.labels.Put(int32(c.rep))
	lab.Dist = 0
	lab.Prev = -1
	lab.Arc = codeSeed
	s.push(c, entry{g: 0, v: c.rep, target: -1})
	s.refreshTop(c)
}

// push inserts an entry into c's heap (or the flat heap) with its key.
func (s *solver) push(c *comp, e entry) {
	key := e.g + e.b
	if e.target < 0 {
		key = e.g + s.h(c, s.g.Pt(e.v))
	}
	if s.opt.FlatHeap {
		s.flat.Push(key, flatEntry{comp: c.id, e: e})
		return
	}
	c.heap.Push(key, e)
}

// refreshTop purges stale entries from c's heap and publishes its
// current minimum to the top-level heap, implementing §III-B.
func (s *solver) refreshTop(c *comp) {
	if s.opt.FlatHeap {
		return
	}
	if !c.alive || c.isRoot {
		s.top.Set(c.id, heaps.Inf)
		s.rootTop.Set(c.id, heaps.Inf)
		return
	}
	for c.heap.Len() > 0 {
		key, e := c.heap.Peek()
		fresh, repl, newKey, doRepush := s.validate(c, e, key)
		if fresh {
			break
		}
		c.heap.Pop()
		if doRepush {
			c.heap.Push(newKey, repl)
		}
	}
	if c.heap.Len() == 0 {
		s.top.Set(c.id, heaps.Inf)
	} else {
		s.top.Set(c.id, c.heap.MinKey())
	}
	s.publishRoot(c)
}

// publishRoot refreshes c's root-candidate key in the root top heap.
func (s *solver) publishRoot(c *comp) {
	if !c.alive || c.isRoot || !c.hasRoot {
		s.rootTop.Set(c.id, heaps.Inf)
		return
	}
	s.rootTop.Set(c.id, c.rootG+s.bRoot(c))
}

// validate checks whether a heap entry is current. It returns
// fresh=true when the entry can be acted on with its stored key. A
// stale entry may come back as a corrected replacement (re-push with
// newKey); repush=false means drop it.
func (s *solver) validate(c *comp, e entry, key float64) (fresh bool, repush entry, newKey float64, doRepush bool) {
	lab := c.labels.Get(int32(e.v))
	if lab == nil || e.g > lab.Dist+1e-12 {
		return false, entry{}, 0, false // superseded by a better label
	}
	if e.target < 0 {
		if lab.Perm {
			return false, entry{}, 0, false
		}
		// The vertex may have been claimed by another component since
		// this label was pushed; the expansion becomes a connection.
		own := s.resolveOwner(e.v)
		if own >= 0 && own != c.id {
			jc := s.comps[own]
			if jc.isRoot {
				if !c.hasRoot || e.g < c.rootG {
					c.rootG = e.g
					c.rootAt = e.v
					c.hasRoot = true
				}
				return false, entry{}, 0, false
			}
			b := s.bConnect(c, jc)
			return false, entry{g: e.g, v: e.v, target: own, b: b}, e.g + b, true
		}
		return true, entry{}, 0, false
	}
	j := s.sets.Find(e.target)
	if j == c.id {
		return false, entry{}, 0, false // target merged into us
	}
	jc := s.comps[j]
	if jc.isRoot {
		// Root candidates live outside the heap; convert.
		if !c.hasRoot || e.g < c.rootG {
			c.rootG = e.g
			c.rootAt = e.v
			c.hasRoot = true
		}
		return false, entry{}, 0, false
	}
	b := s.bConnect(c, jc)
	if j != e.target || e.g+b > key+1e-12 {
		// Target id or penalty changed: re-push with the current key.
		return false, entry{g: e.g, v: e.v, target: j, b: b}, e.g + b, true
	}
	return true, entry{}, 0, false
}

// step processes one global event: either settles the globally minimal
// label (expanding its search) or commits the globally minimal
// connection (merging two components).
func (s *solver) step() error {
	c, e, isRoot, ok := s.popGlobal()
	if !ok {
		return fmt.Errorf("core: no events left with %d active components (disconnected window?)", s.alive)
	}
	if isRoot {
		s.merge(c, s.comps[0].id, c.rootAt, true)
		return nil
	}
	if e.target >= 0 {
		s.merge(c, s.sets.Find(e.target), e.v, false)
		return nil
	}
	s.expand(c, e)
	return nil
}

// popGlobal returns the next valid event.
func (s *solver) popGlobal() (*comp, entry, bool, bool) {
	if s.opt.FlatHeap {
		return s.popFlat()
	}
	for {
		slot, key := s.top.Min()
		rslot, rkey := s.rootTop.Min()
		if key == heaps.Inf && rkey == heaps.Inf {
			return nil, entry{}, false, false
		}
		if rkey <= key {
			c := s.comps[rslot]
			return c, entry{}, true, true
		}
		c := s.comps[slot]
		_, e := c.heap.Pop()
		fresh, repl, newKey, doRepush := s.validate(c, e, key)
		if !fresh {
			if doRepush {
				c.heap.Push(newKey, repl)
			}
			s.refreshTop(c)
			continue
		}
		s.refreshTop(c)
		return c, e, false, true
	}
}

// popFlat is the single-heap ablation of §III-B.
func (s *solver) popFlat() (*comp, entry, bool, bool) {
	for {
		// Root candidates: scan alive components (the ablation trades
		// top-level structure for linear scans).
		bestRoot := heaps.Inf
		var bestComp *comp
		for _, c := range s.comps {
			if c.alive && !c.isRoot && c.hasRoot {
				if k := c.rootG + s.bRoot(c); k < bestRoot {
					bestRoot, bestComp = k, c
				}
			}
		}
		if s.flat.Len() == 0 {
			if bestComp != nil {
				return bestComp, entry{}, true, true
			}
			return nil, entry{}, false, false
		}
		key, fe := s.flat.Peek()
		if bestRoot <= key {
			return bestComp, entry{}, true, true
		}
		s.flat.Pop()
		if s.sets.Find(fe.comp) != fe.comp {
			continue // entry from a search that has since merged
		}
		c := s.comps[fe.comp]
		if !c.alive || c.isRoot {
			continue
		}
		fresh, repl, newKey, doRepush := s.validate(c, fe.e, key)
		if !fresh {
			if doRepush {
				s.flat.Push(newKey, flatEntry{comp: c.id, e: repl})
			}
			continue
		}
		return c, fe.e, false, true
	}
}

// expand settles e.v for component c and relaxes its outgoing arcs under
// the metric l_c = cost + w(c)·delay (eq. 4), with §III-A discounting.
func (s *solver) expand(c *comp, e entry) {
	lab := c.labels.Get(int32(e.v))
	lab.Perm = true
	fromOwn := s.resolveOwner(e.v) == c.id
	s.g.Arcs(e.v, s.in.Win, func(a grid.Arc) bool {
		to := a.To
		own := s.resolveOwner(to)
		if s.opt.Discount {
			switch {
			case own == c.id:
				// Own component: traversable at zero connection cost
				// (§III-A), but only along the component (no re-entry
				// from outside, which would close cycles).
				if fromOwn {
					s.relax(c, to, e.g+c.weight*s.costs.ArcDelay(a), e.v, a, -1)
				}
			case own >= 0:
				// Any vertex of another component completes a
				// connection (§III-A end-component discounting).
				ng := e.g + s.costs.ArcCost(a) + c.weight*s.costs.ArcDelay(a)
				s.relax(c, to, ng, e.v, a, own)
			default:
				ng := e.g + s.costs.ArcCost(a) + c.weight*s.costs.ArcDelay(a)
				s.relax(c, to, ng, e.v, a, -1)
			}
			return true
		}
		// Base §II algorithm: connections complete only at the
		// representative terminal of another component; every other
		// vertex (including own-component ones) is plain space.
		ng := e.g + s.costs.ArcCost(a) + c.weight*s.costs.ArcDelay(a)
		if own >= 0 && own != c.id && to == s.comps[own].rep {
			s.relax(c, to, ng, e.v, a, own)
			return true
		}
		s.relax(c, to, ng, e.v, a, -1)
		return true
	})
	s.refreshTop(c)
}

// relax updates the label for `to` in c's search and pushes an entry.
// target ≥ 0 marks a connection candidate into that component.
func (s *solver) relax(c *comp, to grid.V, ng float64, from grid.V, a grid.Arc, target int32) {
	lab, existed := c.labels.Put(int32(to))
	if existed && (lab.Perm || ng >= lab.Dist-1e-15) {
		return
	}
	lab.Dist = ng
	lab.Prev = int32(from)
	lab.Perm = false
	if a.Via {
		lab.Arc = codeVia
	} else {
		lab.Arc = uint8(a.WT)
	}
	if target >= 0 {
		j := s.comps[target]
		if j.isRoot {
			if !c.hasRoot || ng < c.rootG {
				c.rootG = ng
				c.rootAt = to
				c.hasRoot = true
			}
			return
		}
		s.push(c, entry{g: ng, v: to, target: target, b: s.bConnect(c, j)})
		return
	}
	s.push(c, entry{g: ng, v: to, target: -1})
}

// merge commits the connection of c to component jid at vertex p,
// reconstructs the connection path, and starts the merged search.
func (s *solver) merge(c *comp, jid int32, p grid.V, toRoot bool) {
	j := s.comps[jid]

	// Reconstruct path from p back to c's seed. When nobody traces, the
	// path lives in a recycled buffer; a trace callback may retain its
	// event, so it gets a fresh slice.
	path := s.pathBuf[:0]
	if s.trace != nil {
		path = nil
	}
	cur := p
	for {
		path = append(path, cur)
		lab := c.labels.Get(int32(cur))
		if lab == nil || lab.Arc == codeSeed {
			break
		}
		prev := grid.V(lab.Prev)
		// Own-component hops are existing tree edges; skip re-emitting.
		if !(s.resolveOwner(prev) == c.id && s.resolveOwner(cur) == c.id) {
			arc := rebuildArc(s.g, prev, cur, lab.Arc)
			s.steps = append(s.steps, nets.Step{From: prev, Arc: arc})
		}
		cur = prev
	}
	if s.trace == nil {
		s.pathBuf = path
	}

	ev := TraceEvent{
		Iter: s.iter, ToRoot: toRoot,
		PosU: s.g.Pt(c.rep), PosV: s.g.Pt(j.rep),
		WU: c.weight, WV: j.weight,
		Path:    path,
		Labeled: c.labels.Len(),
	}
	s.iter++

	nid := int32(len(s.comps))
	s.sets.Grow(1)
	s.top.Grow(1)
	s.rootTop.Grow(1)
	k := s.scr.newComp()
	k.id, k.alive = nid, true
	k.bbox = c.bbox.Union(j.bbox)
	for _, v := range path {
		k.bbox = k.bbox.Add(s.g.Pt(v))
		s.owner.PutIfAbsent(int32(v), nid)
	}
	if toRoot {
		k.isRoot = true
		k.rep = j.rep
		s.activeW -= c.weight
		s.alive--
	} else {
		k.weight = c.weight + j.weight
		k.rep = s.chooseRep(c, j, path)
		s.alive--
	}
	ev.NewRep = s.g.Pt(k.rep)

	// Deactivate the merged pair, returning their label maps to the
	// arena.
	for _, old := range [2]*comp{c, j} {
		old.alive = false
		s.scr.putMap(old.labels)
		old.labels = nil
		old.heap.Reset()
		s.refreshTop(old)
	}
	s.comps = append(s.comps, k)
	s.sets.UnionInto(nid, c.id)
	s.sets.UnionInto(nid, j.id)

	if k.isRoot {
		// Active weight changed: every root-candidate key must be
		// refreshed (they only shrink here, which lazy heaps cannot
		// absorb — the root top-level heap is exact).
		for _, cc := range s.comps {
			if cc.alive && !cc.isRoot {
				s.publishRoot(cc)
			}
		}
	} else {
		s.startSearch(k)
	}
	if s.trace != nil {
		s.trace(ev)
	}
}

// chooseRep picks the merged component's representative. Algorithm 1
// line 7 selects randomly, proportional to the delay weights, which the
// approximation proof (Lemma 2) needs. With §III-A discounting, the
// Steiner vertex is implicitly placed where future paths leave the
// component, so what remains of §III-D here is the choice of the delay
// anchor: deterministically taking the heavier terminal charges the
// pair's connection delay to the lighter side, i.e. min(w_u,w_v)·d(P),
// which is at most the randomized choice's expected 2·w_u·w_v/(w_u+w_v)
// — a strict improvement in practice that, like the paper's §III-D,
// gives up the theoretical guarantee.
func (s *solver) chooseRep(c, j *comp, path []grid.V) grid.V {
	if s.opt.ImproveSteiner {
		if c.weight >= j.weight {
			return c.rep
		}
		return j.rep
	}
	if s.rng.Float64()*(c.weight+j.weight) < c.weight {
		return c.rep
	}
	return j.rep
}
