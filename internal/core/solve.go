package core

import (
	"fmt"
	"math/rand/v2"

	"costdist/internal/dsu"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
	"costdist/internal/sparse"
)

// seedStream is the fixed PCG stream constant; every instance seed
// selects a state on this stream.
const seedStream = 0x9E3779B97F4A7C15

// Solve runs the cost-distance algorithm on the instance and returns the
// embedded Steiner tree.
func Solve(in *nets.Instance, opt Options) (*nets.RTree, error) {
	return SolveTraced(in, opt, nil)
}

// SolveTraced is Solve with a per-merge trace callback (used for the
// Figure 3 reproduction and debugging). The callback may be nil.
//
// When opt.Scratch is non-nil the solver runs out of that arena,
// recycling component, queue and label storage from earlier calls; the
// result is bit-identical to a scratch-free solve.
func SolveTraced(in *nets.Instance, opt Options, trace func(TraceEvent)) (*nets.RTree, error) {
	scr := opt.Scratch
	if scr == nil {
		scr = NewScratch()
	}
	return scr.solve(in, opt, trace)
}

// solve resets the arena's solver state for one instance and runs the
// merge loop.
func (scr *Scratch) solve(in *nets.Instance, opt Options, trace func(TraceEvent)) (*nets.RTree, error) {
	s := &scr.sol
	scr.release()
	// Drop instance references on return: a pooled arena must not pin
	// the last instance's graph and costs (the dominant memory of a
	// chip) across idle periods or into the next chip of a suite.
	defer func() {
		s.in, s.g, s.costs, s.trace = nil, nil, nil, nil
		s.opt = Options{}
	}()
	s.in, s.opt = in, opt
	s.g, s.costs = in.G, in.C
	s.trace = trace
	s.steps = s.steps[:0]
	s.activeW, s.alive, s.iter = 0, 0, 0
	s.rng = scr.reseed(in.Seed)
	s.minCost = in.C.MinCostPerGCell()
	s.minDelay = in.C.MinDelayPerGCell()

	// Dense index window over everything the solve can touch: movement is
	// confined to in.Win, and searches seed at terminals, which the
	// instance parser places inside the window (the union below is
	// defensive and free). Labels are keyed by window index so lookups
	// need no hashing and neighbor indices are one addition away.
	idxRect := in.Win.Add(in.G.Pt(in.Root))
	for _, sk := range in.Sinks {
		idxRect = idxRect.Add(in.G.Pt(sk.V))
	}
	s.win = in.G.NewWindow(idxRect)
	s.winW = idxRect.W()
	s.winWH = s.winW * idxRect.H()
	// int math: Window.Size would overflow int32 on huge windows.
	s.winSize = int(idxRect.W()) * int(idxRect.H()) * len(in.G.Layers)
	s.useSlab = s.winSize > 0 && s.winSize <= slabMaxVerts
	s.useDial = opt.DialQueue && !opt.FlatHeap
	s.useFlatOwner = int(in.G.NumV()) <= ownerFlatMaxV
	if s.useFlatOwner {
		s.flatOwner.Reset(int(in.G.NumV()))
	} else {
		s.owner.Reset()
	}
	s.flat.Reset()

	// Root component (id 0).
	root := scr.newComp()
	root.alive, root.isRoot = true, true
	root.rep = in.Root
	root.bbox = ptRect(in.G.Pt(in.Root))
	s.comps = append(s.comps, root)
	s.ownerPut(in.Root, 0)

	// Sink components, grouped by vertex (coincident sinks share one
	// component, their weights adding in input order); sinks at the root
	// vertex are already connected. The ownership stamps double as the
	// grouping index, so setup needs no scratch hash map.
	for _, sk := range in.Sinks {
		if sk.V == in.Root {
			continue
		}
		if id, ok := s.ownerGet(sk.V); ok {
			s.comps[id].weight += sk.W
			continue
		}
		c := scr.newComp()
		c.id = int32(len(s.comps))
		c.weight = sk.W
		c.alive = true
		c.rep = sk.V
		c.bbox = ptRect(in.G.Pt(sk.V))
		s.comps = append(s.comps, c)
		s.ownerPut(sk.V, c.id)
	}
	for _, c := range s.comps[1:] {
		s.activeW += c.weight
		s.alive++
	}

	if s.sets == nil {
		s.sets = dsu.New(len(s.comps))
	} else {
		s.sets.Reset(len(s.comps))
	}
	if s.top == nil {
		s.top = heaps.NewIndexed(len(s.comps))
		s.rootTop = heaps.NewIndexed(len(s.comps))
	} else {
		s.top.Reset(len(s.comps))
		s.rootTop.Reset(len(s.comps))
	}
	for _, c := range s.comps[1:] {
		s.startSearch(c)
	}

	for s.alive > 0 {
		if err := s.step(); err != nil {
			return nil, err
		}
	}
	scr.Solves++
	// Stale label chains (settled before a vertex was claimed by a later
	// merge) can make reconstructed paths re-use existing tree edges;
	// pruning deduplicates and keeps a spanning tree, which only removes
	// congestion cost.
	return nets.PruneToTree(in, s.steps)
}

// ptRect is the degenerate bounding box of a single point.
func ptRect(p geom.Pt) geom.Rect {
	return geom.Rect{X0: p.X, Y0: p.Y, X1: p.X, Y1: p.Y}
}

type solver struct {
	scr *Scratch

	in    *nets.Instance
	opt   Options
	g     *grid.Graph
	costs *grid.Costs

	comps   []*comp
	sets    *dsu.DSU
	top     *heaps.Indexed
	rootTop *heaps.Indexed
	flat    heaps.Lazy[flatEntry]

	// Vertex-ownership stamps: a flat per-graph array when the graph
	// fits ownerFlatMaxV, a hash map otherwise.
	owner        sparse.I32Map
	flatOwner    sparse.FlatI32
	useFlatOwner bool

	// win indexes every vertex the solve can touch densely; winW and
	// winWH are its x and x·y strides for O(1) neighbor index steps.
	win     grid.Window
	winW    int32
	winWH   int32
	winSize int
	useSlab bool
	useDial bool

	activeW float64
	alive   int
	iter    int
	steps   []nets.Step
	pathBuf []grid.V

	minCost, minDelay float64
	rng               *rand.Rand
	trace             func(TraceEvent)
}

type flatEntry struct {
	comp int32
	e    entry
}

func (s *solver) ownerGet(v grid.V) (int32, bool) {
	if s.useFlatOwner {
		return s.flatOwner.Get(int32(v))
	}
	return s.owner.Get(int32(v))
}

func (s *solver) ownerPut(v grid.V, id int32) {
	if s.useFlatOwner {
		s.flatOwner.Put(int32(v), id)
		return
	}
	s.owner.Put(int32(v), id)
}

func (s *solver) ownerPutIfAbsent(v grid.V, id int32) {
	if s.useFlatOwner {
		s.flatOwner.PutIfAbsent(int32(v), id)
		return
	}
	s.owner.PutIfAbsent(int32(v), id)
}

// resolveOwner returns the current alive component owning v, or -1.
func (s *solver) resolveOwner(v grid.V) int32 {
	id, ok := s.ownerGet(v)
	if !ok {
		return -1
	}
	return s.sets.Find(id)
}

// bConnect is the balanced bifurcation penalty b(u,v) of eq. (5) for a
// sink-to-sink connection.
func (s *solver) bConnect(c, j *comp) float64 {
	return nets.Beta(s.in.DBif, s.in.Eta, c.weight, j.weight)
}

// bRoot is b(u, r_i) for a root connection, minus the §III-E bonus.
func (s *solver) bRoot(c *comp) float64 {
	rest := s.activeW - c.weight
	if rest < 0 {
		rest = 0
	}
	b := nets.Beta(s.in.DBif, s.in.Eta, c.weight, rest)
	if s.opt.RootBonus {
		b -= s.in.Eta * s.in.DBif * c.weight
		if b < 0 {
			b = 0
		}
	}
	return b
}

// h is the admissible future cost for component c at position p: the
// minimum over all other alive components of the geometric lower bound.
func (s *solver) h(c *comp, p geom.Pt) float64 {
	if !c.astar {
		return 0
	}
	unit := s.minCost + c.weight*s.minDelay
	best := -1.0
	for _, j := range s.comps {
		if !j.alive || j.id == c.id {
			continue
		}
		d := float64(rectDist(p, j.bbox)) * unit
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func rectDist(p geom.Pt, r geom.Rect) int64 {
	var dx, dy int64
	if p.X < r.X0 {
		dx = int64(r.X0 - p.X)
	} else if p.X > r.X1 {
		dx = int64(p.X - r.X1)
	}
	if p.Y < r.Y0 {
		dy = int64(r.Y0 - p.Y)
	} else if p.Y > r.Y1 {
		dy = int64(p.Y - r.Y1)
	}
	return dx + dy
}

// startSearch initializes component c's Dijkstra from its representative.
func (s *solver) startSearch(c *comp) {
	c.labels = s.scr.getLabels()
	// One congestion-free gcell step under c's metric is the natural
	// dial bucket width: frontier keys then span a handful of buckets.
	c.queue.Reset(s.useDial, s.minCost+c.weight*s.minDelay)
	c.hasRoot = false
	c.astar = s.opt.AStar && s.alive <= s.opt.AStarMaxTargets+1
	idx := s.win.Index(c.rep)
	lab, _ := c.labels.Put(idx)
	lab.Dist = 0
	lab.Prev = -1
	lab.Arc = codeSeed
	s.push(c, entry{g: 0, v: c.rep, idx: idx, target: -1})
	s.refreshTop(c)
}

// push inserts an entry into c's queue (or the flat heap) with its key.
func (s *solver) push(c *comp, e entry) {
	key := e.g + e.b
	if e.target < 0 {
		key = e.g + s.h(c, s.g.Pt(e.v))
	}
	if s.opt.FlatHeap {
		s.flat.Push(key, flatEntry{comp: c.id, e: e})
		return
	}
	c.queue.Push(key, e)
}

// refreshTop purges stale entries from c's queue and publishes its
// current minimum to the top-level heap, implementing §III-B.
func (s *solver) refreshTop(c *comp) {
	if s.opt.FlatHeap {
		return
	}
	if !c.alive || c.isRoot {
		s.top.Set(c.id, heaps.Inf)
		s.rootTop.Set(c.id, heaps.Inf)
		return
	}
	for c.queue.Len() > 0 {
		key, e := c.queue.Peek()
		fresh, repl, newKey, doRepush := s.validate(c, e, key)
		if fresh {
			break
		}
		c.queue.Pop()
		if doRepush {
			c.queue.Push(newKey, repl)
		}
	}
	if c.queue.Len() == 0 {
		s.top.Set(c.id, heaps.Inf)
	} else {
		s.top.Set(c.id, c.queue.MinKey())
	}
	s.publishRoot(c)
}

// publishRoot refreshes c's root-candidate key in the root top heap.
func (s *solver) publishRoot(c *comp) {
	if !c.alive || c.isRoot || !c.hasRoot {
		s.rootTop.Set(c.id, heaps.Inf)
		return
	}
	s.rootTop.Set(c.id, c.rootG+s.bRoot(c))
}

// validate checks whether a queue entry is current. It returns
// fresh=true when the entry can be acted on with its stored key. A
// stale entry may come back as a corrected replacement (re-push with
// newKey); repush=false means drop it.
func (s *solver) validate(c *comp, e entry, key float64) (fresh bool, repush entry, newKey float64, doRepush bool) {
	lab := c.labels.Get(e.idx)
	if lab == nil || e.g > lab.Dist+1e-12 {
		return false, entry{}, 0, false // superseded by a better label
	}
	if e.target < 0 {
		if lab.Perm {
			return false, entry{}, 0, false
		}
		// The vertex may have been claimed by another component since
		// this label was pushed; the expansion becomes a connection.
		own := s.resolveOwner(e.v)
		if own >= 0 && own != c.id {
			jc := s.comps[own]
			if jc.isRoot {
				if !c.hasRoot || e.g < c.rootG {
					c.rootG = e.g
					c.rootAt = e.v
					c.rootIdx = e.idx
					c.hasRoot = true
				}
				return false, entry{}, 0, false
			}
			b := s.bConnect(c, jc)
			return false, entry{g: e.g, v: e.v, idx: e.idx, target: own, b: b}, e.g + b, true
		}
		return true, entry{}, 0, false
	}
	j := s.sets.Find(e.target)
	if j == c.id {
		return false, entry{}, 0, false // target merged into us
	}
	jc := s.comps[j]
	if jc.isRoot {
		// Root candidates live outside the queue; convert.
		if !c.hasRoot || e.g < c.rootG {
			c.rootG = e.g
			c.rootAt = e.v
			c.rootIdx = e.idx
			c.hasRoot = true
		}
		return false, entry{}, 0, false
	}
	b := s.bConnect(c, jc)
	if j != e.target || e.g+b > key+1e-12 {
		// Target id or penalty changed: re-push with the current key.
		return false, entry{g: e.g, v: e.v, idx: e.idx, target: j, b: b}, e.g + b, true
	}
	return true, entry{}, 0, false
}

// step processes one global event: either settles the globally minimal
// label (expanding its search) or commits the globally minimal
// connection (merging two components).
func (s *solver) step() error {
	c, e, isRoot, ok := s.popGlobal()
	if !ok {
		return fmt.Errorf("core: no events left with %d active components (disconnected window?)", s.alive)
	}
	if isRoot {
		s.merge(c, s.comps[0].id, c.rootAt, c.rootIdx, true)
		return nil
	}
	if e.target >= 0 {
		s.merge(c, s.sets.Find(e.target), e.v, e.idx, false)
		return nil
	}
	s.expand(c, e)
	return nil
}

// popGlobal returns the next valid event.
func (s *solver) popGlobal() (*comp, entry, bool, bool) {
	if s.opt.FlatHeap {
		return s.popFlat()
	}
	for {
		slot, key := s.top.Min()
		rslot, rkey := s.rootTop.Min()
		if key == heaps.Inf && rkey == heaps.Inf {
			return nil, entry{}, false, false
		}
		if rkey <= key {
			c := s.comps[rslot]
			return c, entry{}, true, true
		}
		c := s.comps[slot]
		_, e := c.queue.Pop()
		fresh, repl, newKey, doRepush := s.validate(c, e, key)
		if !fresh {
			if doRepush {
				c.queue.Push(newKey, repl)
			}
			s.refreshTop(c)
			continue
		}
		s.refreshTop(c)
		return c, e, false, true
	}
}

// popFlat is the single-heap ablation of §III-B.
func (s *solver) popFlat() (*comp, entry, bool, bool) {
	for {
		// Root candidates: scan alive components (the ablation trades
		// top-level structure for linear scans).
		bestRoot := heaps.Inf
		var bestComp *comp
		for _, c := range s.comps {
			if c.alive && !c.isRoot && c.hasRoot {
				if k := c.rootG + s.bRoot(c); k < bestRoot {
					bestRoot, bestComp = k, c
				}
			}
		}
		if s.flat.Len() == 0 {
			if bestComp != nil {
				return bestComp, entry{}, true, true
			}
			return nil, entry{}, false, false
		}
		key, fe := s.flat.Peek()
		if bestRoot <= key {
			return bestComp, entry{}, true, true
		}
		s.flat.Pop()
		if s.sets.Find(fe.comp) != fe.comp {
			continue // entry from a search that has since merged
		}
		c := s.comps[fe.comp]
		if !c.alive || c.isRoot {
			continue
		}
		fresh, repl, newKey, doRepush := s.validate(c, fe.e, key)
		if !fresh {
			if doRepush {
				s.flat.Push(newKey, flatEntry{comp: c.id, e: repl})
			}
			continue
		}
		return c, fe.e, false, true
	}
}

// expand settles e.v for component c and relaxes its outgoing arcs under
// the metric l_c = cost + w(c)·delay (eq. 4), with §III-A discounting.
// The directions are unrolled in the exact order grid.Arcs emits them
// (dir−, dir+, via-down, via-up): neighbor window indices come from
// stride arithmetic and each direction's label slot and congestion
// multiplier are looked up once, not per wire type.
func (s *solver) expand(c *comp, e entry) {
	lab := c.labels.Get(e.idx)
	lab.Perm = true
	fromOwn := s.resolveOwner(e.v) == c.id
	g := s.g
	x, y, l := g.XYL(e.v)
	lay := &g.Layers[l]
	win := s.in.Win
	if lay.Dir == grid.DirH {
		if x > win.X0 {
			s.relaxWire(c, &e, e.v-1, e.idx-1, g.SegH(l, y, x-1), lay, fromOwn)
		}
		if x < win.X1 {
			s.relaxWire(c, &e, e.v+1, e.idx+1, g.SegH(l, y, x), lay, fromOwn)
		}
	} else {
		if y > win.Y0 {
			s.relaxWire(c, &e, e.v-grid.V(g.NX), e.idx-s.winW, g.SegV(l, x, y-1), lay, fromOwn)
		}
		if y < win.Y1 {
			s.relaxWire(c, &e, e.v+grid.V(g.NX), e.idx+s.winW, g.SegV(l, x, y), lay, fromOwn)
		}
	}
	if l > 0 {
		s.relaxVia(c, &e, e.v-grid.V(g.NX*g.NY), e.idx-s.winWH, g.ViaSeg(l-1, x, y), l-1, fromOwn)
	}
	if int(l)+1 < len(g.Layers) {
		s.relaxVia(c, &e, e.v+grid.V(g.NX*g.NY), e.idx+s.winWH, g.ViaSeg(l, x, y), l, fromOwn)
	}
	s.refreshTop(c)
}

// relaxWire relaxes the wire move from e's vertex to `to` across seg,
// once per wire type of the layer. The per-wire-type label check and
// write sequence is exactly the historical per-arc relax, so results are
// bit-identical; only the label lookup and multiplier load are hoisted.
func (s *solver) relaxWire(c *comp, e *entry, to grid.V, toIdx, seg int32, lay *grid.Layer, fromOwn bool) {
	own := s.resolveOwner(to)
	if s.opt.Discount && own == c.id {
		// Own component: traversable at zero connection cost (§III-A),
		// but only along the component (no re-entry from outside, which
		// would close cycles).
		if !fromOwn {
			return
		}
		lab, existed := c.labels.Put(toIdx)
		for wt := range lay.Wires {
			ng := e.g + c.weight*lay.Wires[wt].DelayPerGCell
			if existed && (lab.Perm || ng >= lab.Dist-1e-15) {
				continue
			}
			lab.Dist = ng
			lab.Prev = e.idx
			lab.Perm = false
			lab.Arc = uint8(wt)
			existed = true
			s.push(c, entry{g: ng, v: to, idx: toIdx, target: -1})
		}
		return
	}
	// With §III-A discounting, any vertex of another component completes
	// a connection; the base §II algorithm connects only at its
	// representative terminal.
	tgt := int32(-1)
	if own >= 0 && own != c.id && (s.opt.Discount || to == s.comps[own].rep) {
		tgt = own
	}
	mult := float64(s.costs.Mult[seg])
	lab, existed := c.labels.Put(toIdx)
	for wt := range lay.Wires {
		w := &lay.Wires[wt]
		ng := e.g + mult*w.CostPerGCell + c.weight*w.DelayPerGCell
		if existed && (lab.Perm || ng >= lab.Dist-1e-15) {
			continue
		}
		lab.Dist = ng
		lab.Prev = e.idx
		lab.Perm = false
		lab.Arc = uint8(wt)
		existed = true
		if tgt >= 0 {
			j := s.comps[tgt]
			if j.isRoot {
				if !c.hasRoot || ng < c.rootG {
					c.rootG = ng
					c.rootAt = to
					c.rootIdx = toIdx
					c.hasRoot = true
				}
				continue
			}
			s.push(c, entry{g: ng, v: to, idx: toIdx, target: tgt, b: s.bConnect(c, j)})
			continue
		}
		s.push(c, entry{g: ng, v: to, idx: toIdx, target: -1})
	}
}

// relaxVia relaxes the via move from e's vertex to `to`; l names the
// lower layer, which owns the via's cost and delay.
func (s *solver) relaxVia(c *comp, e *entry, to grid.V, toIdx, seg int32, l int32, fromOwn bool) {
	own := s.resolveOwner(to)
	lay := &s.g.Layers[l]
	if s.opt.Discount && own == c.id {
		if !fromOwn {
			return
		}
		ng := e.g + c.weight*lay.ViaDelay
		lab, existed := c.labels.Put(toIdx)
		if existed && (lab.Perm || ng >= lab.Dist-1e-15) {
			return
		}
		lab.Dist = ng
		lab.Prev = e.idx
		lab.Perm = false
		lab.Arc = codeVia
		s.push(c, entry{g: ng, v: to, idx: toIdx, target: -1})
		return
	}
	tgt := int32(-1)
	if own >= 0 && own != c.id && (s.opt.Discount || to == s.comps[own].rep) {
		tgt = own
	}
	ng := e.g + float64(s.costs.Mult[seg])*lay.ViaCost + c.weight*lay.ViaDelay
	lab, existed := c.labels.Put(toIdx)
	if existed && (lab.Perm || ng >= lab.Dist-1e-15) {
		return
	}
	lab.Dist = ng
	lab.Prev = e.idx
	lab.Perm = false
	lab.Arc = codeVia
	if tgt >= 0 {
		j := s.comps[tgt]
		if j.isRoot {
			if !c.hasRoot || ng < c.rootG {
				c.rootG = ng
				c.rootAt = to
				c.rootIdx = toIdx
				c.hasRoot = true
			}
			return
		}
		s.push(c, entry{g: ng, v: to, idx: toIdx, target: tgt, b: s.bConnect(c, j)})
		return
	}
	s.push(c, entry{g: ng, v: to, idx: toIdx, target: -1})
}

// merge commits the connection of c to component jid at vertex p (window
// index pIdx), reconstructs the connection path, and starts the merged
// search.
func (s *solver) merge(c *comp, jid int32, p grid.V, pIdx int32, toRoot bool) {
	j := s.comps[jid]

	// Reconstruct path from p back to c's seed. When nobody traces, the
	// path lives in a recycled buffer; a trace callback may retain its
	// event, so it gets a fresh slice.
	path := s.pathBuf[:0]
	if s.trace != nil {
		path = nil
	}
	cur, curIdx := p, pIdx
	for {
		path = append(path, cur)
		lab := c.labels.Get(curIdx)
		if lab == nil || lab.Arc == codeSeed {
			break
		}
		prevIdx := lab.Prev
		prev := s.win.Vertex(prevIdx)
		// Own-component hops are existing tree edges; skip re-emitting.
		if !(s.resolveOwner(prev) == c.id && s.resolveOwner(cur) == c.id) {
			arc := rebuildArc(s.g, prev, cur, lab.Arc)
			s.steps = append(s.steps, nets.Step{From: prev, Arc: arc})
		}
		cur, curIdx = prev, prevIdx
	}
	if s.trace == nil {
		s.pathBuf = path
	}

	ev := TraceEvent{
		Iter: s.iter, ToRoot: toRoot,
		PosU: s.g.Pt(c.rep), PosV: s.g.Pt(j.rep),
		WU: c.weight, WV: j.weight,
		Path:    path,
		Labeled: c.labels.Len(),
	}
	s.iter++

	nid := int32(len(s.comps))
	s.sets.Grow(1)
	s.top.Grow(1)
	s.rootTop.Grow(1)
	k := s.scr.newComp()
	k.id, k.alive = nid, true
	k.bbox = c.bbox.Union(j.bbox)
	for _, v := range path {
		k.bbox = k.bbox.Add(s.g.Pt(v))
		s.ownerPutIfAbsent(v, nid)
	}
	if toRoot {
		k.isRoot = true
		k.rep = j.rep
		s.activeW -= c.weight
		s.alive--
	} else {
		k.weight = c.weight + j.weight
		k.rep = s.chooseRep(c, j, path)
		s.alive--
	}
	ev.NewRep = s.g.Pt(k.rep)

	// Deactivate the merged pair, returning their label stores to the
	// arena.
	for _, old := range [2]*comp{c, j} {
		old.alive = false
		s.scr.putLabels(old.labels)
		old.labels = labelStore{}
		old.queue.Clear()
		s.refreshTop(old)
	}
	s.comps = append(s.comps, k)
	s.sets.UnionInto(nid, c.id)
	s.sets.UnionInto(nid, j.id)

	if k.isRoot {
		// Active weight changed: every root-candidate key must be
		// refreshed (they only shrink here, which lazy heaps cannot
		// absorb — the root top-level heap is exact).
		for _, cc := range s.comps {
			if cc.alive && !cc.isRoot {
				s.publishRoot(cc)
			}
		}
	} else {
		s.startSearch(k)
	}
	if s.trace != nil {
		s.trace(ev)
	}
}

// chooseRep picks the merged component's representative. Algorithm 1
// line 7 selects randomly, proportional to the delay weights, which the
// approximation proof (Lemma 2) needs. With §III-A discounting, the
// Steiner vertex is implicitly placed where future paths leave the
// component, so what remains of §III-D here is the choice of the delay
// anchor: deterministically taking the heavier terminal charges the
// pair's connection delay to the lighter side, i.e. min(w_u,w_v)·d(P),
// which is at most the randomized choice's expected 2·w_u·w_v/(w_u+w_v)
// — a strict improvement in practice that, like the paper's §III-D,
// gives up the theoretical guarantee.
func (s *solver) chooseRep(c, j *comp, path []grid.V) grid.V {
	if s.opt.ImproveSteiner {
		if c.weight >= j.weight {
			return c.rep
		}
		return j.rep
	}
	if s.rng.Float64()*(c.weight+j.weight) < c.weight {
		return c.rep
	}
	return j.rep
}
