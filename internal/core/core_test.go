package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/dly"
	"costdist/internal/embed"
	"costdist/internal/exact"
	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
	"costdist/internal/rsmt"
)

func newGraph(nx, ny int32, nLayers int) (*grid.Graph, *grid.Costs) {
	tech := dly.DefaultTech(nLayers)
	g := grid.New(nx, ny, tech.BuildLayers(), tech.GCellUM)
	return g, grid.NewCosts(g)
}

func randInstance(rng *rand.Rand, g *grid.Graph, c *grid.Costs, nSinks int, dbif float64) *nets.Instance {
	in := &nets.Instance{
		G: g, C: c,
		Root: g.At(rng.Int32N(g.NX), rng.Int32N(g.NY), 0),
		DBif: dbif, Eta: 0.25,
		Win:  g.FullWindow(),
		Seed: rng.Uint64(),
	}
	for i := 0; i < nSinks; i++ {
		// Weights in the balanced regime of timing-constrained global
		// routing: the weighted delay per gcell is comparable to the
		// congestion cost per gcell (Lagrangean prices equalize them).
		in.Sinks = append(in.Sinks, nets.Sink{
			V: g.At(rng.Int32N(g.NX), rng.Int32N(g.NY), 0),
			W: (0.05 + rng.Float64()*2) * 0.02,
		})
	}
	return in
}

func dijkstraDist(g *grid.Graph, c *grid.Costs, w float64, from, to grid.V) float64 {
	dist := map[grid.V]float64{from: 0}
	var h heaps.Lazy[grid.V]
	h.Push(0, from)
	for h.Len() > 0 {
		k, v := h.Pop()
		if k > dist[v] {
			continue
		}
		if v == to {
			return k
		}
		g.Arcs(v, g.FullWindow(), func(a grid.Arc) bool {
			nd := k + c.ArcCost(a) + w*c.ArcDelay(a)
			if d, ok := dist[a.To]; !ok || nd < d {
				dist[a.To] = nd
				h.Push(nd, a.To)
			}
			return true
		})
	}
	return math.Inf(1)
}

func allOptionSets() map[string]Options {
	return map[string]Options{
		"default":    DefaultOptions(),
		"base":       {},
		"discount":   {Discount: true},
		"flat":       {Discount: true, ImproveSteiner: true, RootBonus: true, FlatHeap: true},
		"astar":      {Discount: true, AStar: true, AStarMaxTargets: 16, RootBonus: true},
		"no-improve": {Discount: true, RootBonus: true},
	}
}

func TestSolveValidAcrossOptions(t *testing.T) {
	g, c := newGraph(24, 24, 5)
	rng := rand.New(rand.NewPCG(7, 7))
	for name, opt := range allOptionSets() {
		for it := 0; it < 15; it++ {
			n := 1 + rng.IntN(20)
			in := randInstance(rng, g, c, n, 4.0)
			tr, err := Solve(in, opt)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if _, err := nets.Evaluate(in, tr); err != nil {
				t.Fatalf("%s n=%d: invalid tree: %v", name, n, err)
			}
		}
	}
}

func TestSingleSinkIsShortestPath(t *testing.T) {
	g, c := newGraph(16, 16, 4)
	rng := rand.New(rand.NewPCG(3, 9))
	for _, opt := range []Options{DefaultOptions(), {}} {
		for it := 0; it < 10; it++ {
			in := randInstance(rng, g, c, 1, 0)
			tr, err := Solve(in, opt)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := nets.Evaluate(in, tr)
			if err != nil {
				t.Fatal(err)
			}
			want := dijkstraDist(g, c, in.Sinks[0].W, in.Sinks[0].V, in.Root)
			if math.Abs(ev.Total-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("single sink: %v want %v", ev.Total, want)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	g, c := newGraph(20, 20, 4)
	rng := rand.New(rand.NewPCG(5, 1))
	in := randInstance(rng, g, c, 12, 3.0)
	tr1, err := Solve(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Solve(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1.Steps) != len(tr2.Steps) {
		t.Fatalf("non-deterministic: %d vs %d steps", len(tr1.Steps), len(tr2.Steps))
	}
	for i := range tr1.Steps {
		if tr1.Steps[i] != tr2.Steps[i] {
			t.Fatalf("non-deterministic at step %d", i)
		}
	}
}

func TestApproximationAgainstExact(t *testing.T) {
	// Empirical check of the O(log t) guarantee: on small instances the
	// CD tree must stay within a small constant of the exact lower
	// bound. The theory gives O(log t); on these sizes the observed
	// ratio is near 1.
	g, c := newGraph(9, 9, 3)
	rng := rand.New(rand.NewPCG(31, 41))
	worst, sum, cnt := 0.0, 0.0, 0
	for it := 0; it < 25; it++ {
		n := 2 + rng.IntN(4)
		in := randInstance(rng, g, c, n, 3.0)
		tr, err := Solve(in, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ev, err := nets.Evaluate(in, tr)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := exact.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Total < ex.LowerBound-1e-6*math.Max(1, ex.LowerBound) {
			t.Fatalf("CD %v below certified lower bound %v", ev.Total, ex.LowerBound)
		}
		ratio := ev.Total / ex.LowerBound
		if ratio > worst {
			worst = ratio
		}
		sum += ratio
		cnt++
	}
	if worst > 2.0 {
		t.Fatalf("worst CD/OPT ratio %v too large for t ≤ 5 (O(log t) bound)", worst)
	}
	if avg := sum / float64(cnt); avg > 1.3 {
		t.Fatalf("average CD/OPT ratio %v too large", avg)
	}
}

func TestDegenerateInstances(t *testing.T) {
	g, c := newGraph(8, 8, 3)
	root := g.At(3, 3, 0)
	cases := []struct {
		name  string
		sinks []nets.Sink
	}{
		{"no sinks", nil},
		{"sink at root", []nets.Sink{{V: root, W: 2}}},
		{"all at root", []nets.Sink{{V: root, W: 2}, {V: root, W: 1}}},
		{"duplicate vertices", []nets.Sink{{V: g.At(6, 6, 0), W: 1}, {V: g.At(6, 6, 0), W: 3}}},
		{"zero weights", []nets.Sink{{V: g.At(1, 1, 0), W: 0}, {V: g.At(6, 2, 0), W: 0}}},
		{"mixed", []nets.Sink{{V: root, W: 1}, {V: g.At(0, 7, 0), W: 2}, {V: g.At(0, 7, 0), W: 0.5}}},
	}
	for _, tc := range cases {
		for name, opt := range allOptionSets() {
			in := &nets.Instance{G: g, C: c, Root: root, Sinks: tc.sinks,
				DBif: 2, Eta: 0.25, Win: g.FullWindow(), Seed: 9}
			tr, err := Solve(in, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, name, err)
			}
			if _, err := nets.Evaluate(in, tr); err != nil {
				t.Fatalf("%s/%s: %v", tc.name, name, err)
			}
		}
	}
}

func TestAvoidsCongestion(t *testing.T) {
	g, c := newGraph(10, 10, 2)
	for y := int32(0); y < 9; y++ {
		c.Mult[g.SegH(0, y, 4)] = 50
	}
	in := &nets.Instance{G: g, C: c, Root: g.At(0, 0, 0),
		Sinks: []nets.Sink{{V: g.At(9, 0, 0), W: 0.01}},
		Win:   g.FullWindow(), Seed: 1}
	tr, err := Solve(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range tr.Steps {
		if !st.Arc.Via && c.Mult[st.Arc.Seg] > 1 {
			t.Fatalf("CD used priced segment")
		}
	}
}

func TestCriticalNetClimbsLayers(t *testing.T) {
	g, c := newGraph(30, 4, 8)
	mk := func(w float64) *nets.Instance {
		return &nets.Instance{G: g, C: c, Root: g.At(0, 0, 0),
			Sinks: []nets.Sink{{V: g.At(29, 0, 0), W: w}},
			Win:   g.FullWindow(), Seed: 2}
	}
	maxLayer := func(tr *nets.RTree) int32 {
		var m int32
		for _, st := range tr.Steps {
			_, _, l := g.XYL(st.Arc.To)
			if l > m {
				m = l
			}
		}
		return m
	}
	slow, err := Solve(mk(0), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Solve(mk(100), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if maxLayer(slow) >= maxLayer(fast) {
		t.Fatalf("critical net did not climb: %d vs %d", maxLayer(slow), maxLayer(fast))
	}
}

func TestFlatHeapMatchesTwoLevel(t *testing.T) {
	// §III-B is a pure data-structure change: identical merge decisions.
	g, c := newGraph(18, 18, 4)
	rng := rand.New(rand.NewPCG(13, 17))
	twoLevel := Options{Discount: true, ImproveSteiner: true, RootBonus: true}
	flat := twoLevel
	flat.FlatHeap = true
	for it := 0; it < 10; it++ {
		in := randInstance(rng, g, c, 2+rng.IntN(10), 3.0)
		tr1, err := Solve(in, twoLevel)
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Solve(in, flat)
		if err != nil {
			t.Fatal(err)
		}
		ev1, err := nets.Evaluate(in, tr1)
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := nets.Evaluate(in, tr2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev1.Total-ev2.Total) > 1e-6*math.Max(1, ev1.Total) {
			t.Fatalf("flat heap diverged: %v vs %v", ev2.Total, ev1.Total)
		}
	}
}

func TestTraceEventsCoverMerges(t *testing.T) {
	g, c := newGraph(16, 16, 3)
	rng := rand.New(rand.NewPCG(19, 23))
	in := randInstance(rng, g, c, 5, 2.0)
	var events []TraceEvent
	_, err := SolveTraced(in, DefaultOptions(), func(ev TraceEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct sink vertices each need exactly one merge.
	distinct := map[grid.V]bool{}
	for _, s := range in.Sinks {
		if s.V != in.Root {
			distinct[s.V] = true
		}
	}
	if len(events) != len(distinct) {
		t.Fatalf("%d merges for %d distinct sinks", len(events), len(distinct))
	}
	roots := 0
	for i, ev := range events {
		if ev.Iter != i {
			t.Fatalf("iteration numbering broken: %d at %d", ev.Iter, i)
		}
		if ev.ToRoot {
			roots++
		}
	}
	if roots == 0 {
		t.Fatal("no root connection traced")
	}
	if !events[len(events)-1].ToRoot {
		t.Fatal("last merge must reach the root")
	}
}

func TestDiscountImprovesOrMatchesQuality(t *testing.T) {
	// §III-A "significantly improves connection costs": check the
	// aggregate over instances (individual instances may tie).
	g, c := newGraph(24, 24, 4)
	rng := rand.New(rand.NewPCG(29, 31))
	var with, without float64
	for it := 0; it < 20; it++ {
		in := randInstance(rng, g, c, 12, 0)
		tr1, err := Solve(in, Options{Discount: true, RootBonus: true})
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Solve(in, Options{RootBonus: true})
		if err != nil {
			t.Fatal(err)
		}
		ev1, err := nets.Evaluate(in, tr1)
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := nets.Evaluate(in, tr2)
		if err != nil {
			t.Fatal(err)
		}
		with += ev1.Total
		without += ev2.Total
	}
	if with > without*1.02 {
		t.Fatalf("discounting hurt aggregate quality: %v vs %v", with, without)
	}
}

func TestCDCompetitiveWithEmbeddedRSMT(t *testing.T) {
	// The paper's headline: CD wins on larger instances under congestion
	// pricing. Weights follow the Lagrangean-relaxation profile of
	// timing-constrained global routing: most sinks carry (near-)zero
	// criticality, a few are critical.
	g, c := newGraph(32, 32, 5)
	rng := rand.New(rand.NewPCG(37, 41))
	for i := range c.Mult {
		if rng.IntN(3) == 0 {
			c.Mult[i] = 1 + 6*rng.Float32()
		}
	}
	var cd, l1 float64
	for it := 0; it < 12; it++ {
		in := randInstance(rng, g, c, 16, 4.0)
		for i := range in.Sinks {
			if rng.IntN(5) == 0 {
				in.Sinks[i].W = 0.01 + 0.05*rng.Float64() // critical
			} else {
				in.Sinks[i].W = 0.0005 * rng.Float64()
			}
		}
		tr, err := Solve(in, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ev, err := nets.Evaluate(in, tr)
		if err != nil {
			t.Fatal(err)
		}
		er, err := embed.Embed(in, rsmt.Build(in.TermPts()))
		if err != nil {
			t.Fatal(err)
		}
		evL1, err := nets.Evaluate(in, er.Tree)
		if err != nil {
			t.Fatal(err)
		}
		cd += ev.Total
		l1 += evL1.Total
	}
	// This profile is far harsher than routing reality (every net has
	// multiple critical sinks); the authoritative comparison is the
	// Table I/II harness on router-generated instances. Here we only
	// bound the gap.
	if cd > l1*1.5 {
		t.Fatalf("CD aggregate %v much worse than embedded RSMT %v", cd, l1)
	}
	t.Logf("aggregate objective: CD %.1f vs L1 %.1f (ratio %.3f)", cd, l1, cd/l1)
}

func TestCDBoundedOnAdversarialWeights(t *testing.T) {
	// Uniform moderate weights on all sinks of a scattered net is the
	// regime where greedy pairwise merging pays its approximation
	// factor; the guarantee is O(log t)·OPT, so the ratio to any
	// heuristic must stay bounded by a small constant, not explode.
	g, c := newGraph(32, 32, 5)
	rng := rand.New(rand.NewPCG(97, 13))
	var cd, l1 float64
	for it := 0; it < 8; it++ {
		in := randInstance(rng, g, c, 16, 0)
		tr, err := Solve(in, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ev, err := nets.Evaluate(in, tr)
		if err != nil {
			t.Fatal(err)
		}
		er, err := embed.Embed(in, rsmt.Build(in.TermPts()))
		if err != nil {
			t.Fatal(err)
		}
		evL1, err := nets.Evaluate(in, er.Tree)
		if err != nil {
			t.Fatal(err)
		}
		cd += ev.Total
		l1 += evL1.Total
	}
	if cd > l1*3 {
		t.Fatalf("CD aggregate %v beyond O(log t) territory vs %v", cd, l1)
	}
	t.Logf("adversarial regime: CD %.1f vs L1 %.1f (ratio %.3f)", cd, l1, cd/l1)
}

func TestDialQueueTieFreeBitIdentity(t *testing.T) {
	// All three queue backends — the two-level lazy heap, the flat
	// global heap and the dial queue — pop the exact minimum key, so on
	// a tie-free instance they must make identical decisions down to the
	// last step. Random congestion multipliers make bitwise-equal keys
	// (the one degree of freedom where backends legitimately differ, see
	// Options.DialQueue) vanishingly unlikely; a divergence here is a
	// real ordering bug, not a tie artifact.
	g, c := newGraph(20, 20, 4)
	rng := rand.New(rand.NewPCG(29, 31))
	for i := range c.Mult {
		c.Mult[i] = 1 + rng.Float32()*2
	}
	base := Options{Discount: true, ImproveSteiner: true, RootBonus: true}
	flat := base
	flat.FlatHeap = true
	dial := base
	dial.DialQueue = true
	for it := 0; it < 12; it++ {
		in := randInstance(rng, g, c, 2+rng.IntN(12), 3.0)
		trBase, err := Solve(in, base)
		if err != nil {
			t.Fatal(err)
		}
		for name, opt := range map[string]Options{"flat": flat, "dial": dial} {
			tr, err := Solve(in, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tr.Steps) != len(trBase.Steps) {
				t.Fatalf("it %d: %s tree has %d steps, two-level %d", it, name, len(tr.Steps), len(trBase.Steps))
			}
			for s := range tr.Steps {
				if tr.Steps[s] != trBase.Steps[s] {
					t.Fatalf("it %d: %s diverged from two-level at step %d: %+v vs %+v",
						it, name, s, tr.Steps[s], trBase.Steps[s])
				}
			}
		}
	}
}

func TestDialQueueDeterministicAndValid(t *testing.T) {
	// On real routing instances (uniform costs, massive key ties) the
	// dial's tie order is its own: results may differ from the heap's
	// but must be valid trees and bit-reproducible run to run.
	g, c := newGraph(24, 24, 5)
	rng := rand.New(rand.NewPCG(41, 43))
	opt := DefaultOptions()
	opt.DialQueue = true
	scr := NewScratch()
	optScr := opt
	optScr.Scratch = scr
	for it := 0; it < 10; it++ {
		in := randInstance(rng, g, c, 1+rng.IntN(16), 4.0)
		tr1, err := Solve(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nets.Evaluate(in, tr1); err != nil {
			t.Fatalf("it %d: invalid dial tree: %v", it, err)
		}
		tr2, err := Solve(in, optScr)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr1.Steps) != len(tr2.Steps) {
			t.Fatalf("it %d: dial non-deterministic: %d vs %d steps", it, len(tr1.Steps), len(tr2.Steps))
		}
		for s := range tr1.Steps {
			if tr1.Steps[s] != tr2.Steps[s] {
				t.Fatalf("it %d: dial non-deterministic at step %d", it, s)
			}
		}
	}
}
