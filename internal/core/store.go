package core

import (
	"costdist/internal/heaps"
	"costdist/internal/sparse"
)

// slabMaxVerts caps the routing-window size (in vertices) for which a
// component's labels live in a dense generation-stamped array
// (sparse.LabelSlab, 24 B/vertex) instead of a hash map. Most nets'
// windows fit; huge windows fall back to the map to bound arena memory.
const slabMaxVerts = 1 << 16

// ownerFlatMaxV caps the graph size (in vertices) for which the
// vertex-ownership stamps live in a flat per-graph array (8 B/vertex per
// arena) instead of a hash map.
const ownerFlatMaxV = 1 << 25

// labelStore is a component's label container: a dense slab when the
// solve's window fits slabMaxVerts, a hash map otherwise. Both are keyed
// by dense window indices and behave identically; only the lookup cost
// differs. The zero value marks "no labels attached".
type labelStore struct {
	slab *sparse.LabelSlab
	m    *sparse.Map
}

func (ls labelStore) Get(i int32) *sparse.Label {
	if ls.slab != nil {
		return ls.slab.Get(i)
	}
	return ls.m.Get(i)
}

func (ls labelStore) Put(i int32) (*sparse.Label, bool) {
	if ls.slab != nil {
		return ls.slab.Put(i)
	}
	return ls.m.Put(i)
}

func (ls labelStore) Len() int {
	if ls.slab != nil {
		return ls.slab.Len()
	}
	if ls.m != nil {
		return ls.m.Len()
	}
	return 0
}

// compQueue is a component's search queue: a dial (bucket) queue under
// Options.DialQueue, the lazy binary heap otherwise (the default; the
// golden digests pin its results). Both pop the exact minimum key; only
// the tie order among bitwise-equal keys differs, so the dial produces
// equally valid but not bit-identical routes.
type compQueue struct {
	useDial bool
	lazy    heaps.Lazy[entry]
	dial    heaps.Dial[entry]
}

// Reset empties the queue and selects the backend; width is the dial
// bucket width (one typical arc cost under the component's metric).
func (q *compQueue) Reset(useDial bool, width float64) {
	q.useDial = useDial
	if useDial {
		q.dial.Reset(width)
	} else {
		q.lazy.Reset()
	}
}

// Clear empties the queue, keeping the backend and width.
func (q *compQueue) Clear() {
	q.lazy.Reset()
	q.dial.Clear()
}

func (q *compQueue) Len() int {
	if q.useDial {
		return q.dial.Len()
	}
	return q.lazy.Len()
}

func (q *compQueue) Push(key float64, e entry) {
	if q.useDial {
		q.dial.Push(key, e)
	} else {
		q.lazy.Push(key, e)
	}
}

func (q *compQueue) Peek() (float64, entry) {
	if q.useDial {
		return q.dial.Peek()
	}
	return q.lazy.Peek()
}

func (q *compQueue) Pop() (float64, entry) {
	if q.useDial {
		return q.dial.Pop()
	}
	return q.lazy.Pop()
}

func (q *compQueue) MinKey() float64 {
	if q.useDial {
		return q.dial.MinKey()
	}
	return q.lazy.MinKey()
}
