package core

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"costdist/internal/geom"
	"costdist/internal/nets"
)

// TestScratchBitIdentical reuses one arena across a stream of instances
// (all option sets, varying sizes, including randomized chooseRep) and
// requires every tree to match a fresh, scratch-free solve step for
// step.
func TestScratchBitIdentical(t *testing.T) {
	g, c := newGraph(24, 24, 5)
	for name, opt := range allOptionSets() {
		scr := NewScratch()
		rng := rand.New(rand.NewPCG(41, 43))
		for it := 0; it < 25; it++ {
			in := randInstance(rng, g, c, 1+rng.IntN(24), 4.0)
			want, err := Solve(in, opt)
			if err != nil {
				t.Fatalf("%s it=%d fresh: %v", name, it, err)
			}
			scrOpt := opt
			scrOpt.Scratch = scr
			got, err := Solve(in, scrOpt)
			if err != nil {
				t.Fatalf("%s it=%d scratch: %v", name, it, err)
			}
			if !reflect.DeepEqual(want.Steps, got.Steps) {
				t.Fatalf("%s it=%d: scratch solve diverged (%d vs %d steps)",
					name, it, len(want.Steps), len(got.Steps))
			}
		}
		if scr.Solves != 25 {
			t.Fatalf("%s: Solves = %d, want 25", name, scr.Solves)
		}
	}
}

// TestScratchTraceMatches checks that traced solves through a reused
// arena emit the same merge events, and that retained trace events stay
// valid after later solves (paths must not alias recycled buffers).
func TestScratchTraceMatches(t *testing.T) {
	g, c := newGraph(20, 20, 4)
	rng := rand.New(rand.NewPCG(8, 15))
	scr := NewScratch()
	opt := DefaultOptions()
	for it := 0; it < 10; it++ {
		in := randInstance(rng, g, c, 12, 4.0)
		var fresh, reused []TraceEvent
		if _, err := SolveTraced(in, opt, func(e TraceEvent) { fresh = append(fresh, e) }); err != nil {
			t.Fatal(err)
		}
		scrOpt := opt
		scrOpt.Scratch = scr
		if _, err := SolveTraced(in, scrOpt, func(e TraceEvent) { reused = append(reused, e) }); err != nil {
			t.Fatal(err)
		}
		// Solve something else through the arena, then compare the
		// retained events: a pooled path buffer would now be clobbered.
		if _, err := Solve(randInstance(rng, g, c, 9, 4.0), scrOpt); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("it=%d: trace events diverged under scratch reuse", it)
		}
	}
}

// TestScratchAfterError verifies an arena survives a failed solve
// (disconnected window) and keeps producing correct results.
func TestScratchAfterError(t *testing.T) {
	g, c := newGraph(24, 24, 4)
	rng := rand.New(rand.NewPCG(5, 6))
	scr := NewScratch()
	opt := DefaultOptions()
	opt.Scratch = scr

	// The window caps movement above X1/Y1, so a root strictly outside
	// it is unreachable from a sink inside it.
	bad := randInstance(rng, g, c, 6, 4.0)
	bad.Root = g.At(20, 20, 0)
	bad.Sinks = []nets.Sink{{V: g.At(0, 0, 0), W: 0.01}}
	bad.Win = geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}
	if _, err := Solve(bad, opt); err == nil {
		t.Fatal("expected error for disconnected window")
	}

	for it := 0; it < 5; it++ {
		in := randInstance(rng, g, c, 10, 4.0)
		want, err := Solve(in, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(in, opt)
		if err != nil {
			t.Fatalf("arena broken after error: %v", err)
		}
		if !reflect.DeepEqual(want.Steps, got.Steps) {
			t.Fatalf("it=%d: diverged after error recovery", it)
		}
	}
}

// TestScratchReducesAllocs is the tentpole's point: repeated solves
// through one arena must allocate far less than fresh solves.
func TestScratchReducesAllocs(t *testing.T) {
	g, c := newGraph(32, 32, 5)
	rng := rand.New(rand.NewPCG(2, 4))
	ins := make([]*nets.Instance, 16)
	for i := range ins {
		ins[i] = randInstance(rng, g, c, 16, 4.0)
	}
	opt := DefaultOptions()

	fresh := testing.AllocsPerRun(20, func() {
		for _, in := range ins {
			if _, err := Solve(in, opt); err != nil {
				t.Fatal(err)
			}
		}
	})

	scrOpt := opt
	scrOpt.Scratch = NewScratch()
	// Warm the arena so steady-state reuse is measured.
	for _, in := range ins {
		if _, err := Solve(in, scrOpt); err != nil {
			t.Fatal(err)
		}
	}
	reused := testing.AllocsPerRun(20, func() {
		for _, in := range ins {
			if _, err := Solve(in, scrOpt); err != nil {
				t.Fatal(err)
			}
		}
	})

	if reused > fresh/2 {
		t.Fatalf("scratch reuse allocs/run = %.0f, fresh = %.0f; want at least 2x reduction", reused, fresh)
	}
	t.Logf("allocs per 16-instance run: fresh %.0f, scratch %.0f", fresh, reused)
}
