package core

import (
	"math/rand/v2"

	"costdist/internal/sparse"
)

// Scratch is a reusable solver arena. A single Solve call on a t-sink
// instance allocates O(t) component records, label stores, queue storage
// and ownership stamps; routing re-solves every net once per
// rip-up-and-reroute wave, so those allocations dominate the hot path.
// A Scratch retains all of that state between calls and resets it in
// O(touched) — label stores and the ownership stamps clear by bumping a
// generation stamp (O(1)), queues and the union-find reset in O(t), and
// component records are recycled through a free list.
//
// Pass a Scratch via Options.Scratch. Results are bit-identical to
// scratch-free solves: no container exposes iteration order to the
// algorithm, so retained capacity cannot change any tie-breaking.
//
// A Scratch is not safe for concurrent use; use one per goroutine
// (internal/router keeps one per routing worker, the public
// costdist.SolveBatch one per batch worker).
type Scratch struct {
	sol      solver // reused solver; its containers retain capacity
	compPool []*comp
	mapPool  []*sparse.Map
	slabPool []*sparse.LabelSlab
	pcg      *rand.PCG

	// Solves counts completed calls through this arena (cheap visibility
	// for tests and metrics).
	Solves int
}

// NewScratch returns an empty arena. The zero value is not usable;
// arenas must be created here so the embedded solver links back to its
// pools.
func NewScratch() *Scratch {
	scr := &Scratch{}
	scr.sol.scr = scr
	return scr
}

// newComp returns a zeroed component record, recycling queue storage
// from merged components of earlier solves.
func (scr *Scratch) newComp() *comp {
	if n := len(scr.compPool); n > 0 {
		c := scr.compPool[n-1]
		scr.compPool = scr.compPool[:n-1]
		q := c.queue
		q.Clear()
		*c = comp{queue: q}
		return c
	}
	return &comp{}
}

// getLabels returns an empty label store for the current solve: a dense
// slab over the solve's index window when it fits slabMaxVerts, a hash
// map otherwise. Capacity is recycled through per-kind pools.
func (scr *Scratch) getLabels() labelStore {
	if scr.sol.useSlab {
		var s *sparse.LabelSlab
		if n := len(scr.slabPool); n > 0 {
			s = scr.slabPool[n-1]
			scr.slabPool = scr.slabPool[:n-1]
		} else {
			s = new(sparse.LabelSlab)
		}
		s.Reset(scr.sol.winSize)
		return labelStore{slab: s}
	}
	if n := len(scr.mapPool); n > 0 {
		m := scr.mapPool[n-1]
		scr.mapPool = scr.mapPool[:n-1]
		m.Reset()
		return labelStore{m: m}
	}
	return labelStore{m: sparse.NewMap(64)}
}

// putLabels returns a label store's backing to its pool.
func (scr *Scratch) putLabels(ls labelStore) {
	if ls.slab != nil {
		scr.slabPool = append(scr.slabPool, ls.slab)
	} else if ls.m != nil {
		scr.mapPool = append(scr.mapPool, ls.m)
	}
}

// reseed (re)initializes the deterministic RNG for one instance seed.
// Reseeding an existing PCG is state-identical to rand.NewPCG, so reuse
// does not perturb the randomized merge choices.
func (scr *Scratch) reseed(seed uint64) *rand.Rand {
	if scr.pcg == nil {
		scr.pcg = rand.NewPCG(seed, seedStream)
		return rand.New(scr.pcg)
	}
	scr.pcg.Seed(seed, seedStream)
	if scr.sol.rng == nil {
		return rand.New(scr.pcg)
	}
	return scr.sol.rng
}

// release returns the previous solve's component records and label
// stores to the pools. It runs at the start of the next solve (rather
// than at the end of the current one) so error paths need no cleanup.
func (scr *Scratch) release() {
	s := &scr.sol
	for _, c := range s.comps {
		scr.putLabels(c.labels)
		c.labels = labelStore{}
		scr.compPool = append(scr.compPool, c)
	}
	s.comps = s.comps[:0]
}
