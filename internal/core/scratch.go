package core

import (
	"math/rand/v2"

	"costdist/internal/sparse"
)

// Scratch is a reusable solver arena. A single Solve call on a t-sink
// instance allocates O(t) component records, label maps, heap storage
// and ownership stamps; routing re-solves every net once per
// rip-up-and-reroute wave, so those allocations dominate the hot path.
// A Scratch retains all of that state between calls and resets it in
// O(touched) — label maps and the ownership map clear by bumping a
// generation stamp (O(1)), heaps and the union-find reset in O(t), and
// component records are recycled through a free list.
//
// Pass a Scratch via Options.Scratch. Results are bit-identical to
// scratch-free solves: no container exposes iteration order to the
// algorithm, so retained capacity cannot change any tie-breaking.
//
// A Scratch is not safe for concurrent use; use one per goroutine
// (internal/router keeps one per routing worker, the public
// costdist.SolveBatch one per batch worker).
type Scratch struct {
	sol      solver // reused solver; its containers retain capacity
	compPool []*comp
	mapPool  []*sparse.Map
	pcg      *rand.PCG

	// Solves counts completed calls through this arena (cheap visibility
	// for tests and metrics).
	Solves int
}

// NewScratch returns an empty arena. The zero value is not usable;
// arenas must be created here so the embedded solver links back to its
// pools.
func NewScratch() *Scratch {
	scr := &Scratch{}
	scr.sol.scr = scr
	return scr
}

// newComp returns a zeroed component record, recycling heap storage from
// merged components of earlier solves.
func (scr *Scratch) newComp() *comp {
	if n := len(scr.compPool); n > 0 {
		c := scr.compPool[n-1]
		scr.compPool = scr.compPool[:n-1]
		h := c.heap
		h.Reset()
		*c = comp{heap: h}
		return c
	}
	return &comp{}
}

// getMap returns an empty label map, recycling capacity.
func (scr *Scratch) getMap() *sparse.Map {
	if n := len(scr.mapPool); n > 0 {
		m := scr.mapPool[n-1]
		scr.mapPool = scr.mapPool[:n-1]
		m.Reset()
		return m
	}
	return sparse.NewMap(64)
}

// putMap returns a label map to the pool.
func (scr *Scratch) putMap(m *sparse.Map) {
	if m != nil {
		scr.mapPool = append(scr.mapPool, m)
	}
}

// reseed (re)initializes the deterministic RNG for one instance seed.
// Reseeding an existing PCG is state-identical to rand.NewPCG, so reuse
// does not perturb the randomized merge choices.
func (scr *Scratch) reseed(seed uint64) *rand.Rand {
	if scr.pcg == nil {
		scr.pcg = rand.NewPCG(seed, seedStream)
		return rand.New(scr.pcg)
	}
	scr.pcg.Seed(seed, seedStream)
	if scr.sol.rng == nil {
		return rand.New(scr.pcg)
	}
	return scr.sol.rng
}

// release returns the previous solve's component records and label maps
// to the pools. It runs at the start of the next solve (rather than at
// the end of the current one) so error paths need no cleanup.
func (scr *Scratch) release() {
	s := &scr.sol
	for _, c := range s.comps {
		scr.putMap(c.labels)
		c.labels = nil
		scr.compPool = append(scr.compPool, c)
	}
	s.comps = s.comps[:0]
}
