// Package dly implements the linear delay model used before buffering
// (paper §I, refs [4],[18]): every wire type on every layer gets a delay
// per unit length derived from an optimally spaced uniform repeater
// chain, and the bifurcation penalty dbif is the delay increase caused by
// adding a repeater input capacitance in the middle of a single net,
// minimized over all layers and wire types — exactly the recipe the paper
// describes for computing dbif.
//
// Units: resistance in Ω, capacitance in fF, delay in ps, length in µm.
// One Ω·fF equals 1e-3 ps.
package dly

import (
	"fmt"
	"math"

	"costdist/internal/grid"
)

const psPerOhmFF = 1e-3

// Buffer describes the repeater used by the chain model.
type Buffer struct {
	ROut      float64 // output resistance, Ω
	CIn       float64 // input capacitance, fF
	Intrinsic float64 // intrinsic delay, ps
}

// WireRC is the electrical description of one wire type.
type WireRC struct {
	Name   string
	RPerUM float64 // Ω/µm
	CPerUM float64 // fF/µm
	CapUse float32 // routing tracks consumed per gcell step
}

// LayerRC describes one routing layer of the technology.
type LayerRC struct {
	Name     string
	Dir      grid.Dir
	Wires    []WireRC
	SegCap   float32
	ViaCap   float32
	ViaR     float64 // Ω per via cut
	ViaDelay float64 // ps, fixed via delay in the linear model
	ViaCost  float64
}

// Tech bundles a layer stack with its repeater.
type Tech struct {
	Name   string
	Buf    Buffer
	Layers []LayerRC
	// GCellUM is the physical gcell pitch in µm.
	GCellUM float64
}

// OptimalSpacing returns the repeater spacing ℓ* minimizing delay per unit
// length on a wire with resistance r (Ω/µm) and capacitance c (fF/µm):
//
//	D(ℓ) = Intrinsic + ROut·(c·ℓ + CIn) + r·ℓ·(c·ℓ/2 + CIn)
//
// d(D(ℓ)/ℓ)/dℓ = 0  ⇒  ℓ* = sqrt(2·(Intrinsic + ROut·CIn)/(r·c)).
func OptimalSpacing(r, c float64, buf Buffer) float64 {
	num := 2 * (buf.Intrinsic + buf.ROut*buf.CIn*psPerOhmFF)
	den := r * c * psPerOhmFF
	return math.Sqrt(num / den)
}

// SegmentDelay returns the delay D(ℓ) in ps of one repeater segment of
// length ℓ µm on the given wire.
func SegmentDelay(r, c, l float64, buf Buffer) float64 {
	return buf.Intrinsic +
		buf.ROut*(c*l+buf.CIn)*psPerOhmFF +
		r*l*(c*l/2+buf.CIn)*psPerOhmFF
}

// DelayPerUM returns the delay per µm (ps/µm) of the optimally buffered
// wire — the linear delay model coefficient for this wire type.
func DelayPerUM(r, c float64, buf Buffer) float64 {
	l := OptimalSpacing(r, c, buf)
	return SegmentDelay(r, c, l, buf) / l
}

// BifPenalty returns the delay increase in ps caused by attaching an
// extra repeater input capacitance at the midpoint of one optimally
// spaced repeater segment of this wire: the upstream wire resistance to
// the midpoint is r·ℓ*/2 and the driver adds ROut, so
//
//	Δ = (ROut + r·ℓ*/2) · CIn.
func BifPenalty(r, c float64, buf Buffer) float64 {
	l := OptimalSpacing(r, c, buf)
	return (buf.ROut + r*l/2) * buf.CIn * psPerOhmFF
}

// Dbif returns the bifurcation delay penalty of the technology: the
// minimum BifPenalty over all layers and wire types (paper §I: "dbif is
// the delay increase when adding the input capacitance in the middle of
// a single net, minimizing over all layers and wire types").
func (t Tech) Dbif() float64 {
	best := math.Inf(1)
	for _, lay := range t.Layers {
		for _, w := range lay.Wires {
			if p := BifPenalty(w.RPerUM, w.CPerUM, t.Buf); p < best {
				best = p
			}
		}
	}
	return best
}

// BuildLayers converts the technology into the grid layer stack: each
// wire type's DelayPerGCell comes from the repeater chain model and its
// CostPerGCell is proportional to the capacity it consumes, so congestion
// pricing acts on track usage.
func (t Tech) BuildLayers() []grid.Layer {
	out := make([]grid.Layer, len(t.Layers))
	for i, lay := range t.Layers {
		gl := grid.Layer{
			Name:      lay.Name,
			Dir:       lay.Dir,
			SegCap:    lay.SegCap,
			ViaCap:    lay.ViaCap,
			ViaCost:   lay.ViaCost,
			ViaDelay:  lay.ViaDelay,
			ViaCapUse: 1,
		}
		for _, w := range lay.Wires {
			gl.Wires = append(gl.Wires, grid.WireType{
				Name:          fmt.Sprintf("%s.%s", lay.Name, w.Name),
				CostPerGCell:  float64(w.CapUse),
				DelayPerGCell: DelayPerUM(w.RPerUM, w.CPerUM, t.Buf) * t.GCellUM,
				CapUse:        w.CapUse,
			})
		}
		out[i] = gl
	}
	return out
}

// DefaultTech returns a plausible 5nm-flavoured technology with nLayers
// routing layers: thin, resistive lower layers and thick, fast upper
// layers, alternating preferred directions. Mid and upper layers offer a
// wide wire type that is faster but consumes more tracks — the
// cost/delay trade-off that makes layer and wire type assignment matter.
func DefaultTech(nLayers int) Tech {
	if nLayers < 2 {
		panic("dly: need at least 2 layers")
	}
	t := Tech{
		Name:    fmt.Sprintf("synth5nm-%dL", nLayers),
		Buf:     Buffer{ROut: 200, CIn: 1.2, Intrinsic: 8},
		GCellUM: 50,
	}
	for i := 0; i < nLayers; i++ {
		frac := float64(i) / float64(nLayers-1) // 0 = bottom, 1 = top
		// Resistance falls steeply with height, capacitance is flat-ish.
		r := 800 * math.Pow(0.08, frac) // 800 Ω/µm down to 64 Ω/µm·0.08 ≈ thick top
		c := 0.18 + 0.04*frac
		dir := grid.DirH
		if i%2 == 1 {
			dir = grid.DirV
		}
		lay := LayerRC{
			Name:     fmt.Sprintf("M%d", i+1),
			Dir:      dir,
			SegCap:   float32(24 + 13*i), // more tracks per gcell on upper (coarser) layers
			ViaCap:   24,
			ViaR:     30,
			ViaDelay: 1.0 + 0.5*(1-frac), // lower vias slightly slower
			ViaCost:  1.5,
		}
		lay.Wires = append(lay.Wires, WireRC{Name: "w1", RPerUM: r, CPerUM: c, CapUse: 1})
		if i >= nLayers/3 {
			// Wide wire: ~40% of the resistance, twice the tracks.
			lay.Wires = append(lay.Wires, WireRC{Name: "w2", RPerUM: 0.4 * r, CPerUM: c * 1.15, CapUse: 2})
		}
		t.Layers = append(t.Layers, lay)
	}
	return t
}
