package dly

import (
	"math"
	"testing"
	"testing/quick"

	"costdist/internal/grid"
)

var buf = Buffer{ROut: 200, CIn: 1.2, Intrinsic: 8}

func TestOptimalSpacingIsOptimal(t *testing.T) {
	// D(ℓ)/ℓ at ℓ* must beat nearby spacings.
	for _, rc := range [][2]float64{{800, 0.18}, {200, 0.2}, {64, 0.22}} {
		r, c := rc[0], rc[1]
		ls := OptimalSpacing(r, c, buf)
		best := SegmentDelay(r, c, ls, buf) / ls
		for _, f := range []float64{0.5, 0.8, 0.95, 1.05, 1.2, 2.0} {
			l := ls * f
			if got := SegmentDelay(r, c, l, buf) / l; got < best-1e-9 {
				t.Fatalf("r=%v c=%v: spacing %v beats optimum (%v < %v)", r, c, l, got, best)
			}
		}
	}
}

func TestDelayPerUMMonotoneInR(t *testing.T) {
	// Faster metal (lower r) must yield lower delay per µm.
	prev := math.Inf(1)
	for _, r := range []float64{800, 400, 200, 100, 50} {
		d := DelayPerUM(r, 0.2, buf)
		if d >= prev {
			t.Fatalf("delay/µm not decreasing: r=%v d=%v prev=%v", r, d, prev)
		}
		prev = d
	}
}

func TestBifPenaltyPositiveAndSmall(t *testing.T) {
	f := func(rRaw, cRaw uint8) bool {
		r := 20 + float64(rRaw)*5 // 20..1295 Ω/µm
		c := 0.1 + float64(cRaw)/500.0
		p := BifPenalty(r, c, buf)
		l := OptimalSpacing(r, c, buf)
		seg := SegmentDelay(r, c, l, buf)
		// Penalty is positive and below one full repeater segment delay.
		return p > 0 && p < seg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDbifMinimizesOverStack(t *testing.T) {
	tech := DefaultTech(9)
	d := tech.Dbif()
	if d <= 0 {
		t.Fatalf("Dbif = %v", d)
	}
	for _, lay := range tech.Layers {
		for _, w := range lay.Wires {
			if p := BifPenalty(w.RPerUM, w.CPerUM, tech.Buf); p < d-1e-12 {
				t.Fatalf("Dbif %v not minimal: %s gives %v", d, w.Name, p)
			}
		}
	}
}

func TestDefaultTechShape(t *testing.T) {
	for _, n := range []int{7, 8, 9, 15} {
		tech := DefaultTech(n)
		if len(tech.Layers) != n {
			t.Fatalf("layer count %d", len(tech.Layers))
		}
		for i, lay := range tech.Layers {
			wantDir := grid.DirH
			if i%2 == 1 {
				wantDir = grid.DirV
			}
			if lay.Dir != wantDir {
				t.Fatalf("layer %d direction %v", i, lay.Dir)
			}
			if len(lay.Wires) == 0 {
				t.Fatalf("layer %d has no wires", i)
			}
		}
		// Top layer must be faster (per µm) than bottom layer.
		top := tech.Layers[n-1].Wires[0]
		bot := tech.Layers[0].Wires[0]
		if DelayPerUM(top.RPerUM, top.CPerUM, tech.Buf) >= DelayPerUM(bot.RPerUM, bot.CPerUM, tech.Buf) {
			t.Fatal("top layer not faster than bottom")
		}
	}
}

func TestBuildLayers(t *testing.T) {
	tech := DefaultTech(8)
	layers := tech.BuildLayers()
	if len(layers) != 8 {
		t.Fatalf("built %d layers", len(layers))
	}
	for i, gl := range layers {
		if len(gl.Wires) != len(tech.Layers[i].Wires) {
			t.Fatalf("layer %d wire count mismatch", i)
		}
		for j, w := range gl.Wires {
			if w.DelayPerGCell <= 0 || w.CostPerGCell <= 0 {
				t.Fatalf("layer %d wire %d has nonpositive params: %+v", i, j, w)
			}
			wantDelay := DelayPerUM(tech.Layers[i].Wires[j].RPerUM, tech.Layers[i].Wires[j].CPerUM, tech.Buf) * tech.GCellUM
			if math.Abs(w.DelayPerGCell-wantDelay) > 1e-9 {
				t.Fatalf("delay per gcell mismatch: %v vs %v", w.DelayPerGCell, wantDelay)
			}
		}
		// Wide wires must be faster and use more capacity.
		if len(gl.Wires) == 2 {
			if gl.Wires[1].DelayPerGCell >= gl.Wires[0].DelayPerGCell {
				t.Fatalf("layer %d wide wire not faster", i)
			}
			if gl.Wires[1].CapUse <= gl.Wires[0].CapUse {
				t.Fatalf("layer %d wide wire not wider", i)
			}
		}
	}
	// The stack must be usable by grid.New.
	g := grid.New(10, 10, layers, tech.GCellUM)
	if g.NumV() != 10*10*8 {
		t.Fatalf("NumV = %d", g.NumV())
	}
}
