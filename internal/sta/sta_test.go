package sta

import (
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/geom"
)

// chain builds PI -> c1 -> c2 -> PO with unit nets.
func chain() *Netlist {
	return &Netlist{
		Cells: []Cell{
			{Pos: geom.Pt{X: 0, Y: 0}, Delay: 5, Level: 0, PI: true},
			{Pos: geom.Pt{X: 1, Y: 0}, Delay: 7, Level: 1},
			{Pos: geom.Pt{X: 2, Y: 0}, Delay: 3, Level: 2, PO: true},
		},
		Nets: []Net{
			{Driver: 0, Sinks: []int32{1}},
			{Driver: 1, Sinks: []int32{2}},
		},
	}
}

func TestValidate(t *testing.T) {
	nl := chain()
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := chain()
	bad.Nets[0].Sinks = []int32{0} // self loop, same level
	if err := bad.Validate(); err == nil {
		t.Fatal("level violation not caught")
	}
	undriven := chain()
	undriven.Nets = undriven.Nets[:1]
	if err := undriven.Validate(); err == nil {
		t.Fatal("undriven cell not caught")
	}
}

func TestChainTiming(t *testing.T) {
	nl := chain()
	delays := [][]float64{{10}, {20}}
	res := Analyze(nl, func(n, k int) float64 { return delays[n][k] }, 50)
	// AT: c0 = 5; c1 = 5+10+7 = 22; c2 = 22+20+3 = 45.
	if res.AT[0] != 5 || res.AT[1] != 22 || res.AT[2] != 45 {
		t.Fatalf("AT = %v", res.AT)
	}
	// RAT: c2 = 50; c1 = 50-3-20 = 27; c0 = 27-7-10 = 10.
	if res.RAT[2] != 50 || res.RAT[1] != 27 || res.RAT[0] != 10 {
		t.Fatalf("RAT = %v", res.RAT)
	}
	if res.WS != 5 || res.TNS != 0 {
		t.Fatalf("WS=%v TNS=%v", res.WS, res.TNS)
	}
	// Pin slacks equal endpoint slack along a chain.
	if res.PinSlack(0, 0) != 5 || res.PinSlack(1, 0) != 5 {
		t.Fatalf("pin slacks %v %v", res.PinSlack(0, 0), res.PinSlack(1, 0))
	}
}

func TestNegativeSlack(t *testing.T) {
	nl := chain()
	res := Analyze(nl, func(n, k int) float64 { return 100 }, 50)
	// AT(c2) = 5+100+7+100+3 = 215, slack = 50-215 = -165.
	if res.WS != -165 || res.TNS != -165 {
		t.Fatalf("WS=%v TNS=%v", res.WS, res.TNS)
	}
}

func TestFanoutMaxAndMin(t *testing.T) {
	// PI drives two POs through one net with different delays: AT uses
	// max per sink path; RAT at driver uses min.
	nl := &Netlist{
		Cells: []Cell{
			{Delay: 0, Level: 0, PI: true},
			{Delay: 0, Level: 1, PO: true},
			{Delay: 0, Level: 1, PO: true},
		},
		Nets: []Net{{Driver: 0, Sinks: []int32{1, 2}}},
	}
	res := Analyze(nl, func(n, k int) float64 {
		if k == 0 {
			return 10
		}
		return 30
	}, 25)
	if res.AT[1] != 10 || res.AT[2] != 30 {
		t.Fatalf("AT = %v", res.AT)
	}
	if res.RAT[0] != -5 { // min(25-10, 25-30) = -5
		t.Fatalf("RAT[0] = %v", res.RAT[0])
	}
	if res.WS != -5 {
		t.Fatalf("WS = %v", res.WS)
	}
	if res.TNS != -5 {
		t.Fatalf("TNS = %v (only one endpoint violates)", res.TNS)
	}
	if res.PinSlack(0, 1) != -5 || res.PinSlack(0, 0) != 15 {
		t.Fatalf("pin slacks %v %v", res.PinSlack(0, 0), res.PinSlack(0, 1))
	}
}

// TestAgainstPathEnumeration cross-checks WS on random DAGs against
// brute-force path enumeration.
func TestAgainstPathEnumeration(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 30; trial++ {
		nl, delays := randomDAG(rng)
		res := Analyze(nl, func(n, k int) float64 { return delays[n][k] }, 100)
		// Brute force: longest path to each PO.
		var dfs func(c int32, at float64)
		worst := math.Inf(1)
		adj := map[int32][][3]float64{} // driver -> (sink, netDelay, sinkCellDelay)
		for ni, n := range nl.Nets {
			for k, s := range n.Sinks {
				adj[n.Driver] = append(adj[n.Driver], [3]float64{float64(s), delays[ni][k], nl.Cells[s].Delay})
			}
		}
		dfs = func(c int32, at float64) {
			if nl.Cells[c].PO {
				if slack := 100 - at; slack < worst {
					worst = slack
				}
			}
			for _, e := range adj[c] {
				dfs(int32(e[0]), at+e[1]+e[2])
			}
		}
		for ci, c := range nl.Cells {
			if c.PI {
				dfs(int32(ci), c.Delay)
			}
		}
		if math.IsInf(worst, 1) {
			continue
		}
		if math.Abs(res.WS-worst) > 1e-9 {
			t.Fatalf("trial %d: WS %v vs brute force %v", trial, res.WS, worst)
		}
	}
}

func randomDAG(rng *rand.Rand) (*Netlist, [][]float64) {
	levels := 3 + rng.IntN(4)
	perLevel := 2 + rng.IntN(3)
	nl := &Netlist{}
	for l := 0; l < levels; l++ {
		for i := 0; i < perLevel; i++ {
			nl.Cells = append(nl.Cells, Cell{
				Delay: rng.Float64() * 10,
				Level: int32(l),
				PI:    l == 0,
				PO:    l == levels-1,
			})
		}
	}
	var delays [][]float64
	// Every cell above level 0 is driven by a random lower-level cell.
	for ci := perLevel; ci < len(nl.Cells); ci++ {
		lvl := nl.Cells[ci].Level
		drv := rng.IntN(int(lvl) * perLevel)
		nl.Nets = append(nl.Nets, Net{Driver: int32(drv), Sinks: []int32{int32(ci)}})
		delays = append(delays, []float64{rng.Float64() * 20})
	}
	return nl, delays
}

func TestLongestLevelPath(t *testing.T) {
	nl := chain()
	// 5 + 10 + 7 + 10 + 3 with perNet=10.
	if got := LongestLevelPath(nl, 10); got != 35 {
		t.Fatalf("LongestLevelPath = %v", got)
	}
	if got := LongestLevelPath(nl, 0); got != 15 {
		t.Fatalf("no-net path = %v", got)
	}
}
