// Package sta provides the static timing analysis substrate for
// timing-constrained global routing: a leveled combinational netlist
// (cells with intrinsic delays, nets connecting driver output pins to
// sink input pins) and forward/backward arrival-time propagation
// producing per-pin slacks, worst slack (WS) and total negative slack
// (TNS) — the timing columns of the paper's Tables IV and V.
//
// The delay of a net's driver-to-sink connection comes from the global
// router's embedded trees (linear delay model, eq. (3)); sta is agnostic
// to how it was computed.
package sta

import (
	"fmt"
	"math"
	"sort"

	"costdist/internal/geom"
)

// Cell is a combinational cell (or primary input/output marker) placed
// on the gcell grid.
type Cell struct {
	Pos geom.Pt
	// Delay is the intrinsic input-to-output delay in ps.
	Delay float64
	// Level is the topological level; nets connect lower-level drivers
	// to strictly higher-level sinks, guaranteeing acyclicity.
	Level int32
	// PI marks primary inputs (arrival time 0 at their output).
	PI bool
	// PO marks timing endpoints (required time = clock period).
	PO bool
}

// Net connects the output of Driver to the inputs of the Sinks.
type Net struct {
	Driver int32
	Sinks  []int32
}

// Netlist is a placed, leveled netlist.
type Netlist struct {
	Cells []Cell
	Nets  []Net
}

// Validate checks structural invariants: indices in range, nets strictly
// level-increasing, every non-PI cell driven by at least one net.
func (nl *Netlist) Validate() error {
	driven := make([]bool, len(nl.Cells))
	for ni, n := range nl.Nets {
		if n.Driver < 0 || int(n.Driver) >= len(nl.Cells) {
			return fmt.Errorf("sta: net %d driver out of range", ni)
		}
		for _, s := range n.Sinks {
			if s < 0 || int(s) >= len(nl.Cells) {
				return fmt.Errorf("sta: net %d sink out of range", ni)
			}
			if nl.Cells[s].Level <= nl.Cells[n.Driver].Level {
				return fmt.Errorf("sta: net %d not level-increasing (%d -> %d)", ni, nl.Cells[n.Driver].Level, nl.Cells[s].Level)
			}
			driven[s] = true
		}
	}
	for ci, c := range nl.Cells {
		if !c.PI && !driven[ci] {
			return fmt.Errorf("sta: cell %d has no driving net and is not a PI", ci)
		}
	}
	return nil
}

// NetDelayFn returns the routed delay from net n's driver pin to its
// k-th sink pin, in ps.
type NetDelayFn func(net, sinkIdx int) float64

// Result carries the analysis outputs.
type Result struct {
	// AT and RAT are arrival and required times at cell outputs.
	AT, RAT []float64
	// WS is the worst endpoint slack; TNS the total negative slack over
	// endpoints (both in ps, negative = violation).
	WS, TNS float64
	// pinSlack[n][k] is the slack of net n's k-th sink pin.
	pinSlack [][]float64
}

// PinSlack returns the slack at net n's k-th sink pin.
func (r *Result) PinSlack(n, k int) float64 { return r.pinSlack[n][k] }

// Analyze runs forward/backward propagation with the given net delays
// and clock period.
func Analyze(nl *Netlist, delay NetDelayFn, clkPeriod float64) *Result {
	nc := len(nl.Cells)
	r := &Result{
		AT:  make([]float64, nc),
		RAT: make([]float64, nc),
	}
	order := make([]int32, nc)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return nl.Cells[order[a]].Level < nl.Cells[order[b]].Level
	})

	// Forward: arrival at cell outputs. Arrival contributions come from
	// input nets; PI cells start at their own delay.
	arrIn := make([]float64, nc)
	for i := range arrIn {
		arrIn[i] = math.Inf(-1)
	}
	for ci, c := range nl.Cells {
		if c.PI {
			arrIn[ci] = 0
		}
	}
	// Process nets grouped by driver level so sink inputs accumulate in
	// topological order: iterate cells by level, finalize AT, then push
	// through their nets.
	netsByDriver := make([][]int32, nc)
	for ni, n := range nl.Nets {
		netsByDriver[n.Driver] = append(netsByDriver[n.Driver], int32(ni))
	}
	for _, ci := range order {
		in := arrIn[ci]
		if math.IsInf(in, -1) {
			in = 0 // undriven non-PI (validated against, but stay safe)
		}
		r.AT[ci] = in + nl.Cells[ci].Delay
		for _, ni := range netsByDriver[ci] {
			n := nl.Nets[ni]
			for k, s := range n.Sinks {
				at := r.AT[ci] + delay(int(ni), k)
				if at > arrIn[s] {
					arrIn[s] = at
				}
			}
		}
	}

	// Backward: required times at cell outputs.
	for i := range r.RAT {
		r.RAT[i] = math.Inf(1)
	}
	for ci, c := range nl.Cells {
		if c.PO {
			r.RAT[ci] = clkPeriod
		}
	}
	for i := nc - 1; i >= 0; i-- {
		ci := order[i]
		for _, ni := range netsByDriver[ci] {
			n := nl.Nets[ni]
			for k, s := range n.Sinks {
				req := r.RAT[s] - nl.Cells[s].Delay - delay(int(ni), k)
				if req < r.RAT[ci] {
					r.RAT[ci] = req
				}
			}
		}
	}

	// Pin slacks and endpoint metrics.
	r.pinSlack = make([][]float64, len(nl.Nets))
	for ni, n := range nl.Nets {
		r.pinSlack[ni] = make([]float64, len(n.Sinks))
		for k, s := range n.Sinks {
			at := r.AT[n.Driver] + delay(ni, k)
			req := r.RAT[s] - nl.Cells[s].Delay
			r.pinSlack[ni][k] = req - at
		}
	}
	r.WS = math.Inf(1)
	r.TNS = 0
	seen := false
	for ci, c := range nl.Cells {
		if !c.PO {
			continue
		}
		seen = true
		slack := r.RAT[ci] - r.AT[ci]
		if slack < r.WS {
			r.WS = slack
		}
		if slack < 0 {
			r.TNS += slack
		}
	}
	if !seen {
		r.WS = 0
	}
	return r
}

// LongestLevelPath returns an upper-bound estimate of the unrouted
// critical path delay: the maximum over PO cells of accumulated cell
// delays along levels, plus perNetDelay per level. Chip generators use
// it to pick clock periods of controlled tightness.
func LongestLevelPath(nl *Netlist, perNetDelay float64) float64 {
	nc := len(nl.Cells)
	best := make([]float64, nc)
	order := make([]int32, nc)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return nl.Cells[order[a]].Level < nl.Cells[order[b]].Level
	})
	netsByDriver := make([][]int32, nc)
	for ni, n := range nl.Nets {
		netsByDriver[n.Driver] = append(netsByDriver[n.Driver], int32(ni))
	}
	worst := 0.0
	for _, ci := range order {
		at := best[ci] + nl.Cells[ci].Delay
		if nl.Cells[ci].PO && at > worst {
			worst = at
		}
		for _, ni := range netsByDriver[ci] {
			for _, s := range nl.Nets[ni].Sinks {
				if v := at + perNetDelay; v > best[s] {
					best[s] = v
				}
			}
		}
	}
	return worst
}
