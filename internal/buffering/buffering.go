// Package buffering inserts repeaters along embedded Steiner trees and
// computes the resulting stage-by-stage Elmore delays. The paper's
// setting is global routing *before* buffering, with delays estimated by
// the linear model of package dly; this package provides the "after"
// side: it places repeaters at the optimal spacing ℓ* of each wire and
// charges the extra capacitive delay at bifurcations — which is exactly
// the quantity dbif models (paper §I and Figure 2). Tests use it to
// validate that the linear model and the bifurcation penalty predict
// buffered reality.
package buffering

import (
	"fmt"

	"costdist/internal/dly"
	"costdist/internal/grid"
	"costdist/internal/nets"
)

// Result reports a buffered tree.
type Result struct {
	// Buffers is the number of inserted repeaters.
	Buffers int
	// SinkDelay is the root-to-sink Elmore delay in ps, per sink, with
	// explicit repeater stages and bifurcation load delays.
	SinkDelay []float64
	// LinearDelay is the linear-model prediction for the same tree
	// (edge delays plus λ·dbif penalties, from nets.Evaluate), for
	// comparison.
	LinearDelay []float64
}

// state carries the open (unbuffered) wire stage while walking down.
type state struct {
	delay  float64 // committed delay up to the last repeater, ps
	openUM float64 // unbuffered wire length since the last repeater, µm
	openR  float64 // accumulated resistance of the open stage, Ω
	openC  float64 // accumulated capacitance of the open stage, fF
	extraC float64 // branch repeater inputs loading the stage, fF
}

// Buffer inserts repeaters into the tree: along every root-to-leaf walk
// a repeater is placed whenever the open wire of the current layer
// reaches its optimal spacing ℓ*; at every bifurcation each extra branch
// hangs one repeater input capacitance on the open stage (the dbif
// mechanism). Via delays pass through unbuffered.
func Buffer(in *nets.Instance, tr *nets.RTree, tech dly.Tech) (*Result, error) {
	ev, err := nets.Evaluate(in, tr)
	if err != nil {
		return nil, fmt.Errorf("buffering: %w", err)
	}

	type half struct {
		to  grid.V
		arc grid.Arc
	}
	adj := make(map[grid.V][]half)
	for _, st := range tr.Steps {
		adj[st.From] = append(adj[st.From], half{to: st.Arc.To, arc: st.Arc})
		rev := st.Arc
		rev.To = st.From
		adj[st.Arc.To] = append(adj[st.Arc.To], half{to: st.From, arc: rev})
	}
	parent := map[grid.V]grid.V{in.Root: in.Root}
	order := []grid.V{in.Root}
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, h := range adj[v] {
			if _, ok := parent[h.to]; !ok {
				parent[h.to] = v
				order = append(order, h.to)
			}
		}
	}
	sinksAt := map[grid.V][]int{}
	for i, s := range in.Sinks {
		sinksAt[s.V] = append(sinksAt[s.V], i)
	}

	res := &Result{
		SinkDelay:   make([]float64, len(in.Sinks)),
		LinearDelay: ev.SinkDelay,
	}
	buf := tech.Buf

	// closeStage commits the open stage into a repeater: Elmore delay of
	// the driving repeater (ROut against everything downstream) plus the
	// distributed wire, loaded by the next repeater's input.
	closeStage := func(st state) state {
		d := st.delay + buf.Intrinsic +
			(buf.ROut*(st.openC+buf.CIn+st.extraC)+
				st.openR*(st.openC/2+buf.CIn+st.extraC))*1e-3
		return state{delay: d}
	}
	// terminate ends the walk at a sink pin (load ≈ one input cap).
	terminate := func(st state) float64 {
		return st.delay +
			(buf.ROut*(st.openC+buf.CIn+st.extraC)+
				st.openR*(st.openC/2+buf.CIn+st.extraC))*1e-3
	}

	var walk func(v grid.V, st state)
	walk = func(v grid.V, st state) {
		var kids []half
		for _, h := range adj[v] {
			if h.to != v && parent[h.to] == v {
				kids = append(kids, h)
			}
		}
		for _, si := range sinksAt[v] {
			res.SinkDelay[si] = terminate(st)
		}
		branchExtra := 0.0
		if len(kids) > 1 {
			// Each extra branch is shielded behind its own repeater
			// whose input loads the current stage.
			branchExtra = buf.CIn * float64(len(kids)-1)
			res.Buffers += len(kids) - 1
		}
		for _, h := range kids {
			next := st
			next.extraC += branchExtra
			if h.arc.Via {
				next.delay += tech.Layers[h.arc.L].ViaDelay
				walk(h.to, next)
				continue
			}
			w := tech.Layers[h.arc.L].Wires[h.arc.WT]
			lstar := dly.OptimalSpacing(w.RPerUM, w.CPerUM, buf)
			remain := tech.GCellUM
			for remain > 1e-12 {
				room := lstar - next.openUM
				if room <= 1e-12 {
					next = closeStage(next)
					res.Buffers++
					continue
				}
				add := remain
				if add > room {
					add = room
				}
				next.openUM += add
				next.openR += w.RPerUM * add
				next.openC += w.CPerUM * add
				remain -= add
			}
			walk(h.to, next)
		}
	}
	walk(in.Root, state{})
	return res, nil
}
