package buffering

import (
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/core"
	"costdist/internal/dly"
	"costdist/internal/grid"
	"costdist/internal/nets"
)

func setup(t *testing.T, nx int32, layers int) (*grid.Graph, *grid.Costs, dly.Tech) {
	t.Helper()
	tech := dly.DefaultTech(layers)
	g := grid.New(nx, nx, tech.BuildLayers(), tech.GCellUM)
	return g, grid.NewCosts(g), tech
}

func solve(t *testing.T, in *nets.Instance) *nets.RTree {
	t.Helper()
	tr, err := core.Solve(in, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLongNetGetsBuffers(t *testing.T) {
	g, c, tech := setup(t, 40, 4)
	in := &nets.Instance{
		G: g, C: c, Root: g.At(0, 0, 0),
		Sinks: []nets.Sink{{V: g.At(39, 0, 0), W: 0.01}},
		Win:   g.FullWindow(), Seed: 1,
	}
	res, err := Buffer(in, solve(t, in), tech)
	if err != nil {
		t.Fatal(err)
	}
	// 39 gcells ≈ 1950 µm over spacings of 10-50 µm: many repeaters.
	if res.Buffers < 10 {
		t.Fatalf("only %d buffers on a 2 mm net", res.Buffers)
	}
	if res.SinkDelay[0] <= 0 {
		t.Fatal("no delay computed")
	}
}

func TestShortNetNoBuffers(t *testing.T) {
	g, c, tech := setup(t, 8, 4)
	in := &nets.Instance{
		G: g, C: c, Root: g.At(3, 3, 0),
		Sinks: []nets.Sink{{V: g.At(3, 3, 1), W: 0.01}}, // one via up
		Win:   g.FullWindow(), Seed: 1,
	}
	res, err := Buffer(in, solve(t, in), tech)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffers != 0 {
		t.Fatalf("%d buffers on a via-only net", res.Buffers)
	}
}

func TestLinearModelPredictsBufferedDelay(t *testing.T) {
	// The whole point of the linear delay model: after buffering, the
	// Elmore delay should track the linear prediction. We check the
	// ratio stays within a factor 2 on single-sink nets of assorted
	// lengths (the linear model is per-unit-optimal; the inserted chain
	// quantizes stages, so some deviation is expected).
	g, c, tech := setup(t, 48, 6)
	for _, span := range []int32{10, 20, 30, 45} {
		in := &nets.Instance{
			G: g, C: c, Root: g.At(0, 0, 0),
			Sinks: []nets.Sink{{V: g.At(span, 0, 0), W: 0.05}},
			Win:   g.FullWindow(), Seed: 2,
		}
		res, err := Buffer(in, solve(t, in), tech)
		if err != nil {
			t.Fatal(err)
		}
		lin := res.LinearDelay[0]
		got := res.SinkDelay[0]
		if got <= 0 || lin <= 0 {
			t.Fatalf("span %d: degenerate delays %v %v", span, got, lin)
		}
		ratio := got / lin
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("span %d: buffered %v vs linear %v (ratio %v)", span, got, lin, ratio)
		}
	}
}

func TestBifurcationCostsShowUp(t *testing.T) {
	// A branchy tree must see more buffers and extra stage delay
	// compared to a straight net of the same root-sink distance.
	g, c, tech := setup(t, 40, 4)
	straight := &nets.Instance{
		G: g, C: c, Root: g.At(0, 0, 0),
		Sinks: []nets.Sink{{V: g.At(30, 0, 0), W: 0.05}},
		Win:   g.FullWindow(), Seed: 3,
	}
	branchy := &nets.Instance{
		G: g, C: c, Root: g.At(0, 0, 0),
		Sinks: []nets.Sink{
			{V: g.At(30, 0, 0), W: 0.05},
			{V: g.At(10, 8, 0), W: 0.001},
			{V: g.At(20, 8, 0), W: 0.001},
		},
		Win: g.FullWindow(), Seed: 3,
	}
	rs, err := Buffer(straight, solve(t, straight), tech)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Buffer(branchy, solve(t, branchy), tech)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Buffers <= rs.Buffers {
		t.Fatalf("branchy tree has %d buffers vs straight %d", rb.Buffers, rs.Buffers)
	}
	if rb.SinkDelay[0] < rs.SinkDelay[0] {
		t.Fatalf("branch loads should not speed up the trunk: %v vs %v", rb.SinkDelay[0], rs.SinkDelay[0])
	}
}

func TestMultiSinkConsistency(t *testing.T) {
	g, c, tech := setup(t, 32, 5)
	rng := rand.New(rand.NewPCG(4, 4))
	for it := 0; it < 10; it++ {
		in := &nets.Instance{
			G: g, C: c, Root: g.At(rng.Int32N(32), rng.Int32N(32), 0),
			Win: g.FullWindow(), Seed: uint64(it),
			DBif: tech.Dbif(), Eta: 0.25,
		}
		for s := 0; s < 2+rng.IntN(8); s++ {
			in.Sinks = append(in.Sinks, nets.Sink{
				V: g.At(rng.Int32N(32), rng.Int32N(32), 0),
				W: rng.Float64() * 0.05,
			})
		}
		res, err := Buffer(in, solve(t, in), tech)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.SinkDelay) != len(in.Sinks) || len(res.LinearDelay) != len(in.Sinks) {
			t.Fatal("delay vector sizes wrong")
		}
		for i, d := range res.SinkDelay {
			if math.IsNaN(d) || d < 0 {
				t.Fatalf("sink %d: bad delay %v", i, d)
			}
		}
	}
}
