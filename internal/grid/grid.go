// Package grid models the 3D global routing graph G from the paper: a
// stack of routing layers over an NX×NY gcell grid. Every layer has a
// preferred direction and one or more wire types (width/spacing
// configurations); a wire type on a layer is a parallel edge with its own
// congestion cost and linear-model delay, exactly as described in §I.
// Adjacent layers are connected by vias.
//
// Edges are grouped into segments: a segment is one gcell-to-gcell
// adjacency (on a layer, or a via between two layers) and carries the
// routing capacity that congestion pricing acts on. Parallel wire types
// share their segment's capacity but consume different amounts of it.
package grid

import "costdist/internal/geom"

// V is a vertex id in the routing graph: v = (l*NY + y)*NX + x.
type V int32

// NoV marks an absent vertex.
const NoV V = -1

// Dir is a layer's preferred routing direction.
type Dir uint8

// Preferred directions. Horizontal layers route along x, vertical along y.
const (
	DirH Dir = iota
	DirV
)

func (d Dir) String() string {
	if d == DirH {
		return "H"
	}
	return "V"
}

// WireType is one width/spacing configuration available on a layer. It is
// a parallel edge in G with individual cost and delay (paper §I).
type WireType struct {
	Name string
	// CostPerGCell is the congestion-free base cost of one gcell step,
	// scaled by the segment's congestion multiplier at query time.
	CostPerGCell float64
	// DelayPerGCell is the linear-model delay of one gcell step in ps
	// (derived from the buffered-wire model in package dly).
	DelayPerGCell float64
	// CapUse is the capacity consumed per gcell step (tracks used).
	CapUse float32
}

// Layer is one routing layer.
type Layer struct {
	Name  string
	Dir   Dir
	Wires []WireType
	// SegCap is the routing capacity of each segment on this layer.
	SegCap float32
	// ViaCap, ViaCost, ViaDelay and ViaCapUse describe the via from this
	// layer to the one above. They are unused on the top layer.
	ViaCap    float32
	ViaCost   float64
	ViaDelay  float64
	ViaCapUse float32
}

// Graph is the global routing graph.
type Graph struct {
	NX, NY int32
	Layers []Layer
	// LenUM is the physical gcell pitch in µm (used to convert wirelength
	// to meters in reports).
	LenUM float64

	segOff  []int32 // len L+1: routing segment id offsets per layer
	viaBase int32   // first via segment id
	viaOff  []int32 // len L: via segment offsets per layer pair (l, l+1)
	nSegs   int32
	// Cap is the capacity of every segment (routing and via). Generators
	// may lower entries regionally to model blockages.
	Cap []float32
}

// New builds a graph of nx×ny gcells with the given layer stack. Segment
// capacities are initialized from the layer definitions.
func New(nx, ny int32, layers []Layer, lenUM float64) *Graph {
	if nx < 1 || ny < 1 || len(layers) == 0 {
		panic("grid: invalid dimensions")
	}
	g := &Graph{NX: nx, NY: ny, Layers: layers, LenUM: lenUM}
	l := int32(len(layers))
	g.segOff = make([]int32, l+1)
	for i := int32(0); i < l; i++ {
		var cnt int32
		if layers[i].Dir == DirH {
			cnt = (nx - 1) * ny
		} else {
			cnt = (ny - 1) * nx
		}
		g.segOff[i+1] = g.segOff[i] + cnt
	}
	g.viaBase = g.segOff[l]
	g.viaOff = make([]int32, l)
	for i := int32(0); i+1 < l; i++ {
		g.viaOff[i] = int32(i) * nx * ny
	}
	g.nSegs = g.viaBase + (l-1)*nx*ny
	g.Cap = make([]float32, g.nSegs)
	for li := int32(0); li < l; li++ {
		for s := g.segOff[li]; s < g.segOff[li+1]; s++ {
			g.Cap[s] = layers[li].SegCap
		}
		if li+1 < l {
			base := g.viaBase + g.viaOff[li]
			for k := int32(0); k < nx*ny; k++ {
				g.Cap[base+k] = layers[li].ViaCap
			}
		}
	}
	return g
}

// NumV returns the number of vertices.
func (g *Graph) NumV() int32 { return g.NX * g.NY * int32(len(g.Layers)) }

// NumSegs returns the number of segments (routing plus via).
func (g *Graph) NumSegs() int32 { return g.nSegs }

// NumRouteSegs returns the number of routing (non-via) segments.
func (g *Graph) NumRouteSegs() int32 { return g.viaBase }

// At returns the vertex at (x, y, layer l).
func (g *Graph) At(x, y, l int32) V { return V((l*g.NY+y)*g.NX + x) }

// XYL decodes a vertex id.
func (g *Graph) XYL(v V) (x, y, l int32) {
	x = int32(v) % g.NX
	t := int32(v) / g.NX
	y = t % g.NY
	l = t / g.NY
	return
}

// Pt returns the plane position of v.
func (g *Graph) Pt(v V) geom.Pt {
	x, y, _ := g.XYL(v)
	return geom.Pt{X: x, Y: y}
}

// IsVia reports whether segment id s is a via segment.
func (g *Graph) IsVia(s int32) bool { return s >= g.viaBase }

// SegLayer returns the layer of a routing segment, or the lower layer of
// a via segment.
func (g *Graph) SegLayer(s int32) int32 {
	if s >= g.viaBase {
		return (s - g.viaBase) / (g.NX * g.NY)
	}
	// Layer counts are tiny (≤ 16): linear scan.
	for l := int32(0); ; l++ {
		if s < g.segOff[l+1] {
			return l
		}
	}
}

// SegRect returns the plane rectangle of gcells a segment touches: both
// endpoint gcells for a routing segment, the single stacked gcell for a
// via segment. Congestion-delta tracking uses it to translate changed
// segments into plane regions for net-window invalidation queries.
func (g *Graph) SegRect(s int32) geom.Rect {
	if s >= g.viaBase {
		k := (s - g.viaBase) % (g.NX * g.NY)
		x, y := k%g.NX, k/g.NX
		return geom.Rect{X0: x, Y0: y, X1: x, Y1: y}
	}
	l := g.SegLayer(s)
	off := s - g.segOff[l]
	if g.Layers[l].Dir == DirH {
		x, y := off%(g.NX-1), off/(g.NX-1)
		return geom.Rect{X0: x, Y0: y, X1: x + 1, Y1: y}
	}
	y, x := off%(g.NY-1), off/(g.NY-1)
	return geom.Rect{X0: x, Y0: y, X1: x, Y1: y + 1}
}

// SegH returns the segment id between (x,y,l) and (x+1,y,l) on a
// horizontal layer.
func (g *Graph) SegH(l, y, x int32) int32 { return g.segOff[l] + y*(g.NX-1) + x }

// SegV returns the segment id between (x,y,l) and (x,y+1,l) on a
// vertical layer.
func (g *Graph) SegV(l, x, y int32) int32 { return g.segOff[l] + x*(g.NY-1) + y }

// ViaSeg returns the via segment id between (x,y,l) and (x,y,l+1).
func (g *Graph) ViaSeg(l, x, y int32) int32 {
	return g.viaBase + g.viaOff[l] + y*g.NX + x
}

// SegBetween returns the segment connecting two adjacent vertices and
// whether it is a via. It panics if u and v are not adjacent.
func (g *Graph) SegBetween(u, v V) (seg int32, via bool) {
	ux, uy, ul := g.XYL(u)
	vx, vy, vl := g.XYL(v)
	switch {
	case ul == vl && uy == vy && (ux-vx == 1 || vx-ux == 1):
		x := min32(ux, vx)
		return g.SegH(ul, uy, x), false
	case ul == vl && ux == vx && (uy-vy == 1 || vy-uy == 1):
		y := min32(uy, vy)
		return g.SegV(ul, ux, y), false
	case ux == vx && uy == vy && (ul-vl == 1 || vl-ul == 1):
		l := min32(ul, vl)
		return g.ViaSeg(l, ux, uy), true
	}
	panic("grid: SegBetween on non-adjacent vertices")
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Arc is one traversable edge instance from some vertex to To: a single
// gcell step using wire type WT on layer L, or a via (WT < 0) between
// layers L and L+1.
type Arc struct {
	To  V
	Seg int32
	L   int8
	WT  int8
	Via bool
}

// Arcs calls yield for every arc leaving v whose target stays inside the
// window win (layers are never restricted). Iteration stops early if
// yield returns false.
func (g *Graph) Arcs(v V, win geom.Rect, yield func(a Arc) bool) {
	x, y, l := g.XYL(v)
	lay := &g.Layers[l]
	nw := int8(len(lay.Wires))
	if lay.Dir == DirH {
		if x > win.X0 {
			seg := g.SegH(l, y, x-1)
			to := v - 1
			for wt := int8(0); wt < nw; wt++ {
				if !yield(Arc{To: to, Seg: seg, L: int8(l), WT: wt}) {
					return
				}
			}
		}
		if x < win.X1 {
			seg := g.SegH(l, y, x)
			to := v + 1
			for wt := int8(0); wt < nw; wt++ {
				if !yield(Arc{To: to, Seg: seg, L: int8(l), WT: wt}) {
					return
				}
			}
		}
	} else {
		if y > win.Y0 {
			seg := g.SegV(l, x, y-1)
			to := v - V(g.NX)
			for wt := int8(0); wt < nw; wt++ {
				if !yield(Arc{To: to, Seg: seg, L: int8(l), WT: wt}) {
					return
				}
			}
		}
		if y < win.Y1 {
			seg := g.SegV(l, x, y)
			to := v + V(g.NX)
			for wt := int8(0); wt < nw; wt++ {
				if !yield(Arc{To: to, Seg: seg, L: int8(l), WT: wt}) {
					return
				}
			}
		}
	}
	if l > 0 {
		if !yield(Arc{To: v - V(g.NX*g.NY), Seg: g.ViaSeg(l-1, x, y), L: int8(l - 1), WT: -1, Via: true}) {
			return
		}
	}
	if l+1 < int32(len(g.Layers)) {
		if !yield(Arc{To: v + V(g.NX*g.NY), Seg: g.ViaSeg(l, x, y), L: int8(l), WT: -1, Via: true}) {
			return
		}
	}
}

// FullWindow returns the window covering the whole grid.
func (g *Graph) FullWindow() geom.Rect {
	return geom.Rect{X0: 0, Y0: 0, X1: g.NX - 1, Y1: g.NY - 1}
}

// ArcCapUse returns the capacity units the arc consumes on its segment.
func (g *Graph) ArcCapUse(a Arc) float32 {
	if a.Via {
		return g.Layers[a.L].ViaCapUse
	}
	return g.Layers[a.L].Wires[a.WT].CapUse
}

// Costs provides the cost function c(e) and delay function d(e) for a
// routing state: base costs/delays from the layer stack scaled by a
// per-segment congestion multiplier maintained by the router.
type Costs struct {
	G *Graph
	// Mult is the per-segment congestion price multiplier (≥ MinMult).
	Mult []float32
	// MinMult is a lower bound on Mult entries; future-cost lower bounds
	// rely on it for admissibility.
	MinMult float64

	minWireCost  float64 // min over layers/wires of CostPerGCell
	minWireDelay float64 // min over layers/wires of DelayPerGCell
}

// NewCosts returns a Costs with all multipliers set to 1.
func NewCosts(g *Graph) *Costs {
	c := &Costs{G: g, Mult: make([]float32, g.nSegs), MinMult: 1}
	for i := range c.Mult {
		c.Mult[i] = 1
	}
	c.refreshMins()
	return c
}

func (c *Costs) refreshMins() {
	c.minWireCost = 1e300
	c.minWireDelay = 1e300
	for li := range c.G.Layers {
		for _, w := range c.G.Layers[li].Wires {
			if w.CostPerGCell < c.minWireCost {
				c.minWireCost = w.CostPerGCell
			}
			if w.DelayPerGCell < c.minWireDelay {
				c.minWireDelay = w.DelayPerGCell
			}
		}
	}
}

// ArcCost returns the congestion cost c(e) of the arc.
func (c *Costs) ArcCost(a Arc) float64 {
	m := float64(c.Mult[a.Seg])
	if a.Via {
		return m * c.G.Layers[a.L].ViaCost
	}
	return m * c.G.Layers[a.L].Wires[a.WT].CostPerGCell
}

// ArcDelay returns the delay d(e) of the arc in ps.
func (c *Costs) ArcDelay(a Arc) float64 {
	if a.Via {
		return c.G.Layers[a.L].ViaDelay
	}
	return c.G.Layers[a.L].Wires[a.WT].DelayPerGCell
}

// MinCostPerGCell returns an admissible lower bound on the congestion
// cost of one gcell step anywhere in the graph.
func (c *Costs) MinCostPerGCell() float64 { return c.minWireCost * c.MinMult }

// MinDelayPerGCell returns an admissible lower bound on the delay of one
// gcell step: the fastest layer and wire type combination (paper §III-C).
func (c *Costs) MinDelayPerGCell() float64 { return c.minWireDelay }

// Window maps vertices inside a rectangle (all layers) to a dense index
// range, for DP tables in the topology embedding.
type Window struct {
	R      geom.Rect
	nx, ny int32
	w, h   int32
	layers int32
}

// NewWindow returns a window over rectangle r of graph g.
func (g *Graph) NewWindow(r geom.Rect) Window {
	return Window{R: r, nx: g.NX, ny: g.NY, w: r.W(), h: r.H(), layers: int32(len(g.Layers))}
}

// Size returns the number of vertices in the window.
func (w Window) Size() int32 { return w.w * w.h * w.layers }

// Index returns the dense index of v in the window, or -1 if v is
// outside the window rectangle.
func (w Window) Index(v V) int32 {
	x := int32(v) % w.nx
	t := int32(v) / w.nx
	y := t % w.ny
	l := t / w.ny
	if x < w.R.X0 || x > w.R.X1 || y < w.R.Y0 || y > w.R.Y1 {
		return -1
	}
	return (l*w.h+(y-w.R.Y0))*w.w + (x - w.R.X0)
}

// RectIndex returns the dense index of grid cell (x, y) on layer l.
// The cell must lie inside the window rectangle; indices along a row
// are contiguous, so callers can iterate a sub-rectangle row by row.
func (w Window) RectIndex(x, y, l int32) int32 {
	return (l*w.h+(y-w.R.Y0))*w.w + (x - w.R.X0)
}

// Layers returns the number of layers the window spans.
func (w Window) Layers() int32 { return w.layers }

// Vertex returns the graph vertex for a dense window index.
func (w Window) Vertex(idx int32) V {
	x := idx % w.w
	t := idx / w.w
	y := t % w.h
	l := t / w.h
	return V((l*w.ny+(y+w.R.Y0))*w.nx + (x + w.R.X0))
}
