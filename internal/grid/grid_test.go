package grid

import (
	"math/rand/v2"
	"testing"

	"costdist/internal/geom"
)

func testLayers(n int) []Layer {
	out := make([]Layer, n)
	for i := range out {
		d := DirH
		if i%2 == 1 {
			d = DirV
		}
		out[i] = Layer{
			Name: "M", Dir: d,
			Wires:  []WireType{{Name: "w1", CostPerGCell: 1, DelayPerGCell: 10, CapUse: 1}},
			SegCap: 10, ViaCap: 20, ViaCost: 0.5, ViaDelay: 2, ViaCapUse: 1,
		}
	}
	return out
}

func testGraph(nx, ny int32, layers int) *Graph {
	return New(nx, ny, testLayers(layers), 50)
}

func TestVertexRoundTrip(t *testing.T) {
	g := testGraph(7, 5, 3)
	seen := map[V]bool{}
	for l := int32(0); l < 3; l++ {
		for y := int32(0); y < 5; y++ {
			for x := int32(0); x < 7; x++ {
				v := g.At(x, y, l)
				if seen[v] {
					t.Fatalf("duplicate vertex id %d", v)
				}
				seen[v] = true
				gx, gy, gl := g.XYL(v)
				if gx != x || gy != y || gl != l {
					t.Fatalf("XYL(At(%d,%d,%d)) = %d,%d,%d", x, y, l, gx, gy, gl)
				}
			}
		}
	}
	if int32(len(seen)) != g.NumV() {
		t.Fatalf("NumV = %d but %d distinct ids", g.NumV(), len(seen))
	}
}

func TestSegmentIDsDisjoint(t *testing.T) {
	g := testGraph(6, 4, 4)
	seen := map[int32]string{}
	record := func(s int32, what string) {
		if prev, ok := seen[s]; ok {
			t.Fatalf("segment id %d reused: %s and %s", s, prev, what)
		}
		seen[s] = what
	}
	for l := int32(0); l < 4; l++ {
		if g.Layers[l].Dir == DirH {
			for y := int32(0); y < 4; y++ {
				for x := int32(0); x < 5; x++ {
					record(g.SegH(l, y, x), "H")
				}
			}
		} else {
			for x := int32(0); x < 6; x++ {
				for y := int32(0); y < 3; y++ {
					record(g.SegV(l, x, y), "V")
				}
			}
		}
	}
	for l := int32(0); l < 3; l++ {
		for y := int32(0); y < 4; y++ {
			for x := int32(0); x < 6; x++ {
				record(g.ViaSeg(l, x, y), "via")
			}
		}
	}
	if int32(len(seen)) != g.NumSegs() {
		t.Fatalf("NumSegs = %d but enumerated %d", g.NumSegs(), len(seen))
	}
	for s, what := range seen {
		if (what == "via") != g.IsVia(s) {
			t.Fatalf("IsVia(%d) wrong for %s", s, what)
		}
	}
}

func TestSegLayer(t *testing.T) {
	g := testGraph(6, 4, 4)
	if l := g.SegLayer(g.SegH(0, 1, 2)); l != 0 {
		t.Fatalf("SegLayer H0 = %d", l)
	}
	if l := g.SegLayer(g.SegV(3, 2, 1)); l != 3 {
		t.Fatalf("SegLayer V3 = %d", l)
	}
	if l := g.SegLayer(g.ViaSeg(2, 1, 1)); l != 2 {
		t.Fatalf("SegLayer via2 = %d", l)
	}
}

func TestArcsMatchSegBetween(t *testing.T) {
	g := testGraph(5, 6, 3)
	win := g.FullWindow()
	for v := V(0); v < V(g.NumV()); v++ {
		g.Arcs(v, win, func(a Arc) bool {
			seg, via := g.SegBetween(v, a.To)
			if seg != a.Seg || via != a.Via {
				t.Fatalf("arc %d->%d: seg %d/%v vs SegBetween %d/%v", v, a.To, a.Seg, a.Via, seg, via)
			}
			// Reverse arc must exist with the same segment.
			found := false
			g.Arcs(a.To, win, func(b Arc) bool {
				if b.To == v && b.Seg == a.Seg {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("no reverse arc for %d->%d", v, a.To)
			}
			return true
		})
	}
}

func TestArcsRespectWindow(t *testing.T) {
	g := testGraph(8, 8, 2)
	win := geom.Rect{X0: 2, Y0: 2, X1: 5, Y1: 5}
	for x := int32(2); x <= 5; x++ {
		for y := int32(2); y <= 5; y++ {
			for l := int32(0); l < 2; l++ {
				g.Arcs(g.At(x, y, l), win, func(a Arc) bool {
					ax, ay, _ := g.XYL(a.To)
					if !win.Contains(geom.Pt{X: ax, Y: ay}) {
						t.Fatalf("arc escapes window: (%d,%d)", ax, ay)
					}
					return true
				})
			}
		}
	}
}

func TestArcsDegree(t *testing.T) {
	g := testGraph(4, 4, 3) // H,V,H with 1 wire type each
	count := func(v V) int {
		n := 0
		g.Arcs(v, g.FullWindow(), func(Arc) bool { n++; return true })
		return n
	}
	// Interior of middle layer: 2 wire dirs + up + down = 4.
	if got := count(g.At(1, 1, 1)); got != 4 {
		t.Fatalf("middle layer degree = %d want 4", got)
	}
	// Corner of bottom H layer: +x only, + up via = 2.
	if got := count(g.At(0, 0, 0)); got != 2 {
		t.Fatalf("corner degree = %d want 2", got)
	}
	// Top layer H interior: ±x + down = 3.
	if got := count(g.At(1, 1, 2)); got != 3 {
		t.Fatalf("top layer degree = %d want 3", got)
	}
}

func TestCapacityInit(t *testing.T) {
	g := testGraph(5, 5, 3)
	if g.Cap[g.SegH(0, 2, 1)] != 10 {
		t.Fatal("route cap not initialized")
	}
	if g.Cap[g.ViaSeg(1, 2, 2)] != 20 {
		t.Fatal("via cap not initialized")
	}
}

func TestCostsLookup(t *testing.T) {
	g := testGraph(5, 5, 2)
	c := NewCosts(g)
	var wireArc, viaArc Arc
	g.Arcs(g.At(1, 1, 0), g.FullWindow(), func(a Arc) bool {
		if a.Via {
			viaArc = a
		} else {
			wireArc = a
		}
		return true
	})
	if got := c.ArcCost(wireArc); got != 1 {
		t.Fatalf("wire cost = %v", got)
	}
	if got := c.ArcDelay(wireArc); got != 10 {
		t.Fatalf("wire delay = %v", got)
	}
	if got := c.ArcCost(viaArc); got != 0.5 {
		t.Fatalf("via cost = %v", got)
	}
	if got := c.ArcDelay(viaArc); got != 2 {
		t.Fatalf("via delay = %v", got)
	}
	c.Mult[wireArc.Seg] = 3
	if got := c.ArcCost(wireArc); got != 3 {
		t.Fatalf("scaled wire cost = %v", got)
	}
	if c.MinCostPerGCell() != 1 || c.MinDelayPerGCell() != 10 {
		t.Fatalf("min bounds %v %v", c.MinCostPerGCell(), c.MinDelayPerGCell())
	}
}

func TestWindowRoundTrip(t *testing.T) {
	g := testGraph(9, 7, 3)
	r := geom.Rect{X0: 2, Y0: 1, X1: 6, Y1: 5}
	w := g.NewWindow(r)
	if w.Size() != 5*5*3 {
		t.Fatalf("window size %d", w.Size())
	}
	seen := map[int32]bool{}
	for l := int32(0); l < 3; l++ {
		for y := r.Y0; y <= r.Y1; y++ {
			for x := r.X0; x <= r.X1; x++ {
				v := g.At(x, y, l)
				idx := w.Index(v)
				if idx < 0 || idx >= w.Size() {
					t.Fatalf("index out of range: %d", idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate window index %d", idx)
				}
				seen[idx] = true
				if w.Vertex(idx) != v {
					t.Fatalf("Vertex(Index(%d)) = %d", v, w.Vertex(idx))
				}
			}
		}
	}
	if w.Index(g.At(1, 3, 0)) != -1 || w.Index(g.At(7, 3, 1)) != -1 {
		t.Fatal("outside vertices should map to -1")
	}
}

func TestArcCapUse(t *testing.T) {
	layers := testLayers(2)
	layers[0].Wires = append(layers[0].Wires, WireType{Name: "wide", CostPerGCell: 2, DelayPerGCell: 5, CapUse: 2})
	g := New(4, 4, layers, 50)
	var got []float32
	g.Arcs(g.At(1, 1, 0), g.FullWindow(), func(a Arc) bool {
		got = append(got, g.ArcCapUse(a))
		return true
	})
	// ±x with 2 wire types each (1 and 2), plus via (1).
	want := map[float32]int{1: 3, 2: 2}
	cnt := map[float32]int{}
	for _, u := range got {
		cnt[u]++
	}
	if cnt[1] != want[1] || cnt[2] != want[2] {
		t.Fatalf("cap uses %v", cnt)
	}
}

func BenchmarkArcsIteration(b *testing.B) {
	g := testGraph(64, 64, 9)
	win := g.FullWindow()
	rng := rand.New(rand.NewPCG(1, 2))
	verts := make([]V, 1024)
	for i := range verts {
		verts[i] = V(rng.Int32N(g.NumV()))
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		g.Arcs(verts[i&1023], win, func(a Arc) bool { sink += int(a.Seg); return true })
	}
	_ = sink
}

func TestSegRect(t *testing.T) {
	g := testGraph(7, 5, 4)
	// Every routing segment's rect must cover exactly the two endpoint
	// gcells; every via segment's rect its single gcell. Enumerate all
	// segment constructors and invert through SegRect.
	for l := int32(0); l < 4; l++ {
		if g.Layers[l].Dir == DirH {
			for y := int32(0); y < g.NY; y++ {
				for x := int32(0); x < g.NX-1; x++ {
					r := g.SegRect(g.SegH(l, y, x))
					want := geom.Rect{X0: x, Y0: y, X1: x + 1, Y1: y}
					if r != want {
						t.Fatalf("SegH(%d,%d,%d) rect %+v want %+v", l, y, x, r, want)
					}
				}
			}
		} else {
			for x := int32(0); x < g.NX; x++ {
				for y := int32(0); y < g.NY-1; y++ {
					r := g.SegRect(g.SegV(l, x, y))
					want := geom.Rect{X0: x, Y0: y, X1: x, Y1: y + 1}
					if r != want {
						t.Fatalf("SegV(%d,%d,%d) rect %+v want %+v", l, x, y, r, want)
					}
				}
			}
		}
		if l+1 < 4 {
			for y := int32(0); y < g.NY; y++ {
				for x := int32(0); x < g.NX; x++ {
					r := g.SegRect(g.ViaSeg(l, x, y))
					want := geom.Rect{X0: x, Y0: y, X1: x, Y1: y}
					if r != want {
						t.Fatalf("ViaSeg(%d,%d,%d) rect %+v want %+v", l, x, y, r, want)
					}
				}
			}
		}
	}
}
