// Package reembed is the topology-repair rung of the incremental
// routing engine: a fixed-topology optimal re-embedding of a cached net
// tree under the current congestion and timing prices. Between the two
// existing rungs — replay a cached tree verbatim, or pay a full oracle
// solve — it implements the middle tier of Maßberg's fixed-topology
// rectilinear Steiner DP (arXiv 1412.5010): keep the cached tree's
// topology (the parent/child structure over root, sinks and Steiner
// points), let every Steiner point float, and re-embed the topology
// cost-minimally in time polynomial in the tree size.
//
// The pipeline per net is extraction → re-embedding → adoption:
//
//   - ExtractTopology contracts the cached embedded tree (nets.RTree)
//     back to its plane topology: tree vertices hosting sinks or three
//     or more tree branches become topology nodes, degree-2
//     pass-through chains are spliced out. Bend positions carry no
//     information — the re-embedding re-routes every topology edge
//     anyway.
//   - Reembed runs the same two-pass bottom-up/top-down dynamic program
//     as package embed (spread child tables toward the parent by
//     multi-source Dijkstra under the metric c(e) + W·d(e), then
//     reconstruct top-down), but over the small repair window around
//     the cached tree instead of the oracle's full routing window, and
//     on a reusable generation-stamped Scratch (the sparse.FlatI32
//     idiom from the solver arenas) instead of per-call allocations.
//     Restricted to the window grid of the subtree's terminals, the DP
//     returns the cost-minimal embedding of the topology.
//   - Repair evaluates both the repaired and the cached tree under the
//     current prices through nets.Evaluate and adopts the cheaper one,
//     so a repair outcome never prices above the replayed cached tree.
//
// Everything is a pure function of (instance, cached tree): results are
// independent of worker count and scheduling, which is what lets the
// router keep its bit-identical determinism guarantees with the repair
// rung enabled.
package reembed

import (
	"errors"
	"fmt"
	"math"

	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
	"costdist/internal/obs"
	"costdist/internal/sparse"
)

var inf32 = float32(math.Inf(1))

// Halo is the window margin, in gcells, added around the cached tree's
// bounding box (plus the terminals) to form the repair window. The DP
// embeds optimally within the window; a small halo lets a repaired
// Steiner point sidestep a freshly priced hot spot next to the tree
// without paying for the oracle's full routing window.
const Halo = 2

// maxTableCells bounds window-size × topology-node-count, the DP's
// table footprint in float32 cells. Nets beyond it (huge windows, very
// high fanout) report ErrTooLarge and escalate to a full solve instead
// of allocating hundreds of MB per worker.
const maxTableCells = 16 << 20

// maxSettles bounds the total Dijkstra settle count of one repair
// attempt across all spreads. The bound-pruned corridor keeps typical
// repairs far below it; a net that blows the budget (big window and a
// loose cost bound — heavy drift on a high-fanout net) is exactly a
// net where the oracle's own goal-directed search is the cheaper tool,
// so the attempt aborts with ErrTooLarge and escalates. Settle order
// is deterministic, so the cutoff is too.
const maxSettles = 48 << 10

// ErrTooLarge reports a net whose repair tables would exceed
// maxTableCells; the caller escalates it to a full oracle solve.
var ErrTooLarge = errors.New("reembed: repair tables too large")

// errNoImprovement reports that every embedding of the topology prices
// at or above the cost bound the DP was given — the cached tree is
// already optimal-or-tied within the window, so Repair adopts it
// without error.
var errNoImprovement = errors.New("reembed: no embedding under cost bound")

// Outcome is the result of one repair attempt.
type Outcome struct {
	// Tree is the adopted tree: the re-embedding when it prices below
	// the cached tree, the cached tree otherwise.
	Tree *nets.RTree
	// Eval is Tree's evaluation under the current prices; CachedEval
	// the cached tree's. Eval.Total ≤ CachedEval.Total always holds.
	Eval       *nets.Eval
	CachedEval *nets.Eval
	// Improved reports whether the re-embedding beat the cached tree.
	Improved bool
}

// Scratch is the reusable per-worker workspace of the repair DP:
// epoch-stamped Dijkstra state over the repair window (O(1) reset, the
// sparse.FlatI32 idiom) plus a pooled slab of per-node cost tables.
// Not safe for concurrent use; give each worker its own.
type Scratch struct {
	// vid maps window indices to dense tree-vertex ids during topology
	// extraction.
	vid sparse.FlatI32

	// Dijkstra workspace over the current window, epoch-stamped so a
	// new spread never clears O(window) memory.
	dist    []float64
	pred    []int32
	parc    []grid.Arc
	touched []uint32
	settled []uint32
	epoch   uint32
	heap    heaps.Lazy[int32]

	// tables pools the per-node DP tables across calls; ntab is the
	// number handed out in the current call.
	tables [][]float32
	ntab   int

	// Obs, when non-nil, is the owning router worker's telemetry sink;
	// Repair records the re-embedding DP on it as a detail span nested
	// inside the router's repair span. The router re-points it every
	// wave (nil on unrecorded runs); it never influences the repair.
	Obs *obs.Worker
}

// NewScratch returns an empty workspace; it grows to the largest
// repair window it ever serves and is reused across nets and waves.
func NewScratch() *Scratch { return &Scratch{} }

// ensure sizes the Dijkstra workspace for a window of the given size
// and advances the epoch, invalidating all previous stamps in O(1).
func (s *Scratch) ensure(size int32) {
	n := int(size)
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.pred = make([]int32, n)
		s.parc = make([]grid.Arc, n)
		s.touched = make([]uint32, n)
		s.settled = make([]uint32, n)
		s.epoch = 0
	}
	s.dist = s.dist[:n]
	s.pred = s.pred[:n]
	s.parc = s.parc[:n]
	s.touched = s.touched[:n]
	s.settled = s.settled[:n]
	if s.epoch == math.MaxUint32-1 {
		// Stamp space nearly exhausted: pay one clear, restart stamps.
		for i := range s.touched {
			s.touched[i] = 0
			s.settled[i] = 0
		}
		s.epoch = 0
	}
}

// grabTable hands out a pooled float32 table of the given size; its
// contents are undefined and must be fully written by the caller.
func (s *Scratch) grabTable(size int32) []float32 {
	if s.ntab == len(s.tables) {
		s.tables = append(s.tables, nil)
	}
	t := s.tables[s.ntab]
	if cap(t) < int(size) {
		t = make([]float32, size)
	}
	t = t[:size]
	s.tables[s.ntab] = t
	s.ntab++
	return t
}

// Window returns the repair window of a cached tree: the bounding box
// of the tree and the instance terminals, expanded by Halo and clamped
// to the grid.
func Window(in *nets.Instance, cached *nets.RTree) geom.Rect {
	r := cached.BBox(in.G)
	r = r.Add(in.G.Pt(in.Root))
	for _, s := range in.Sinks {
		r = r.Add(in.G.Pt(s.V))
	}
	return r.Expand(Halo, in.G.NX, in.G.NY)
}

// Repair attempts the fixed-topology re-embedding of a cached tree
// under the instance's current prices and returns the adopted tree —
// the re-embedding when it is strictly cheaper, the cached tree
// otherwise — together with both evaluations. Errors (malformed cached
// tree, repair tables too large) mean the net cannot be repaired and
// must escalate to a full solve.
func Repair(in *nets.Instance, cached *nets.RTree, scr *Scratch) (*Outcome, error) {
	if scr == nil {
		scr = NewScratch()
	}
	cachedEval, err := nets.Evaluate(in, cached)
	if err != nil {
		return nil, fmt.Errorf("reembed: cached tree: %w", err)
	}
	if len(cached.Steps) == 0 {
		// Every terminal sits on the root vertex; there is nothing to
		// re-embed.
		return &Outcome{Tree: cached, Eval: cachedEval, CachedEval: cachedEval}, nil
	}
	win := Window(in, cached)
	topo, err := ExtractTopology(in, cached, win, scr)
	if err != nil {
		return nil, err
	}
	// The cached tree's priced total is a hard cost bound for the DP:
	// adoption is strict-<, so embeddings at or above it are worthless
	// and the spreads prune to the corridor that can still beat it.
	bound := cachedEval.Total * (1 + 1e-9)
	var dpT0 int64
	if scr.Obs != nil {
		dpT0 = scr.Obs.Now()
	}
	tr, _, err := Reembed(in, topo, win, bound, scr)
	if scr.Obs != nil {
		scr.Obs.DetailSpan(obs.StageRepair, -1, "reembed-dp", dpT0)
	}
	if errors.Is(err, errNoImprovement) {
		return &Outcome{Tree: cached, Eval: cachedEval, CachedEval: cachedEval}, nil
	}
	if err != nil {
		return nil, err
	}
	ev, err := nets.Evaluate(in, tr)
	if err != nil {
		return nil, fmt.Errorf("reembed: repaired tree: %w", err)
	}
	// Adoption rule: strict < keeps the cached tree on ties, so a
	// repair can only ever lower the priced objective.
	if ev.Total < cachedEval.Total {
		return &Outcome{Tree: tr, Eval: ev, CachedEval: cachedEval, Improved: true}, nil
	}
	return &Outcome{Tree: cached, Eval: cachedEval, CachedEval: cachedEval}, nil
}

// ExtractTopology contracts a cached embedded tree to its plane
// topology. Topology nodes are the root, every vertex hosting a sink,
// and every vertex where the rooted tree branches; pass-through chains
// between them are spliced out, dangling stubs dropped. The result is
// a valid PlaneTree over the instance's sinks (Canonicalize-ready; the
// caller binarizes it).
func ExtractTopology(in *nets.Instance, cached *nets.RTree, winRect geom.Rect, scr *Scratch) (*nets.PlaneTree, error) {
	g := in.G
	win := g.NewWindow(winRect)
	scr.vid.Reset(int(win.Size()))

	// Dense-id the tree vertices in step order (deterministic).
	verts := make([]grid.V, 0, len(cached.Steps)+1)
	id := func(v grid.V) (int32, error) {
		idx := win.Index(v)
		if idx < 0 {
			return -1, fmt.Errorf("reembed: tree vertex %d outside repair window", v)
		}
		if got, ok := scr.vid.Get(idx); ok {
			return got, nil
		}
		nid := int32(len(verts))
		scr.vid.Put(idx, nid)
		verts = append(verts, v)
		return nid, nil
	}
	rootID, err := id(in.Root)
	if err != nil {
		return nil, err
	}
	type edge struct{ a, b int32 }
	edges := make([]edge, 0, len(cached.Steps))
	for _, st := range cached.Steps {
		a, err := id(st.From)
		if err != nil {
			return nil, err
		}
		b, err := id(st.Arc.To)
		if err != nil {
			return nil, err
		}
		edges = append(edges, edge{a, b})
	}
	nv := len(verts)

	// Adjacency as a linked edge list (two half-edges per step).
	head := make([]int32, nv)
	for i := range head {
		head[i] = -1
	}
	next := make([]int32, 0, 2*len(edges))
	to := make([]int32, 0, 2*len(edges))
	addHalf := func(from, t int32) {
		next = append(next, head[from])
		to = append(to, t)
		head[from] = int32(len(to) - 1)
	}
	for _, e := range edges {
		addHalf(e.a, e.b)
		addHalf(e.b, e.a)
	}

	// Root the tree: BFS parents from the root vertex.
	parent := make([]int32, nv)
	order := make([]int32, 0, nv)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[rootID] = -1
	order = append(order, rootID)
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for ei := head[v]; ei >= 0; ei = next[ei] {
			c := to[ei]
			if parent[c] == -2 {
				parent[c] = v
				order = append(order, c)
			}
		}
	}
	if len(order) != nv {
		return nil, fmt.Errorf("reembed: cached tree disconnected from root")
	}

	// Children per vertex (adjacency order) and hosted sinks.
	kids := make([][]int32, nv)
	for _, v := range order {
		for ei := head[v]; ei >= 0; ei = next[ei] {
			c := to[ei]
			if parent[c] == v {
				kids[v] = append(kids[v], c)
			}
		}
	}
	sinksOf := make([][]int32, nv)
	for si, s := range in.Sinks {
		idx := win.Index(s.V)
		var vid int32 = -1
		if idx >= 0 {
			if got, ok := scr.vid.Get(idx); ok {
				vid = got
			}
		}
		if vid < 0 {
			return nil, fmt.Errorf("reembed: sink %d not on cached tree", si)
		}
		sinksOf[vid] = append(sinksOf[vid], int32(si))
	}

	out := &nets.PlaneTree{}
	out.Nodes = append(out.Nodes, nets.PlaneNode{Pos: g.Pt(in.Root), Parent: -1, SinkIdx: -1})
	// Sinks hosted on the root vertex hang as leaves under node 0 (the
	// root node itself must stay a plain terminal).
	for _, si := range sinksOf[rootID] {
		out.Nodes = append(out.Nodes, nets.PlaneNode{Pos: g.Pt(in.Root), Parent: 0, SinkIdx: si})
	}

	// attach materializes the topology node for the subtree entered at
	// dense vertex v under PlaneTree node parentNode, splicing
	// pass-through chains on the way down.
	var attach func(v, parentNode int32)
	attach = func(v, parentNode int32) {
		for len(sinksOf[v]) == 0 && len(kids[v]) == 1 {
			v = kids[v][0]
		}
		if len(sinksOf[v]) == 0 && len(kids[v]) == 0 {
			return // dangling stub: carries nothing
		}
		n := nets.PlaneNode{Pos: g.Pt(verts[v]), Parent: parentNode, SinkIdx: -1}
		hosted := sinksOf[v]
		if len(hosted) > 0 {
			n.SinkIdx = hosted[0]
			hosted = hosted[1:]
		}
		out.Nodes = append(out.Nodes, n)
		me := int32(len(out.Nodes) - 1)
		// Co-located extra sinks become leaf children at the same spot.
		for _, si := range hosted {
			out.Nodes = append(out.Nodes, nets.PlaneNode{Pos: n.Pos, Parent: me, SinkIdx: si})
		}
		for _, c := range kids[v] {
			attach(c, me)
		}
	}
	for _, c := range kids[rootID] {
		attach(c, 0)
	}
	return out, nil
}

// Reembed embeds the topology cost-minimally into in.G restricted to
// the window win: the two-pass DP of package embed (bottom-up tables
// spread by multi-source Dijkstra, top-down reconstruction) on the
// reusable scratch. It returns the embedded tree and the DP's
// objective estimate (congestion + weighted delay + bifurcation
// penalty constants). bound is a hard total-cost cutoff: the spreads
// prune every partial embedding that already prices at or above it
// (pass +Inf for the unbounded DP) and errNoImprovement reports that
// no embedding beats it.
func Reembed(in *nets.Instance, tree *nets.PlaneTree, winRect geom.Rect, bound float64, scr *Scratch) (*nets.RTree, float64, error) {
	if scr == nil {
		scr = NewScratch()
	}
	sinkW := make([]float64, len(in.Sinks))
	for i, s := range in.Sinks {
		sinkW[i] = s.W
	}
	ct := tree.Canonicalize(sinkW, in.DBif, in.Eta)
	if err := ct.Validate(len(in.Sinks)); err != nil {
		return nil, 0, fmt.Errorf("reembed: %w", err)
	}
	kids := ct.Children()
	if len(kids[0]) == 0 {
		return &nets.RTree{}, 0, nil
	}

	win := in.G.NewWindow(winRect)
	size := win.Size()
	if int64(size)*int64(len(ct.Nodes)) > maxTableCells {
		return nil, 0, ErrTooLarge
	}
	e := &reembedder{in: in, ct: ct, kids: kids, win: win, size: size, scr: scr}
	e.subW = make([]float64, len(ct.Nodes))
	e.computeSubW(0)
	e.rects = make([]geom.Rect, len(ct.Nodes))
	e.computeRects()
	e.acc = make([][]float32, len(ct.Nodes))
	scr.ensure(size)
	scr.ntab = 0

	rootIdx := win.Index(in.Root)
	if rootIdx < 0 {
		return nil, 0, fmt.Errorf("reembed: root outside repair window")
	}

	// The bifurcation penalties are constants of the topology (they
	// depend only on the subtree weight split, never on positions), so
	// they come off the bound before the spreads see it.
	penalty := 0.0
	for v := range kids {
		if ch := kids[v]; len(ch) == 2 {
			penalty += nets.Beta(in.DBif, in.Eta, e.subW[ch[0]], e.subW[ch[1]])
		}
	}
	e.bound = bound - penalty

	// Bottom-up tables.
	var up func(v int32) error
	up = func(v int32) error {
		for _, c := range kids[v] {
			if err := up(c); err != nil {
				return err
			}
		}
		return e.accumulate(v)
	}
	top := kids[0][0]
	if err := up(top); err != nil {
		return nil, 0, err
	}

	// Top edge: spread the root's single child toward the root vertex.
	e.spread(top, rootIdx, e.corridor(e.rects[top].Add(in.G.Pt(in.Root))))
	if e.aborted {
		return nil, 0, ErrTooLarge
	}
	if e.scr.settled[rootIdx] != e.scr.epoch {
		if !math.IsInf(bound, 1) {
			return nil, 0, errNoImprovement
		}
		return nil, 0, fmt.Errorf("reembed: root unreachable in repair window")
	}
	estimate := e.scr.dist[rootIdx] + penalty
	// Reconstruction re-runs each spread with an early-termination
	// target; give it a fresh settle budget so a DP that just fit the
	// bottom-up budget cannot abort while tracing the tree it found.
	e.work = 0

	// Top-down reconstruction; children are re-spread on demand so the
	// workspace holds the spread of the node currently being traced.
	var steps []nets.Step
	var down func(v, atIdx int32) error
	down = func(v, atIdx int32) error {
		cur := atIdx
		for e.scr.pred[cur] >= 0 {
			p := e.scr.pred[cur]
			steps = append(steps, nets.Step{From: win.Vertex(p), Arc: e.scr.parc[cur]})
			cur = p
		}
		for _, c := range kids[v] {
			base := e.rects[c].Union(e.rects[v]).Add(in.G.Pt(win.Vertex(cur)))
			e.spread(c, cur, e.corridor(base))
			if e.aborted {
				return ErrTooLarge
			}
			if e.scr.settled[cur] != e.scr.epoch {
				return fmt.Errorf("reembed: reconstruction target unreachable")
			}
			if err := down(c, cur); err != nil {
				return err
			}
		}
		return nil
	}
	if err := down(top, rootIdx); err != nil {
		return nil, 0, err
	}

	rt, err := nets.PruneToTree(in, steps)
	if err != nil {
		return nil, 0, err
	}
	return rt, estimate, nil
}

// reembedder is the per-call view of the DP: topology, window and the
// borrowed scratch.
type reembedder struct {
	in   *nets.Instance
	ct   *nets.PlaneTree
	kids [][]int32
	win  grid.Window
	size int32
	subW []float64
	// rects[v] is the degenerate box at topology node v's cached
	// position. A repair is a local perturbation of the cached tree —
	// every node re-places within the halo of where it was — so the
	// spread of a topology edge is confined to the halo-expanded bbox
	// of its two cached endpoints (the corridor) instead of the whole
	// repair window. Correctness is unaffected: adoption re-evaluates
	// the reconstructed tree, so narrowing the search can only trade
	// repair power for speed, never produce a tree worse than replay;
	// nets whose better embedding lies outside every corridor come back
	// unimproved and escalate through the cost check.
	rects []geom.Rect
	// bound is the spread-level cost cutoff (total bound minus the
	// constant bifurcation penalties); labels at or above it are pruned.
	bound float64
	// work counts Dijkstra settles across all spreads; aborted flags a
	// spread cut short by the maxSettles budget (its workspace is
	// incomplete and must not be read).
	work    int
	aborted bool
	// acc[v] is D_v: min subtree cost with node v embedded at each
	// window vertex, on tables borrowed from the scratch pool.
	acc [][]float32
	scr *Scratch
}

func (e *reembedder) computeSubW(v int32) float64 {
	w := 0.0
	if s := e.ct.Nodes[v].SinkIdx; s >= 0 {
		w = e.in.Sinks[s].W
	}
	for _, c := range e.kids[v] {
		w += e.computeSubW(c)
	}
	e.subW[v] = w
	return w
}

func (e *reembedder) computeRects() {
	for v, n := range e.ct.Nodes {
		e.rects[v] = geom.Rect{X0: n.Pos.X, Y0: n.Pos.Y, X1: n.Pos.X, Y1: n.Pos.Y}
	}
}

// corridor halo-expands a base box and clamps it to the repair window,
// yielding the sub-rectangle one spread is allowed to explore.
func (e *reembedder) corridor(base geom.Rect) geom.Rect {
	return base.Expand(Halo, e.in.G.NX, e.in.G.NY).Intersect(e.win.R)
}

// accumulate builds acc[v]: the summed spreads of v's children, with
// cells whose partial cost already reaches the bound pruned to inf
// (every term is nonnegative, so a partial sum at the bound can never
// be part of an embedding below it).
func (e *reembedder) accumulate(v int32) error {
	n := e.ct.Nodes[v]
	tbl := e.scr.grabTable(e.size)
	if n.SinkIdx >= 0 {
		for i := range tbl {
			tbl[i] = inf32
		}
		idx := e.win.Index(e.in.Sinks[n.SinkIdx].V)
		if idx < 0 {
			return fmt.Errorf("reembed: sink %d outside repair window", n.SinkIdx)
		}
		tbl[idx] = 0
		e.acc[v] = tbl
		return nil
	}
	ch := e.kids[v]
	bound := e.bound
	any := false
	for i, c := range ch {
		any = false
		e.spread(c, -1, e.corridor(e.rects[c].Union(e.rects[v])))
		if e.aborted {
			return ErrTooLarge
		}
		if i == 0 {
			for x := int32(0); x < e.size; x++ {
				if e.scr.settled[x] == e.scr.epoch {
					tbl[x] = float32(e.scr.dist[x])
					any = true
				} else {
					tbl[x] = inf32
				}
			}
		} else {
			for x := int32(0); x < e.size; x++ {
				if tbl[x] == inf32 {
					continue
				}
				if e.scr.settled[x] == e.scr.epoch &&
					float64(tbl[x])+e.scr.dist[x] < bound {
					tbl[x] += float32(e.scr.dist[x])
					any = true
				} else {
					tbl[x] = inf32
				}
			}
		}
	}
	if !any {
		if !math.IsInf(bound, 1) {
			return errNoImprovement
		}
		return fmt.Errorf("reembed: subtree unreachable in repair window")
	}
	e.acc[v] = tbl
	return nil
}

// spread runs a multi-source Dijkstra seeded with acc[c] under the
// metric cost + subW[c]·delay, filling the scratch workspace. The
// search never leaves corr — the corridor around the subtree and its
// destination (every finite seed lies inside it by construction). If
// target ≥ 0 the search stops as soon as that window index settles;
// with target -1 it exhausts the corridor.
func (e *reembedder) spread(c, target int32, corr geom.Rect) {
	w := e.subW[c]
	s := e.scr
	s.epoch++
	s.heap.Reset()
	seeds := e.acc[c]
	costs := e.in.C
	g := e.in.G
	bound := e.bound
	for l := int32(0); l < e.win.Layers(); l++ {
		for y := corr.Y0; y <= corr.Y1; y++ {
			x0 := e.win.RectIndex(corr.X0, y, l)
			x1 := e.win.RectIndex(corr.X1, y, l)
			for x := x0; x <= x1; x++ {
				if seeds[x] < inf32 && float64(seeds[x]) < bound {
					s.dist[x] = float64(seeds[x])
					s.pred[x] = -1
					s.touched[x] = s.epoch
					s.heap.Push(s.dist[x], x)
				}
			}
		}
	}
	for s.heap.Len() > 0 {
		k, x := s.heap.Pop()
		if k >= bound {
			return // keys are monotone: everything left prices out
		}
		if s.settled[x] == s.epoch || k > s.dist[x] {
			continue
		}
		s.settled[x] = s.epoch
		e.work++
		if e.work > maxSettles {
			e.aborted = true
			return
		}
		if x == target {
			return
		}
		v := e.win.Vertex(x)
		g.Arcs(v, e.win.R, func(a grid.Arc) bool {
			y := e.win.Index(a.To)
			if y < 0 || s.settled[y] == s.epoch {
				return true
			}
			xv := int32(a.To) % g.NX
			yv := (int32(a.To) / g.NX) % g.NY
			if xv < corr.X0 || xv > corr.X1 || yv < corr.Y0 || yv > corr.Y1 {
				return true
			}
			nd := k + costs.ArcCost(a) + w*costs.ArcDelay(a)
			if nd < bound && (s.touched[y] != s.epoch || nd < s.dist[y]) {
				s.dist[y] = nd
				s.pred[y] = x
				s.parc[y] = a
				s.touched[y] = s.epoch
				s.heap.Push(nd, y)
			}
			return true
		})
	}
}
