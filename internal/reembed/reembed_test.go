package reembed

import (
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/dly"
	"costdist/internal/embed"
	"costdist/internal/exact"
	"costdist/internal/grid"
	"costdist/internal/nets"
	"costdist/internal/rsmt"
)

func newGraph(nx, ny int32, nLayers int) *grid.Graph {
	tech := dly.DefaultTech(nLayers)
	return grid.New(nx, ny, tech.BuildLayers(), tech.GCellUM)
}

func testInstance(g *grid.Graph, root grid.V, sinks []nets.Sink) *nets.Instance {
	in := &nets.Instance{G: g, C: grid.NewCosts(g), Root: root, Sinks: sinks, DBif: 0, Eta: 0.25}
	in.Win = g.FullWindow()
	return in
}

// cachedTree builds a "previous wave" tree for the instance with the
// embedding DP over an RSMT topology — the same shape the router caches.
func cachedTree(t *testing.T, in *nets.Instance) *nets.RTree {
	t.Helper()
	topo := rsmt.Build(in.TermPts())
	res, err := embed.Embed(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	return res.Tree
}

func treeEqual(a, b *nets.RTree) bool {
	if len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			return false
		}
	}
	return true
}

// TestRepairPropertyBounds is the repair-tier contract: on seeded
// instances with perturbed prices, the adopted tree's priced cost is
// ≤ the replayed cached tree's cost and ≥ the full re-solve optimum.
func TestRepairPropertyBounds(t *testing.T) {
	g := newGraph(9, 9, 2)
	rng := rand.New(rand.NewPCG(21, 7))
	scr := NewScratch()
	improved := 0
	for it := 0; it < 40; it++ {
		n := 1 + rng.IntN(4)
		sinks := make([]nets.Sink, n)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(9), rng.Int32N(9), 0), W: rng.Float64() * 2}
		}
		in := testInstance(g, g.At(rng.Int32N(9), rng.Int32N(9), 0), sinks)
		cached := cachedTree(t, in)

		// Reprice a random slice of segments, as a congestion wave would.
		for k := 0; k < 40; k++ {
			in.C.Mult[rng.IntN(len(in.C.Mult))] = 1 + rng.Float32()*8
		}

		out, err := Repair(in, cached, scr)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := nets.Evaluate(in, cached)
		if err != nil {
			t.Fatal(err)
		}
		if out.Eval.Total > replay.Total+1e-9 {
			t.Fatalf("it %d: repaired %v worse than replay %v", it, out.Eval.Total, replay.Total)
		}
		ex, err := exact.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if out.Eval.Total < ex.LowerBound-1e-6*math.Max(1, ex.LowerBound) {
			t.Fatalf("it %d: repaired %v below optimum %v", it, out.Eval.Total, ex.LowerBound)
		}
		if out.Improved {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("repair never improved on any perturbed instance — rung is inert")
	}
}

// TestRepairUnderUnchangedPrices: with nothing repriced, the fixed
// topology DP re-finds an embedding at least as good as the cached one.
func TestRepairUnderUnchangedPrices(t *testing.T) {
	g := newGraph(12, 12, 3)
	rng := rand.New(rand.NewPCG(3, 9))
	scr := NewScratch()
	for it := 0; it < 25; it++ {
		n := 1 + rng.IntN(6)
		sinks := make([]nets.Sink, n)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(12), rng.Int32N(12), 0), W: rng.Float64() * 3}
		}
		in := testInstance(g, g.At(rng.Int32N(12), rng.Int32N(12), 0), sinks)
		in.DBif = 2
		cached := cachedTree(t, in)
		out, err := Repair(in, cached, scr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nets.Evaluate(in, out.Tree); err != nil {
			t.Fatalf("it %d: adopted tree invalid: %v", it, err)
		}
		if out.Eval.Total > out.CachedEval.Total+1e-9 {
			t.Fatalf("it %d: adoption rule violated: %v > %v", it, out.Eval.Total, out.CachedEval.Total)
		}
	}
}

// TestRepairDetoursAroundPricedWall: price a short wall across the
// cached path; the repair must route around it inside the halo window.
func TestRepairDetoursAroundPricedWall(t *testing.T) {
	g := newGraph(10, 10, 2)
	in := testInstance(g, g.At(0, 0, 0), []nets.Sink{{V: g.At(9, 0, 0), W: 0}})
	cached := cachedTree(t, in)

	// Wall on layer-0 horizontal segments at x=4, rows 0..1 — the halo
	// window (rows 0..2) leaves row 2 open for the detour.
	for y := int32(0); y < 2; y++ {
		in.C.Mult[g.SegH(0, y, 4)] = 50
	}
	out, err := Repair(in, cached, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Improved {
		t.Fatalf("repair did not improve: %v vs cached %v", out.Eval.Total, out.CachedEval.Total)
	}
	for _, st := range out.Tree.Steps {
		if !st.Arc.Via && in.C.Mult[st.Arc.Seg] > 1 {
			t.Fatalf("repaired tree still uses priced segment %d", st.Arc.Seg)
		}
	}
}

// TestRepairDeterministicAcrossScratchReuse: the repair is a pure
// function of (instance, cached tree) — reusing a dirty scratch or
// using a fresh one must give bit-identical trees.
func TestRepairDeterministicAcrossScratchReuse(t *testing.T) {
	g := newGraph(14, 14, 3)
	rng := rand.New(rand.NewPCG(8, 4))
	shared := NewScratch()
	for it := 0; it < 15; it++ {
		n := 2 + rng.IntN(5)
		sinks := make([]nets.Sink, n)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(14), rng.Int32N(14), rng.Int32N(2)), W: rng.Float64() * 2}
		}
		in := testInstance(g, g.At(rng.Int32N(14), rng.Int32N(14), 0), sinks)
		in.DBif = 3
		cached := cachedTree(t, in)
		for k := 0; k < 30; k++ {
			in.C.Mult[rng.IntN(len(in.C.Mult))] = 1 + rng.Float32()*5
		}
		a, err := Repair(in, cached, shared)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Repair(in, cached, shared)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Repair(in, cached, NewScratch())
		if err != nil {
			t.Fatal(err)
		}
		if !treeEqual(a.Tree, b.Tree) || !treeEqual(a.Tree, c.Tree) {
			t.Fatalf("it %d: repair not deterministic across scratch reuse", it)
		}
	}
}

// TestExtractTopologyShape: extraction contracts pass-through chains,
// keeps every sink exactly once, and yields a Canonicalize-valid tree.
func TestExtractTopologyShape(t *testing.T) {
	g := newGraph(16, 16, 4)
	rng := rand.New(rand.NewPCG(13, 2))
	scr := NewScratch()
	for it := 0; it < 20; it++ {
		n := 1 + rng.IntN(8)
		sinks := make([]nets.Sink, n)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(16), rng.Int32N(16), 0), W: rng.Float64()}
		}
		in := testInstance(g, g.At(rng.Int32N(16), rng.Int32N(16), 0), sinks)
		cached := cachedTree(t, in)
		if len(cached.Steps) == 0 {
			continue
		}
		topo, err := ExtractTopology(in, cached, Window(in, cached), scr)
		if err != nil {
			t.Fatal(err)
		}
		sinkW := make([]float64, len(in.Sinks))
		for i, s := range in.Sinks {
			sinkW[i] = s.W
		}
		ct := topo.Canonicalize(sinkW, in.DBif, in.Eta)
		if err := ct.Validate(len(in.Sinks)); err != nil {
			t.Fatalf("it %d: extracted topology invalid: %v", it, err)
		}
		// Every non-leaf chain is contracted: topology nodes are at most
		// terminals + branch points, far below the step count of the
		// embedded tree for multi-step nets.
		if len(topo.Nodes) > 2*(len(in.Sinks)+1) {
			t.Fatalf("it %d: extraction kept %d nodes for %d sinks — chains not spliced",
				it, len(topo.Nodes), len(in.Sinks))
		}
	}
}

// TestRepairColocatedTerminals: all sinks on the root vertex → empty
// cached tree, trivially clean outcome.
func TestRepairColocatedTerminals(t *testing.T) {
	g := newGraph(6, 6, 2)
	root := g.At(3, 3, 0)
	in := testInstance(g, root, []nets.Sink{{V: root, W: 1}, {V: root, W: 2}})
	cached := cachedTree(t, in)
	if len(cached.Steps) != 0 {
		t.Fatalf("expected empty cached tree, got %d steps", len(cached.Steps))
	}
	out, err := Repair(in, cached, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	if out.Improved || len(out.Tree.Steps) != 0 {
		t.Fatal("co-located net should repair to the empty tree unchanged")
	}
}
