// Package pd implements the Prim-Dijkstra baseline (paper §IV-A,
// refs [2],[3]): sinks are iteratively added to the root component by
// choosing a sink s and an attachment point — a tree node or a Steiner
// vertex inserted into an existing tree edge — minimizing a weighted sum
// of added wirelength and root-to-sink path length,
//
//	key(s, x) = L1(x, s) + α·plen(x),
//
// the classic PD trade-off with parameter α ∈ [0,1] (α=0 is Prim/MST,
// α=1 is Dijkstra/shortest paths). Following ref [4] and the paper, a
// bifurcation penalty is added when the attachment creates a branch: the
// penalty ℓbif (the delay penalty dbif converted to length units) is
// distributed to the new branch and the downstream subtree per eq. (2),
// using the sink delay weights.
package pd

import (
	"costdist/internal/geom"
	"costdist/internal/nets"
)

// Params controls the construction.
type Params struct {
	// Alpha is the PD trade-off in [0,1].
	Alpha float64
	// LBif is the bifurcation penalty in length units (0 disables).
	LBif float64
	// Eta is the minimum penalty share η.
	Eta float64
}

type node struct {
	pos     geom.Pt
	parent  int32
	sinkIdx int32
	plen    float64 // root path length including bifurcation penalties
	subW    float64 // subtree sink weight (maintained incrementally)
	kids    int32   // child count (maintained incrementally)
}

// Build returns a PD topology. pts[0] is the root, pts[i] is sink i-1
// with delay weight w[i-1].
func Build(pts []geom.Pt, w []float64, p Params) *nets.PlaneTree {
	t := len(pts)
	ns := []node{{pos: pts[0], parent: -1, sinkIdx: -1}}
	attached := make([]bool, t)

	for count := 1; count < t; count++ {
		type cand struct {
			sink    int32   // terminal index 1..t-1
			edgeLo  int32   // tree node at lower end of split edge (-1: attach at node)
			atNode  int32   // node to attach at (edgeLo == -1)
			split   geom.Pt // Steiner position when splitting an edge
			key     float64
			newPlen float64
		}
		best := cand{key: 1e300}
		consider := func(c cand) {
			if c.key < best.key {
				best = c
			}
		}
		for s := 1; s < t; s++ {
			if attached[s] {
				continue
			}
			ws := w[s-1]
			// Attach directly at a tree node.
			for ni := range ns {
				n := &ns[ni]
				branchy := n.kids > 0 || n.sinkIdx >= 0
				d := float64(geom.L1(n.pos, pts[s]))
				pen := branchPenalty(p, ws, n.subW, branchy)
				plen := n.plen + d + pen.newSide
				consider(cand{
					sink: int32(s), edgeLo: -1, atNode: int32(ni),
					key:     d + p.Alpha*(n.plen+pen.newSide+pen.downSide),
					newPlen: plen,
				})
			}
			// Split an existing edge (parent(v), v) at the L1 projection
			// of the sink onto the edge bounding box.
			for vi := 1; vi < len(ns); vi++ {
				v := &ns[vi]
				a := &ns[v.parent]
				x := clampToBBox(pts[s], a.pos, v.pos)
				if x == a.pos || x == v.pos {
					continue // degenerates to node attachment
				}
				d := float64(geom.L1(x, pts[s]))
				// Path length to the split point along the edge.
				plenX := a.plen + float64(geom.L1(a.pos, x))
				pen := branchPenalty(p, ws, v.subW, true)
				plen := plenX + d + pen.newSide
				consider(cand{
					sink: int32(s), edgeLo: int32(vi), split: x,
					key:     d + p.Alpha*(plenX+pen.newSide+pen.downSide),
					newPlen: plen,
				})
			}
		}
		// Materialize the best attachment.
		s := best.sink
		ws := w[s-1]
		var attachAt int32
		if best.edgeLo >= 0 {
			v := best.edgeLo
			a := ns[v].parent
			// Insert Steiner node x between a and v.
			ns = append(ns, node{
				pos: best.split, parent: a, sinkIdx: -1,
				plen: ns[a].plen + float64(geom.L1(ns[a].pos, best.split)),
				subW: ns[v].subW,
				kids: 1, // v
			})
			x := int32(len(ns) - 1)
			ns[v].parent = x
			attachAt = x
		} else {
			attachAt = best.atNode
		}
		ns = append(ns, node{pos: pts[s], parent: attachAt, sinkIdx: s - 1, plen: best.newPlen, subW: ws})
		ns[attachAt].kids++
		for a := attachAt; a >= 0; a = ns[a].parent {
			ns[a].subW += ws
		}
		attached[s] = true
	}

	out := &nets.PlaneTree{Nodes: make([]nets.PlaneNode, len(ns))}
	for i, n := range ns {
		out.Nodes[i] = nets.PlaneNode{Pos: n.pos, Parent: n.parent, SinkIdx: n.sinkIdx}
	}
	return out
}

// penalty is the bifurcation penalty split for one attachment.
type penalty struct {
	newSide  float64 // added to the new sink's path length
	downSide float64 // added (conceptually) to the downstream subtree paths
}

// branchPenalty distributes ℓbif between the new branch (weight ws) and
// the existing downstream subtree (weight wDown) per eq. (2). No penalty
// when the attachment point has no downstream wiring (wDown == 0 and
// not branchy): extending a leaf creates no bifurcation.
func branchPenalty(p Params, ws, wDown float64, createsBranch bool) penalty {
	if p.LBif == 0 || !createsBranch {
		return penalty{}
	}
	switch {
	case ws > wDown:
		return penalty{newSide: p.Eta * p.LBif, downSide: (1 - p.Eta) * p.LBif}
	case ws < wDown:
		return penalty{newSide: (1 - p.Eta) * p.LBif, downSide: p.Eta * p.LBif}
	default:
		return penalty{newSide: 0.5 * p.LBif, downSide: 0.5 * p.LBif}
	}
}

// clampToBBox returns the L1 projection of p onto the bounding box of
// segment (a, b) — the nearest point of the box to p, which lies on some
// monotone staircase realization of the edge.
func clampToBBox(p, a, b geom.Pt) geom.Pt {
	lox, hix := a.X, b.X
	if lox > hix {
		lox, hix = hix, lox
	}
	loy, hiy := a.Y, b.Y
	if loy > hiy {
		loy, hiy = hiy, loy
	}
	x := p.X
	if x < lox {
		x = lox
	}
	if x > hix {
		x = hix
	}
	y := p.Y
	if y < loy {
		y = loy
	}
	if y > hiy {
		y = hiy
	}
	return geom.Pt{X: x, Y: y}
}
