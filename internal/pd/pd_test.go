package pd

import (
	"math/rand/v2"
	"testing"

	"costdist/internal/geom"
	"costdist/internal/rsmt"
)

func randInstance(rng *rand.Rand, n int, span int32) ([]geom.Pt, []float64) {
	pts := make([]geom.Pt, n)
	w := make([]float64, n-1)
	for i := range pts {
		pts[i] = geom.Pt{X: rng.Int32N(span), Y: rng.Int32N(span)}
	}
	for i := range w {
		w[i] = 0.1 + rng.Float64()*5
	}
	return pts, w
}

func TestBuildValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	for _, n := range []int{2, 3, 5, 10, 30} {
		for _, alpha := range []float64{0, 0.3, 1} {
			for it := 0; it < 10; it++ {
				pts, w := randInstance(rng, n, 100)
				tr := Build(pts, w, Params{Alpha: alpha, LBif: 3, Eta: 0.25})
				if err := tr.Validate(n - 1); err != nil {
					t.Fatalf("n=%d alpha=%v: %v", n, alpha, err)
				}
			}
		}
	}
}

func TestAlphaZeroApproachesMSTLength(t *testing.T) {
	// α=0 is pure Prim with Steiner insertion: never longer than MST.
	rng := rand.New(rand.NewPCG(2, 9))
	for it := 0; it < 100; it++ {
		n := 3 + rng.IntN(12)
		pts, w := randInstance(rng, n, 64)
		tr := Build(pts, w, Params{Alpha: 0})
		if got, mst := tr.Length(), rsmt.MSTLength(pts); got > mst {
			t.Fatalf("alpha=0 length %d exceeds MST %d", got, mst)
		}
	}
}

func TestAlphaOneGivesShortestPaths(t *testing.T) {
	// α=1 minimizes path lengths: every sink's path must equal its L1
	// distance from the root (star topology is always available).
	rng := rand.New(rand.NewPCG(3, 3))
	for it := 0; it < 50; it++ {
		n := 3 + rng.IntN(10)
		pts, w := randInstance(rng, n, 64)
		tr := Build(pts, w, Params{Alpha: 1})
		for i, node := range tr.Nodes {
			if node.SinkIdx >= 0 {
				want := geom.L1(pts[0], node.Pos)
				if got := tr.PathLen(int32(i)); got > want {
					t.Fatalf("alpha=1 path to sink %d is %d, L1 is %d", node.SinkIdx, got, want)
				}
			}
		}
	}
}

func TestAlphaTradeoffMonotone(t *testing.T) {
	// Larger α must not lengthen total wire while shortening paths on
	// average... the guaranteed direction is: total length is minimized
	// at α=0 among tested α (weakly).
	rng := rand.New(rand.NewPCG(6, 6))
	for it := 0; it < 30; it++ {
		n := 4 + rng.IntN(10)
		pts, w := randInstance(rng, n, 80)
		l0 := Build(pts, w, Params{Alpha: 0}).Length()
		l1 := Build(pts, w, Params{Alpha: 1}).Length()
		if l0 > l1 {
			t.Fatalf("alpha=0 longer than alpha=1: %d vs %d", l0, l1)
		}
	}
}

func TestSteinerInsertionHappens(t *testing.T) {
	// Root at origin, two sinks sharing a trunk: PD with Steiner
	// insertion should branch off the trunk, not route separately.
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 8, Y: 3}}
	w := []float64{1, 1}
	tr := Build(pts, w, Params{Alpha: 0.1})
	// Optimal-ish: trunk to (8,0) then split: total = 10 + 3 = 13.
	if tr.Length() > 13 {
		t.Fatalf("length %d, expected Steiner split at trunk (13)", tr.Length())
	}
	hasSteiner := false
	for _, n := range tr.Nodes {
		if n.SinkIdx < 0 && n.Parent >= 0 {
			hasSteiner = true
		}
	}
	if !hasSteiner {
		t.Fatal("no Steiner vertex inserted")
	}
}

func TestBifurcationPenaltySteersBranching(t *testing.T) {
	// With a huge penalty and η=0, branching wants the penalty on the
	// lighter side; the heavy critical sink's path should stay clean:
	// both topologies are trees but the heavy sink should be attached
	// closer to the root trunk.
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 10, Y: 1}}
	w := []float64{10, 0.1}
	with := Build(pts, w, Params{Alpha: 0.9, LBif: 50, Eta: 0})
	without := Build(pts, w, Params{Alpha: 0.9})
	if err := with.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := without.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestTwoTerminals(t *testing.T) {
	pts := []geom.Pt{{X: 1, Y: 1}, {X: 4, Y: 5}}
	tr := Build(pts, []float64{2}, Params{Alpha: 0.5})
	if err := tr.Validate(1); err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 7 {
		t.Fatalf("length %d want 7", tr.Length())
	}
}

func TestDuplicateAndCoincidentTerminals(t *testing.T) {
	pts := []geom.Pt{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}}
	tr := Build(pts, []float64{1, 2}, Params{Alpha: 0.5, LBif: 2, Eta: 0.25})
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 0 {
		t.Fatalf("length %d want 0", tr.Length())
	}
}

func BenchmarkBuild32(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	pts, w := randInstance(rng, 32, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts, w, Params{Alpha: 0.3, LBif: 3, Eta: 0.25})
	}
}
