package nets

import (
	"testing"

	"costdist/internal/geom"
)

// star builds a root with k sink children directly attached.
func star(k int) (*PlaneTree, []float64) {
	t := &PlaneTree{Nodes: []PlaneNode{{Pos: geom.Pt{X: 5, Y: 5}, Parent: -1, SinkIdx: -1}}}
	ws := make([]float64, k)
	for i := 0; i < k; i++ {
		t.Nodes = append(t.Nodes, PlaneNode{Pos: geom.Pt{X: int32(i), Y: int32(2 * i)}, Parent: 0, SinkIdx: int32(i)})
		ws[i] = float64(i + 1)
	}
	return t, ws
}

func TestValidate(t *testing.T) {
	tr, _ := star(3)
	if err := tr.Validate(3); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if err := tr.Validate(4); err == nil {
		t.Fatal("missing sink not caught")
	}
	bad := &PlaneTree{Nodes: []PlaneNode{
		{Parent: -1, SinkIdx: -1},
		{Parent: 2, SinkIdx: 0},
		{Parent: 1, SinkIdx: -1},
	}}
	if err := bad.Validate(1); err == nil {
		t.Fatal("cycle not caught")
	}
	dup := &PlaneTree{Nodes: []PlaneNode{
		{Parent: -1, SinkIdx: -1},
		{Parent: 0, SinkIdx: 0},
		{Parent: 0, SinkIdx: 0},
	}}
	if err := dup.Validate(1); err == nil {
		t.Fatal("duplicate sink not caught")
	}
}

func TestLengthAndPathLen(t *testing.T) {
	tr := &PlaneTree{Nodes: []PlaneNode{
		{Pos: geom.Pt{X: 0, Y: 0}, Parent: -1, SinkIdx: -1},
		{Pos: geom.Pt{X: 3, Y: 0}, Parent: 0, SinkIdx: -1},
		{Pos: geom.Pt{X: 3, Y: 4}, Parent: 1, SinkIdx: 0},
		{Pos: geom.Pt{X: 5, Y: 0}, Parent: 1, SinkIdx: 1},
	}}
	if got := tr.Length(); got != 3+4+2 {
		t.Fatalf("Length = %d", got)
	}
	if got := tr.PathLen(2); got != 7 {
		t.Fatalf("PathLen(2) = %d", got)
	}
	if got := tr.PathLen(3); got != 5 {
		t.Fatalf("PathLen(3) = %d", got)
	}
}

func checkCanonical(t *testing.T, c *PlaneTree, nSinks int) {
	t.Helper()
	if err := c.Validate(nSinks); err != nil {
		t.Fatalf("canonical tree invalid: %v", err)
	}
	ch := c.Children()
	if len(ch[0]) > 1 {
		t.Fatalf("root has %d children", len(ch[0]))
	}
	for i := 1; i < len(c.Nodes); i++ {
		n := c.Nodes[i]
		if n.SinkIdx >= 0 && len(ch[i]) != 0 {
			t.Fatalf("sink node %d is internal", i)
		}
		if n.SinkIdx < 0 && len(ch[i]) > 2 {
			t.Fatalf("Steiner node %d has %d children", i, len(ch[i]))
		}
		if n.SinkIdx < 0 && len(ch[i]) == 0 {
			t.Fatalf("dangling Steiner node %d", i)
		}
	}
}

func TestCanonicalizeStar(t *testing.T) {
	for k := 1; k <= 7; k++ {
		tr, ws := star(k)
		c := tr.Canonicalize(ws, 2.0, 0.25)
		checkCanonical(t, c, k)
	}
}

func TestCanonicalizeSinkWithChildren(t *testing.T) {
	// root -> sink0 -> sink1: sink0 must become Steiner + leaf.
	tr := &PlaneTree{Nodes: []PlaneNode{
		{Pos: geom.Pt{X: 0, Y: 0}, Parent: -1, SinkIdx: -1},
		{Pos: geom.Pt{X: 2, Y: 0}, Parent: 0, SinkIdx: 0},
		{Pos: geom.Pt{X: 4, Y: 0}, Parent: 1, SinkIdx: 1},
	}}
	c := tr.Canonicalize([]float64{1, 1}, 2.0, 0.25)
	checkCanonical(t, c, 2)
	// The Steiner split node must sit at sink0's position so path
	// lengths are unchanged.
	var steinerPos []geom.Pt
	for i := 1; i < len(c.Nodes); i++ {
		if c.Nodes[i].SinkIdx < 0 {
			steinerPos = append(steinerPos, c.Nodes[i].Pos)
		}
	}
	if len(steinerPos) != 1 || steinerPos[0] != (geom.Pt{X: 2, Y: 0}) {
		t.Fatalf("steiner positions %v", steinerPos)
	}
}

func TestCanonicalizeDeepMixed(t *testing.T) {
	// Root with 3 children, one of which is a sink with 2 children.
	tr := &PlaneTree{Nodes: []PlaneNode{
		{Pos: geom.Pt{X: 0, Y: 0}, Parent: -1, SinkIdx: -1},
		{Pos: geom.Pt{X: 1, Y: 1}, Parent: 0, SinkIdx: 0},
		{Pos: geom.Pt{X: 2, Y: 2}, Parent: 0, SinkIdx: 1},
		{Pos: geom.Pt{X: 3, Y: 3}, Parent: 0, SinkIdx: -1}, // Steiner
		{Pos: geom.Pt{X: 4, Y: 4}, Parent: 3, SinkIdx: 2},
		{Pos: geom.Pt{X: 5, Y: 5}, Parent: 3, SinkIdx: 3},
		{Pos: geom.Pt{X: 6, Y: 6}, Parent: 1, SinkIdx: 4}, // child of sink 0
	}}
	c := tr.Canonicalize([]float64{1, 2, 3, 4, 5}, 1.5, 0.2)
	checkCanonical(t, c, 5)
}

func TestCanonicalizeSplicesPassThrough(t *testing.T) {
	tr := &PlaneTree{Nodes: []PlaneNode{
		{Pos: geom.Pt{X: 0, Y: 0}, Parent: -1, SinkIdx: -1},
		{Pos: geom.Pt{X: 1, Y: 0}, Parent: 0, SinkIdx: -1}, // pass-through
		{Pos: geom.Pt{X: 2, Y: 0}, Parent: 1, SinkIdx: -1}, // pass-through
		{Pos: geom.Pt{X: 3, Y: 0}, Parent: 2, SinkIdx: 0},
	}}
	c := tr.Canonicalize([]float64{1}, 2, 0.25)
	checkCanonical(t, c, 1)
	if len(c.Nodes) != 2 {
		t.Fatalf("pass-through nodes survived: %d nodes", len(c.Nodes))
	}
}
