package nets

import "costdist/internal/geom"

// PinSig is the geometric signature of one net's terminals on the
// gcell plane: the driver position followed by the sink positions in
// pin order. It is the unit of instance diffing for warm-started
// routing — two nets with equal signatures present the router with the
// same cost-distance terminal set, so a cached tree for one embeds the
// other. Weights, budgets and congestion prices are deliberately
// outside the signature: those drift between runs and are invalidated
// by the dirty-net scheduler's tolerance checks, not by the diff.
type PinSig struct {
	Driver geom.Pt
	Sinks  []geom.Pt
}

// Equal reports whether two signatures describe the same terminal set:
// same driver position and the same sink positions in the same order.
// Order matters because per-sink state (weights, budgets, delays) is
// indexed by pin position in the net.
func (s PinSig) Equal(o PinSig) bool {
	if s.Driver != o.Driver || len(s.Sinks) != len(o.Sinks) {
		return false
	}
	for i, p := range s.Sinks {
		if p != o.Sinks[i] {
			return false
		}
	}
	return true
}

// SigOf extracts the signature of a standalone instance (plane
// projection of its terminals).
func SigOf(in *Instance) PinSig {
	sig := PinSig{Driver: in.G.Pt(in.Root)}
	for _, sk := range in.Sinks {
		sig.Sinks = append(sig.Sinks, in.G.Pt(sk.V))
	}
	return sig
}
