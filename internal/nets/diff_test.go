package nets

import (
	"testing"

	"costdist/internal/geom"
)

func TestPinSigEqual(t *testing.T) {
	base := PinSig{
		Driver: geom.Pt{X: 1, Y: 2},
		Sinks:  []geom.Pt{{X: 3, Y: 4}, {X: 5, Y: 6}},
	}
	same := PinSig{
		Driver: geom.Pt{X: 1, Y: 2},
		Sinks:  []geom.Pt{{X: 3, Y: 4}, {X: 5, Y: 6}},
	}
	if !base.Equal(same) {
		t.Fatal("identical signatures reported unequal")
	}
	cases := []struct {
		name string
		sig  PinSig
	}{
		{"moved driver", PinSig{Driver: geom.Pt{X: 0, Y: 2}, Sinks: same.Sinks}},
		{"moved sink", PinSig{Driver: base.Driver, Sinks: []geom.Pt{{X: 3, Y: 4}, {X: 5, Y: 7}}}},
		{"dropped sink", PinSig{Driver: base.Driver, Sinks: []geom.Pt{{X: 3, Y: 4}}}},
		{"added sink", PinSig{Driver: base.Driver, Sinks: []geom.Pt{{X: 3, Y: 4}, {X: 5, Y: 6}, {X: 7, Y: 8}}}},
		// Per-sink state is positional, so pin order is significant.
		{"reordered sinks", PinSig{Driver: base.Driver, Sinks: []geom.Pt{{X: 5, Y: 6}, {X: 3, Y: 4}}}},
	}
	for _, c := range cases {
		if base.Equal(c.sig) {
			t.Errorf("%s reported equal", c.name)
		}
	}
}

func TestSigOf(t *testing.T) {
	g := twoLayerGraph(6, 6)
	in := &Instance{
		G: g, C: nil,
		Root: g.At(0, 0, 0),
		Sinks: []Sink{
			{V: g.At(4, 2, 1), W: 1},
			{V: g.At(1, 5, 0), W: 2},
		},
	}
	sig := SigOf(in)
	if sig.Driver != in.G.Pt(in.Root) {
		t.Fatalf("driver %v, want %v", sig.Driver, in.G.Pt(in.Root))
	}
	if len(sig.Sinks) != len(in.Sinks) {
		t.Fatalf("%d sinks, want %d", len(sig.Sinks), len(in.Sinks))
	}
	for k, s := range in.Sinks {
		if sig.Sinks[k] != in.G.Pt(s.V) {
			t.Fatalf("sink %d at %v, want %v", k, sig.Sinks[k], in.G.Pt(s.V))
		}
	}
}
