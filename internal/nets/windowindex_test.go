package nets

import (
	"math/rand/v2"
	"testing"

	"costdist/internal/geom"
)

func randRects(rng *rand.Rand, n int, span int32) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Int32N(span), rng.Int32N(span)
		out[i] = geom.Rect{X0: x, Y0: y, X1: x + rng.Int32N(8), Y1: y + rng.Int32N(8)}
	}
	return out
}

func TestWindowIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 500} {
		rects := randRects(rng, n, 100)
		ix := BuildWindowIndex(rects)
		if ix.Len() != n {
			t.Fatalf("n=%d: Len %d", n, ix.Len())
		}
		for q := 0; q < 50; q++ {
			x, y := rng.Int32N(110)-5, rng.Int32N(110)-5
			query := geom.Rect{X0: x, Y0: y, X1: x + rng.Int32N(20), Y1: y + rng.Int32N(20)}
			got := map[int32]int{}
			ix.Query(query, func(id int32) { got[id]++ })
			for id, cnt := range got {
				if cnt != 1 {
					t.Fatalf("n=%d: id %d visited %d times", n, id, cnt)
				}
			}
			for i, r := range rects {
				want := r.Intersects(query)
				if _, ok := got[int32(i)]; ok != want {
					t.Fatalf("n=%d query %+v rect %d %+v: got %v want %v", n, query, i, r, ok, want)
				}
			}
		}
	}
}

func TestWindowIndexEmptyRects(t *testing.T) {
	rects := []geom.Rect{geom.EmptyRect(), {X0: 2, Y0: 2, X1: 4, Y1: 4}, geom.EmptyRect()}
	ix := BuildWindowIndex(rects)
	var got []int32
	ix.Query(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, func(id int32) { got = append(got, id) })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("empty rects leaked into query results: %v", got)
	}
	ix.Query(geom.EmptyRect(), func(id int32) { t.Fatal("empty query must match nothing") })
}

func TestWindowIndexDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	rects := randRects(rng, 300, 60)
	q := geom.Rect{X0: 10, Y0: 10, X1: 30, Y1: 30}
	var a, b []int32
	BuildWindowIndex(rects).Query(q, func(id int32) { a = append(a, id) })
	BuildWindowIndex(rects).Query(q, func(id int32) { b = append(b, id) })
	if len(a) != len(b) {
		t.Fatalf("visit counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
