package nets

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBetaBasics(t *testing.T) {
	if got := Beta(10, 0.25, 4, 1); math.Abs(got-(10*(0.25*4+0.75*1))) > 1e-12 {
		t.Fatalf("Beta = %v", got)
	}
	// Symmetry.
	f := func(w1, w2 uint16) bool {
		a, b := float64(w1), float64(w2)
		return Beta(3, 0.3, a, b) == Beta(3, 0.3, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// η = 0.5 gives the symmetric split dbif·(w1+w2)/2.
	if got := Beta(2, 0.5, 3, 5); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Beta eta=0.5: %v", got)
	}
	// η = 0: all penalty on the lighter branch.
	if got := Beta(2, 0, 3, 5); math.Abs(got-6) > 1e-12 {
		t.Fatalf("Beta eta=0: %v", got)
	}
}

func TestSplitPenaltiesDegenerate(t *testing.T) {
	if p := SplitPenalties(5, 0.25, nil); len(p) != 0 {
		t.Fatal("nil weights")
	}
	p := SplitPenalties(5, 0.25, []float64{3})
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("single group: %v", p)
	}
	p = SplitPenalties(0, 0.25, []float64{3, 4, 5})
	for _, v := range p {
		if v != 0 {
			t.Fatalf("dbif=0 must give zero penalties: %v", p)
		}
	}
}

func TestSplitPenaltiesPair(t *testing.T) {
	dbif, eta := 8.0, 0.25
	p := SplitPenalties(dbif, eta, []float64{5, 2})
	// Heavier group 0 gets η share.
	if math.Abs(p[0]-eta*dbif) > 1e-12 || math.Abs(p[1]-(1-eta)*dbif) > 1e-12 {
		t.Fatalf("pair penalties %v", p)
	}
	p = SplitPenalties(dbif, eta, []float64{2, 2})
	if math.Abs(p[0]-4) > 1e-12 || math.Abs(p[1]-4) > 1e-12 {
		t.Fatalf("equal pair penalties %v", p)
	}
}

func TestSplitPenaltiesMatchesExactMin(t *testing.T) {
	// For k ≤ 5 the binarization is exhaustive, so the weighted total
	// must equal the exact minimum over all merge orders.
	rng := rand.New(rand.NewPCG(5, 6))
	for _, eta := range []float64{0, 0.25, 0.5} {
		for it := 0; it < 100; it++ {
			k := 2 + rng.IntN(4)
			ws := make([]float64, k)
			for i := range ws {
				ws[i] = float64(1 + rng.IntN(20))
			}
			dbif := 1 + rng.Float64()*10
			p := SplitPenalties(dbif, eta, ws)
			got := 0.0
			for i := range ws {
				got += ws[i] * p[i]
			}
			want := MinSplitPenaltyCost(dbif, eta, ws)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("eta=%v ws=%v: weighted penalty %v want %v", eta, ws, got, want)
			}
		}
	}
}

func TestSplitPenaltiesInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 4))
	for it := 0; it < 200; it++ {
		k := 2 + rng.IntN(8) // exercises both exact and greedy paths
		ws := make([]float64, k)
		for i := range ws {
			ws[i] = rng.Float64() * 10
		}
		dbif, eta := 4.0, 0.2
		p := SplitPenalties(dbif, eta, ws)
		for i, v := range p {
			// Every group is on one side of at least one merge and at
			// most k-1 merges; each merge contributes within [η,1−η]·dbif.
			if v < eta*dbif-1e-9 || v > float64(k-1)*(1-eta)*dbif+1e-9 {
				t.Fatalf("penalty %d = %v out of bounds (k=%d)", i, v, k)
			}
		}
	}
}

func TestMinSplitPenaltyCostOrderMatters(t *testing.T) {
	// η=0 heavy-spine example from the design discussion: {10,1,1}
	// caterpillar over the heavy group costs 2·dbif, lightest-first 3·dbif.
	want := 2.0
	if got := MinSplitPenaltyCost(1, 0, []float64{10, 1, 1}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("exact min = %v want %v", got, want)
	}
	// SplitPenalties (exact for k=3) must achieve it.
	p := SplitPenalties(1, 0, []float64{10, 1, 1})
	got := 10*p[0] + p[1] + p[2]
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SplitPenalties weighted cost %v want %v", got, want)
	}
}
