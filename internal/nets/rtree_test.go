package nets

import (
	"math"
	"testing"

	"costdist/internal/grid"
)

func twoLayerGraph(nx, ny int32) *grid.Graph {
	layers := []grid.Layer{
		{Name: "M1", Dir: grid.DirH, Wires: []grid.WireType{{Name: "w", CostPerGCell: 1, DelayPerGCell: 10, CapUse: 1}}, SegCap: 10, ViaCap: 10, ViaCost: 0.5, ViaDelay: 2, ViaCapUse: 1},
		{Name: "M2", Dir: grid.DirV, Wires: []grid.WireType{{Name: "w", CostPerGCell: 1, DelayPerGCell: 8, CapUse: 1}}, SegCap: 10},
	}
	return grid.New(nx, ny, layers, 50)
}

func mustStep(t *testing.T, g *grid.Graph, u, v grid.V) Step {
	t.Helper()
	var out Step
	found := false
	g.Arcs(u, g.FullWindow(), func(a grid.Arc) bool {
		if a.To == v {
			out = Step{From: u, Arc: a}
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatalf("no arc %d->%d", u, v)
	}
	return out
}

func TestEvaluateHandComputed(t *testing.T) {
	g := twoLayerGraph(5, 3)
	in := &Instance{
		G: g, C: grid.NewCosts(g),
		Root: g.At(0, 0, 0),
		Sinks: []Sink{
			{V: g.At(2, 0, 0), W: 2}, // sink A, mid-path
			{V: g.At(4, 0, 0), W: 1}, // sink B, end of path
		},
		DBif: 4, Eta: 0.25,
		Win: g.FullWindow(),
	}
	tr := &RTree{}
	for x := int32(0); x < 4; x++ {
		tr.Steps = append(tr.Steps, mustStep(t, g, g.At(x, 0, 0), g.At(x+1, 0, 0)))
	}
	ev, err := Evaluate(in, tr)
	if err != nil {
		t.Fatal(err)
	}
	// At (2,0,0): groups are {subtree toward B: w=1, hosted sink A: w=2}.
	// A (heavier) takes η·dbif = 1; B side takes (1-η)·dbif = 3.
	wantA := 20.0 + 1.0
	wantB := 20.0 + 3.0 + 20.0
	if math.Abs(ev.SinkDelay[0]-wantA) > 1e-9 || math.Abs(ev.SinkDelay[1]-wantB) > 1e-9 {
		t.Fatalf("sink delays %v want [%v %v]", ev.SinkDelay, wantA, wantB)
	}
	if math.Abs(ev.CongCost-4) > 1e-9 {
		t.Fatalf("cong cost %v", ev.CongCost)
	}
	wantDelayCost := 2*wantA + 1*wantB
	if math.Abs(ev.DelayCost-wantDelayCost) > 1e-9 {
		t.Fatalf("delay cost %v want %v", ev.DelayCost, wantDelayCost)
	}
	if math.Abs(ev.Total-(4+wantDelayCost)) > 1e-9 {
		t.Fatalf("total %v", ev.Total)
	}
	if ev.WireSteps != 4 || ev.Vias != 0 || ev.TrackGCells != 4 {
		t.Fatalf("counts: %+v", ev)
	}
}

func TestEvaluateNoBif(t *testing.T) {
	// dbif = 0: delays are pure edge sums.
	g := twoLayerGraph(4, 4)
	in := &Instance{
		G: g, C: grid.NewCosts(g),
		Root:  g.At(0, 0, 0),
		Sinks: []Sink{{V: g.At(2, 2, 0), W: 1}},
		Win:   g.FullWindow(),
	}
	tr := &RTree{Steps: []Step{
		mustStep(t, g, g.At(0, 0, 0), g.At(1, 0, 0)),
		mustStep(t, g, g.At(1, 0, 0), g.At(2, 0, 0)),
		mustStep(t, g, g.At(2, 0, 0), g.At(2, 0, 1)), // via up
		mustStep(t, g, g.At(2, 0, 1), g.At(2, 1, 1)),
		mustStep(t, g, g.At(2, 1, 1), g.At(2, 2, 1)),
		mustStep(t, g, g.At(2, 2, 1), g.At(2, 2, 0)), // via down
	}}
	ev, err := Evaluate(in, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 + 10 + 2 + 8 + 8 + 2
	if math.Abs(ev.SinkDelay[0]-want) > 1e-9 {
		t.Fatalf("delay %v want %v", ev.SinkDelay[0], want)
	}
	if ev.Vias != 2 || ev.WireSteps != 4 {
		t.Fatalf("counts %+v", ev)
	}
	wantCost := 4.0 + 2*0.5
	if math.Abs(ev.CongCost-wantCost) > 1e-9 {
		t.Fatalf("cong %v want %v", ev.CongCost, wantCost)
	}
}

func TestEvaluateCongestionMultiplier(t *testing.T) {
	g := twoLayerGraph(4, 4)
	c := grid.NewCosts(g)
	in := &Instance{
		G: g, C: c,
		Root:  g.At(0, 0, 0),
		Sinks: []Sink{{V: g.At(1, 0, 0), W: 1}},
		Win:   g.FullWindow(),
	}
	st := mustStep(t, g, g.At(0, 0, 0), g.At(1, 0, 0))
	c.Mult[st.Arc.Seg] = 5
	ev, err := Evaluate(in, &RTree{Steps: []Step{st}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.CongCost-5) > 1e-9 {
		t.Fatalf("cong cost with multiplier %v", ev.CongCost)
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := twoLayerGraph(4, 4)
	in := &Instance{
		G: g, C: grid.NewCosts(g),
		Root:  g.At(0, 0, 0),
		Sinks: []Sink{{V: g.At(3, 0, 0), W: 1}},
		Win:   g.FullWindow(),
	}
	// Sink not covered.
	tr := &RTree{Steps: []Step{mustStep(t, g, g.At(0, 0, 0), g.At(1, 0, 0))}}
	if _, err := Evaluate(in, tr); err == nil {
		t.Fatal("uncovered sink accepted")
	}
	// Duplicate edge.
	tr = &RTree{Steps: []Step{
		mustStep(t, g, g.At(0, 0, 0), g.At(1, 0, 0)),
		mustStep(t, g, g.At(1, 0, 0), g.At(0, 0, 0)),
	}}
	if _, err := Evaluate(in, tr); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	// Disconnected component.
	tr = &RTree{Steps: []Step{
		mustStep(t, g, g.At(0, 0, 0), g.At(1, 0, 0)),
		mustStep(t, g, g.At(2, 0, 0), g.At(3, 0, 0)),
	}}
	if _, err := Evaluate(in, tr); err == nil {
		t.Fatal("disconnected tree accepted")
	}
}

func TestEvaluateSinkAtRoot(t *testing.T) {
	g := twoLayerGraph(4, 4)
	in := &Instance{
		G: g, C: grid.NewCosts(g),
		Root: g.At(0, 0, 0),
		Sinks: []Sink{
			{V: g.At(0, 0, 0), W: 3}, // degenerate: sink at root position
			{V: g.At(1, 0, 0), W: 1},
		},
		DBif: 2, Eta: 0.25,
		Win: g.FullWindow(),
	}
	tr := &RTree{Steps: []Step{mustStep(t, g, g.At(0, 0, 0), g.At(1, 0, 0))}}
	ev, err := Evaluate(in, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Root vertex: groups {child subtree w=1, hosted sink w=3}: sink at
	// root gets η share (heavier), the path side gets 1-η.
	if math.Abs(ev.SinkDelay[0]-0.5) > 1e-9 {
		t.Fatalf("root sink delay %v", ev.SinkDelay[0])
	}
	if math.Abs(ev.SinkDelay[1]-(1.5+10)) > 1e-9 {
		t.Fatalf("other sink delay %v", ev.SinkDelay[1])
	}
}

func TestInstanceHelpers(t *testing.T) {
	g := twoLayerGraph(8, 8)
	in := &Instance{
		G: g, C: grid.NewCosts(g),
		Root:  g.At(1, 1, 0),
		Sinks: []Sink{{V: g.At(6, 2, 0), W: 2}, {V: g.At(3, 7, 1), W: 3}},
	}
	if in.T() != 3 {
		t.Fatalf("T = %d", in.T())
	}
	if in.TotalSinkWeight() != 5 {
		t.Fatalf("weight sum %v", in.TotalSinkWeight())
	}
	pts := in.TermPts()
	if len(pts) != 3 || pts[0] != g.Pt(in.Root) {
		t.Fatalf("TermPts %v", pts)
	}
	w := in.DefaultWindow(2)
	for _, p := range pts {
		if !w.Contains(p) {
			t.Fatalf("window %v misses %v", w, p)
		}
	}
	if w.X1 > 7 || w.Y1 > 7 {
		t.Fatal("window not clamped")
	}
}
