// Package nets defines the cost-distance Steiner tree problem instance
// (paper eq. (1)) together with the two tree representations shared by
// all algorithms:
//
//   - PlaneTree: a Steiner topology in the gcell plane, produced by the
//     baseline constructions (L1, shallow-light, Prim-Dijkstra) before
//     they are embedded into the routing graph;
//   - RTree: a tree embedded in the 3D routing graph, the common output
//     of all four algorithms.
//
// It also implements the bifurcation delay model: the per-branch penalty
// split λ of eq. (2), the pairwise merge penalty β, and the objective
// evaluator of eqs. (1) and (3) used for every apples-to-apples
// comparison in the experiments.
package nets

import (
	"costdist/internal/geom"
	"costdist/internal/grid"
)

// Sink is one net sink: a vertex of the routing graph and its delay
// weight w(t) (criticality price from the Lagrangean relaxation).
type Sink struct {
	V grid.V
	W float64
}

// Instance is one cost-distance Steiner tree problem (G, S, r, w, c, d,
// dbif, η).
type Instance struct {
	G     *grid.Graph
	C     *grid.Costs
	Root  grid.V
	Sinks []Sink
	// DBif is the total bifurcation penalty per branching; Eta is the
	// minimum share either branch must absorb (0 ≤ η ≤ 1/2).
	DBif float64
	Eta  float64
	// Win restricts all path searches to a plane rectangle.
	Win geom.Rect
	// Seed drives the randomized merge choices of the CD algorithm.
	Seed uint64
	// Budgets optionally carries per-sink delay budgets in ps — the
	// globally optimized budgets from the resource sharing algorithm
	// (ref [13]) that the shallow-light baseline consumes (§IV-A).
	// nil means "use plain L1 distance bounds".
	Budgets []float64
}

// T returns the number of terminals |S ∪ {r}|.
func (in *Instance) T() int { return len(in.Sinks) + 1 }

// TermPts returns the plane positions of root and sinks.
func (in *Instance) TermPts() []geom.Pt {
	out := make([]geom.Pt, 0, in.T())
	out = append(out, in.G.Pt(in.Root))
	for _, s := range in.Sinks {
		out = append(out, in.G.Pt(s.V))
	}
	return out
}

// DefaultWindow returns the terminal bounding box expanded by margin
// gcells and clamped to the grid; a margin of roughly half the bbox
// half-perimeter plus a constant works well in practice.
func (in *Instance) DefaultWindow(margin int32) geom.Rect {
	return geom.BBox(in.TermPts()).Expand(margin, in.G.NX, in.G.NY)
}

// TotalSinkWeight returns Σ w(t).
func (in *Instance) TotalSinkWeight() float64 {
	total := 0.0
	for _, s := range in.Sinks {
		total += s.W
	}
	return total
}

// Beta is the minimum possible weighted delay penalty β(w,w') when
// merging two subtrees with total delay weights w and w': the branch
// with larger weight takes the minimum share η of dbif.
func Beta(dbif, eta, w1, w2 float64) float64 {
	if w1 < w2 {
		w1, w2 = w2, w1
	}
	return dbif * (eta*w1 + (1-eta)*w2)
}

// mergeNode is a node of the binarization tree over sibling groups.
type mergeNode struct {
	left, right *mergeNode
	leaf        int // leaf group index, -1 for internal
	w           float64
}

func leafNode(i int, w float64) *mergeNode { return &mergeNode{leaf: i, w: w} }

func join(a, b *mergeNode) *mergeNode {
	return &mergeNode{left: a, right: b, leaf: -1, w: a.w + b.w}
}

// bestMergeTree returns the binarization of the groups minimizing the
// total weighted bifurcation penalty Σ_merges β(wA, wB). Exact for k ≤ 5
// (exhaustive over pairings); greedy lightest-pair Huffman for larger k,
// which is optimal at η = 0.5 and near-optimal otherwise — branchings
// with more than five children essentially never occur in routing trees.
func bestMergeTree(dbif, eta float64, weights []float64) *mergeNode {
	nodes := make([]*mergeNode, len(weights))
	for i, w := range weights {
		nodes[i] = leafNode(i, w)
	}
	if len(nodes) <= 5 {
		tree, _ := exhaustiveMerge(dbif, eta, nodes)
		return tree
	}
	// Greedy: repeatedly join the two lightest (stable by construction
	// order — slice scan keeps first occurrence on ties).
	for len(nodes) > 1 {
		i0, i1 := 0, 1
		if nodes[i1].w < nodes[i0].w {
			i0, i1 = i1, i0
		}
		for j := 2; j < len(nodes); j++ {
			if nodes[j].w < nodes[i0].w {
				i0, i1 = j, i0
			} else if nodes[j].w < nodes[i1].w {
				i1 = j
			}
		}
		merged := join(nodes[i0], nodes[i1])
		out := nodes[:0]
		for j, n := range nodes {
			if j != i0 && j != i1 {
				out = append(out, n)
			}
		}
		nodes = append(out, merged)
	}
	return nodes[0]
}

func exhaustiveMerge(dbif, eta float64, nodes []*mergeNode) (*mergeNode, float64) {
	if len(nodes) == 1 {
		return nodes[0], 0
	}
	var bestTree *mergeNode
	bestCost := 1e300
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			rest := make([]*mergeNode, 0, len(nodes)-1)
			for k, n := range nodes {
				if k != i && k != j {
					rest = append(rest, n)
				}
			}
			rest = append(rest, join(nodes[i], nodes[j]))
			tree, cost := exhaustiveMerge(dbif, eta, rest)
			cost += Beta(dbif, eta, nodes[i].w, nodes[j].w)
			if cost < bestCost {
				bestCost, bestTree = cost, tree
			}
		}
	}
	return bestTree, bestCost
}

// SplitPenalties distributes bifurcation penalties among k ≥ 1 sibling
// groups with the given subtree delay weights. A vertex with k outgoing
// branches is k−1 binary bifurcations; we binarize with bestMergeTree
// and assign λ per eq. (2) at every binary merge. The result is the
// extra delay (λ-sum × dbif) the sinks of each group incur at this
// vertex. For k == 1 the single entry is 0.
func SplitPenalties(dbif, eta float64, weights []float64) []float64 {
	out := make([]float64, len(weights))
	if len(weights) <= 1 || dbif == 0 {
		return out
	}
	tree := bestMergeTree(dbif, eta, weights)
	var walk func(n *mergeNode, acc float64)
	walk = func(n *mergeNode, acc float64) {
		if n.leaf >= 0 {
			out[n.leaf] = acc
			return
		}
		la, lb := lambdaPair(eta, n.left.w, n.right.w)
		walk(n.left, acc+la*dbif)
		walk(n.right, acc+lb*dbif)
	}
	walk(tree, 0)
	return out
}

// lambdaPair returns the penalty shares (λA, λB) per eq. (2): the side
// with the larger total delay weight takes the minimum share η.
func lambdaPair(eta, wA, wB float64) (float64, float64) {
	switch {
	case wA > wB:
		return eta, 1 - eta
	case wA < wB:
		return 1 - eta, eta
	default:
		return 0.5, 0.5
	}
}

// MinSplitPenaltyCost returns the minimum achievable total weighted
// penalty Σ w_i·extra_i over all binary merge orders of the groups,
// by exhaustive search. Exponential; test/reference use only.
func MinSplitPenaltyCost(dbif, eta float64, weights []float64) float64 {
	if len(weights) <= 1 || dbif == 0 {
		return 0
	}
	best := 1e300
	var rec func(ws []float64, acc float64)
	rec = func(ws []float64, acc float64) {
		if len(ws) == 1 {
			if acc < best {
				best = acc
			}
			return
		}
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				merged := make([]float64, 0, len(ws)-1)
				for k, w := range ws {
					if k != i && k != j {
						merged = append(merged, w)
					}
				}
				merged = append(merged, ws[i]+ws[j])
				rec(merged, acc+Beta(dbif, eta, ws[i], ws[j]))
			}
		}
	}
	rec(weights, 0)
	return best
}
