package nets

import (
	"fmt"

	"costdist/internal/geom"
	"costdist/internal/grid"
)

// Step is one directed edge of an embedded tree: the arc taken from
// vertex From (Arc.To is the head).
type Step struct {
	From grid.V
	Arc  grid.Arc
}

// RTree is a Steiner tree embedded in the routing graph: a set of steps
// whose undirected union forms a tree over the touched vertices,
// containing the root and all sinks of its instance.
type RTree struct {
	Steps []Step
}

// BBox returns the plane bounding rectangle of the tree's vertices. An
// empty tree yields the empty rect.
func (tr *RTree) BBox(g *grid.Graph) geom.Rect {
	r := geom.EmptyRect()
	for _, st := range tr.Steps {
		r = r.Add(g.Pt(st.From))
		r = r.Add(g.Pt(st.Arc.To))
	}
	return r
}

// Eval is the decomposition of objective (1)+(3) for an embedded tree.
type Eval struct {
	// CongCost is Σ c(e) over tree edges.
	CongCost float64
	// DelayCost is Σ w(t)·delay(r,t) including bifurcation penalties.
	DelayCost float64
	// Total = CongCost + DelayCost, the paper's objective (1).
	Total float64
	// SinkDelay is delay_T(r,t) per sink (eq. (3)), in ps.
	SinkDelay []float64
	// WireSteps and Vias count non-via and via tree edges.
	WireSteps, Vias int
	// TrackGCells is the capacity-weighted wirelength in gcell units.
	TrackGCells float64
}

type halfEdge struct {
	to  grid.V
	arc grid.Arc
}

// PruneToTree turns an arbitrary multiset of steps into a valid RTree
// for the instance: duplicate undirected edges are removed, a BFS
// spanning tree of the union is kept (rooted at the instance root), and
// dangling stubs ending at non-terminals are trimmed. Construction
// algorithms whose path unions may overlap (topology embedding, the
// exact DP) funnel their output through this function; pruning can only
// remove congestion cost. It errors if some sink is disconnected.
func PruneToTree(in *Instance, steps []Step) (*RTree, error) {
	adj := make(map[grid.V][]Step)
	seen := make(map[[2]int64]bool, len(steps))
	for _, st := range steps {
		a, b := int64(st.From), int64(st.Arc.To)
		if a > b {
			a, b = b, a
		}
		key := [2]int64{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		adj[st.From] = append(adj[st.From], st)
		rev := Step{From: st.Arc.To, Arc: st.Arc}
		rev.Arc.To = st.From
		adj[st.Arc.To] = append(adj[st.Arc.To], rev)
	}
	out := &RTree{}
	if len(adj) == 0 {
		for i, s := range in.Sinks {
			if s.V != in.Root {
				return nil, fmt.Errorf("nets: sink %d disconnected (empty edge set)", i)
			}
		}
		return out, nil
	}
	visited := map[grid.V]bool{in.Root: true}
	queue := []grid.V{in.Root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, st := range adj[v] {
			if visited[st.Arc.To] {
				continue
			}
			visited[st.Arc.To] = true
			out.Steps = append(out.Steps, st)
			queue = append(queue, st.Arc.To)
		}
	}
	for i, s := range in.Sinks {
		if s.V != in.Root && !visited[s.V] {
			return nil, fmt.Errorf("nets: sink %d disconnected after pruning", i)
		}
	}
	trimDanglers(in, out)
	return out, nil
}

// trimDanglers repeatedly removes leaf edges whose endpoint is neither
// the root nor a sink. Removing them strictly reduces cost and cannot
// affect any root-sink path.
func trimDanglers(in *Instance, rt *RTree) {
	keep := map[grid.V]bool{in.Root: true}
	for _, s := range in.Sinks {
		keep[s.V] = true
	}
	for {
		deg := map[grid.V]int{}
		for _, st := range rt.Steps {
			deg[st.From]++
			deg[st.Arc.To]++
		}
		out := rt.Steps[:0]
		removed := false
		for _, st := range rt.Steps {
			aLeaf := deg[st.From] == 1 && !keep[st.From]
			bLeaf := deg[st.Arc.To] == 1 && !keep[st.Arc.To]
			if aLeaf || bLeaf {
				removed = true
				continue
			}
			out = append(out, st)
		}
		rt.Steps = out
		if !removed {
			return
		}
	}
}

// Evaluate computes objective (1) with the bifurcation delay model (3)
// for an embedded tree. It validates that the steps form a tree
// containing root and sinks; all four algorithms are scored through this
// single function so comparisons are apples-to-apples.
func Evaluate(in *Instance, tr *RTree) (*Eval, error) {
	ev := &Eval{SinkDelay: make([]float64, len(in.Sinks))}

	adj := make(map[grid.V][]halfEdge, len(tr.Steps)*2)
	seenSeg := make(map[[2]int64]bool, len(tr.Steps))
	for _, st := range tr.Steps {
		a, b := int64(st.From), int64(st.Arc.To)
		if a > b {
			a, b = b, a
		}
		key := [2]int64{a, b}
		if seenSeg[key] {
			return nil, fmt.Errorf("nets: duplicate tree edge %d-%d", a, b)
		}
		seenSeg[key] = true
		adj[st.From] = append(adj[st.From], halfEdge{to: st.Arc.To, arc: st.Arc})
		adj[st.Arc.To] = append(adj[st.Arc.To], halfEdge{to: st.From, arc: st.Arc})
		ev.CongCost += in.C.ArcCost(st.Arc)
		if st.Arc.Via {
			ev.Vias++
		} else {
			ev.WireSteps++
			ev.TrackGCells += float64(in.G.ArcCapUse(st.Arc))
		}
	}
	if _, ok := adj[in.Root]; !ok && len(tr.Steps) > 0 {
		return nil, fmt.Errorf("nets: root %d not in tree", in.Root)
	}

	// Sinks per vertex.
	sinksAt := make(map[grid.V][]int32)
	for i, s := range in.Sinks {
		sinksAt[s.V] = append(sinksAt[s.V], int32(i))
	}

	// Iterative rooted DFS: first pass computes subtree sink weights,
	// second pass pushes delays down with split penalties.
	parent := make(map[grid.V]grid.V, len(adj))
	order := make([]grid.V, 0, len(adj))
	parent[in.Root] = in.Root
	order = append(order, in.Root)
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, he := range adj[v] {
			if _, ok := parent[he.to]; !ok {
				parent[he.to] = v
				order = append(order, he.to)
			}
		}
	}
	if len(order) != len(adj) && len(tr.Steps) > 0 {
		return nil, fmt.Errorf("nets: tree has %d vertices but only %d reachable from root (cycle or disconnect)", len(adj), len(order))
	}
	if len(tr.Steps) != 0 && len(adj) != len(tr.Steps)+1 {
		return nil, fmt.Errorf("nets: %d edges over %d vertices is not a tree", len(tr.Steps), len(adj))
	}
	for i, s := range in.Sinks {
		if _, ok := parent[s.V]; !ok && s.V != in.Root {
			return nil, fmt.Errorf("nets: sink %d (vertex %d) not in tree", i, s.V)
		}
	}

	// Subtree sink weights, bottom-up.
	subW := make(map[grid.V]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		w := subW[v]
		for _, si := range sinksAt[v] {
			w += in.Sinks[si].W
		}
		subW[v] = w
		if v != in.Root {
			subW[parent[v]] += w
		}
	}

	// Top-down delay propagation. delayTo[v] is delay from root to v
	// including all penalties accumulated on the way.
	delayTo := make(map[grid.V]float64, len(order))
	for _, v := range order {
		d := delayTo[v]
		// Groups at v: one per child edge, one per sink hosted at v.
		var ws []float64
		var childEdges []halfEdge
		for _, he := range adj[v] {
			if he.to != v && parent[he.to] == v {
				childEdges = append(childEdges, he)
				ws = append(ws, subW[he.to])
			}
		}
		hosted := sinksAt[v]
		for _, si := range hosted {
			ws = append(ws, in.Sinks[si].W)
		}
		pen := SplitPenalties(in.DBif, in.Eta, ws)
		for i, he := range childEdges {
			delayTo[he.to] = d + pen[i] + in.C.ArcDelay(he.arc)
		}
		for i, si := range hosted {
			ev.SinkDelay[si] = d + pen[len(childEdges)+i]
		}
	}
	for i, s := range in.Sinks {
		ev.DelayCost += s.W * ev.SinkDelay[i]
	}
	ev.Total = ev.CongCost + ev.DelayCost
	return ev, nil
}
