package nets

import (
	"math"
	"sort"

	"costdist/internal/geom"
)

// windowFanout is the R-tree node fanout. Routing windows overlap
// heavily, so a moderate fanout keeps the tree shallow without inflating
// node bounding boxes too much.
const windowFanout = 8

// WindowIndex is a static, bulk-loaded R-tree over plane rectangles,
// packed with Sort-Tile-Recursive (STR). The incremental router packs
// one over the per-net invalidation regions and queries it with each
// wave's changed congestion regions to find the rip-up candidates;
// since Build copies the rectangles, the router reuses the index across
// waves until some region actually moves. Construction and query order
// are deterministic.
type WindowIndex struct {
	rects []geom.Rect // entry rects in packed order
	ids   []int32     // caller ids parallel to rects
	// levels[0] holds the bounding boxes of leaf nodes (groups of
	// windowFanout consecutive entries); levels[k] groups levels[k-1].
	// The last level has a single root box.
	levels [][]geom.Rect
}

// BuildWindowIndex packs the rectangles into an STR R-tree. Entry i is
// reported as id int32(i). Empty rects are allowed and never match.
func BuildWindowIndex(rects []geom.Rect) *WindowIndex {
	n := len(rects)
	ix := &WindowIndex{rects: make([]geom.Rect, n), ids: make([]int32, n)}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// STR: sort by center x, cut into vertical slices of whole leaves,
	// then sort each slice by center y. Ties break on id so the packing
	// is deterministic.
	cx := func(i int32) int64 { return int64(rects[i].X0) + int64(rects[i].X1) }
	cy := func(i int32) int64 { return int64(rects[i].Y0) + int64(rects[i].Y1) }
	sort.Slice(order, func(a, b int) bool {
		if cx(order[a]) != cx(order[b]) {
			return cx(order[a]) < cx(order[b])
		}
		return order[a] < order[b]
	})
	leaves := (n + windowFanout - 1) / windowFanout
	slices := int(math.Ceil(math.Sqrt(float64(leaves))))
	if slices < 1 {
		slices = 1
	}
	sliceSz := slices * windowFanout
	for lo := 0; lo < n; lo += sliceSz {
		hi := lo + sliceSz
		if hi > n {
			hi = n
		}
		s := order[lo:hi]
		sort.Slice(s, func(a, b int) bool {
			if cy(s[a]) != cy(s[b]) {
				return cy(s[a]) < cy(s[b])
			}
			return s[a] < s[b]
		})
	}
	for i, id := range order {
		ix.rects[i] = rects[id]
		ix.ids[i] = id
	}
	// Pack node levels bottom-up until a single root remains.
	level := make([]geom.Rect, 0, leaves)
	for lo := 0; lo < n; lo += windowFanout {
		hi := lo + windowFanout
		if hi > n {
			hi = n
		}
		b := geom.EmptyRect()
		for _, r := range ix.rects[lo:hi] {
			b = b.Union(r)
		}
		level = append(level, b)
	}
	for len(level) > 0 {
		ix.levels = append(ix.levels, level)
		if len(level) == 1 {
			break
		}
		up := make([]geom.Rect, 0, (len(level)+windowFanout-1)/windowFanout)
		for lo := 0; lo < len(level); lo += windowFanout {
			hi := lo + windowFanout
			if hi > len(level) {
				hi = len(level)
			}
			b := geom.EmptyRect()
			for _, r := range level[lo:hi] {
				b = b.Union(r)
			}
			up = append(up, b)
		}
		level = up
	}
	return ix
}

// Len returns the number of indexed rectangles.
func (ix *WindowIndex) Len() int { return len(ix.rects) }

// Query calls visit for the id of every indexed rectangle intersecting
// r, in ascending packed order. Each id is visited at most once per
// call; callers issuing multiple queries dedupe with their own flags.
func (ix *WindowIndex) Query(r geom.Rect, visit func(id int32)) {
	if len(ix.rects) == 0 || r.Empty() {
		return
	}
	ix.query(len(ix.levels)-1, 0, r, visit)
}

func (ix *WindowIndex) query(level, node int, r geom.Rect, visit func(id int32)) {
	if !r.Intersects(ix.levels[level][node]) {
		return
	}
	if level == 0 {
		lo := node * windowFanout
		hi := lo + windowFanout
		if hi > len(ix.rects) {
			hi = len(ix.rects)
		}
		for i := lo; i < hi; i++ {
			if r.Intersects(ix.rects[i]) {
				visit(ix.ids[i])
			}
		}
		return
	}
	lo := node * windowFanout
	hi := lo + windowFanout
	if hi > len(ix.levels[level-1]) {
		hi = len(ix.levels[level-1])
	}
	for c := lo; c < hi; c++ {
		ix.query(level-1, c, r, visit)
	}
}
