package nets

import (
	"errors"
	"fmt"

	"costdist/internal/geom"
)

// PlaneNode is a node of a Steiner topology in the gcell plane.
type PlaneNode struct {
	Pos geom.Pt
	// Parent is the index of the parent node, -1 for the root (node 0).
	Parent int32
	// SinkIdx is the index into Instance.Sinks for sink nodes, -1 for
	// Steiner nodes. Node 0 is always the root terminal (SinkIdx -1).
	SinkIdx int32
}

// PlaneTree is a rooted Steiner topology in the plane. Node 0 is the
// root terminal. The baseline algorithms (L1, SL, PD) produce these;
// package embed maps them into the routing graph.
type PlaneTree struct {
	Nodes []PlaneNode
}

// Children returns the child index lists of every node.
func (t *PlaneTree) Children() [][]int32 {
	ch := make([][]int32, len(t.Nodes))
	for i := 1; i < len(t.Nodes); i++ {
		p := t.Nodes[i].Parent
		ch[p] = append(ch[p], int32(i))
	}
	return ch
}

// Validate checks structural invariants: node 0 is the root with parent
// -1, parents precede nothing in particular but form a tree reaching the
// root, and every sink index in [0, nSinks) appears exactly once.
func (t *PlaneTree) Validate(nSinks int) error {
	if len(t.Nodes) == 0 {
		return errors.New("nets: empty plane tree")
	}
	if t.Nodes[0].Parent != -1 {
		return errors.New("nets: node 0 must be the root")
	}
	seen := make([]bool, nSinks)
	for i, n := range t.Nodes {
		if i == 0 {
			continue
		}
		if n.Parent < 0 || int(n.Parent) >= len(t.Nodes) || n.Parent == int32(i) {
			return fmt.Errorf("nets: node %d has bad parent %d", i, n.Parent)
		}
		if n.SinkIdx >= 0 {
			if int(n.SinkIdx) >= nSinks {
				return fmt.Errorf("nets: node %d has sink index %d out of range", i, n.SinkIdx)
			}
			if seen[n.SinkIdx] {
				return fmt.Errorf("nets: sink %d appears twice", n.SinkIdx)
			}
			seen[n.SinkIdx] = true
		}
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("nets: sink %d missing from tree", s)
		}
	}
	// Acyclicity / reachability: walk parents with a step budget.
	for i := range t.Nodes {
		steps := 0
		for j := int32(i); j != 0; j = t.Nodes[j].Parent {
			if steps++; steps > len(t.Nodes) {
				return fmt.Errorf("nets: parent cycle at node %d", i)
			}
		}
	}
	return nil
}

// Length returns the total L1 length of the topology.
func (t *PlaneTree) Length() int64 {
	var total int64
	for i := 1; i < len(t.Nodes); i++ {
		total += geom.L1(t.Nodes[i].Pos, t.Nodes[t.Nodes[i].Parent].Pos)
	}
	return total
}

// PathLen returns the L1 length of the tree path from node i to the root.
func (t *PlaneTree) PathLen(i int32) int64 {
	var total int64
	for j := i; t.Nodes[j].Parent >= 0; j = t.Nodes[j].Parent {
		total += geom.L1(t.Nodes[j].Pos, t.Nodes[t.Nodes[j].Parent].Pos)
	}
	return total
}

// Canonicalize transforms the topology into a bifurcation-compatible
// tree (paper §I): the root and all sinks are leaves and internal
// (Steiner) nodes have exactly two children. Sinks with children are
// replaced by a Steiner node plus a sink leaf at the same position;
// nodes with k > 2 children are binarized with bestMergeTree using the
// sink delay weights, so the implicit λ assignment matches the
// evaluator; pass-through Steiner nodes with one child are spliced out
// (downstream embedding re-routes between nodes anyway, so bend nodes
// carry no information). Terminal positions are preserved.
func (t *PlaneTree) Canonicalize(sinkW []float64, dbif, eta float64) *PlaneTree {
	ch := t.Children()
	// Subtree sink weight per node.
	subW := make([]float64, len(t.Nodes))
	var weigh func(i int32) float64
	weigh = func(i int32) float64 {
		w := 0.0
		if s := t.Nodes[i].SinkIdx; s >= 0 {
			w = sinkW[s]
		}
		for _, c := range ch[i] {
			w += weigh(c)
		}
		subW[i] = w
		return w
	}
	weigh(0)

	out := &PlaneTree{}
	out.Nodes = append(out.Nodes, PlaneNode{Pos: t.Nodes[0].Pos, Parent: -1, SinkIdx: -1})

	// build returns the new index of the subtree top for old node i,
	// attached under newParent.
	var build func(i, newParent int32) int32
	build = func(i, newParent int32) int32 {
		type group struct {
			topW float64
			// attach materializes the group under the given parent.
			attach func(parent int32)
			// direct is set when the group is a single already-built
			// subtree top that can be reparented without a new node.
			pos geom.Pt
		}
		var groups []group
		n := t.Nodes[i]
		if n.SinkIdx >= 0 {
			idx := n.SinkIdx
			groups = append(groups, group{
				topW: sinkW[idx],
				pos:  n.Pos,
				attach: func(parent int32) {
					out.Nodes = append(out.Nodes, PlaneNode{Pos: n.Pos, Parent: parent, SinkIdx: idx})
				},
			})
		}
		for _, c := range ch[i] {
			c := c
			groups = append(groups, group{
				topW: subW[c],
				pos:  t.Nodes[c].Pos,
				attach: func(parent int32) {
					build(c, parent)
				},
			})
		}
		if len(groups) == 0 {
			// Childless Steiner node: drop (nothing to attach).
			return -1
		}
		if len(groups) == 1 {
			// Pass-through: splice unless this is a sink/terminal node,
			// in which case the group already carries it.
			if n.SinkIdx >= 0 {
				groups[0].attach(newParent)
				return int32(len(out.Nodes) - 1)
			}
			groups[0].attach(newParent)
			return -1
		}
		// Binarize the groups at this node's position.
		ws := make([]float64, len(groups))
		for gi, g := range groups {
			ws[gi] = g.topW
		}
		tree := bestMergeTree(dbif, eta, ws)
		var place func(m *mergeNode, parent int32)
		place = func(m *mergeNode, parent int32) {
			if m.leaf >= 0 {
				groups[m.leaf].attach(parent)
				return
			}
			out.Nodes = append(out.Nodes, PlaneNode{Pos: n.Pos, Parent: parent, SinkIdx: -1})
			me := int32(len(out.Nodes) - 1)
			place(m.left, me)
			place(m.right, me)
		}
		place(tree, newParent)
		return -1
	}

	rootCh := ch[0]
	switch len(rootCh) {
	case 0:
		// Root-only tree (no sinks): nothing to do.
	case 1:
		build(rootCh[0], 0)
	default:
		// Root must be a leaf: hang a Steiner node at the root position
		// binarizing all root children beneath it.
		ws := make([]float64, len(rootCh))
		for i, c := range rootCh {
			ws[i] = subW[c]
		}
		tree := bestMergeTree(dbif, eta, ws)
		var place func(m *mergeNode, parent int32)
		place = func(m *mergeNode, parent int32) {
			if m.leaf >= 0 {
				build(rootCh[m.leaf], parent)
				return
			}
			out.Nodes = append(out.Nodes, PlaneNode{Pos: t.Nodes[0].Pos, Parent: parent, SinkIdx: -1})
			me := int32(len(out.Nodes) - 1)
			place(m.left, me)
			place(m.right, me)
		}
		place(tree, 0)
	}
	return out
}
