// Package cliutil centralizes the flag-validation conventions shared by
// the repo's command-line tools (grroute, cdsteiner, routed): usage
// errors — bad flag values, unknown oracles — exit with code 2 (the
// flag package's convention), runtime failures exit with code 1, and an
// unknown oracle name always reports the full valid set.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"strings"

	"costdist"
)

// Exit codes: runtime failures exit ExitFailure, bad flags or usage
// errors exit ExitUsage.
const (
	ExitFailure = 1
	ExitUsage   = 2
)

// Stderr and exit are swapped by tests; production code never touches
// them.
var (
	Stderr io.Writer = os.Stderr
	exit             = os.Exit
)

// ResolveMethod maps a user-supplied -oracle/-method value to its
// Method. The error of an unknown name lists every accepted name so the
// user never has to guess the valid set.
func ResolveMethod(name string) (costdist.Method, error) {
	m, ok := costdist.MethodByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown oracle %q (valid: %s)",
			name, strings.Join(costdist.MethodNames(), ", "))
	}
	return m, nil
}

// MustMethod resolves name or exits with the usage code, printing the
// valid oracle set.
func MustMethod(cmd, name string) costdist.Method {
	m, err := ResolveMethod(name)
	if err != nil {
		FatalUsage(cmd, err)
	}
	return m
}

// Fatal reports a runtime failure ("cmd: err") and exits 1.
func Fatal(cmd string, err error) {
	fmt.Fprintf(Stderr, "%s: %v\n", cmd, err)
	exit(ExitFailure)
}

// FatalUsage reports a bad-flag/usage error and exits 2.
func FatalUsage(cmd string, err error) {
	fmt.Fprintf(Stderr, "%s: %v\n", cmd, err)
	exit(ExitUsage)
}
