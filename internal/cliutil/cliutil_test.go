package cliutil

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"costdist"
)

// Unknown oracle names must exit with the usage code (2) and print the
// full valid set, so every CLI sharing this helper behaves identically.
func TestMustMethodBadNameExits2WithValidSet(t *testing.T) {
	var buf bytes.Buffer
	code := -1
	Stderr = &buf
	exit = func(c int) { code = c; panic("exit") }
	defer func() {
		Stderr = os.Stderr
		exit = os.Exit
		if r := recover(); r == nil {
			t.Fatal("MustMethod did not exit on bad name")
		}
		if code != ExitUsage {
			t.Fatalf("exit code = %d, want %d", code, ExitUsage)
		}
		out := buf.String()
		for _, name := range costdist.MethodNames() {
			if !strings.Contains(out, name) {
				t.Fatalf("usage error %q does not list oracle %q", out, name)
			}
		}
		if !strings.Contains(out, "mycmd:") {
			t.Fatalf("usage error %q does not name the command", out)
		}
	}()
	MustMethod("mycmd", "nope")
}

func TestResolveMethod(t *testing.T) {
	for _, name := range costdist.MethodNames() {
		if _, err := ResolveMethod(name); err != nil {
			t.Fatalf("ResolveMethod(%q): %v", name, err)
		}
	}
	if m, err := ResolveMethod("CD"); err != nil || m != costdist.CD {
		t.Fatalf("ResolveMethod is not case-insensitive: %v, %v", m, err)
	}
	_, err := ResolveMethod("bogus")
	if err == nil {
		t.Fatal("ResolveMethod accepted a bogus name")
	}
	if !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("error %q does not advertise the valid set", err)
	}
}

func TestFatalExitCodes(t *testing.T) {
	for _, tc := range []struct {
		f    func(string, error)
		want int
	}{{Fatal, ExitFailure}, {FatalUsage, ExitUsage}} {
		var buf bytes.Buffer
		code := -1
		Stderr = &buf
		exit = func(c int) { code = c }
		tc.f("cmd", errors.New("boom"))
		Stderr = os.Stderr
		exit = os.Exit
		if code != tc.want {
			t.Fatalf("exit code = %d, want %d", code, tc.want)
		}
		if got := buf.String(); got != "cmd: boom\n" {
			t.Fatalf("stderr = %q", got)
		}
	}
}
