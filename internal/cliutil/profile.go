package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles owns the lifetime of the optional -cpuprofile/-memprofile
// outputs shared by the CLI tools. StartProfiles begins CPU sampling
// immediately; Stop flushes the CPU profile and writes a heap profile,
// so callers defer it around the work they want captured:
//
//	prof := cliutil.StartProfiles("grroute", *cpuprofile, *memprofile)
//	defer prof.Stop()
//
// Empty paths disable the corresponding profile; a Profiles zero value
// is inert, so Stop is always safe to defer.
type Profiles struct {
	cmd     string
	cpu     *os.File
	memPath string
}

// StartProfiles opens the requested profile outputs and starts the CPU
// profile. Failures to open or start are fatal (exit 1): a benchmark
// run that silently dropped its profile would waste the whole run.
func StartProfiles(cmd, cpuPath, memPath string) *Profiles {
	p := &Profiles{cmd: cmd, memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			Fatal(cmd, fmt.Errorf("create cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			Fatal(cmd, fmt.Errorf("start cpu profile: %w", err))
		}
		p.cpu = f
	}
	return p
}

// Stop ends CPU sampling, flushes the profile file and, when requested,
// writes an up-to-date heap profile.
func (p *Profiles) Stop() {
	if p == nil {
		return
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			Fatal(p.cmd, fmt.Errorf("close cpu profile: %w", err))
		}
		p.cpu = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			Fatal(p.cmd, fmt.Errorf("create mem profile: %w", err))
		}
		runtime.GC() // materialize final live-heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			Fatal(p.cmd, fmt.Errorf("write mem profile: %w", err))
		}
		if err := f.Close(); err != nil {
			Fatal(p.cmd, fmt.Errorf("close mem profile: %w", err))
		}
		p.memPath = ""
	}
}
