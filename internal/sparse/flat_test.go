package sparse

import (
	"math/rand/v2"
	"testing"
)

// TestLabelSlabVsMap drives a LabelSlab and a Map with identical random
// operation sequences over a small key universe and compares every
// observable result.
func TestLabelSlabVsMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	var slab LabelSlab
	for epoch := 0; epoch < 20; epoch++ {
		n := 16 + rng.IntN(200)
		slab.Reset(n)
		m := NewMap(8)
		for op := 0; op < 500; op++ {
			k := int32(rng.IntN(n))
			if rng.Float64() < 0.5 {
				sl := slab.Get(k)
				ml := m.Get(k)
				if (sl == nil) != (ml == nil) {
					t.Fatalf("epoch %d: Get(%d) presence %v vs %v", epoch, k, sl != nil, ml != nil)
				}
				if sl != nil && *sl != *ml {
					t.Fatalf("epoch %d: Get(%d) %+v vs %+v", epoch, k, *sl, *ml)
				}
				continue
			}
			sl, sExisted := slab.Put(k)
			ml, mExisted := m.Put(k)
			if sExisted != mExisted {
				t.Fatalf("epoch %d: Put(%d) existed %v vs %v", epoch, k, sExisted, mExisted)
			}
			if *sl != *ml {
				t.Fatalf("epoch %d: Put(%d) %+v vs %+v", epoch, k, *sl, *ml)
			}
			lab := Label{Dist: rng.Float64(), Prev: int32(rng.IntN(n)), Arc: uint8(rng.IntN(4)), Perm: rng.Float64() < 0.3}
			*sl = lab
			*ml = lab
			if slab.Len() != m.Len() {
				t.Fatalf("epoch %d: Len %d vs %d", epoch, slab.Len(), m.Len())
			}
		}
	}
}

// TestLabelSlabResetIsolation checks labels from one epoch never leak
// into the next, including across a shrink+grow of the universe.
func TestLabelSlabResetIsolation(t *testing.T) {
	var s LabelSlab
	s.Reset(100)
	for i := int32(0); i < 100; i++ {
		l, _ := s.Put(i)
		l.Dist = float64(i)
	}
	s.Reset(10)
	for i := int32(0); i < 10; i++ {
		if s.Get(i) != nil {
			t.Fatalf("leak at %d after shrink reset", i)
		}
	}
	s.Reset(150)
	if s.Len() != 0 {
		t.Fatalf("Len=%d after grow reset", s.Len())
	}
	for i := int32(0); i < 150; i++ {
		if s.Get(i) != nil {
			t.Fatalf("leak at %d after grow reset", i)
		}
	}
}

// TestFlatI32VsI32Map drives a FlatI32 and an I32Map with identical
// random operations and compares every result.
func TestFlatI32VsI32Map(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	var flat FlatI32
	for epoch := 0; epoch < 20; epoch++ {
		n := 16 + rng.IntN(300)
		flat.Reset(n)
		var m I32Map
		m.Reset()
		for op := 0; op < 600; op++ {
			k := int32(rng.IntN(n))
			switch rng.IntN(3) {
			case 0:
				fv, fok := flat.Get(k)
				mv, mok := m.Get(k)
				if fok != mok || (fok && fv != mv) {
					t.Fatalf("epoch %d: Get(%d) (%d,%v) vs (%d,%v)", epoch, k, fv, fok, mv, mok)
				}
			case 1:
				v := int32(rng.IntN(1000))
				flat.Put(k, v)
				m.Put(k, v)
			default:
				v := int32(rng.IntN(1000))
				if got, want := flat.PutIfAbsent(k, v), m.PutIfAbsent(k, v); got != want {
					t.Fatalf("epoch %d: PutIfAbsent(%d) %v vs %v", epoch, k, got, want)
				}
			}
			if flat.Len() != m.Len() {
				t.Fatalf("epoch %d: Len %d vs %d", epoch, flat.Len(), m.Len())
			}
		}
	}
}
