package sparse

// LabelSlab is a dense Label store over a bounded index universe
// [0, n), the flat-array counterpart of Map: Get/Put are a single
// bounds-checked array access instead of a hash probe chain. Presence is
// tracked by a per-slot generation stamp, so Reset is O(1) and a slab
// recycled through an arena (core.Scratch) never re-touches memory it
// does not use. The solver keys slabs by dense routing-window indices;
// windows small enough for the O(n) footprint use a slab, larger ones
// fall back to Map.
//
// The zero value is empty; call Reset(n) before use.
type LabelSlab struct {
	e   []slabEntry
	gen uint32
	n   int
}

type slabEntry struct {
	lab Label
	gen uint32
}

// Reset clears the slab in O(1) and (re)sizes the universe to n slots.
func (s *LabelSlab) Reset(n int) {
	if cap(s.e) < n {
		s.e = make([]slabEntry, n)
	} else {
		s.e = s.e[:n]
	}
	s.gen++
	if s.gen == 0 {
		// Stamp wrapped: old stamps would read as live; pay one clear.
		for i := range s.e {
			s.e[i].gen = 0
		}
		s.gen = 1
	}
	s.n = 0
}

// Len returns the number of live labels.
func (s *LabelSlab) Len() int { return s.n }

// Get returns a pointer to the label at index i, or nil if absent.
func (s *LabelSlab) Get(i int32) *Label {
	e := &s.e[i]
	if e.gen != s.gen {
		return nil
	}
	return &e.lab
}

// Put returns a pointer to the label slot at index i, inserting a zero
// label if absent. The second result reports whether it already existed.
func (s *LabelSlab) Put(i int32) (*Label, bool) {
	e := &s.e[i]
	if e.gen != s.gen {
		e.gen = s.gen
		e.lab = Label{}
		s.n++
		return &e.lab, false
	}
	return &e.lab, true
}

// FlatI32 is a dense int32 store over a bounded index universe — the
// flat-array counterpart of I32Map, with the same generation-stamped
// O(1) Reset. The solver uses it for vertex-ownership stamps when the
// graph is small enough for a per-arena array over all vertices.
//
// The zero value is empty; call Reset(n) before use.
type FlatI32 struct {
	val []int32
	gen []uint32
	cur uint32
	n   int
}

// Reset clears the store in O(1) and (re)sizes the universe to n slots.
func (m *FlatI32) Reset(n int) {
	if cap(m.val) < n {
		m.val = make([]int32, n)
		m.gen = make([]uint32, n)
	} else {
		m.val = m.val[:n]
		m.gen = m.gen[:n]
	}
	m.cur++
	if m.cur == 0 {
		for i := range m.gen {
			m.gen[i] = 0
		}
		m.cur = 1
	}
	m.n = 0
}

// Len returns the number of stored keys.
func (m *FlatI32) Len() int { return m.n }

// Get returns the value stored at index i and whether it is present.
func (m *FlatI32) Get(i int32) (int32, bool) {
	if m.gen[i] != m.cur {
		return 0, false
	}
	return m.val[i], true
}

// Put stores val at index i, overwriting any previous value.
func (m *FlatI32) Put(i, val int32) {
	if m.gen[i] != m.cur {
		m.gen[i] = m.cur
		m.n++
	}
	m.val[i] = val
}

// PutIfAbsent stores val at index i unless present; it reports whether
// the value was stored.
func (m *FlatI32) PutIfAbsent(i, val int32) bool {
	if m.gen[i] == m.cur {
		return false
	}
	m.gen[i] = m.cur
	m.val[i] = val
	m.n++
	return true
}
