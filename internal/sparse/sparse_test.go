package sparse

import (
	"math/rand/v2"
	"testing"
)

func TestPutGet(t *testing.T) {
	m := NewMap(4)
	if m.Get(7) != nil {
		t.Fatal("Get on empty map should be nil")
	}
	l, existed := m.Put(7)
	if existed {
		t.Fatal("Put reported existing for fresh key")
	}
	l.Dist = 3.5
	l.Prev = 2
	l.Arc = 9
	got := m.Get(7)
	if got == nil || got.Dist != 3.5 || got.Prev != 2 || got.Arc != 9 {
		t.Fatalf("Get returned %+v", got)
	}
	l2, existed := m.Put(7)
	if !existed || l2.Dist != 3.5 {
		t.Fatalf("second Put: existed=%v lab=%+v", existed, l2)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	m := NewMap(2)
	const n = 10000
	for i := int32(0); i < n; i++ {
		l, _ := m.Put(i * 3)
		l.Dist = float64(i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d want %d", m.Len(), n)
	}
	for i := int32(0); i < n; i++ {
		l := m.Get(i * 3)
		if l == nil || l.Dist != float64(i) {
			t.Fatalf("lost key %d after growth: %+v", i*3, l)
		}
		if m.Get(i*3+1) != nil {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
}

func TestAgainstBuiltinMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	m := NewMap(8)
	ref := map[int32]float64{}
	for it := 0; it < 50000; it++ {
		k := int32(rng.IntN(5000))
		if rng.IntN(2) == 0 {
			l, _ := m.Put(k)
			l.Dist = float64(it)
			ref[k] = float64(it)
		} else {
			got := m.Get(k)
			want, ok := ref[k]
			if ok != (got != nil) {
				t.Fatalf("presence mismatch for %d", k)
			}
			if ok && got.Dist != want {
				t.Fatalf("value mismatch for %d: %v vs %v", k, got.Dist, want)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len %d vs ref %d", m.Len(), len(ref))
	}
}

func TestRangeVisitsAll(t *testing.T) {
	m := NewMap(4)
	want := map[int32]bool{}
	for i := int32(0); i < 100; i++ {
		k := i * 7
		l, _ := m.Put(k)
		l.Dist = float64(k)
		want[k] = true
	}
	seen := map[int32]bool{}
	m.Range(func(v int32, l *Label) {
		if l.Dist != float64(v) {
			t.Fatalf("label mismatch at %d", v)
		}
		seen[v] = true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d of %d", len(seen), len(want))
	}
}

func TestReset(t *testing.T) {
	m := NewMap(4)
	for i := int32(0); i < 50; i++ {
		m.Put(i)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	for i := int32(0); i < 50; i++ {
		if m.Get(i) != nil {
			t.Fatalf("key %d survived Reset", i)
		}
	}
	l, existed := m.Put(3)
	if existed || l == nil {
		t.Fatal("map unusable after Reset")
	}
}

func TestGrowAfterResetDropsStale(t *testing.T) {
	// A grow triggered after Reset must not resurrect entries from an
	// earlier generation.
	m := NewMap(2)
	for i := int32(0); i < 100; i++ {
		l, _ := m.Put(i)
		l.Dist = -1
	}
	m.Reset()
	for i := int32(0); i < 5000; i++ { // forces several grows
		l, _ := m.Put(i * 2)
		l.Dist = float64(i)
	}
	if m.Len() != 5000 {
		t.Fatalf("Len = %d want 5000", m.Len())
	}
	for i := int32(0); i < 100; i++ {
		if l := m.Get(2*i + 1); l != nil {
			t.Fatalf("stale odd key %d resurrected: %+v", 2*i+1, l)
		}
	}
	for i := int32(0); i < 5000; i++ {
		l := m.Get(i * 2)
		if l == nil || l.Dist != float64(i) {
			t.Fatalf("key %d wrong after grow-after-reset: %+v", i*2, l)
		}
	}
}

func TestResetReuseMatchesBuiltin(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 7))
	m := NewMap(4)
	for round := 0; round < 40; round++ {
		m.Reset()
		ref := map[int32]float64{}
		for it := 0; it < 500; it++ {
			k := int32(rng.IntN(300))
			l, _ := m.Put(k)
			l.Dist = float64(round*1000 + it)
			ref[k] = l.Dist
		}
		if m.Len() != len(ref) {
			t.Fatalf("round %d: Len %d vs ref %d", round, m.Len(), len(ref))
		}
		for k, want := range ref {
			if l := m.Get(k); l == nil || l.Dist != want {
				t.Fatalf("round %d key %d: %+v want %v", round, k, l, want)
			}
		}
	}
}

func TestI32Map(t *testing.T) {
	var m I32Map // zero value usable
	if _, ok := m.Get(3); ok {
		t.Fatal("zero map should be empty")
	}
	if !m.PutIfAbsent(3, 10) {
		t.Fatal("PutIfAbsent on fresh key should store")
	}
	if m.PutIfAbsent(3, 99) {
		t.Fatal("PutIfAbsent on existing key should not store")
	}
	if v, ok := m.Get(3); !ok || v != 10 {
		t.Fatalf("Get(3) = %v,%v", v, ok)
	}
	m.Put(3, 42)
	if v, _ := m.Get(3); v != 42 {
		t.Fatalf("overwrite failed: %d", v)
	}
	for i := int32(0); i < 10000; i++ {
		m.Put(i, i*2)
	}
	for i := int32(0); i < 10000; i++ {
		if v, ok := m.Get(i); !ok || v != i*2 {
			t.Fatalf("key %d lost after growth: %v,%v", i, v, ok)
		}
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	for i := int32(0); i < 10000; i++ {
		if _, ok := m.Get(i); ok {
			t.Fatalf("key %d survived Reset", i)
		}
	}
	m.Put(7, 7)
	if v, ok := m.Get(7); !ok || v != 7 {
		t.Fatal("map unusable after Reset")
	}
}

func TestI32MapAgainstBuiltin(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	var m I32Map
	ref := map[int32]int32{}
	for round := 0; round < 20; round++ {
		m.Reset()
		clear(ref)
		for it := 0; it < 2000; it++ {
			k := int32(rng.IntN(800))
			switch rng.IntN(3) {
			case 0:
				m.Put(k, int32(it))
				ref[k] = int32(it)
			case 1:
				stored := m.PutIfAbsent(k, int32(it))
				if _, ok := ref[k]; ok == stored {
					t.Fatalf("PutIfAbsent(%d) stored=%v but present=%v", k, stored, ok)
				}
				if stored {
					ref[k] = int32(it)
				}
			default:
				v, ok := m.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && v != want) {
					t.Fatalf("Get(%d) = %v,%v want %v,%v", k, v, ok, want, wok)
				}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("round %d: Len %d vs ref %d", round, m.Len(), len(ref))
		}
	}
}

func BenchmarkPut(b *testing.B) {
	m := NewMap(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, _ := m.Put(int32(i & 0xFFFF))
		l.Dist = float64(i)
	}
}

func BenchmarkGetHit(b *testing.B) {
	m := NewMap(1 << 16)
	for i := int32(0); i < 1<<16; i++ {
		m.Put(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Get(int32(i&0xFFFF)) == nil {
			b.Fatal("miss")
		}
	}
}
