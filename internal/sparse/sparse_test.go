package sparse

import (
	"math/rand/v2"
	"testing"
)

func TestPutGet(t *testing.T) {
	m := NewMap(4)
	if m.Get(7) != nil {
		t.Fatal("Get on empty map should be nil")
	}
	l, existed := m.Put(7)
	if existed {
		t.Fatal("Put reported existing for fresh key")
	}
	l.Dist = 3.5
	l.Prev = 2
	l.Arc = 9
	got := m.Get(7)
	if got == nil || got.Dist != 3.5 || got.Prev != 2 || got.Arc != 9 {
		t.Fatalf("Get returned %+v", got)
	}
	l2, existed := m.Put(7)
	if !existed || l2.Dist != 3.5 {
		t.Fatalf("second Put: existed=%v lab=%+v", existed, l2)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	m := NewMap(2)
	const n = 10000
	for i := int32(0); i < n; i++ {
		l, _ := m.Put(i * 3)
		l.Dist = float64(i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d want %d", m.Len(), n)
	}
	for i := int32(0); i < n; i++ {
		l := m.Get(i * 3)
		if l == nil || l.Dist != float64(i) {
			t.Fatalf("lost key %d after growth: %+v", i*3, l)
		}
		if m.Get(i*3+1) != nil {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
}

func TestAgainstBuiltinMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	m := NewMap(8)
	ref := map[int32]float64{}
	for it := 0; it < 50000; it++ {
		k := int32(rng.IntN(5000))
		if rng.IntN(2) == 0 {
			l, _ := m.Put(k)
			l.Dist = float64(it)
			ref[k] = float64(it)
		} else {
			got := m.Get(k)
			want, ok := ref[k]
			if ok != (got != nil) {
				t.Fatalf("presence mismatch for %d", k)
			}
			if ok && got.Dist != want {
				t.Fatalf("value mismatch for %d: %v vs %v", k, got.Dist, want)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len %d vs ref %d", m.Len(), len(ref))
	}
}

func TestRangeVisitsAll(t *testing.T) {
	m := NewMap(4)
	want := map[int32]bool{}
	for i := int32(0); i < 100; i++ {
		k := i * 7
		l, _ := m.Put(k)
		l.Dist = float64(k)
		want[k] = true
	}
	seen := map[int32]bool{}
	m.Range(func(v int32, l *Label) {
		if l.Dist != float64(v) {
			t.Fatalf("label mismatch at %d", v)
		}
		seen[v] = true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d of %d", len(seen), len(want))
	}
}

func TestReset(t *testing.T) {
	m := NewMap(4)
	for i := int32(0); i < 50; i++ {
		m.Put(i)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	for i := int32(0); i < 50; i++ {
		if m.Get(i) != nil {
			t.Fatalf("key %d survived Reset", i)
		}
	}
	l, existed := m.Put(3)
	if existed || l == nil {
		t.Fatal("map unusable after Reset")
	}
}

func BenchmarkPut(b *testing.B) {
	m := NewMap(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, _ := m.Put(int32(i & 0xFFFF))
		l.Dist = float64(i)
	}
}

func BenchmarkGetHit(b *testing.B) {
	m := NewMap(1 << 16)
	for i := int32(0); i < 1<<16; i++ {
		m.Put(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Get(int32(i&0xFFFF)) == nil {
			b.Fatal("miss")
		}
	}
}
