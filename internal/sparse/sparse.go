// Package sparse provides open-addressing hash maps from int32 vertex
// ids to per-search payloads. Each per-sink search in the cost-distance
// algorithm labels only a local region of the (potentially huge) global
// routing graph, so dense per-search arrays would waste O(t·n) memory;
// these maps keep per-search memory proportional to the labeled region
// while staying allocation-free on the hot path.
//
// Both map types clear by bumping a generation stamp, so Reset is O(1)
// and retained capacity makes them suitable as arena members that are
// recycled across many solver calls (core.Scratch).
package sparse

// Label is a Dijkstra label: tentative distance, predecessor vertex and
// the arc code by which the vertex was reached (see grid.ArcCode), plus a
// permanence flag.
type Label struct {
	Dist float64
	Prev int32
	Arc  uint8
	Perm bool
}

type entry struct {
	key int32
	gen uint32 // slot is live iff gen == map generation
	lab Label
}

// Map is an open-addressing hash map int32 -> Label with linear probing.
// The zero value is not usable; call NewMap.
type Map struct {
	entries []entry
	n       int
	mask    uint32
	gen     uint32
}

// NewMap returns a map with capacity for roughly capHint entries before
// the first growth.
func NewMap(capHint int) *Map {
	size := 16
	for size < capHint*2 {
		size <<= 1
	}
	m := &Map{}
	m.init(size)
	return m
}

func (m *Map) init(size int) {
	m.entries = make([]entry, size)
	m.mask = uint32(size - 1)
	m.gen = 1
	m.n = 0
}

// Len returns the number of stored labels.
func (m *Map) Len() int { return m.n }

// Reset removes all entries in O(1) by advancing the generation stamp,
// retaining capacity. Stale slots are reclaimed lazily by later Puts.
func (m *Map) Reset() {
	if m.entries == nil {
		m.init(16)
		return
	}
	m.gen++
	if m.gen == 0 {
		// Generation counter wrapped: old stamps would read as live
		// again, so pay one full clear every 2^32 resets.
		m.init(len(m.entries))
	}
	m.n = 0
}

func hash(k int32) uint32 {
	x := uint32(k)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Get returns a pointer to the label stored for v, or nil.
// The pointer is invalidated by the next Put that triggers growth.
func (m *Map) Get(v int32) *Label {
	i := hash(v) & m.mask
	for {
		e := &m.entries[i]
		if e.gen != m.gen {
			return nil
		}
		if e.key == v {
			return &e.lab
		}
		i = (i + 1) & m.mask
	}
}

// Put returns a pointer to the label slot for v, inserting a zero label
// if absent. The second result reports whether the label already existed.
func (m *Map) Put(v int32) (*Label, bool) {
	if m.n*4 >= len(m.entries)*3 {
		m.grow()
	}
	i := hash(v) & m.mask
	for {
		e := &m.entries[i]
		if e.gen != m.gen {
			e.key = v
			e.gen = m.gen
			e.lab = Label{}
			m.n++
			return &e.lab, false
		}
		if e.key == v {
			return &e.lab, true
		}
		i = (i + 1) & m.mask
	}
}

func (m *Map) grow() {
	old := m.entries
	oldGen := m.gen
	m.init(len(old) * 2)
	for i := range old {
		if old[i].gen == oldGen {
			slot, _ := m.Put(old[i].key)
			*slot = old[i].lab
		}
	}
}

// Range calls f for every (vertex, label) pair in unspecified order.
// f must not mutate the map.
func (m *Map) Range(f func(v int32, l *Label)) {
	for i := range m.entries {
		if m.entries[i].gen == m.gen {
			f(m.entries[i].key, &m.entries[i].lab)
		}
	}
}

type i32Entry struct {
	key int32
	gen uint32
	val int32
}

// I32Map is an open-addressing hash map int32 -> int32 with linear
// probing and O(1) generational Reset. The cost-distance solver uses it
// for vertex-ownership stamps (vertex id -> component id), which a plain
// Go map would re-allocate on every solver call. The zero value is an
// empty usable map.
type I32Map struct {
	entries []i32Entry
	n       int
	mask    uint32
	gen     uint32
}

func (m *I32Map) init(size int) {
	m.entries = make([]i32Entry, size)
	m.mask = uint32(size - 1)
	m.gen = 1
	m.n = 0
}

// Len returns the number of stored keys.
func (m *I32Map) Len() int { return m.n }

// Reset removes all entries in O(1), retaining capacity.
func (m *I32Map) Reset() {
	if m.entries == nil {
		m.init(64)
		return
	}
	m.gen++
	if m.gen == 0 {
		m.init(len(m.entries))
	}
	m.n = 0
}

// Get returns the value stored for v and whether it is present.
func (m *I32Map) Get(v int32) (int32, bool) {
	if m.entries == nil {
		return 0, false
	}
	i := hash(v) & m.mask
	for {
		e := &m.entries[i]
		if e.gen != m.gen {
			return 0, false
		}
		if e.key == v {
			return e.val, true
		}
		i = (i + 1) & m.mask
	}
}

// Put stores val for v, overwriting any previous value.
func (m *I32Map) Put(v, val int32) {
	if m.entries == nil {
		m.init(64)
	} else if m.n*4 >= len(m.entries)*3 {
		m.grow()
	}
	i := hash(v) & m.mask
	for {
		e := &m.entries[i]
		if e.gen != m.gen {
			e.key = v
			e.gen = m.gen
			e.val = val
			m.n++
			return
		}
		if e.key == v {
			e.val = val
			return
		}
		i = (i + 1) & m.mask
	}
}

// PutIfAbsent stores val for v unless v is already present; it reports
// whether the value was stored. Single probe walk (this sits on the
// solver's merge hot path).
func (m *I32Map) PutIfAbsent(v, val int32) bool {
	if m.entries == nil {
		m.init(64)
	} else if m.n*4 >= len(m.entries)*3 {
		m.grow()
	}
	i := hash(v) & m.mask
	for {
		e := &m.entries[i]
		if e.gen != m.gen {
			e.key = v
			e.gen = m.gen
			e.val = val
			m.n++
			return true
		}
		if e.key == v {
			return false
		}
		i = (i + 1) & m.mask
	}
}

func (m *I32Map) grow() {
	old := m.entries
	oldGen := m.gen
	m.init(len(old) * 2)
	for i := range old {
		if old[i].gen == oldGen {
			m.Put(old[i].key, old[i].val)
		}
	}
}
