// Package sparse provides an open-addressing hash map from int32 vertex
// ids to Dijkstra labels. Each per-sink search in the cost-distance
// algorithm labels only a local region of the (potentially huge) global
// routing graph, so dense per-search arrays would waste O(t·n) memory;
// this map keeps per-search memory proportional to the labeled region
// while staying allocation-free on the hot path.
package sparse

// Label is a Dijkstra label: tentative distance, predecessor vertex and
// the arc code by which the vertex was reached (see grid.ArcCode), plus a
// permanence flag.
type Label struct {
	Dist float64
	Prev int32
	Arc  uint8
	Perm bool
}

type entry struct {
	key int32 // vertex id, -1 = empty
	lab Label
}

// Map is an open-addressing hash map int32 -> Label with linear probing.
// The zero value is not usable; call NewMap.
type Map struct {
	entries []entry
	n       int
	mask    uint32
}

// NewMap returns a map with capacity for roughly capHint entries before
// the first growth.
func NewMap(capHint int) *Map {
	size := 16
	for size < capHint*2 {
		size <<= 1
	}
	m := &Map{}
	m.init(size)
	return m
}

func (m *Map) init(size int) {
	m.entries = make([]entry, size)
	for i := range m.entries {
		m.entries[i].key = -1
	}
	m.mask = uint32(size - 1)
	m.n = 0
}

// Len returns the number of stored labels.
func (m *Map) Len() int { return m.n }

// Reset removes all entries, retaining capacity.
func (m *Map) Reset() {
	for i := range m.entries {
		m.entries[i].key = -1
	}
	m.n = 0
}

func hash(k int32) uint32 {
	x := uint32(k)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Get returns a pointer to the label stored for v, or nil.
// The pointer is invalidated by the next Put that triggers growth.
func (m *Map) Get(v int32) *Label {
	i := hash(v) & m.mask
	for {
		e := &m.entries[i]
		if e.key == v {
			return &e.lab
		}
		if e.key == -1 {
			return nil
		}
		i = (i + 1) & m.mask
	}
}

// Put returns a pointer to the label slot for v, inserting a zero label
// if absent. The second result reports whether the label already existed.
func (m *Map) Put(v int32) (*Label, bool) {
	if m.n*4 >= len(m.entries)*3 {
		m.grow()
	}
	i := hash(v) & m.mask
	for {
		e := &m.entries[i]
		if e.key == v {
			return &e.lab, true
		}
		if e.key == -1 {
			e.key = v
			e.lab = Label{}
			m.n++
			return &e.lab, false
		}
		i = (i + 1) & m.mask
	}
}

func (m *Map) grow() {
	old := m.entries
	m.init(len(old) * 2)
	for i := range old {
		if old[i].key >= 0 {
			slot, _ := m.Put(old[i].key)
			*slot = old[i].lab
		}
	}
}

// Range calls f for every (vertex, label) pair in unspecified order.
// f must not mutate the map.
func (m *Map) Range(f func(v int32, l *Label)) {
	for i := range m.entries {
		if m.entries[i].key >= 0 {
			f(m.entries[i].key, &m.entries[i].lab)
		}
	}
}
