// Package tables regenerates every table and figure of the paper's
// evaluation (§IV) on the synthetic chip suite:
//
//	Table I   — average objective increase vs best-of-4, dbif = 0
//	Table II  — the same with bifurcation penalties (dbif > 0)
//	Table III — instance parameters of the chip suite
//	Table IV  — global routing results (WS/TNS/ACE4/WL/vias/time), dbif = 0
//	Table V   — the same with dbif > 0
//	Figure 1  — bifurcations on a critical path: CD vs topology-first
//	Figure 2  — repeater chain / λ split illustration
//	Figure 3  — the course of the algorithm on a 5-sink instance
//
// Absolute numbers differ from the paper (synthetic chips, simulated
// router); the shapes under test are who wins per metric and how the
// advantage develops with |S| and with dbif.
package tables

import (
	"fmt"
	"sort"
	"strings"

	"costdist/internal/chipgen"
	"costdist/internal/nets"
	"costdist/internal/router"
)

// Config scales the experiments.
type Config struct {
	// Scale multiplies the paper's net counts (1.0 = full size).
	Scale float64
	// Chips selects suite indices (nil = all eight).
	Chips []int
	// Waves, Threads, Seed forward to the router.
	Waves   int
	Threads int
	Seed    uint64
}

// DefaultConfig is sized for minutes-scale runs.
func DefaultConfig() Config {
	return Config{Scale: 0.005, Waves: 3, Threads: 0, Seed: 7}
}

func (c Config) chipIndices() []int {
	if len(c.Chips) > 0 {
		return c.Chips
	}
	return []int{0, 1, 2, 3, 4, 5, 6, 7}
}

func (c Config) routerOptions(withBif bool) router.Options {
	opt := router.DefaultOptions()
	opt.Waves = c.Waves
	opt.Threads = c.Threads
	opt.Seed = c.Seed
	if !withBif {
		opt.DBif = 0
	}
	return opt
}

// Methods in the paper's column order.
var Methods = []router.Method{router.L1, router.SL, router.PD, router.CD}

// InstRow is one |S|-bucket row of Tables I/II.
type InstRow struct {
	Label     string
	Instances int
	// AvgPct[m] is the mean relative objective increase (in percent)
	// of method m over the per-instance best of the four.
	AvgPct [4]float64
}

var buckets = []struct {
	label  string
	lo, hi int
}{
	{"3-5", 3, 5},
	{"6-14", 6, 14},
	{"15-29", 15, 29},
	{">=30", 30, 1 << 30},
}

// InstanceComparison reproduces Tables I/II: instances are captured
// during a CD-driven routing run (matching "as they were generated
// during timing-constrained global routing"), then every instance is
// solved by all four algorithms and scored with the shared evaluator.
func InstanceComparison(cfg Config, withBif bool) ([]InstRow, error) {
	opt := cfg.routerOptions(withBif)
	opt.CaptureWave = opt.Waves - 1
	var captured []*nets.Instance
	for _, ci := range cfg.chipIndices() {
		spec := chipgen.Suite(cfg.Scale)[ci]
		chip, err := chipgen.Generate(spec)
		if err != nil {
			return nil, err
		}
		res, err := router.Route(chip, router.CD, opt)
		if err != nil {
			return nil, err
		}
		captured = append(captured, res.Captured...)
	}

	sums := make([][4]float64, len(buckets)+1)
	counts := make([]int, len(buckets)+1)
	for _, in := range captured {
		t := len(in.Sinks)
		bi := -1
		for i, b := range buckets {
			if t >= b.lo && t <= b.hi {
				bi = i
				break
			}
		}
		if bi < 0 {
			continue // 1-2 sink instances are not tabulated in the paper
		}
		var totals [4]float64
		best := -1.0
		ok := true
		for mi, m := range Methods {
			tr, err := router.SolveNet(in, m, opt)
			if err != nil {
				ok = false
				break
			}
			ev, err := nets.Evaluate(in, tr)
			if err != nil {
				ok = false
				break
			}
			totals[mi] = ev.Total
			if best < 0 || ev.Total < best {
				best = ev.Total
			}
		}
		if !ok || best <= 0 {
			continue
		}
		for mi := range Methods {
			inc := 100 * (totals[mi] - best) / best
			sums[bi][mi] += inc
			sums[len(buckets)][mi] += inc
		}
		counts[bi]++
		counts[len(buckets)]++
	}

	rows := make([]InstRow, 0, len(buckets)+1)
	for i, b := range buckets {
		row := InstRow{Label: b.label, Instances: counts[i]}
		for mi := range Methods {
			if counts[i] > 0 {
				row.AvgPct[mi] = sums[i][mi] / float64(counts[i])
			}
		}
		rows = append(rows, row)
	}
	all := InstRow{Label: "all", Instances: counts[len(buckets)]}
	for mi := range Methods {
		if all.Instances > 0 {
			all.AvgPct[mi] = sums[len(buckets)][mi] / float64(all.Instances)
		}
	}
	rows = append(rows, all)
	return rows, nil
}

// FormatInstanceTable renders Tables I/II in the paper's layout.
func FormatInstanceTable(title string, rows []InstRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %10s %8s %8s %8s %8s\n", "|S|", "#inst", "L1", "SL", "PD", "CD")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %10d %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			r.Label, r.Instances, r.AvgPct[0], r.AvgPct[1], r.AvgPct[2], r.AvgPct[3])
	}
	return b.String()
}

// ChipRow is one row of Table III.
type ChipRow struct {
	Name   string
	Nets   int
	Layers int
}

// TableIII returns the chip inventory at the configured scale.
func TableIII(cfg Config) []ChipRow {
	var rows []ChipRow
	for _, ci := range cfg.chipIndices() {
		s := chipgen.Suite(cfg.Scale)[ci]
		rows = append(rows, ChipRow{Name: s.Name, Nets: s.NNets, Layers: s.Layers})
	}
	return rows
}

// FormatTableIII renders Table III.
func FormatTableIII(rows []ChipRow, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III — INSTANCE PARAMETERS (synthetic, %.4gx of paper net counts, layer counts exact)\n", scale)
	fmt.Fprintf(&b, "%-5s %10s %8s\n", "Chip", "#nets", "#layers")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %10d %8d\n", r.Name, r.Nets, r.Layers)
	}
	return b.String()
}

// GRRow is one (chip, method) row of Tables IV/V.
type GRRow struct {
	Chip    string
	Method  router.Method
	Metrics router.Metrics
}

// GlobalRouting reproduces Tables IV/V: the full flow per chip per
// method.
func GlobalRouting(cfg Config, withBif bool) ([]GRRow, error) {
	opt := cfg.routerOptions(withBif)
	var rows []GRRow
	for _, ci := range cfg.chipIndices() {
		spec := chipgen.Suite(cfg.Scale)[ci]
		chip, err := chipgen.Generate(spec)
		if err != nil {
			return nil, err
		}
		for _, m := range Methods {
			res, err := router.Route(chip, m, opt)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", spec.Name, m, err)
			}
			rows = append(rows, GRRow{Chip: spec.Name, Method: m, Metrics: res.Metrics})
		}
	}
	return rows, nil
}

// FormatGRTable renders Tables IV/V in the paper's layout, including the
// "all" summary block (sums for WS/TNS/WL/vias/walltime, mean ACE4) and
// a ★ marking the best method per chip per column.
func FormatGRTable(title string, rows []GRRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-5s %-4s %9s %12s %8s %10s %10s %12s\n",
		"Chip", "Run", "WS[ps]", "TNS[ps]", "ACE4[%]", "WL[m]", "Vias", "Walltime")

	chips := []string{}
	byChip := map[string][]GRRow{}
	for _, r := range rows {
		if _, ok := byChip[r.Chip]; !ok {
			chips = append(chips, r.Chip)
		}
		byChip[r.Chip] = append(byChip[r.Chip], r)
	}
	star := func(rs []GRRow, val func(GRRow) float64, mi int, higherBetter bool) string {
		best := 0
		for i := range rs {
			if higherBetter && val(rs[i]) > val(rs[best]) {
				best = i
			}
			if !higherBetter && val(rs[i]) < val(rs[best]) {
				best = i
			}
		}
		if best == mi {
			return "*"
		}
		return " "
	}
	var sum [4]router.Metrics
	for _, chip := range chips {
		rs := byChip[chip]
		sort.Slice(rs, func(a, b int) bool { return rs[a].Method < rs[b].Method })
		for mi, r := range rs {
			m := r.Metrics
			fmt.Fprintf(&b, "%-5s %-4s %8.0f%s %11.0f%s %7.2f%s %9.4f%s %9d%s %12s\n",
				chip, r.Method.String(),
				m.WS, star(rs, func(r GRRow) float64 { return r.Metrics.WS }, mi, true),
				m.TNS, star(rs, func(r GRRow) float64 { return r.Metrics.TNS }, mi, true),
				m.ACE4, star(rs, func(r GRRow) float64 { return r.Metrics.ACE4 }, mi, false),
				m.WLm, star(rs, func(r GRRow) float64 { return r.Metrics.WLm }, mi, false),
				m.Vias, star(rs, func(r GRRow) float64 { return float64(r.Metrics.Vias) }, mi, false),
				m.Walltime.Round(1e6))
			sum[mi].WS += m.WS
			sum[mi].TNS += m.TNS
			sum[mi].ACE4 += m.ACE4
			sum[mi].WLm += m.WLm
			sum[mi].Vias += m.Vias
			sum[mi].Walltime += m.Walltime
		}
	}
	for mi, m := range Methods {
		s := sum[mi]
		fmt.Fprintf(&b, "%-5s %-4s %8.0f  %11.0f  %7.2f  %9.4f  %9d  %12s\n",
			"all", m.String(), s.WS, s.TNS, s.ACE4/float64(len(chips)), s.WLm, s.Vias, s.Walltime.Round(1e6))
	}
	return b.String()
}
