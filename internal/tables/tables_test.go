package tables

import (
	"strings"
	"testing"

	"costdist/internal/router"
)

func tinyConfig() Config {
	return Config{Scale: 0.0012, Chips: []int{0}, Waves: 2, Threads: 2, Seed: 3}
}

func TestInstanceComparisonShape(t *testing.T) {
	rows, err := InstanceComparison(tinyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("row count %d", len(rows))
	}
	if rows[4].Label != "all" {
		t.Fatalf("last row %q", rows[4].Label)
	}
	total := 0
	for _, r := range rows[:4] {
		total += r.Instances
		for mi, v := range r.AvgPct {
			if v < 0 {
				t.Fatalf("negative increase for method %d in %s", mi, r.Label)
			}
		}
	}
	if total == 0 {
		t.Fatal("no instances tabulated")
	}
	if rows[4].Instances != total {
		t.Fatalf("all row %d != sum %d", rows[4].Instances, total)
	}
	// At least one bucket per row set must have a zero-increase method
	// (someone is best).
	out := FormatInstanceTable("TABLE I", rows)
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "CD") {
		t.Fatalf("format broken:\n%s", out)
	}
}

func TestTableIII(t *testing.T) {
	rows := TableIII(Config{Scale: 1.0})
	if len(rows) != 8 {
		t.Fatalf("chips %d", len(rows))
	}
	if rows[0].Nets != 49734 || rows[7].Layers != 15 {
		t.Fatalf("table III wrong: %+v", rows)
	}
	out := FormatTableIII(rows, 1.0)
	if !strings.Contains(out, "c8") {
		t.Fatal("format missing chips")
	}
}

func TestGlobalRoutingShape(t *testing.T) {
	rows, err := GlobalRouting(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d want 4 (1 chip × 4 methods)", len(rows))
	}
	seen := map[router.Method]bool{}
	for _, r := range rows {
		seen[r.Method] = true
		if r.Metrics.WLm <= 0 {
			t.Fatalf("%v: no wirelength", r.Method)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("methods missing: %v", seen)
	}
	out := FormatGRTable("TABLE V", rows)
	for _, want := range []string{"c1", "L1", "SL", "PD", "CD", "ACE4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1(t *testing.T) {
	pdSVG, cdSVG, pdBifs, cdBifs, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pdSVG, "<svg") || !strings.HasPrefix(cdSVG, "<svg") {
		t.Fatal("not SVG output")
	}
	if pdBifs < 0 || cdBifs < 0 {
		t.Fatal("critical sink unreachable in a tree")
	}
	// The paper's claim: CD has no more bifurcations on the critical
	// path than the topology-first baseline on this kind of instance.
	if cdBifs > pdBifs {
		t.Fatalf("CD critical path has more bifurcations: %d vs %d", cdBifs, pdBifs)
	}
	t.Logf("bifurcations on critical path: PD=%d CD=%d", pdBifs, cdBifs)
}

func TestFigure2(t *testing.T) {
	svg := Figure2(0.25)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "dbif") {
		t.Fatal("figure 2 malformed")
	}
}

func TestFigure3(t *testing.T) {
	frames, events, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(events) || len(events) != 5 {
		t.Fatalf("expected 5 iterations, got %d frames / %d events", len(frames), len(events))
	}
	if !events[len(events)-1].ToRoot {
		t.Fatal("last merge should hit the root")
	}
	for _, f := range frames {
		if !strings.HasPrefix(f, "<svg") {
			t.Fatal("frame not SVG")
		}
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("variant count %d", len(rows))
	}
	if rows[0].Name != "default" || rows[0].AvgPct != 0 {
		t.Fatalf("default row wrong: %+v", rows[0])
	}
	if rows[0].Instances == 0 {
		t.Fatal("no instances")
	}
	out := FormatAblation(rows)
	if !strings.Contains(out, "ABLATION") || !strings.Contains(out, "flat-heap") {
		t.Fatalf("format:\n%s", out)
	}
}
