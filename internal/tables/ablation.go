package tables

import (
	"fmt"
	"strings"

	"costdist/internal/chipgen"
	"costdist/internal/core"
	"costdist/internal/nets"
	"costdist/internal/router"
)

// AblationRow reports one CD variant on the captured instance set.
type AblationRow struct {
	Name string
	// AvgPct is the mean objective increase over the default
	// configuration, in percent (negative = better than default).
	AvgPct float64
	// Instances actually scored.
	Instances int
}

// ablationVariants are the §III design choices DESIGN.md calls out.
func ablationVariants() []struct {
	name string
	opt  core.Options
} {
	d := core.DefaultOptions()
	noDiscount := d
	noDiscount.Discount = false
	noImprove := d
	noImprove.ImproveSteiner = false
	noBonus := d
	noBonus.RootBonus = false
	withAStar := d
	withAStar.AStar = true
	withAStar.AStarMaxTargets = 24
	flat := d
	flat.FlatHeap = true
	return []struct {
		name string
		opt  core.Options
	}{
		{"default", d},
		{"no-discount (§III-A off)", noDiscount},
		{"no-improve (§III-D off)", noImprove},
		{"no-root-bonus (§III-E off)", noBonus},
		{"a-star (§III-C on)", withAStar},
		{"flat-heap (§III-B off)", flat},
		{"plain §II", core.Options{}},
	}
}

// Ablation captures instances from a CD routing run and scores every
// §III variant against the default configuration on the same instances.
func Ablation(cfg Config, withBif bool) ([]AblationRow, error) {
	opt := cfg.routerOptions(withBif)
	opt.CaptureWave = opt.Waves - 1
	var captured []*nets.Instance
	for _, ci := range cfg.chipIndices() {
		spec := chipgen.Suite(cfg.Scale)[ci]
		chip, err := chipgen.Generate(spec)
		if err != nil {
			return nil, err
		}
		res, err := router.Route(chip, router.CD, opt)
		if err != nil {
			return nil, err
		}
		for _, in := range res.Captured {
			if len(in.Sinks) >= 3 {
				captured = append(captured, in)
			}
		}
	}
	variants := ablationVariants()
	totals := make([]float64, len(variants))
	count := 0
	for _, in := range captured {
		vals := make([]float64, len(variants))
		ok := true
		for vi, v := range variants {
			tr, err := core.Solve(in, v.opt)
			if err != nil {
				ok = false
				break
			}
			ev, err := nets.Evaluate(in, tr)
			if err != nil {
				ok = false
				break
			}
			vals[vi] = ev.Total
		}
		if !ok || vals[0] <= 0 {
			continue
		}
		for vi := range variants {
			totals[vi] += 100 * (vals[vi] - vals[0]) / vals[0]
		}
		count++
	}
	rows := make([]AblationRow, len(variants))
	for vi, v := range variants {
		rows[vi] = AblationRow{Name: v.name, Instances: count}
		if count > 0 {
			rows[vi].AvgPct = totals[vi] / float64(count)
		}
	}
	return rows, nil
}

// FormatAblation renders the ablation table.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION — CD objective change vs default configuration (%d instances, |S| ≥ 3)\n", rows[0].Instances)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %+7.2f%%\n", r.Name, r.AvgPct)
	}
	return b.String()
}
