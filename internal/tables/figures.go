package tables

import (
	"fmt"
	"math/rand/v2"

	"costdist/internal/core"
	"costdist/internal/dly"
	"costdist/internal/grid"
	"costdist/internal/nets"
	"costdist/internal/router"
	"costdist/internal/viz"
)

func figGraph(nx, ny int32, layers int) (*grid.Graph, *grid.Costs) {
	tech := dly.DefaultTech(layers)
	g := grid.New(nx, ny, tech.BuildLayers(), tech.GCellUM)
	return g, grid.NewCosts(g)
}

// Figure1 reproduces the paper's Figure 1: two trees for the same net
// where the topology-first method (PD) places more bifurcations on the
// path to the critical sink than CD does. It returns the two SVGs plus
// the measured bifurcation counts on the critical path.
func Figure1() (pdSVG, cdSVG string, pdBifs, cdBifs int, err error) {
	g, c := figGraph(28, 16, 4)
	// Root at the left; a critical sink far right; noise sinks hanging
	// around the trunk, tempting topology-first methods to chain them.
	in := &nets.Instance{
		G: g, C: c,
		Root: g.At(0, 8, 0),
		DBif: 40, Eta: 0.25,
		Win:  g.FullWindow(),
		Seed: 42,
	}
	in.Sinks = append(in.Sinks, nets.Sink{V: g.At(26, 8, 0), W: 1.0}) // critical
	noise := [][2]int32{{5, 6}, {9, 10}, {13, 6}, {17, 10}, {21, 6}, {24, 10}}
	for _, p := range noise {
		in.Sinks = append(in.Sinks, nets.Sink{V: g.At(p[0], p[1], 0), W: 0.01})
	}
	opt := router.DefaultOptions()
	pdTree, err := router.SolveNet(in, router.PD, opt)
	if err != nil {
		return "", "", 0, 0, err
	}
	cdTree, err := router.SolveNet(in, router.CD, opt)
	if err != nil {
		return "", "", 0, 0, err
	}
	pdBifs = bifurcationsOnPath(in, pdTree, in.Sinks[0].V)
	cdBifs = bifurcationsOnPath(in, cdTree, in.Sinks[0].V)
	return viz.RenderTree(in, pdTree, 18), viz.RenderTree(in, cdTree, 18), pdBifs, cdBifs, nil
}

// bifurcationsOnPath counts branching vertices on the tree path from the
// root to the given sink (the quantity Figure 1 is about).
func bifurcationsOnPath(in *nets.Instance, tr *nets.RTree, sink grid.V) int {
	adj := map[grid.V][]grid.V{}
	for _, st := range tr.Steps {
		adj[st.From] = append(adj[st.From], st.Arc.To)
		adj[st.Arc.To] = append(adj[st.Arc.To], st.From)
	}
	// BFS parents from root.
	parent := map[grid.V]grid.V{in.Root: in.Root}
	queue := []grid.V{in.Root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if _, ok := parent[w]; !ok {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	bifs := 0
	for v := sink; v != in.Root; v = parent[v] {
		if _, ok := parent[v]; !ok {
			return -1 // sink not reached; callers treat as error value
		}
		// Degree ≥ 3 means wiring branches at v.
		if len(adj[v]) >= 3 {
			bifs++
		}
	}
	if len(adj[in.Root]) >= 2 {
		bifs++
	}
	return bifs
}

// Figure2 illustrates the buffering trade-off behind the flexible λ
// model (paper Figure 2): an optimally spaced repeater chain with a
// branch in the middle; the two variants shift the penalty split between
// the branches (λ = 0.5/0.5 vs η/1−η). Returns one SVG.
func Figure2(eta float64) string {
	tech := dly.DefaultTech(8)
	w := tech.Layers[4].Wires[0]
	spacing := dly.OptimalSpacing(w.RPerUM, w.CPerUM, tech.Buf)
	dbif := tech.Dbif()

	s := viz.New(640, 220)
	draw := func(y float64, lx, ly float64, label string) {
		// Trunk with repeaters every `spacing` (scaled to pixels).
		px := func(um float64) float64 { return 40 + um*560/(8*spacing) }
		s.Line(px(0), y, px(8*spacing), y, "#333", 2)
		for i := 0; i <= 8; i++ {
			s.RectXY(px(float64(i)*spacing)-4, y-4, 8, 8, "#d62728", "none", 1)
		}
		// Branch at the midpoint.
		bx := px(4 * spacing)
		s.Line(bx, y, bx, y+34, "#333", 2)
		s.Circle(bx, y+40, 5, "black", "none")
		s.Text(px(0), y-12, 11, label)
		s.Text(bx+8, y+24, 10, fmt.Sprintf("λ·dbif = %.2f ps / %.2f ps", lx*dbif, ly*dbif))
	}
	draw(60, 0.5, 0.5, fmt.Sprintf("uniform split (η=0.5): both branches take dbif/2 of %.2f ps", dbif))
	draw(150, eta, 1-eta, fmt.Sprintf("flexible split (η=%.2g): critical branch shielded", eta))
	return s.String()
}

// Figure3 reproduces the algorithm walkthrough: five sinks with varying
// delay weights, one frame per iteration showing search disks, the new
// connection and the chosen Steiner vertex. Returns the frames and the
// trace events (tests inspect the events).
func Figure3() ([]string, []core.TraceEvent, error) {
	g, c := figGraph(24, 24, 4)
	rng := rand.New(rand.NewPCG(3, 14))
	_ = rng
	in := &nets.Instance{
		G: g, C: c,
		Root: g.At(3, 20, 0),
		DBif: 10, Eta: 0.25,
		Win:  g.FullWindow(),
		Seed: 5,
	}
	// Positions and weights mirroring the figure: a tight pair lower
	// left, a heavy sink center, two sinks to the right.
	in.Sinks = []nets.Sink{
		{V: g.At(6, 6, 0), W: 0.02},
		{V: g.At(9, 4, 0), W: 0.05},
		{V: g.At(12, 12, 0), W: 0.30},
		{V: g.At(19, 7, 0), W: 0.08},
		{V: g.At(20, 16, 0), W: 0.02},
	}
	var events []core.TraceEvent
	_, err := core.SolveTraced(in, core.DefaultOptions(), func(ev core.TraceEvent) {
		events = append(events, ev)
	})
	if err != nil {
		return nil, nil, err
	}
	return viz.RenderTraceFrames(in, events, 20), events, nil
}
