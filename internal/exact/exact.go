// Package exact solves small cost-distance Steiner tree instances to
// optimality with a Dreyfus–Wagner-style dynamic program extended by
// delay weights and bifurcation penalties. It exists to validate the
// approximation quality of the fast algorithms: the paper's Tables I/II
// compare against the best of four heuristics, while tests in this
// repository additionally compare against the true optimum on instances
// the DP can afford (≲ 8 sinks over windows of a few thousand vertices).
//
// DP states: D[M][x] = minimum cost of an embedded tree that connects
// all sinks in mask M to vertex x, where every edge above a sub-tree
// carrying sink set A costs c(e) + w(A)·d(e), and joining two disjoint
// masks at a vertex pays β(w(A), w(B)) (eq. (2)). The recurrence
// alternates subset merges and Dijkstra relaxations, exactly as in
// Dreyfus–Wagner. The final answer is D[full][root].
package exact

import (
	"fmt"
	"math"

	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
)

// maxSinks bounds the DP's subset dimension.
const maxSinks = 12

// Result carries the DP's certified bounds. The DP value LowerBound is
// a true lower bound on the optimum: any tree can be simulated by the
// DP. The reconstructed tree is a feasible solution whose evaluated
// objective is Total (an upper bound). When dbif = 0 the two always
// coincide, so the DP is exact; with dbif > 0 the DP may price two
// disjoint-mask subtrees that share edges without the bifurcation
// penalties their union incurs, leaving a (rare, small) gap.
type Result struct {
	// LowerBound is D[full][root], a certified lower bound on OPT.
	LowerBound float64
	// Total is the evaluated objective of Tree (a feasible upper bound).
	Total float64
	Tree  *nets.RTree
	// Goal carries the goal-oriented solver's search statistics; it is
	// zero for results produced by the DP.
	Goal GoalStats
}

type traceKind uint8

const (
	traceNone  traceKind = iota // base: the sink vertex itself
	traceMerge                  // split into two masks at this vertex
	traceEdge                   // arrived via an arc from pred
)

type trace struct {
	kind  traceKind
	maskA uint32 // for merge
	pred  int32  // window index, for edge
	arc   grid.Arc
}

// Solve returns an optimal cost-distance Steiner tree for the instance.
// It errors out when the instance exceeds the DP's size limits.
func Solve(in *nets.Instance) (*Result, error) {
	k := len(in.Sinks)
	if k > maxSinks {
		return nil, fmt.Errorf("exact: %d sinks exceeds limit %d", k, maxSinks)
	}
	win := in.G.NewWindow(in.Win)
	size := win.Size()
	if int64(size)*(1<<uint(k)) > 64<<20 {
		return nil, fmt.Errorf("exact: state space too large (%d vertices × 2^%d)", size, k)
	}
	if k == 0 {
		return &Result{Tree: &nets.RTree{}}, nil
	}

	full := uint32(1<<uint(k)) - 1
	maskW := make([]float64, full+1)
	for m := uint32(1); m <= full; m++ {
		lsb := m & (-m)
		maskW[m] = maskW[m^lsb] + in.Sinks[bitIdx(lsb)].W
	}

	D := make([][]float64, full+1)
	T := make([][]trace, full+1)
	for m := uint32(1); m <= full; m++ {
		D[m] = make([]float64, size)
		T[m] = make([]trace, size)
		for i := range D[m] {
			D[m][i] = math.Inf(1)
		}
	}

	// Base cases: singletons.
	for s := 0; s < k; s++ {
		idx := win.Index(in.Sinks[s].V)
		if idx < 0 {
			return nil, fmt.Errorf("exact: sink %d outside window", s)
		}
		m := uint32(1) << uint(s)
		D[m][idx] = 0
		dijkstra(in, win, D[m], T[m], maskW[m])
	}

	// Increasing masks: merge then relax.
	for m := uint32(1); m <= full; m++ {
		if m&(m-1) == 0 {
			continue // singleton, done above
		}
		dm := D[m]
		tm := T[m]
		// Subset merge: iterate proper submasks a with a < m^a to halve work.
		for a := (m - 1) & m; a > 0; a = (a - 1) & m {
			b := m ^ a
			if a > b {
				continue
			}
			beta := nets.Beta(in.DBif, in.Eta, maskW[a], maskW[b])
			da, db := D[a], D[b]
			for x := int32(0); x < size; x++ {
				if v := da[x] + db[x] + beta; v < dm[x] {
					dm[x] = v
					tm[x] = trace{kind: traceMerge, maskA: a}
				}
			}
		}
		dijkstra(in, win, dm, tm, maskW[m])
	}

	rootIdx := win.Index(in.Root)
	if rootIdx < 0 {
		return nil, fmt.Errorf("exact: root outside window")
	}
	total := D[full][rootIdx]
	if math.IsInf(total, 1) {
		return nil, fmt.Errorf("exact: root unreachable")
	}

	// Reconstruct.
	var steps []nets.Step
	type frame struct {
		mask uint32
		x    int32
	}
	stack := []frame{{full, rootIdx}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		tr := T[f.mask][f.x]
		switch tr.kind {
		case traceNone:
			// Singleton at its own sink vertex: done.
		case traceMerge:
			stack = append(stack, frame{tr.maskA, f.x}, frame{f.mask ^ tr.maskA, f.x})
		case traceEdge:
			steps = append(steps, nets.Step{From: win.Vertex(tr.pred), Arc: tr.arc})
			stack = append(stack, frame{f.mask, tr.pred})
		}
	}
	rt, err := nets.PruneToTree(in, steps)
	if err != nil {
		return nil, err
	}
	ev, err := nets.Evaluate(in, rt)
	if err != nil {
		return nil, fmt.Errorf("exact: reconstructed tree invalid: %w", err)
	}
	return &Result{LowerBound: total, Total: ev.Total, Tree: rt}, nil
}

func bitIdx(lsb uint32) int {
	i := 0
	for lsb > 1 {
		lsb >>= 1
		i++
	}
	return i
}

// dijkstra relaxes dist over the window under metric c + w·d, updating
// traces for vertices improved via edges.
func dijkstra(in *nets.Instance, win grid.Window, dist []float64, tr []trace, w float64) {
	var h heaps.Lazy[int32]
	for x := int32(0); x < int32(len(dist)); x++ {
		if !math.IsInf(dist[x], 1) {
			h.Push(dist[x], x)
		}
	}
	costs := in.C
	g := in.G
	for h.Len() > 0 {
		k, x := h.Pop()
		if k > dist[x] {
			continue
		}
		v := win.Vertex(x)
		g.Arcs(v, win.R, func(a grid.Arc) bool {
			y := win.Index(a.To)
			if y < 0 {
				return true
			}
			nd := k + costs.ArcCost(a) + w*costs.ArcDelay(a)
			if nd < dist[y] {
				dist[y] = nd
				tr[y] = trace{kind: traceEdge, pred: x, arc: a}
				h.Push(nd, y)
			}
			return true
		})
	}
}
