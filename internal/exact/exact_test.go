package exact

import (
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/dly"
	"costdist/internal/embed"
	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
	"costdist/internal/rsmt"
)

func newGraph(nx, ny int32, nLayers int) (*grid.Graph, *grid.Costs) {
	tech := dly.DefaultTech(nLayers)
	g := grid.New(nx, ny, tech.BuildLayers(), tech.GCellUM)
	return g, grid.NewCosts(g)
}

func dijkstraDist(g *grid.Graph, c *grid.Costs, w float64, from, to grid.V) float64 {
	dist := map[grid.V]float64{from: 0}
	var h heaps.Lazy[grid.V]
	h.Push(0, from)
	for h.Len() > 0 {
		k, v := h.Pop()
		if k > dist[v] {
			continue
		}
		if v == to {
			return k
		}
		g.Arcs(v, g.FullWindow(), func(a grid.Arc) bool {
			nd := k + c.ArcCost(a) + w*c.ArcDelay(a)
			if d, ok := dist[a.To]; !ok || nd < d {
				dist[a.To] = nd
				h.Push(nd, a.To)
			}
			return true
		})
	}
	return math.Inf(1)
}

func TestSingleSinkEqualsDijkstra(t *testing.T) {
	g, c := newGraph(8, 8, 3)
	rng := rand.New(rand.NewPCG(1, 9))
	for it := 0; it < 15; it++ {
		in := &nets.Instance{
			G: g, C: c,
			Root:  g.At(rng.Int32N(8), rng.Int32N(8), 0),
			Sinks: []nets.Sink{{V: g.At(rng.Int32N(8), rng.Int32N(8), 0), W: rng.Float64() * 2}},
			Win:   g.FullWindow(),
		}
		res, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		want := dijkstraDist(g, c, in.Sinks[0].W, in.Sinks[0].V, in.Root)
		if math.Abs(res.Total-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("exact %v want %v", res.Total, want)
		}
		if math.Abs(res.LowerBound-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("lower bound %v want %v", res.LowerBound, want)
		}
	}
}

func TestBoundsConsistent(t *testing.T) {
	g, c := newGraph(7, 7, 3)
	rng := rand.New(rand.NewPCG(21, 2))
	gaps := 0
	for it := 0; it < 30; it++ {
		k := 2 + rng.IntN(3)
		sinks := make([]nets.Sink, k)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(7), rng.Int32N(7), 0), W: 0.2 + rng.Float64()}
		}
		in := &nets.Instance{G: g, C: c, Root: g.At(rng.Int32N(7), rng.Int32N(7), 0),
			Sinks: sinks, DBif: rng.Float64() * 20, Eta: 0.25, Win: g.FullWindow()}
		res, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := nets.Evaluate(in, res.Tree)
		if err != nil {
			t.Fatalf("exact tree invalid: %v", err)
		}
		if math.Abs(ev.Total-res.Total) > 1e-9*math.Max(1, res.Total) {
			t.Fatalf("Total %v is not the evaluated objective %v", res.Total, ev.Total)
		}
		if res.LowerBound > res.Total+1e-6*math.Max(1, res.Total) {
			t.Fatalf("lower bound %v exceeds feasible total %v", res.LowerBound, res.Total)
		}
		if res.Total > res.LowerBound+1e-9 {
			gaps++
		}
	}
	if gaps > 10 {
		t.Fatalf("bound gap on %d/30 instances — DP suspiciously loose", gaps)
	}
}

func TestExactWithZeroDbifIsTight(t *testing.T) {
	// With dbif = 0 shared edges cannot hide penalties, so the DP value
	// must be achieved exactly by the reconstructed tree.
	g, c := newGraph(7, 7, 3)
	rng := rand.New(rand.NewPCG(4, 4))
	for it := 0; it < 25; it++ {
		k := 2 + rng.IntN(4)
		sinks := make([]nets.Sink, k)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(7), rng.Int32N(7), 0), W: 0.2 + rng.Float64()}
		}
		in := &nets.Instance{G: g, C: c, Root: g.At(rng.Int32N(7), rng.Int32N(7), 0),
			Sinks: sinks, DBif: 0, Eta: 0.25, Win: g.FullWindow()}
		res, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Total-res.LowerBound) > 1e-6*math.Max(1, res.LowerBound) {
			t.Fatalf("dbif=0 gap: total %v vs bound %v", res.Total, res.LowerBound)
		}
	}
}

func TestCollinearHandComputed(t *testing.T) {
	g, c := newGraph(6, 2, 4) // layer 0 has a single wire type for 4 layers
	d0 := g.Layers[0].Wires[0].DelayPerGCell
	in := &nets.Instance{
		G: g, C: c, Root: g.At(0, 0, 0),
		Sinks: []nets.Sink{
			{V: g.At(1, 0, 0), W: 0.001},
			{V: g.At(3, 0, 0), W: 0.001},
		},
		Win: g.FullWindow(),
	}
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 + 0.001*d0 + 0.001*3*d0
	if math.Abs(res.Total-want) > 1e-9 {
		t.Fatalf("collinear optimum %v want %v", res.Total, want)
	}
}

func TestExactNeverWorseThanEmbeddedRSMT(t *testing.T) {
	g, c := newGraph(9, 9, 3)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := range c.Mult {
		if rng.IntN(5) == 0 {
			c.Mult[i] = 1 + 5*rng.Float32()
		}
	}
	for it := 0; it < 15; it++ {
		k := 2 + rng.IntN(4)
		sinks := make([]nets.Sink, k)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(9), rng.Int32N(9), 0), W: rng.Float64() * 2}
		}
		in := &nets.Instance{G: g, C: c, Root: g.At(rng.Int32N(9), rng.Int32N(9), 0),
			Sinks: sinks, DBif: rng.Float64() * 10, Eta: 0.25, Win: g.FullWindow()}
		res, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		er, err := embed.Embed(in, rsmt.Build(in.TermPts()))
		if err != nil {
			t.Fatal(err)
		}
		ev, err := nets.Evaluate(in, er.Tree)
		if err != nil {
			t.Fatal(err)
		}
		if res.LowerBound > ev.Total+1e-6*math.Max(1, ev.Total) {
			t.Fatalf("lower bound %v above heuristic %v", res.LowerBound, ev.Total)
		}
		if res.Total > ev.Total+1e-6*math.Max(1, ev.Total) {
			// The DP's feasible tree should also beat or match a plain
			// embedded RSMT: it optimizes the same objective globally.
			t.Fatalf("exact tree %v worse than heuristic %v", res.Total, ev.Total)
		}
	}
}

func TestSizeLimits(t *testing.T) {
	g, c := newGraph(6, 6, 2)
	sinks := make([]nets.Sink, maxSinks+1)
	for i := range sinks {
		sinks[i] = nets.Sink{V: g.At(int32(i%6), int32(i/6), 0), W: 1}
	}
	in := &nets.Instance{G: g, C: c, Root: g.At(0, 0, 0), Sinks: sinks, Win: g.FullWindow()}
	if _, err := Solve(in); err == nil {
		t.Fatal("expected sink-limit error")
	}
}

func TestZeroSinks(t *testing.T) {
	g, c := newGraph(4, 4, 2)
	in := &nets.Instance{G: g, C: c, Root: g.At(0, 0, 0), Win: g.FullWindow()}
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 || len(res.Tree.Steps) != 0 {
		t.Fatalf("zero-sink: %+v", res)
	}
}
