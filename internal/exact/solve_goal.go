package exact

import (
	"context"
	"errors"
	"fmt"
	"math"

	"costdist/internal/embed"
	"costdist/internal/future"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
	"costdist/internal/rsmt"
)

// This file is the goal-oriented exact solver — the "Dijkstra meets
// Steiner" label-setting algorithm of Hougardy, Silvanus and Vygen
// (arXiv 1406.0492) adapted to cost-distance objectives. It computes
// the same value as the Dreyfus–Wagner DP in exact.Solve, but instead
// of filling every (mask, vertex) table entry in mask order it explores
// states best-first and prunes:
//
//   - labels are DP states (I, v) with value D[I][v], kept in a
//     priority queue ordered by D[I][v] + lb(I, v), where lb is the
//     admissible mask-aware completion bound of future.MaskEstimator
//     (goal orientation);
//   - the incumbent upper bound — the caller's heuristic objective
//     (the oracle adapter seeds the CD tree's) or the embedded-RSMT
//     baseline's — kills every label whose ordering key exceeds it
//     (upper-bound pruning);
//   - the search window is the terminal bounding box expanded by the
//     slack radius ub/minCost − halfPerimeter: no vertex further out
//     can be touched by any solution within the incumbent (bounding-box
//     pruning).
//
// Transitions mirror the DP recurrence: edge relaxations under the
// metric c(e) + w(I)·d(e), and merges of two labels at the same vertex
// paying β(w(I), w(J)). Merges are generated when the later of the two
// labels settles, against every already-settled mask at that vertex —
// together with re-settling on improvement this keeps the search exact
// under any admissible (not necessarily merge-consistent) bound: when
// the goal state (full mask, root) settles, its value is D[full][root].
//
// The solver is deterministic: states improve through strict
// comparisons only and the label queue breaks key ties by label
// creation order, so identical instances produce bit-identical trees
// on every run and thread count.

// GoalLimits bounds the goal-oriented solver's state space and work.
// The limits are deterministic — they count sinks, window vertices and
// settled labels, never wall-clock time — so a budgeted solve either
// certifies the optimum or fails identically on every run.
type GoalLimits struct {
	// MaxSinks gates the subset dimension (≤ 20; default 16).
	MaxSinks int
	// MaxWindowVerts gates the pruned window's vertex count.
	MaxWindowVerts int64
	// MaxLabels is the settled-label budget; exceeding it aborts with
	// ErrLabelBudget. 0 means unbounded.
	MaxLabels int64
	// UpperBound optionally seeds the incumbent with a known feasible
	// objective value — callers with a good heuristic tree (the oracle
	// adapter seeds the CD objective) should always pass it; tighter
	// incumbents prune harder. 0 derives one internally from the
	// embedded-RSMT baseline (exact cannot import core: the core
	// package's own tests cross-check against this package).
	UpperBound float64
}

// maxGoalSinks is the hard subset-dimension limit of the goal solver:
// masks are uint32 and the per-mask bound tables are dense.
const maxGoalSinks = 20

// DefaultGoalLimits returns the standalone (differential-harness)
// configuration: large windows, no label budget.
func DefaultGoalLimits() GoalLimits {
	return GoalLimits{MaxSinks: 16, MaxWindowVerts: 1 << 20}
}

// OracleLimits returns the conservative in-router budget of the
// "exact" oracle tier: small nets only, bounded window, a settled-label
// budget that caps one solve at a few milliseconds. Beyond any limit
// the oracle adapter falls back to the CD heuristic.
func OracleLimits() GoalLimits {
	return GoalLimits{MaxSinks: 8, MaxWindowVerts: 1 << 15, MaxLabels: 200_000}
}

// ErrLabelBudget reports a goal solve that exhausted its deterministic
// settled-label budget before certifying the optimum.
var ErrLabelBudget = errors.New("exact: settled-label budget exhausted")

// GoalStats reports the goal-oriented search's work, for benchmarks
// and budget tuning.
type GoalStats struct {
	// Settled counts labels made permanent (queue pops acted on);
	// Generated counts label records created (including improvements);
	// Pruned counts candidates killed by the incumbent upper bound.
	Settled, Generated, Pruned int64
	// WindowVerts is the vertex count of the pruned search window.
	WindowVerts int64
}

// SolveGoal solves the instance exactly with the goal-oriented
// label-setting algorithm under DefaultGoalLimits. The context is
// checked periodically; cancellation returns ctx.Err() promptly.
func SolveGoal(ctx context.Context, in *nets.Instance) (*Result, error) {
	return SolveGoalLimits(ctx, in, DefaultGoalLimits())
}

// glabel is one label record. Records are immutable once created
// (except the settled flag): improving a state appends a new record,
// so predecessor chains always describe the structure whose value the
// record carries, which keeps reconstruction sound.
type glabel struct {
	mask    uint32
	vert    int32 // window index
	dist    float64
	kind    traceKind
	settled bool
	pred    int32    // label index: edge tail, or merge part A
	pred2   int32    // label index: merge part B
	arc     grid.Arc // for edge labels
}

// goalSearch is the transient state of one solve.
type goalSearch struct {
	in     *nets.Instance
	win    grid.Window
	est    *future.MaskEstimator
	labels []glabel
	state  map[uint64]int32 // (mask, vert) -> current best label index
	queue  heaps.LabelQueue
	// settledMasks[vert] lists masks settled at that vertex at least
	// once — the merge partner sets.
	settledMasks [][]uint32
	ub           float64
	stats        GoalStats
}

func stateKey(mask uint32, vert int32) uint64 {
	return uint64(mask)<<32 | uint64(uint32(vert))
}

// SolveGoalLimits is SolveGoal with explicit limits; zero-valued limit
// fields take the DefaultGoalLimits values. It returns ErrLabelBudget
// (wrapped) when the settled-label budget runs out, and a size error
// when the instance exceeds MaxSinks or MaxWindowVerts — callers with
// a heuristic fallback (the oracle adapter) treat both as "stay on the
// heuristic tier".
func SolveGoalLimits(ctx context.Context, in *nets.Instance, lim GoalLimits) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	def := DefaultGoalLimits()
	if lim.MaxSinks == 0 {
		lim.MaxSinks = def.MaxSinks
	}
	if lim.MaxWindowVerts == 0 {
		lim.MaxWindowVerts = def.MaxWindowVerts
	}
	k := len(in.Sinks)
	if k > lim.MaxSinks || k > maxGoalSinks {
		return nil, fmt.Errorf("exact: %d sinks exceeds goal-solver limit %d", k, min(lim.MaxSinks, maxGoalSinks))
	}
	if k == 0 {
		return &Result{Tree: &nets.RTree{}}, nil
	}

	// Incumbent upper bound: the caller's (the oracle adapter passes the
	// CD objective) or the embedded-RSMT baseline's evaluated tree.
	// Every optimal decomposition's keys stay ≤ OPT ≤ ub, so pruning
	// against it never loses the certificate.
	ub := lim.UpperBound
	if ub == 0 {
		ub = math.Inf(1)
		if er, err := embed.Embed(in, rsmt.Build(in.TermPts())); err == nil {
			if ev, err := nets.Evaluate(in, er.Tree); err == nil {
				ub = ev.Total
			}
		}
	}

	s := &goalSearch{in: in, ub: ub}
	win := in.G.NewWindow(pruneWindow(in, ub))
	size := win.Size()
	if int64(size) > lim.MaxWindowVerts {
		return nil, fmt.Errorf("exact: pruned window has %d vertices, goal-solver limit %d", size, lim.MaxWindowVerts)
	}
	s.win = win
	s.stats.WindowVerts = int64(size)

	sinkPts := make([]geom.Pt, k)
	weights := make([]float64, k)
	for i, sk := range in.Sinks {
		sinkPts[i] = in.G.Pt(sk.V)
		weights[i] = sk.W
	}
	est, err := future.NewMaskEstimator(in.C, in.G.Pt(in.Root), sinkPts, weights)
	if err != nil {
		return nil, err
	}
	s.est = est

	full := uint32(1)<<uint(k) - 1
	rootIdx := win.Index(in.Root)
	if rootIdx < 0 {
		return nil, fmt.Errorf("exact: root outside window")
	}
	s.state = make(map[uint64]int32, 1024)
	s.settledMasks = make([][]uint32, size)

	// Base labels: one singleton per sink.
	for i, sk := range in.Sinks {
		idx := win.Index(sk.V)
		if idx < 0 {
			return nil, fmt.Errorf("exact: sink %d outside window", i)
		}
		s.relax(glabel{mask: uint32(1) << uint(i), vert: idx, kind: traceNone, pred: -1, pred2: -1})
	}

	goal := int32(-1)
	pops := 0
	for s.queue.Len() > 0 {
		if pops&511 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pops++
		_, li := s.queue.Pop()
		l := &s.labels[li]
		if s.state[stateKey(l.mask, l.vert)] != li || l.settled {
			continue // superseded or already processed at this value
		}
		if lim.MaxLabels > 0 && s.stats.Settled >= lim.MaxLabels {
			return nil, fmt.Errorf("%w (%d labels, %d states)", ErrLabelBudget, s.stats.Settled, len(s.state))
		}
		l.settled = true
		s.stats.Settled++
		if l.mask == full && l.vert == rootIdx {
			goal = li
			break
		}
		s.settle(li)
	}
	if goal < 0 {
		return nil, fmt.Errorf("exact: goal state unreachable (disconnected window?)")
	}

	rt, err := s.reconstruct(goal)
	if err != nil {
		return nil, err
	}
	ev, err := nets.Evaluate(in, rt)
	if err != nil {
		return nil, fmt.Errorf("exact: reconstructed tree invalid: %w", err)
	}
	return &Result{LowerBound: s.labels[goal].dist, Total: ev.Total, Tree: rt, Goal: s.stats}, nil
}

// pruneWindow returns the search window: the terminal bounding box
// expanded by the incumbent-derived slack radius, intersected with the
// instance window. Any tree with evaluated total ≤ ub that touches a
// vertex at plane distance d from the terminal bbox pays congestion
// cost ≥ minCost·(halfPerimeter + d) — the tree's edge union is
// connected and spans both the bbox extremes and the vertex — so
// vertices beyond the radius cannot appear in any solution inside the
// incumbent, nor in any DP decomposition of one.
func pruneWindow(in *nets.Instance, ub float64) geom.Rect {
	bbox := geom.BBox(in.TermPts())
	minCost := in.C.MinCostPerGCell()
	if math.IsInf(ub, 1) || minCost <= 0 {
		return bbox.Expand(in.G.NX+in.G.NY, in.G.NX, in.G.NY).Intersect(in.Win)
	}
	slack := ub*(1+1e-9)/minCost - float64(bbox.HalfPerimeter())
	radius := int32(0)
	if slack > 0 {
		if slack > float64(in.G.NX+in.G.NY) {
			radius = in.G.NX + in.G.NY
		} else {
			radius = int32(slack) + 1
		}
	}
	return bbox.Expand(radius, in.G.NX, in.G.NY).Intersect(in.Win)
}

// relax offers a candidate label. It is dropped when the state already
// has an equal-or-better value or when its ordering key exceeds the
// incumbent; otherwise a new record is appended, published as the
// state's current best and pushed with key dist + lb.
func (s *goalSearch) relax(cand glabel) {
	key := stateKey(cand.mask, cand.vert)
	if cur, ok := s.state[key]; ok && s.labels[cur].dist <= cand.dist {
		return
	}
	f := cand.dist + s.est.Est(cand.mask, s.in.G.Pt(s.win.Vertex(cand.vert)))
	if f > s.ub*(1+1e-9)+1e-9 {
		s.stats.Pruned++
		return
	}
	li := int32(len(s.labels))
	s.labels = append(s.labels, cand)
	s.state[key] = li
	s.queue.Push(f, li)
	s.stats.Generated++
}

// settle processes a freshly settled label: merge transitions against
// every already-settled disjoint mask at the vertex, then edge
// relaxations into the window.
func (s *goalSearch) settle(li int32) {
	l := s.labels[li] // copy: s.labels may grow below
	v := s.win.Vertex(l.vert)

	// Merges. Partner values are the states' current bests — possibly
	// better than when the partner settled, which only helps; a partner
	// improved later re-settles and re-merges against this mask.
	masks := s.settledMasks[l.vert]
	already := false
	for _, j := range masks {
		if j == l.mask {
			already = true
			break
		}
	}
	if !already {
		s.settledMasks[l.vert] = append(masks, l.mask)
	}
	for _, j := range s.settledMasks[l.vert] {
		if j&l.mask != 0 {
			continue
		}
		pi := s.state[stateKey(j, l.vert)]
		beta := nets.Beta(s.in.DBif, s.in.Eta, s.est.W(l.mask), s.est.W(j))
		s.relax(glabel{
			mask: l.mask | j, vert: l.vert,
			dist: l.dist + s.labels[pi].dist + beta,
			kind: traceMerge, pred: li, pred2: pi,
		})
	}

	// Edge relaxations under c(e) + w(mask)·d(e).
	w := s.est.W(l.mask)
	costs := s.in.C
	s.in.G.Arcs(v, s.win.R, func(a grid.Arc) bool {
		to := s.win.Index(a.To)
		if to < 0 {
			return true
		}
		s.relax(glabel{
			mask: l.mask, vert: to,
			dist: l.dist + costs.ArcCost(a) + w*costs.ArcDelay(a),
			kind: traceEdge, pred: li, pred2: -1, arc: a,
		})
		return true
	})
}

// reconstruct walks the label DAG from the goal record and funnels the
// collected steps through PruneToTree, exactly like the DP.
func (s *goalSearch) reconstruct(goal int32) (*nets.RTree, error) {
	var steps []nets.Step
	stack := []int32{goal}
	for len(stack) > 0 {
		li := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l := &s.labels[li]
		switch l.kind {
		case traceNone:
			// Singleton seed at its sink vertex.
		case traceMerge:
			stack = append(stack, l.pred, l.pred2)
		case traceEdge:
			steps = append(steps, nets.Step{From: s.win.Vertex(s.labels[l.pred].vert), Arc: l.arc})
			stack = append(stack, l.pred)
		}
	}
	return nets.PruneToTree(s.in, steps)
}
