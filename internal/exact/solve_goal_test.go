package exact

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/nets"
)

// randInstance builds a seeded random instance on an nx×nx grid with k
// sinks on layer 0.
func randInstance(rng *rand.Rand, nx int32, k int, dbif float64) *nets.Instance {
	g, c := newGraph(nx, nx, 3)
	sinks := make([]nets.Sink, k)
	for i := range sinks {
		sinks[i] = nets.Sink{V: g.At(rng.Int32N(nx), rng.Int32N(nx), 0), W: 0.1 + rng.Float64()}
	}
	return &nets.Instance{G: g, C: c, Root: g.At(rng.Int32N(nx), rng.Int32N(nx), 0),
		Sinks: sinks, DBif: dbif, Eta: 0.25, Win: g.FullWindow()}
}

// TestGoalMatchesDP is the core certificate: the goal-oriented solver's
// lower bound equals the DP's on the same instance, and its tree is at
// least as good as the DP's reconstruction.
func TestGoalMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for it := 0; it < 40; it++ {
		k := 1 + rng.IntN(5)
		dbif := 0.0
		if it%2 == 1 {
			dbif = rng.Float64() * 20
		}
		in := randInstance(rng, 7, k, dbif)
		dp, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := SolveGoal(context.Background(), in)
		if err != nil {
			t.Fatalf("it %d: SolveGoal: %v", it, err)
		}
		if math.Abs(gr.LowerBound-dp.LowerBound) > 1e-7*math.Max(1, dp.LowerBound) {
			t.Fatalf("it %d: goal LB %v != DP LB %v", it, gr.LowerBound, dp.LowerBound)
		}
		if gr.Total > dp.Total+1e-7*math.Max(1, dp.Total) {
			t.Fatalf("it %d: goal tree %v worse than DP tree %v", it, gr.Total, dp.Total)
		}
		if gr.LowerBound > gr.Total+1e-7*math.Max(1, gr.Total) {
			t.Fatalf("it %d: goal LB %v exceeds its own tree %v", it, gr.LowerBound, gr.Total)
		}
		if ev, err := nets.Evaluate(in, gr.Tree); err != nil {
			t.Fatalf("it %d: goal tree invalid: %v", it, err)
		} else if math.Abs(ev.Total-gr.Total) > 1e-9*math.Max(1, gr.Total) {
			t.Fatalf("it %d: Total %v is not the evaluated objective %v", it, gr.Total, ev.Total)
		}
	}
}

// TestGoalDeterministic solves the same instance repeatedly and demands
// bit-identical trees and bounds.
func TestGoalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 33))
	in := randInstance(rng, 9, 6, 12.5)
	ref, err := SolveGoal(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		r, err := SolveGoal(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if r.LowerBound != ref.LowerBound || r.Total != ref.Total {
			t.Fatalf("run %d: bounds (%v, %v) != (%v, %v)",
				run, r.LowerBound, r.Total, ref.LowerBound, ref.Total)
		}
		if len(r.Tree.Steps) != len(ref.Tree.Steps) {
			t.Fatalf("run %d: %d steps != %d", run, len(r.Tree.Steps), len(ref.Tree.Steps))
		}
		for i, s := range r.Tree.Steps {
			if s != ref.Tree.Steps[i] {
				t.Fatalf("run %d: step %d differs: %+v vs %+v", run, i, s, ref.Tree.Steps[i])
			}
		}
	}
}

// TestGoalUpperBoundSeedStaysExact verifies that seeding the incumbent
// with the exact optimum (the tightest legal value) does not prune away
// the certificate.
func TestGoalUpperBoundSeedStaysExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 5))
	for it := 0; it < 10; it++ {
		in := randInstance(rng, 7, 1+rng.IntN(4), 0)
		dp, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := SolveGoalLimits(context.Background(), in, GoalLimits{UpperBound: dp.Total})
		if err != nil {
			t.Fatalf("it %d: %v", it, err)
		}
		if math.Abs(gr.LowerBound-dp.LowerBound) > 1e-7*math.Max(1, dp.LowerBound) {
			t.Fatalf("it %d: seeded LB %v != DP LB %v", it, gr.LowerBound, dp.LowerBound)
		}
	}
}

func TestGoalLimits(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	in := randInstance(rng, 9, 6, 0)
	if _, err := SolveGoalLimits(context.Background(), in, GoalLimits{MaxSinks: 4}); err == nil {
		t.Fatal("expected sink-limit error")
	}
	if _, err := SolveGoalLimits(context.Background(), in, GoalLimits{MaxWindowVerts: 8}); err == nil {
		t.Fatal("expected window-limit error")
	}
	_, err := SolveGoalLimits(context.Background(), in, GoalLimits{MaxLabels: 3})
	if !errors.Is(err, ErrLabelBudget) {
		t.Fatalf("expected ErrLabelBudget, got %v", err)
	}
}

func TestGoalZeroSinks(t *testing.T) {
	g, c := newGraph(4, 4, 2)
	in := &nets.Instance{G: g, C: c, Root: g.At(0, 0, 0), Win: g.FullWindow()}
	res, err := SolveGoal(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 || len(res.Tree.Steps) != 0 {
		t.Fatalf("zero-sink: %+v", res)
	}
}

func TestGoalCancellation(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 8))
	in := randInstance(rng, 12, 8, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveGoal(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// TestGoalStats sanity-checks that the search reports its work.
func TestGoalStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 3))
	in := randInstance(rng, 8, 4, 0)
	r, err := SolveGoal(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Goal.Settled <= 0 || r.Goal.Generated <= 0 || r.Goal.WindowVerts <= 0 {
		t.Fatalf("empty stats: %+v", r.Goal)
	}
}
