// Package embed maps a Steiner topology into the 3D global routing
// graph, minimizing the cost-distance objective (1). This is the
// "Dijkstra-style embedding" of ref [13] that the paper's three baseline
// algorithms (L1, SL, PD) use after constructing their topology in the
// plane (§IV-A): terminals are pinned to their graph vertices, Steiner
// vertices float freely, and every topology edge above a subtree with
// total sink weight W is routed under the metric c(e) + W·d(e), which is
// exactly that edge's contribution to (1). Bifurcation penalties are
// constants per branching (λ per eq. (2)) and are added to the objective
// estimate.
//
// The embedding is a two-pass dynamic program over a dense window:
// bottom-up, each topology node v gets a table D_v(x) = cost of
// embedding v's subtree with v at graph vertex x (children tables are
// spread toward the parent by a multi-source Dijkstra); top-down, the
// optimal vertex choices and paths are reconstructed by re-running each
// spread with parent tracking. Tables are float32 to halve memory;
// spreads run at most twice, so no per-edge parent arrays are retained.
package embed

import (
	"fmt"
	"math"

	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
)

var inf32 = float32(math.Inf(1))

// Result carries the embedded tree and the DP's objective estimate
// (congestion cost + weighted delays + bifurcation penalty constants).
// The estimate can differ from nets.Evaluate when reconstructed paths
// overlap and the union is pruned back to a tree (pruning only removes
// cost), or when the embedded tree's incidental branch structure shifts
// λ assignments.
type Result struct {
	Tree     *nets.RTree
	Estimate float64
}

// Embed embeds the topology into in.G within in.Win. The topology is
// canonicalized first, so any valid PlaneTree is accepted.
func Embed(in *nets.Instance, tree *nets.PlaneTree) (*Result, error) {
	sinkW := make([]float64, len(in.Sinks))
	for i, s := range in.Sinks {
		sinkW[i] = s.W
	}
	ct := tree.Canonicalize(sinkW, in.DBif, in.Eta)
	if err := ct.Validate(len(in.Sinks)); err != nil {
		return nil, fmt.Errorf("embed: %w", err)
	}
	kids := ct.Children()
	if len(kids[0]) == 0 {
		return &Result{Tree: &nets.RTree{}}, nil
	}

	win := in.G.NewWindow(in.Win)
	e := &embedder{in: in, ct: ct, kids: kids, win: win, size: win.Size()}
	e.subW = make([]float64, len(ct.Nodes))
	e.computeSubW(0)
	e.acc = make([][]float32, len(ct.Nodes))
	e.dist = make([]float64, e.size)
	e.pred = make([]int32, e.size)
	e.parc = make([]grid.Arc, e.size)
	e.touched = make([]uint32, e.size)
	e.settled = make([]uint32, e.size)

	rootIdx := win.Index(in.Root)
	if rootIdx < 0 {
		return nil, fmt.Errorf("embed: root outside window")
	}

	// Bottom-up tables.
	penalty := 0.0
	var up func(v int32) error
	up = func(v int32) error {
		for _, c := range kids[v] {
			if err := up(c); err != nil {
				return err
			}
		}
		p, err := e.accumulate(v)
		penalty += p
		return err
	}
	top := kids[0][0]
	if err := up(top); err != nil {
		return nil, err
	}

	// Top edge: spread the root's single child toward the root vertex.
	e.spread(top, rootIdx)
	if e.settled[rootIdx] != e.epoch {
		return nil, fmt.Errorf("embed: root unreachable in window")
	}
	estimate := e.dist[rootIdx] + penalty

	// Top-down reconstruction. The spread of node v must be live in the
	// workspace when tracing v; children are re-spread on demand.
	var steps []nets.Step
	var down func(v, atIdx int32) error
	down = func(v, atIdx int32) error {
		cur := atIdx
		for e.pred[cur] >= 0 {
			p := e.pred[cur]
			steps = append(steps, nets.Step{From: win.Vertex(p), Arc: e.parc[cur]})
			cur = p
		}
		for _, c := range kids[v] {
			e.spread(c, cur)
			if e.settled[cur] != e.epoch {
				return fmt.Errorf("embed: reconstruction target unreachable")
			}
			if err := down(c, cur); err != nil {
				return err
			}
		}
		return nil
	}
	if err := down(top, rootIdx); err != nil {
		return nil, err
	}

	rt, err := nets.PruneToTree(in, steps)
	if err != nil {
		return nil, err
	}
	return &Result{Tree: rt, Estimate: estimate}, nil
}

type embedder struct {
	in   *nets.Instance
	ct   *nets.PlaneTree
	kids [][]int32
	win  grid.Window
	size int32
	subW []float64

	// acc[v] is D_v: min subtree cost with node v embedded at each
	// window vertex. Kept for the whole run (float32) because the
	// top-down pass re-seeds spreads from it.
	acc [][]float32

	// Dijkstra workspace, epoch-stamped to avoid O(window) clears.
	dist    []float64
	pred    []int32
	parc    []grid.Arc
	touched []uint32
	settled []uint32
	epoch   uint32
	heap    heaps.Lazy[int32]
}

func (e *embedder) computeSubW(v int32) float64 {
	w := 0.0
	if s := e.ct.Nodes[v].SinkIdx; s >= 0 {
		w = e.in.Sinks[s].W
	}
	for _, c := range e.kids[v] {
		w += e.computeSubW(c)
	}
	e.subW[v] = w
	return w
}

// accumulate builds acc[v] and returns the bifurcation penalty constant
// incurred at v (β of the two child subtree weights for binary nodes).
func (e *embedder) accumulate(v int32) (float64, error) {
	n := e.ct.Nodes[v]
	tbl := make([]float32, e.size)
	if n.SinkIdx >= 0 {
		for i := range tbl {
			tbl[i] = inf32
		}
		idx := e.win.Index(e.in.Sinks[n.SinkIdx].V)
		if idx < 0 {
			return 0, fmt.Errorf("embed: sink %d outside window", n.SinkIdx)
		}
		tbl[idx] = 0
		e.acc[v] = tbl
		return 0, nil
	}
	ch := e.kids[v]
	for i, c := range ch {
		e.spread(c, -1)
		if i == 0 {
			for x := int32(0); x < e.size; x++ {
				if e.settled[x] == e.epoch {
					tbl[x] = float32(e.dist[x])
				} else {
					tbl[x] = inf32
				}
			}
		} else {
			for x := int32(0); x < e.size; x++ {
				if e.settled[x] == e.epoch && tbl[x] < inf32 {
					tbl[x] += float32(e.dist[x])
				} else {
					tbl[x] = inf32
				}
			}
		}
	}
	e.acc[v] = tbl
	pen := 0.0
	if len(ch) == 2 {
		pen = nets.Beta(e.in.DBif, e.in.Eta, e.subW[ch[0]], e.subW[ch[1]])
	}
	return pen, nil
}

// spread runs a multi-source Dijkstra seeded with acc[c] under the
// metric cost + subW[c]·delay, filling the workspace. If target ≥ 0 the
// search stops as soon as that window index settles; with target -1 it
// exhausts the window (needed when building parent tables).
func (e *embedder) spread(c, target int32) {
	w := e.subW[c]
	e.epoch++
	e.heap.Reset()
	seeds := e.acc[c]
	costs := e.in.C
	g := e.in.G
	for x := int32(0); x < e.size; x++ {
		if seeds[x] < inf32 {
			e.dist[x] = float64(seeds[x])
			e.pred[x] = -1
			e.touched[x] = e.epoch
			e.heap.Push(e.dist[x], x)
		}
	}
	for e.heap.Len() > 0 {
		k, x := e.heap.Pop()
		if e.settled[x] == e.epoch || k > e.dist[x] {
			continue
		}
		e.settled[x] = e.epoch
		if x == target {
			return
		}
		v := e.win.Vertex(x)
		g.Arcs(v, e.win.R, func(a grid.Arc) bool {
			y := e.win.Index(a.To)
			if y < 0 || e.settled[y] == e.epoch {
				return true
			}
			nd := k + costs.ArcCost(a) + w*costs.ArcDelay(a)
			if e.touched[y] != e.epoch || nd < e.dist[y] {
				e.dist[y] = nd
				e.pred[y] = x
				e.parc[y] = a
				e.touched[y] = e.epoch
				e.heap.Push(nd, y)
			}
			return true
		})
	}
}
