package embed

import (
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/dly"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/heaps"
	"costdist/internal/nets"
	"costdist/internal/rsmt"
)

func testInstance(nx, ny int32, nLayers int, sinks []nets.Sink, root grid.V, g *grid.Graph) *nets.Instance {
	in := &nets.Instance{
		G: g, C: grid.NewCosts(g), Root: root, Sinks: sinks,
		DBif: 0, Eta: 0.25,
	}
	in.Win = g.FullWindow()
	return in
}

func newGraph(nx, ny int32, nLayers int) *grid.Graph {
	tech := dly.DefaultTech(nLayers)
	return grid.New(nx, ny, tech.BuildLayers(), tech.GCellUM)
}

// dijkstra computes the exact shortest c+w·d distance between two
// vertices, independently of the embed machinery.
func dijkstra(g *grid.Graph, c *grid.Costs, w float64, from, to grid.V) float64 {
	dist := map[grid.V]float64{from: 0}
	done := map[grid.V]bool{}
	var h heaps.Lazy[grid.V]
	h.Push(0, from)
	for h.Len() > 0 {
		k, v := h.Pop()
		if done[v] {
			continue
		}
		done[v] = true
		if v == to {
			return k
		}
		g.Arcs(v, g.FullWindow(), func(a grid.Arc) bool {
			nd := k + c.ArcCost(a) + w*c.ArcDelay(a)
			if d, ok := dist[a.To]; !ok || nd < d {
				dist[a.To] = nd
				h.Push(nd, a.To)
			}
			return true
		})
	}
	return math.Inf(1)
}

func TestSingleSinkMatchesShortestPath(t *testing.T) {
	g := newGraph(12, 12, 4)
	rng := rand.New(rand.NewPCG(5, 8))
	for it := 0; it < 20; it++ {
		root := g.At(rng.Int32N(12), rng.Int32N(12), 0)
		sink := g.At(rng.Int32N(12), rng.Int32N(12), 0)
		if root == sink {
			continue
		}
		w := rng.Float64() * 3
		in := testInstance(12, 12, 4, []nets.Sink{{V: sink, W: w}}, root, g)
		topo := rsmt.Build(in.TermPts())
		res, err := Embed(in, topo)
		if err != nil {
			t.Fatal(err)
		}
		want := dijkstra(g, in.C, w, sink, root)
		if math.Abs(res.Estimate-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("estimate %v want %v", res.Estimate, want)
		}
		ev, err := nets.Evaluate(in, res.Tree)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.Total-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("evaluated %v want %v", ev.Total, want)
		}
	}
}

func TestEvaluateMatchesEstimateOnTrees(t *testing.T) {
	// When reconstructed paths don't overlap, Evaluate should reproduce
	// the DP estimate (dbif=0 so λ assignment can't shift).
	g := newGraph(16, 16, 4)
	rng := rand.New(rand.NewPCG(9, 1))
	agree := 0
	for it := 0; it < 30; it++ {
		n := 2 + rng.IntN(5)
		sinks := make([]nets.Sink, n)
		for i := range sinks {
			sinks[i] = nets.Sink{V: g.At(rng.Int32N(16), rng.Int32N(16), 0), W: rng.Float64() * 2}
		}
		in := testInstance(16, 16, 4, sinks, g.At(rng.Int32N(16), rng.Int32N(16), 0), g)
		topo := rsmt.Build(in.TermPts())
		res, err := Embed(in, topo)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := nets.Evaluate(in, res.Tree)
		if err != nil {
			t.Fatal(err)
		}
		// Pruning can only reduce cost below the estimate.
		if ev.Total > res.Estimate+1e-6*math.Max(1, res.Estimate) {
			t.Fatalf("evaluated %v exceeds estimate %v", ev.Total, res.Estimate)
		}
		if math.Abs(ev.Total-res.Estimate) < 1e-6*math.Max(1, res.Estimate) {
			agree++
		}
	}
	if agree < 15 {
		t.Fatalf("estimate agreed on only %d/30 instances — suspicious DP", agree)
	}
}

func TestEmbedPrefersFastLayersForCriticalNets(t *testing.T) {
	// With a heavy delay weight the embedding should climb to fast upper
	// layers; with weight 0 it should stay low (vias cost, no benefit).
	g := newGraph(24, 4, 8)
	root := g.At(0, 0, 0)
	sink := g.At(23, 0, 0)
	topoPts := []nets.Sink{{V: sink, W: 0}}
	in := testInstance(24, 4, 8, topoPts, root, g)
	topo := rsmt.Build(in.TermPts())
	cheap, err := Embed(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	in2 := testInstance(24, 4, 8, []nets.Sink{{V: sink, W: 50}}, root, g)
	fast, err := Embed(in2, topo)
	if err != nil {
		t.Fatal(err)
	}
	maxLayer := func(tr *nets.RTree) int32 {
		var m int32
		for _, st := range tr.Steps {
			_, _, l := g.XYL(st.Arc.To)
			if l > m {
				m = l
			}
		}
		return m
	}
	if maxLayer(cheap.Tree) >= maxLayer(fast.Tree) {
		t.Fatalf("critical net did not climb layers: cheap max %d, fast max %d", maxLayer(cheap.Tree), maxLayer(fast.Tree))
	}
	evCheap, _ := nets.Evaluate(in2, cheap.Tree)
	evFast, err := nets.Evaluate(in2, fast.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if evFast.Total > evCheap.Total {
		t.Fatalf("fast embedding worse under heavy weight: %v vs %v", evFast.Total, evCheap.Total)
	}
}

func TestEmbedAvoidsCongestion(t *testing.T) {
	// Price a wall of segments; the embedding should detour around it.
	g := newGraph(10, 10, 2)
	c := grid.NewCosts(g)
	// Wall at x=4..5 on layer 0 rows 0..8 (leave row 9 open).
	for y := int32(0); y < 9; y++ {
		c.Mult[g.SegH(0, y, 4)] = 50
	}
	in := &nets.Instance{G: g, C: c, Root: g.At(0, 0, 0),
		Sinks: []nets.Sink{{V: g.At(9, 0, 0), W: 0}}, Win: g.FullWindow()}
	topo := rsmt.Build(in.TermPts())
	res, err := Embed(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Tree.Steps {
		if !st.Arc.Via && c.Mult[st.Arc.Seg] > 1 {
			t.Fatalf("embedding used priced segment %d", st.Arc.Seg)
		}
	}
}

func TestEmbedMultiSinkValidity(t *testing.T) {
	g := newGraph(20, 20, 5)
	rng := rand.New(rand.NewPCG(11, 12))
	for it := 0; it < 25; it++ {
		n := 2 + rng.IntN(12)
		sinks := make([]nets.Sink, n)
		for i := range sinks {
			sinks[i] = nets.Sink{
				V: g.At(rng.Int32N(20), rng.Int32N(20), rng.Int32N(2)),
				W: rng.Float64() * 3,
			}
		}
		in := &nets.Instance{G: g, C: grid.NewCosts(g), Root: g.At(rng.Int32N(20), rng.Int32N(20), 0),
			Sinks: sinks, DBif: 3, Eta: 0.25, Win: g.FullWindow()}
		topo := rsmt.Build(in.TermPts())
		res, err := Embed(in, topo)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nets.Evaluate(in, res.Tree); err != nil {
			t.Fatalf("invalid embedded tree: %v", err)
		}
	}
}

func TestEmbedWindowed(t *testing.T) {
	// A restricted window must still produce a valid tree when all
	// terminals are inside it.
	g := newGraph(30, 30, 4)
	in := &nets.Instance{G: g, C: grid.NewCosts(g), Root: g.At(10, 10, 0),
		Sinks: []nets.Sink{{V: g.At(14, 12, 0), W: 1}, {V: g.At(12, 15, 0), W: 2}}}
	in.Win = in.DefaultWindow(3)
	topo := rsmt.Build(in.TermPts())
	res, err := Embed(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nets.Evaluate(in, res.Tree); err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Tree.Steps {
		if !in.Win.Contains(g.Pt(st.From)) || !in.Win.Contains(g.Pt(st.Arc.To)) {
			t.Fatalf("step escapes window")
		}
	}
}

func TestEmbedSinkOutsideWindowFails(t *testing.T) {
	g := newGraph(30, 30, 4)
	in := &nets.Instance{G: g, C: grid.NewCosts(g), Root: g.At(1, 1, 0),
		Sinks: []nets.Sink{{V: g.At(25, 25, 0), W: 1}}}
	in.Win = geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}
	topo := rsmt.Build(in.TermPts())
	if _, err := Embed(in, topo); err == nil {
		t.Fatal("expected error for sink outside window")
	}
}

func TestEmbedZeroSinks(t *testing.T) {
	g := newGraph(5, 5, 2)
	in := &nets.Instance{G: g, C: grid.NewCosts(g), Root: g.At(1, 1, 0), Win: g.FullWindow()}
	topo := rsmt.Build(in.TermPts())
	res, err := Embed(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree.Steps) != 0 {
		t.Fatal("zero-sink net should have empty tree")
	}
}
