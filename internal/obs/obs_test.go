package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 {
		t.Fatalf("nil Now() = %d, want 0", r.Now())
	}
	r.Span(StageWave, 0, -1, "", 0)
	r.EndWave(WaveSnapshot{})
	r.OnWave(func(WaveSnapshot) { t.Fatal("callback on nil recorder") })
	if r.Spans() != nil || r.Waves() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if r.Workers(4) != nil {
		t.Fatal("nil recorder returned workers")
	}
}

func TestEndWaveMergesWorkersDeterministically(t *testing.T) {
	r := New()
	ws := r.Workers(3)
	// Record in reverse worker order; the merge must come back in
	// worker order regardless.
	for w := 2; w >= 0; w-- {
		ws[w].Wave = 0
		start := ws[w].Now()
		ws[w].Span(StageSolve, int32(10+w), "cd", start)
	}
	start := r.Now()
	r.Span(StagePrice, 0, -1, "", start)
	r.EndWave(WaveSnapshot{Wave: 0, Objective: 1.5, Overflow: 2, Solved: 3})

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// Serial span first (recorded pre-merge), then workers 0,1,2.
	if spans[0].Stage != StagePrice || spans[0].Worker != -1 {
		t.Fatalf("span 0 = %+v, want serial reprice", spans[0])
	}
	for w := 0; w < 3; w++ {
		s := spans[1+w]
		if s.Worker != int32(w) || s.Net != int32(10+w) || s.Oracle != "cd" || s.Stage != StageSolve {
			t.Fatalf("merged span %d = %+v, want worker %d net %d", w, s, w, 10+w)
		}
	}

	waves := r.Waves()
	if len(waves) != 1 {
		t.Fatalf("got %d waves, want 1", len(waves))
	}
	snap := waves[0]
	if snap.Objective != 1.5 || snap.Overflow != 2 || snap.Solved != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.StageNanos[StagePrice] <= 0 || snap.StageNanos[StageSolve] <= 0 {
		t.Fatalf("stage nanos not accumulated: %v", snap.StageNanos)
	}
}

func TestEndWaveOnlySumsOwnWave(t *testing.T) {
	r := New()
	w := r.Workers(1)[0]
	w.Wave = 0
	w.Span(StageSolve, 1, "cd", w.Now())
	r.EndWave(WaveSnapshot{Wave: 0})
	w.Wave = 1
	w.Span(StageRepair, 2, "adopted", w.Now())
	r.EndWave(WaveSnapshot{Wave: 1})
	waves := r.Waves()
	if waves[0].StageNanos[StageRepair] != 0 {
		t.Fatalf("wave 0 charged wave 1 repair time: %v", waves[0].StageNanos)
	}
	if waves[1].StageNanos[StageSolve] != 0 {
		t.Fatalf("wave 1 charged wave 0 solve time: %v", waves[1].StageNanos)
	}
}

func TestOnWaveCallbackFires(t *testing.T) {
	r := New()
	var got []int
	r.OnWave(func(ws WaveSnapshot) { got = append(got, ws.Wave) })
	r.EndWave(WaveSnapshot{Wave: 0})
	r.EndWave(WaveSnapshot{Wave: 1})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("callback waves = %v, want [0 1]", got)
	}
}

func TestSpanCapDrops(t *testing.T) {
	r := NewCap(2)
	for i := 0; i < 5; i++ {
		r.Span(StageCache, -1, -1, "", r.Now())
	}
	if len(r.Spans()) != 2 {
		t.Fatalf("retained %d spans, want 2", len(r.Spans()))
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	r := New()
	w := r.Workers(2)
	w[0].Span(StageSolve, 7, "cd", w[0].Now())
	w[1].Span(StageRepair, 8, "escalated", w[1].Now())
	r.Span(StageReplay, 0, -1, "", r.Now())
	r.EndWave(WaveSnapshot{Wave: 0})
	r.Span(StageCheckpoint, -1, -1, "marshal", r.Now())

	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Spans()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"solve:cd"`, `"repair:escalated"`, `"replay"`, `"checkpoint:marshal"`, `"traceEvents"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace lacks %s:\n%s", want, out)
		}
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no events array": `{"foo": 1}`,
		"unnamed event":   `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]}`,
		"bad phase":       `{"traceEvents":[{"name":"x","ph":"B","ts":0,"dur":1,"pid":1,"tid":0}]}`,
		"missing ts":      `{"traceEvents":[{"name":"x","ph":"X","dur":1,"pid":1,"tid":0}]}`,
	}
	for name, doc := range cases {
		if err := ValidateTrace([]byte(doc)); err == nil {
			t.Errorf("%s: ValidateTrace accepted %s", name, doc)
		}
	}
}

func TestRingWrapsAndCounts(t *testing.T) {
	r := NewRing(4)
	mk := func(n int32) []Span { return []Span{{Stage: StageSolve, Net: n}} }
	for i := int32(0); i < 6; i++ {
		r.Add(mk(i))
	}
	spans, total := r.Snapshot()
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if len(spans) != 4 {
		t.Fatalf("retained %d, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Net != int32(2+i) {
			t.Fatalf("span %d net = %d, want %d (oldest-first order)", i, s.Net, 2+i)
		}
	}
	// A batch larger than capacity keeps its tail.
	big := make([]Span, 10)
	for i := range big {
		big[i].Net = int32(100 + i)
	}
	r.Add(big)
	spans, _ = r.Snapshot()
	if len(spans) != 4 || spans[0].Net != 106 || spans[3].Net != 109 {
		t.Fatalf("big batch snapshot = %+v", spans)
	}
}

func TestLintPromTextAcceptsWellFormed(t *testing.T) {
	doc := `# TYPE routed_requests_total counter
routed_requests_total{endpoint="solve"} 3
routed_requests_total{endpoint="route"} 1
# TYPE routed_queue_depth gauge
routed_queue_depth 0
# TYPE routed_solve_latency_seconds histogram
routed_solve_latency_seconds_bucket{le="0.1"} 2
routed_solve_latency_seconds_bucket{le="+Inf"} 3
routed_solve_latency_seconds_sum 0.4
routed_solve_latency_seconds_count 3
# TYPE routed_oracle_solve_latency_seconds histogram
routed_oracle_solve_latency_seconds_bucket{oracle="cd",le="0.1"} 1
routed_oracle_solve_latency_seconds_bucket{oracle="cd",le="+Inf"} 1
routed_oracle_solve_latency_seconds_sum{oracle="cd"} 0.01
routed_oracle_solve_latency_seconds_count{oracle="cd"} 1
`
	if err := LintPromText([]byte(doc)); err != nil {
		t.Fatalf("LintPromText rejected well-formed doc: %v", err)
	}
}

func TestLintPromTextRejectsViolations(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_metric 1\n",
		"duplicate series":    "# TYPE a counter\na 1\na 2\n",
		"bad value":           "# TYPE a counter\na x\n",
		"histogram without +Inf": `# TYPE h histogram
h_bucket{le="0.1"} 1
h_sum 1
h_count 1
`,
		"histogram without sum": `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`,
		"histogram without count": `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_sum 1
`,
	}
	for name, doc := range cases {
		if err := LintPromText([]byte(doc)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, doc)
		}
	}
}
