package obs

import "sync"

// Ring is the flight recorder: a fixed-size ring of recent spans a
// server keeps across jobs, dumped at /debug/obs for post-hoc triage of
// slow requests. Unlike a Recorder it is shared and long-lived, so
// every method locks.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total int64
}

// DefaultRingSpans is the flight recorder's default capacity.
const DefaultRingSpans = 4096

// NewRing returns a ring retaining the last capacity spans (≤ 0 takes
// the default).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSpans
	}
	return &Ring{buf: make([]Span, capacity)}
}

// Add appends spans, overwriting the oldest beyond capacity.
func (r *Ring) Add(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total += int64(len(spans))
	// Only the last cap(buf) spans of a large batch can survive.
	if len(spans) > len(r.buf) {
		spans = spans[len(spans)-len(r.buf):]
	}
	for _, s := range spans {
		r.buf[r.next] = s
		r.next++
		if r.next == len(r.buf) {
			r.next, r.full = 0, true
		}
	}
}

// Snapshot returns the retained spans oldest-first and the total number
// ever added.
func (r *Ring) Snapshot() (spans []Span, total int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		spans = append(spans, r.buf[r.next:]...)
	}
	spans = append(spans, r.buf[:r.next]...)
	return spans, r.total
}

// Capacity reports the ring's span capacity.
func (r *Ring) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}
