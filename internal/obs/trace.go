package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome trace_event record ("X" = complete event).
// Timestamps and durations are microseconds, per the trace-event spec.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event JSON object format, loadable by
// chrome://tracing and Perfetto.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders spans as Chrome trace_event JSON. Worker spans
// land on track tid = worker+1; serial spans (wave, reprice, replay,
// checkpoint) on tid 0, so the wave skeleton frames the per-net work.
// Span order is preserved, so output is a pure function of the input.
func WriteTrace(w io.Writer, spans []Span) error {
	tf := traceFile{TraceEvents: make([]traceEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		name := s.Stage.String()
		if s.Oracle != "" {
			name = name + ":" + s.Oracle
		}
		ev := traceEvent{
			Name: name,
			Cat:  s.Stage.String(),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  1,
			Tid:  int(s.Worker) + 1,
		}
		if s.Wave >= 0 || s.Net >= 0 {
			ev.Args = map[string]any{}
			if s.Wave >= 0 {
				ev.Args["wave"] = s.Wave
			}
			if s.Net >= 0 {
				ev.Args["net"] = s.Net
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// ValidateTrace checks that data parses as Chrome trace_event JSON in
// object format with well-formed complete events — the round-trip check
// CI runs on grroute -trace output.
func ValidateTrace(data []byte) error {
	var tf struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("obs: trace does not parse: %w", err)
	}
	if tf.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range tf.TraceEvents {
		switch {
		case ev.Name == "":
			return fmt.Errorf("obs: trace event %d has no name", i)
		case ev.Ph != "X":
			return fmt.Errorf("obs: trace event %d (%s) has phase %q, want \"X\"", i, ev.Name, ev.Ph)
		case ev.Ts == nil || ev.Dur == nil:
			return fmt.Errorf("obs: trace event %d (%s) lacks ts/dur", i, ev.Name)
		case *ev.Ts < 0 || *ev.Dur < 0:
			return fmt.Errorf("obs: trace event %d (%s) has negative ts/dur", i, ev.Name)
		case ev.Pid == nil || ev.Tid == nil:
			return fmt.Errorf("obs: trace event %d (%s) lacks pid/tid", i, ev.Name)
		}
	}
	return nil
}
