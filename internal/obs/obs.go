// Package obs is the router's structured-observability layer: typed
// spans with monotonic timestamps, per-wave convergence snapshots, a
// Chrome trace_event exporter, a fixed-size flight-recorder ring and a
// Prometheus text-format linter — all dependency-free (stdlib only,
// like the rest of the module).
//
// The central contract is that telemetry observes the computation and
// never perturbs it. A nil *Recorder is the default and is
// zero-overhead: every method is nil-safe, the router's hot loop guards
// per-net recording behind one pointer check, and with Recorder == nil
// routed trees and metrics are byte-identical to a build without the
// package (pinned by the golden digests and the recorder determinism
// test). With a recorder attached, spans carry wall-clock durations —
// inherently nondeterministic — so durations are kept out of every wire
// form, exactly like RouteMetrics.Walltime; the deterministic
// per-wave series (objective, overflow, counts) are what crosses
// process boundaries.
//
// Concurrency model: worker goroutines write spans into private
// per-worker buffers (Worker) with no synchronization; the wave loop's
// barrier (after its WaitGroup) calls EndWave, which merges the buffers
// into the recorder in worker order — a deterministic order, so span
// streams compare across runs — and fires the OnWave callback with the
// wave's snapshot. Serial code (the wave loop itself, checkpoint
// marshaling, cache lookups) records through the mutex-guarded
// Recorder.Span.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Stage classifies a span by the pipeline stage it measures.
type Stage uint8

const (
	// StageWave spans one whole rip-up-and-reroute wave.
	StageWave Stage = iota
	// StageDirty is the incremental scheduler's dirty-net scan.
	StageDirty
	// StagePrice is the Lagrangean update block: congestion pricing,
	// STA and the weight/budget refresh.
	StagePrice
	// StageRepair is one net's topology-repair attempt (adopted or
	// escalated; the Oracle attribute carries the outcome).
	StageRepair
	// StageSolve is one net's oracle solve (the Oracle attribute names
	// the oracle or driver stage that produced the tree).
	StageSolve
	// StageReplay is the wave-end usage rebuild from the final trees.
	StageReplay
	// StageCheckpoint covers checkpoint construction and marshaling.
	StageCheckpoint
	// StageCache is a service-layer cache lookup.
	StageCache

	// NumStages sizes per-stage accumulator arrays.
	NumStages = int(StageCache) + 1
)

var stageNames = [NumStages]string{
	"wave", "dirty-scan", "reprice", "repair", "solve", "replay",
	"checkpoint", "cache-lookup",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage-%d", int(s))
}

// MarshalJSON renders the stage as its name, so span dumps
// (/debug/obs) read without a decoder ring.
func (s Stage) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Span is one timed event. Start and Dur are nanoseconds on the
// recorder's monotonic clock (Start counts from the recorder's epoch).
// Wave, Worker and Net are -1 when the dimension does not apply; Oracle
// is a free-form attribute (oracle name for solves, outcome for
// repairs, a tag for service spans).
type Span struct {
	Stage  Stage  `json:"stage"`
	Wave   int32  `json:"wave"`
	Worker int32  `json:"worker"`
	Net    int32  `json:"net"`
	Oracle string `json:"oracle,omitempty"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	// Detail marks a nested sub-span (the exact tier's search inside a
	// solve span, the re-embedding DP inside a repair span). Detail
	// spans appear in traces and dumps but are excluded from the
	// per-wave stage sums — their parent already covers their duration.
	Detail bool `json:"detail,omitempty"`
}

// WaveSnapshot is the per-wave convergence record emitted at each wave
// barrier: the objective and overflow of the current solution under the
// wave's final prices, the wave's work counters, and the summed span
// durations by stage. Objective and overflow are pure functions of
// (chip, method, options) — deterministic across thread counts — while
// StageNanos is wall-clock and must never enter a wire form.
type WaveSnapshot struct {
	Wave      int
	Objective float64
	Overflow  float64
	Solved    int
	Skipped   int
	Repaired  int
	Escalated int
	// StageNanos[s] sums the Dur of every span of stage s recorded for
	// this wave. Worker stages (solve, repair) sum across workers, so
	// they can exceed the wave's wall-clock span on multi-threaded runs.
	StageNanos [NumStages]int64
}

// DefaultMaxSpans bounds a recorder's span store. A scale-0.25 4-wave
// incremental route records ~60k solve spans; the cap is far above any
// realistic run while keeping a leaked recorder's memory bounded.
const DefaultMaxSpans = 1 << 20

// Recorder captures spans and wave snapshots for one routing run (or
// one service job). The zero value is not usable; construct with New.
// All methods are safe on a nil receiver, which is the zero-overhead
// default path.
type Recorder struct {
	epoch    time.Time
	maxSpans int

	mu       sync.Mutex
	spans    []Span
	dropped  int64
	waveMark int // index into spans where the current wave's spans begin
	waves    []WaveSnapshot
	onWave   func(WaveSnapshot)
	workers  []*Worker
}

// New returns a recorder with the default span cap.
func New() *Recorder { return NewCap(DefaultMaxSpans) }

// NewCap returns a recorder retaining at most maxSpans spans; later
// spans are counted in Dropped() and discarded.
func NewCap(maxSpans int) *Recorder {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Recorder{epoch: time.Now(), maxSpans: maxSpans}
}

// Now returns nanoseconds since the recorder's epoch on the monotonic
// clock (0 on a nil recorder).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Workers returns n per-worker span buffers, growing the set if needed.
// Must be called from one goroutine before the workers start; each
// returned Worker is then owned by exactly one goroutine until the next
// EndWave barrier.
func (r *Recorder) Workers(n int) []*Worker {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.workers) < n {
		r.workers = append(r.workers, &Worker{rec: r, id: int32(len(r.workers))})
	}
	return r.workers[:n]
}

// Span records one serial span ending now. Safe on nil (no-op).
func (r *Recorder) Span(st Stage, wave, net int32, oracle string, start int64) {
	if r == nil {
		return
	}
	end := r.Now()
	r.mu.Lock()
	r.addLocked(Span{Stage: st, Wave: wave, Worker: -1, Net: net, Oracle: oracle, Start: start, Dur: end - start})
	r.mu.Unlock()
}

func (r *Recorder) addLocked(s Span) {
	if len(r.spans) >= r.maxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// OnWave registers a callback fired from EndWave with each wave's
// snapshot. The callback runs on the wave loop's goroutine and must not
// block (the service layer publishes to a non-blocking broadcast
// buffer). Safe on nil (no-op).
func (r *Recorder) OnWave(fn func(WaveSnapshot)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onWave = fn
	r.mu.Unlock()
}

// EndWave is the wave-barrier merge: it drains every worker buffer into
// the recorder in worker order (deterministic), sums the wave's span
// durations by stage into the snapshot, stores it and fires the OnWave
// callback. It must only be called when no worker goroutine is writing
// spans (after the wave's WaitGroup).
func (r *Recorder) EndWave(snap WaveSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, w := range r.workers {
		for _, s := range w.spans {
			r.addLocked(s)
		}
		r.dropped += w.dropped
		w.spans = w.spans[:0]
		w.dropped = 0
	}
	for _, s := range r.spans[r.waveMark:] {
		if !s.Detail && s.Wave == int32(snap.Wave) {
			snap.StageNanos[s.Stage] += s.Dur
		}
	}
	r.waveMark = len(r.spans)
	r.waves = append(r.waves, snap)
	cb := r.onWave
	r.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
}

// Spans returns a copy of the recorded spans (nil on a nil recorder).
// Worker spans of a wave appear only after that wave's EndWave merge.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Waves returns a copy of the wave snapshots in wave order.
func (r *Recorder) Waves() []WaveSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]WaveSnapshot(nil), r.waves...)
}

// Dropped reports spans discarded over the cap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Worker is a per-goroutine span buffer: writes take no locks, and the
// buffer drains into the recorder at the next EndWave barrier. Wave is
// the wave index stamped on recorded spans; the owning goroutine sets
// it between barriers.
type Worker struct {
	Wave    int32
	rec     *Recorder
	id      int32
	spans   []Span
	dropped int64
}

// Now returns the recorder's monotonic clock.
func (w *Worker) Now() int64 { return w.rec.Now() }

// Span records one span ending now on the worker's buffer.
func (w *Worker) Span(st Stage, net int32, oracle string, start int64) {
	w.add(st, net, oracle, start, false)
}

// DetailSpan records a nested sub-span ending now: present in traces
// and dumps, excluded from per-wave stage sums (see Span.Detail).
func (w *Worker) DetailSpan(st Stage, net int32, oracle string, start int64) {
	w.add(st, net, oracle, start, true)
}

func (w *Worker) add(st Stage, net int32, oracle string, start int64, detail bool) {
	end := w.rec.Now()
	if len(w.spans) >= w.rec.maxSpans {
		w.dropped++
		return
	}
	w.spans = append(w.spans, Span{Stage: st, Wave: w.Wave, Worker: w.id, Net: net, Oracle: oracle, Start: start, Dur: end - start, Detail: detail})
}
