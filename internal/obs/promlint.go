package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// LintPromText validates a Prometheus text-format exposition (the
// /metrics body) for the well-formedness CI asserts: every sample is
// preceded by a # TYPE declaration for its metric family, histogram
// families carry _sum, _count and a +Inf bucket for every label set,
// no series appears twice, and every value parses as a float. It
// returns the first violation found.
func LintPromText(data []byte) error {
	types := map[string]string{}      // family → type
	seen := map[string]bool{}         // full series (name + labels) → present
	hasSum := map[string]bool{}       // histogram family → _sum seen
	hasCount := map[string]bool{}     // histogram family → _count seen
	bucketInf := map[string]bool{}    // family + non-le labels → +Inf bucket seen
	bucketGroups := map[string]bool{} // family + non-le labels → any bucket seen
	histFamilies := map[string]bool{} // histogram families with any sample

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				family := fields[2]
				if _, dup := types[family]; dup {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, family)
				}
				types[family] = fields[3]
			}
			continue // HELP and other comments
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: sample %s has non-numeric value %q", lineNo, name, value)
		}
		family, kind, ok := resolveFamily(name, types)
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		series := name + labels
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true
		if kind == "histogram" {
			histFamilies[family] = true
			switch {
			case name == family+"_sum":
				hasSum[family] = true
			case name == family+"_count":
				hasCount[family] = true
			case name == family+"_bucket":
				le, rest, err := splitLE(labels)
				if err != nil {
					return fmt.Errorf("line %d: %s: %v", lineNo, name, err)
				}
				group := family + rest
				bucketGroups[group] = true
				if le == "+Inf" {
					bucketInf[group] = true
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for family := range histFamilies {
		if !hasSum[family] {
			return fmt.Errorf("histogram %s has no _sum sample", family)
		}
		if !hasCount[family] {
			return fmt.Errorf("histogram %s has no _count sample", family)
		}
	}
	for group := range bucketGroups {
		if !bucketInf[group] {
			return fmt.Errorf("histogram buckets %s have no le=\"+Inf\" bucket", group)
		}
	}
	return nil
}

// splitSample splits a sample line into metric name, the literal label
// block ("{...}" or ""), and the value text. Timestamps (a second
// numeric field) are not produced by this module and are rejected.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced label braces in %q", line)
		}
		name, labels, rest = line[:i], line[i:j+1], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("sample %q is not \"name value\"", line)
		}
		return fields[0], "", fields[1], nil
	}
	if name == "" || strings.ContainsAny(rest, " \t") {
		return "", "", "", fmt.Errorf("sample %q is not \"name{labels} value\"", line)
	}
	return name, labels, rest, nil
}

// resolveFamily maps a sample name to its declared metric family:
// either the name itself, or — for histogram component samples — the
// name with its _bucket/_sum/_count suffix stripped.
func resolveFamily(name string, types map[string]string) (family, kind string, ok bool) {
	if k, ok := types[name]; ok {
		return name, k, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base, "histogram", true
		}
	}
	return "", "", false
}

// splitLE extracts the le label from a bucket's label block and returns
// its value plus the block with le removed (the bucket's group key).
func splitLE(labels string) (le, rest string, err error) {
	if len(labels) < 2 || labels[0] != '{' || labels[len(labels)-1] != '}' {
		return "", "", fmt.Errorf("bucket has no label block")
	}
	inner := labels[1 : len(labels)-1]
	var kept []string
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "le="); ok {
			le, err = strconv.Unquote(v)
			if err != nil {
				return "", "", fmt.Errorf("bad le label %q", part)
			}
			continue
		}
		kept = append(kept, part)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket label block %s has no le", labels)
	}
	return le, "{" + strings.Join(kept, ",") + "}", nil
}
