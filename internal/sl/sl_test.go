package sl

import (
	"math/rand/v2"
	"testing"

	"costdist/internal/geom"
	"costdist/internal/nets"
	"costdist/internal/rsmt"
)

func randInstance(rng *rand.Rand, n int, span int32) ([]geom.Pt, []float64) {
	pts := make([]geom.Pt, n)
	w := make([]float64, n-1)
	for i := range pts {
		pts[i] = geom.Pt{X: rng.Int32N(span), Y: rng.Int32N(span)}
	}
	for i := range w {
		w[i] = 0.1 + rng.Float64()*5
	}
	return pts, w
}

// pathLens returns the penalized root path length per sink, recomputed
// independently of the construction code.
func pathLens(tr *nets.PlaneTree, w []float64, lbif, eta float64) []float64 {
	n := len(tr.Nodes)
	kids := tr.Children()
	subW := make([]float64, n)
	var weigh func(i int32) float64
	weigh = func(i int32) float64 {
		t := 0.0
		if s := tr.Nodes[i].SinkIdx; s >= 0 {
			t += w[s]
		}
		for _, c := range kids[i] {
			t += weigh(c)
		}
		subW[i] = t
		return t
	}
	weigh(0)
	out := make([]float64, len(w))
	plen := make([]float64, n)
	var push func(i int32)
	push = func(i int32) {
		ws := make([]float64, len(kids[i]))
		for k, c := range kids[i] {
			ws[k] = subW[c]
		}
		pen := nets.SplitPenalties(lbif, eta, ws)
		for k, c := range kids[i] {
			plen[c] = plen[i] + pen[k] + float64(geom.L1(tr.Nodes[i].Pos, tr.Nodes[c].Pos))
			push(c)
		}
		if s := tr.Nodes[i].SinkIdx; s >= 0 {
			out[s] = plen[i]
		}
	}
	push(0)
	return out
}

func TestBuildValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 7))
	for _, n := range []int{2, 3, 6, 12, 30} {
		for it := 0; it < 15; it++ {
			pts, w := randInstance(rng, n, 100)
			tr := Build(pts, w, Params{Eps: 0.25, LBif: 3, Eta: 0.25})
			if err := tr.Validate(n - 1); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestShallownessWithoutPenalties(t *testing.T) {
	// With LBif=0 every sink path must satisfy the (1+ε) bound, since a
	// direct root connection always achieves L1 distance exactly.
	rng := rand.New(rand.NewPCG(13, 14))
	eps := 0.3
	for it := 0; it < 100; it++ {
		n := 3 + rng.IntN(20)
		pts, w := randInstance(rng, n, 80)
		tr := Build(pts, w, Params{Eps: eps})
		lens := pathLens(tr, w, 0, 0.25)
		for s, l := range lens {
			bound := (1 + eps) * float64(geom.L1(pts[0], pts[s+1]))
			if l > bound+1e-9 {
				t.Fatalf("sink %d path %v exceeds bound %v (pts %v)", s, l, bound, pts)
			}
		}
	}
}

func TestLightnessNearMST(t *testing.T) {
	// With a huge ε nothing is reconnected: length equals the base
	// Steiner tree's (light), which is at most MST.
	rng := rand.New(rand.NewPCG(3, 1))
	for it := 0; it < 50; it++ {
		n := 3 + rng.IntN(15)
		pts, w := randInstance(rng, n, 64)
		tr := Build(pts, w, Params{Eps: 1e9})
		if got, mst := tr.Length(), rsmt.MSTLength(pts); got > mst {
			t.Fatalf("length %d > MST %d with infinite eps", got, mst)
		}
	}
}

func TestEpsZeroForcesShortestPaths(t *testing.T) {
	// ε=0 and no penalties: every sink must be at exactly its L1 radius.
	rng := rand.New(rand.NewPCG(31, 5))
	for it := 0; it < 50; it++ {
		n := 3 + rng.IntN(12)
		pts, w := randInstance(rng, n, 50)
		tr := Build(pts, w, Params{Eps: 0})
		lens := pathLens(tr, w, 0, 0.25)
		for s, l := range lens {
			if l > float64(geom.L1(pts[0], pts[s+1]))+1e-9 {
				t.Fatalf("sink %d path %v > L1 %v", s, l, geom.L1(pts[0], pts[s+1]))
			}
		}
	}
}

func TestEpsInfinityKeepsLightTree(t *testing.T) {
	// With an effectively infinite ε no sink is reconnected, so the
	// result is exactly the base light (Steiner) tree; any finite ε can
	// only trade length for shallowness within sane bounds.
	rng := rand.New(rand.NewPCG(17, 23))
	for it := 0; it < 30; it++ {
		n := 5 + rng.IntN(12)
		pts, w := randInstance(rng, n, 80)
		light := rsmt.Build(pts).Length()
		if got := Build(pts, w, Params{Eps: 1e9}).Length(); got != light {
			t.Fatalf("eps=inf length %d != light tree %d", got, light)
		}
		for _, eps := range []float64{0, 0.1, 0.5, 2} {
			l := Build(pts, w, Params{Eps: eps}).Length()
			if l < geom.BBox(pts).HalfPerimeter() {
				t.Fatalf("eps=%v length %d below HPWL bound", eps, l)
			}
			// A star from the root is the worst shallow tree: total
			// length can never exceed the sum of direct connections
			// plus the light tree (every edge is one or the other).
			var star int64
			for _, p := range pts[1:] {
				star += geom.L1(pts[0], p)
			}
			if l > star+light {
				t.Fatalf("eps=%v length %d exceeds star+light %d", eps, l, star+light)
			}
		}
	}
}

func TestCustomBounds(t *testing.T) {
	// A generous explicit bound suppresses reconnection even at ε=0.
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 11, Y: 1}}
	w := []float64{1, 1}
	loose := Build(pts, w, Params{Eps: 0, Bound: []float64{100, 100}})
	if loose.Length() != 12 {
		t.Fatalf("loose bound length %d want 12 (chain)", loose.Length())
	}
	// A tight bound on the far sink forces a direct connection.
	tight := Build(pts, w, Params{Eps: 0, Bound: []float64{10, 12}})
	lens := pathLens(tight, w, 0, 0.25)
	if lens[1] > 12+1e-9 {
		t.Fatalf("tight bound violated: %v", lens)
	}
}

func TestTwoTerminals(t *testing.T) {
	tr := Build([]geom.Pt{{X: 0, Y: 0}, {X: 5, Y: 5}}, []float64{1}, Params{Eps: 0.1})
	if err := tr.Validate(1); err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 10 {
		t.Fatalf("length %d", tr.Length())
	}
}

func BenchmarkBuild32(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	pts, w := randInstance(rng, 32, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts, w, Params{Eps: 0.25, LBif: 3, Eta: 0.25})
	}
}
