// Package sl implements the shallow-light Steiner tree baseline (paper
// §IV-A, refs [6],[14]): starting from an approximately minimum-length
// Steiner tree, a DFS traversal reconnects sinks directly to the root
// whenever their tree path violates their delay/distance bound by more
// than a factor (1+ε); a reverse traversal afterwards re-activates
// deleted connections when that saves length without re-violating any
// bound. Bifurcation penalties are (re-)distributed with the flexible
// η-model of the paper during both phases.
package sl

import (
	"costdist/internal/geom"
	"costdist/internal/nets"
	"costdist/internal/rsmt"
)

// Params controls the construction.
type Params struct {
	// Eps is the shallowness slack ε ≥ 0: a sink's penalized path length
	// may exceed its bound by at most (1+ε).
	Eps float64
	// Bound is the per-sink distance bound in gcell units (typically the
	// globally optimized delay budget from resource sharing, converted
	// to length). When nil, L1 distance from the root is used.
	Bound []float64
	// LBif is the bifurcation penalty in length units; Eta the minimum
	// share per eq. (2).
	LBif float64
	Eta  float64
}

type work struct {
	pts   []geom.Pt
	w     []float64
	p     Params
	nodes []nets.PlaneNode
	kids  [][]int32
	subW  []float64
	plen  []float64
}

// Build returns a shallow-light topology. pts[0] is the root; pts[i]
// corresponds to sink i-1 with delay weight w[i-1].
func Build(pts []geom.Pt, w []float64, p Params) *nets.PlaneTree {
	base := rsmt.Build(pts)
	wk := &work{pts: pts, w: w, p: p, nodes: append([]nets.PlaneNode{}, base.Nodes...)}
	if len(wk.nodes) <= 1 {
		return &nets.PlaneTree{Nodes: wk.nodes}
	}
	wk.refresh()

	// Phase 1: DFS; reconnect violating sinks directly to the root.
	origParent := map[int32]int32{}
	order := wk.dfsOrder()
	for _, v := range order {
		s := wk.nodes[v].SinkIdx
		if s < 0 || v == 0 {
			continue
		}
		if wk.plen[v] > (1+p.Eps)*wk.bound(s) {
			origParent[v] = wk.nodes[v].Parent
			wk.reparent(v, 0)
			wk.refresh()
		}
	}

	// Phase 2: reverse traversal; undo reconnections that cost length
	// if no bound is violated after undoing.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		orig, ok := origParent[v]
		if !ok {
			continue
		}
		cur := wk.nodes[v].Parent
		if orig == cur {
			continue
		}
		saving := geom.L1(wk.nodes[v].Pos, wk.nodes[cur].Pos) - geom.L1(wk.nodes[v].Pos, wk.nodes[orig].Pos)
		if saving <= 0 {
			continue
		}
		wk.reparent(v, orig)
		wk.refresh()
		if wk.anyViolation() {
			wk.reparent(v, cur)
			wk.refresh()
		}
	}

	out := &nets.PlaneTree{Nodes: wk.nodes}
	return out
}

func (wk *work) bound(sink int32) float64 {
	if wk.p.Bound != nil {
		return wk.p.Bound[sink]
	}
	return float64(geom.L1(wk.pts[0], wk.pts[sink+1]))
}

func (wk *work) reparent(v, newParent int32) {
	wk.nodes[v].Parent = newParent
}

// refresh recomputes children, subtree weights and penalized path
// lengths. Trees are routing-net sized, so O(t) recomputation per
// structural change is cheap and keeps the λ redistribution exact.
func (wk *work) refresh() {
	n := len(wk.nodes)
	wk.kids = make([][]int32, n)
	for i := 1; i < n; i++ {
		p := wk.nodes[i].Parent
		wk.kids[p] = append(wk.kids[p], int32(i))
	}
	wk.subW = make([]float64, n)
	var weigh func(i int32) float64
	weigh = func(i int32) float64 {
		total := 0.0
		if s := wk.nodes[i].SinkIdx; s >= 0 {
			total += wk.w[s]
		}
		for _, c := range wk.kids[i] {
			total += weigh(c)
		}
		wk.subW[i] = total
		return total
	}
	weigh(0)
	wk.plen = make([]float64, n)
	var push func(i int32)
	push = func(i int32) {
		ch := wk.kids[i]
		ws := make([]float64, len(ch))
		for k, c := range ch {
			ws[k] = wk.subW[c]
		}
		pen := nets.SplitPenalties(wk.p.LBif, wk.p.Eta, ws)
		for k, c := range ch {
			wk.plen[c] = wk.plen[i] + pen[k] + float64(geom.L1(wk.nodes[i].Pos, wk.nodes[c].Pos))
			push(c)
		}
	}
	push(0)
}

func (wk *work) dfsOrder() []int32 {
	order := make([]int32, 0, len(wk.nodes))
	var rec func(i int32)
	rec = func(i int32) {
		order = append(order, i)
		for _, c := range wk.kids[i] {
			rec(c)
		}
	}
	rec(0)
	return order
}

func (wk *work) anyViolation() bool {
	for i, n := range wk.nodes {
		if n.SinkIdx >= 0 {
			if wk.plen[i] > (1+wk.p.Eps)*wk.bound(n.SinkIdx) {
				return true
			}
		}
	}
	return false
}
