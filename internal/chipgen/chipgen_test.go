package chipgen

import (
	"math/rand/v2"
	"testing"
)

func TestSuiteMatchesTableIII(t *testing.T) {
	specs := Suite(1.0)
	wantNets := []int{49734, 66500, 286619, 305094, 420131, 590060, 650127, 941271}
	wantLayers := []int{8, 9, 7, 15, 9, 9, 15, 15}
	if len(specs) != 8 {
		t.Fatalf("suite size %d", len(specs))
	}
	for i, s := range specs {
		if s.NNets != wantNets[i] {
			t.Fatalf("%s nets %d want %d", s.Name, s.NNets, wantNets[i])
		}
		if s.Layers != wantLayers[i] {
			t.Fatalf("%s layers %d want %d", s.Name, s.Layers, wantLayers[i])
		}
	}
	half := Suite(0.01)
	for i, s := range half {
		if s.Layers != wantLayers[i] {
			t.Fatalf("scaling changed layer count")
		}
		if s.NNets >= wantNets[i] {
			t.Fatalf("scaling did not reduce nets")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	spec := Suite(0.004)[0] // ~200 nets
	chip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.NL.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(chip.G.Layers) != spec.Layers {
		t.Fatalf("layers %d", len(chip.G.Layers))
	}
	if chip.ClkPeriod <= 0 || chip.DBif <= 0 {
		t.Fatalf("clk %v dbif %v", chip.ClkPeriod, chip.DBif)
	}
	// Pins map into the grid.
	for ci := range chip.NL.Cells {
		v := chip.PinVertex(int32(ci))
		if v < 0 || int32(v) >= chip.G.NumV() {
			t.Fatalf("pin vertex out of range")
		}
	}
	// Net count should be near the target (some may be dropped, some
	// added for coverage).
	if len(chip.NL.Nets) < spec.NNets*8/10 {
		t.Fatalf("too few nets: %d for target %d", len(chip.NL.Nets), spec.NNets)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	spec := Suite(0.002)[1]
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.NL.Cells) != len(b.NL.Cells) || len(a.NL.Nets) != len(b.NL.Nets) {
		t.Fatal("generation not deterministic in sizes")
	}
	for i := range a.NL.Nets {
		if a.NL.Nets[i].Driver != b.NL.Nets[i].Driver || len(a.NL.Nets[i].Sinks) != len(b.NL.Nets[i].Sinks) {
			t.Fatalf("net %d differs between runs", i)
		}
	}
}

func TestFanoutBucketsPopulated(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	buckets := map[string]int{}
	for i := 0; i < 20000; i++ {
		k := sinkCount(rng)
		switch {
		case k <= 2:
			buckets["1-2"]++
		case k <= 5:
			buckets["3-5"]++
		case k <= 14:
			buckets["6-14"]++
		case k <= 29:
			buckets["15-29"]++
		default:
			buckets["30+"]++
		}
	}
	for _, b := range []string{"1-2", "3-5", "6-14", "15-29", "30+"} {
		if buckets[b] == 0 {
			t.Fatalf("bucket %s empty: %v", b, buckets)
		}
	}
	// Small nets must dominate, like real designs.
	if buckets["1-2"] < buckets["30+"]*10 {
		t.Fatalf("fanout distribution implausible: %v", buckets)
	}
}

func TestHotspotsReduceCapacity(t *testing.T) {
	spec := Suite(0.004)[2]
	spec.Hotspots = 10
	chip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	full := chip.G.Layers[0].SegCap
	reduced := 0
	for s := int32(0); s < chip.G.NumRouteSegs(); s++ {
		if chip.G.SegLayer(s) == 0 && chip.G.Cap[s] < full {
			reduced++
		}
	}
	if reduced == 0 {
		t.Fatal("no capacity reductions found")
	}
}

func TestTightnessControlsClock(t *testing.T) {
	spec := Suite(0.002)[0]
	spec.ClkTightness = 0.5
	tight, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.ClkTightness = 1.5
	loose, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tight.ClkPeriod >= loose.ClkPeriod {
		t.Fatalf("tightness not monotone: %v vs %v", tight.ClkPeriod, loose.ClkPeriod)
	}
}
