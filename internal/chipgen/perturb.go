package chipgen

import (
	"fmt"
	"math/rand/v2"

	"costdist/internal/sta"
)

// Perturb returns an ECO-style variant of a chip: roughly frac of its
// nets are perturbed by nudging one of their sink cells a few gcells,
// modeling an engineering change order that re-places a handful of
// cells after a full route. At least one net is perturbed for any
// frac > 0. The routing grid, technology and clock are shared with the
// original (capacities are untouched), so the perturbed chip is
// warm-start compatible with checkpoints of the original; the input
// chip itself is never modified.
//
// Because cells are shared between nets, moving one sink cell also
// moves every other net that drives or reads it — exactly the blast
// radius a real ECO has. The second return value counts the nets whose
// pin signature changed.
func Perturb(c *Chip, frac float64, seed uint64) (*Chip, int, error) {
	if frac < 0 || frac > 1 {
		return nil, 0, fmt.Errorf("chipgen: perturbation fraction %g outside [0,1]", frac)
	}
	nNets := len(c.NL.Nets)
	nPick := int(frac * float64(nNets))
	if frac > 0 && nPick < 1 {
		nPick = 1
	}

	// Deep-copy the netlist; everything else on the chip is immutable
	// under perturbation and stays shared.
	nl := &sta.Netlist{
		Cells: append([]sta.Cell(nil), c.NL.Cells...),
		Nets:  make([]sta.Net, nNets),
	}
	for ni, n := range c.NL.Nets {
		nl.Nets[ni] = sta.Net{Driver: n.Driver, Sinks: append([]int32(nil), n.Sinks...)}
	}
	out := &Chip{
		Spec: c.Spec, G: c.G, Tech: c.Tech, NL: nl,
		ClkPeriod: c.ClkPeriod, DBif: c.DBif,
	}
	if nPick == 0 {
		return out, 0, nil
	}

	rng := rand.New(rand.NewPCG(seed, 0xEC0))
	moved := make(map[int32]bool)
	for _, ni := range rng.Perm(nNets)[:nPick] {
		n := nl.Nets[ni]
		cell := n.Sinks[rng.IntN(len(n.Sinks))]
		pos := nl.Cells[cell].Pos
		// Nudge by 1–2 gcells per axis; retry until the clamped position
		// actually differs (a corner cell nudged outward stays put).
		for try := 0; try < 8; try++ {
			dx := int32(rng.IntN(5) - 2)
			dy := int32(rng.IntN(5) - 2)
			np := pos
			np.X = clampTo(np.X+dx, c.G.NX)
			np.Y = clampTo(np.Y+dy, c.G.NY)
			if np != pos {
				nl.Cells[cell].Pos = np
				moved[cell] = true
				break
			}
		}
	}

	changed := 0
	for _, n := range nl.Nets {
		if moved[n.Driver] {
			changed++
			continue
		}
		for _, s := range n.Sinks {
			if moved[s] {
				changed++
				break
			}
		}
	}
	return out, changed, nil
}

func clampTo(v, n int32) int32 {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
