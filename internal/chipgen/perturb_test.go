package chipgen

import (
	"reflect"
	"testing"
)

func genTest(t *testing.T) *Chip {
	t.Helper()
	spec := Suite(0.002)[0]
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPerturbDeterministicAndBounded(t *testing.T) {
	chip := genTest(t)
	a, na, err := Perturb(chip, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, nb, err := Perturb(chip, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || !reflect.DeepEqual(a.NL, b.NL) {
		t.Fatal("perturbation is not deterministic for a fixed seed")
	}
	if na < 1 {
		t.Fatalf("perturbed %d nets, want ≥ 1", na)
	}
	if na >= len(chip.NL.Nets) {
		t.Fatalf("perturbed every net (%d)", na)
	}
	// A different seed moves different cells.
	c, _, err := Perturb(chip, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.NL.Cells, c.NL.Cells) {
		t.Fatal("different seeds produced identical perturbations")
	}
	// Positions stay on the grid.
	for ci, cell := range a.NL.Cells {
		if cell.Pos.X < 0 || cell.Pos.X >= chip.G.NX || cell.Pos.Y < 0 || cell.Pos.Y >= chip.G.NY {
			t.Fatalf("cell %d off grid at %v", ci, cell.Pos)
		}
	}
	if err := a.NL.Validate(); err != nil {
		t.Fatalf("perturbed netlist invalid: %v", err)
	}
}

func TestPerturbLeavesOriginalUntouched(t *testing.T) {
	chip := genTest(t)
	before := make([]int32, len(chip.NL.Cells))
	for i, c := range chip.NL.Cells {
		before[i] = c.Pos.X<<16 | c.Pos.Y
	}
	p, _, err := Perturb(chip, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chip.NL.Cells {
		if before[i] != c.Pos.X<<16|c.Pos.Y {
			t.Fatalf("original cell %d moved", i)
		}
	}
	if p.G != chip.G || p.ClkPeriod != chip.ClkPeriod {
		t.Fatal("perturbed chip must share grid and clock")
	}
}

func TestPerturbZeroAndBadFrac(t *testing.T) {
	chip := genTest(t)
	p, n, err := Perturb(chip, 0, 1)
	if err != nil || n != 0 {
		t.Fatalf("frac 0: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(p.NL, chip.NL) {
		t.Fatal("frac 0 changed the netlist")
	}
	if _, _, err := Perturb(chip, -0.1, 1); err == nil {
		t.Fatal("negative frac accepted")
	}
	if _, _, err := Perturb(chip, 1.5, 1); err == nil {
		t.Fatal("frac > 1 accepted")
	}
}
