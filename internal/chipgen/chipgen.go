// Package chipgen generates synthetic chip designs for the experiments.
// The paper evaluates on eight proprietary 5nm industrial designs
// (Table III: c1..c8 with 49k–941k nets on 7–15 metal layers); those are
// not available, so per the reproduction ground rules we substitute
// synthetic designs that match Table III's layer counts exactly and
// scale the net counts by a configurable factor. Placement locality
// (Rent-style short nets plus a tail of long ones), a fanout
// distribution covering all of Tables I/II's |S| buckets, capacity
// hotspots ("macros") and a tight clock give the routing problem the
// same qualitative character: congestion in the 85–93% ACE4 band and
// designs that start timing-infeasible.
package chipgen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"costdist/internal/dly"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/sta"
)

// Spec parameterizes one synthetic design.
type Spec struct {
	Name   string
	Layers int
	// NNets is the target net count (cells ≈ nets).
	NNets int
	// Seed makes generation deterministic.
	Seed uint64
	// Density is the average cell count per gcell; it sizes the die.
	Density float64
	// Levels is the logic depth (pipeline length).
	Levels int
	// Hotspots is the number of capacity-reduced macro regions.
	Hotspots int
	// ClkTightness scales the clock period relative to the estimated
	// unrouted critical path (<1 starts infeasible).
	ClkTightness float64
}

// Chip is a generated design: routing graph, technology and netlist.
type Chip struct {
	Spec Spec
	G    *grid.Graph
	Tech dly.Tech
	NL   *sta.Netlist
	// ClkPeriod is the timing constraint in ps.
	ClkPeriod float64
	// DBif is the technology-derived bifurcation penalty (paper §I).
	DBif float64
}

// PinVertex returns the routing graph vertex of a cell's pins (layer 0
// of its gcell).
func (c *Chip) PinVertex(cell int32) grid.V {
	p := c.NL.Cells[cell].Pos
	return c.G.At(p.X, p.Y, 0)
}

// Suite returns the c1..c8 specs with the paper's layer counts
// (Table III) and net counts scaled by scale (1.0 = paper size).
func Suite(scale float64) []Spec {
	base := []struct {
		name   string
		nets   int
		layers int
	}{
		{"c1", 49734, 8},
		{"c2", 66500, 9},
		{"c3", 286619, 7},
		{"c4", 305094, 15},
		{"c5", 420131, 9},
		{"c6", 590060, 9},
		{"c7", 650127, 15},
		{"c8", 941271, 15},
	}
	out := make([]Spec, len(base))
	for i, b := range base {
		n := int(float64(b.nets) * scale)
		if n < 60 {
			n = 60
		}
		out[i] = Spec{
			Name:         b.name,
			Layers:       b.layers,
			NNets:        n,
			Seed:         uint64(1000 + i),
			Density:      0.9,
			Levels:       10,
			Hotspots:     3 + i,
			ClkTightness: 1.08,
		}
	}
	return out
}

// fanout distribution: sink counts per net, chosen so that the |S|
// buckets of Tables I/II (3-5, 6-14, 15-29, ≥30) are all populated in
// roughly the paper's proportions (most instances small, a heavy tail).
func sinkCount(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.45:
		return 1
	case r < 0.62:
		return 2
	case r < 0.85:
		return 3 + rng.IntN(3) // 3-5
	case r < 0.955:
		return 6 + rng.IntN(9) // 6-14
	case r < 0.99:
		return 15 + rng.IntN(15) // 15-29
	default:
		return 30 + rng.IntN(34) // ≥ 30
	}
}

// Generate builds the design.
func Generate(spec Spec) (*Chip, error) {
	if spec.Layers < 2 || spec.NNets < 1 || spec.Levels < 2 {
		return nil, fmt.Errorf("chipgen: bad spec %+v", spec)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0xC0FFEE))
	tech := dly.DefaultTech(spec.Layers)

	nCells := spec.NNets + spec.NNets/8 + 8
	side := int32(math.Ceil(math.Sqrt(float64(nCells) / spec.Density)))
	if side < 8 {
		side = 8
	}
	g := grid.New(side, side, tech.BuildLayers(), tech.GCellUM)

	// Capacity hotspots: rectangles with most routing capacity removed
	// on the lower half of the stack (macro blockages).
	for h := 0; h < spec.Hotspots; h++ {
		w := 2 + rng.Int32N(side/4+1)
		ht := 2 + rng.Int32N(side/4+1)
		x0 := rng.Int32N(side - w)
		y0 := rng.Int32N(side - ht)
		for l := 0; l < spec.Layers/2; l++ {
			for y := y0; y < y0+ht; y++ {
				for x := x0; x < x0+w; x++ {
					if g.Layers[l].Dir == grid.DirH {
						if x < side-1 {
							s := g.SegH(int32(l), y, x)
							g.Cap[s] *= 0.25
						}
					} else if y < side-1 {
						s := g.SegV(int32(l), x, y)
						g.Cap[s] *= 0.25
					}
				}
			}
		}
	}

	// Cells: clustered placement. A set of cluster centers; cells place
	// near a random center with exponential falloff, levels assigned
	// round-robin with jitter so nets can stay local.
	nl := &sta.Netlist{}
	nClusters := 4 + nCells/400
	centers := make([]geom.Pt, nClusters)
	for i := range centers {
		centers[i] = geom.Pt{X: rng.Int32N(side), Y: rng.Int32N(side)}
	}
	clamp := func(v int32) int32 {
		if v < 0 {
			return 0
		}
		if v >= side {
			return side - 1
		}
		return v
	}
	cellsPerLevel := nCells / spec.Levels
	if cellsPerLevel < 1 {
		cellsPerLevel = 1
	}
	for i := 0; i < nCells; i++ {
		c := centers[rng.IntN(nClusters)]
		dx := int32(rng.NormFloat64() * float64(side) / 10)
		dy := int32(rng.NormFloat64() * float64(side) / 10)
		lvl := int32(i / cellsPerLevel)
		if int(lvl) >= spec.Levels {
			lvl = int32(spec.Levels - 1)
		}
		nl.Cells = append(nl.Cells, sta.Cell{
			Pos:   geom.Pt{X: clamp(c.X + dx), Y: clamp(c.Y + dy)},
			Delay: 4 + rng.Float64()*8,
			Level: lvl,
			PI:    lvl == 0,
			PO:    int(lvl) == spec.Levels-1,
		})
	}

	// Index cells by level for sink selection.
	byLevel := make([][]int32, spec.Levels)
	for ci, c := range nl.Cells {
		byLevel[c.Level] = append(byLevel[c.Level], int32(ci))
	}

	// Nets: drivers drawn from non-final levels; sinks from strictly
	// higher levels, preferring nearby cells (locality radius grows
	// until enough candidates are found).
	driven := make([]bool, len(nl.Cells))
	for n := 0; n < spec.NNets; n++ {
		lvl := rng.IntN(spec.Levels - 1)
		cands := byLevel[lvl]
		if len(cands) == 0 {
			continue
		}
		drv := cands[rng.IntN(len(cands))]
		k := sinkCount(rng)
		sinks := pickSinks(rng, nl, byLevel, drv, lvl, k, side)
		if len(sinks) == 0 {
			continue
		}
		for _, s := range sinks {
			driven[s] = true
		}
		nl.Nets = append(nl.Nets, sta.Net{Driver: drv, Sinks: sinks})
	}
	// Cover undriven non-PI cells with 2-pin nets from level-0 cells.
	for ci, c := range nl.Cells {
		if c.PI || driven[ci] {
			continue
		}
		lvl := int(c.Level) - 1
		if lvl < 0 {
			lvl = 0
		}
		cands := byLevel[rng.IntN(lvl+1)]
		if len(cands) == 0 {
			continue
		}
		drv := cands[rng.IntN(len(cands))]
		nl.Nets = append(nl.Nets, sta.Net{Driver: drv, Sinks: []int32{int32(ci)}})
		driven[ci] = true
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("chipgen: generated netlist invalid: %w", err)
	}

	// Clock: fraction of the estimated unrouted critical path, using an
	// average per-net delay of ~8 gcells on a mid-stack layer.
	mid := tech.Layers[len(tech.Layers)/2].Wires[0]
	perNet := dly.DelayPerUM(mid.RPerUM, mid.CPerUM, tech.Buf) * tech.GCellUM * 8
	clk := spec.ClkTightness * sta.LongestLevelPath(nl, perNet)

	return &Chip{
		Spec: spec, G: g, Tech: tech, NL: nl,
		ClkPeriod: clk,
		DBif:      tech.Dbif(),
	}, nil
}

// pickSinks selects up to k distinct sinks for drv on levels above lvl,
// preferring cells within a growing locality radius.
func pickSinks(rng *rand.Rand, nl *sta.Netlist, byLevel [][]int32, drv int32, lvl, k int, side int32) []int32 {
	pos := nl.Cells[drv].Pos
	var sinks []int32
	used := map[int32]bool{drv: true}
	radius := side / 8
	if radius < 4 {
		radius = 4
	}
	for attempts := 0; len(sinks) < k && attempts < k*30; attempts++ {
		hi := lvl + 1 + rng.IntN(len(byLevel)-lvl-1)
		cands := byLevel[hi]
		if len(cands) == 0 {
			continue
		}
		s := cands[rng.IntN(len(cands))]
		if used[s] {
			continue
		}
		if geom.L1(pos, nl.Cells[s].Pos) > int64(radius) {
			// Occasionally allow a long net; otherwise grow the radius
			// slowly so dense specs stay local.
			if rng.IntN(8) != 0 {
				radius += radius / 8
				continue
			}
		}
		used[s] = true
		sinks = append(sinks, s)
	}
	return sinks
}
