package viz

import (
	"strings"
	"testing"

	"costdist/internal/core"
	"costdist/internal/dly"
	"costdist/internal/grid"
	"costdist/internal/nets"
)

func instance(t *testing.T) (*nets.Instance, *nets.RTree, []core.TraceEvent) {
	t.Helper()
	tech := dly.DefaultTech(4)
	g := grid.New(16, 16, tech.BuildLayers(), tech.GCellUM)
	in := &nets.Instance{
		G: g, C: grid.NewCosts(g),
		Root: g.At(1, 1, 0),
		Sinks: []nets.Sink{
			{V: g.At(12, 3, 0), W: 0.05},
			{V: g.At(8, 13, 0), W: 0.01},
		},
		Win: g.FullWindow(), Seed: 3,
	}
	var events []core.TraceEvent
	tr, err := core.SolveTraced(in, core.DefaultOptions(), func(e core.TraceEvent) {
		events = append(events, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	return in, tr, events
}

func TestSVGWellFormed(t *testing.T) {
	s := New(100, 60)
	s.Line(0, 0, 50, 50, "red", 2)
	s.Circle(10, 10, 3, "black", "none")
	s.RectXY(5, 5, 10, 10, "blue", "none", 0.5)
	s.Text(1, 12, 10, "hello")
	out := s.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatalf("malformed document: %q...", out[:40])
	}
	for _, want := range []string{"<line", "<circle", "<rect", "<text", "hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s", want)
		}
	}
	if strings.Count(out, "<svg") != 1 {
		t.Fatal("nested svg")
	}
}

func TestLayerColorsCycle(t *testing.T) {
	seen := map[string]bool{}
	for l := 0; l < 15; l++ {
		seen[LayerColor(l)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("too few distinct layer colors: %d", len(seen))
	}
	if LayerColor(0) != LayerColor(15) {
		t.Fatal("colors must cycle")
	}
}

func TestRenderTreeContainsAllElements(t *testing.T) {
	in, tr, _ := instance(t)
	out := RenderTree(in, tr, 12)
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("not svg")
	}
	// Root square (red), two sink circles, and at least one wire line.
	if !strings.Contains(out, `fill="red"`) {
		t.Fatal("no root marker")
	}
	if strings.Count(out, "<circle") < 2 {
		t.Fatal("missing sink markers")
	}
	if strings.Count(out, "<line") < 5 {
		t.Fatal("suspiciously few wire segments")
	}
}

func TestRenderTraceFrames(t *testing.T) {
	in, _, events := instance(t)
	frames := RenderTraceFrames(in, events, 12)
	if len(frames) != len(events) {
		t.Fatalf("%d frames for %d events", len(frames), len(events))
	}
	for i, f := range frames {
		if !strings.Contains(f, "iteration") {
			t.Fatalf("frame %d missing caption", i)
		}
	}
	// Later frames show previously settled paths in grey.
	if len(frames) >= 2 && !strings.Contains(frames[len(frames)-1], "#999") {
		t.Fatal("no settled-path rendering in later frames")
	}
}
