// Package viz renders routing structures as SVG for the paper's figures
// (Figure 1: bifurcation structure comparison; Figure 3: the course of
// the cost-distance algorithm with growing search disks and merges).
// Only the plane projection is drawn; layers are color-coded.
package viz

import (
	"fmt"
	"strings"

	"costdist/internal/core"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
)

// SVG is a minimal SVG document builder.
type SVG struct {
	buf  strings.Builder
	W, H float64
}

// New returns an SVG canvas of the given size (user units).
func New(w, h float64) *SVG {
	s := &SVG{W: w, H: h}
	fmt.Fprintf(&s.buf, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	s.buf.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	return s
}

// Line draws a line segment.
func (s *SVG) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.buf, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f" stroke-linecap="round"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// Circle draws a circle.
func (s *SVG) Circle(cx, cy, r float64, fill, stroke string) {
	fmt.Fprintf(&s.buf, `<circle cx="%.1f" cy="%.1f" r="%.2f" fill="%s" stroke="%s"/>`+"\n", cx, cy, r, fill, stroke)
}

// RectXY draws a rectangle.
func (s *SVG) RectXY(x, y, w, h float64, fill, stroke string, opacity float64) {
	fmt.Fprintf(&s.buf, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, w, h, fill, stroke, opacity)
}

// Text places a label.
func (s *SVG) Text(x, y float64, size float64, txt string) {
	fmt.Fprintf(&s.buf, `<text x="%.1f" y="%.1f" font-size="%.1f" font-family="sans-serif">%s</text>`+"\n", x, y, size, txt)
}

// String finalizes and returns the document.
func (s *SVG) String() string {
	return s.buf.String() + "</svg>\n"
}

var layerColors = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	"#aec7e8", "#ffbb78", "#98df8a", "#ff9896", "#c5b0d5",
}

// LayerColor returns the drawing color for a layer.
func LayerColor(l int) string { return layerColors[l%len(layerColors)] }

// RenderTree draws an embedded tree: wire steps as layer-colored lines,
// vias as small squares, root as a red square, sinks as black dots with
// radius scaled by weight.
func RenderTree(in *nets.Instance, tr *nets.RTree, cell float64) string {
	g := in.G
	s := New(float64(g.NX)*cell+20, float64(g.NY)*cell+20)
	px := func(p geom.Pt) (float64, float64) {
		return 10 + (float64(p.X)+0.5)*cell, 10 + (float64(p.Y)+0.5)*cell
	}
	for _, st := range tr.Steps {
		if st.Arc.Via {
			x, y := px(g.Pt(st.From))
			s.RectXY(x-cell/6, y-cell/6, cell/3, cell/3, "#444", "none", 1)
			continue
		}
		x1, y1 := px(g.Pt(st.From))
		x2, y2 := px(g.Pt(st.Arc.To))
		s.Line(x1, y1, x2, y2, LayerColor(int(st.Arc.L)), cell/4)
	}
	maxW := 1e-12
	for _, sk := range in.Sinks {
		if sk.W > maxW {
			maxW = sk.W
		}
	}
	for _, sk := range in.Sinks {
		x, y := px(g.Pt(sk.V))
		r := cell/5 + cell/3*(sk.W/maxW)
		s.Circle(x, y, r, "black", "none")
	}
	x, y := px(g.Pt(in.Root))
	s.RectXY(x-cell/3, y-cell/3, cell*2/3, cell*2/3, "red", "none", 1)
	return s.String()
}

// RenderTraceFrames draws one SVG per algorithm iteration in the style
// of the paper's Figure 3: active terminals in blue with search disks,
// the new connection path in red, the root in red.
func RenderTraceFrames(in *nets.Instance, events []core.TraceEvent, cell float64) []string {
	g := in.G
	px := func(p geom.Pt) (float64, float64) {
		return 10 + (float64(p.X)+0.5)*cell, 10 + (float64(p.Y)+0.5)*cell
	}
	var frames []string
	var settledPaths [][]grid.V
	for _, ev := range events {
		s := New(float64(g.NX)*cell+20, float64(g.NY)*cell+20)
		// Previously committed connections in grey.
		for _, path := range settledPaths {
			for i := 1; i < len(path); i++ {
				x1, y1 := px(g.Pt(path[i-1]))
				x2, y2 := px(g.Pt(path[i]))
				s.Line(x1, y1, x2, y2, "#999", cell/5)
			}
		}
		// Current connection in red.
		for i := 1; i < len(ev.Path); i++ {
			x1, y1 := px(g.Pt(ev.Path[i-1]))
			x2, y2 := px(g.Pt(ev.Path[i]))
			s.Line(x1, y1, x2, y2, "#d62728", cell/4)
		}
		// Search disk of the initiating component (area ∝ labels).
		ux, uy := px(ev.PosU)
		r := cell * 0.5 * (1 + float64(ev.Labeled)/20)
		s.Circle(ux, uy, r, "none", "#1f77b4")
		// Terminals.
		maxW := 1e-12
		for _, sk := range in.Sinks {
			if sk.W > maxW {
				maxW = sk.W
			}
		}
		for _, sk := range in.Sinks {
			x, y := px(g.Pt(sk.V))
			s.Circle(x, y, cell/5+cell/3*(sk.W/maxW), "black", "none")
		}
		rx, ry := px(g.Pt(in.Root))
		s.RectXY(rx-cell/3, ry-cell/3, cell*2/3, cell*2/3, "red", "none", 1)
		nx, ny := px(ev.NewRep)
		s.Circle(nx, ny, cell/3, "none", "#2ca02c")
		s.Text(12, 14, 11, fmt.Sprintf("iteration %d%s", ev.Iter, map[bool]string{true: " (root connection)", false: ""}[ev.ToRoot]))
		frames = append(frames, s.String())
		settledPaths = append(settledPaths, ev.Path)
	}
	return frames
}
