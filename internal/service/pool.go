package service

import (
	"context"
	"sync"

	"costdist"
)

// pool is the sharded worker pool behind every endpoint. Each shard
// owns a bounded task queue and a fixed set of workers, and every
// worker owns one costdist.Solver whose scratch arena is recycled
// across requests — the same allocation-free hot path SolveBatch uses,
// kept warm for the lifetime of the server. Requests shard by their
// cache digest, so repeated submissions of the same instance land on
// the same arena (already grown to that instance's working set).
type pool struct {
	shards []*shard
	ctx    context.Context
	wg     sync.WaitGroup
}

type shard struct {
	tasks chan func(*costdist.Solver)
}

// newPool starts shards×workersPerShard workers under ctx; cancelling
// ctx stops every worker after its current task.
func newPool(ctx context.Context, shards, workersPerShard, queueDepth int) *pool {
	p := &pool{ctx: ctx}
	for i := 0; i < shards; i++ {
		sh := &shard{tasks: make(chan func(*costdist.Solver), queueDepth)}
		p.shards = append(p.shards, sh)
		for w := 0; w < workersPerShard; w++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				solver := costdist.NewSolver()
				for {
					select {
					case <-ctx.Done():
						return
					case task := <-sh.tasks:
						task(solver)
					}
				}
			}()
		}
	}
	return p
}

// submit enqueues a task on the shard selected by key. It never blocks:
// a full shard queue returns false (the caller answers 503), and a
// stopped pool returns false as well.
func (p *pool) submit(key uint64, task func(*costdist.Solver)) bool {
	if p.ctx.Err() != nil {
		return false
	}
	sh := p.shards[key%uint64(len(p.shards))]
	select {
	case sh.tasks <- task:
		return true
	default:
		return false
	}
}

// depth is the number of queued-but-unclaimed tasks across all shards.
func (p *pool) depth() int {
	n := 0
	for _, sh := range p.shards {
		n += len(sh.tasks)
	}
	return n
}

// wait blocks until every worker has exited (call after cancelling the
// pool context).
func (p *pool) wait() { p.wg.Wait() }
