// Package service turns the costdist solver library into a long-running
// routing service: an HTTP JSON API backed by a bounded job queue and a
// sharded worker pool that reuses the library's scratch-arena machinery
// per worker, with a content-addressed LRU result cache in front. All
// solving goes through the same public costdist entry points as library
// callers, so service responses are bit-identical to library results —
// the approximation guarantees certified by the differential harness
// carry over to every response.
//
// Endpoints:
//
//	POST   /v1/solve            solve one cost-distance instance (sync)
//	POST   /v1/route            start a chip routing job (async, 202)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result job result (200 once done)
//	GET    /v1/jobs/{id}/events per-wave telemetry stream (SSE)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /healthz             liveness + queue depth
//	GET    /metrics             Prometheus text metrics
//	GET    /debug/obs           flight-recorder span dump (JSON)
package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"costdist"
	"costdist/internal/obs"
)

// maxBodyBytes bounds request bodies; instances big enough to exceed it
// should go through the library, not JSON-over-HTTP.
const maxBodyBytes = 16 << 20

// maxInstanceVertices bounds nx·ny·layers of a solve request. A
// ~100-byte body can otherwise demand a multi-GB grid allocation on
// the handler goroutine — before the pool's backpressure applies — so
// network input gets a hard cap the trusted CLI paths never needed.
const maxInstanceVertices = 1 << 24

// Route request caps, for the same reason: tiny bodies must not be
// able to demand unbounded goroutines (threads), netlist sizes (scale)
// or runtimes (waves). Scale 1.0 is the paper-size suite — the largest
// legitimate workload.
const (
	maxRouteThreads = 32
	maxRouteWaves   = 64
	maxRouteScale   = 1.0
)

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// Shards is the number of worker-pool shards; requests land on the
	// shard of their cache digest, so hot instances hit a warm arena.
	// Default: NumCPU, capped at 16.
	Shards int
	// WorkersPerShard is the solver goroutine count per shard, one
	// scratch arena each. Default: 1.
	WorkersPerShard int
	// QueueDepth bounds each shard's task queue; a full queue answers
	// 503 instead of buffering unboundedly. Default: 128.
	QueueDepth int
	// RouteWorkers sizes the separate pool that runs asynchronous route
	// jobs. Long-running routes never share a queue or worker with the
	// bounded-latency synchronous solves, so one big job cannot starve
	// a slice of the solve keyspace. Default: 2.
	RouteWorkers int
	// CacheBytes is the result cache's byte budget (≤ 0 disables it
	// after defaulting; the zero value still means the default).
	// Default: 64 MiB.
	CacheBytes int64
	// CheckpointBytes is the byte budget of the warm-start checkpoint
	// store: every finished route job retains its marshaled RouterState
	// under this budget (evicted LRU), so later jobs can name it as
	// base_job and reroute only what changed. ≤ 0 after defaulting
	// disables retention (every warm start misses). Default: 128 MiB.
	CheckpointBytes int64
	// DefaultMethod is the oracle used when a request does not name
	// one. Default: "cd".
	DefaultMethod string
	// DefaultRepairTol, when > 0, enables the incremental engine's
	// topology-repair rung for route requests that do not carry their
	// own repair_tol (see RouteRequest.RepairTol). The zero value keeps
	// the rung off, matching the library default.
	DefaultRepairTol float64
	// FlightSpans caps the flight-recorder ring holding the most recent
	// telemetry spans across all route jobs, dumped at GET /debug/obs.
	// Default: obs.DefaultRingSpans.
	FlightSpans int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
		if c.Shards > 16 {
			c.Shards = 16
		}
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.RouteWorkers <= 0 {
		c.RouteWorkers = 2
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 128 << 20
	}
	if c.DefaultMethod == "" {
		c.DefaultMethod = "cd"
	}
	if c.FlightSpans <= 0 {
		c.FlightSpans = obs.DefaultRingSpans
	}
	return c
}

// Server is the routing service. Create with New, mount Handler() on an
// http.Server, stop with Shutdown.
type Server struct {
	cfg   Config
	cache *resultCache
	// checkpoints retains the marshaled RouterState of finished route
	// jobs, keyed by the job's content address (so identical requests
	// share one retained checkpoint). Bounded by CheckpointBytes,
	// evicted LRU.
	checkpoints *resultCache
	jobs        *jobRegistry
	// pool serves synchronous solves (sharded by cache digest);
	// routePool runs asynchronous route jobs, so unbounded jobs never
	// queue ahead of bounded-latency solves.
	pool      *pool
	routePool *pool
	met       *metrics
	// flight is the crash-forensics ring: the most recent telemetry
	// spans of every route job, dumped at GET /debug/obs.
	flight *obs.Ring
	mux    *http.ServeMux
	ctx    context.Context // root of every job/task context
	cancel context.CancelFunc
	// inflight maps solve cache keys to a channel closed when the
	// leading solve for that key completes — concurrent identical
	// misses wait for the leader instead of re-solving (singleflight).
	inflight sync.Map
	// routeInflight maps route cache keys to the *job currently
	// computing them; identical route requests submitted meanwhile
	// become followers that mirror the leader's outcome instead of
	// re-running the whole route.
	routeInflight sync.Map
}

// New validates the configuration and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if _, ok := costdist.MethodByName(cfg.DefaultMethod); !ok {
		return nil, fmt.Errorf("service: unknown default method %q (valid: %v)",
			cfg.DefaultMethod, costdist.MethodNames())
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		cache:       newResultCache(cfg.CacheBytes),
		checkpoints: newResultCache(cfg.CheckpointBytes),
		jobs:        newJobRegistry(),
		met:         newMetrics(),
		flight:      obs.NewRing(cfg.FlightSpans),
		ctx:         ctx,
		cancel:      cancel,
	}
	s.pool = newPool(ctx, cfg.Shards, cfg.WorkersPerShard, cfg.QueueDepth)
	s.routePool = newPool(ctx, 1, cfg.RouteWorkers, cfg.QueueDepth)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/route", s.handleRoute)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/obs", s.handleDebugObs)
	return s, nil
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes the result-cache counters (tests and operators).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Shutdown cancels every running job and queued task — the cancellation
// propagates into RouteChipCtx between nets, so workers stop within one
// solve latency — then waits for the workers to exit, bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	s.jobs.cancelAll()
	done := make(chan struct{})
	go func() {
		s.pool.wait()
		s.routePool.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- request/response schemas ---

// SolveOptions are the per-request solver knobs that participate in the
// cache key. Unset fields take the library defaults.
type SolveOptions struct {
	// PDAlpha and SLEps parameterize the PD and SL baselines.
	PDAlpha *float64 `json:"pd_alpha,omitempty"`
	SLEps   *float64 `json:"sl_eps,omitempty"`
}

// SolveRequest is the POST /v1/solve body. A bare InstanceJSON document
// (no "instance" key) is also accepted — the whole body is then the
// instance and the method defaults to the server's DefaultMethod, so
// the files under examples/instances can be POSTed as-is.
type SolveRequest struct {
	Method   string          `json:"method,omitempty"`
	Options  SolveOptions    `json:"options,omitempty"`
	Instance json.RawMessage `json:"instance,omitempty"`
}

// RouteRequest is the POST /v1/route body: a chip of the synthetic
// suite plus routing options. Defaults: scale 0.01, the server's
// default oracle, the library's default wave count, seed 1, one routing
// thread per job (the pool provides the parallelism across jobs).
//
// BaseJob names an earlier route job to warm-start from: the server
// restores that job's retained checkpoint, diffs the (possibly
// perturbed) chip against it and re-solves only the invalidated nets.
// A missing, evicted or grid-incompatible base checkpoint falls back
// to a cold route, counted in
// routed_warm_starts_total{outcome="miss"}; such fallback results are
// served but never cached (their key includes base_job, and the cache
// must stay a pure function of the request). PerturbFrac
// applies an ECO-style perturbation to the generated chip before
// routing (PerturbSeed drives it; see costdist.PerturbChip), which is
// how a client describes "the same chip, slightly changed" against the
// deterministic synthetic suite.
type RouteRequest struct {
	Chip        string  `json:"chip"`
	Scale       float64 `json:"scale,omitempty"`
	Oracle      string  `json:"oracle,omitempty"`
	Waves       int     `json:"waves,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	Threads     int     `json:"threads,omitempty"`
	Incremental bool    `json:"incremental,omitempty"`
	BaseJob     string  `json:"base_job,omitempty"`
	PerturbFrac float64 `json:"perturb_frac,omitempty"`
	PerturbSeed uint64  `json:"perturb_seed,omitempty"`
	// RepairTol sets RouterOptions.RepairTol — the escalation tolerance
	// of the incremental engine's topology-repair rung. Absent means
	// the server's DefaultRepairTol (off unless configured), keeping
	// legacy request bodies on their legacy content addresses; negative
	// values normalize to absent (every "disabled" spelling shares one
	// cache key).
	RepairTol *float64 `json:"repair_tol,omitempty"`
}

// JobView is the job status representation returned by the jobs
// endpoints.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	if code >= 400 && code < 500 {
		s.met.badRequests.Add(1)
	}
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// --- /v1/solve ---

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	instanceDoc := []byte(req.Instance)
	if req.Instance == nil {
		instanceDoc = body // bare instance document
	}
	methodName := req.Method
	if methodName == "" {
		methodName = s.cfg.DefaultMethod
	}
	m, ok := costdist.MethodByName(methodName)
	if !ok {
		s.httpError(w, http.StatusUnprocessableEntity,
			"unknown method %q (valid: %v)", methodName, costdist.MethodNames())
		return
	}
	canonical, err := costdist.CanonicalInstanceJSON(instanceDoc)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var dims costdist.InstanceJSON
	if err := json.Unmarshal(canonical, &dims); err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Stepwise so the product cannot overflow int64 before the check.
	plane := int64(dims.NX) * int64(dims.NY)
	if dims.Layers < 2 || dims.Layers > 1024 || plane < 0 ||
		plane > maxInstanceVertices || plane*int64(dims.Layers) > maxInstanceVertices {
		s.httpError(w, http.StatusUnprocessableEntity,
			"instance grid %d×%d×%d exceeds the service limit of %d vertices",
			dims.NX, dims.NY, dims.Layers, maxInstanceVertices)
		return
	}

	ropt := costdist.DefaultRouterOptions()
	if req.Options.PDAlpha != nil {
		ropt.PDAlpha = *req.Options.PDAlpha
	}
	if req.Options.SLEps != nil {
		ropt.SLEps = *req.Options.SLEps
	}
	key := solveDigest(canonical, m, ropt)
	if cached, ok := s.cache.Get(key); ok {
		s.met.solveRequests.Add(1)
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(cached)
		s.met.solveLatency.Observe(time.Since(start).Seconds())
		return
	}

	in, err := costdist.ParseInstance(canonical)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.met.solveRequests.Add(1)

	// Singleflight: the first requester of a key is the leader and
	// solves; concurrent identical misses wait for the leader's channel
	// and serve from cache, so a hot instance is never solved twice no
	// matter how many workers a shard has.
	flight := make(chan struct{})
	if prev, loaded := s.inflight.LoadOrStore(key, flight); loaded {
		select {
		case <-prev.(chan struct{}):
			if cached, ok := s.cache.Recheck(key); ok {
				w.Header().Set("X-Cache", "hit")
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write(cached)
				s.met.solveLatency.Observe(time.Since(start).Seconds())
				return
			}
			// The leader failed; solve ourselves, without holding a
			// flight slot (errors are rare enough not to re-coordinate).
			flight = nil
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			s.httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
	}
	release := func() {
		if flight != nil {
			s.inflight.Delete(key)
			close(flight)
		}
	}

	type outcome struct {
		body   []byte
		err    error
		cached bool
	}
	done := make(chan outcome, 1)
	submitted := s.pool.submit(shardKey(key), func(solver *costdist.Solver) {
		defer release()
		if cached, ok := s.cache.Recheck(key); ok {
			done <- outcome{body: cached, cached: true}
			return
		}
		tr, err := solver.Solve(in, m, ropt)
		if err != nil {
			done <- outcome{err: err}
			return
		}
		out, err := costdist.MarshalTree(in, tr)
		if err != nil {
			done <- outcome{err: err}
			return
		}
		s.cache.Put(key, out)
		s.met.chargeOracle(m.Name(), 1)
		done <- outcome{body: out}
	})
	if !submitted {
		release()
		s.met.queueRejects.Add(1)
		s.httpError(w, http.StatusServiceUnavailable, "solve queue full")
		return
	}
	select {
	case o := <-done:
		if o.err != nil {
			s.httpError(w, http.StatusInternalServerError, "solve: %v", o.err)
			return
		}
		if o.cached {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(o.body)
		s.met.solveLatency.Observe(time.Since(start).Seconds())
	case <-r.Context().Done():
		// Client gone; the worker still completes and fills the cache.
	case <-s.ctx.Done():
		s.httpError(w, http.StatusServiceUnavailable, "server shutting down")
	}
}

// solveDigest is the content address of a solve: canonical instance
// bytes, the resolved method, and every option that can change the
// answer.
func solveDigest(canonical []byte, m costdist.Method, ropt costdist.RouterOptions) string {
	h := sha256.New()
	h.Write(canonical)
	fmt.Fprintf(h, "\x00%s\x00pd=%g;sl=%g", m.Name(), ropt.PDAlpha, ropt.SLEps)
	return hex.EncodeToString(h.Sum(nil))
}

func shardKey(digest string) uint64 {
	b, err := hex.DecodeString(digest[:16])
	if err != nil || len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// --- /v1/route and jobs ---

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req RouteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if req.Scale == 0 {
		req.Scale = 0.01
	}
	if req.Scale < 0 || req.Scale > maxRouteScale ||
		req.Waves < 0 || req.Waves > maxRouteWaves ||
		req.Threads < 0 || req.Threads > maxRouteThreads {
		s.httpError(w, http.StatusUnprocessableEntity,
			"route request out of bounds (scale ≤ %g, waves ≤ %d, threads ≤ %d)",
			maxRouteScale, maxRouteWaves, maxRouteThreads)
		return
	}
	if req.PerturbFrac < 0 || req.PerturbFrac > 1 {
		s.httpError(w, http.StatusUnprocessableEntity,
			"perturb_frac %g outside [0,1]", req.PerturbFrac)
		return
	}
	// Normalize the perturbation fields so equivalent spellings share a
	// content address: without a perturbation the seed is meaningless,
	// with one the zero seed means the default.
	if req.PerturbFrac == 0 {
		req.PerturbSeed = 0
	} else if req.PerturbSeed == 0 {
		req.PerturbSeed = 1
	}
	if req.Oracle == "" {
		req.Oracle = s.cfg.DefaultMethod
	}
	m, ok := costdist.MethodByName(req.Oracle)
	if !ok {
		s.httpError(w, http.StatusUnprocessableEntity,
			"unknown oracle %q (valid: %v)", req.Oracle, costdist.MethodNames())
		return
	}
	req.Oracle = m.Name()
	ropt := costdist.DefaultRouterOptions()
	if req.Waves > 0 {
		ropt.Waves = req.Waves
	}
	req.Waves = ropt.Waves
	if req.Seed == 0 {
		req.Seed = 1
	}
	ropt.Seed = req.Seed
	if req.Threads <= 0 {
		req.Threads = 1
	}
	ropt.Threads = req.Threads
	ropt.Incremental = req.Incremental
	// Repair tolerance: an explicit negative forces the rung off even
	// against a configured server default — the default applies only
	// when the request is silent. Negative spellings canonicalize to -1
	// (or to absent when there is no default to override, where the two
	// are indistinguishable) before the content address is taken.
	if req.RepairTol != nil && *req.RepairTol < 0 {
		if s.cfg.DefaultRepairTol > 0 {
			v := -1.0
			req.RepairTol = &v
		} else {
			req.RepairTol = nil
		}
	} else if req.RepairTol == nil && s.cfg.DefaultRepairTol > 0 {
		v := s.cfg.DefaultRepairTol
		req.RepairTol = &v
	}
	if req.RepairTol != nil {
		ropt.RepairTol = *req.RepairTol
	}

	spec, ok := costdist.ChipSpecByName(req.Chip, req.Scale)
	if !ok {
		specs := costdist.ChipSuite(req.Scale)
		names := make([]string, len(specs))
		for i := range specs {
			names[i] = specs[i].Name
		}
		s.httpError(w, http.StatusUnprocessableEntity,
			"unknown chip %q (valid: %v)", req.Chip, names)
		return
	}
	s.met.routeRequests.Add(1)

	// The resolved request is the route's content address: requests
	// that normalize identically share one cached result. Threads is
	// excluded — results are thread-count independent (locked by the
	// route determinism tests), so it must not split the cache. BaseJob
	// is included: a warm-started route is its own outcome (the trees
	// depend on the restored state), keyed by the base job's identity.
	kreq := req
	kreq.Threads = 0
	resolved, _ := json.Marshal(kreq)
	h := sha256.New()
	h.Write([]byte("route\x00"))
	h.Write(resolved)
	key := hex.EncodeToString(h.Sum(nil))

	jb := s.jobs.create(s.ctx, key)
	if cached, ok := s.cache.Get(key); ok {
		jb.finishShared(JobDone, cached, "")
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusAccepted, JobView{ID: jb.id, Status: JobDone})
		return
	}

	// Identical route already in flight: follow it instead of burning a
	// second worker on the same computation. The follower mirrors the
	// leader's terminal outcome (a cancelled or failed leader fails the
	// follower with a pointer to it; clients can resubmit). A leader
	// that already ended without a result — cancelled while queued,
	// failed — must not poison the key: take its slot over instead.
	for {
		lj, loaded := s.routeInflight.LoadOrStore(key, jb)
		if !loaded {
			break // we are the leader
		}
		leader := lj.(*job)
		if st, _, _ := leader.view(); st.terminal() && st != JobDone {
			if s.routeInflight.CompareAndSwap(key, lj, jb) {
				break // took over from the dead leader
			}
			continue // someone else took it; re-examine
		}
		go func() {
			select {
			case <-leader.done:
				st, res, errMsg := leader.view()
				if st == JobDone {
					jb.finishShared(JobDone, res, "")
				} else {
					jb.finish(JobFailed, nil,
						fmt.Sprintf("deduplicated onto %s which ended %s: %s", leader.id, st, errMsg))
				}
			case <-jb.done: // cancelled independently of the leader
			}
		}()
		w.Header().Set("X-Cache", "dedup")
		writeJSON(w, http.StatusAccepted, JobView{ID: jb.id, Status: JobQueued})
		return
	}

	fh := fnv.New64a()
	fh.Write([]byte(jb.id))
	submitted := s.routePool.submit(fh.Sum64(), func(*costdist.Solver) {
		// Delete only our own entry — a dead-leader takeover may have
		// already replaced it with a newer job.
		defer s.routeInflight.CompareAndDelete(key, jb)
		s.runRouteJob(jb, req, spec, m, ropt, key)
	})
	if !submitted {
		// The client never learns this job id; drop the entry rather
		// than leaving a phantom failed job in the registry gauges.
		s.routeInflight.CompareAndDelete(key, jb)
		jb.finish(JobCancelled, nil, "route queue full")
		s.jobs.remove(jb.id)
		s.met.queueRejects.Add(1)
		s.httpError(w, http.StatusServiceUnavailable, "route queue full")
		return
	}
	w.Header().Set("X-Cache", "miss")
	writeJSON(w, http.StatusAccepted, JobView{ID: jb.id, Status: JobQueued})
}

// runRouteJob executes one route job on a pool worker. Route jobs route
// through RouteChipCtx under the job context, so DELETE and shutdown
// abort between per-net solves. The route job's own Threads (default 1)
// stay inside this worker's slot; cross-request parallelism comes from
// the pool.
//
// Every successful job retains its marshaled checkpoint under the
// job's content address (bounded by CheckpointBytes, evicted LRU). A
// request naming a BaseJob warm-starts from that job's checkpoint when
// it is still retained; otherwise it falls back to a cold route and
// counts a warm-start miss.
func (s *Server) runRouteJob(job *job, req RouteRequest, spec costdist.ChipSpec, m costdist.Method, ropt costdist.RouterOptions, key string) {
	if st, _, _ := job.view(); st.terminal() {
		return // cancelled while queued
	}
	// Every route job records structured telemetry: the recorder feeds
	// the SSE stream and the per-stage histograms live (via OnWave), and
	// the flight ring plus per-oracle solve-latency histograms at the
	// end. Recording never changes results — the recorded wire form is
	// bit-identical to a recorder-less run except for the deterministic
	// per-wave series (locked by TestRecorderDoesNotPerturbRoute).
	rec := costdist.NewRecorder()
	cacheT0 := rec.Now()
	cached, ok := s.cache.Recheck(key)
	rec.Span(obs.StageCache, -1, -1, "recheck", cacheT0)
	if ok {
		// A prior leader for this key finished while we queued.
		job.finishShared(JobDone, cached, "")
		return
	}
	job.setStatus(JobRunning)
	start := time.Now()
	ropt.Recorder = rec
	rec.OnWave(func(ws obs.WaveSnapshot) {
		s.met.observeWaveStages(ws)
		job.events.publishWave(ws)
	})
	defer func() {
		// Flight-record the job's spans and charge the per-oracle
		// latency histograms — also for failed and cancelled jobs, where
		// the partial spans are exactly what triage needs.
		spans := rec.Spans()
		s.flight.Add(spans)
		for _, sp := range spans {
			if sp.Stage == obs.StageSolve && !sp.Detail && sp.Oracle != "" {
				s.met.observeOracleSolve(sp.Oracle, float64(sp.Dur)/1e9)
			}
		}
	}()
	fail := func(err error) {
		if errors.Is(err, context.Canceled) || job.ctx.Err() != nil {
			job.finish(JobCancelled, nil, context.Canceled.Error())
			return
		}
		job.finish(JobFailed, nil, err.Error())
	}
	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		fail(err)
		return
	}
	if req.PerturbFrac > 0 {
		chip, _, err = costdist.PerturbChip(chip, req.PerturbFrac, req.PerturbSeed)
		if err != nil {
			fail(err)
			return
		}
	}
	if err := job.ctx.Err(); err != nil {
		fail(err)
		return
	}
	retain := s.cfg.CheckpointBytes > 0
	base := s.baseCheckpoint(req.BaseJob, chip)
	var res *costdist.RouteResult
	var cp *costdist.RouterState
	switch {
	case base != nil:
		res, cp, err = costdist.RouteChipCtxFrom(job.ctx, base, chip, m, ropt)
	case retain:
		res, cp, err = costdist.RouteChipCtxCheckpoint(job.ctx, chip, m, ropt)
	default:
		// Checkpoint retention disabled: skip building and marshaling
		// multi-MB state nobody can ever warm-start from.
		res, err = costdist.RouteChipCtx(job.ctx, chip, m, ropt)
	}
	if err != nil {
		fail(err)
		return
	}
	if base != nil {
		s.met.netsReused.Add(res.Metrics.NetsSkipped)
	}
	s.met.netsRepaired.Add(res.Metrics.NetsRepaired)
	s.met.repairEscalated.Add(res.Metrics.RepairEscalated)
	out, err := costdist.MarshalRouteResult(chip, res)
	if err != nil {
		fail(err)
		return
	}
	if retain && cp != nil {
		// Checkpoints are stored gzip-compressed: the marshaled state is
		// mostly repetitive tree-step JSON, so compression multiplies the
		// number of base jobs the byte budget can retain.
		cpT0 := rec.Now()
		blob, err := costdist.MarshalCheckpoint(cp)
		rec.Span(obs.StageCheckpoint, -1, -1, "marshal", cpT0)
		if err == nil {
			gz := gzipBytes(blob)
			s.met.checkpointRawBytes.Add(int64(len(blob)))
			s.met.checkpointGzBytes.Add(int64(len(gz)))
			s.checkpoints.Put(key, gz)
		}
	}
	// A warm request that fell back cold (base checkpoint missing or
	// incompatible) must not populate the result cache: its key
	// includes base_job, and pinning the cold outcome there would keep
	// serving it even after the base state becomes available again —
	// the cache must only ever hold values that are a pure function of
	// the request.
	if req.BaseJob == "" || base != nil {
		s.cache.Put(key, out)
	}
	for name, n := range res.Metrics.SolvesByOracle {
		s.met.chargeOracle(name, n)
	}
	s.met.jobLatency.Observe(time.Since(start).Seconds())
	job.finish(JobDone, out, "")
}

// baseCheckpoint resolves a warm-start request: the named job's
// retained checkpoint, unmarshaled and verified compatible with the
// chip about to be routed, or nil (counting a miss) when the job is
// unknown, its checkpoint was evicted or fails to decode, or the
// checkpoint binds a different grid (e.g. a base job at another
// scale). An empty id is a cold request and counts nothing.
func (s *Server) baseCheckpoint(baseJob string, chip *costdist.Chip) *costdist.RouterState {
	if baseJob == "" {
		return nil
	}
	miss := func() *costdist.RouterState {
		s.met.warmStartMisses.Add(1)
		return nil
	}
	bj, ok := s.jobs.get(baseJob)
	if !ok {
		return miss()
	}
	gz, ok := s.checkpoints.Get(bj.ckey)
	if !ok {
		return miss()
	}
	blob, err := gunzipBytes(gz)
	if err != nil {
		return miss()
	}
	st, err := costdist.UnmarshalCheckpoint(blob)
	if err != nil {
		return miss()
	}
	if err := st.CompatibleWith(chip.G); err != nil {
		return miss()
	}
	s.met.warmStartHits.Add(1)
	return st
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st, _, errMsg := job.view()
	writeJSON(w, http.StatusOK, JobView{ID: job.id, Status: st, Error: errMsg})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st, result, errMsg := job.view()
	switch st {
	case JobDone:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(result)
	case JobFailed:
		s.httpError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case JobCancelled:
		writeJSON(w, http.StatusConflict, JobView{ID: job.id, Status: st, Error: errMsg})
	default:
		writeJSON(w, http.StatusAccepted, JobView{ID: job.id, Status: st})
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	// Cancel the context (stops a running route between nets) and run
	// the terminal transition; if the job already finished, finish is a
	// no-op and the response reports the real final status.
	job.cancel()
	job.finish(JobCancelled, nil, "cancelled by client")
	st, _, errMsg := job.view()
	writeJSON(w, http.StatusOK, JobView{ID: job.id, Status: st, Error: errMsg})
}

// --- health + metrics ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": s.pool.depth() + s.routePool.depth(),
		"jobs":        s.jobs.statusCounts(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, renderMetrics(s.met, s.cache.Stats(), s.checkpoints.Stats(),
		s.pool.depth()+s.routePool.depth(), s.jobs.statusCounts()))
}

// handleDebugObs dumps the flight-recorder ring: the most recent
// telemetry spans across all route jobs, oldest first, for post-hoc
// triage of a wedged or slow deployment without having had tracing
// enabled in advance.
func (s *Server) handleDebugObs(w http.ResponseWriter, _ *http.Request) {
	spans, total := s.flight.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity":    s.flight.Capacity(),
		"total_spans": total,
		"retained":    len(spans),
		"spans":       spans,
	})
}
