package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// readSSE consumes a text/event-stream body until EOF, returning the
// (event-name, data) frames in arrival order.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != nil {
				evs = append(evs, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			cur.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = append([]byte(nil), line[len("data: "):]...)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return evs
}

// The SSE stream of a multi-wave route job delivers one wave event per
// wave with strictly increasing wave indices, then a final done event
// whose metrics section matches the stored result byte-for-byte.
func TestRouteJobEventStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jv := submitRoute(t, ts.URL, `{"chip":"c1","scale":0.002,"waves":3,"oracle":"cd"}`)

	// Subscribe immediately — while the job runs — so the test also
	// covers live consumption, not only post-completion replay.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	evs := readSSE(t, resp)

	if len(evs) < 2 {
		t.Fatalf("got %d events, want at least one wave plus done", len(evs))
	}
	last := evs[len(evs)-1]
	if last.name != "done" {
		t.Fatalf("final event is %q, want done", last.name)
	}
	waves := evs[:len(evs)-1]
	if len(waves) != 3 {
		t.Fatalf("got %d wave events for a 3-wave route", len(waves))
	}
	prev := -1
	for _, ev := range waves {
		if ev.name != "wave" {
			t.Fatalf("unexpected event %q before done", ev.name)
		}
		var we waveEvent
		if err := json.Unmarshal(ev.data, &we); err != nil {
			t.Fatalf("wave event data %s: %v", ev.data, err)
		}
		if we.Wave <= prev {
			t.Fatalf("wave indices not strictly increasing: %d after %d", we.Wave, prev)
		}
		prev = we.Wave
		if we.Objective <= 0 {
			t.Fatalf("wave %d has no objective: %s", we.Wave, ev.data)
		}
		if len(we.StageNs) == 0 {
			t.Fatalf("wave %d has no stage timings: %s", we.Wave, ev.data)
		}
	}

	// The done event's metrics must agree with the result endpoint.
	result := waitResult(t, ts.URL, jv.ID)
	var res struct {
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(result, &res); err != nil {
		t.Fatal(err)
	}
	var de doneEvent
	if err := json.Unmarshal(last.data, &de); err != nil {
		t.Fatal(err)
	}
	if de.Status != JobDone {
		t.Fatalf("done event status %q", de.Status)
	}
	// The stored result is indented; SSE frames are compact. Compare
	// modulo whitespace.
	var want bytes.Buffer
	if err := json.Compact(&want, res.Metrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(de.Metrics, want.Bytes()) {
		t.Fatalf("done event metrics differ from stored result:\n%s\nvs\n%s", de.Metrics, want.Bytes())
	}

	// A subscriber attaching after completion replays the identical
	// history.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	evs2 := readSSE(t, resp2)
	if len(evs2) != len(evs) {
		t.Fatalf("replay delivered %d events, live stream %d", len(evs2), len(evs))
	}
	for i := range evs {
		if evs[i].name != evs2[i].name || !bytes.Equal(evs[i].data, evs2[i].data) {
			t.Fatalf("replay event %d differs from live event", i)
		}
	}
}

// A subscriber that connects and never reads must not stall the route
// job: publishing is non-blocking, so the job completes while the
// stalled client's frames sit in its handler's history cursor.
func TestStalledSubscriberDoesNotBlockJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jv := submitRoute(t, ts.URL, `{"chip":"c1","scale":0.002,"waves":3,"oracle":"cd"}`)

	// Open the stream and then never read from it. The response body
	// stays unconsumed until the deferred close.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The job must reach a terminal state regardless of the stalled
	// consumer; waitResult polls with its own deadline.
	done := make(chan []byte, 1)
	go func() { done <- waitResult(t, ts.URL, jv.ID) }()
	select {
	case result := <-done:
		if len(result) == 0 {
			t.Fatal("empty result")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("route job did not complete while a subscriber was stalled")
	}
}

// Events for an unknown job 404 like the other job endpoints.
func TestEventsUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// A failed job's stream terminates with a done event carrying the
// failure status, so consumers never hang on error paths.
func TestEventStreamOnCancelledJob(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Create a job and cancel it before it can be picked up by using
	// the registry directly — the HTTP cancel path is exercised
	// elsewhere; here only the stream's terminal behavior matters.
	jb := s.jobs.create(s.ctx, "test-key")
	jb.finish(JobCancelled, nil, "cancelled by test")

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jb.id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, resp)
	if len(evs) != 1 || evs[0].name != "done" {
		t.Fatalf("got %d events (%v), want exactly one done event", len(evs), evs)
	}
	var de doneEvent
	if err := json.Unmarshal(evs[0].data, &de); err != nil {
		t.Fatal(err)
	}
	if de.Status != JobCancelled || de.Error == "" {
		t.Fatalf("done event %s, want cancelled with error", evs[0].data)
	}
}
