package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"costdist"
)

// submitRoute posts a route request and returns the created job view.
func submitRoute(t *testing.T, url string, body string) JobView {
	t.Helper()
	resp := post(t, url+"/v1/route", []byte(body))
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("route submit: status %d: %s", resp.StatusCode, b)
	}
	var jv JobView
	if err := json.Unmarshal(b, &jv); err != nil {
		t.Fatal(err)
	}
	return jv
}

// waitResult polls a job to completion and returns its result body.
func waitResult(t *testing.T, url, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobView
		if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == JobDone {
			break
		}
		if st.Status.terminal() {
			t.Fatalf("job %s ended %s: %s", id, st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, b)
	}
	return b
}

// resultMetrics decodes the metrics row of a marshaled route result.
func resultMetrics(t *testing.T, body []byte) costdist.RouteMetricsJSON {
	t.Helper()
	var out struct {
		Metrics costdist.RouteMetricsJSON `json:"metrics"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Metrics
}

// A base_job warm start must reuse the retained checkpoint: the
// perturbed rerun skips most nets, reports the warm-start hit in
// /metrics, and its result is byte-identical to the library
// RouteChipFrom path with the same inputs.
func TestRouteWarmStartFromBaseJob(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	cold := submitRoute(t, ts.URL, `{"chip":"c1","scale":0.002,"waves":2,"oracle":"cd"}`)
	coldBody := waitResult(t, ts.URL, cold.ID)
	coldMetrics := resultMetrics(t, coldBody)

	warm := submitRoute(t, ts.URL,
		`{"chip":"c1","scale":0.002,"waves":2,"oracle":"cd","base_job":"`+cold.ID+`","perturb_frac":0.05,"perturb_seed":9}`)
	warmBody := waitResult(t, ts.URL, warm.ID)
	warmMetrics := resultMetrics(t, warmBody)

	if warmMetrics.NetsSkipped == 0 {
		t.Fatalf("warm start skipped no nets: %+v", warmMetrics)
	}
	if warmMetrics.NetsSolved >= coldMetrics.NetsSolved {
		t.Fatalf("warm start saved nothing: %d solves vs cold %d",
			warmMetrics.NetsSolved, coldMetrics.NetsSolved)
	}

	// Library reference: same chip, same perturbation, warm-started
	// from the cold run's checkpoint.
	spec := chipByName(t, 0.002, "c1")
	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := costdist.DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 1
	opt.Seed = 1
	// The service records telemetry on every route; the per-wave series
	// it adds to the wire form are deterministic, so a recorded
	// reference run reproduces the service bytes exactly.
	opt.Recorder = costdist.NewRecorder()
	_, st, err := costdist.RouteChipCheckpoint(chip, costdist.CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	pert, _, err := costdist.PerturbChip(chip, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh recorder for the warm leg — the service creates one per
	// job, and a reused recorder would accumulate the cold run's waves.
	opt.Recorder = costdist.NewRecorder()
	res, _, err := costdist.RouteChipFrom(st, pert, costdist.CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := costdist.MarshalRouteResult(pert, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warmBody, want) {
		t.Fatalf("service warm-start result differs from library RouteChipFrom (%d vs %d bytes)",
			len(warmBody), len(want))
	}

	// The hit is visible on /metrics, and the checkpoint store retains
	// both runs' checkpoints.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mb)
	if !strings.Contains(text, `routed_warm_starts_total{outcome="hit"} 1`) {
		t.Fatalf("warm-start hit not reported:\n%s", text)
	}
	if !strings.Contains(text, "routed_warm_start_nets_reused_total "+
		jsonInt(warmMetrics.NetsSkipped)) {
		t.Fatalf("nets-reused counter missing or wrong:\n%s", text)
	}
	if cps := s.checkpoints.Stats(); cps.Entries < 2 {
		t.Fatalf("checkpoint store retains %d entries, want ≥ 2", cps.Entries)
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// An unknown (or evicted) base_job must fall back to a cold route and
// count a warm-start miss — clients always get a correct answer. The
// fallback result must not be cached: its key includes base_job, and
// pinning the cold outcome would keep serving it even after the base
// state becomes available.
func TestRouteWarmStartUnknownBaseFallsBackCold(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"chip":"c2","scale":0.002,"waves":2,"oracle":"cd","base_job":"job-999999"}`
	jv := submitRoute(t, ts.URL, req)
	body := waitResult(t, ts.URL, jv.ID)
	m := resultMetrics(t, body)
	if m.NetsSolved == 0 {
		t.Fatalf("fallback cold route solved nothing: %+v", m)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), `routed_warm_starts_total{outcome="miss"} 1`) {
		t.Fatalf("warm-start miss not reported:\n%s", mb)
	}
	// Resubmission of the fallback request is not a cache hit.
	resp := post(t, ts.URL+"/v1/route", []byte(req))
	readBody(t, resp)
	if got := resp.Header.Get("X-Cache"); got == "hit" {
		t.Fatal("warm-miss fallback result was cached")
	}
}

// A base_job whose checkpoint binds a different grid (another scale)
// must fall back cold and count a miss, never fail the job.
func TestRouteWarmStartIncompatibleBaseFallsBackCold(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := submitRoute(t, ts.URL, `{"chip":"c1","scale":0.002,"waves":2}`)
	waitResult(t, ts.URL, base.ID)
	warm := submitRoute(t, ts.URL,
		`{"chip":"c1","scale":0.005,"waves":2,"base_job":"`+base.ID+`"}`)
	body := waitResult(t, ts.URL, warm.ID) // would fail the job without the fallback
	m := resultMetrics(t, body)
	if m.NetsSolved == 0 || m.NetsSkipped != 0 {
		t.Fatalf("incompatible base did not route cold: %+v", m)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), `routed_warm_starts_total{outcome="miss"} 1`) {
		t.Fatalf("incompatible base not counted as miss:\n%s", mb)
	}
}

// With checkpoint retention disabled every base_job request misses and
// falls back cold — and jobs still complete normally.
func TestRouteWarmStartDisabledStore(t *testing.T) {
	_, ts := newTestServer(t, Config{CheckpointBytes: -1})
	cold := submitRoute(t, ts.URL, `{"chip":"c1","scale":0.002,"waves":2}`)
	waitResult(t, ts.URL, cold.ID)
	warm := submitRoute(t, ts.URL,
		`{"chip":"c1","scale":0.002,"waves":2,"base_job":"`+cold.ID+`"}`)
	body := waitResult(t, ts.URL, warm.ID)
	if m := resultMetrics(t, body); m.NetsSkipped != 0 {
		t.Fatalf("disabled store still warm-started: %+v", m)
	}
}

// A zero-perturbation warm start through the service is the end-to-end
// form of the library's no-op property: the rerun solves nothing.
func TestRouteWarmStartZeroPerturbation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cold := submitRoute(t, ts.URL, `{"chip":"c1","scale":0.002,"waves":2}`)
	waitResult(t, ts.URL, cold.ID)
	warm := submitRoute(t, ts.URL,
		`{"chip":"c1","scale":0.002,"waves":2,"base_job":"`+cold.ID+`"}`)
	body := waitResult(t, ts.URL, warm.ID)
	m := resultMetrics(t, body)
	if m.NetsSolved != 0 {
		t.Fatalf("unperturbed warm start solved %d nets", m.NetsSolved)
	}
	if m.NetsSkipped == 0 {
		t.Fatal("unperturbed warm start reported no skips")
	}
}

// A server-wide -repairtol default applies to requests that are silent
// about repair_tol, and an explicit negative forces the rung off even
// against that default — the two requests must not share a cache entry.
func TestRouteRepairTolDefaultAndExplicitOff(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultRepairTol: 0.25})

	cold := submitRoute(t, ts.URL, `{"chip":"c1","scale":0.002,"waves":2,"oracle":"cd","incremental":true}`)
	waitResult(t, ts.URL, cold.ID)

	warm := submitRoute(t, ts.URL,
		`{"chip":"c1","scale":0.002,"waves":2,"oracle":"cd","incremental":true,"base_job":"`+cold.ID+`","perturb_frac":0.1,"perturb_seed":5}`)
	wm := resultMetrics(t, waitResult(t, ts.URL, warm.ID))
	if wm.NetsRepaired == 0 {
		t.Fatalf("server default repair_tol did not engage the rung: %+v", wm)
	}

	off := submitRoute(t, ts.URL,
		`{"chip":"c1","scale":0.002,"waves":2,"oracle":"cd","incremental":true,"base_job":"`+cold.ID+`","perturb_frac":0.1,"perturb_seed":5,"repair_tol":-1}`)
	om := resultMetrics(t, waitResult(t, ts.URL, off.ID))
	if om.NetsRepaired != 0 || om.RepairEscalated != 0 {
		t.Fatalf("explicit repair_tol -1 did not force the rung off: %+v", om)
	}
	if om.NetsSolved <= wm.NetsSolved {
		t.Fatalf("repair-less warm start should solve more nets: %d vs %d",
			om.NetsSolved, wm.NetsSolved)
	}
}
