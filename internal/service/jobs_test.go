package service

import (
	"context"
	"fmt"
	"testing"
)

// The registry must stay bounded: terminal jobs beyond the retention
// cap are evicted oldest-first, live jobs never are.
func TestJobRegistryEvictsOldestTerminal(t *testing.T) {
	r := newJobRegistry()
	live := r.create(context.Background(), "") // stays queued forever
	for i := 0; i < maxRetainedJobs+10; i++ {
		j := r.create(context.Background(), "")
		j.finish(JobDone, []byte("x"), "")
	}
	r.mu.Lock()
	n := len(r.jobs)
	r.mu.Unlock()
	if n > maxRetainedJobs {
		t.Fatalf("registry holds %d jobs, cap %d", n, maxRetainedJobs)
	}
	if _, ok := r.get(live.id); !ok {
		t.Fatal("live job was evicted")
	}
	if _, ok := r.get("job-000002"); ok {
		t.Fatal("oldest terminal job survived eviction")
	}
	// The newest terminal jobs are still pollable.
	last := fmt.Sprintf("job-%06d", maxRetainedJobs+11)
	if _, ok := r.get(last); !ok {
		t.Fatalf("newest job %s missing", last)
	}
}
