package service

import (
	"bytes"
	"compress/gzip"
	"io"
)

// gzipBytes compresses a marshaled checkpoint for retention. BestSpeed:
// checkpoint JSON is so repetitive (tree steps, per-net vectors) that
// the fast level already collapses it several-fold, and route jobs
// should not stall on a deeper compressor.
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	_, _ = zw.Write(b)
	_ = zw.Close()
	return buf.Bytes()
}

// gunzipBytes reverses gzipBytes; an error means the stored blob is
// corrupt and the checkpoint should count as a miss.
func gunzipBytes(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	return out, nil
}
