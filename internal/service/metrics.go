package service

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"costdist/internal/obs"
)

// latencyBuckets are the fixed histogram bucket bounds in seconds.
// Solves on the example corpus land around the first few buckets; route
// jobs fill the tail.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style: counts[i] counts observations ≤ latencyBuckets[i].
type histogram struct {
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets))}
}

func (h *histogram) Observe(seconds float64) {
	// Buckets are cumulative in the Prometheus exposition: counts[i] is
	// the number of observations ≤ latencyBuckets[i], so one observation
	// must increment EVERY bucket whose bound it fits under — no early
	// exit after the first match. That keeps bucket counts monotone
	// nondecreasing in i and each ≤ the total count (locked by
	// TestHistogramCumulativeBuckets).
	for i, b := range latencyBuckets {
		if seconds <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// metrics aggregates the server-wide counters exposed on /metrics.
type metrics struct {
	solveRequests atomic.Int64 // POST /v1/solve accepted for processing
	routeRequests atomic.Int64 // POST /v1/route accepted for processing
	badRequests   atomic.Int64 // 4xx responses
	queueRejects  atomic.Int64 // 503 queue-full responses

	// warmStartHits/Misses count route jobs that named a base_job and
	// found / did not find its retained checkpoint; netsReused sums the
	// warm runs' NetsSkipped — the solves the checkpoints saved.
	warmStartHits   atomic.Int64
	warmStartMisses atomic.Int64
	netsReused      atomic.Int64
	// netsRepaired/repairEscalated sum the route jobs' repair-rung
	// counters (RouteMetrics.NetsRepaired / RepairEscalated).
	netsRepaired    atomic.Int64
	repairEscalated atomic.Int64
	// checkpointRawBytes/GzBytes total the marshaled and stored
	// (gzip-compressed) sizes of retained checkpoints — their ratio is
	// the live compression factor of the checkpoint store.
	checkpointRawBytes atomic.Int64
	checkpointGzBytes  atomic.Int64

	// sseSubscribers gauges the currently connected event-stream
	// consumers; sseEvents/sseDropped count frames delivered and events
	// a subscriber missed to history overflow.
	sseSubscribers atomic.Int64
	sseEvents      atomic.Int64
	sseDropped     atomic.Int64

	solveLatency *histogram // time-to-response of /v1/solve (hits and misses)
	jobLatency   *histogram // run time of route jobs

	mu       sync.Mutex
	byOracle map[string]int64 // oracle/driver solve counts
	// oracleLatency histograms per-net solve latency by oracle name;
	// stageLatency histograms per-wave stage walltime by stage name.
	// Both fed from route-job telemetry recorders.
	oracleLatency map[string]*histogram
	stageLatency  map[string]*histogram
}

func newMetrics() *metrics {
	return &metrics{
		solveLatency:  newHistogram(),
		jobLatency:    newHistogram(),
		byOracle:      map[string]int64{},
		oracleLatency: map[string]*histogram{},
		stageLatency:  map[string]*histogram{},
	}
}

// observeOracleSolve records one per-net solve latency under the
// oracle's name.
func (m *metrics) observeOracleSolve(name string, seconds float64) {
	m.mu.Lock()
	h := m.oracleLatency[name]
	if h == nil {
		h = newHistogram()
		m.oracleLatency[name] = h
	}
	m.mu.Unlock()
	h.Observe(seconds)
}

// observeWaveStages records one wave's per-stage walltimes from a wave
// snapshot. Called from the router's OnWave callback, so it stays cheap
// (one map lookup and a few atomic adds per stage).
func (m *metrics) observeWaveStages(ws obs.WaveSnapshot) {
	for st := obs.Stage(0); int(st) < obs.NumStages; st++ {
		ns := ws.StageNanos[st]
		if ns <= 0 || st == obs.StageWave {
			continue
		}
		name := st.String()
		m.mu.Lock()
		h := m.stageLatency[name]
		if h == nil {
			h = newHistogram()
			m.stageLatency[name] = h
		}
		m.mu.Unlock()
		h.Observe(float64(ns) / 1e9)
	}
}

// labeledHistograms snapshots one of the name→histogram maps for
// rendering (the histograms themselves are concurrency-safe; only the
// map needs the lock).
func (m *metrics) labeledHistograms(which map[string]*histogram) map[string]*histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*histogram, len(which))
	for k, v := range which {
		out[k] = v
	}
	return out
}

// chargeOracle adds per-oracle solve counts (from RouteMetrics, or one
// count for a standalone solve).
func (m *metrics) chargeOracle(name string, n int64) {
	m.mu.Lock()
	m.byOracle[name] += n
	m.mu.Unlock()
}

func (m *metrics) oracleCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byOracle))
	for k, v := range m.byOracle {
		out[k] = v
	}
	return out
}

// renderMetrics assembles the /metrics body: the Prometheus text
// exposition of every server counter — request totals, queue depth,
// cache hit/miss/byte gauges, per-oracle solve counts and the latency
// histograms.
func renderMetrics(m *metrics, cs, cps CacheStats, queueDepth int, jobs map[string]int) string {
	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	add("# TYPE routed_requests_total counter\n")
	add("routed_requests_total{endpoint=\"solve\"} %d\n", m.solveRequests.Load())
	add("routed_requests_total{endpoint=\"route\"} %d\n", m.routeRequests.Load())
	add("# TYPE routed_bad_requests_total counter\n")
	add("routed_bad_requests_total %d\n", m.badRequests.Load())
	add("# TYPE routed_queue_rejects_total counter\n")
	add("routed_queue_rejects_total %d\n", m.queueRejects.Load())
	add("# TYPE routed_queue_depth gauge\n")
	add("routed_queue_depth %d\n", queueDepth)

	add("# TYPE routed_cache_hits_total counter\n")
	add("routed_cache_hits_total %d\n", cs.Hits)
	add("# TYPE routed_cache_misses_total counter\n")
	add("routed_cache_misses_total %d\n", cs.Misses)
	add("# TYPE routed_cache_evictions_total counter\n")
	add("routed_cache_evictions_total %d\n", cs.Evictions)
	add("# TYPE routed_cache_bytes gauge\n")
	add("routed_cache_bytes %d\n", cs.Bytes)
	add("# TYPE routed_cache_entries gauge\n")
	add("routed_cache_entries %d\n", cs.Entries)

	add("# TYPE routed_warm_starts_total counter\n")
	add("routed_warm_starts_total{outcome=\"hit\"} %d\n", m.warmStartHits.Load())
	add("routed_warm_starts_total{outcome=\"miss\"} %d\n", m.warmStartMisses.Load())
	add("# TYPE routed_warm_start_nets_reused_total counter\n")
	add("routed_warm_start_nets_reused_total %d\n", m.netsReused.Load())

	add("# TYPE routed_nets_repaired_total counter\n")
	add("routed_nets_repaired_total %d\n", m.netsRepaired.Load())
	add("# TYPE routed_repair_escalated_total counter\n")
	add("routed_repair_escalated_total %d\n", m.repairEscalated.Load())

	// routed_checkpoint_bytes reports the store's resident (compressed)
	// bytes; the *_raw/_gzip totals expose the compression ratio.
	add("# TYPE routed_checkpoint_bytes gauge\n")
	add("routed_checkpoint_bytes %d\n", cps.Bytes)
	add("# TYPE routed_checkpoint_entries gauge\n")
	add("routed_checkpoint_entries %d\n", cps.Entries)
	add("# TYPE routed_checkpoint_evictions_total counter\n")
	add("routed_checkpoint_evictions_total %d\n", cps.Evictions)
	add("# TYPE routed_checkpoint_raw_bytes_total counter\n")
	add("routed_checkpoint_raw_bytes_total %d\n", m.checkpointRawBytes.Load())
	add("# TYPE routed_checkpoint_gzip_bytes_total counter\n")
	add("routed_checkpoint_gzip_bytes_total %d\n", m.checkpointGzBytes.Load())

	add("# TYPE routed_jobs gauge\n")
	for _, st := range sortedKeys(jobs) {
		add("routed_jobs{status=%q} %d\n", st, jobs[st])
	}

	add("# TYPE routed_sse_subscribers gauge\n")
	add("routed_sse_subscribers %d\n", m.sseSubscribers.Load())
	add("# TYPE routed_sse_events_total counter\n")
	add("routed_sse_events_total %d\n", m.sseEvents.Load())
	add("# TYPE routed_sse_dropped_events_total counter\n")
	add("routed_sse_dropped_events_total %d\n", m.sseDropped.Load())

	add("# TYPE routed_solves_total counter\n")
	counts := m.oracleCounts()
	for _, name := range sortedKeysI64(counts) {
		add("routed_solves_total{oracle=%q} %d\n", name, counts[name])
	}

	renderHistogram(&b, "routed_solve_latency_seconds", "", m.solveLatency)
	renderHistogram(&b, "routed_job_latency_seconds", "", m.jobLatency)
	renderLabeledHistograms(&b, "routed_oracle_solve_latency_seconds", "oracle",
		m.labeledHistograms(m.oracleLatency))
	renderLabeledHistograms(&b, "routed_wave_stage_seconds", "stage",
		m.labeledHistograms(m.stageLatency))
	return string(b)
}

// renderHistogram writes one histogram family. labels, when non-empty,
// is a preformatted `key="value"` list prefixed to every series' label
// set (including _sum/_count, which Prometheus permits and the lint
// check in internal/obs accepts as the same family).
func renderHistogram(b *[]byte, name, labels string, h *histogram) {
	if labels == "" {
		*b = append(*b, fmt.Sprintf("# TYPE %s histogram\n", name)...)
	}
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	for i, bound := range latencyBuckets {
		*b = append(*b, fmt.Sprintf("%s_bucket{%sle=%q} %d\n",
			name, sep, strconv.FormatFloat(bound, 'g', -1, 64), h.counts[i].Load())...)
	}
	*b = append(*b, fmt.Sprintf("%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, h.count.Load())...)
	if labels != "" {
		*b = append(*b, fmt.Sprintf("%s_sum{%s} %g\n", name, labels, math.Float64frombits(h.sumBits.Load()))...)
		*b = append(*b, fmt.Sprintf("%s_count{%s} %d\n", name, labels, h.count.Load())...)
		return
	}
	*b = append(*b, fmt.Sprintf("%s_sum %g\n", name, math.Float64frombits(h.sumBits.Load()))...)
	*b = append(*b, fmt.Sprintf("%s_count %d\n", name, h.count.Load())...)
}

// renderLabeledHistograms writes one histogram family with one series
// group per label value (sorted, so the exposition is deterministic).
// An empty map still declares the family so dashboards can discover it.
func renderLabeledHistograms(b *[]byte, name, labelKey string, hs map[string]*histogram) {
	*b = append(*b, fmt.Sprintf("# TYPE %s histogram\n", name)...)
	keys := make([]string, 0, len(hs))
	for k := range hs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		renderHistogram(b, name, fmt.Sprintf("%s=%q", labelKey, k), hs[k])
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI64(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
