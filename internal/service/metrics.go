package service

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// latencyBuckets are the fixed histogram bucket bounds in seconds.
// Solves on the example corpus land around the first few buckets; route
// jobs fill the tail.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style: counts[i] counts observations ≤ latencyBuckets[i].
type histogram struct {
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets))}
}

func (h *histogram) Observe(seconds float64) {
	for i, b := range latencyBuckets {
		if seconds <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// metrics aggregates the server-wide counters exposed on /metrics.
type metrics struct {
	solveRequests atomic.Int64 // POST /v1/solve accepted for processing
	routeRequests atomic.Int64 // POST /v1/route accepted for processing
	badRequests   atomic.Int64 // 4xx responses
	queueRejects  atomic.Int64 // 503 queue-full responses

	// warmStartHits/Misses count route jobs that named a base_job and
	// found / did not find its retained checkpoint; netsReused sums the
	// warm runs' NetsSkipped — the solves the checkpoints saved.
	warmStartHits   atomic.Int64
	warmStartMisses atomic.Int64
	netsReused      atomic.Int64
	// netsRepaired/repairEscalated sum the route jobs' repair-rung
	// counters (RouteMetrics.NetsRepaired / RepairEscalated).
	netsRepaired    atomic.Int64
	repairEscalated atomic.Int64
	// checkpointRawBytes/GzBytes total the marshaled and stored
	// (gzip-compressed) sizes of retained checkpoints — their ratio is
	// the live compression factor of the checkpoint store.
	checkpointRawBytes atomic.Int64
	checkpointGzBytes  atomic.Int64

	solveLatency *histogram // time-to-response of /v1/solve (hits and misses)
	jobLatency   *histogram // run time of route jobs

	mu       sync.Mutex
	byOracle map[string]int64 // oracle/driver solve counts
}

func newMetrics() *metrics {
	return &metrics{
		solveLatency: newHistogram(),
		jobLatency:   newHistogram(),
		byOracle:     map[string]int64{},
	}
}

// chargeOracle adds per-oracle solve counts (from RouteMetrics, or one
// count for a standalone solve).
func (m *metrics) chargeOracle(name string, n int64) {
	m.mu.Lock()
	m.byOracle[name] += n
	m.mu.Unlock()
}

func (m *metrics) oracleCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byOracle))
	for k, v := range m.byOracle {
		out[k] = v
	}
	return out
}

// renderMetrics assembles the /metrics body: the Prometheus text
// exposition of every server counter — request totals, queue depth,
// cache hit/miss/byte gauges, per-oracle solve counts and the latency
// histograms.
func renderMetrics(m *metrics, cs, cps CacheStats, queueDepth int, jobs map[string]int) string {
	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	add("# TYPE routed_requests_total counter\n")
	add("routed_requests_total{endpoint=\"solve\"} %d\n", m.solveRequests.Load())
	add("routed_requests_total{endpoint=\"route\"} %d\n", m.routeRequests.Load())
	add("# TYPE routed_bad_requests_total counter\n")
	add("routed_bad_requests_total %d\n", m.badRequests.Load())
	add("# TYPE routed_queue_rejects_total counter\n")
	add("routed_queue_rejects_total %d\n", m.queueRejects.Load())
	add("# TYPE routed_queue_depth gauge\n")
	add("routed_queue_depth %d\n", queueDepth)

	add("# TYPE routed_cache_hits_total counter\n")
	add("routed_cache_hits_total %d\n", cs.Hits)
	add("# TYPE routed_cache_misses_total counter\n")
	add("routed_cache_misses_total %d\n", cs.Misses)
	add("# TYPE routed_cache_evictions_total counter\n")
	add("routed_cache_evictions_total %d\n", cs.Evictions)
	add("# TYPE routed_cache_bytes gauge\n")
	add("routed_cache_bytes %d\n", cs.Bytes)
	add("# TYPE routed_cache_entries gauge\n")
	add("routed_cache_entries %d\n", cs.Entries)

	add("# TYPE routed_warm_starts_total counter\n")
	add("routed_warm_starts_total{outcome=\"hit\"} %d\n", m.warmStartHits.Load())
	add("routed_warm_starts_total{outcome=\"miss\"} %d\n", m.warmStartMisses.Load())
	add("# TYPE routed_warm_start_nets_reused_total counter\n")
	add("routed_warm_start_nets_reused_total %d\n", m.netsReused.Load())

	add("# TYPE routed_nets_repaired_total counter\n")
	add("routed_nets_repaired_total %d\n", m.netsRepaired.Load())
	add("# TYPE routed_repair_escalated_total counter\n")
	add("routed_repair_escalated_total %d\n", m.repairEscalated.Load())

	// routed_checkpoint_bytes reports the store's resident (compressed)
	// bytes; the *_raw/_gzip totals expose the compression ratio.
	add("# TYPE routed_checkpoint_bytes gauge\n")
	add("routed_checkpoint_bytes %d\n", cps.Bytes)
	add("# TYPE routed_checkpoint_entries gauge\n")
	add("routed_checkpoint_entries %d\n", cps.Entries)
	add("# TYPE routed_checkpoint_evictions_total counter\n")
	add("routed_checkpoint_evictions_total %d\n", cps.Evictions)
	add("# TYPE routed_checkpoint_raw_bytes_total counter\n")
	add("routed_checkpoint_raw_bytes_total %d\n", m.checkpointRawBytes.Load())
	add("# TYPE routed_checkpoint_gzip_bytes_total counter\n")
	add("routed_checkpoint_gzip_bytes_total %d\n", m.checkpointGzBytes.Load())

	add("# TYPE routed_jobs gauge\n")
	for _, st := range sortedKeys(jobs) {
		add("routed_jobs{status=%q} %d\n", st, jobs[st])
	}

	add("# TYPE routed_solves_total counter\n")
	counts := m.oracleCounts()
	for _, name := range sortedKeysI64(counts) {
		add("routed_solves_total{oracle=%q} %d\n", name, counts[name])
	}

	renderHistogram(&b, "routed_solve_latency_seconds", m.solveLatency)
	renderHistogram(&b, "routed_job_latency_seconds", m.jobLatency)
	return string(b)
}

func renderHistogram(b *[]byte, name string, h *histogram) {
	*b = append(*b, fmt.Sprintf("# TYPE %s histogram\n", name)...)
	for i, bound := range latencyBuckets {
		*b = append(*b, fmt.Sprintf("%s_bucket{le=%q} %d\n",
			name, strconv.FormatFloat(bound, 'g', -1, 64), h.counts[i].Load())...)
	}
	*b = append(*b, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())...)
	*b = append(*b, fmt.Sprintf("%s_sum %g\n", name, math.Float64frombits(h.sumBits.Load()))...)
	*b = append(*b, fmt.Sprintf("%s_count %d\n", name, h.count.Load())...)
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI64(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
