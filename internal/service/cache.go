package service

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result cache: marshaled response
// bodies keyed by the digest of (canonical request, method, options),
// evicted least-recently-used under a total byte budget. Because every
// solve is deterministic, a cached body is bit-identical to what a
// fresh solve would produce, so serving from cache never changes
// responses — only latency.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache with the given byte budget; a budget
// ≤ 0 disables caching (every Get misses, Put is a no-op).
func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  map[string]*list.Element{},
	}
}

// Get returns the cached body for key, promoting it to most recently
// used. The returned slice is shared — callers must not mutate it.
func (c *resultCache) Get(key string) ([]byte, bool) {
	return c.get(key, true)
}

// Recheck is Get for the worker-side duplicate-suppression lookup: a
// find still counts as a hit, but an absence is not a second miss (the
// handler's Get already counted this request).
func (c *resultCache) Recheck(key string) ([]byte, bool) {
	return c.get(key, false)
}

func (c *resultCache) get(key string, countMiss bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting from the LRU tail until the byte
// budget holds. Bodies larger than the whole budget are not cached.
func (c *resultCache) Put(key string, body []byte) {
	if c.maxBytes <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Deterministic solves make re-puts byte-identical; just promote.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.bytes > c.maxBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.entries, ent.key)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Bytes                   int64
	Entries                 int
}

func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Bytes: c.bytes, Entries: len(c.entries),
	}
}
