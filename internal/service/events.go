package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"costdist/internal/obs"
)

// maxEventHistory bounds a job's retained event history. Route jobs emit
// one wave event per wave (≤ maxRouteWaves) plus one terminal event, so
// the bound is never hit in practice; it exists so a misbehaving
// publisher cannot grow a job's history without limit. Overflow drops
// the oldest events (counted, and reported to late subscribers).
const maxEventHistory = 256

// sseEvent is one server-sent event: a name ("wave" or "done") and a
// JSON data payload.
type sseEvent struct {
	name string
	data []byte
}

// jobEvents is a job's broadcast buffer for server-sent events. The
// publisher (the route worker's OnWave callback) appends under a short
// critical section and never blocks: subscribers are notified through
// non-blocking sends on buffered channels and read the history at their
// own pace through a cursor. A slow or disconnected subscriber therefore
// stalls only its own handler goroutine, never the wave loop — the
// property the SSE tests enforce.
//
// jobEvents has its own mutex and never touches job.mu, so job.terminate
// may publish the terminal event without lock-order concerns.
type jobEvents struct {
	mu     sync.Mutex
	base   int // sequence number of hist[0]
	hist   []sseEvent
	closed bool
	subs   map[chan struct{}]struct{}
}

func newJobEvents() *jobEvents {
	return &jobEvents{subs: make(map[chan struct{}]struct{})}
}

// waveEvent is the JSON payload of one "wave" SSE frame: the per-wave
// convergence snapshot. StageNs carries wall-clock stage times and is
// telemetry only — it never enters cached results.
type waveEvent struct {
	Wave      int              `json:"wave"`
	Objective float64          `json:"objective"`
	Overflow  float64          `json:"overflow"`
	Solved    int              `json:"solved"`
	Skipped   int              `json:"skipped"`
	Repaired  int              `json:"repaired"`
	Escalated int              `json:"escalated"`
	StageNs   map[string]int64 `json:"stage_ns,omitempty"`
}

// doneEvent is the JSON payload of the terminal "done" SSE frame. For a
// successful job Metrics is the metrics section of the stored result —
// the SSE tests check it matches GET /v1/jobs/{id}/result exactly.
type doneEvent struct {
	Status  JobStatus       `json:"status"`
	Error   string          `json:"error,omitempty"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// publishWave appends a wave snapshot to the history and wakes
// subscribers. Called from the router's OnWave callback on the wave
// barrier, so it must stay cheap and must never block.
func (e *jobEvents) publishWave(ws obs.WaveSnapshot) {
	stage := make(map[string]int64, obs.NumStages)
	for st := obs.Stage(0); int(st) < obs.NumStages; st++ {
		if ns := ws.StageNanos[st]; ns > 0 {
			stage[st.String()] = ns
		}
	}
	data, err := json.Marshal(waveEvent{
		Wave: ws.Wave, Objective: ws.Objective, Overflow: ws.Overflow,
		Solved: ws.Solved, Skipped: ws.Skipped,
		Repaired: ws.Repaired, Escalated: ws.Escalated, StageNs: stage,
	})
	if err != nil {
		return
	}
	e.publish(sseEvent{name: "wave", data: data})
}

// finish appends the terminal event and closes the stream. For done
// jobs the metrics section is lifted verbatim from the stored result so
// the final event agrees byte-for-byte with the result endpoint.
func (e *jobEvents) finish(st JobStatus, result []byte, errMsg string) {
	ev := doneEvent{Status: st, Error: errMsg}
	if st == JobDone && len(result) > 0 {
		var res struct {
			Metrics json.RawMessage `json:"metrics"`
		}
		if json.Unmarshal(result, &res) == nil {
			ev.Metrics = res.Metrics
		}
	}
	data, err := json.Marshal(ev)
	if err != nil {
		data = []byte(`{"status":"` + string(st) + `"}`)
	}
	e.mu.Lock()
	if !e.closed {
		e.appendLocked(sseEvent{name: "done", data: data})
		e.closed = true
		e.notifyLocked()
	}
	e.mu.Unlock()
}

func (e *jobEvents) publish(ev sseEvent) {
	e.mu.Lock()
	if !e.closed {
		e.appendLocked(ev)
		e.notifyLocked()
	}
	e.mu.Unlock()
}

func (e *jobEvents) appendLocked(ev sseEvent) {
	e.hist = append(e.hist, ev)
	if len(e.hist) > maxEventHistory {
		drop := len(e.hist) - maxEventHistory
		e.base += drop
		e.hist = append(e.hist[:0:0], e.hist[drop:]...)
	}
}

// notifyLocked wakes every subscriber with a non-blocking send; a
// subscriber that already has a pending wake-up needs no second one (it
// reads the whole history tail when it drains).
func (e *jobEvents) notifyLocked() {
	for ch := range e.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// subscribe registers a wake-up channel; the caller reads events with
// since and must unsubscribe when done.
func (e *jobEvents) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	e.mu.Lock()
	e.subs[ch] = struct{}{}
	e.mu.Unlock()
	return ch
}

func (e *jobEvents) unsubscribe(ch chan struct{}) {
	e.mu.Lock()
	delete(e.subs, ch)
	e.mu.Unlock()
}

// since returns the events at sequence ≥ cursor, the cursor to resume
// from, how many events the subscriber missed to history overflow, and
// whether the stream is closed (no further events will be published).
func (e *jobEvents) since(cursor int) (evs []sseEvent, next int, missed int, closed bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cursor < e.base {
		missed = e.base - cursor
		cursor = e.base
	}
	if off := cursor - e.base; off < len(e.hist) {
		evs = append(evs, e.hist[off:]...)
	}
	return evs, e.base + len(e.hist), missed, e.closed
}

// handleJobEvents streams a job's per-wave telemetry as server-sent
// events: one "wave" event per routing wave and a final "done" event
// carrying the result's metrics section (or the failure). Subscribers
// may attach at any time — the full history is replayed first, so a
// consumer that connects after completion still receives every event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.met.sseSubscribers.Add(1)
	defer s.met.sseSubscribers.Add(-1)
	sub := job.events.subscribe()
	defer job.events.unsubscribe(sub)

	cursor := 0
	for {
		evs, next, missed, closed := job.events.since(cursor)
		cursor = next
		if missed > 0 {
			s.met.sseDropped.Add(int64(missed))
			fmt.Fprintf(w, ": %d events dropped (history overflow)\n\n", missed)
		}
		for _, ev := range evs {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			s.met.sseEvents.Add(1)
		}
		if len(evs) > 0 || missed > 0 {
			fl.Flush()
		}
		if closed {
			return
		}
		select {
		case <-sub:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}
