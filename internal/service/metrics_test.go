package service

import (
	"math"
	"strings"
	"sync"
	"testing"

	"costdist/internal/obs"
)

// Histogram buckets are cumulative: after any sequence of observations
// every bucket count is ≤ the next bucket's count, and every bucket is
// ≤ the total count — the invariant the Prometheus exposition format
// assumes and the Observe loop's no-early-exit comment promises.
func TestHistogramCumulativeBuckets(t *testing.T) {
	h := newHistogram()
	obsv := []float64{0, 0.0004, 0.0005, 0.003, 0.07, 0.9, 4, 9.99, 10, 11, 1e6}
	for _, v := range obsv {
		h.Observe(v)
	}
	total := h.count.Load()
	if total != int64(len(obsv)) {
		t.Fatalf("count %d, want %d", total, len(obsv))
	}
	for i := range latencyBuckets {
		c := h.counts[i].Load()
		if i+1 < len(latencyBuckets) {
			if next := h.counts[i+1].Load(); c > next {
				t.Fatalf("bucket[%d]=%d > bucket[%d]=%d: not cumulative", i, c, i+1, next)
			}
		}
		if c > total {
			t.Fatalf("bucket[%d]=%d exceeds count %d", i, c, total)
		}
	}
	// Spot-check the boundary semantics: le is inclusive.
	if got := h.counts[0].Load(); got != 3 { // 0, 0.0004, 0.0005 ≤ 0.0005
		t.Fatalf("bucket[0]=%d, want 3 (le is inclusive)", got)
	}
	var sum float64
	for _, v := range obsv {
		sum += v
	}
	if got := math.Float64frombits(h.sumBits.Load()); got != sum {
		t.Fatalf("sum %g, want %g", got, sum)
	}
}

// Observe is called concurrently from handlers and the OnWave callback;
// the cumulative invariant must survive parallel observers.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g*i%17) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if got := h.count.Load(); got != 8000 {
		t.Fatalf("count %d, want 8000", got)
	}
	for i := range latencyBuckets[:len(latencyBuckets)-1] {
		if h.counts[i].Load() > h.counts[i+1].Load() {
			t.Fatalf("bucket[%d] > bucket[%d] after concurrent observes", i, i+1)
		}
	}
}

// The full /metrics rendering — including the labeled per-oracle and
// per-stage histogram families — must pass the Prometheus text-format
// lint that CI scrapes for.
func TestRenderMetricsLints(t *testing.T) {
	m := newMetrics()
	m.solveRequests.Add(3)
	m.solveLatency.Observe(0.002)
	m.jobLatency.Observe(1.5)
	m.chargeOracle("cd", 41)
	m.chargeOracle("exact", 2)
	m.observeOracleSolve("cd", 0.004)
	m.observeOracleSolve("exact", 0.4)
	var ws obs.WaveSnapshot
	ws.StageNanos[obs.StageSolve] = 3_000_000
	ws.StageNanos[obs.StagePrice] = 50_000
	m.observeWaveStages(ws)
	m.sseSubscribers.Add(1)
	m.sseEvents.Add(12)

	body := renderMetrics(m, CacheStats{Hits: 1, Misses: 2, Bytes: 300, Entries: 1},
		CacheStats{}, 4, map[string]int{"done": 2, "running": 1})
	if err := obs.LintPromText([]byte(body)); err != nil {
		t.Fatalf("rendered /metrics fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		`routed_oracle_solve_latency_seconds_bucket{oracle="cd",le="+Inf"} 1`,
		`routed_oracle_solve_latency_seconds_count{oracle="exact"} 1`,
		`routed_wave_stage_seconds_count{stage="solve"} 1`,
		`routed_wave_stage_seconds_count{stage="reprice"} 1`,
		"routed_sse_subscribers 1",
		"routed_sse_events_total 12",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("rendered /metrics missing %q:\n%s", want, body)
		}
	}
}
