package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"costdist"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func corpusFile(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "instances", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSolveBadJSONIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{"{", "not json", `[1,2,3]`} {
		resp := post(t, ts.URL+"/v1/solve", []byte(body))
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestSolveUnknownMethodIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := json.Marshal(SolveRequest{Method: "bogus", Instance: corpusFile(t, "small.json")})
	resp := post(t, ts.URL+"/v1/solve", req)
	body := string(readBody(t, resp))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body %s)", resp.StatusCode, body)
	}
	// The error must advertise the valid oracle set.
	for _, name := range costdist.MethodNames() {
		if !strings.Contains(body, name) {
			t.Fatalf("422 body %q does not list %q", body, name)
		}
	}
}

func TestSolveSemanticErrorIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/solve",
		[]byte(`{"nx":4,"ny":4,"layers":2,"root":[99,0,0],"sinks":[{"x":1,"y":1,"l":0,"w":1}]}`))
	readBody(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
}

// A bare instance document POSTed to /v1/solve must produce a response
// byte-identical to the library path: ParseInstance → SolveCD →
// MarshalTree. This is the service's core guarantee — HTTP serving
// never changes results, so the paper's approximation bounds certified
// by the differential harness apply to every response.
func TestSolveByteIdenticalToLibraryAndCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for _, name := range []string{"small.json", "twopin.json", "congested.json"} {
		doc := corpusFile(t, name)
		in, err := costdist.ParseInstance(doc)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := costdist.SolveCD(in, costdist.DefaultCDOptions())
		if err != nil {
			t.Fatal(err)
		}
		want, err := costdist.MarshalTree(in, tr)
		if err != nil {
			t.Fatal(err)
		}

		resp := post(t, ts.URL+"/v1/solve", doc)
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, got)
		}
		if resp.Header.Get("X-Cache") != "miss" {
			t.Fatalf("%s: first request X-Cache = %q, want miss", name, resp.Header.Get("X-Cache"))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: service response differs from library MarshalTree/SolveCD:\nservice %s\nlibrary %s", name, got, want)
		}

		// Resubmitting with different formatting must hit the cache and
		// return the identical bytes.
		var v map[string]any
		if err := json.Unmarshal(doc, &v); err != nil {
			t.Fatal(err)
		}
		reordered, _ := json.MarshalIndent(v, "", "    ") // map order + whitespace differ
		wrapped, _ := json.Marshal(SolveRequest{Method: "cd", Instance: reordered})
		resp = post(t, ts.URL+"/v1/solve", wrapped)
		got = readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s resubmit: status %d: %s", name, resp.StatusCode, got)
		}
		if resp.Header.Get("X-Cache") != "hit" {
			t.Fatalf("%s resubmit: X-Cache = %q, want hit", name, resp.Header.Get("X-Cache"))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: cached response differs from library output", name)
		}
	}
	cs := srv.CacheStats()
	if cs.Hits < 3 || cs.Misses < 3 {
		t.Fatalf("cache counters off: %+v", cs)
	}
}

// Job lifecycle: 202 on submit, queued/running on poll, 200 result once
// done — and the result is byte-identical to the library RouteChip run
// marshaled with MarshalRouteResult.
func TestRouteJobLifecycleAndByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := []byte(`{"chip":"c1","scale":0.002,"waves":2,"oracle":"cd"}`)
	resp := post(t, ts.URL+"/v1/route", req)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", resp.StatusCode, body)
	}
	var jv JobView
	if err := json.Unmarshal(body, &jv); err != nil {
		t.Fatal(err)
	}
	if jv.ID == "" {
		t.Fatalf("no job id in %s", body)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st JobView
		if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == JobDone {
			break
		}
		if st.Status == JobFailed || st.Status == JobCancelled {
			t.Fatalf("job ended %s: %s", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, got)
	}

	// Library reference with the same resolved options.
	spec := chipByName(t, 0.002, "c1")
	chip, err := costdist.GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := costdist.DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 1
	opt.Seed = 1
	// The service routes with a telemetry recorder attached, which adds
	// the deterministic per-wave series to the wire form; the reference
	// run records too so the comparison stays byte-exact.
	opt.Recorder = costdist.NewRecorder()
	res, err := costdist.RouteChip(chip, costdist.CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := costdist.MarshalRouteResult(chip, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service route result differs from library RouteChip output (%d vs %d bytes)", len(got), len(want))
	}

	// Resubmission of the identical request is a cache hit: the job is
	// born done.
	resp = post(t, ts.URL+"/v1/route", req)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("resubmit: status %d X-Cache %q: %s", resp.StatusCode, resp.Header.Get("X-Cache"), body)
	}
	if err := json.Unmarshal(body, &jv); err != nil {
		t.Fatal(err)
	}
	if jv.Status != JobDone {
		t.Fatalf("cached resubmit status %s, want done", jv.Status)
	}

	// Thread count never changes results (locked by the route
	// determinism tests), so it must not split the cache either.
	resp = post(t, ts.URL+"/v1/route", []byte(`{"chip":"c1","scale":0.002,"waves":2,"oracle":"cd","threads":2}`))
	readBody(t, resp)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("different threads missed the cache: X-Cache = %q", resp.Header.Get("X-Cache"))
	}
}

func chipByName(t *testing.T, scale float64, name string) costdist.ChipSpec {
	t.Helper()
	spec, ok := costdist.ChipSpecByName(name, scale)
	if !ok {
		t.Fatalf("no chip %q", name)
	}
	return spec
}

// A tiny body must not be able to demand a huge grid allocation: the
// vertex cap rejects it before ParseInstance builds anything.
func TestSolveOversizedGridIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"nx":40000,"ny":40000,"layers":8,"root":[0,0,0],"sinks":[{"x":1,"y":1,"l":0,"w":1}]}`,
		`{"nx":2000000000,"ny":2000000000,"layers":2,"root":[0,0,0],"sinks":[]}`,
		`{"nx":4,"ny":4,"layers":9000000000000000000,"root":[0,0,0],"sinks":[]}`,
	} {
		resp := post(t, ts.URL+"/v1/solve", []byte(body))
		readBody(t, resp)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("oversized grid: status %d, want 422", resp.StatusCode)
		}
	}
}

// An identical route request submitted while the first is still running
// must follow the in-flight job instead of re-running the route.
func TestRouteDuplicateInFlightIsDeduplicated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := []byte(`{"chip":"c1","scale":0.02,"waves":12,"seed":42}`)
	first := post(t, ts.URL+"/v1/route", req)
	var leader JobView
	if err := json.Unmarshal(readBody(t, first), &leader); err != nil {
		t.Fatal(err)
	}
	second := post(t, ts.URL+"/v1/route", req)
	var follower JobView
	if err := json.Unmarshal(readBody(t, second), &follower); err != nil {
		t.Fatal(err)
	}
	if hdr := second.Header.Get("X-Cache"); hdr != "dedup" {
		t.Skipf("leader finished before the duplicate arrived (X-Cache %q)", hdr)
	}

	// Cancel the leader; the follower must mirror the outcome rather
	// than hang or silently start its own route.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+leader.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, dresp)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + follower.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st JobView
		if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == JobFailed {
			if !strings.Contains(st.Error, leader.ID) {
				t.Fatalf("follower error %q does not reference leader %s", st.Error, leader.ID)
			}
			break
		}
		if st.Status == JobDone {
			t.Skip("leader completed before the cancel landed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck in %s after leader cancel", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRouteUnknownChipAndOracleAre422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"chip":"c99"}`,
		`{"chip":"c1","oracle":"bogus"}`,
	} {
		resp := post(t, ts.URL+"/v1/route", []byte(body))
		readBody(t, resp)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("body %s: status %d, want 422", body, resp.StatusCode)
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// Cancelling a running job must take effect promptly: the DELETE
// response already reports cancelled, a status poll agrees within
// 100ms, and the worker abandons the route at the next per-net
// cancellation point so shutdown is not held up by the dead job.
func TestJobCancelReturnsPromptly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/route", []byte(`{"chip":"c1","scale":0.02,"waves":12}`))
	var jv JobView
	if err := json.Unmarshal(readBody(t, resp), &jv); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}

	// Let it reach running (or finish queued→running quickly).
	time.Sleep(50 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jv.ID, nil)
	start := time.Now()
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var after JobView
	if err := json.Unmarshal(readBody(t, dresp), &after); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancel took %v, want < 100ms", elapsed)
	}
	if after.Status == JobDone {
		// The route outran the cancel — possible on a fast machine.
		// Nothing left to assert; the prompt-cancel path is also locked
		// by TestRouteChipCtxCancellation at the library layer.
		t.Skip("job finished before the cancel landed")
	}
	if after.Status != JobCancelled {
		t.Fatalf("status after DELETE = %s, want cancelled", after.Status)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + jv.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: status %d, want 409", resp.StatusCode)
	}
	// Cleanup's Shutdown (10s budget) verifies the worker actually let
	// go of the cancelled route.
}

// Concurrent submits racing server shutdown must never panic or
// deadlock; every response is a success, a 503, or a transport error
// from the dying test server. Run under -race in CI.
func TestConcurrentSubmitsVsShutdown(t *testing.T) {
	s, err := New(Config{Shards: 2, WorkersPerShard: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	doc := corpusFile(t, "small.json")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				// Unique seeds defeat the cache so submits keep hitting
				// the pool; route jobs mix in queue churn.
				if i%4 == 0 {
					resp, err := http.Post(ts.URL+"/v1/route", "application/json",
						strings.NewReader(`{"chip":"c1","scale":0.002,"waves":1,"seed":`+fmt.Sprint(1000*i+n)+`}`))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					continue
				}
				body := bytes.Replace(doc, []byte(`"seed": 7`), []byte(fmt.Sprintf(`"seed": %d`, 1000*i+n)), 1)
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					continue // server shutting down mid-request
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}(i)
	}
	time.Sleep(300 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	close(stop)
	wg.Wait()
	ts.Close()
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/solve", corpusFile(t, "small.json"))
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody := string(readBody(t, hresp))
	if hresp.StatusCode != http.StatusOK || !strings.Contains(hbody, `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", hresp.StatusCode, hbody)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := string(readBody(t, mresp))
	for _, want := range []string{
		`routed_requests_total{endpoint="solve"} 1`,
		`routed_cache_misses_total 1`,
		`routed_solves_total{oracle="cd"} 1`,
		`routed_queue_depth`,
		`routed_solve_latency_seconds_bucket{le="+Inf"} 1`,
		`routed_solve_latency_seconds_count 1`,
	} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mbody)
		}
	}
}
