package service

import (
	"fmt"
	"testing"
)

func TestCacheLRUEvictionUnderByteBudget(t *testing.T) {
	c := newResultCache(100)
	body := make([]byte, 40)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), body)
	}
	// 3×40 > 100: k0 (least recently used) must be gone.
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 survived eviction")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted too early", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}

	// Touching k1 makes k2 the eviction victim.
	c.Get("k1")
	c.Put("k3", body)
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 survived although k1 was fresher")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently used k1 evicted")
	}
}

func TestCacheOversizedAndDisabled(t *testing.T) {
	c := newResultCache(10)
	c.Put("big", make([]byte, 11))
	if _, ok := c.Get("big"); ok {
		t.Fatal("cached a body above the whole budget")
	}
	d := newResultCache(-1)
	d.Put("k", []byte("v"))
	if _, ok := d.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := newResultCache(1000)
	c.Get("a")
	c.Put("a", []byte("body"))
	c.Get("a")
	c.Get("a")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}
