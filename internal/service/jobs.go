package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of an asynchronous job.
type JobStatus string

const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// terminal reports whether a status can never change again.
func (s JobStatus) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// job is one asynchronous routing run tracked by the registry. The
// mutex guards status/result/err; ctx is cancelled by DELETE
// /v1/jobs/{id} and by server shutdown, and the routing run checks it
// between nets, so cancellation takes effect within one solve latency.
type job struct {
	id string
	// ckey is the job's route content address; the warm-start
	// checkpoint store is keyed by it, so identical requests (and
	// cache-hit followers of them) resolve to one retained checkpoint.
	// Immutable after create.
	ckey   string
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on any terminal transition
	// retained points at the registry's terminal-bytes counter; finish
	// adds the result size there (atomically — finish holds j.mu, and
	// taking the registry lock here would invert the registry→job lock
	// order used by eviction).
	retained *atomic.Int64
	// events is the job's SSE broadcast buffer (per-wave snapshots plus
	// the terminal event). It has its own mutex and never takes j.mu.
	events *jobEvents

	mu       sync.Mutex
	status   JobStatus
	result   []byte
	charged  int64 // bytes charged to the retention budget (0 for shared bodies)
	err      string
	created  time.Time
	finished time.Time
}

// setStatus transitions to a non-terminal status (no-op once terminal).
func (j *job) setStatus(s JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return
	}
	j.status = s
}

// finish performs the single terminal transition; later calls lose, so
// a cancel racing a completion keeps whichever landed first. The job
// context is released here — otherwise every completed job would stay
// registered as a child of the server's root context forever.
func (j *job) finish(s JobStatus, result []byte, errMsg string) {
	j.terminate(s, result, errMsg, int64(len(result)))
}

// finishShared is finish for a result body shared with the cache or
// another job: the bytes are not charged to the retention budget, so
// repeat cache-hit traffic cannot evict other clients' results.
func (j *job) finishShared(s JobStatus, result []byte, errMsg string) {
	j.terminate(s, result, errMsg, 0)
}

func (j *job) terminate(s JobStatus, result []byte, errMsg string, charge int64) {
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return
	}
	j.status = s
	j.result = result
	j.charged = charge
	j.err = errMsg
	j.finished = time.Now()
	j.retained.Add(charge)
	close(j.done)
	j.cancel()
	j.mu.Unlock()
	// Publish the terminal SSE event outside j.mu: extracting the
	// metrics section parses the (possibly large) result body, and the
	// events buffer has its own lock.
	j.events.finish(s, result, errMsg)
}

// view snapshots the job for handlers.
func (j *job) view() (status JobStatus, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.result, j.err
}

// chargedBytes reports what this job added to the retention budget.
func (j *job) chargedBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.charged
}

// maxRetainedJobs and maxRetainedJobBytes bound the registry: beyond
// either, the oldest terminal jobs are evicted on every create. The
// byte bound matters because result-body size is client-controlled
// (scale 1.0 route results reach tens of MB) and the content-addressed
// cache's budget does not cover the copies pinned by registry entries.
const (
	maxRetainedJobs     = 1024
	maxRetainedJobBytes = 128 << 20
)

// jobRegistry tracks jobs by id. Terminal jobs are retained (so clients
// can poll results after completion) until the eviction bound pushes
// them out, oldest first; live jobs are never evicted.
type jobRegistry struct {
	mu    sync.Mutex
	seq   int64
	jobs  map[string]*job
	order []*job // creation order, for eviction
	// termBytes tracks the summed result sizes of retained terminal
	// jobs, maintained at the two transition points (finish adds,
	// eviction subtracts) so create never needs a full scan.
	termBytes atomic.Int64
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{jobs: map[string]*job{}}
}

// create registers a new queued job whose context descends from base;
// ckey is the job's route content address ("" for non-route jobs).
func (r *jobRegistry) create(base context.Context, ckey string) *job {
	ctx, cancel := context.WithCancel(base)
	r.mu.Lock()
	r.seq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", r.seq),
		ckey:     ckey,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		retained: &r.termBytes,
		events:   newJobEvents(),
		status:   JobQueued,
		created:  time.Now(),
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j)
	if len(r.jobs) > maxRetainedJobs || r.termBytes.Load() > maxRetainedJobBytes {
		kept := r.order[:0]
		for _, old := range r.order {
			st, _, _ := old.view()
			if st.terminal() && (len(r.jobs) > maxRetainedJobs || r.termBytes.Load() > maxRetainedJobBytes) {
				delete(r.jobs, old.id)
				r.termBytes.Add(-old.chargedBytes())
				continue
			}
			kept = append(kept, old)
		}
		r.order = kept
	}
	r.mu.Unlock()
	return j
}

// remove deletes a job that was never exposed to the client (its
// submit was rejected), so phantom entries don't skew the job gauges.
func (r *jobRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return
	}
	if st, _, _ := j.view(); st.terminal() {
		r.termBytes.Add(-j.chargedBytes())
	}
	delete(r.jobs, id)
	for i, o := range r.order {
		if o.id == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// cancelAll cancels every live job (server shutdown).
func (r *jobRegistry) cancelAll() {
	r.mu.Lock()
	jobs := make([]*job, 0, len(r.jobs))
	for _, j := range r.jobs {
		jobs = append(jobs, j)
	}
	r.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
		j.finish(JobCancelled, nil, "server shutting down")
	}
}

// statusCounts tallies jobs by status for /metrics and /healthz.
func (r *jobRegistry) statusCounts() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{}
	for _, j := range r.jobs {
		st, _, _ := j.view()
		out[string(st)]++
	}
	return out
}
