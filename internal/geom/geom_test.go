package geom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestL1Basic(t *testing.T) {
	cases := []struct {
		a, b Pt
		want int64
	}{
		{Pt{0, 0}, Pt{0, 0}, 0},
		{Pt{0, 0}, Pt{3, 4}, 7},
		{Pt{-2, 5}, Pt{2, -5}, 14},
		{Pt{7, 7}, Pt{7, 9}, 2},
	}
	for _, c := range cases {
		if got := L1(c.a, c.b); got != c.want {
			t.Errorf("L1(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := L1(c.b, c.a); got != c.want {
			t.Errorf("L1 not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestL1TriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt{int32(ax), int32(ay)}
		b := Pt{int32(bx), int32(by)}
		c := Pt{int32(cx), int32(cy)}
		return L1(a, c) <= L1(a, b)+L1(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedian3MinimizesStar(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for it := 0; it < 200; it++ {
		a := Pt{int32(rng.IntN(20)), int32(rng.IntN(20))}
		b := Pt{int32(rng.IntN(20)), int32(rng.IntN(20))}
		c := Pt{int32(rng.IntN(20)), int32(rng.IntN(20))}
		m := Median3(a, b, c)
		best := L1(m, a) + L1(m, b) + L1(m, c)
		for x := int32(0); x < 20; x++ {
			for y := int32(0); y < 20; y++ {
				p := Pt{x, y}
				if s := L1(p, a) + L1(p, b) + L1(p, c); s < best {
					t.Fatalf("Median3(%v,%v,%v)=%v cost %d beaten by %v cost %d", a, b, c, m, best, p, s)
				}
			}
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := EmptyRect()
	if !r.Empty() {
		t.Fatal("EmptyRect not empty")
	}
	if r.W() != 0 || r.H() != 0 || r.Area() != 0 || r.HalfPerimeter() != 0 {
		t.Fatal("empty rect dims not zero")
	}
	r = r.Add(Pt{3, 4})
	r = r.Add(Pt{7, 2})
	want := Rect{3, 2, 7, 4}
	if r != want {
		t.Fatalf("Add: got %v want %v", r, want)
	}
	if r.W() != 5 || r.H() != 3 || r.Area() != 15 {
		t.Fatalf("dims wrong: W=%d H=%d A=%d", r.W(), r.H(), r.Area())
	}
	if r.HalfPerimeter() != 6 {
		t.Fatalf("HPWL = %d want 6", r.HalfPerimeter())
	}
	if !r.Contains(Pt{3, 2}) || !r.Contains(Pt{7, 4}) || r.Contains(Pt{8, 4}) || r.Contains(Pt{3, 1}) {
		t.Fatal("Contains wrong at boundaries")
	}
}

func TestRectExpandClamp(t *testing.T) {
	r := Rect{1, 1, 2, 2}.Expand(5, 10, 8)
	if r != (Rect{0, 0, 7, 7}) {
		t.Fatalf("Expand clamp: got %v", r)
	}
	r = Rect{4, 4, 5, 5}.Expand(1, 100, 100)
	if r != (Rect{3, 3, 6, 6}) {
		t.Fatalf("Expand: got %v", r)
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 1, 6, 9}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 9}) {
		t.Fatalf("Union: got %v", u)
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Fatalf("Union with empty: got %v", got)
	}
	if got := EmptyRect().Union(a); got != a {
		t.Fatalf("empty Union: got %v", got)
	}
}

func TestBBoxCoversAll(t *testing.T) {
	f := func(coords []int16) bool {
		if len(coords) < 2 {
			return true
		}
		pts := make([]Pt, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, Pt{int32(coords[i]), int32(coords[i+1])})
		}
		r := BBox(pts)
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHanan(t *testing.T) {
	pts := []Pt{{1, 5}, {3, 2}, {1, 2}}
	h := Hanan(pts)
	// xs = {1,3}, ys = {2,5} -> 4 points
	if len(h) != 4 {
		t.Fatalf("Hanan size %d want 4: %v", len(h), h)
	}
	want := map[Pt]bool{{1, 2}: true, {1, 5}: true, {3, 2}: true, {3, 5}: true}
	for _, p := range h {
		if !want[p] {
			t.Fatalf("unexpected Hanan point %v", p)
		}
	}
}

func TestHananContainsInputs(t *testing.T) {
	f := func(coords []int16) bool {
		if len(coords) < 2 || len(coords) > 24 {
			return true
		}
		pts := make([]Pt, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, Pt{int32(coords[i]), int32(coords[i+1])})
		}
		h := Hanan(pts)
		set := make(map[Pt]bool, len(h))
		for _, p := range h {
			if set[p] {
				return false // duplicates
			}
			set[p] = true
		}
		for _, p := range pts {
			if !set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectIntersects(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	randRect := func() Rect {
		x, y := rng.Int32N(20), rng.Int32N(20)
		return Rect{X0: x, Y0: y, X1: x + rng.Int32N(6), Y1: y + rng.Int32N(6)}
	}
	for iter := 0; iter < 2000; iter++ {
		a, b := randRect(), randRect()
		brute := false
		for x := a.X0; x <= a.X1 && !brute; x++ {
			for y := a.Y0; y <= a.Y1; y++ {
				if b.Contains(Pt{x, y}) {
					brute = true
					break
				}
			}
		}
		if got := a.Intersects(b); got != brute {
			t.Fatalf("Intersects(%+v, %+v) = %v, brute force %v", a, b, got, brute)
		}
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("Intersects not symmetric for %+v, %+v", a, b)
		}
	}
	if (Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}).Intersects(EmptyRect()) {
		t.Fatal("empty rect must not intersect")
	}
}
