// Package geom provides plane geometry primitives used throughout the
// cost-distance Steiner tree library: integer points in the gcell plane,
// L1 (rectilinear) metrics, bounding rectangles and Hanan-grid candidate
// generation for Steinerization.
package geom

// Pt is a point in the gcell plane. Coordinates are gcell indices.
type Pt struct {
	X, Y int32
}

// L1 returns the rectilinear distance between a and b in gcell units.
func L1(a, b Pt) int64 {
	return absi64(int64(a.X)-int64(b.X)) + absi64(int64(a.Y)-int64(b.Y))
}

func absi64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Median3 returns the component-wise median of three points. It is the
// unique point minimizing the sum of L1 distances to a, b and c and is
// the canonical Steiner point candidate for a triple.
func Median3(a, b, c Pt) Pt {
	return Pt{X: med3(a.X, b.X, c.X), Y: med3(a.Y, b.Y, c.Y)}
}

func med3(a, b, c int32) int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Rect is an axis-aligned rectangle with inclusive bounds.
type Rect struct {
	X0, Y0, X1, Y1 int32
}

// EmptyRect returns a rectangle that contains nothing and acts as the
// identity for Union/Add.
func EmptyRect() Rect {
	const big = int32(1) << 30
	return Rect{X0: big, Y0: big, X1: -big, Y1: -big}
}

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.X0 > r.X1 || r.Y0 > r.Y1 }

// Contains reports whether p lies inside r (bounds inclusive).
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Add extends r to cover p.
func (r Rect) Add(p Pt) Rect {
	if p.X < r.X0 {
		r.X0 = p.X
	}
	if p.X > r.X1 {
		r.X1 = p.X
	}
	if p.Y < r.Y0 {
		r.Y0 = p.Y
	}
	if p.Y > r.Y1 {
		r.Y1 = p.Y
	}
	return r
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if s.Empty() {
		return r
	}
	if r.Empty() {
		return s
	}
	r = r.Add(Pt{s.X0, s.Y0})
	return r.Add(Pt{s.X1, s.Y1})
}

// Expand grows r by margin m on every side and clamps it to the grid
// [0,nx-1] x [0,ny-1].
func (r Rect) Expand(m, nx, ny int32) Rect {
	r.X0 -= m
	r.Y0 -= m
	r.X1 += m
	r.Y1 += m
	if r.X0 < 0 {
		r.X0 = 0
	}
	if r.Y0 < 0 {
		r.Y0 = 0
	}
	if r.X1 > nx-1 {
		r.X1 = nx - 1
	}
	if r.Y1 > ny-1 {
		r.Y1 = ny - 1
	}
	return r
}

// W returns the width of r in gcells (number of columns).
func (r Rect) W() int32 {
	if r.Empty() {
		return 0
	}
	return r.X1 - r.X0 + 1
}

// H returns the height of r in gcells (number of rows).
func (r Rect) H() int32 {
	if r.Empty() {
		return 0
	}
	return r.Y1 - r.Y0 + 1
}

// Area returns the number of gcells covered by r.
func (r Rect) Area() int64 { return int64(r.W()) * int64(r.H()) }

// Intersect returns the overlap of r and s; the result is empty when
// they share no gcell.
func (r Rect) Intersect(s Rect) Rect {
	if s.X0 > r.X0 {
		r.X0 = s.X0
	}
	if s.Y0 > r.Y0 {
		r.Y0 = s.Y0
	}
	if s.X1 < r.X1 {
		r.X1 = s.X1
	}
	if s.Y1 < r.Y1 {
		r.Y1 = s.Y1
	}
	return r
}

// Intersects reports whether r and s share at least one gcell.
func (r Rect) Intersects(s Rect) bool {
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// HalfPerimeter returns the half-perimeter wirelength (HPWL) of r, the
// classic lower bound for the length of any tree connecting points
// spanning r.
func (r Rect) HalfPerimeter() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.X1-r.X0) + int64(r.Y1-r.Y0)
}

// BBox returns the bounding rectangle of pts.
func BBox(pts []Pt) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Add(p)
	}
	return r
}

// Hanan returns the Hanan grid of pts: all points (x,y) where x is the
// abscissa of some input point and y the ordinate of some (possibly
// different) input point. A rectilinear Steiner minimal tree always has
// an optimal solution with Steiner points on the Hanan grid (Hanan 1966).
// The result has no duplicates; order is row-major by (x,y).
func Hanan(pts []Pt) []Pt {
	xs := dedupSorted(collect(pts, func(p Pt) int32 { return p.X }))
	ys := dedupSorted(collect(pts, func(p Pt) int32 { return p.Y }))
	out := make([]Pt, 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Pt{x, y})
		}
	}
	return out
}

func collect(pts []Pt, f func(Pt) int32) []int32 {
	out := make([]int32, len(pts))
	for i, p := range pts {
		out[i] = f(p)
	}
	return out
}

func dedupSorted(v []int32) []int32 {
	// Insertion sort: inputs are tiny (terminal counts).
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
