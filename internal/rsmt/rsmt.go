// Package rsmt constructs short rectilinear Steiner trees in the plane.
// It is the "L1" baseline of the paper (§IV-A): a near-minimum-length
// Steiner topology built without any congestion or timing information,
// later embedded optimally into the routing graph.
//
// Construction: Prim's algorithm builds the L1 minimum spanning tree
// over the terminals; an edge-substitution pass in the style of
// Borah-Owens-Irwin then repeatedly replaces two adjacent tree edges by
// a median Steiner point while that reduces total length. The result is
// within a few percent of optimal RSMT length on routing-sized nets.
package rsmt

import (
	"costdist/internal/geom"
	"costdist/internal/nets"
)

// node is a working tree node during construction.
type node struct {
	pos geom.Pt
	adj []int32
}

// Build returns a Steiner topology over the terminals. pts[0] is the
// root; pts[i] for i ≥ 1 corresponds to sink i-1 of the instance.
// The returned tree is rooted at node 0 and passes
// (*nets.PlaneTree).Validate for len(pts)-1 sinks.
func Build(pts []geom.Pt) *nets.PlaneTree {
	t := len(pts)
	if t == 0 {
		return &nets.PlaneTree{Nodes: []nets.PlaneNode{{Parent: -1, SinkIdx: -1}}}
	}
	nodes := make([]node, t)
	for i, p := range pts {
		nodes[i] = node{pos: p}
	}
	prim(nodes)
	steinerize(&nodes)
	return toPlaneTree(nodes, t)
}

// prim links the terminal nodes into an L1 minimum spanning tree.
func prim(nodes []node) {
	t := len(nodes)
	if t <= 1 {
		return
	}
	inTree := make([]bool, t)
	best := make([]int64, t) // best distance to tree
	bestTo := make([]int32, t)
	for i := range best {
		best[i] = geom.L1(nodes[i].pos, nodes[0].pos)
		bestTo[i] = 0
	}
	inTree[0] = true
	for added := 1; added < t; added++ {
		pick := int32(-1)
		var pickD int64
		for i := 0; i < t; i++ {
			if !inTree[i] && (pick < 0 || best[i] < pickD) {
				pick, pickD = int32(i), best[i]
			}
		}
		inTree[pick] = true
		link(nodes, pick, bestTo[pick])
		for i := 0; i < t; i++ {
			if !inTree[i] {
				if d := geom.L1(nodes[i].pos, nodes[pick].pos); d < best[i] {
					best[i], bestTo[i] = d, pick
				}
			}
		}
	}
}

func link(nodes []node, a, b int32) {
	nodes[a].adj = append(nodes[a].adj, b)
	nodes[b].adj = append(nodes[b].adj, a)
}

func unlink(nodes []node, a, b int32) {
	nodes[a].adj = remove(nodes[a].adj, b)
	nodes[b].adj = remove(nodes[b].adj, a)
}

func remove(s []int32, x int32) []int32 {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// steinerize repeatedly applies the best median substitution: for a node
// u with neighbors v1, v2, insert s = median(u, v1, v2) and reconnect
// u, v1, v2 to s. Gain = L1(u,v1)+L1(u,v2) − (|su|+|sv1|+|sv2|) > 0.
func steinerize(nodes *[]node) {
	for {
		ns := *nodes
		var bu, bv1, bv2 int32
		var bs geom.Pt
		var bestGain int64
		for u := int32(0); u < int32(len(ns)); u++ {
			adj := ns[u].adj
			for i := 0; i < len(adj); i++ {
				for j := i + 1; j < len(adj); j++ {
					v1, v2 := adj[i], adj[j]
					s := geom.Median3(ns[u].pos, ns[v1].pos, ns[v2].pos)
					gain := geom.L1(ns[u].pos, ns[v1].pos) + geom.L1(ns[u].pos, ns[v2].pos) -
						(geom.L1(s, ns[u].pos) + geom.L1(s, ns[v1].pos) + geom.L1(s, ns[v2].pos))
					if gain > bestGain {
						bestGain, bu, bv1, bv2, bs = gain, u, v1, v2, s
					}
				}
			}
		}
		if bestGain <= 0 {
			return
		}
		ns = append(ns, node{pos: bs})
		sIdx := int32(len(ns) - 1)
		unlink(ns, bu, bv1)
		unlink(ns, bu, bv2)
		link(ns, sIdx, bu)
		link(ns, sIdx, bv1)
		link(ns, sIdx, bv2)
		*nodes = ns
	}
}

// toPlaneTree roots the adjacency structure at node 0.
func toPlaneTree(nodes []node, nTerms int) *nets.PlaneTree {
	out := &nets.PlaneTree{Nodes: make([]nets.PlaneNode, 0, len(nodes))}
	idx := make([]int32, len(nodes))
	for i := range idx {
		idx[i] = -1
	}
	sinkIdx := func(old int32) int32 {
		if old >= 1 && int(old) < nTerms {
			return old - 1
		}
		return -1
	}
	out.Nodes = append(out.Nodes, nets.PlaneNode{Pos: nodes[0].pos, Parent: -1, SinkIdx: -1})
	idx[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range nodes[u].adj {
			if idx[v] >= 0 {
				continue
			}
			out.Nodes = append(out.Nodes, nets.PlaneNode{Pos: nodes[v].pos, Parent: idx[u], SinkIdx: sinkIdx(v)})
			idx[v] = int32(len(out.Nodes) - 1)
			queue = append(queue, v)
		}
	}
	return out
}

// MSTLength returns the L1 minimum spanning tree length of pts, the
// classic upper bound reference for Steiner tree quality (RSMT length is
// between 2/3·MST and MST).
func MSTLength(pts []geom.Pt) int64 {
	nodes := make([]node, len(pts))
	for i, p := range pts {
		nodes[i] = node{pos: p}
	}
	prim(nodes)
	var total int64
	for i := range nodes {
		for _, j := range nodes[i].adj {
			if int32(i) < j {
				total += geom.L1(nodes[i].pos, nodes[j].pos)
			}
		}
	}
	return total
}
