package rsmt

import (
	"math/rand/v2"
	"testing"

	"costdist/internal/geom"
)

func randPts(rng *rand.Rand, n int, span int32) []geom.Pt {
	pts := make([]geom.Pt, n)
	for i := range pts {
		pts[i] = geom.Pt{X: rng.Int32N(span), Y: rng.Int32N(span)}
	}
	return pts
}

func TestBuildValidTrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 40} {
		for it := 0; it < 20; it++ {
			pts := randPts(rng, n, 100)
			tr := Build(pts)
			if err := tr.Validate(n - 1); err != nil {
				t.Fatalf("n=%d: invalid tree: %v", n, err)
			}
		}
	}
}

func TestBuildNeverLongerThanMST(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	for it := 0; it < 200; it++ {
		n := 2 + rng.IntN(20)
		pts := randPts(rng, n, 64)
		tr := Build(pts)
		mst := MSTLength(pts)
		if got := tr.Length(); got > mst {
			t.Fatalf("steinerized length %d exceeds MST %d (pts %v)", got, mst, pts)
		}
		// Steiner ratio lower bound: RSMT >= 2/3 * MST... our tree is a
		// valid Steiner tree so it can't beat the theoretical optimum's
		// lower bound either: length >= HPWL of the bbox / something is
		// too weak; just check >= 2/3*MST which holds for any Steiner tree
		// only via optimality, so instead check >= HPWL bound:
		if got := tr.Length(); got < geom.BBox(pts).HalfPerimeter() {
			t.Fatalf("length %d below HPWL bound %d", got, geom.BBox(pts).HalfPerimeter())
		}
	}
}

func TestSteinerGainOnLShape(t *testing.T) {
	// Classic 3-point instance: MST = 2*10, Steiner tree = 10+5+5 via
	// median; gains must be realized.
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 10, Y: 5}, {X: 10, Y: -5}}
	tr := Build(pts)
	if got, want := tr.Length(), int64(20); got != want {
		t.Fatalf("L-shape length = %d want %d", got, want)
	}
}

func TestCross4(t *testing.T) {
	// 4 points on a cross: optimal RSMT uses 2 Steiner points or a
	// straight trunk; length 3*w for a symmetric cross of arm w... just
	// check improvement over MST.
	pts := []geom.Pt{{X: 0, Y: 5}, {X: 10, Y: 5}, {X: 5, Y: 0}, {X: 5, Y: 10}}
	tr := Build(pts)
	mst := MSTLength(pts)
	if tr.Length() >= mst {
		t.Fatalf("no Steiner gain on cross: %d vs MST %d", tr.Length(), mst)
	}
	if tr.Length() != 20 {
		t.Fatalf("cross length = %d want 20", tr.Length())
	}
}

func TestDuplicatePositions(t *testing.T) {
	pts := []geom.Pt{{X: 3, Y: 3}, {X: 3, Y: 3}, {X: 3, Y: 3}, {X: 7, Y: 3}}
	tr := Build(pts)
	if err := tr.Validate(3); err != nil {
		t.Fatalf("duplicate positions: %v", err)
	}
	if tr.Length() != 4 {
		t.Fatalf("length %d want 4", tr.Length())
	}
}

func TestSingleTerminal(t *testing.T) {
	tr := Build([]geom.Pt{{X: 5, Y: 5}})
	if err := tr.Validate(0); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(tr.Nodes))
	}
}

func TestMSTLengthKnown(t *testing.T) {
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 4}}
	if got := MSTLength(pts); got != 7 {
		t.Fatalf("MST = %d want 7", got)
	}
}

func BenchmarkBuild32(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	pts := randPts(rng, 32, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}
