// Admissibility property tests: future costs must never exceed the true
// remaining cost, or goal-oriented searches built on them return
// non-optimal trees while claiming certificates. Both estimators are
// checked against the Dreyfus–Wagner DP of internal/exact on seeded
// random instances — the DP's LowerBound is the true optimum of the
// completion problem each estimate claims to bound.
//
// This file is an external test package: internal/exact imports
// internal/future for its mask-aware bounds, so the cross-check must
// live outside the import cycle.
package future_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"costdist/internal/dly"
	"costdist/internal/exact"
	"costdist/internal/future"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/nets"
)

// admissInstance builds a seeded random instance with congested (priced)
// segments, so minCost floors and bounding boxes are exercised against
// multipliers > 1.
func admissInstance(rng *rand.Rand, nx int32, k int, dbif float64) *nets.Instance {
	tech := dly.DefaultTech(3)
	g := grid.New(nx, nx, tech.BuildLayers(), tech.GCellUM)
	c := grid.NewCosts(g)
	for i := range c.Mult {
		if rng.IntN(3) == 0 {
			c.Mult[i] = 1 + 4*rng.Float32()
		}
	}
	in := &nets.Instance{
		G: g, C: c,
		Root: g.At(rng.Int32N(nx), rng.Int32N(nx), 0),
		DBif: dbif, Eta: 0.25,
		Win: g.FullWindow(),
	}
	for len(in.Sinks) < k {
		in.Sinks = append(in.Sinks, nets.Sink{
			V: g.At(rng.Int32N(nx), rng.Int32N(nx), 0),
			W: 0.05 + rng.Float64(),
		})
	}
	return in
}

// completionOptimum returns the true optimum of the completion problem
// of state (mask, v): connect v — carrying the combined delay weight of
// mask — and every sink outside mask to the root. Computed by the DP,
// whose LowerBound is exact for this instance.
func completionOptimum(t *testing.T, in *nets.Instance, est *future.MaskEstimator, mask uint32, v grid.V) float64 {
	t.Helper()
	comp := &nets.Instance{
		G: in.G, C: in.C, Root: in.Root,
		DBif: in.DBif, Eta: in.Eta, Win: in.Win,
	}
	for i, sk := range in.Sinks {
		if mask&(uint32(1)<<uint(i)) == 0 {
			comp.Sinks = append(comp.Sinks, sk)
		}
	}
	comp.Sinks = append(comp.Sinks, nets.Sink{V: v, W: est.W(mask)})
	res, err := exact.Solve(comp)
	if err != nil {
		t.Fatalf("completion DP: %v", err)
	}
	return res.LowerBound
}

// TestMaskEstimatorAdmissible drives the property the goal-oriented
// solver's optimality proof rests on: for random reachable states
// (mask, v), Est(mask, pt(v)) never exceeds the completion optimum.
func TestMaskEstimatorAdmissible(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 47))
	for it := 0; it < 12; it++ {
		k := 2 + rng.IntN(3)
		dbif := 0.0
		if it%2 == 1 {
			dbif = rng.Float64() * 25
		}
		in := admissInstance(rng, 6, k, dbif)
		pts := make([]geom.Pt, k)
		ws := make([]float64, k)
		for i, sk := range in.Sinks {
			pts[i] = in.G.Pt(sk.V)
			ws[i] = sk.W
		}
		est, err := future.NewMaskEstimator(in.C, in.G.Pt(in.Root), pts, ws)
		if err != nil {
			t.Fatal(err)
		}
		full := uint32(1)<<uint(k) - 1
		for trial := 0; trial < 6; trial++ {
			mask := 1 + rng.Uint32N(full) // nonzero, possibly full
			v := in.G.At(rng.Int32N(6), rng.Int32N(6), rng.Int32N(3))
			got := est.Est(mask, in.G.Pt(v))
			want := completionOptimum(t, in, est, mask, v)
			if got > want+1e-9*(1+want) {
				t.Fatalf("it %d: Est(%b, %v) = %v exceeds completion optimum %v",
					it, mask, in.G.Pt(v), got, want)
			}
		}
	}
}

// TestEstimatorAdmissible checks the existing single-target estimator
// (with and without landmark sharpening) against the true shortest
// cost-plus-weighted-delay path to the target, computed by the DP on a
// single-sink instance.
func TestEstimatorAdmissible(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 23))
	for it := 0; it < 12; it++ {
		in := admissInstance(rng, 6, 1, 0)
		target := in.Sinks[0]
		tp := in.G.Pt(target.V)
		box := geom.Rect{X0: tp.X, Y0: tp.Y, X1: tp.X, Y1: tp.Y}

		plain := future.New(in.C)
		plain.SetTargets([]geom.Rect{box})
		sharp := future.New(in.C)
		sharp.AttachLandmarks(future.NewLandmarks(in.G, in.C, in.Win))
		sharp.SetTargets([]geom.Rect{box})

		for trial := 0; trial < 6; trial++ {
			v := in.G.At(rng.Int32N(6), rng.Int32N(6), rng.Int32N(3))
			w := rng.Float64() * 2
			// True remaining cost: single-sink DP from the pseudo-source v
			// (weight w) to a root placed at the target.
			single := &nets.Instance{
				G: in.G, C: in.C, Root: target.V, Win: in.Win,
				Sinks: []nets.Sink{{V: v, W: w}},
			}
			res, err := exact.Solve(single)
			if err != nil {
				t.Fatal(err)
			}
			want := res.LowerBound
			for name, e := range map[string]*future.Estimator{"plain": plain, "landmark": sharp} {
				if got := e.Est(in.G.Pt(v), w); got > want+1e-9*(1+want) {
					t.Fatalf("it %d %s: Est = %v exceeds true remaining cost %v", it, name, got, want)
				}
			}
		}
	}
}

// TestMaskEstimatorGoalStateIsZero pins the boundary condition: at the
// goal state (full mask, root) the future cost must be exactly zero, or
// every search key would carry a constant bias.
func TestMaskEstimatorGoalStateIsZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 71))
	in := admissInstance(rng, 6, 4, 10)
	pts := make([]geom.Pt, 4)
	ws := make([]float64, 4)
	for i, sk := range in.Sinks {
		pts[i] = in.G.Pt(sk.V)
		ws[i] = sk.W
	}
	est, err := future.NewMaskEstimator(in.C, in.G.Pt(in.Root), pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Est(uint32(1)<<4-1, in.G.Pt(in.Root)); got != 0 {
		t.Fatalf("Est(full, root) = %v, want 0", got)
	}
	if math.Abs(est.W(uint32(1)<<4-1)-(ws[0]+ws[1]+ws[2]+ws[3])) > 1e-12 {
		t.Fatalf("W(full) = %v", est.W(uint32(1)<<4-1))
	}
}
