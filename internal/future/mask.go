package future

import (
	"fmt"

	"costdist/internal/geom"
	"costdist/internal/grid"
)

// MaskEstimator is the mask-aware future-cost lower bound of the
// goal-oriented exact solver (internal/exact). A label of that solver
// is a DP state (I, v): a tree connecting the sinks of mask I to
// vertex v, with every edge above a sub-tree carrying sink set A
// priced c(e) + w(A)·d(e). Est(I, p) lower-bounds the cost of any
// completion of such a state into a full solution — connecting v and
// every sink outside I to the root — from three admissible parts:
//
//   - congestion: the completion's edge union is connected and spans
//     {p, root} ∪ {sinks ∉ I}, so Σ c(e) ≥ MinCostPerGCell times the
//     half-perimeter of that point set's bounding box;
//   - carried delay: every edge of the completion's v→root path lies
//     above a sub-tree containing all of I, so its delay is weighted by
//     at least w(I); the path is at least L1(p, root) gcells long;
//   - remaining delay: every sink t ∉ I has a root path whose edges
//     carry at least w(t). Sink sets above an edge are disjoint unions,
//     so these terms and the carried-delay term never double-count: an
//     edge shared by the v→root path and sink t's path carries weight
//     w(A) ≥ w(I) + w(t).
//
// Admissibility contract: for every reachable state (I, v) of the DP
// recurrence, Est(I, pt(v)) ≤ D[full][root] − D[I][v] whenever (I, v)
// lies on an optimal DP decomposition — equivalently, Est never
// exceeds the optimum of the completion instance (root, sinks ∉ I,
// plus a pseudo-sink of weight w(I) at v). The property test in
// admissible_test.go checks exactly that against the Dreyfus–Wagner
// DP. Bifurcation penalties of the completion are bounded below by
// zero, which keeps the bound valid for any dbif ≥ 0.
//
// All per-mask tables are precomputed at construction: 2^k entries of
// the remaining-terminal bounding box, the remaining weighted-L1 delay
// floor and the mask weight. Est itself is O(1).
type MaskEstimator struct {
	minCost  float64
	minDelay float64
	root     geom.Pt

	maskW  []float64   // Σ w(t), t ∈ mask
	remBox []geom.Rect // bbox of root ∪ {sinks ∉ mask}
	remWL1 []float64   // Σ_{t ∉ mask} w(t)·L1(t, root)·minDelay
}

// maxMaskSinks bounds the subset dimension of the per-mask tables.
const maxMaskSinks = 20

// NewMaskEstimator builds the mask-aware bound for an instance with
// the given root plane position and per-sink plane positions and delay
// weights (index i of sinks is bit i of every mask).
func NewMaskEstimator(c *grid.Costs, root geom.Pt, sinks []geom.Pt, weights []float64) (*MaskEstimator, error) {
	k := len(sinks)
	if k != len(weights) {
		return nil, fmt.Errorf("future: %d sink positions, %d weights", k, len(weights))
	}
	if k > maxMaskSinks {
		return nil, fmt.Errorf("future: %d sinks exceeds mask bound limit %d", k, maxMaskSinks)
	}
	e := &MaskEstimator{
		minCost:  c.MinCostPerGCell(),
		minDelay: c.MinDelayPerGCell(),
		root:     root,
	}
	full := uint32(1)<<uint(k) - 1
	e.maskW = make([]float64, full+1)
	e.remBox = make([]geom.Rect, full+1)
	e.remWL1 = make([]float64, full+1)
	rootBox := geom.Rect{X0: root.X, Y0: root.Y, X1: root.X, Y1: root.Y}
	wl1 := make([]float64, k)
	for i, p := range sinks {
		wl1[i] = weights[i] * float64(geom.L1(p, root)) * e.minDelay
	}
	for m := uint32(0); m <= full; m++ {
		if m > 0 {
			lsb := m & (-m)
			e.maskW[m] = e.maskW[m^lsb] + weights[bitIndex(lsb)]
		}
		box := rootBox
		rem := 0.0
		for i := 0; i < k; i++ {
			if m&(uint32(1)<<uint(i)) == 0 {
				box = box.Add(sinks[i])
				rem += wl1[i]
			}
		}
		e.remBox[m] = box
		e.remWL1[m] = rem
	}
	return e, nil
}

// W returns the total delay weight of the sinks in mask.
func (e *MaskEstimator) W(mask uint32) float64 { return e.maskW[mask] }

// Est returns the admissible completion-cost lower bound for a state
// with sink mask `mask` at plane position p. At the goal state (full
// mask, p = root) it is 0.
func (e *MaskEstimator) Est(mask uint32, p geom.Pt) float64 {
	cong := float64(e.remBox[mask].Add(p).HalfPerimeter()) * e.minCost
	carried := e.maskW[mask] * float64(geom.L1(p, e.root)) * e.minDelay
	return cong + carried + e.remWL1[mask]
}

func bitIndex(lsb uint32) int {
	i := 0
	for lsb > 1 {
		lsb >>= 1
		i++
	}
	return i
}
