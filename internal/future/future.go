// Package future provides admissible lower bounds ("future costs") for
// goal-oriented (A*) path searches, per paper §III-C: congestion costs
// are lower-bounded geometrically (and optionally sharpened with
// landmark distances, ref [11]), and delays are bounded by L1 distance
// times the fastest layer/wire-type combination.
//
// Targets are component bounding boxes rather than points: with the
// §III-A discounting a search may finish at any vertex of a target
// component, so the bound must underestimate the distance to the whole
// component.
package future

import (
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/heaps"
)

// Estimator computes admissible lower bounds on min over targets of
// cost(v→target) + w·delay(v→target).
type Estimator struct {
	minCost  float64 // per gcell step, under the price floor
	minDelay float64 // per gcell step, fastest layer/wire combination
	targets  []geom.Rect
	lm       *Landmarks
}

// New returns an estimator for the given cost state.
func New(c *grid.Costs) *Estimator {
	return &Estimator{minCost: c.MinCostPerGCell(), minDelay: c.MinDelayPerGCell()}
}

// SetTargets replaces the target set with the given component boxes.
func (e *Estimator) SetTargets(boxes []geom.Rect) {
	e.targets = boxes
	if e.lm != nil {
		e.lm.SetTargets(boxes)
	}
}

// AttachLandmarks enables landmark-based congestion bounds.
func (e *Estimator) AttachLandmarks(lm *Landmarks) { e.lm = lm }

// rectDist returns the L1 distance from p to rectangle r (0 inside).
func rectDist(p geom.Pt, r geom.Rect) int64 {
	var dx, dy int64
	if p.X < r.X0 {
		dx = int64(r.X0 - p.X)
	} else if p.X > r.X1 {
		dx = int64(p.X - r.X1)
	}
	if p.Y < r.Y0 {
		dy = int64(r.Y0 - p.Y)
	} else if p.Y > r.Y1 {
		dy = int64(p.Y - r.Y1)
	}
	return dx + dy
}

// Est returns an admissible lower bound on the remaining search cost
// from plane position p under delay weight w. With no targets it
// returns 0 (plain Dijkstra).
func (e *Estimator) Est(p geom.Pt, w float64) float64 {
	if len(e.targets) == 0 {
		return 0
	}
	best := -1.0
	for i, r := range e.targets {
		d := float64(rectDist(p, r))
		lb := d * (e.minCost + w*e.minDelay)
		if e.lm != nil {
			if c := e.lm.Bound(p, i); c+d*w*e.minDelay > lb {
				lb = c + d*w*e.minDelay
			}
		}
		if best < 0 || lb < best {
			best = lb
		}
	}
	return best
}

// Landmarks sharpens congestion-cost lower bounds with the classic
// triangle-inequality trick (ref [11]): for a landmark L with
// precomputed cost-metric distances d_L(·), the distance from v to a
// target t is at least |d_L(v) − d_L(t)|. Distances are computed over a
// window of the plane projection of the graph: we project each column
// (x,y) to its cheapest traversal cost, which keeps the bound admissible
// for any layer.
type Landmarks struct {
	win   geom.Rect
	w, h  int32
	dists [][]float64 // per landmark, per plane cell
	// targetRef[k][i]: min over target i's box of dists[k], precomputed
	// when targets are set.
	targetRef [][]float64
}

// NewLandmarks computes landmark distance fields over the window for the
// given costs. Landmark positions are the window corners plus center.
// The plane metric uses, for each step between adjacent cells, the
// cheapest arc cost over all layers and wire types connecting those
// columns (an admissible projection).
func NewLandmarks(g *grid.Graph, c *grid.Costs, win geom.Rect) *Landmarks {
	lm := &Landmarks{win: win, w: win.W(), h: win.H()}
	corners := []geom.Pt{
		{X: win.X0, Y: win.Y0}, {X: win.X1, Y: win.Y0},
		{X: win.X0, Y: win.Y1}, {X: win.X1, Y: win.Y1},
		{X: (win.X0 + win.X1) / 2, Y: (win.Y0 + win.Y1) / 2},
	}
	// Plane step costs: for moving in x at row y (and y at column x) we
	// need the min cost over layers of the corresponding segment arcs.
	for _, pt := range corners {
		lm.dists = append(lm.dists, lm.planeDijkstra(g, c, pt))
	}
	return lm
}

func (lm *Landmarks) idx(p geom.Pt) int32 {
	return (p.Y-lm.win.Y0)*lm.w + (p.X - lm.win.X0)
}

// planeDijkstra runs Dijkstra on the plane projection: cost of step
// (x,y)→(x±1,y) is the min arc cost over all layers/wire types of that
// segment column; likewise for y. Vias are free in the projection
// (admissible: real paths pay them).
func (lm *Landmarks) planeDijkstra(g *grid.Graph, c *grid.Costs, from geom.Pt) []float64 {
	n := lm.w * lm.h
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = heaps.Inf
	}
	var h heaps.Lazy[geom.Pt]
	dist[lm.idx(from)] = 0
	h.Push(0, from)
	stepCost := func(a, b geom.Pt) float64 {
		best := heaps.Inf
		for l := int32(0); l < int32(len(g.Layers)); l++ {
			lay := &g.Layers[l]
			if a.Y == b.Y && lay.Dir == grid.DirH {
				x := a.X
				if b.X < x {
					x = b.X
				}
				seg := g.SegH(l, a.Y, x)
				for wt := range lay.Wires {
					cost := float64(c.Mult[seg]) * lay.Wires[wt].CostPerGCell
					if cost < best {
						best = cost
					}
				}
			}
			if a.X == b.X && lay.Dir == grid.DirV {
				y := a.Y
				if b.Y < y {
					y = b.Y
				}
				seg := g.SegV(l, a.X, y)
				for wt := range lay.Wires {
					cost := float64(c.Mult[seg]) * lay.Wires[wt].CostPerGCell
					if cost < best {
						best = cost
					}
				}
			}
		}
		return best
	}
	for h.Len() > 0 {
		k, p := h.Pop()
		if k > dist[lm.idx(p)] {
			continue
		}
		for _, q := range []geom.Pt{{X: p.X - 1, Y: p.Y}, {X: p.X + 1, Y: p.Y}, {X: p.X, Y: p.Y - 1}, {X: p.X, Y: p.Y + 1}} {
			if !lm.win.Contains(q) {
				continue
			}
			nd := k + stepCost(p, q)
			if nd < dist[lm.idx(q)] {
				dist[lm.idx(q)] = nd
				h.Push(nd, q)
			}
		}
	}
	return dist
}

// SetTargets precomputes per-landmark minima over each target box.
func (lm *Landmarks) SetTargets(boxes []geom.Rect) {
	lm.targetRef = make([][]float64, len(lm.dists))
	for k, d := range lm.dists {
		ref := make([]float64, len(boxes))
		for i, b := range boxes {
			m := heaps.Inf
			for y := max32(b.Y0, lm.win.Y0); y <= min32(b.Y1, lm.win.Y1); y++ {
				for x := max32(b.X0, lm.win.X0); x <= min32(b.X1, lm.win.X1); x++ {
					if v := d[lm.idx(geom.Pt{X: x, Y: y})]; v < m {
						m = v
					}
				}
			}
			if m == heaps.Inf {
				// Box does not intersect the window: no usable bound.
				m = -heaps.Inf
			}
			ref[i] = m
		}
		lm.targetRef[k] = ref
	}
}

// Bound returns the landmark lower bound on the congestion cost from p
// to target i. For every vertex t* in the target box the triangle
// inequality gives d_L(t*) <= d_L(p) + dist(p, t*), hence
// min_t d_L(t) - d_L(p) <= dist(p, t*): taking the max over landmarks
// stays an admissible lower bound on the distance to the whole box.
func (lm *Landmarks) Bound(p geom.Pt, target int) float64 {
	if lm.targetRef == nil || !lm.win.Contains(p) {
		return 0
	}
	best := 0.0
	pi := lm.idx(p)
	for k := range lm.dists {
		dp := lm.dists[k][pi]
		dt := lm.targetRef[k][target]
		if v := dt - dp; v > best {
			best = v
		}
	}
	return best
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
