package future

import (
	"math/rand/v2"
	"testing"

	"costdist/internal/dly"
	"costdist/internal/geom"
	"costdist/internal/grid"
	"costdist/internal/heaps"
)

func newGraph(nx, ny int32, nLayers int) (*grid.Graph, *grid.Costs) {
	tech := dly.DefaultTech(nLayers)
	g := grid.New(nx, ny, tech.BuildLayers(), tech.GCellUM)
	return g, grid.NewCosts(g)
}

// refDistances computes true cost+w·delay distances from every vertex to
// vertex `to` by a reverse Dijkstra (the graph is symmetric).
func refDistances(g *grid.Graph, c *grid.Costs, w float64, to grid.V) map[grid.V]float64 {
	dist := map[grid.V]float64{to: 0}
	var h heaps.Lazy[grid.V]
	h.Push(0, to)
	for h.Len() > 0 {
		k, v := h.Pop()
		if k > dist[v] {
			continue
		}
		g.Arcs(v, g.FullWindow(), func(a grid.Arc) bool {
			nd := k + c.ArcCost(a) + w*c.ArcDelay(a)
			if d, ok := dist[a.To]; !ok || nd < d {
				dist[a.To] = nd
				h.Push(nd, a.To)
			}
			return true
		})
	}
	return dist
}

func TestRectDist(t *testing.T) {
	r := geom.Rect{X0: 2, Y0: 2, X1: 4, Y1: 4}
	cases := []struct {
		p geom.Pt
		d int64
	}{
		{geom.Pt{X: 3, Y: 3}, 0},
		{geom.Pt{X: 2, Y: 2}, 0},
		{geom.Pt{X: 0, Y: 3}, 2},
		{geom.Pt{X: 6, Y: 6}, 4},
		{geom.Pt{X: 3, Y: 0}, 2},
	}
	for _, c := range cases {
		if got := rectDist(c.p, r); got != c.d {
			t.Fatalf("rectDist(%v) = %d want %d", c.p, got, c.d)
		}
	}
}

func TestEstAdmissibleGeometric(t *testing.T) {
	g, c := newGraph(12, 12, 4)
	rng := rand.New(rand.NewPCG(3, 7))
	// Random congestion raises prices; MinMult stays 1 so bounds hold.
	for i := range c.Mult {
		if rng.IntN(4) == 0 {
			c.Mult[i] = 1 + 8*rng.Float32()
		}
	}
	for it := 0; it < 10; it++ {
		target := g.At(rng.Int32N(12), rng.Int32N(12), 0)
		w := rng.Float64() * 2
		ref := refDistances(g, c, w, target)
		est := New(c)
		est.SetTargets([]geom.Rect{{X0: g.Pt(target).X, Y0: g.Pt(target).Y, X1: g.Pt(target).X, Y1: g.Pt(target).Y}})
		for v := grid.V(0); v < grid.V(g.NumV()); v++ {
			lb := est.Est(g.Pt(v), w)
			if d, ok := ref[v]; ok && lb > d+1e-9 {
				t.Fatalf("inadmissible: Est(%d)=%v > true %v", v, lb, d)
			}
		}
	}
}

func TestEstAdmissibleWithBoxTargetsAndLandmarks(t *testing.T) {
	g, c := newGraph(14, 14, 4)
	rng := rand.New(rand.NewPCG(11, 13))
	for i := range c.Mult {
		if rng.IntN(3) == 0 {
			c.Mult[i] = 1 + 10*rng.Float32()
		}
	}
	win := g.FullWindow()
	for it := 0; it < 5; it++ {
		// Random target boxes; the true distance to a box is the min over
		// all vertices in all layers of that box.
		box := geom.BBox([]geom.Pt{
			{X: rng.Int32N(14), Y: rng.Int32N(14)},
			{X: rng.Int32N(14), Y: rng.Int32N(14)},
		})
		w := rng.Float64()
		// Reference: multi-source reverse Dijkstra from every vertex in box.
		dist := map[grid.V]float64{}
		var h heaps.Lazy[grid.V]
		for l := int32(0); l < 4; l++ {
			for y := box.Y0; y <= box.Y1; y++ {
				for x := box.X0; x <= box.X1; x++ {
					v := g.At(x, y, l)
					dist[v] = 0
					h.Push(0, v)
				}
			}
		}
		for h.Len() > 0 {
			k, v := h.Pop()
			if k > dist[v] {
				continue
			}
			g.Arcs(v, win, func(a grid.Arc) bool {
				nd := k + c.ArcCost(a) + w*c.ArcDelay(a)
				if d, ok := dist[a.To]; !ok || nd < d {
					dist[a.To] = nd
					h.Push(nd, a.To)
				}
				return true
			})
		}
		est := New(c)
		est.AttachLandmarks(NewLandmarks(g, c, win))
		est.SetTargets([]geom.Rect{box})
		for v := grid.V(0); v < grid.V(g.NumV()); v++ {
			lb := est.Est(g.Pt(v), w)
			if d, ok := dist[v]; ok && lb > d+1e-6 {
				t.Fatalf("inadmissible with landmarks: Est(%d)=%v > true %v", v, lb, d)
			}
		}
	}
}

func TestLandmarksSharpenBounds(t *testing.T) {
	// A congestion wall makes true distances exceed the geometric bound;
	// landmarks should notice.
	g, c := newGraph(20, 20, 2)
	for y := int32(0); y < 20; y++ {
		for _, x := range []int32{9} {
			c.Mult[g.SegH(0, y, x)] = 40
		}
	}
	// Wall on layer 1 too (vertical layer has V segments; block crossing
	// by pricing all H segs at x=9 on layer 0 only — layer 1 is vertical
	// so crossing x=9 must use layer 0).
	win := g.FullWindow()
	est := New(c)
	est.SetTargets([]geom.Rect{{X0: 19, Y0: 0, X1: 19, Y1: 19}})
	plain := est.Est(geom.Pt{X: 0, Y: 0}, 0)

	est2 := New(c)
	est2.AttachLandmarks(NewLandmarks(g, c, win))
	est2.SetTargets([]geom.Rect{{X0: 19, Y0: 0, X1: 19, Y1: 19}})
	sharp := est2.Est(geom.Pt{X: 0, Y: 0}, 0)
	if sharp <= plain {
		t.Fatalf("landmarks did not sharpen: %v vs %v", sharp, plain)
	}
}

func TestNoTargetsMeansZero(t *testing.T) {
	_, c := newGraph(4, 4, 2)
	est := New(c)
	if est.Est(geom.Pt{X: 1, Y: 1}, 5) != 0 {
		t.Fatal("no targets should give 0 bound")
	}
}

func TestEstPicksNearestTarget(t *testing.T) {
	_, c := newGraph(30, 30, 2)
	est := New(c)
	est.SetTargets([]geom.Rect{
		{X0: 20, Y0: 20, X1: 22, Y1: 22},
		{X0: 3, Y0: 3, X1: 3, Y1: 3},
	})
	near := est.Est(geom.Pt{X: 4, Y: 3}, 1)
	far := est.Est(geom.Pt{X: 10, Y: 10}, 1)
	if near >= far {
		t.Fatalf("bound not monotone with distance: near %v far %v", near, far)
	}
}
