package costdist

import (
	"bytes"
	"reflect"
	"testing"
)

// Any negative RepairTol must disable the repair rung completely: an
// explicitly negative tolerance and the default (-1) have to produce
// byte-identical results — same trees, same metrics, same wire form —
// at every worker count. This is the compatibility contract that lets
// the existing golden and determinism pins certify the repair-less
// path without regeneration.
func TestRouteChipRepairTolNegativeIdentical(t *testing.T) {
	chip := mkChip(t, 0, 0.002)
	for _, threads := range []int{1, 2, 8} {
		opt := DefaultRouterOptions()
		opt.Waves = 3
		opt.Threads = threads
		opt.Incremental = true
		ref, err := RouteChip(chip, CD, opt) // default RepairTol (-1)
		if err != nil {
			t.Fatal(err)
		}
		opt.RepairTol = -7 // any negative spelling means "off"
		got, err := RouteChip(chip, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Metrics.NetsRepaired != 0 || got.Metrics.RepairEscalated != 0 ||
			got.Metrics.RepairedPerWave != nil || got.Metrics.EscalatedPerWave != nil {
			t.Fatalf("threads=%d: disabled rung reported repair activity: %+v", threads, got.Metrics)
		}
		refBytes, err := MarshalRouteResult(chip, ref)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := MarshalRouteResult(chip, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBytes, gotBytes) {
			t.Fatalf("threads=%d: negative RepairTol diverged from the default wire form", threads)
		}
	}
}

// The repair rung is a pure function of each net's instance and cached
// tree, so enabling it must not make the router worker-count dependent:
// identical metrics and trees at 1, 2 and 8 threads, with the rung
// actually engaging.
func TestRouteChipRepairDeterministicAcrossThreads(t *testing.T) {
	chip := mkChip(t, 0, 0.005)
	opt := DefaultRouterOptions()
	opt.Waves = 3
	opt.Incremental = true
	opt.RepairTol = 0.25
	var ref RouteMetrics
	var refTrees []*Tree
	for i, threads := range []int{1, 2, 8} {
		opt.Threads = threads
		res, err := RouteChip(chip, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		mt := res.Metrics
		mt.Walltime = 0
		if i == 0 {
			ref = mt
			refTrees = res.Trees
			continue
		}
		if !reflect.DeepEqual(ref, mt) {
			t.Fatalf("threads=%d changed repair-enabled results:\nref %+v\ngot %+v", threads, ref, mt)
		}
		if !reflect.DeepEqual(refTrees, res.Trees) {
			t.Fatalf("threads=%d changed repair-enabled routed trees", threads)
		}
	}
	if ref.NetsRepaired == 0 {
		t.Fatalf("repair rung never engaged: %+v", ref)
	}
	var perWave int64
	for _, n := range ref.RepairedPerWave {
		perWave += int64(n)
	}
	if perWave != ref.NetsRepaired {
		t.Fatalf("per-wave repair rows sum to %d, total %d", perWave, ref.NetsRepaired)
	}
}

// The warm-start three-rung disposition: on a perturbed chip, the
// repair-enabled warm run must absorb part of the dirty set on the
// repair rung, send strictly fewer nets to a full oracle solve than the
// repair-less warm run, and land within a small objective band of it —
// escalation bounds how far a repaired embedding may drift.
func TestWarmStartRepairTier(t *testing.T) {
	chip := mkChip(t, 0, 0.005)
	opt := DefaultRouterOptions()
	opt.Waves = 3
	opt.Threads = 2
	_, st, err := RouteChipCheckpoint(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	pert, changed, err := PerturbChip(chip, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if changed < 1 {
		t.Fatal("no nets perturbed")
	}
	plain, _, err := RouteChipFrom(st, pert, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	opt.RepairTol = 0.25
	repaired, _, err := RouteChipFrom(st2, pert, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Metrics.NetsRepaired == 0 {
		t.Fatalf("warm start repaired no nets: %+v", repaired.Metrics)
	}
	if repaired.Metrics.NetsSolved >= plain.Metrics.NetsSolved {
		t.Fatalf("repair rung saved no full solves: %d vs plain warm %d",
			repaired.Metrics.NetsSolved, plain.Metrics.NetsSolved)
	}
	// One-sided band: repair may improve the objective without limit
	// (re-embedding under current prices often beats a stale replay),
	// but escalation must keep it from ending much worse.
	delta := (repaired.Metrics.Objective - plain.Metrics.Objective) /
		plain.Metrics.Objective
	if delta > 0.05 {
		t.Fatalf("repair-enabled warm objective %.2f%% worse than the plain warm run (%.6g vs %.6g)",
			100*delta, repaired.Metrics.Objective, plain.Metrics.Objective)
	}
	for ni, tr := range repaired.Trees {
		if tr == nil {
			t.Fatalf("net %d has no tree after repair-enabled warm start", ni)
		}
	}
}
