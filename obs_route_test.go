package costdist

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// Attaching a telemetry recorder must not perturb routing: trees and
// every pre-existing metric are bit-identical to a recorder-less run;
// the recorder only ADDS the per-wave series. This is the contract that
// lets the service record every job while the golden digests and the
// content-addressed cache stay valid.
func TestRecorderDoesNotPerturbRoute(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{CD, Auto} {
		opt := DefaultRouterOptions()
		opt.Waves = 3
		opt.Threads = 2
		plain, err := RouteChip(chip, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Metrics.ObjectivePerWave != nil || plain.Metrics.OverflowPerWave != nil ||
			plain.Metrics.StageNanosPerWave != nil {
			t.Fatalf("%v: recorder-less run carries telemetry series", m)
		}

		opt.Recorder = NewRecorder()
		rec, err := RouteChip(chip, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Trees, rec.Trees) {
			t.Fatalf("%v: recorder changed routed trees", m)
		}
		pm, rm := plain.Metrics, rec.Metrics
		pm.Walltime, rm.Walltime = 0, 0
		rm.ObjectivePerWave, rm.OverflowPerWave, rm.StageNanosPerWave = nil, nil, nil
		if !reflect.DeepEqual(pm, rm) {
			t.Fatalf("%v: recorder changed metrics:\nplain %+v\nrec   %+v", m, pm, rm)
		}

		// The series themselves: one entry per wave, and the final
		// entries agree bit-for-bit with the headline metrics.
		rm = rec.Metrics
		waves := opt.Waves
		if len(rm.ObjectivePerWave) != waves || len(rm.OverflowPerWave) != waves ||
			len(rm.StageNanosPerWave) != waves {
			t.Fatalf("%v: series lengths %d/%d/%d, want %d", m,
				len(rm.ObjectivePerWave), len(rm.OverflowPerWave), len(rm.StageNanosPerWave), waves)
		}
		if got := rm.ObjectivePerWave[waves-1]; got != rm.Objective {
			t.Fatalf("%v: last objective-per-wave %v != objective %v", m, got, rm.Objective)
		}
		if got := rm.OverflowPerWave[waves-1]; got != rm.Overflow {
			t.Fatalf("%v: last overflow-per-wave %v != overflow %v", m, got, rm.Overflow)
		}
		for w, sn := range rm.StageNanosPerWave {
			if sn.Solve <= 0 {
				t.Fatalf("%v: wave %d recorded no solve time: %+v", m, w, sn)
			}
		}
	}
}

// The deterministic telemetry series must themselves be thread-count
// independent — they ride in the wire form, so any thread leak would
// split the service's content-addressed cache.
func TestRecorderSeriesDeterministicAcrossThreads(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 3
	var refObj, refOvf []float64
	for i, threads := range []int{1, 2, 8} {
		opt.Threads = threads
		opt.Recorder = NewRecorder() // fresh per run; recorders accumulate waves
		res, err := RouteChip(chip, CD, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refObj = res.Metrics.ObjectivePerWave
			refOvf = res.Metrics.OverflowPerWave
			continue
		}
		if !reflect.DeepEqual(refObj, res.Metrics.ObjectivePerWave) {
			t.Fatalf("threads=%d changed objective series: %v vs %v",
				threads, refObj, res.Metrics.ObjectivePerWave)
		}
		if !reflect.DeepEqual(refOvf, res.Metrics.OverflowPerWave) {
			t.Fatalf("threads=%d changed overflow series: %v vs %v",
				threads, refOvf, res.Metrics.OverflowPerWave)
		}
	}
}

// The wire form carries the deterministic series (objective/overflow
// per wave) and round-trips them; the wall-clock stage series stays
// off the wire like Walltime.
func TestRouteResultWireCarriesSeries(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Recorder = NewRecorder()
	res, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalRouteResult(chip, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"objective_per_wave"`)) ||
		!bytes.Contains(out, []byte(`"overflow_per_wave"`)) {
		t.Fatal("recorded wire form misses the per-wave series")
	}
	if bytes.Contains(out, []byte("stage_ns")) || bytes.Contains(out, []byte("dirty_ns")) {
		t.Fatal("wall-clock stage series leaked into the wire form")
	}
	var doc struct {
		Metrics RouteMetricsJSON `json:"metrics"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc.Metrics.ObjectivePerWave, res.Metrics.ObjectivePerWave) {
		t.Fatalf("objective series did not round-trip: %v vs %v",
			doc.Metrics.ObjectivePerWave, res.Metrics.ObjectivePerWave)
	}

	// Recorder-less runs keep the legacy bytes: no series keys at all.
	opt.Recorder = nil
	plain, err := RouteChip(chip, CD, opt)
	if err != nil {
		t.Fatal(err)
	}
	pout, err := MarshalRouteResult(chip, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(pout, []byte("per_wave_")) || bytes.Contains(pout, []byte(`"objective_per_wave"`)) {
		t.Fatal("recorder-less wire form grew telemetry keys")
	}
}

// WriteTrace on a recorded route produces a Chrome trace_event document
// that passes the strict validator used by CI's round-trip check.
func TestRouteTraceRoundTrip(t *testing.T) {
	spec := ChipSuite(0.002)[0]
	chip, err := GenerateChip(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultRouterOptions()
	opt.Waves = 2
	opt.Threads = 2
	rec := NewRecorder()
	opt.Recorder = rec
	if _, err := RouteChip(chip, CD, opt); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}
	for _, want := range []string{`"solve:cd"`, `"wave"`, `"replay"`, `"reprice"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("trace misses %s events", want)
		}
	}
}
